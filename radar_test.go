package radar

import (
	"strings"
	"testing"
	"time"
)

// quick returns a fast, scaled-down configuration for facade tests.
func quick(w Workload) Config {
	cfg := DefaultConfig(w)
	cfg.Objects = 1000
	cfg.Duration = 4 * time.Minute
	return cfg
}

func TestDefaultConfigMatchesTable1(t *testing.T) {
	cfg := DefaultConfig(Zipf)
	if cfg.Objects != 10000 {
		t.Errorf("Objects = %d, want 10000", cfg.Objects)
	}
	if cfg.ObjectSizeBytes != 12<<10 {
		t.Errorf("ObjectSizeBytes = %d, want 12KB", cfg.ObjectSizeBytes)
	}
	if cfg.Policy != PolicyPaper {
		t.Errorf("Policy = %q, want paper", cfg.Policy)
	}
}

func TestRunFacade(t *testing.T) {
	res, err := Run(quick(Uniform))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.TotalServed == 0 {
		t.Error("no requests served")
	}
	if len(res.Bandwidth) == 0 || len(res.Latency) == 0 || len(res.MaxLoad) == 0 {
		t.Error("missing series")
	}
	if len(res.HostLoad) == 0 {
		t.Error("missing host load trace")
	}
	var b strings.Builder
	if err := res.WriteSummary(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "bandwidth equilibrium") {
		t.Errorf("summary missing fields:\n%s", b.String())
	}
}

func TestRunAllWorkloads(t *testing.T) {
	for _, w := range []Workload{Zipf, HotSites, HotPages, Regional, Uniform} {
		w := w
		t.Run(string(w), func(t *testing.T) {
			t.Parallel()
			res, err := Run(quick(w))
			if err != nil {
				t.Fatal(err)
			}
			if res.Summary.TotalServed == 0 {
				t.Error("no requests served")
			}
		})
	}
}

func TestRunStaticVsDynamic(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	static := quick(Regional)
	static.Static = true
	sres, err := Run(static)
	if err != nil {
		t.Fatal(err)
	}
	dyn := quick(Regional)
	dyn.Duration = 20 * time.Minute
	dres, err := Run(dyn)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Summary.BandwidthEquilibrium >= sres.Summary.BandwidthEquilibrium {
		t.Errorf("dynamic bandwidth %v not below static %v",
			dres.Summary.BandwidthEquilibrium, sres.Summary.BandwidthEquilibrium)
	}
	if sres.Summary.GeoMigrations+sres.Summary.GeoReplications != 0 {
		t.Error("static run relocated objects")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	bad := quick("no-such-workload")
	if _, err := Run(bad); err == nil {
		t.Error("unknown workload accepted")
	}
	bad = quick(Zipf)
	bad.Policy = "no-such-policy"
	if _, err := Run(bad); err == nil {
		t.Error("unknown policy accepted")
	}
	bad = quick(Zipf)
	bad.Consistency = "no-such-regime"
	if _, err := Run(bad); err == nil {
		t.Error("unknown consistency regime accepted")
	}
	bad = quick(Zipf)
	bad.Objects = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero objects accepted")
	}
}

func TestConsistencyMixedRuns(t *testing.T) {
	cfg := quick(HotPages)
	cfg.Consistency = ConsistencyMixed
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.TotalServed == 0 {
		t.Error("no requests served")
	}
}

func TestFacadeDeterminism(t *testing.T) {
	a, err := Run(quick(Zipf))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quick(Zipf))
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary != b.Summary {
		t.Errorf("same seed, different summaries:\n%+v\n%+v", a.Summary, b.Summary)
	}
}

func TestWorkloadSwitchFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	cfg := quick(Zipf)
	cfg.Duration = 12 * time.Minute
	cfg.SwitchTo = Regional
	cfg.SwitchAt = 6 * time.Minute
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.TotalServed == 0 {
		t.Fatal("no requests served")
	}
	// Regional demand after the switch pulls bandwidth below the Zipf-era
	// level.
	var atSwitch float64
	for _, p := range res.Bandwidth {
		if p.T <= cfg.SwitchAt {
			atSwitch = p.V
		}
	}
	if res.Summary.BandwidthEquilibrium >= atSwitch {
		t.Errorf("equilibrium %.3g not below switch-time level %.3g",
			res.Summary.BandwidthEquilibrium, atSwitch)
	}
}

func TestTraceWriterFacade(t *testing.T) {
	var buf strings.Builder
	cfg := quick(HotPages)
	cfg.Duration = 6 * time.Minute
	cfg.TraceWriter = &buf
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	moves := res.Summary.GeoMigrations + res.Summary.GeoReplications +
		res.Summary.LoadMigrations + res.Summary.LoadReplications
	if moves == 0 {
		t.Fatal("no placement activity to trace")
	}
	lines := strings.Count(buf.String(), "\n")
	if int64(lines) < moves {
		t.Errorf("trace has %d lines for %d moves (+drops/refusals)", lines, moves)
	}
	if !strings.Contains(buf.String(), `"ev":"replicate"`) {
		t.Error("trace missing replicate events")
	}
}

func TestLatencyP99AtLeastMean(t *testing.T) {
	res, err := Run(quick(Uniform))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LatencyP99) != len(res.Latency) {
		t.Fatalf("p99 series length %d != mean series %d", len(res.LatencyP99), len(res.Latency))
	}
	for i := range res.Latency {
		if res.Latency[i].V > 0 && res.LatencyP99[i].V < res.Latency[i].V*0.9 {
			t.Fatalf("bucket %d: p99 %.4f below mean %.4f", i, res.LatencyP99[i].V, res.Latency[i].V)
		}
	}
}
