// End-to-end hot-path benchmarks: one full default-scale (Table 1)
// simulation per iteration, per workload. These are the numbers the
// BENCH_run.json artifact tracks (see cmd/radar-bench and
// EXPERIMENTS.md); run them with
//
//	go test -bench 'BenchmarkRun$' -benchmem
//
// Unlike the artifact benchmarks in bench_test.go, nothing is cached:
// every iteration pays the complete build-run-collect cost at full paper
// scale, so ns/op and allocs/op here reflect the library's real hot
// path.
package radar_test

import (
	"testing"

	"radar"
)

// BenchmarkRun measures one complete default-configuration run per
// workload (10,000 objects, 40 simulated minutes, Table 1 parameters).
func BenchmarkRun(b *testing.B) {
	for _, w := range []radar.Workload{radar.Zipf, radar.HotSites, radar.HotPages, radar.Regional, radar.Uniform} {
		w := w
		b.Run(string(w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := radar.Run(radar.DefaultConfig(w))
				if err != nil {
					b.Fatal(err)
				}
				if res.Summary.TotalServed == 0 {
					b.Fatal("no requests served")
				}
			}
		})
	}
}
