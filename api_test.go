// External tests for the facade's error contract and context entry
// points: sentinel errors must match through errors.Is from outside the
// package, and cancellation must interrupt long runs promptly.
package radar_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"radar"
)

// quickCfg returns a fast, scaled-down configuration.
func quickCfg(w radar.Workload) radar.Config {
	cfg := radar.DefaultConfig(w)
	cfg.Objects = 1000
	cfg.Duration = 4 * time.Minute
	return cfg
}

func TestSentinelErrorsMatchable(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*radar.Config)
		want   error
	}{
		{"unknown workload", func(c *radar.Config) { c.Workload = "no-such-workload" }, radar.ErrUnknownWorkload},
		{"unknown switch target", func(c *radar.Config) { c.SwitchTo = "no-such-workload" }, radar.ErrUnknownWorkload},
		{"unknown policy", func(c *radar.Config) { c.Policy = "no-such-policy" }, radar.ErrUnknownPolicy},
		{"unknown consistency", func(c *radar.Config) { c.Consistency = "no-such-regime" }, radar.ErrUnknownConsistency},
		{"bad fault schedule", func(c *radar.Config) { c.FaultSchedule = "drop:1.5" }, radar.ErrBadFaultSchedule},
		{"negative replica floor", func(c *radar.Config) { c.ReplicaFloor = -1 }, radar.ErrBadReplicaFloor},
		{"availability weight above 1", func(c *radar.Config) { c.AvailabilityWeight = 1.5 }, radar.ErrBadAvailabilityWeight},
		{"negative availability weight", func(c *radar.Config) { c.AvailabilityWeight = -0.1 }, radar.ErrBadAvailabilityWeight},
		{"negative ctrl retries", func(c *radar.Config) { c.CtrlRetries = -2 }, radar.ErrBadCtrlRetries},
		{"negative ctrl timeout", func(c *radar.Config) { c.CtrlTimeout = -time.Second }, radar.ErrBadCtrlTimeout},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := quickCfg(radar.Zipf)
			tc.mutate(&cfg)
			if err := cfg.Validate(); !errors.Is(err, tc.want) {
				t.Errorf("Validate() = %v, want errors.Is(err, %v)", err, tc.want)
			}
			if _, err := radar.Run(cfg); !errors.Is(err, tc.want) {
				t.Errorf("Run() = %v, want errors.Is(err, %v)", err, tc.want)
			}
		})
	}
}

func TestValidateZeroValueConfig(t *testing.T) {
	var cfg radar.Config
	err := cfg.Validate()
	if err == nil {
		t.Fatal("zero-value Config validated")
	}
	if !errors.Is(err, radar.ErrUnknownWorkload) {
		t.Errorf("Validate() = %v, want errors.Is(err, ErrUnknownWorkload)", err)
	}
	if _, err := radar.Run(cfg); !errors.Is(err, radar.ErrUnknownWorkload) {
		t.Errorf("Run() = %v, want errors.Is(err, ErrUnknownWorkload)", err)
	}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	for _, w := range []radar.Workload{radar.Zipf, radar.HotSites, radar.HotPages, radar.Regional, radar.Uniform} {
		if err := radar.DefaultConfig(w).Validate(); err != nil {
			t.Errorf("DefaultConfig(%q).Validate() = %v", w, err)
		}
	}
}

func TestRunSeedsNoSeeds(t *testing.T) {
	if _, err := radar.RunSeeds(quickCfg(radar.Uniform), nil, 0); !errors.Is(err, radar.ErrNoSeeds) {
		t.Errorf("RunSeeds(nil seeds) = %v, want errors.Is(err, ErrNoSeeds)", err)
	}
	if _, err := radar.RunSeeds(quickCfg(radar.Uniform), []int64{}, 0); !errors.Is(err, radar.ErrNoSeeds) {
		t.Errorf("RunSeeds(empty seeds) = %v, want errors.Is(err, ErrNoSeeds)", err)
	}
}

func TestRunSeedsSharedTraceWriter(t *testing.T) {
	cfg := quickCfg(radar.Uniform)
	cfg.TraceWriter = &strings.Builder{}
	_, err := radar.RunSeeds(cfg, []int64{1, 2}, 2)
	if !errors.Is(err, radar.ErrTraceWriterShared) {
		t.Errorf("RunSeeds(2 seeds, shared writer) = %v, want errors.Is(err, ErrTraceWriterShared)", err)
	}
	// A single seed does not share the writer, so it is allowed.
	cfg.Duration = 2 * time.Minute
	if _, err := radar.RunSeeds(cfg, []int64{1}, 1); err != nil {
		t.Errorf("RunSeeds(1 seed, writer) = %v, want success", err)
	}
}

func TestRunContextCancellation(t *testing.T) {
	// Full-scale 40-minute-horizon run: seconds of wall time if allowed
	// to finish. Cancel shortly after it starts and require it to return
	// well under a second later.
	cfg := radar.DefaultConfig(radar.Zipf)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	done := make(chan error, 1)
	go func() {
		res, err := radar.RunContext(ctx, cfg)
		if res != nil {
			err = errors.New("canceled run returned results")
		}
		done <- err
	}()

	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunContext = %v, want errors.Is(err, context.Canceled)", err)
		}
		if wait := time.Since(start); wait > time.Second {
			t.Errorf("cancellation took %v, want well under a second", wait)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunContext did not return after cancellation")
	}
}

func TestRunContextAlreadyCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := radar.RunContext(ctx, quickCfg(radar.Uniform))
	if !errors.Is(err, context.Canceled) {
		t.Errorf("RunContext(canceled ctx) = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("canceled run returned results")
	}
}

func TestRunSeedsContextCancellation(t *testing.T) {
	cfg := radar.DefaultConfig(radar.Zipf) // 40-minute horizon per seed
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	done := make(chan error, 1)
	go func() {
		_, err := radar.RunSeedsContext(ctx, cfg, []int64{1, 2, 3, 4}, 2)
		done <- err
	}()

	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunSeedsContext = %v, want errors.Is(err, context.Canceled)", err)
		}
		if wait := time.Since(start); wait > 2*time.Second {
			t.Errorf("cancellation took %v, want prompt return", wait)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunSeedsContext did not return after cancellation")
	}
}

func TestRunLossyControlPlane(t *testing.T) {
	cfg := quickCfg(radar.Zipf)
	cfg.FaultSchedule = "drop:0.2; dup:0.05; cdelay:20ms"
	cfg.CtrlRetries = 2
	cfg.CtrlTimeout = 500 * time.Millisecond
	res, err := radar.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if !s.CtrlEnabled {
		t.Fatal("message-fault schedule did not arm the control plane")
	}
	if s.CtrlRPCAttempts == 0 || s.CtrlRPCRetries == 0 {
		t.Errorf("no control RPC activity surfaced: %+v", s)
	}
	if s.ReconcileRuns == 0 {
		t.Error("no reconciliation runs surfaced")
	}
	// A reliable run keeps every control-plane field zero.
	clean, err := radar.Run(quickCfg(radar.Zipf))
	if err != nil {
		t.Fatal(err)
	}
	cs := clean.Summary
	if cs.CtrlEnabled || cs.CtrlRPCAttempts != 0 || cs.DeferredMoves != 0 || cs.ReconcileRuns != 0 {
		t.Errorf("reliable run leaked control-plane metrics: %+v", cs)
	}
}

func TestRunContextMatchesRun(t *testing.T) {
	cfg := quickCfg(radar.Uniform)
	cfg.Duration = 2 * time.Minute
	a, err := radar.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := radar.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary != b.Summary {
		t.Errorf("RunContext diverged from Run:\n%+v\n%+v", a.Summary, b.Summary)
	}
}
