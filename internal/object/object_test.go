package object

import (
	"testing"
	"testing/quick"

	"radar/internal/topology"
)

func TestUniverseValidate(t *testing.T) {
	tests := []struct {
		name string
		u    Universe
		ok   bool
	}{
		{"paper universe", Universe{Count: 10000, SizeBytes: 12 << 10}, true},
		{"zero count", Universe{Count: 0, SizeBytes: 1}, false},
		{"negative count", Universe{Count: -1, SizeBytes: 1}, false},
		{"zero size", Universe{Count: 1, SizeBytes: 0}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.u.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("Validate() = nil, want error")
			}
		})
	}
}

func TestHomeNodeRoundRobin(t *testing.T) {
	u := Universe{Count: 100, SizeBytes: 1}
	// Paper: "object i is assigned to node i mod 53".
	for _, tc := range []struct {
		id   ID
		n    int
		want topology.NodeID
	}{
		{0, 53, 0}, {52, 53, 52}, {53, 53, 0}, {107, 53, 1},
	} {
		if got := u.HomeNode(tc.id, tc.n); got != tc.want {
			t.Errorf("HomeNode(%d,%d) = %v, want %v", tc.id, tc.n, got, tc.want)
		}
	}
}

// TestHomePartitionProperty: ObjectsHomedAt partitions the universe —
// every object appears on exactly one home node.
func TestHomePartitionProperty(t *testing.T) {
	f := func(countRaw uint8, nodesRaw uint8) bool {
		count := int(countRaw)%500 + 1
		nodes := int(nodesRaw)%60 + 1
		u := Universe{Count: count, SizeBytes: 1}
		seen := make(map[ID]int)
		for n := 0; n < nodes; n++ {
			for _, id := range u.ObjectsHomedAt(topology.NodeID(n), nodes) {
				seen[id]++
				if u.HomeNode(id, nodes) != topology.NodeID(n) {
					return false
				}
			}
		}
		if len(seen) != count {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestObjectsHomedAtEvenSpread(t *testing.T) {
	u := Universe{Count: 10000, SizeBytes: 12 << 10}
	min, max := -1, -1
	for n := 0; n < 53; n++ {
		c := len(u.ObjectsHomedAt(topology.NodeID(n), 53))
		if min == -1 || c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min > 1 {
		t.Fatalf("round-robin spread uneven: min %d, max %d", min, max)
	}
}
