// Package object defines the identity of hosted Web objects and the object
// universe shared by the workload generators, the protocol and the
// simulator.
package object

import (
	"fmt"

	"radar/internal/topology"
)

// ID identifies a hosted object. IDs are dense, starting at 0.
type ID int

// Universe describes the set of hosted objects. The paper models 10,000
// objects of 12 KB each (Table 1).
type Universe struct {
	// Count is the number of objects.
	Count int
	// SizeBytes is the uniform object size; "we assume that all pages are
	// of equal size" (paper §6.1).
	SizeBytes int
}

// Validate reports whether the universe is usable.
func (u Universe) Validate() error {
	if u.Count <= 0 {
		return fmt.Errorf("object: universe count %d must be positive", u.Count)
	}
	if u.SizeBytes <= 0 {
		return fmt.Errorf("object: size %d bytes must be positive", u.SizeBytes)
	}
	return nil
}

// HomeNode returns the node the object is initially placed on under the
// paper's round-robin initial assignment: "object i is assigned to node
// i mod 53" (§6.1), generalized to any node count.
func (u Universe) HomeNode(id ID, numNodes int) topology.NodeID {
	return topology.NodeID(int(id) % numNodes)
}

// ObjectsHomedAt returns the IDs initially placed on node n, in order.
func (u Universe) ObjectsHomedAt(n topology.NodeID, numNodes int) []ID {
	var out []ID
	for i := int(n); i < u.Count; i += numNodes {
		out = append(out, ID(i))
	}
	return out
}
