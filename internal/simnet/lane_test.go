package simnet

import (
	"testing"
)

// TestLaneAccountingMerges checks a lane accumulates traffic privately
// (totals, link bytes) and MergeFrom folds it into the parent so the
// combined accounting equals a single-network run.
func TestLaneAccountingMerges(t *testing.T) {
	cfg := DefaultConfig()
	direct, err := New(cfg, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	parent, err := New(cfg, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	lane := parent.Lane(nil)

	direct.Transfer(0, path(0, 1, 2), 100, Payload)
	direct.Transfer(0, path(2, 3), 50, Overhead)
	parent.Transfer(0, path(0, 1, 2), 100, Payload)
	lane.Transfer(0, path(2, 3), 50, Overhead)

	if got := parent.OverheadByteHops(); got != 0 {
		t.Fatalf("lane traffic leaked into parent before merge: %d", got)
	}
	parent.MergeFrom(lane)
	if parent.PayloadByteHops() != direct.PayloadByteHops() {
		t.Errorf("payload byte-hops %d, want %d", parent.PayloadByteHops(), direct.PayloadByteHops())
	}
	if parent.OverheadByteHops() != direct.OverheadByteHops() {
		t.Errorf("overhead byte-hops %d, want %d", parent.OverheadByteHops(), direct.OverheadByteHops())
	}
	if parent.LinkBytes(2, 3) != direct.LinkBytes(2, 3) {
		t.Errorf("link 2->3 bytes %d, want %d", parent.LinkBytes(2, 3), direct.LinkBytes(2, 3))
	}
}

// TestLaneSharesLinkState checks link up/down state is shared between a
// network and its lanes: the fault plane flips links on the parent and
// every lane's path checks must observe it.
func TestLaneSharesLinkState(t *testing.T) {
	parent, err := New(DefaultConfig(), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	lane := parent.Lane(nil)
	parent.SetLinkDown(1, 2, true)
	if lane.PathUp(path(0, 1, 2)) {
		t.Error("lane did not observe link 1-2 down")
	}
	// SetLinkDown cuts both directions, so one undirected cut is two
	// directed down links.
	if !lane.LinkIsDown(1, 2) || lane.DownLinks() != 2 {
		t.Error("lane link-state accessors out of sync with parent")
	}
	parent.SetLinkDown(1, 2, false)
	if !lane.PathUp(path(0, 1, 2)) {
		t.Error("lane did not observe link 1-2 recovery")
	}
}

// TestLaneRefusesContention pins the documented restriction: lanes carry
// no shared busy-until state, so a contended network cannot shard.
func TestLaneRefusesContention(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Contention = true
	nw, err := New(cfg, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Lane() on a contended network did not panic")
		}
	}()
	nw.Lane(nil)
}
