package simnet

import (
	"math/rand"
	"testing"
	"time"

	"radar/internal/routing"
	"radar/internal/topology"
)

// routingTablesForTest builds routes without creating an import cycle in
// production code (simnet itself is routing-agnostic).
func routingTablesForTest(t *testing.T, topo *topology.Topology) *routing.Table {
	t.Helper()
	return routing.New(topo)
}

type recSink struct {
	classes []Class
	bytes   []int64
	hops    []int
}

func (r *recSink) RecordTransfer(_ time.Duration, class Class, bytes int64, hops int) {
	r.classes = append(r.classes, class)
	r.bytes = append(r.bytes, bytes)
	r.hops = append(r.hops, hops)
}

func path(ids ...topology.NodeID) []topology.NodeID { return ids }

func TestTransferLatencyNoContention(t *testing.T) {
	cfg := Config{HopDelay: 10 * time.Millisecond, LinkBandwidthBps: 1000}
	nw, err := New(cfg, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 500 bytes at 1000 B/s = 500ms tx per hop; 3 hops.
	got := nw.Transfer(time.Second, path(0, 1, 2, 3), 500, Payload)
	want := time.Second + 3*(500*time.Millisecond+10*time.Millisecond)
	if got != want {
		t.Fatalf("delivery = %v, want %v", got, want)
	}
}

func TestTransferByteHopAccounting(t *testing.T) {
	sink := &recSink{}
	nw, err := New(DefaultConfig(), 5, sink)
	if err != nil {
		t.Fatal(err)
	}
	nw.Transfer(0, path(0, 1, 2), 1200, Payload)
	nw.Transfer(0, path(2, 1), 300, Overhead)
	if got := nw.PayloadByteHops(); got != 2400 {
		t.Errorf("payload byte-hops = %d, want 2400", got)
	}
	if got := nw.OverheadByteHops(); got != 300 {
		t.Errorf("overhead byte-hops = %d, want 300", got)
	}
	if len(sink.classes) != 2 || sink.classes[0] != Payload || sink.classes[1] != Overhead {
		t.Errorf("recorder classes = %v", sink.classes)
	}
	if sink.hops[0] != 2 || sink.hops[1] != 1 {
		t.Errorf("recorder hops = %v", sink.hops)
	}
	if got := nw.LinkBytes(0, 1); got != 1200 {
		t.Errorf("LinkBytes(0,1) = %d, want 1200", got)
	}
	if got := nw.LinkBytes(1, 0); got != 0 {
		t.Errorf("LinkBytes(1,0) = %d, want 0 (directed)", got)
	}
}

func TestSingleNodePathIsFree(t *testing.T) {
	nw, err := New(DefaultConfig(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.Transfer(5*time.Second, path(1), 9999, Payload); got != 5*time.Second {
		t.Fatalf("local delivery = %v, want immediate", got)
	}
	if nw.PayloadByteHops() != 0 {
		t.Fatal("local delivery consumed bandwidth")
	}
}

func TestContentionSerializesLink(t *testing.T) {
	cfg := Config{HopDelay: 0, LinkBandwidthBps: 1000, Contention: true}
	nw, err := New(cfg, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Two 1000-byte transfers on the same link at t=0: second waits.
	d1 := nw.Transfer(0, path(0, 1), 1000, Payload)
	d2 := nw.Transfer(0, path(0, 1), 1000, Payload)
	if d1 != time.Second {
		t.Fatalf("first delivery = %v, want 1s", d1)
	}
	if d2 != 2*time.Second {
		t.Fatalf("second delivery = %v, want 2s (queued behind first)", d2)
	}
	// Opposite direction is a separate link.
	if d3 := nw.Transfer(0, path(1, 0), 1000, Payload); d3 != time.Second {
		t.Fatalf("reverse-direction delivery = %v, want 1s", d3)
	}
}

func TestNoContentionByDefault(t *testing.T) {
	cfg := Config{HopDelay: 0, LinkBandwidthBps: 1000}
	nw, err := New(cfg, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	d1 := nw.Transfer(0, path(0, 1), 1000, Payload)
	d2 := nw.Transfer(0, path(0, 1), 1000, Payload)
	if d1 != d2 {
		t.Fatalf("fixed-cost model should not serialize: %v vs %v", d1, d2)
	}
}

func TestControlLatencyAndMessage(t *testing.T) {
	nw, err := New(DefaultConfig(), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.ControlLatency(time.Second, 3); got != time.Second+30*time.Millisecond {
		t.Fatalf("ControlLatency = %v", got)
	}
	if got := nw.ControlLatency(time.Second, 0); got != time.Second {
		t.Fatalf("zero-hop ControlLatency = %v", got)
	}
	d := nw.ControlMessage(0, path(0, 1, 2), 200)
	if d != 20*time.Millisecond {
		t.Fatalf("ControlMessage delivery = %v, want 20ms", d)
	}
	if got := nw.OverheadByteHops(); got != 400 {
		t.Fatalf("control overhead byte-hops = %d, want 400", got)
	}
}

func TestHottestLink(t *testing.T) {
	nw, err := New(DefaultConfig(), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	nw.Transfer(0, path(0, 1), 10, Payload)
	nw.Transfer(0, path(2, 3), 500, Payload)
	a, b, bytes := nw.HottestLink()
	if a != 2 || b != 3 || bytes != 500 {
		t.Fatalf("HottestLink = %d->%d (%d bytes), want 2->3 (500)", a, b, bytes)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{HopDelay: -time.Second, LinkBandwidthBps: 1}, 2, nil); err == nil {
		t.Error("negative hop delay accepted")
	}
	if _, err := New(Config{LinkBandwidthBps: 0}, 2, nil); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := New(DefaultConfig(), 0, nil); err == nil {
		t.Error("zero nodes accepted")
	}
}

func TestDefaultConfigMatchesTable1(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.HopDelay != 10*time.Millisecond {
		t.Errorf("hop delay = %v, want 10ms", cfg.HopDelay)
	}
	if cfg.LinkBandwidthBps != 350*1024 {
		t.Errorf("bandwidth = %v, want 350 KB/s", cfg.LinkBandwidthBps)
	}
	if cfg.Contention {
		t.Error("contention should default off (paper's fixed-cost model)")
	}
}

// TestConservationProperty: the sum of per-link byte counters always
// equals total bytes x hops across random transfer sequences.
func TestConservationProperty(t *testing.T) {
	topo := topology.UUNET()
	routes := routingTablesForTest(t, topo)
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nw, err := New(DefaultConfig(), topo.NumNodes(), nil)
		if err != nil {
			t.Fatal(err)
		}
		var wantByteHops int64
		for i := 0; i < 200; i++ {
			a := topology.NodeID(rng.Intn(topo.NumNodes()))
			b := topology.NodeID(rng.Intn(topo.NumNodes()))
			bytes := int64(rng.Intn(20000) + 1)
			p := routes.Path(a, b)
			class := Payload
			if rng.Intn(2) == 0 {
				class = Overhead
			}
			nw.Transfer(0, p, bytes, class)
			wantByteHops += bytes * int64(len(p)-1)
		}
		var gotLinkBytes int64
		for a := 0; a < topo.NumNodes(); a++ {
			for b := 0; b < topo.NumNodes(); b++ {
				gotLinkBytes += nw.LinkBytes(topology.NodeID(a), topology.NodeID(b))
			}
		}
		if gotLinkBytes != wantByteHops {
			t.Fatalf("seed %d: link bytes %d != byte-hops %d", seed, gotLinkBytes, wantByteHops)
		}
		p, o := nw.PayloadByteHops(), nw.OverheadByteHops()
		if p+o != wantByteHops {
			t.Fatalf("seed %d: class totals %d != %d", seed, p+o, wantByteHops)
		}
	}
}

// TestContentionFIFOProperty: on a contended link, deliveries of
// back-to-back sends never reorder and never overlap.
func TestContentionFIFOProperty(t *testing.T) {
	cfg := Config{HopDelay: time.Millisecond, LinkBandwidthBps: 10000, Contention: true}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nw, err := New(cfg, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		now := time.Duration(0)
		var prevDeliver time.Duration
		for i := 0; i < 100; i++ {
			now += time.Duration(rng.Intn(5)) * time.Millisecond
			bytes := int64(rng.Intn(5000) + 1)
			d := nw.Transfer(now, []topology.NodeID{0, 1}, bytes, Payload)
			txTime := nw.TxTime(bytes)
			if d < now+txTime+cfg.HopDelay {
				t.Fatalf("seed %d transfer %d delivered before its own tx time", seed, i)
			}
			if d <= prevDeliver {
				t.Fatalf("seed %d transfer %d reordered: %v <= %v", seed, i, d, prevDeliver)
			}
			prevDeliver = d
		}
	}
}

func TestLinkDownLifecycle(t *testing.T) {
	nw, err := New(DefaultConfig(), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := []topology.NodeID{0, 1, 2}
	// Fault-free fast path: no allocation, everything up.
	if !nw.PathUp(path) || nw.DownLinks() != 0 {
		t.Fatal("fresh network reports a down link")
	}
	// Restoring a never-cut link must not allocate the down-map.
	nw.SetLinkDown(1, 2, false)
	if nw.DownLinks() != 0 || nw.LinkIsDown(1, 2) {
		t.Fatal("restoring an up link changed state")
	}

	nw.SetLinkDown(2, 1, true) // arbitrary endpoint order
	if !nw.LinkIsDown(1, 2) || !nw.LinkIsDown(2, 1) {
		t.Error("cut is not bidirectional")
	}
	if nw.DownLinks() != 2 {
		t.Errorf("DownLinks = %d, want 2 (both directions)", nw.DownLinks())
	}
	if nw.PathUp(path) {
		t.Error("path over the cut link reported up")
	}
	if !nw.PathUp([]topology.NodeID{0, 1}) {
		t.Error("path avoiding the cut link reported down")
	}
	if !nw.PathUp([]topology.NodeID{2}) {
		t.Error("single-node path reported down")
	}

	// Idempotence both ways.
	nw.SetLinkDown(1, 2, true)
	if nw.DownLinks() != 2 {
		t.Errorf("re-cutting changed DownLinks to %d", nw.DownLinks())
	}
	nw.SetLinkDown(1, 2, false)
	nw.SetLinkDown(1, 2, false)
	if nw.DownLinks() != 0 || nw.LinkIsDown(1, 2) {
		t.Error("restore did not clear the cut")
	}
	if !nw.PathUp(path) {
		t.Error("path still down after restore (counter fast path broken)")
	}
}

func TestControlMessageToMatchesControlMessageWhenUp(t *testing.T) {
	cfg := Config{HopDelay: 10 * time.Millisecond, LinkBandwidthBps: 1000}
	a, _ := New(cfg, 5, nil)
	b, _ := New(cfg, 5, nil)
	wantAt := a.ControlMessage(time.Second, path(0, 1, 2), 200)
	gotAt, ok := b.ControlMessageTo(time.Second, path(0, 1, 2), 200)
	if !ok || gotAt != wantAt {
		t.Fatalf("ControlMessageTo = (%v, %v), want (%v, true)", gotAt, ok, wantAt)
	}
	if a.OverheadByteHops() != b.OverheadByteHops() {
		t.Fatalf("byte-hops diverge: %d vs %d", a.OverheadByteHops(), b.OverheadByteHops())
	}
	if a.LinkBytes(1, 2) != b.LinkBytes(1, 2) {
		t.Fatalf("link bytes diverge")
	}
}

func TestControlMessageToStopsAtDownLink(t *testing.T) {
	cfg := Config{HopDelay: 10 * time.Millisecond, LinkBandwidthBps: 1000}
	nw, _ := New(cfg, 5, nil)
	nw.SetLinkDown(1, 2, true)
	at, ok := nw.ControlMessageTo(time.Second, path(0, 1, 2, 3), 200)
	if ok {
		t.Fatal("message crossed a down link")
	}
	// One hop (0->1) charged, then stranded at node 1.
	if want := time.Second + 10*time.Millisecond; at != want {
		t.Fatalf("stranded arrival = %v, want %v", at, want)
	}
	if got := nw.OverheadByteHops(); got != 200 {
		t.Fatalf("overhead byte-hops = %d, want 200 (partial charge)", got)
	}
	if got := nw.LinkBytes(1, 2); got != 0 {
		t.Fatalf("bytes on the cut link = %d, want 0", got)
	}
	// Lost at the first hop: nothing charged at all.
	nw2, _ := New(cfg, 5, nil)
	nw2.SetLinkDown(0, 1, true)
	at, ok = nw2.ControlMessageTo(time.Second, path(0, 1, 2), 200)
	if ok || at != time.Second || nw2.OverheadByteHops() != 0 {
		t.Fatalf("first-hop cut: (%v, %v, %d B·h), want (1s, false, 0)", at, ok, nw2.OverheadByteHops())
	}
	// Restoring the link restores full delivery.
	nw.SetLinkDown(1, 2, false)
	if _, ok := nw.ControlMessageTo(0, path(0, 1, 2, 3), 200); !ok {
		t.Fatal("restored path should deliver")
	}
}
