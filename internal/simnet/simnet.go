// Package simnet models the backbone network: per-hop propagation delay,
// per-link transmission time, optional FIFO link contention, and the
// byte×hop accounting behind the paper's bandwidth metric ("the bandwidth
// is determined by summing the number of bytes transmitted on each hop",
// §6.2).
//
// Transfers are walked hop by hop analytically at send time: each directed
// link keeps a busy-until timestamp, a transfer on a link starts at
// max(arrival, busyUntil) when contention is enabled, and store-and-forward
// transmission plus propagation delay accumulate into the delivery time.
// This charges exact per-link byte counts without per-hop simulator events.
//
// The paper's own simulation treats link bandwidth as a fixed per-hop
// transmission cost rather than a shared capacity (its offered response
// traffic would exceed 350 KB/s on hub links, yet reported latencies stay
// sub-second at equilibrium), so contention defaults to off; it can be
// enabled for ablations.
package simnet

import (
	"fmt"
	"time"

	"radar/internal/topology"
)

// Class labels a transfer for the traffic accounting: payload is object
// data returned to clients; overhead is protocol traffic (object copies
// between hosts, control messages), reported in Figure 7 as a percentage
// of the total.
type Class int

// Traffic classes.
const (
	Payload Class = iota + 1
	Overhead
)

// String returns the class's report name.
func (c Class) String() string {
	switch c {
	case Payload:
		return "payload"
	case Overhead:
		return "overhead"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Recorder receives traffic accounting callbacks; the metrics collector
// implements it.
type Recorder interface {
	// RecordTransfer reports a transfer of bytes over hops links of the
	// given class, initiated at virtual time now.
	RecordTransfer(now time.Duration, class Class, bytes int64, hops int)
}

// Config parameterizes the network model.
type Config struct {
	// HopDelay is the propagation delay per link (Table 1: 10 ms).
	HopDelay time.Duration
	// LinkBandwidthBps is the link bandwidth in bytes/sec
	// (Table 1: 350 KB/s).
	LinkBandwidthBps float64
	// Contention, when true, serializes transfers on each directed link
	// (FIFO store-and-forward). Off by default to match the paper's
	// fixed-cost bandwidth model.
	Contention bool
}

// DefaultConfig returns the Table 1 network parameters.
func DefaultConfig() Config {
	return Config{
		HopDelay:         10 * time.Millisecond,
		LinkBandwidthBps: 350 * 1024,
		Contention:       false,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.HopDelay < 0 {
		return fmt.Errorf("simnet: negative hop delay %v", c.HopDelay)
	}
	if c.LinkBandwidthBps <= 0 {
		return fmt.Errorf("simnet: non-positive bandwidth %v", c.LinkBandwidthBps)
	}
	return nil
}

// linkState is the link up/down state of a network, shared between a
// network and its accounting lanes (see Lane): fault injection cuts a link
// once, on the authoritative network, and every lane observes it.
type linkState struct {
	// down[a*n+b] marks a cut directed link (fault injection); allocated
	// lazily on the first SetLinkDown so fault-free runs pay nothing.
	// Routing tables are immutable, so a down link drops the traffic whose
	// path crosses it instead of triggering rerouting.
	down      []bool
	downLinks int
}

// Network charges transfers along precomputed paths and accounts traffic.
type Network struct {
	cfg      Config
	n        int
	recorder Recorder
	// busyUntil[a*n+b] is the directed link a->b's reservation horizon;
	// allocated lazily only when contention is enabled.
	busyUntil []time.Duration
	// linkBytes[a*n+b] accumulates bytes sent over each directed link,
	// for hot-link reports.
	linkBytes []int64
	// links is the shared up/down state; lanes alias their parent's.
	links *linkState
	// totals by class.
	payloadByteHops  int64
	overheadByteHops int64
}

// New builds a network over numNodes nodes. recorder may be nil.
func New(cfg Config, numNodes int, recorder Recorder) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if numNodes <= 0 {
		return nil, fmt.Errorf("simnet: numNodes %d must be positive", numNodes)
	}
	n := &Network{cfg: cfg, n: numNodes, recorder: recorder, linkBytes: make([]int64, numNodes*numNodes), links: &linkState{}}
	if cfg.Contention {
		n.busyUntil = make([]time.Duration, numNodes*numNodes)
	}
	return n, nil
}

// Lane returns an accounting lane of nw: a view that shares nw's
// configuration and link up/down state but accumulates byte counts and
// byte×hop totals privately, recording transfers against its own recorder.
// A sharded simulation gives each shard a lane so concurrent shards never
// write shared accounting state; MergeFrom folds lanes back after the run.
// Lanes do not support link contention (the busy-until feedback would
// couple shards through shared mutable state), so nw must have been built
// with Contention off.
func (nw *Network) Lane(recorder Recorder) *Network {
	if nw.busyUntil != nil {
		panic("simnet: accounting lanes are incompatible with link contention")
	}
	return &Network{
		cfg:       nw.cfg,
		n:         nw.n,
		recorder:  recorder,
		linkBytes: make([]int64, nw.n*nw.n),
		links:     nw.links,
	}
}

// MergeFrom folds a lane's private accounting (per-link bytes and byte×hop
// totals) into nw. The lane's recorder-side series are merged separately by
// the caller (see metrics.Collector.MergeFrom).
func (nw *Network) MergeFrom(lane *Network) {
	for i, v := range lane.linkBytes {
		if v != 0 {
			nw.linkBytes[i] += v
		}
	}
	nw.payloadByteHops += lane.payloadByteHops
	nw.overheadByteHops += lane.overheadByteHops
}

// TxTime returns the per-link transmission time of a transfer of bytes.
func (nw *Network) TxTime(bytes int64) time.Duration {
	return time.Duration(float64(bytes) / nw.cfg.LinkBandwidthBps * float64(time.Second))
}

// Transfer sends bytes along path (a node sequence, first element the
// source) starting at now, and returns the delivery time at the last node.
// A single-node path is a local delivery: zero latency, zero bytes on the
// wire. Traffic is recorded against the given class.
func (nw *Network) Transfer(now time.Duration, path []topology.NodeID, bytes int64, class Class) time.Duration {
	hops := len(path) - 1
	if hops <= 0 {
		return now
	}
	t := now
	tx := nw.TxTime(bytes)
	for i := 0; i < hops; i++ {
		a, b := int(path[i]), int(path[i+1])
		li := a*nw.n + b
		start := t
		if nw.busyUntil != nil {
			if nw.busyUntil[li] > start {
				start = nw.busyUntil[li]
			}
			nw.busyUntil[li] = start + tx
		}
		t = start + tx + nw.cfg.HopDelay
		nw.linkBytes[li] += bytes
	}
	nw.account(now, class, bytes, hops)
	return t
}

// ControlLatency returns the delivery time of a negligible-size control
// message (UDP request forwarding) along hops links: propagation only, no
// bytes accounted. The paper treats request sizes as negligible compared
// to page sizes.
func (nw *Network) ControlLatency(now time.Duration, hops int) time.Duration {
	if hops <= 0 {
		return now
	}
	return now + time.Duration(hops)*nw.cfg.HopDelay
}

// ControlMessage charges a small control message of the given size along
// path as overhead traffic and returns its delivery time. Used for
// CreateObj handshakes and redirector notifications.
func (nw *Network) ControlMessage(now time.Duration, path []topology.NodeID, bytes int64) time.Duration {
	hops := len(path) - 1
	if hops <= 0 {
		return now
	}
	for i := 0; i < hops; i++ {
		nw.linkBytes[int(path[i])*nw.n+int(path[i+1])] += bytes
	}
	nw.account(now, Overhead, bytes, hops)
	return now + time.Duration(hops)*nw.cfg.HopDelay
}

// ControlMessageTo charges a control message along path like
// ControlMessage, but respects link cuts: hops are charged in order until
// the first down link, where the message is lost (ok=false, arrival at the
// stranded node). With every hop up it behaves exactly like ControlMessage
// with ok=true. Used by the unreliable control plane, where a severed path
// consumes bandwidth up to the partition boundary instead of silently
// succeeding across it.
func (nw *Network) ControlMessageTo(now time.Duration, path []topology.NodeID, bytes int64) (arrival time.Duration, ok bool) {
	hops := len(path) - 1
	if hops <= 0 {
		return now, true
	}
	if nw.links.down == nil || nw.links.downLinks == 0 {
		return nw.ControlMessage(now, path, bytes), true
	}
	t := now
	sent := 0
	for i := 0; i < hops; i++ {
		li := int(path[i])*nw.n + int(path[i+1])
		if nw.links.down[li] {
			break
		}
		nw.linkBytes[li] += bytes
		t += nw.cfg.HopDelay
		sent++
	}
	if sent > 0 {
		nw.account(now, Overhead, bytes, sent)
	}
	return t, sent == hops
}

func (nw *Network) account(now time.Duration, class Class, bytes int64, hops int) {
	bh := bytes * int64(hops)
	switch class {
	case Payload:
		nw.payloadByteHops += bh
	case Overhead:
		nw.overheadByteHops += bh
	}
	if nw.recorder != nil {
		nw.recorder.RecordTransfer(now, class, bytes, hops)
	}
}

// PayloadByteHops returns cumulative payload traffic in byte×hops.
func (nw *Network) PayloadByteHops() int64 { return nw.payloadByteHops }

// OverheadByteHops returns cumulative overhead traffic in byte×hops.
func (nw *Network) OverheadByteHops() int64 { return nw.overheadByteHops }

// SetLinkDown cuts or restores the undirected link between a and b (both
// directions at once). It is idempotent: setting an already-down link down
// again is a no-op.
func (nw *Network) SetLinkDown(a, b topology.NodeID, down bool) {
	ls := nw.links
	if ls.down == nil {
		if !down {
			return
		}
		ls.down = make([]bool, nw.n*nw.n)
	}
	for _, li := range [2]int{int(a)*nw.n + int(b), int(b)*nw.n + int(a)} {
		if ls.down[li] != down {
			ls.down[li] = down
			if down {
				ls.downLinks++
			} else {
				ls.downLinks--
			}
		}
	}
}

// LinkIsDown reports whether the directed link a->b is currently cut.
func (nw *Network) LinkIsDown(a, b topology.NodeID) bool {
	if nw.links.down == nil {
		return false
	}
	return nw.links.down[int(a)*nw.n+int(b)]
}

// DownLinks returns the number of currently-cut directed links.
func (nw *Network) DownLinks() int { return nw.links.downLinks }

// PathUp reports whether every hop of path is currently up. When no link
// was ever cut this is a nil check; with no down links it is a counter
// check, so fault-free traffic pays nothing.
func (nw *Network) PathUp(path []topology.NodeID) bool {
	ls := nw.links
	if ls.down == nil || ls.downLinks == 0 {
		return true
	}
	for i := 0; i+1 < len(path); i++ {
		if ls.down[int(path[i])*nw.n+int(path[i+1])] {
			return false
		}
	}
	return true
}

// LinkBytes returns the cumulative bytes sent over the directed link a->b.
func (nw *Network) LinkBytes(a, b topology.NodeID) int64 {
	return nw.linkBytes[int(a)*nw.n+int(b)]
}

// HottestLink returns the directed link with the most cumulative bytes.
func (nw *Network) HottestLink() (a, b topology.NodeID, bytes int64) {
	best := 0
	for i, v := range nw.linkBytes {
		if v > nw.linkBytes[best] {
			best = i
		}
	}
	return topology.NodeID(best / nw.n), topology.NodeID(best % nw.n), nw.linkBytes[best]
}
