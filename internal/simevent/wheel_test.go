package simevent

import (
	"testing"
	"time"
)

type recHandler struct {
	log *[]int
	id  int
}

func (h *recHandler) Fire(time.Duration) { *h.log = append(*h.log, h.id) }

func ms(d int) time.Duration { return time.Duration(d) * time.Millisecond }

// TestWheelOrdersByTimeThenStamp checks pops follow (at, Stamp) order
// with the full stamp tie-break chain: SchedAt, then ParentAt, then
// Plane (deliveries before locals), then Seq.
func TestWheelOrdersByTimeThenStamp(t *testing.T) {
	var log []int
	w := NewWheel()
	push := func(id int, at time.Duration, st Stamp) {
		w.Push(at, st, &recHandler{&log, id})
	}
	// Deliberately inserted out of order.
	push(5, ms(10), Stamp{SchedAt: ms(5), Plane: PlaneLocal, Seq: 1})
	push(1, ms(5), Stamp{SchedAt: ms(1), Seq: 9})
	push(4, ms(10), Stamp{SchedAt: ms(5), Plane: PlaneDelivery, Seq: 7})
	push(2, ms(10), Stamp{SchedAt: ms(2), ParentAt: ms(2), Plane: PlaneLocal, Seq: 3})
	push(3, ms(10), Stamp{SchedAt: ms(5), ParentAt: 0, Plane: PlaneDelivery, Seq: 2})
	push(6, ms(10), Stamp{SchedAt: ms(5), Plane: PlaneLocal, Seq: 2})
	if n := w.RunBefore(ms(11)); n != 6 {
		t.Fatalf("ran %d events, want 6", n)
	}
	want := []int{1, 2, 3, 4, 5, 6}
	for i, id := range want {
		if log[i] != id {
			t.Fatalf("pop order %v, want %v", log, want)
		}
	}
}

// TestWheelRunBeforeIsExclusive checks the window boundary: events at
// exactly the limit stay pending, and the committed horizon advances to
// the limit even when the wheel drains early.
func TestWheelRunBeforeIsExclusive(t *testing.T) {
	var log []int
	w := NewWheel()
	w.Push(ms(10), Stamp{Seq: 1}, &recHandler{&log, 1})
	w.Push(ms(20), Stamp{Seq: 2}, &recHandler{&log, 2})
	if n := w.RunBefore(ms(20)); n != 1 {
		t.Fatalf("ran %d events, want 1 (event at limit must wait)", n)
	}
	if w.Committed() != ms(20) {
		t.Fatalf("committed %v, want %v", w.Committed(), ms(20))
	}
	if w.Len() != 1 {
		t.Fatalf("%d events pending, want 1", w.Len())
	}
	if n := w.RunBefore(ms(21)); n != 1 {
		t.Fatalf("second window ran %d events, want 1", n)
	}
	if len(log) != 2 || log[0] != 1 || log[1] != 2 {
		t.Fatalf("log %v", log)
	}
}

// TestWheelPushIntoCommittedPastPanics is the runtime lookahead
// assertion: a delivery timestamped inside the committed window means
// the conservative bound was violated, and must fail loudly rather than
// silently reorder history.
func TestWheelPushIntoCommittedPastPanics(t *testing.T) {
	var log []int
	w := NewWheel()
	w.RunBefore(ms(50))
	defer func() {
		if recover() == nil {
			t.Fatal("push at t=10ms into committed window [0,50ms) did not panic")
		}
	}()
	w.Push(ms(10), Stamp{}, &recHandler{&log, 1})
}

// TestWheelExecutingAndLocalSeq checks the reservation APIs used by the
// FCFS completion path: Executing exposes the current event's key while
// it fires, and NextLocalSeq increments monotonically.
func TestWheelExecutingAndLocalSeq(t *testing.T) {
	w := NewWheel()
	st := Stamp{SchedAt: ms(3), ParentAt: ms(1), Plane: PlaneDelivery, Seq: 42}
	var gotAt time.Duration
	var gotSt Stamp
	var s1, s2 uint64
	w.Push(ms(7), st, handlerFunc(func(now time.Duration) {
		gotAt, gotSt = w.Executing()
		s1, s2 = w.NextLocalSeq(), w.NextLocalSeq()
		if w.Now() != now {
			t.Errorf("Now()=%v, event fired at %v", w.Now(), now)
		}
	}))
	w.RunBefore(ms(8))
	if gotAt != ms(7) || gotSt != st {
		t.Errorf("Executing() = (%v, %+v), want (%v, %+v)", gotAt, gotSt, ms(7), st)
	}
	if s2 != s1+1 {
		t.Errorf("NextLocalSeq not monotonic: %d then %d", s1, s2)
	}
}

type handlerFunc func(time.Duration)

func (f handlerFunc) Fire(now time.Duration) { f(now) }

// TestStampLess pins the comparison chain.
func TestStampLess(t *testing.T) {
	base := Stamp{SchedAt: ms(5), ParentAt: ms(2), Plane: PlaneLocal, Seq: 10}
	cases := []struct {
		a, b Stamp
		want bool
	}{
		{Stamp{SchedAt: ms(4), ParentAt: ms(9), Plane: PlaneLocal, Seq: 99}, base, true},
		{Stamp{SchedAt: ms(5), ParentAt: ms(1), Plane: PlaneLocal, Seq: 99}, base, true},
		{Stamp{SchedAt: ms(5), ParentAt: ms(2), Plane: PlaneDelivery, Seq: 99}, base, true},
		{Stamp{SchedAt: ms(5), ParentAt: ms(2), Plane: PlaneLocal, Seq: 9}, base, true},
		{base, base, false},
		{base, Stamp{SchedAt: ms(4), ParentAt: ms(9), Plane: PlaneLocal, Seq: 99}, false},
	}
	for i, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("case %d: Less(%+v, %+v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}
