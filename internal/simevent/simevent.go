// Package simevent provides a deterministic discrete-event simulation
// engine: a virtual clock and a priority queue of timestamped events.
//
// Events scheduled for the same instant fire in the order they were
// scheduled (FIFO tie-breaking by sequence number), which makes every
// simulation run reproducible from its inputs alone.
package simevent

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Event is a unit of work scheduled to run at a virtual time.
type Event func(now time.Duration)

// item is a scheduled event inside the heap.
type item struct {
	at  time.Duration
	seq uint64
	fn  Event
}

// eventHeap implements heap.Interface ordered by (at, seq).
type eventHeap []*item

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) {
	it, ok := x.(*item)
	if !ok {
		// heap.Push is only called through Engine.Schedule, which always
		// pushes *item; reaching this branch is a programming error.
		panic(fmt.Sprintf("simevent: unexpected heap element of type %T", x))
	}
	*h = append(*h, it)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// ErrSchedulePast reports an attempt to schedule an event before the
// current virtual time.
var ErrSchedulePast = errors.New("simevent: schedule time is in the past")

// Engine is a single-threaded discrete-event simulator. The zero value is
// ready to use. Engine is not safe for concurrent use; a simulation is a
// sequential program over virtual time.
type Engine struct {
	heap    eventHeap
	now     time.Duration
	seq     uint64
	stopped bool
}

// New returns an Engine with its clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Len returns the number of pending events.
func (e *Engine) Len() int { return len(e.heap) }

// Schedule enqueues fn to run at absolute virtual time at. Scheduling at
// the current time is allowed (the event runs after already-pending events
// for the same instant). Scheduling in the past returns ErrSchedulePast.
func (e *Engine) Schedule(at time.Duration, fn Event) error {
	if at < e.now {
		return fmt.Errorf("%w: at=%v now=%v", ErrSchedulePast, at, e.now)
	}
	e.seq++
	heap.Push(&e.heap, &item{at: at, seq: e.seq, fn: fn})
	return nil
}

// ScheduleAfter enqueues fn to run delay after the current virtual time.
// A negative delay returns ErrSchedulePast.
func (e *Engine) ScheduleAfter(delay time.Duration, fn Event) error {
	return e.Schedule(e.now+delay, fn)
}

// Stop makes the current or next Run call return once the currently
// executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event and advances the clock
// to its timestamp. It returns false if no events are pending.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	it, ok := heap.Pop(&e.heap).(*item)
	if !ok {
		return false
	}
	e.now = it.at
	it.fn(e.now)
	return true
}

// Run executes events in timestamp order until the queue is empty, Stop is
// called, or the next event lies strictly beyond horizon. The clock never
// advances past the last executed event; events beyond the horizon remain
// queued so Run can be resumed with a later horizon.
func (e *Engine) Run(horizon time.Duration) {
	e.stopped = false
	for !e.stopped && len(e.heap) > 0 {
		if e.heap[0].at > horizon {
			return
		}
		e.Step()
	}
}

// RunAll executes events until the queue is empty or Stop is called.
func (e *Engine) RunAll() {
	e.stopped = false
	for !e.stopped && len(e.heap) > 0 {
		e.Step()
	}
}
