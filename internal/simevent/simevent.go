// Package simevent provides a deterministic discrete-event simulation
// engine: a virtual clock and a priority queue of timestamped events.
//
// Events scheduled for the same instant fire in the order they were
// scheduled (FIFO tie-breaking by sequence number), which makes every
// simulation run reproducible from its inputs alone.
//
// The queue is a value-based 4-ary heap of compact (time, seq) keys with
// event payloads held in a recycled slot arena: scheduling an event
// appends to contiguous backing slices instead of allocating heap nodes,
// so the steady-state scheduling path performs zero allocations.
// Hot callers that would otherwise allocate a closure per event can
// implement Handler and use ScheduleHandler; a pooled Handler round-trips
// through the queue without touching the garbage collector at all.
package simevent

import (
	"errors"
	"fmt"
	"time"
)

// Event is a unit of work scheduled to run at a virtual time.
type Event func(now time.Duration)

// Handler is the allocation-free alternative to Event: a pre-built
// (typically pooled) object whose Fire method runs at the scheduled time.
// Storing a pointer-shaped Handler in the queue does not allocate, whereas
// every closure passed to Schedule is one heap allocation.
type Handler interface {
	Fire(now time.Duration)
}

// key is a heap entry: the ordering fields plus the index of the event's
// payload slot. Keys are 24 bytes, so sift operations move and compare
// barely more than half the bytes a combined key+payload entry would;
// payloads sit still in a slot arena and are looked up once per pop.
type key struct {
	at   time.Duration
	seq  uint64
	slot int32
}

// payload is the work half of a scheduled event. Exactly one of fn and h
// is set. Slots are recycled through a LIFO freelist, so the steady-state
// scheduling path performs zero allocations.
type payload struct {
	fn Event
	h  Handler
}

// before reports whether a fires before b: earlier timestamp, FIFO on
// ties.
func (a *key) before(b *key) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// ErrSchedulePast reports an attempt to schedule an event before the
// current virtual time.
var ErrSchedulePast = errors.New("simevent: schedule time is in the past")

// Engine is a single-threaded discrete-event simulator. The zero value is
// ready to use. Engine is not safe for concurrent use; a simulation is a
// sequential program over virtual time.
type Engine struct {
	heap    []key
	slots   []payload
	free    []int32
	now     time.Duration
	seq     uint64
	stopped bool

	// interrupt, when non-nil, is polled every interruptEvery executed
	// events during Run/RunAll; returning true stops the run. It exists so
	// long simulations can observe context cancellation promptly without
	// per-event overhead or extra events in the queue.
	interrupt      func() bool
	interruptEvery int
}

// New returns an Engine with its clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Len returns the number of pending events.
func (e *Engine) Len() int { return len(e.heap) }

// PeekTime returns the fire time of the earliest pending event, or false
// when the queue is empty. The sharded simulation uses it to bound each
// parallel window at the next serially-executed global event.
func (e *Engine) PeekTime() (time.Duration, bool) {
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.heap[0].at, true
}

// SetInterrupt installs a poll function consulted every `every` executed
// events during Run and RunAll; when it returns true the run stops as if
// Stop had been called. every <= 0 selects a default of 4096. A nil f
// removes the hook. The hook does not alter the event stream, so runs
// with and without it produce identical results.
func (e *Engine) SetInterrupt(every int, f func() bool) {
	if every <= 0 {
		every = 4096
	}
	e.interrupt = f
	e.interruptEvery = every
}

// Schedule enqueues fn to run at absolute virtual time at. Scheduling at
// the current time is allowed (the event runs after already-pending events
// for the same instant). Scheduling in the past returns ErrSchedulePast.
// Note fn itself is typically a closure, which the caller allocates; use
// ScheduleHandler on paths hot enough to care.
func (e *Engine) Schedule(at time.Duration, fn Event) error {
	if at < e.now {
		return fmt.Errorf("%w: at=%v now=%v", ErrSchedulePast, at, e.now)
	}
	e.seq++
	e.push(at, e.seq, fn, nil)
	return nil
}

// ScheduleAfter enqueues fn to run delay after the current virtual time.
// A negative delay returns ErrSchedulePast.
func (e *Engine) ScheduleAfter(delay time.Duration, fn Event) error {
	return e.Schedule(e.now+delay, fn)
}

// ScheduleHandler enqueues h.Fire to run at absolute virtual time at,
// without allocating. Ordering semantics match Schedule exactly.
func (e *Engine) ScheduleHandler(at time.Duration, h Handler) error {
	if at < e.now {
		return fmt.Errorf("%w: at=%v now=%v", ErrSchedulePast, at, e.now)
	}
	e.seq++
	e.push(at, e.seq, nil, h)
	return nil
}

// ScheduleHandlerAfter enqueues h.Fire to run delay after the current
// virtual time. A negative delay returns ErrSchedulePast.
func (e *Engine) ScheduleHandlerAfter(delay time.Duration, h Handler) error {
	return e.ScheduleHandler(e.now+delay, h)
}

// ReserveSeq allocates and returns the next scheduling sequence number
// without enqueuing anything. Together with ScheduleHandlerReserved it
// lets a caller fix an event's FIFO tie-break position now and insert the
// event into the queue later, which keeps the queue small when a
// subsystem generates long runs of events whose relative order is already
// known (e.g. an FCFS server whose completion times are nondecreasing:
// only the head of each server's completion stream needs to sit in the
// queue).
func (e *Engine) ReserveSeq() uint64 {
	e.seq++
	return e.seq
}

// ScheduleHandlerReserved enqueues h.Fire at absolute virtual time at
// under a sequence number previously obtained from ReserveSeq. The event
// fires exactly when it would have had ScheduleHandler been called at
// reservation time, provided the caller inserts it before it becomes the
// earliest pending event — i.e. before every event with a smaller
// (at, seq) key has executed. internal/sim meets this by keeping deferred
// events in per-server FIFOs and enqueuing each next head while the
// previous head (whose key is strictly smaller) is firing.
func (e *Engine) ScheduleHandlerReserved(at time.Duration, seq uint64, h Handler) error {
	if at < e.now {
		return fmt.Errorf("%w: at=%v now=%v", ErrSchedulePast, at, e.now)
	}
	e.push(at, seq, nil, h)
	return nil
}

// Stop makes the current or next Run call return once the currently
// executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// The queue is a 4-ary min-heap of 24-byte keys ordered by (at, seq).
// Compared to the binary container/heap it halves the tree depth, keeps
// children of a node in one cache line's reach, and avoids both the
// per-node allocation and the interface boxing of heap.Push/heap.Pop.
// Event payloads live outside the heap in a slot arena, so sift swaps
// never move function or interface values.

func (e *Engine) push(at time.Duration, seq uint64, fn Event, h Handler) {
	var s int32
	if n := len(e.free); n > 0 {
		s = e.free[n-1]
		e.free = e.free[:n-1]
		e.slots[s] = payload{fn: fn, h: h}
	} else {
		s = int32(len(e.slots))
		e.slots = append(e.slots, payload{fn: fn, h: h})
	}
	// Hole-based sift-up: bubble a hole to the entry's final position and
	// write the entry once, instead of swapping it level by level. The
	// comparison sequence is identical to a swap-based sift, so the heap
	// layout — and therefore pop order — is unchanged.
	entry := key{at: at, seq: seq, slot: s}
	e.heap = append(e.heap, entry)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !entry.before(&e.heap[parent]) {
			break
		}
		e.heap[i] = e.heap[parent]
		i = parent
	}
	e.heap[i] = entry
}

// pop removes the earliest key and returns its timestamp and payload,
// releasing the payload slot back to the freelist.
func (e *Engine) pop() (time.Duration, payload) {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h = h[:n]
	e.heap = h
	// Hole-based sift-down: move the displaced last element's hole down to
	// its final position and write it once. This was the hottest loop in
	// the whole simulator (the heap pops one entry per event); compared to
	// the swap-based sift it performs one 24-byte write per level instead
	// of three, with an identical comparison sequence, so pop order — and
	// every simulation result — is bit-identical.
	if n > 0 {
		i := 0
		for {
			first := 4*i + 1
			if first >= n {
				break
			}
			best := first
			end := first + 4
			if end > n {
				end = n
			}
			for c := first + 1; c < end; c++ {
				if h[c].before(&h[best]) {
					best = c
				}
			}
			if !h[best].before(&last) {
				break
			}
			h[i] = h[best]
			i = best
		}
		h[i] = last
	}
	p := e.slots[top.slot]
	e.slots[top.slot] = payload{} // release fn/h references
	e.free = append(e.free, top.slot)
	return top.at, p
}

// Step executes the single earliest pending event and advances the clock
// to its timestamp. It returns false if no events are pending.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	at, p := e.pop()
	e.now = at
	if p.h != nil {
		p.h.Fire(e.now)
	} else {
		p.fn(e.now)
	}
	return true
}

// Run executes events in timestamp order until the queue is empty, Stop is
// called, the interrupt hook fires, or the next event lies strictly beyond
// horizon. The clock never advances past the last executed event; events
// beyond the horizon remain queued so Run can be resumed with a later
// horizon.
func (e *Engine) Run(horizon time.Duration) {
	e.stopped = false
	sinceCheck := 0
	for !e.stopped && len(e.heap) > 0 {
		if e.heap[0].at > horizon {
			return
		}
		e.Step()
		if e.interrupt != nil {
			if sinceCheck++; sinceCheck >= e.interruptEvery {
				sinceCheck = 0
				if e.interrupt() {
					return
				}
			}
		}
	}
}

// RunAll executes events until the queue is empty, Stop is called, or the
// interrupt hook fires.
func (e *Engine) RunAll() {
	e.stopped = false
	sinceCheck := 0
	for !e.stopped && len(e.heap) > 0 {
		e.Step()
		if e.interrupt != nil {
			if sinceCheck++; sinceCheck >= e.interruptEvery {
				sinceCheck = 0
				if e.interrupt() {
					return
				}
			}
		}
	}
}
