package simevent

import (
	"fmt"
	"time"
)

// Stamp fixes a sharded event's position in the canonical event order the
// serial engine would have produced. The serial engine breaks same-instant
// ties by a single global sequence number — the order Schedule was called.
// A sharded run has no global call order, so shard wheels order
// same-instant events by the causal coordinates that determine the serial
// call order instead:
//
//   - SchedAt, the virtual time the event was scheduled: the serial
//     sequence number is monotone in scheduling time, so of two events
//     firing at the same instant the one scheduled earlier fires first.
//   - ParentAt, the SchedAt of the event that did the scheduling: when two
//     events were scheduled at the same instant, the serial tie-break is
//     the relative order of their scheduler events at that instant, which
//     (one causal level up) is again ordered by scheduling time.
//   - Plane and Seq, a canonical residual order: cross-shard deliveries
//     (PlaneDelivery) carry the dispatcher's global emission counter, which
//     is exactly their serial relative order; shard-local events
//     (PlaneLocal) carry a per-wheel counter, which is their serial
//     relative order within the wheel. Between planes and across wheels the
//     residual order is canonical rather than reconstructed — the
//     simulation's time grid makes such three-deep ties unobserved in
//     practice, and the bit-identity property tests would catch one.
type Stamp struct {
	SchedAt  time.Duration
	ParentAt time.Duration
	Plane    uint8
	Seq      uint64
}

// Event planes, in canonical order.
const (
	// PlaneDelivery marks a cross-shard delivery scheduled by the serial
	// dispatcher plane; Seq is the dispatcher's global counter.
	PlaneDelivery uint8 = iota
	// PlaneLocal marks an event scheduled by the shard itself; Seq is the
	// wheel's local counter.
	PlaneLocal
)

// Less reports whether a orders before b among events firing at the same
// instant.
func (a Stamp) Less(b Stamp) bool {
	if a.SchedAt != b.SchedAt {
		return a.SchedAt < b.SchedAt
	}
	if a.ParentAt != b.ParentAt {
		return a.ParentAt < b.ParentAt
	}
	if a.Plane != b.Plane {
		return a.Plane < b.Plane
	}
	return a.Seq < b.Seq
}

// wheelKey is one shard-wheel heap entry: fire time, stamp, payload slot.
type wheelKey struct {
	at   time.Duration
	st   Stamp
	slot int32
}

func (a *wheelKey) before(b *wheelKey) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.st.Less(b.st)
}

// Wheel is one shard's event queue in a sharded simulation: a 4-ary min-
// heap of (at, Stamp) keys over pooled Handler payloads, mirroring Engine's
// layout but with the stamp-based tie-break above in place of the global
// sequence number. A Wheel belongs to exactly one shard worker; it is not
// safe for concurrent use. Cross-shard pushes happen only between windows,
// while the owning worker is parked at the barrier.
type Wheel struct {
	heap  []wheelKey
	slots []Handler
	free  []int32
	now   time.Duration
	// committed is the exclusive upper bound of the last completed window:
	// every event before it has fired. A push below it would rewrite
	// committed history, so Push panics — this is the conservative-
	// lookahead safety invariant, kept as a hard assertion.
	committed time.Duration
	seq       uint64
	execAt    time.Duration
	execSt    Stamp
}

// NewWheel returns an empty wheel with its clock and committed horizon at
// zero.
func NewWheel() *Wheel { return &Wheel{} }

// Now returns the timestamp of the last executed event.
func (w *Wheel) Now() time.Duration { return w.now }

// Committed returns the exclusive upper bound of the last completed window.
func (w *Wheel) Committed() time.Duration { return w.committed }

// Len returns the number of pending events.
func (w *Wheel) Len() int { return len(w.heap) }

// NextLocalSeq allocates the next PlaneLocal stamp sequence number. Like
// Engine.ReserveSeq it can be used to fix an event's tie-break position
// before the event is pushed, under the same invariant: the push must
// happen before any event with a larger key fires.
func (w *Wheel) NextLocalSeq() uint64 {
	w.seq++
	return w.seq
}

// Executing returns the key of the event currently firing; valid only
// during a Fire callback.
func (w *Wheel) Executing() (time.Duration, Stamp) { return w.execAt, w.execSt }

// PeekTime returns the fire time of the earliest pending event.
func (w *Wheel) PeekTime() (time.Duration, bool) {
	if len(w.heap) == 0 {
		return 0, false
	}
	return w.heap[0].at, true
}

// Push enqueues h to fire at absolute virtual time at under stamp st.
// Pushing into the committed past is a lookahead violation — the window
// protocol guarantees it cannot happen, so it panics rather than silently
// corrupting the canonical order.
func (w *Wheel) Push(at time.Duration, st Stamp, h Handler) {
	if at < w.committed {
		panic(fmt.Sprintf("simevent: sharded push at %v into committed past (window horizon %v)", at, w.committed))
	}
	var s int32
	if n := len(w.free); n > 0 {
		s = w.free[n-1]
		w.free = w.free[:n-1]
		w.slots[s] = h
	} else {
		s = int32(len(w.slots))
		w.slots = append(w.slots, h)
	}
	w.heap = append(w.heap, wheelKey{at: at, st: st, slot: s})
	i := len(w.heap) - 1
	entry := w.heap[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !entry.before(&w.heap[parent]) {
			break
		}
		w.heap[i] = w.heap[parent]
		i = parent
	}
	w.heap[i] = entry
}

// pop removes and returns the earliest entry.
func (w *Wheel) pop() (wheelKey, Handler) {
	h := w.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h = h[:n]
	w.heap = h
	if n > 0 {
		i := 0
		for {
			first := 4*i + 1
			if first >= n {
				break
			}
			best := first
			end := first + 4
			if end > n {
				end = n
			}
			for c := first + 1; c < end; c++ {
				if h[c].before(&h[best]) {
					best = c
				}
			}
			if !h[best].before(&last) {
				break
			}
			h[i] = h[best]
			i = best
		}
		h[i] = last
	}
	p := w.slots[top.slot]
	w.slots[top.slot] = nil
	w.free = append(w.free, top.slot)
	return top, p
}

// RunBefore fires every pending event with timestamp strictly before limit
// — one shard's share of the window [committed, limit) — and then commits
// the window, advancing the committed horizon to limit. It returns the
// number of events executed. Events pushed during execution (e.g. FCFS
// completion promotion) join the window if they land inside it.
func (w *Wheel) RunBefore(limit time.Duration) int {
	executed := 0
	for len(w.heap) > 0 && w.heap[0].at < limit {
		k, h := w.pop()
		w.now = k.at
		w.execAt, w.execSt = k.at, k.st
		h.Fire(k.at)
		executed++
	}
	if limit > w.committed {
		w.committed = limit
	}
	return executed
}
