package simevent

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestZeroValueReady(t *testing.T) {
	var e Engine
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	ran := false
	if err := e.Schedule(5*time.Millisecond, func(time.Duration) { ran = true }); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	e.RunAll()
	if !ran {
		t.Fatal("event did not run")
	}
	if e.Now() != 5*time.Millisecond {
		t.Fatalf("Now() = %v, want 5ms", e.Now())
	}
}

func TestTimestampOrder(t *testing.T) {
	e := New()
	var got []time.Duration
	times := []time.Duration{30, 10, 20, 5, 25}
	for _, at := range times {
		at := at
		if err := e.Schedule(at, func(now time.Duration) { got = append(got, now) }); err != nil {
			t.Fatalf("Schedule(%v): %v", at, err)
		}
	}
	e.RunAll()
	want := append([]time.Duration(nil), times...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d ran at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if err := e.Schedule(time.Second, func(time.Duration) { order = append(order, i) }); err != nil {
			t.Fatalf("Schedule: %v", err)
		}
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO among ties)", i, v, i)
		}
	}
}

func TestSchedulePastRejected(t *testing.T) {
	e := New()
	if err := e.Schedule(time.Second, func(time.Duration) {}); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	e.RunAll()
	err := e.Schedule(500*time.Millisecond, func(time.Duration) {})
	if !errors.Is(err, ErrSchedulePast) {
		t.Fatalf("err = %v, want ErrSchedulePast", err)
	}
	if err := e.ScheduleAfter(-time.Millisecond, func(time.Duration) {}); !errors.Is(err, ErrSchedulePast) {
		t.Fatalf("ScheduleAfter(-1ms) err = %v, want ErrSchedulePast", err)
	}
}

func TestScheduleAtNowRunsAfterPending(t *testing.T) {
	e := New()
	var order []string
	if err := e.Schedule(time.Second, func(time.Duration) {
		order = append(order, "first")
		if err := e.ScheduleAfter(0, func(time.Duration) { order = append(order, "rescheduled") }); err != nil {
			t.Errorf("ScheduleAfter(0): %v", err)
		}
	}); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := e.Schedule(time.Second, func(time.Duration) { order = append(order, "second") }); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	e.RunAll()
	want := []string{"first", "second", "rescheduled"}
	for i, w := range want {
		if i >= len(order) || order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunHorizon(t *testing.T) {
	e := New()
	var ran []time.Duration
	for _, at := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		if err := e.Schedule(at, func(now time.Duration) { ran = append(ran, now) }); err != nil {
			t.Fatalf("Schedule: %v", err)
		}
	}
	e.Run(2 * time.Second)
	if len(ran) != 2 {
		t.Fatalf("ran %d events within horizon, want 2", len(ran))
	}
	if e.Len() != 1 {
		t.Fatalf("pending = %d, want 1", e.Len())
	}
	e.Run(10 * time.Second)
	if len(ran) != 3 {
		t.Fatalf("resumed run executed %d total, want 3", len(ran))
	}
}

func TestStop(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 5; i++ {
		if err := e.Schedule(time.Duration(i)*time.Second, func(time.Duration) {
			count++
			if count == 2 {
				e.Stop()
			}
		}); err != nil {
			t.Fatalf("Schedule: %v", err)
		}
	}
	e.RunAll()
	if count != 2 {
		t.Fatalf("count = %d, want 2 (stopped after second event)", count)
	}
	e.RunAll()
	if count != 5 {
		t.Fatalf("count = %d after resume, want 5", count)
	}
}

func TestStepEmpty(t *testing.T) {
	e := New()
	if e.Step() {
		t.Fatal("Step on empty engine returned true")
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := New()
	depth := 0
	var fire func(now time.Duration)
	fire = func(now time.Duration) {
		depth++
		if depth < 100 {
			if err := e.ScheduleAfter(time.Millisecond, fire); err != nil {
				t.Errorf("ScheduleAfter: %v", err)
			}
		}
	}
	if err := e.Schedule(0, fire); err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	e.RunAll()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if e.Now() != 99*time.Millisecond {
		t.Fatalf("Now() = %v, want 99ms", e.Now())
	}
}

// TestOrderProperty checks with random schedules that execution order is a
// stable sort of (time, insertion order).
func TestOrderProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		type rec struct {
			at  time.Duration
			idx int
		}
		var want []rec
		var got []rec
		total := int(n%64) + 1
		for i := 0; i < total; i++ {
			at := time.Duration(rng.Intn(10)) * time.Millisecond
			want = append(want, rec{at, i})
			i := i
			if err := e.Schedule(at, func(now time.Duration) { got = append(got, rec{now, i}) }); err != nil {
				return false
			}
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
		e.RunAll()
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	e := New()
	nop := func(time.Duration) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Schedule(e.Now()+time.Duration(rng.Intn(1000))*time.Microsecond, nop); err != nil {
			b.Fatal(err)
		}
		if i%4 == 3 {
			e.Step()
		}
	}
	e.RunAll()
}

// benchHandler is a no-op pooled handler for the allocation benchmark.
type benchHandler struct{ fired int }

func (h *benchHandler) Fire(time.Duration) { h.fired++ }

// BenchmarkScheduleHandlerAndRun measures the pooled-handler hot path:
// unlike closure scheduling, it must not allocate per event.
func BenchmarkScheduleHandlerAndRun(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	e := New()
	h := &benchHandler{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.ScheduleHandler(e.Now()+time.Duration(rng.Intn(1000))*time.Microsecond, h); err != nil {
			b.Fatal(err)
		}
		if i%4 == 3 {
			e.Step()
		}
	}
	e.RunAll()
	if h.fired != b.N {
		b.Fatalf("fired %d of %d events", h.fired, b.N)
	}
}
