package oracle

import (
	"math"
	"testing"

	"radar/internal/object"
	"radar/internal/routing"
	"radar/internal/topology"
	"radar/internal/workload"
)

func TestEstimateDemandShapeAndMass(t *testing.T) {
	topo := topology.Line(5)
	u := object.Universe{Count: 50, SizeBytes: 1}
	gen, err := workload.NewUniform(u)
	if err != nil {
		t.Fatal(err)
	}
	d, err := EstimateDemand(gen, topo, u, 40, 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 5 || len(d[0]) != 50 {
		t.Fatalf("demand shape = %dx%d, want 5x50", len(d), len(d[0]))
	}
	for g := range d {
		total := 0.0
		for _, w := range d[g] {
			total += w
		}
		if math.Abs(total-40) > 1e-9 {
			t.Fatalf("gateway %d total rate %v, want 40", g, total)
		}
	}
}

func TestEstimateDemandValidation(t *testing.T) {
	topo := topology.Line(3)
	u := object.Universe{Count: 10, SizeBytes: 1}
	gen, _ := workload.NewUniform(u)
	if _, err := EstimateDemand(gen, topo, u, 40, 0, 1); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := EstimateDemand(gen, topo, u, 0, 100, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := EstimateDemand(gen, topo, object.Universe{}, 40, 100, 1); err == nil {
		t.Error("empty universe accepted")
	}
}

// TestGreedyBasePlacementIsOneMedian: with no extra budget, each object
// sits at its demand-weighted 1-median.
func TestGreedyBasePlacementIsOneMedian(t *testing.T) {
	topo := topology.Line(5)
	routes := routing.New(topo)
	// One object; all demand from gateway 4: the 1-median is node 4.
	demand := make(Demand, 5)
	for g := range demand {
		demand[g] = []float64{0}
	}
	demand[4][0] = 10
	p, err := Greedy(routes, demand, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p[0]) != 1 || p[0][0] != 4 {
		t.Fatalf("placement = %v, want [4]", p[0])
	}
	if got := Cost(routes, demand, p, 1); got != 0 {
		t.Fatalf("cost = %v, want 0 (replica at the demand source)", got)
	}
}

func TestGreedySpendsBudgetWhereItPays(t *testing.T) {
	topo := topology.Line(7)
	routes := routing.New(topo)
	// Object 0: demand from both ends; object 1: demand from node 3 only.
	demand := make(Demand, 7)
	for g := range demand {
		demand[g] = []float64{0, 0}
	}
	demand[0][0] = 10
	demand[6][0] = 10
	demand[3][1] = 10
	p, err := Greedy(routes, demand, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The single extra replica must go to object 0 (object 1 already has
	// zero cost at its median), splitting the line's ends.
	if len(p[0]) != 2 {
		t.Fatalf("object 0 replicas = %v, want 2", p[0])
	}
	if len(p[1]) != 1 || p[1][0] != 3 {
		t.Fatalf("object 1 placement = %v, want [3]", p[1])
	}
	if got := Cost(routes, demand, p, 1); got != 0 {
		t.Fatalf("cost = %v, want 0 (replicas at both ends)", got)
	}
}

// TestGreedyMonotone: cost never increases with budget, and each
// increment is no better than the previous (diminishing returns of a
// submodular objective under greedy).
func TestGreedyMonotone(t *testing.T) {
	topo := topology.UUNET()
	routes := routing.New(topo)
	u := object.Universe{Count: 100, SizeBytes: 12 << 10}
	gen, err := workload.NewZipf(u)
	if err != nil {
		t.Fatal(err)
	}
	demand, err := EstimateDemand(gen, topo, u, 40, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	prevDrop := math.Inf(1)
	// Equal budget increments so the per-increment gains are comparable.
	for _, budget := range []int{0, 20, 40, 60, 80} {
		p, err := Greedy(routes, demand, budget)
		if err != nil {
			t.Fatal(err)
		}
		c := Cost(routes, demand, p, u.SizeBytes)
		if c > prev+1e-6 {
			t.Fatalf("budget %d cost %v exceeds smaller-budget cost %v", budget, c, prev)
		}
		if !math.IsInf(prev, 1) {
			drop := prev - c
			if drop > prevDrop+1e-6 {
				t.Fatalf("budget %d gain %v exceeds earlier gain %v (not diminishing)", budget, drop, prevDrop)
			}
			prevDrop = drop
		}
		if got := TotalReplicas(p); got != 100+budget && budget > 0 {
			// Greedy may stop early only when no positive gain remains.
			if got > 100+budget {
				t.Fatalf("budget %d placed %d replicas", budget, got)
			}
		}
		prev = c
	}
}

func TestGreedyValidation(t *testing.T) {
	routes := routing.New(topology.Line(3))
	if _, err := Greedy(routes, Demand{{1}}, 0); err == nil {
		t.Error("mismatched demand accepted")
	}
	if _, err := Greedy(routes, Demand{{}, {}, {}}, 0); err == nil {
		t.Error("empty demand accepted")
	}
}

// TestGreedyBeatsRoundRobin: for a zipf workload on the backbone, the
// oracle's base placement already beats the paper's round-robin initial
// assignment, and extra budget widens the gap.
func TestGreedyBeatsRoundRobin(t *testing.T) {
	topo := topology.UUNET()
	routes := routing.New(topo)
	u := object.Universe{Count: 200, SizeBytes: 12 << 10}
	gen, err := workload.NewZipf(u)
	if err != nil {
		t.Fatal(err)
	}
	demand, err := EstimateDemand(gen, topo, u, 40, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	roundRobin := make(Placement, u.Count)
	for i := range roundRobin {
		roundRobin[i] = []topology.NodeID{u.HomeNode(object.ID(i), topo.NumNodes())}
	}
	rrCost := Cost(routes, demand, roundRobin, u.SizeBytes)
	base, err := Greedy(routes, demand, 0)
	if err != nil {
		t.Fatal(err)
	}
	baseCost := Cost(routes, demand, base, u.SizeBytes)
	if baseCost >= rrCost {
		t.Errorf("1-median cost %v not below round-robin %v", baseCost, rrCost)
	}
	rich, err := Greedy(routes, demand, 200)
	if err != nil {
		t.Fatal(err)
	}
	richCost := Cost(routes, demand, rich, u.SizeBytes)
	if richCost >= baseCost {
		t.Errorf("budgeted cost %v not below base %v", richCost, baseCost)
	}
}
