// Package oracle computes offline near-optimal replica placements against
// which the protocol can be compared — the paper's future-work question:
// "it would be an interesting question ... to see how much worse the
// performance of our protocol is compared to the optimal placement
// obtained by solving the global integer programming optimization
// problem" (§1.1).
//
// The oracle gets everything the protocol does not have: the full demand
// matrix (estimated by sampling the workload generator), the complete
// topology, and central coordination. It greedily places replicas to
// minimize total response byte×hops assuming each request is serviced by
// its closest replica. The objective is monotone submodular in the
// replica set, so lazy greedy evaluation is valid and the result is
// within (1-1/e) of the optimal for the same replica budget.
package oracle

import (
	"container/heap"
	"fmt"

	"radar/internal/object"
	"radar/internal/routing"
	"radar/internal/topology"
	"radar/internal/workload"
)

// Demand is the offered load matrix: Demand[g][x] is the request rate
// (req/s) from gateway g for object x.
type Demand [][]float64

// EstimateDemand samples the workload generator to build the demand
// matrix: samplesPerGateway draws per gateway, scaled to perGatewayRPS.
func EstimateDemand(gen workload.Generator, topo *topology.Topology, u object.Universe,
	perGatewayRPS float64, samplesPerGateway int, seed int64) (Demand, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	if samplesPerGateway <= 0 {
		return nil, fmt.Errorf("oracle: samplesPerGateway %d must be positive", samplesPerGateway)
	}
	if perGatewayRPS <= 0 {
		return nil, fmt.Errorf("oracle: perGatewayRPS %v must be positive", perGatewayRPS)
	}
	n := topo.NumNodes()
	d := make(Demand, n)
	for g := 0; g < n; g++ {
		rng := workload.Stream(seed, 0x0AC1E<<8|uint64(g))
		row := make([]float64, u.Count)
		for i := 0; i < samplesPerGateway; i++ {
			row[gen.Next(topology.NodeID(g), rng)]++
		}
		scale := perGatewayRPS / float64(samplesPerGateway)
		for x := range row {
			row[x] *= scale
		}
		d[g] = row
	}
	return d, nil
}

// Placement maps each object to its replica locations.
type Placement [][]topology.NodeID

// candidate is a heap entry for lazy greedy evaluation.
type candidate struct {
	obj   object.ID
	node  topology.NodeID
	gain  float64 // byte-hops/s saved, possibly stale
	epoch int     // object epoch when gain was computed
}

type candHeap []candidate

func (h candHeap) Len() int           { return len(h) }
func (h candHeap) Less(i, j int) bool { return h[i].gain > h[j].gain }
func (h candHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x any)        { *h = append(*h, x.(candidate)) }
func (h *candHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// Greedy computes a placement: every object first gets its single best
// location (the demand-weighted 1-median), then extraBudget additional
// replicas are placed by lazy greedy marginal gain. sizeBytes scales the
// objective but not the argmax; it is accepted for cost reporting
// symmetry.
func Greedy(routes *routing.Table, demand Demand, extraBudget int) (Placement, error) {
	n := routes.NumNodes()
	if len(demand) != n {
		return nil, fmt.Errorf("oracle: demand has %d gateways, topology %d", len(demand), n)
	}
	if n == 0 || len(demand[0]) == 0 {
		return nil, fmt.Errorf("oracle: empty demand")
	}
	numObjects := len(demand[0])

	// nearest[x][g] is the distance from gateway g to x's nearest replica.
	nearest := make([][]int16, numObjects)
	placement := make(Placement, numObjects)

	// Base placement: 1-median per object.
	for x := 0; x < numObjects; x++ {
		bestNode, bestCost := topology.NodeID(0), -1.0
		for v := 0; v < n; v++ {
			cost := 0.0
			for g := 0; g < n; g++ {
				if w := demand[g][x]; w > 0 {
					cost += w * float64(routes.Distance(topology.NodeID(g), topology.NodeID(v)))
				}
			}
			if bestCost < 0 || cost < bestCost {
				bestNode, bestCost = topology.NodeID(v), cost
			}
		}
		placement[x] = []topology.NodeID{bestNode}
		row := make([]int16, n)
		for g := 0; g < n; g++ {
			row[g] = int16(routes.Distance(topology.NodeID(g), bestNode))
		}
		nearest[x] = row
	}
	if extraBudget <= 0 {
		return placement, nil
	}

	gain := func(x int, v topology.NodeID) float64 {
		total := 0.0
		for g := 0; g < n; g++ {
			if w := demand[g][x]; w > 0 {
				if d := int16(routes.Distance(topology.NodeID(g), v)); d < nearest[x][g] {
					total += w * float64(nearest[x][g]-d)
				}
			}
		}
		return total
	}

	epochs := make([]int, numObjects)
	h := make(candHeap, 0, numObjects*n)
	for x := 0; x < numObjects; x++ {
		for v := 0; v < n; v++ {
			node := topology.NodeID(v)
			if node == placement[x][0] {
				continue
			}
			if g := gain(x, node); g > 0 {
				h = append(h, candidate{obj: object.ID(x), node: node, gain: g})
			}
		}
	}
	heap.Init(&h)

	placed := 0
	for placed < extraBudget && h.Len() > 0 {
		top := heap.Pop(&h).(candidate)
		x := int(top.obj)
		if top.epoch != epochs[x] {
			// Stale: recompute and push back (lazy greedy).
			if g := gain(x, top.node); g > 0 {
				heap.Push(&h, candidate{obj: top.obj, node: top.node, gain: g, epoch: epochs[x]})
			}
			continue
		}
		if top.gain <= 0 {
			break
		}
		placement[x] = append(placement[x], top.node)
		for g := 0; g < n; g++ {
			if d := int16(routes.Distance(topology.NodeID(g), top.node)); d < nearest[x][g] {
				nearest[x][g] = d
			}
		}
		epochs[x]++
		placed++
	}
	return placement, nil
}

// Cost returns the total response traffic (byte×hops per second) of a
// placement under closest-replica assignment.
func Cost(routes *routing.Table, demand Demand, placement Placement, sizeBytes int) float64 {
	n := routes.NumNodes()
	total := 0.0
	for x, replicas := range placement {
		for g := 0; g < n; g++ {
			w := demand[g][x]
			if w == 0 {
				continue
			}
			best := -1
			for _, r := range replicas {
				if d := routes.Distance(topology.NodeID(g), r); best < 0 || d < best {
					best = d
				}
			}
			if best > 0 {
				total += w * float64(best) * float64(sizeBytes)
			}
		}
	}
	return total
}

// TotalReplicas returns the number of replicas in a placement.
func TotalReplicas(p Placement) int {
	total := 0
	for _, r := range p {
		total += len(r)
	}
	return total
}
