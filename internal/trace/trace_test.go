package trace

import (
	"strings"
	"testing"
	"time"

	"radar/internal/object"
	"radar/internal/protocol"
	"radar/internal/topology"
	"radar/internal/workload"
)

func TestWriterReadRoundTrip(t *testing.T) {
	var buf strings.Builder
	w := NewWriter(&buf)
	w.OnMigrate(10*time.Second, 3, 1, 2, protocol.GeoMove)
	w.OnReplicate(20*time.Second, 4, 5, 6, protocol.LoadMove)
	w.OnDrop(30*time.Second, 7, 8)
	w.OnRefuse(40*time.Second, 9, 10, 11, protocol.Migrate)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 4 {
		t.Fatalf("Count = %d, want 4", w.Count())
	}
	events, err := Read(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("read %d events, want 4", len(events))
	}
	if events[0].Kind != "migrate" || events[0].T != 10 || events[0].Move != "geo" {
		t.Errorf("event 0 = %+v", events[0])
	}
	if events[1].Kind != "replicate" || events[1].Move != "load" {
		t.Errorf("event 1 = %+v", events[1])
	}
	if events[2].Kind != "drop" || events[2].From != 8 {
		t.Errorf("event 2 = %+v", events[2])
	}
	if events[3].Kind != "refuse" || events[3].Method != "MIGRATE" {
		t.Errorf("event 3 = %+v", events[3])
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{\"t\":1}\nnot json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSummarize(t *testing.T) {
	events := []Event{
		{Kind: "migrate", Move: "geo", From: 1, Object: 10},
		{Kind: "migrate", Move: "load", From: 1, Object: 10},
		{Kind: "replicate", Move: "geo", From: 2, Object: 11},
		{Kind: "drop", From: 3, Object: 10},
		{Kind: "refuse", From: 1, Object: 12},
	}
	s := Summarize(events)
	if s.Migrations != 2 || s.Replications != 1 || s.Drops != 1 || s.Refusals != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.GeoMoves != 2 || s.LoadMoves != 1 {
		t.Fatalf("move counts = %d/%d, want 2/1", s.GeoMoves, s.LoadMoves)
	}
	if s.ByHost[1] != 3 {
		t.Errorf("ByHost[1] = %d, want 3", s.ByHost[1])
	}
	if s.ByObject[10] != 3 {
		t.Errorf("ByObject[10] = %d, want 3", s.ByObject[10])
	}
}

func TestTeeFansOut(t *testing.T) {
	var a, b strings.Builder
	wa, wb := NewWriter(&a), NewWriter(&b)
	tee := Tee{wa, wb}
	tee.OnMigrate(time.Second, 1, 2, 3, protocol.GeoMove)
	tee.OnDrop(2*time.Second, 1, 2)
	tee.OnReplicate(3*time.Second, 1, 2, 3, protocol.GeoMove)
	tee.OnRefuse(4*time.Second, 1, 2, 3, protocol.Replicate)
	if wa.Count() != 4 || wb.Count() != 4 {
		t.Fatalf("counts = %d/%d, want 4/4", wa.Count(), wb.Count())
	}
	if a.String() != b.String() {
		t.Fatal("tee outputs differ")
	}
}

func TestRecordingAndReplay(t *testing.T) {
	u := object.Universe{Count: 100, SizeBytes: 1}
	inner, err := workload.NewZipf(u)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecording(inner, 0)
	rng := workload.Stream(1, 0)
	want := make([]object.ID, 0, 500)
	for i := 0; i < 500; i++ {
		want = append(want, rec.Next(topology.NodeID(i%5), rng))
	}
	if len(rec.Log()) != 500 {
		t.Fatalf("log = %d entries, want 500", len(rec.Log()))
	}

	rep, err := NewReplay("replayed", rec.Log())
	if err != nil {
		t.Fatal(err)
	}
	// Replaying gateway g's stream reproduces exactly its recorded
	// subsequence, in order.
	rng2 := workload.Stream(2, 0)
	for g := 0; g < 5; g++ {
		var recorded []object.ID
		for i, r := range rec.Log() {
			if r.Gateway == topology.NodeID(g) {
				recorded = append(recorded, r.Object)
				_ = i
			}
		}
		for i, wantID := range recorded {
			got := rep.Next(topology.NodeID(g), rng2)
			if got != wantID {
				t.Fatalf("gateway %d replay[%d] = %d, want %d", g, i, got, wantID)
			}
		}
	}
	// Cycling: next draw equals the first recorded one again.
	first := rec.Log()[0]
	if got := rep.Next(first.Gateway, rng2); got != first.Object {
		t.Fatalf("cycle draw = %d, want %d", got, first.Object)
	}
	// Unrecorded gateway falls back to the global mix without panicking.
	if id := rep.Next(topology.NodeID(50), rng2); id < 0 || int(id) >= u.Count {
		t.Fatalf("fallback object %d out of range", id)
	}
	_ = want
}

func TestRecordingLimit(t *testing.T) {
	u := object.Universe{Count: 10, SizeBytes: 1}
	inner, err := workload.NewUniform(u)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecording(inner, 3)
	rng := workload.Stream(1, 0)
	for i := 0; i < 10; i++ {
		rec.Next(0, rng)
	}
	if len(rec.Log()) != 3 {
		t.Fatalf("log = %d entries, want capped 3", len(rec.Log()))
	}
}

func TestRequestsCSVRoundTrip(t *testing.T) {
	log := []Request{{Gateway: 3, Object: 42}, {Gateway: 0, Object: 7}}
	var buf strings.Builder
	if err := WriteRequests(&buf, log); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequests(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != log[0] || got[1] != log[1] {
		t.Fatalf("round trip = %v, want %v", got, log)
	}
}

func TestReadRequestsErrors(t *testing.T) {
	cases := []string{"nocomma", "x,1", "1,y"}
	for _, c := range cases {
		if _, err := ReadRequests(strings.NewReader(c)); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
	// Blank lines are tolerated.
	got, err := ReadRequests(strings.NewReader("\n1,2\n\n"))
	if err != nil || len(got) != 1 {
		t.Fatalf("blank-line handling: %v, %v", got, err)
	}
}

func TestNewReplayEmpty(t *testing.T) {
	if _, err := NewReplay("x", nil); err == nil {
		t.Fatal("empty log accepted")
	}
}
