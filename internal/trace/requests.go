package trace

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"radar/internal/object"
	"radar/internal/topology"
	"radar/internal/workload"
)

// Request is one recorded request: which gateway it entered at and which
// object it asked for.
type Request struct {
	Gateway topology.NodeID
	Object  object.ID
}

// Recording wraps a workload generator and appends every drawn request to
// an in-memory log that can be saved with WriteRequests.
type Recording struct {
	inner workload.Generator
	log   []Request
	limit int
}

// NewRecording wraps inner; limit caps the log size (0 = unlimited).
func NewRecording(inner workload.Generator, limit int) *Recording {
	return &Recording{inner: inner, limit: limit}
}

// Name implements workload.Generator.
func (r *Recording) Name() string { return r.inner.Name() + "+recorded" }

// Next implements workload.Generator.
func (r *Recording) Next(g topology.NodeID, rng *rand.Rand) object.ID {
	id := r.inner.Next(g, rng)
	if r.limit == 0 || len(r.log) < r.limit {
		r.log = append(r.log, Request{Gateway: g, Object: id})
	}
	return id
}

// Log returns the recorded requests (shared slice; do not modify).
func (r *Recording) Log() []Request { return r.log }

// Replay plays a request log back as a workload generator: each gateway
// consumes its own recorded sub-sequence, cycling when exhausted, so the
// per-gateway object mix matches the recording regardless of the replay's
// request pacing.
type Replay struct {
	name   string
	perGW  map[topology.NodeID][]object.ID
	cursor map[topology.NodeID]int
	// fallback covers gateways with no recorded requests.
	fallback []object.ID
}

// NewReplay builds a replay generator from a log. The log must be
// non-empty.
func NewReplay(name string, log []Request) (*Replay, error) {
	if len(log) == 0 {
		return nil, fmt.Errorf("trace: empty request log")
	}
	r := &Replay{
		name:   name,
		perGW:  make(map[topology.NodeID][]object.ID),
		cursor: make(map[topology.NodeID]int),
	}
	for _, req := range log {
		r.perGW[req.Gateway] = append(r.perGW[req.Gateway], req.Object)
		r.fallback = append(r.fallback, req.Object)
	}
	return r, nil
}

// Name implements workload.Generator.
func (r *Replay) Name() string { return r.name }

// Next implements workload.Generator. The rng is only used for gateways
// absent from the recording.
func (r *Replay) Next(g topology.NodeID, rng *rand.Rand) object.ID {
	seq := r.perGW[g]
	if len(seq) == 0 {
		return r.fallback[rng.Intn(len(r.fallback))]
	}
	id := seq[r.cursor[g]%len(seq)]
	r.cursor[g]++
	return id
}

// WriteRequests saves a request log as "gateway,object" CSV lines.
func WriteRequests(w io.Writer, log []Request) error {
	bw := bufio.NewWriter(w)
	for _, req := range log {
		if _, err := fmt.Fprintf(bw, "%d,%d\n", req.Gateway, req.Object); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// ReadRequests parses a request log written by WriteRequests.
func ReadRequests(r io.Reader) ([]Request, error) {
	var out []Request
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		gw, obj, ok := strings.Cut(text, ",")
		if !ok {
			return nil, fmt.Errorf("trace: line %d: want gateway,object", line)
		}
		g, err := strconv.Atoi(strings.TrimSpace(gw))
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad gateway: %w", line, err)
		}
		o, err := strconv.Atoi(strings.TrimSpace(obj))
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad object: %w", line, err)
		}
		out = append(out, Request{Gateway: topology.NodeID(g), Object: object.ID(o)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return out, nil
}
