package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzReadRequests: request-log parsing must never panic on malformed
// input, and any input it accepts must survive a write/read round trip
// unchanged.
func FuzzReadRequests(f *testing.F) {
	f.Add([]byte("3,17\n0,2\n"))
	f.Add([]byte("  12 , 9  \n\n5,5"))
	f.Add([]byte("garbage"))
	f.Add([]byte("1,2,3\n"))
	f.Add([]byte(",\n"))
	f.Add([]byte("9007199254740993,-1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		log, err := ReadRequests(bytes.NewReader(data))
		if err != nil {
			return // rejecting malformed input is fine; panicking is not
		}
		var buf bytes.Buffer
		if err := WriteRequests(&buf, log); err != nil {
			t.Fatalf("WriteRequests on parsed log: %v", err)
		}
		again, err := ReadRequests(&buf)
		if err != nil {
			t.Fatalf("re-parsing written log: %v", err)
		}
		if len(log) == 0 && len(again) == 0 {
			return // DeepEqual distinguishes nil from empty; both mean no requests
		}
		if !reflect.DeepEqual(log, again) {
			t.Fatalf("round trip changed the log:\n%v\nvs\n%v", log, again)
		}
	})
}
