// Package trace records and replays simulation activity.
//
// Two artifact kinds are supported:
//
//   - Placement traces: a JSONL stream of protocol events (migrations,
//     replications, drops, refusals) for debugging and offline analysis.
//     Writer implements protocol.Observer; Reader parses the stream back
//     and Summarize aggregates it.
//   - Request logs: the (gateway, object) sequence of a workload, written
//     as CSV. Recording wraps any workload generator; Replay plays a log
//     back as a generator, enabling trace-driven simulation (the paper's
//     companion report [1] runs trace-driven experiments; the format here
//     doubles as an import path for real traces).
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"radar/internal/object"
	"radar/internal/protocol"
	"radar/internal/topology"
)

// Event is one placement protocol event.
type Event struct {
	// T is the virtual time in seconds.
	T float64 `json:"t"`
	// Kind is one of "migrate", "replicate", "drop", "refuse".
	Kind string `json:"ev"`
	// Object is the object acted on.
	Object object.ID `json:"obj"`
	// From is the initiating host (the dropping host for "drop").
	From topology.NodeID `json:"from"`
	// To is the receiving host; absent for "drop".
	To topology.NodeID `json:"to,omitempty"`
	// Move is "geo" or "load" for migrations/replications.
	Move string `json:"move,omitempty"`
	// Method is "MIGRATE" or "REPLICATE" for refusals.
	Method string `json:"method,omitempty"`
}

// Writer streams placement events as JSONL. It implements
// protocol.Observer; wire it as (or inside) a simulation observer. Writer
// is not safe for concurrent use — the simulation is single-threaded.
type Writer struct {
	enc *json.Encoder
	err error
	n   int64
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{enc: json.NewEncoder(w)}
}

// Err returns the first write error encountered, if any.
func (w *Writer) Err() error { return w.err }

// Count returns the number of events written.
func (w *Writer) Count() int64 { return w.n }

func (w *Writer) emit(e Event) {
	if w.err != nil {
		return
	}
	if err := w.enc.Encode(e); err != nil {
		w.err = fmt.Errorf("trace: %w", err)
		return
	}
	w.n++
}

// OnMigrate implements protocol.Observer.
func (w *Writer) OnMigrate(now time.Duration, id object.ID, from, to topology.NodeID, kind protocol.MoveKind) {
	w.emit(Event{T: now.Seconds(), Kind: "migrate", Object: id, From: from, To: to, Move: kind.String()})
}

// OnReplicate implements protocol.Observer.
func (w *Writer) OnReplicate(now time.Duration, id object.ID, from, to topology.NodeID, kind protocol.MoveKind) {
	w.emit(Event{T: now.Seconds(), Kind: "replicate", Object: id, From: from, To: to, Move: kind.String()})
}

// OnDrop implements protocol.Observer.
func (w *Writer) OnDrop(now time.Duration, id object.ID, host topology.NodeID) {
	w.emit(Event{T: now.Seconds(), Kind: "drop", Object: id, From: host})
}

// OnRefuse implements protocol.Observer.
func (w *Writer) OnRefuse(now time.Duration, id object.ID, from, to topology.NodeID, method protocol.Method) {
	w.emit(Event{T: now.Seconds(), Kind: "refuse", Object: id, From: from, To: to, Method: method.String()})
}

// Tee fans protocol events out to several observers (e.g. metrics
// collection plus a trace writer).
type Tee []protocol.Observer

// OnMigrate implements protocol.Observer.
func (t Tee) OnMigrate(now time.Duration, id object.ID, from, to topology.NodeID, kind protocol.MoveKind) {
	for _, o := range t {
		o.OnMigrate(now, id, from, to, kind)
	}
}

// OnReplicate implements protocol.Observer.
func (t Tee) OnReplicate(now time.Duration, id object.ID, from, to topology.NodeID, kind protocol.MoveKind) {
	for _, o := range t {
		o.OnReplicate(now, id, from, to, kind)
	}
}

// OnDrop implements protocol.Observer.
func (t Tee) OnDrop(now time.Duration, id object.ID, host topology.NodeID) {
	for _, o := range t {
		o.OnDrop(now, id, host)
	}
}

// OnRefuse implements protocol.Observer.
func (t Tee) OnRefuse(now time.Duration, id object.ID, from, to topology.NodeID, method protocol.Method) {
	for _, o := range t {
		o.OnRefuse(now, id, from, to, method)
	}
}

// Read parses a JSONL placement trace.
func Read(r io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, fmt.Errorf("trace: parsing event %d: %w", len(out)+1, err)
		}
		out = append(out, e)
	}
}

// Summary aggregates a placement trace.
type Summary struct {
	Migrations   int
	Replications int
	Drops        int
	Refusals     int
	GeoMoves     int
	LoadMoves    int
	// ByHost counts events initiated per host.
	ByHost map[topology.NodeID]int
	// ByObject counts events per object.
	ByObject map[object.ID]int
}

// Summarize aggregates events into per-kind, per-host and per-object
// counts.
func Summarize(events []Event) Summary {
	s := Summary{
		ByHost:   make(map[topology.NodeID]int),
		ByObject: make(map[object.ID]int),
	}
	for _, e := range events {
		switch e.Kind {
		case "migrate":
			s.Migrations++
		case "replicate":
			s.Replications++
		case "drop":
			s.Drops++
		case "refuse":
			s.Refusals++
		}
		switch e.Move {
		case "geo":
			s.GeoMoves++
		case "load":
			s.LoadMoves++
		}
		s.ByHost[e.From]++
		s.ByObject[e.Object]++
	}
	return s
}
