package store

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"radar/internal/fault"
	"radar/internal/object"
)

const kb = 1024

// drive applies a scripted operation sequence and returns the final
// flattened stats, for determinism comparisons.
func drive(st ReplicaStore, ops int, seed int64) []LayerStats {
	rng := rand.New(rand.NewSource(seed))
	now := time.Duration(0)
	for i := 0; i < ops; i++ {
		now += time.Duration(rng.Intn(50)+1) * time.Millisecond
		id := object.ID(rng.Intn(200))
		switch rng.Intn(10) {
		case 0:
			st.Create(now, id)
		case 1:
			st.Drop(now, id)
		default:
			if st.Contains(id) {
				st.ServeCost(now, id)
			} else {
				st.Create(now, id)
			}
		}
	}
	return st.Stats(nil)
}

func TestMemoryBasics(t *testing.T) {
	m := NewMemory("mem:2", 2, kb)
	now := time.Duration(0)
	if !m.Create(now, 1) || !m.Create(now, 2) {
		t.Fatal("creates under capacity refused")
	}
	if m.Create(now, 3) {
		t.Error("create over capacity accepted")
	}
	if !m.Create(now, 1) {
		t.Error("re-create of held replica refused")
	}
	if got := m.BytesUsed(); got != 2*kb {
		t.Errorf("BytesUsed = %d, want %d", got, 2*kb)
	}
	if got := m.CapacityBytes(); got != 2*kb {
		t.Errorf("CapacityBytes = %d, want %d", got, 2*kb)
	}
	if c := m.ServeCost(now, 1); c != 0 {
		t.Errorf("memory ServeCost = %v, want 0", c)
	}
	m.Drop(now, 1)
	if m.Contains(1) || !m.Contains(2) {
		t.Error("drop affected the wrong replica")
	}
	m.Clear(now)
	if m.Replicas() != 0 {
		t.Error("Clear left replicas behind")
	}
}

func TestDiskCharges(t *testing.T) {
	d := NewDisk("disk:5ms", 5*time.Millisecond, kb)
	d.Create(0, 7)
	if c := d.ServeCost(0, 7); c != 5*time.Millisecond {
		t.Errorf("disk ServeCost = %v, want 5ms", c)
	}
	st := d.Stats(nil)
	if st[0].Serves != 1 || st[0].CostNanos != int64(5*time.Millisecond) {
		t.Errorf("disk stats = %+v", st[0])
	}
}

func TestCacheHitMissEviction(t *testing.T) {
	c := NewCache(NewMemory("mem:2", 2, kb), NewDisk("disk:5ms", 5*time.Millisecond, kb), 2)
	now := time.Duration(0)
	for id := object.ID(1); id <= 3; id++ {
		if !c.Create(now, id) {
			t.Fatalf("create %d refused", id)
		}
	}
	// Creates promote; capacity 2, so one eviction already happened.
	// Serve id 1: evicted (LRU among {2,3} kept), so it misses and pays
	// the disk, then promotes, evicting the next LRU.
	if cost := c.ServeCost(now, 1); cost != 5*time.Millisecond {
		t.Errorf("miss cost = %v, want 5ms", cost)
	}
	if cost := c.ServeCost(now, 1); cost != 0 {
		t.Errorf("hit cost = %v, want 0", cost)
	}
	st := c.Stats(nil)
	if st[0].Label != "cache" || st[0].Hits != 1 || st[0].Misses != 1 {
		t.Errorf("cache stats = %+v", st[0])
	}
	if st[0].Evictions != 2 {
		t.Errorf("evictions = %d, want 2", st[0].Evictions)
	}
	// Contains is authoritative on the slow tier: every created replica
	// is present regardless of cache residency.
	for id := object.ID(1); id <= 3; id++ {
		if !c.Contains(id) {
			t.Errorf("Contains(%d) = false after create", id)
		}
	}
	// Drop removes from both tiers.
	c.Drop(now, 1)
	if c.Contains(1) {
		t.Error("dropped replica still present")
	}
}

func TestCacheEvictionDeterminism(t *testing.T) {
	build := func() ReplicaStore {
		return NewCache(NewMemory("mem:8", 8, kb), NewDisk("disk:5ms", 5*time.Millisecond, kb), 8)
	}
	a := drive(build(), 5000, 42)
	b := drive(build(), 5000, 42)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical op sequences diverged:\n%+v\n%+v", a, b)
	}
	if a[0].Evictions == 0 || a[0].Hits == 0 || a[0].Misses == 0 {
		t.Errorf("drive did not exercise the cache: %+v", a[0])
	}
}

func TestMirrorReadRepairConvergence(t *testing.T) {
	a := NewMemory("mem", 0, kb)
	b := NewMemory("mem", 0, kb)
	m := NewMirror(a, b)
	now := time.Duration(0)
	for id := object.ID(1); id <= 10; id++ {
		m.Create(now, id)
	}
	// Simulate divergence: side B loses everything.
	b.Clear(now)
	if a.Replicas() != 10 || b.Replicas() != 0 {
		t.Fatalf("setup: a=%d b=%d", a.Replicas(), b.Replicas())
	}
	// Every serve heals the served replica on the lost side.
	for id := object.ID(1); id <= 10; id++ {
		if !m.Contains(id) {
			t.Fatalf("mirror lost replica %d", id)
		}
		m.ServeCost(now, id)
	}
	if b.Replicas() != 10 {
		t.Errorf("read-repair left b at %d replicas, want 10", b.Replicas())
	}
	st := m.Stats(nil)
	if st[0].Repairs != 10 {
		t.Errorf("Repairs = %d, want 10", st[0].Repairs)
	}
	// Converged: further serves repair nothing.
	m.ServeCost(now, 1)
	if got := m.Stats(nil)[0].Repairs; got != 10 {
		t.Errorf("Repairs after convergence = %d, want 10", got)
	}
}

func TestMirrorAccounting(t *testing.T) {
	m := NewMirror(NewMemory("mem", 0, kb), NewMemory("mem", 0, kb))
	m.Create(0, 1)
	m.Create(0, 2)
	if m.Replicas() != 2 || m.BytesUsed() != 2*kb {
		t.Errorf("mirror accounting: replicas=%d bytes=%d", m.Replicas(), m.BytesUsed())
	}
	m.Drop(0, 1)
	if m.Replicas() != 1 {
		t.Errorf("replicas after drop = %d", m.Replicas())
	}
}

// outage builds a deterministic single-window timeline: down at from, up
// at to.
func outage(from, to time.Duration) []fault.Event {
	return []fault.Event{
		{Kind: fault.HostDown, At: from},
		{Kind: fault.HostUp, At: to},
	}
}

func TestFaultyOutageSemantics(t *testing.T) {
	const penalty = 25 * time.Millisecond
	f := NewFaulty(NewMemory("mem", 0, kb), outage(10*time.Second, 20*time.Second), penalty)

	// Before the outage: normal behavior.
	f.Create(time.Second, 1)
	if c := f.ServeCost(2*time.Second, 1); c != 0 {
		t.Errorf("pre-outage serve cost = %v, want 0", c)
	}

	// During the outage: contents wiped, writes lost, serves refetch.
	if c := f.ServeCost(15*time.Second, 1); c != penalty {
		t.Errorf("outage serve cost = %v, want %v", c, penalty)
	}
	if !f.Create(16*time.Second, 2) {
		t.Error("create during outage not acknowledged")
	}
	if f.Contains(2) {
		t.Error("lost write visible during outage")
	}

	// After recovery: the lost replica refetches once, then serves free.
	if c := f.ServeCost(25*time.Second, 2); c != penalty {
		t.Errorf("post-outage first serve = %v, want refetch penalty", c)
	}
	if c := f.ServeCost(26*time.Second, 2); c != 0 {
		t.Errorf("post-refetch serve = %v, want 0", c)
	}

	st := f.Stats(nil)
	if st[0].Crashes != 1 || st[0].LostWrites != 1 || st[0].Refetches != 2 {
		t.Errorf("faulty stats = %+v", st[0])
	}
}

// TestFaultyBackendIsolation pins that a faulty side's outages stay
// contained: the mirror keeps serving and read-repair restores the
// faulty side, never the healthy one.
func TestFaultyBackendIsolation(t *testing.T) {
	healthy := NewMemory("mem", 0, kb)
	flaky := NewFaulty(NewMemory("mem", 0, kb), outage(10*time.Second, 20*time.Second), 25*time.Millisecond)
	m := NewMirror(healthy, flaky)

	for id := object.ID(1); id <= 5; id++ {
		m.Create(time.Second, id)
	}
	// During the outage every replica still serves (healthy side, free).
	for id := object.ID(1); id <= 5; id++ {
		if !m.Contains(id) {
			t.Fatalf("mirror lost replica %d during backend outage", id)
		}
		if c := m.ServeCost(15*time.Second, id); c != 0 {
			t.Errorf("serve cost during outage = %v, want 0 (healthy side)", c)
		}
	}
	if healthy.Replicas() != 5 {
		t.Errorf("healthy side at %d replicas, want 5", healthy.Replicas())
	}
	// After recovery, serves repair the flaky side back to parity.
	for id := object.ID(1); id <= 5; id++ {
		m.ServeCost(25*time.Second, id)
	}
	if flaky.Replicas() != 5 {
		t.Errorf("flaky side at %d replicas after repair, want 5", flaky.Replicas())
	}
}

func TestFaultyDeterminism(t *testing.T) {
	build := func() (ReplicaStore, error) {
		sp, err := ParseSpec("mirror(faulty(mem,mtbf:30s,mttr:5s), mem)")
		if err != nil {
			return nil, err
		}
		return sp.Build(3, Params{Seed: 7, Horizon: 10 * time.Minute, ObjBytes: kb})
	}
	a, err := build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := build()
	if err != nil {
		t.Fatal(err)
	}
	sa := drive(a, 8000, 99)
	sb := drive(b, 8000, 99)
	if !reflect.DeepEqual(sa, sb) {
		t.Errorf("equal seeds diverged:\n%+v\n%+v", sa, sb)
	}
	if sa[1].Crashes == 0 {
		t.Errorf("no backend crashes over a 10m horizon at mtbf 30s: %+v", sa[1])
	}
}

func TestMeteredCounts(t *testing.T) {
	m := NewMetered("metered", NewDisk("disk:5ms", 5*time.Millisecond, kb))
	m.Create(0, 1)
	m.ServeCost(0, 1)
	m.ServeCost(0, 1)
	m.Drop(0, 1)
	st := m.Stats(nil)
	if st[0].Label != "metered" || st[0].Creates != 1 || st[0].Serves != 2 || st[0].Drops != 1 {
		t.Errorf("metered stats = %+v", st[0])
	}
	if st[0].CostNanos != int64(10*time.Millisecond) {
		t.Errorf("metered CostNanos = %d, want %d", st[0].CostNanos, int64(10*time.Millisecond))
	}
}

// syncStore is a concurrency-safe stub inner store for the -race hammer
// (real stores are single-goroutine by contract; Metered's counters are
// the part that must be race-free).
type syncStore struct {
	mu   sync.Mutex
	held map[object.ID]struct{}
}

func (s *syncStore) Create(_ time.Duration, id object.ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.held[id] = struct{}{}
	return true
}
func (s *syncStore) Drop(_ time.Duration, id object.ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.held, id)
}
func (s *syncStore) Contains(id object.ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.held[id]
	return ok
}
func (s *syncStore) ServeCost(time.Duration, object.ID) time.Duration { return time.Microsecond }
func (s *syncStore) CapacityBytes() int64                             { return 0 }
func (s *syncStore) BytesUsed() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.held)) * kb
}
func (s *syncStore) Replicas() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.held)
}
func (s *syncStore) Clear(time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	clear(s.held)
}
func (s *syncStore) Stats(buf []LayerStats) []LayerStats {
	return append(buf, LayerStats{Label: "sync"})
}

// TestMeteredStackRaceHammer drives a metered stack from many goroutines
// while another reads Stats, proving the meter's counters are safe under
// -race.
func TestMeteredStackRaceHammer(t *testing.T) {
	m := NewMetered("metered", &syncStore{held: make(map[object.ID]struct{})})
	const workers, ops = 8, 2000
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				m.Stats(nil)
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				id := object.ID((w*ops + i) % 64)
				m.Create(0, id)
				m.ServeCost(0, id)
				if i%7 == 0 {
					m.Drop(0, id)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone
	st := m.Stats(nil)
	if st[0].Serves != workers*ops {
		t.Errorf("Serves = %d, want %d", st[0].Serves, workers*ops)
	}
}

func TestAggregate(t *testing.T) {
	build := func() ReplicaStore {
		return NewCache(NewMemory("mem:2", 2, kb), NewDisk("disk:5ms", 5*time.Millisecond, kb), 2)
	}
	a, b := build(), build()
	a.Create(0, 1)
	a.ServeCost(0, 1)
	b.Create(0, 2)
	b.ServeCost(0, 2)
	b.ServeCost(0, 2)
	agg := Aggregate([]ReplicaStore{a, nil, b})
	if len(agg) != 3 {
		t.Fatalf("aggregate layers = %d, want 3", len(agg))
	}
	if agg[0].Label != "cache" || agg[0].Serves != 3 || agg[0].Hits != 3 {
		t.Errorf("aggregated cache layer = %+v", agg[0])
	}
	if agg[0].Replicas != 2 {
		t.Errorf("aggregated replicas = %d, want 2", agg[0].Replicas)
	}
}

func TestParseSpecCanonical(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"", "mem"},
		{"mem", "mem"},
		{"mem:64", "mem:64"},
		{"disk", "disk:5ms"},
		{"disk:10ms", "disk:10ms"},
		{"cache(mem:64, disk:5ms)", "cache(mem:64,disk:5ms)"},
		{"cache(mem, disk)", "cache(mem,disk:5ms)"},
		{"mirror(mem, mem)", "mirror(mem,mem)"},
		{"faulty(mem)", "faulty(mem,mtbf:2m0s,mttr:30s,penalty:25ms)"},
		{"faulty(disk:1ms, mtbf:5m, mttr:10s)", "faulty(disk:1ms,mtbf:5m0s,mttr:10s,penalty:25ms)"},
		{"metered(cache(mem:32, disk))", "metered(cache(mem:32,disk:5ms))"},
		{"mirror(faulty(mem), metered(disk))", "mirror(faulty(mem,mtbf:2m0s,mttr:30s,penalty:25ms),metered(disk:5ms))"},
	}
	for _, tc := range cases {
		sp, err := ParseSpec(tc.in)
		if err != nil {
			t.Errorf("ParseSpec(%q) = %v", tc.in, err)
			continue
		}
		if got := sp.String(); got != tc.want {
			t.Errorf("ParseSpec(%q).String() = %q, want %q", tc.in, got, tc.want)
		}
		// Canonical form re-parses to itself.
		again, err := ParseSpec(sp.String())
		if err != nil {
			t.Errorf("reparse of %q failed: %v", sp.String(), err)
		} else if again.String() != sp.String() {
			t.Errorf("canonical form unstable: %q -> %q", sp.String(), again.String())
		}
	}
}

func TestParseSpecRejects(t *testing.T) {
	bad := []string{
		"flash", "mem:x", "mem:-1", "mem:9999999999",
		"disk:bogus", "disk:-5ms", "disk:11s",
		"cache(mem)", "cache(disk,mem)", "cache(mem,disk", "cache(mem,disk))",
		"mirror(mem)", "faulty(mem,mtbf:1ms)", "faulty(mem,mttr:0s)",
		"faulty(mem,nope:3s)", "metered()", "mem extra",
		"cache(cache(mem,cache(mem,cache(mem,cache(mem,cache(mem,cache(mem,mem)))))),mem)",
	}
	for _, s := range bad {
		if sp, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted as %q", s, sp.String())
		}
	}
}

func TestSpecDefaults(t *testing.T) {
	var zero Spec
	if !zero.IsDefault() {
		t.Error("zero Spec not default")
	}
	for _, s := range []string{"", "mem", " mem "} {
		sp, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q) = %v", s, err)
		}
		if !sp.IsDefault() {
			t.Errorf("ParseSpec(%q) not default", s)
		}
	}
	for _, s := range []string{"mem:4", "disk", "cache(mem,disk)"} {
		sp, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q) = %v", s, err)
		}
		if sp.IsDefault() {
			t.Errorf("ParseSpec(%q) reported default", s)
		}
	}
}

func TestBuildAllShapes(t *testing.T) {
	specs := []string{
		"mem", "mem:16", "disk:2ms", "cache(mem:8,disk)",
		"mirror(mem,disk)", "faulty(mem,mtbf:30s,mttr:5s)",
		"metered(mirror(faulty(mem),mem))",
	}
	for _, s := range specs {
		sp, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q) = %v", s, err)
		}
		stores, err := sp.BuildAll(4, Params{Seed: 1, Horizon: time.Minute, ObjBytes: kb})
		if err != nil {
			t.Fatalf("BuildAll(%q) = %v", s, err)
		}
		for i, st := range stores {
			if !st.Create(0, 1) {
				t.Fatalf("%q store %d refused first create", s, i)
			}
			if !st.Contains(1) {
				t.Fatalf("%q store %d lost first replica", s, i)
			}
			st.ServeCost(time.Second, 1)
			st.Drop(2*time.Second, 1)
		}
		// Same-shape stacks must flatten to the same layer count.
		want := len(stores[0].Stats(nil))
		for i, st := range stores {
			if got := len(st.Stats(nil)); got != want {
				t.Errorf("%q store %d has %d layers, want %d", s, i, got, want)
			}
		}
	}
}

func FuzzStoreSpec(f *testing.F) {
	f.Add("mem")
	f.Add("mem:64")
	f.Add("disk:5ms")
	f.Add("cache(mem:64,disk:5ms)")
	f.Add("mirror(faulty(mem,mtbf:30s,mttr:5s),mem)")
	f.Add("metered(cache(mem:8,mirror(disk,disk:1ms)))")
	f.Add("cache(mem, faulty(disk, penalty:0s))")
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := ParseSpec(s)
		if err != nil {
			return
		}
		// Canonical round-trip: String must re-parse to the same form.
		canon := sp.String()
		again, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical %q (from %q) does not re-parse: %v", canon, s, err)
		}
		if again.String() != canon {
			t.Fatalf("canonical form unstable: %q -> %q", canon, again.String())
		}
		// Any parsed spec must build, behave deterministically, and keep
		// a stable layer shape.
		build := func() ReplicaStore {
			st, err := sp.Build(0, Params{Seed: 11, Horizon: 30 * time.Second, ObjBytes: kb})
			if err != nil {
				t.Fatalf("Build(%q) = %v", canon, err)
			}
			return st
		}
		a := drive(build(), 300, 5)
		b := drive(build(), 300, 5)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("spec %q nondeterministic:\n%+v\n%+v", canon, a, b)
		}
	})
}

func TestStreamIsolationAcrossNodes(t *testing.T) {
	// Different nodes draw different outage timelines from the reserved
	// stream range (no accidental sharing).
	sp, err := ParseSpec("faulty(mem,mtbf:30s,mttr:5s)")
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Seed: 3, Horizon: time.Hour, ObjBytes: kb}
	crash := func(node int) int64 {
		st, err := sp.Build(node, p)
		if err != nil {
			t.Fatal(err)
		}
		// Sweep time forward so the whole timeline applies.
		st.ServeCost(p.Horizon, 1)
		return st.Stats(nil)[0].Crashes
	}
	same := true
	base := crash(0)
	for n := 1; n < 4; n++ {
		if crash(n) != base {
			same = false
		}
	}
	if same {
		t.Error("all nodes drew identical crash counts; streams look shared")
	}
}
