package store

import (
	"time"

	"radar/internal/fault"
	"radar/internal/object"
)

// Faulty injects backend-level crash/degrade faults into the wrapped
// store. A precomputed down/up timeline — expanded at build time by
// internal/fault from MTBF/MTTR exponentials on a reserved PRNG sub-stream
// — drives the backend through availability windows; the store consults
// the timeline lazily as operations arrive, so behavior depends only on
// the seed and the operation sequence, never on scheduling.
//
// Fault semantics mirror a cache or disk shelf losing power, not a host
// crash (internal/sim models those separately): a down-transition wipes
// the backend's contents; creates during an outage are acknowledged but
// lost (LostWrites); serves during an outage, or of a replica lost to one,
// are answered by refetching from the origin at a fixed penalty
// (Refetches), re-establishing the replica when the backend is up. The
// surrounding protocol never sees an error — storage faults surface as
// latency and as divergence for Mirror's read-repair to heal.
type Faulty struct {
	inner    ReplicaStore
	penalty  time.Duration
	timeline []fault.Event // alternating HostDown/HostUp, sorted by At
	next     int           // first timeline event not yet applied
	down     bool
	stats    LayerStats
}

// NewFaulty wraps inner with the given outage timeline and refetch
// penalty. The timeline must alternate down/up in nondecreasing time
// order, as produced by fault.Cycles.
func NewFaulty(inner ReplicaStore, timeline []fault.Event, penalty time.Duration) *Faulty {
	return &Faulty{inner: inner, penalty: penalty, timeline: timeline}
}

// advance applies every timeline transition at or before now.
func (f *Faulty) advance(now time.Duration) {
	for f.next < len(f.timeline) && f.timeline[f.next].At <= now {
		e := f.timeline[f.next]
		f.next++
		if e.Kind == fault.HostDown {
			if !f.down {
				f.down = true
				f.stats.Crashes++
				f.inner.Clear(e.At)
			}
		} else {
			f.down = false
		}
	}
}

// Create implements ReplicaStore. During an outage the write is
// acknowledged (the upstream protocol has already committed to the
// placement) but the data is lost; a later serve refetches it.
func (f *Faulty) Create(now time.Duration, id object.ID) bool {
	f.advance(now)
	if f.down {
		f.stats.Creates++
		f.stats.LostWrites++
		return true
	}
	if f.inner.Create(now, id) {
		f.stats.Creates++
		return true
	}
	return false
}

// Drop implements ReplicaStore.
func (f *Faulty) Drop(now time.Duration, id object.ID) {
	f.advance(now)
	f.stats.Drops++
	f.inner.Drop(now, id)
}

// Contains implements ReplicaStore: a down backend serves nothing.
func (f *Faulty) Contains(id object.ID) bool {
	return !f.down && f.inner.Contains(id)
}

// ServeCost implements ReplicaStore: reads of lost or unavailable
// replicas pay the refetch penalty; the replica is re-established when
// the backend is up.
func (f *Faulty) ServeCost(now time.Duration, id object.ID) time.Duration {
	f.advance(now)
	f.stats.Serves++
	if f.down {
		f.stats.Refetches++
		f.stats.CostNanos += int64(f.penalty)
		return f.penalty
	}
	if !f.inner.Contains(id) {
		f.stats.Refetches++
		f.stats.CostNanos += int64(f.penalty)
		f.inner.Create(now, id)
		return f.penalty
	}
	cost := f.inner.ServeCost(now, id)
	f.stats.CostNanos += int64(cost)
	return cost
}

// CapacityBytes implements ReplicaStore.
func (f *Faulty) CapacityBytes() int64 { return f.inner.CapacityBytes() }

// BytesUsed implements ReplicaStore.
func (f *Faulty) BytesUsed() int64 { return f.inner.BytesUsed() }

// Replicas implements ReplicaStore.
func (f *Faulty) Replicas() int { return f.inner.Replicas() }

// Clear implements ReplicaStore.
func (f *Faulty) Clear(now time.Duration) { f.inner.Clear(now) }

// Stats implements ReplicaStore.
func (f *Faulty) Stats(buf []LayerStats) []LayerStats {
	s := f.stats
	s.Label = "faulty"
	s.Replicas = int64(f.inner.Replicas())
	s.BytesUsed = f.inner.BytesUsed()
	buf = append(buf, s)
	return f.inner.Stats(buf)
}
