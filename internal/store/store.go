// Package store is the composable replica-storage backend stack: a small
// ReplicaStore interface extracted from the server and protocol layers
// (replica create/drop/contains, per-serve storage cost, capacity and
// per-replica byte accounting), plus a set of stackable decorators in the
// style of buildbarn's BlobAccess middleware — a bounded memory cache over
// a slower disk tier, mirrored pairs with on-the-fly read-repair of
// inconsistencies, per-backend fault injection driven by a reserved PRNG
// sub-stream, and a metering layer.
//
// Determinism contract: a store's behavior is a pure function of its
// construction parameters and the sequence of (time, object) operations
// applied to it. Stores hold no global state and draw randomness only from
// timelines expanded at build time from a reserved stream of the run's
// seed (internal/fault discipline), so equal seeds give bit-identical
// behavior at any experiment parallelism. The plain memory store is free:
// zero serve cost, unbounded capacity, and no randomness, leaving a run
// over it byte-identical to a build without this package.
package store

import (
	"time"

	"radar/internal/object"
)

// ReplicaStore is one hosting server's replica storage. The simulation
// keeps exactly one stack per host; calls arrive in nondecreasing virtual
// time from a single goroutine (stores are not safe for concurrent use,
// except Metered's counters, which are atomic so shared read-side meters
// can be hammered under -race).
type ReplicaStore interface {
	// Create stores a replica of id at virtual time now. It returns false
	// when capacity is exhausted (the caller surfaces a storage refusal);
	// a false return leaves the store unchanged. Creating an already-held
	// replica is a no-op returning true.
	Create(now time.Duration, id object.ID) bool
	// Drop removes the replica of id, if held.
	Drop(now time.Duration, id object.ID)
	// Contains reports whether a replica of id is held and servable.
	Contains(id object.ID) bool
	// ServeCost charges one read of id and returns the extra service
	// latency the storage layer adds (zero for resident memory, the device
	// latency for a disk tier, a refetch penalty for lost replicas).
	// ServeCost always serves: a request routed here by the control plane
	// is answered even if the replica must be refetched, so storage faults
	// surface as latency, never as protocol errors.
	ServeCost(now time.Duration, id object.ID) time.Duration
	// CapacityBytes is the storage capacity in bytes; zero means unbounded.
	CapacityBytes() int64
	// BytesUsed is the bytes currently occupied by held replicas.
	BytesUsed() int64
	// Replicas is the number of held replicas.
	Replicas() int
	// Clear drops every held replica (crash data loss).
	Clear(now time.Duration)
	// Stats appends this store's per-layer counters to buf in pre-order
	// (self first, then children) and returns it. The layer order is a
	// function of the stack shape alone, so same-shaped stacks aggregate
	// index by index.
	Stats(buf []LayerStats) []LayerStats
}

// LayerStats is one stack layer's counters. Fields irrelevant to a layer
// kind stay zero (a memory tier has no hits or misses; only a cache does).
type LayerStats struct {
	// Label identifies the layer within its stack (e.g. "cache",
	// "mem:64", "disk:5ms").
	Label string
	// Creates/Drops/Serves count the layer's operations.
	Creates int64
	Drops   int64
	Serves  int64
	// Hits/Misses/Evictions are cache-tier counters.
	Hits      int64
	Misses    int64
	Evictions int64
	// Repairs counts mirror read-repairs initiated by this layer.
	Repairs int64
	// Refetches counts serves answered by refetching a lost or
	// unavailable replica at the refetch penalty (faulty backends).
	Refetches int64
	// Crashes counts backend down-transitions; LostWrites counts creates
	// absorbed by a crashed backend (the write is acknowledged upstream
	// but the data never lands — the inconsistency read-repair heals).
	Crashes    int64
	LostWrites int64
	// Replicas/BytesUsed snapshot occupancy at collection time.
	Replicas  int64
	BytesUsed int64
	// CostNanos is the total serve latency this layer contributed.
	CostNanos int64
}

// add accumulates o into s, summing counters and occupancy. Labels must
// match (same stack shape); s keeps its own.
func (s *LayerStats) add(o LayerStats) {
	s.Creates += o.Creates
	s.Drops += o.Drops
	s.Serves += o.Serves
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Repairs += o.Repairs
	s.Refetches += o.Refetches
	s.Crashes += o.Crashes
	s.LostWrites += o.LostWrites
	s.Replicas += o.Replicas
	s.BytesUsed += o.BytesUsed
	s.CostNanos += o.CostNanos
}

// Aggregate sums same-shaped per-node stacks layer by layer: the fleet
// view of a stack's counters. Nil stores are skipped; all non-nil stacks
// must share one shape.
func Aggregate(stores []ReplicaStore) []LayerStats {
	var agg []LayerStats
	var buf []LayerStats
	for _, st := range stores {
		if st == nil {
			continue
		}
		buf = st.Stats(buf[:0])
		if agg == nil {
			agg = make([]LayerStats, len(buf))
			copy(agg, buf)
			continue
		}
		for i := range buf {
			if i < len(agg) {
				agg[i].add(buf[i])
			}
		}
	}
	return agg
}

// Memory is the baseline resident store: zero serve cost, optional
// replica-count bound, per-replica byte accounting. It is today's implicit
// hosting-server storage model made explicit.
type Memory struct {
	label    string
	objBytes int64
	capacity int // max replicas; 0 = unbounded
	held     map[object.ID]struct{}
	stats    LayerStats
}

// NewMemory builds a memory store holding at most capacity replicas of
// objBytes each (capacity 0 = unbounded).
func NewMemory(label string, capacity int, objBytes int64) *Memory {
	return &Memory{label: label, objBytes: objBytes, capacity: capacity,
		held: make(map[object.ID]struct{})}
}

// Create implements ReplicaStore.
func (m *Memory) Create(_ time.Duration, id object.ID) bool {
	if _, ok := m.held[id]; ok {
		return true
	}
	if m.capacity > 0 && len(m.held) >= m.capacity {
		return false
	}
	m.held[id] = struct{}{}
	m.stats.Creates++
	return true
}

// Drop implements ReplicaStore.
func (m *Memory) Drop(_ time.Duration, id object.ID) {
	if _, ok := m.held[id]; ok {
		delete(m.held, id)
		m.stats.Drops++
	}
}

// Contains implements ReplicaStore.
func (m *Memory) Contains(id object.ID) bool {
	_, ok := m.held[id]
	return ok
}

// ServeCost implements ReplicaStore: resident replicas serve for free.
func (m *Memory) ServeCost(time.Duration, object.ID) time.Duration {
	m.stats.Serves++
	return 0
}

// CapacityBytes implements ReplicaStore.
func (m *Memory) CapacityBytes() int64 { return int64(m.capacity) * m.objBytes }

// BytesUsed implements ReplicaStore.
func (m *Memory) BytesUsed() int64 { return int64(len(m.held)) * m.objBytes }

// Replicas implements ReplicaStore.
func (m *Memory) Replicas() int { return len(m.held) }

// Clear implements ReplicaStore.
func (m *Memory) Clear(time.Duration) { clear(m.held) }

// Stats implements ReplicaStore.
func (m *Memory) Stats(buf []LayerStats) []LayerStats {
	s := m.stats
	s.Label = m.label
	s.Replicas = int64(len(m.held))
	s.BytesUsed = m.BytesUsed()
	return append(buf, s)
}

// Disk is an unbounded slow tier: every serve costs a fixed device
// latency. It models the paper-era "replica on the hosting server's disk"
// without queueing (the FCFS server model already serializes service).
type Disk struct {
	label    string
	objBytes int64
	latency  time.Duration
	held     map[object.ID]struct{}
	stats    LayerStats
}

// NewDisk builds a disk tier with the given per-read latency.
func NewDisk(label string, latency time.Duration, objBytes int64) *Disk {
	return &Disk{label: label, objBytes: objBytes, latency: latency,
		held: make(map[object.ID]struct{})}
}

// Create implements ReplicaStore.
func (d *Disk) Create(_ time.Duration, id object.ID) bool {
	if _, ok := d.held[id]; !ok {
		d.held[id] = struct{}{}
		d.stats.Creates++
	}
	return true
}

// Drop implements ReplicaStore.
func (d *Disk) Drop(_ time.Duration, id object.ID) {
	if _, ok := d.held[id]; ok {
		delete(d.held, id)
		d.stats.Drops++
	}
}

// Contains implements ReplicaStore.
func (d *Disk) Contains(id object.ID) bool {
	_, ok := d.held[id]
	return ok
}

// ServeCost implements ReplicaStore: every read pays the device latency.
func (d *Disk) ServeCost(time.Duration, object.ID) time.Duration {
	d.stats.Serves++
	d.stats.CostNanos += int64(d.latency)
	return d.latency
}

// CapacityBytes implements ReplicaStore.
func (d *Disk) CapacityBytes() int64 { return 0 }

// BytesUsed implements ReplicaStore.
func (d *Disk) BytesUsed() int64 { return int64(len(d.held)) * d.objBytes }

// Replicas implements ReplicaStore.
func (d *Disk) Replicas() int { return len(d.held) }

// Clear implements ReplicaStore.
func (d *Disk) Clear(time.Duration) { clear(d.held) }

// Stats implements ReplicaStore.
func (d *Disk) Stats(buf []LayerStats) []LayerStats {
	s := d.stats
	s.Label = d.label
	s.Replicas = int64(len(d.held))
	s.BytesUsed = d.BytesUsed()
	return append(buf, s)
}
