package store

import (
	"time"

	"radar/internal/object"
)

// Mirror pairs two backends, writing every replica to both and serving
// from whichever side holds it, with buildbarn-style on-the-fly
// read-repair: a serve that finds the replica on one side only re-creates
// it on the other, healing divergence introduced by a faulty backend
// losing writes or crashing. Side A is preferred when both hold the
// replica, keeping serve costs deterministic.
type Mirror struct {
	a, b  ReplicaStore
	stats LayerStats
}

// NewMirror builds a mirrored pair over a and b.
func NewMirror(a, b ReplicaStore) *Mirror {
	return &Mirror{a: a, b: b}
}

// Create implements ReplicaStore: the write lands on both sides and
// succeeds if either side accepts it.
func (m *Mirror) Create(now time.Duration, id object.ID) bool {
	okA := m.a.Create(now, id)
	okB := m.b.Create(now, id)
	if okA || okB {
		m.stats.Creates++
		return true
	}
	return false
}

// Drop implements ReplicaStore.
func (m *Mirror) Drop(now time.Duration, id object.ID) {
	m.stats.Drops++
	m.a.Drop(now, id)
	m.b.Drop(now, id)
}

// Contains implements ReplicaStore: either side suffices.
func (m *Mirror) Contains(id object.ID) bool {
	return m.a.Contains(id) || m.b.Contains(id)
}

// ServeCost implements ReplicaStore: serve from the preferred side that
// holds the replica, then repair the other side if it diverged. Repair
// traffic is asynchronous background copying, so it does not add to the
// request's serve cost — only the Repairs counter records it.
func (m *Mirror) ServeCost(now time.Duration, id object.ID) time.Duration {
	m.stats.Serves++
	var cost time.Duration
	if m.a.Contains(id) {
		cost = m.a.ServeCost(now, id)
	} else {
		cost = m.b.ServeCost(now, id)
	}
	// Read-repair: heal whichever side lacks the replica while the other
	// holds it (a faulty side may itself have just refetched it above).
	hasA, hasB := m.a.Contains(id), m.b.Contains(id)
	if hasA && !hasB {
		if m.b.Create(now, id) {
			m.stats.Repairs++
		}
	} else if hasB && !hasA {
		if m.a.Create(now, id) {
			m.stats.Repairs++
		}
	}
	m.stats.CostNanos += int64(cost)
	return cost
}

// CapacityBytes implements ReplicaStore: the pair stores every replica
// twice, so the usable capacity is the smaller side's.
func (m *Mirror) CapacityBytes() int64 {
	ca, cb := m.a.CapacityBytes(), m.b.CapacityBytes()
	if ca == 0 {
		return cb
	}
	if cb == 0 || ca < cb {
		return ca
	}
	return cb
}

// BytesUsed implements ReplicaStore: logical bytes, counted once per
// mirrored replica (the larger side dominates).
func (m *Mirror) BytesUsed() int64 {
	if ba, bb := m.a.BytesUsed(), m.b.BytesUsed(); ba >= bb {
		return ba
	} else {
		return bb
	}
}

// Replicas implements ReplicaStore.
func (m *Mirror) Replicas() int {
	if ra, rb := m.a.Replicas(), m.b.Replicas(); ra >= rb {
		return ra
	} else {
		return rb
	}
}

// Clear implements ReplicaStore.
func (m *Mirror) Clear(now time.Duration) {
	m.a.Clear(now)
	m.b.Clear(now)
}

// Stats implements ReplicaStore.
func (m *Mirror) Stats(buf []LayerStats) []LayerStats {
	s := m.stats
	s.Label = "mirror"
	s.Replicas = int64(m.Replicas())
	s.BytesUsed = m.BytesUsed()
	buf = append(buf, s)
	buf = m.a.Stats(buf)
	return m.b.Stats(buf)
}
