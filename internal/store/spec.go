package store

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"radar/internal/fault"
	"radar/internal/workload"
)

// The store DSL describes one per-host backend stack:
//
//	term := mem[:CAP]                          resident tier, CAP replicas (0/absent = unbounded)
//	      | disk[:LATENCY]                     unbounded slow tier (default 5ms per read)
//	      | cache(mem[:CAP], term)             bounded LRU memory tier over an authoritative tier
//	      | mirror(term, term)                 paired backends with read-repair
//	      | faulty(term[, mtbf:D][, mttr:D][, penalty:D])   backend outages (defaults 2m/30s/25ms)
//	      | metered(term)                      pass-through operation meter
//
// Examples: "mem", "cache(mem:64, disk:5ms)",
// "mirror(faulty(mem), mem)", "metered(cache(mem:128, disk))".
// The zero Spec (and "mem") is the default stack and is byte-identical to
// the pre-store simulator.

// ErrSpec tags every store-DSL parse error.
var ErrSpec = errors.New("store: bad spec")

// Parse/safety limits: deep or enormous stacks are configuration errors
// (and keep fuzzing honest).
const (
	maxSpecLen   = 256
	maxDepth     = 6
	maxTerms     = 16
	maxCap       = 1 << 20
	maxLatency   = 10 * time.Second
	minMTBF      = time.Second
	maxCycleSpan = 24 * time.Hour
)

// Defaults for optional DSL parameters.
const (
	defaultDiskLatency = 5 * time.Millisecond
	defaultCacheCap    = 128
	defaultMTBF        = 2 * time.Minute
	defaultMTTR        = 30 * time.Second
	defaultPenalty     = 25 * time.Millisecond
)

// storeStream is the base of the PRNG sub-stream range reserved for
// backend fault timelines: stream storeStream | node<<8 | faultyIndex.
// Gateways use streams 0..n-1, the fault timeline 1<<32, the control
// plane 1<<33; this range is disjoint from all of them.
const storeStream uint64 = 1 << 34

// term is one parsed stack node.
type term struct {
	kind    string // "mem", "disk", "cache", "mirror", "faulty", "metered"
	cap     int    // mem replica bound (0 = unbounded)
	latency time.Duration
	mtbf    time.Duration
	mttr    time.Duration
	penalty time.Duration
	kids    []*term
}

// Spec is a parsed, validated store stack description. The zero value is
// the default unbounded memory stack. Specs are immutable after parsing
// and safe to copy.
type Spec struct {
	root *term
}

// IsDefault reports whether the spec is the plain unbounded memory stack
// (the zero value or "mem"), whose runs are byte-identical to the
// pre-store simulator.
func (sp Spec) IsDefault() bool {
	return sp.root == nil || (sp.root.kind == "mem" && sp.root.cap == 0)
}

// String renders the spec in canonical DSL form; ParseSpec(sp.String())
// round-trips.
func (sp Spec) String() string {
	if sp.root == nil {
		return "mem"
	}
	var b strings.Builder
	writeTerm(&b, sp.root)
	return b.String()
}

func writeTerm(b *strings.Builder, t *term) {
	switch t.kind {
	case "mem":
		b.WriteString("mem")
		if t.cap > 0 {
			fmt.Fprintf(b, ":%d", t.cap)
		}
	case "disk":
		fmt.Fprintf(b, "disk:%s", t.latency)
	case "cache", "mirror":
		b.WriteString(t.kind)
		b.WriteByte('(')
		writeTerm(b, t.kids[0])
		b.WriteByte(',')
		writeTerm(b, t.kids[1])
		b.WriteByte(')')
	case "faulty":
		b.WriteString("faulty(")
		writeTerm(b, t.kids[0])
		fmt.Fprintf(b, ",mtbf:%s,mttr:%s,penalty:%s", t.mtbf, t.mttr, t.penalty)
		b.WriteByte(')')
	case "metered":
		b.WriteString("metered(")
		writeTerm(b, t.kids[0])
		b.WriteByte(')')
	}
}

// ParseSpec parses a store-DSL term. The empty string is the default
// stack. Errors wrap ErrSpec.
func ParseSpec(s string) (Spec, error) {
	if strings.TrimSpace(s) == "" {
		return Spec{}, nil
	}
	if len(s) > maxSpecLen {
		return Spec{}, fmt.Errorf("%w: %d bytes exceeds the %d-byte limit", ErrSpec, len(s), maxSpecLen)
	}
	p := &parser{s: s}
	root, err := p.parseTerm(0)
	if err != nil {
		return Spec{}, err
	}
	p.skipSpace()
	if p.i != len(p.s) {
		return Spec{}, fmt.Errorf("%w: trailing input %q", ErrSpec, p.s[p.i:])
	}
	return Spec{root: root}, nil
}

// parser is a recursive-descent scanner over the DSL term.
type parser struct {
	s     string
	i     int
	terms int
}

func (p *parser) skipSpace() {
	for p.i < len(p.s) && (p.s[p.i] == ' ' || p.s[p.i] == '\t') {
		p.i++
	}
}

// ident scans a lowercase keyword.
func (p *parser) ident() string {
	start := p.i
	for p.i < len(p.s) && p.s[p.i] >= 'a' && p.s[p.i] <= 'z' {
		p.i++
	}
	return p.s[start:p.i]
}

// expect consumes c or fails.
func (p *parser) expect(c byte) error {
	p.skipSpace()
	if p.i >= len(p.s) || p.s[p.i] != c {
		return fmt.Errorf("%w: expected %q at offset %d", ErrSpec, string(c), p.i)
	}
	p.i++
	return nil
}

// peek returns the next non-space byte without consuming it (0 at end).
func (p *parser) peek() byte {
	p.skipSpace()
	if p.i >= len(p.s) {
		return 0
	}
	return p.s[p.i]
}

// scanValue consumes a value token: everything up to the next ',' / ')' /
// end, trimmed.
func (p *parser) scanValue() string {
	p.skipSpace()
	start := p.i
	for p.i < len(p.s) && p.s[p.i] != ',' && p.s[p.i] != ')' {
		p.i++
	}
	return strings.TrimSpace(p.s[start:p.i])
}

func (p *parser) duration(what string, min, max time.Duration) (time.Duration, error) {
	v := p.scanValue()
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("%w: bad %s duration %q", ErrSpec, what, v)
	}
	if d < min || d > max {
		return 0, fmt.Errorf("%w: %s %s out of range [%s, %s]", ErrSpec, what, d, min, max)
	}
	return d, nil
}

func (p *parser) parseTerm(depth int) (*term, error) {
	if depth > maxDepth {
		return nil, fmt.Errorf("%w: nesting exceeds depth %d", ErrSpec, maxDepth)
	}
	p.terms++
	if p.terms > maxTerms {
		return nil, fmt.Errorf("%w: more than %d terms", ErrSpec, maxTerms)
	}
	p.skipSpace()
	switch kw := p.ident(); kw {
	case "mem":
		t := &term{kind: "mem"}
		if p.peek() == ':' {
			p.i++
			v := p.scanValue()
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 || n > maxCap {
				return nil, fmt.Errorf("%w: bad mem capacity %q (want 0..%d)", ErrSpec, v, maxCap)
			}
			t.cap = n
		}
		return t, nil
	case "disk":
		t := &term{kind: "disk", latency: defaultDiskLatency}
		if p.peek() == ':' {
			p.i++
			d, err := p.duration("disk latency", time.Nanosecond, maxLatency)
			if err != nil {
				return nil, err
			}
			t.latency = d
		}
		return t, nil
	case "cache":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		fast, err := p.parseTerm(depth + 1)
		if err != nil {
			return nil, err
		}
		if fast.kind != "mem" {
			return nil, fmt.Errorf("%w: cache fast tier must be a mem term, got %s", ErrSpec, fast.kind)
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		slow, err := p.parseTerm(depth + 1)
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return &term{kind: "cache", kids: []*term{fast, slow}}, nil
	case "mirror":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		a, err := p.parseTerm(depth + 1)
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		b, err := p.parseTerm(depth + 1)
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return &term{kind: "mirror", kids: []*term{a, b}}, nil
	case "faulty":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		inner, err := p.parseTerm(depth + 1)
		if err != nil {
			return nil, err
		}
		t := &term{kind: "faulty", kids: []*term{inner},
			mtbf: defaultMTBF, mttr: defaultMTTR, penalty: defaultPenalty}
		for p.peek() == ',' {
			p.i++
			p.skipSpace()
			key := p.ident()
			if err := p.expect(':'); err != nil {
				return nil, err
			}
			switch key {
			case "mtbf":
				if t.mtbf, err = p.duration("mtbf", minMTBF, maxCycleSpan); err != nil {
					return nil, err
				}
			case "mttr":
				if t.mttr, err = p.duration("mttr", time.Millisecond, maxCycleSpan); err != nil {
					return nil, err
				}
			case "penalty":
				if t.penalty, err = p.duration("penalty", 0, maxLatency); err != nil {
					return nil, err
				}
			default:
				return nil, fmt.Errorf("%w: unknown faulty option %q", ErrSpec, key)
			}
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return t, nil
	case "metered":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		inner, err := p.parseTerm(depth + 1)
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return &term{kind: "metered", kids: []*term{inner}}, nil
	case "":
		return nil, fmt.Errorf("%w: expected a term at offset %d", ErrSpec, p.i)
	default:
		return nil, fmt.Errorf("%w: unknown backend %q", ErrSpec, kw)
	}
}

// Params are the run parameters a stack is built against.
type Params struct {
	// Seed is the run's master seed (fault timelines draw from a
	// reserved sub-stream of it).
	Seed int64
	// Horizon bounds backend fault timelines.
	Horizon time.Duration
	// ObjBytes is the per-replica size for byte accounting.
	ObjBytes int64
}

// Build constructs the stack for one host. Equal (spec, node, params)
// always build identically-behaving stacks.
func (sp Spec) Build(node int, p Params) (ReplicaStore, error) {
	t := sp.root
	if t == nil {
		t = &term{kind: "mem"}
	}
	faultyIdx := 0
	return buildTerm(t, node, p, &faultyIdx)
}

// BuildAll constructs one stack per host.
func (sp Spec) BuildAll(nodes int, p Params) ([]ReplicaStore, error) {
	stores := make([]ReplicaStore, nodes)
	for i := range stores {
		st, err := sp.Build(i, p)
		if err != nil {
			return nil, err
		}
		stores[i] = st
	}
	return stores, nil
}

func buildTerm(t *term, node int, p Params, faultyIdx *int) (ReplicaStore, error) {
	switch t.kind {
	case "mem":
		label := "mem"
		if t.cap > 0 {
			label = fmt.Sprintf("mem:%d", t.cap)
		}
		return NewMemory(label, t.cap, p.ObjBytes), nil
	case "disk":
		return NewDisk(fmt.Sprintf("disk:%s", t.latency), t.latency, p.ObjBytes), nil
	case "cache":
		fast, err := buildTerm(t.kids[0], node, p, faultyIdx)
		if err != nil {
			return nil, err
		}
		slow, err := buildTerm(t.kids[1], node, p, faultyIdx)
		if err != nil {
			return nil, err
		}
		capacity := t.kids[0].cap
		if capacity == 0 {
			capacity = defaultCacheCap
		}
		return NewCache(fast, slow, capacity), nil
	case "mirror":
		a, err := buildTerm(t.kids[0], node, p, faultyIdx)
		if err != nil {
			return nil, err
		}
		b, err := buildTerm(t.kids[1], node, p, faultyIdx)
		if err != nil {
			return nil, err
		}
		return NewMirror(a, b), nil
	case "faulty":
		inner, err := buildTerm(t.kids[0], node, p, faultyIdx)
		if err != nil {
			return nil, err
		}
		// Each faulty layer on each node gets its own reserved stream, so
		// stack shape and node count never shift another layer's draws.
		stream := storeStream | uint64(node)<<8 | uint64(*faultyIdx)
		*faultyIdx++
		rng := workload.Stream(p.Seed, stream)
		timeline, err := fault.Cycles(p.Horizon, t.mtbf, t.mttr, rng)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSpec, err)
		}
		return NewFaulty(inner, timeline, t.penalty), nil
	case "metered":
		inner, err := buildTerm(t.kids[0], node, p, faultyIdx)
		if err != nil {
			return nil, err
		}
		return NewMetered("metered", inner), nil
	default:
		return nil, fmt.Errorf("%w: unknown term kind %q", ErrSpec, t.kind)
	}
}
