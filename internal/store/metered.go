package store

import (
	"sync/atomic"
	"time"

	"radar/internal/object"
)

// Metered counts operations and serve cost flowing through it without
// changing behavior. Its counters are atomic: unlike the stores it wraps
// (single-goroutine by contract), a Metered layer's counters may be read
// while another goroutine drives the stack, and the -race hammer in the
// tests exercises exactly that.
type Metered struct {
	label     string
	inner     ReplicaStore
	creates   atomic.Int64
	drops     atomic.Int64
	serves    atomic.Int64
	costNanos atomic.Int64
}

// NewMetered wraps inner with an operation meter.
func NewMetered(label string, inner ReplicaStore) *Metered {
	return &Metered{label: label, inner: inner}
}

// Create implements ReplicaStore.
func (m *Metered) Create(now time.Duration, id object.ID) bool {
	if m.inner.Create(now, id) {
		m.creates.Add(1)
		return true
	}
	return false
}

// Drop implements ReplicaStore.
func (m *Metered) Drop(now time.Duration, id object.ID) {
	m.drops.Add(1)
	m.inner.Drop(now, id)
}

// Contains implements ReplicaStore.
func (m *Metered) Contains(id object.ID) bool { return m.inner.Contains(id) }

// ServeCost implements ReplicaStore.
func (m *Metered) ServeCost(now time.Duration, id object.ID) time.Duration {
	m.serves.Add(1)
	cost := m.inner.ServeCost(now, id)
	m.costNanos.Add(int64(cost))
	return cost
}

// CapacityBytes implements ReplicaStore.
func (m *Metered) CapacityBytes() int64 { return m.inner.CapacityBytes() }

// BytesUsed implements ReplicaStore.
func (m *Metered) BytesUsed() int64 { return m.inner.BytesUsed() }

// Replicas implements ReplicaStore.
func (m *Metered) Replicas() int { return m.inner.Replicas() }

// Clear implements ReplicaStore.
func (m *Metered) Clear(now time.Duration) { m.inner.Clear(now) }

// Stats implements ReplicaStore.
func (m *Metered) Stats(buf []LayerStats) []LayerStats {
	buf = append(buf, LayerStats{
		Label:     m.label,
		Creates:   m.creates.Load(),
		Drops:     m.drops.Load(),
		Serves:    m.serves.Load(),
		CostNanos: m.costNanos.Load(),
		Replicas:  int64(m.inner.Replicas()),
		BytesUsed: m.inner.BytesUsed(),
	})
	return m.inner.Stats(buf)
}
