package store

import (
	"container/list"
	"time"

	"radar/internal/object"
)

// Cache is a bounded fast tier over an authoritative slow tier
// (write-through). Creates and drops go to both tiers; serves hit the fast
// tier when resident and otherwise pay the slow tier's cost and promote
// the replica, evicting the least-recently-used resident replica when the
// fast tier is full. Eviction order is a pure function of the serve
// sequence, so equal runs evict identically.
type Cache struct {
	fast     ReplicaStore
	slow     ReplicaStore
	capacity int        // max resident replicas in the fast tier (> 0)
	lru      *list.List // front = most recently used
	resident map[object.ID]*list.Element
	stats    LayerStats
}

// NewCache builds a cache admitting at most capacity replicas into fast;
// slow is authoritative for Contains and capacity decisions.
func NewCache(fast, slow ReplicaStore, capacity int) *Cache {
	if capacity <= 0 {
		capacity = 1
	}
	return &Cache{fast: fast, slow: slow, capacity: capacity,
		lru: list.New(), resident: make(map[object.ID]*list.Element)}
}

// Create implements ReplicaStore: write-through to the slow tier, then
// promote into the fast tier.
func (c *Cache) Create(now time.Duration, id object.ID) bool {
	if !c.slow.Create(now, id) {
		return false
	}
	c.stats.Creates++
	c.promote(now, id)
	return true
}

// Drop implements ReplicaStore: removes the replica from both tiers.
func (c *Cache) Drop(now time.Duration, id object.ID) {
	c.stats.Drops++
	c.slow.Drop(now, id)
	if el, ok := c.resident[id]; ok {
		c.lru.Remove(el)
		delete(c.resident, id)
		c.fast.Drop(now, id)
	}
}

// Contains implements ReplicaStore: the slow tier is authoritative.
func (c *Cache) Contains(id object.ID) bool { return c.slow.Contains(id) }

// ServeCost implements ReplicaStore: a resident replica serves at the fast
// tier's cost; a miss pays the slow tier and promotes.
func (c *Cache) ServeCost(now time.Duration, id object.ID) time.Duration {
	c.stats.Serves++
	if el, ok := c.resident[id]; ok {
		c.stats.Hits++
		c.lru.MoveToFront(el)
		cost := c.fast.ServeCost(now, id)
		c.stats.CostNanos += int64(cost)
		return cost
	}
	c.stats.Misses++
	cost := c.slow.ServeCost(now, id)
	c.stats.CostNanos += int64(cost)
	c.promote(now, id)
	return cost
}

// promote makes id resident in the fast tier, evicting the LRU resident
// replica if the tier is full.
func (c *Cache) promote(now time.Duration, id object.ID) {
	if el, ok := c.resident[id]; ok {
		c.lru.MoveToFront(el)
		return
	}
	if c.lru.Len() >= c.capacity {
		oldest := c.lru.Back()
		victim := oldest.Value.(object.ID)
		c.lru.Remove(oldest)
		delete(c.resident, victim)
		c.fast.Drop(now, victim)
		c.stats.Evictions++
	}
	if c.fast.Create(now, id) {
		c.resident[id] = c.lru.PushFront(id)
	}
}

// CapacityBytes implements ReplicaStore: bounded by the slow tier.
func (c *Cache) CapacityBytes() int64 { return c.slow.CapacityBytes() }

// BytesUsed implements ReplicaStore: authoritative bytes live in the slow
// tier (the fast tier holds copies).
func (c *Cache) BytesUsed() int64 { return c.slow.BytesUsed() }

// Replicas implements ReplicaStore.
func (c *Cache) Replicas() int { return c.slow.Replicas() }

// Clear implements ReplicaStore.
func (c *Cache) Clear(now time.Duration) {
	c.fast.Clear(now)
	c.slow.Clear(now)
	c.lru.Init()
	clear(c.resident)
}

// Stats implements ReplicaStore.
func (c *Cache) Stats(buf []LayerStats) []LayerStats {
	s := c.stats
	s.Label = "cache"
	s.Replicas = int64(c.slow.Replicas())
	s.BytesUsed = c.BytesUsed()
	buf = append(buf, s)
	buf = c.fast.Stats(buf)
	return c.slow.Stats(buf)
}
