package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZipfReedsRange(t *testing.T) {
	z := NewZipfReeds(1000)
	rng := Stream(1, 1)
	for i := 0; i < 100000; i++ {
		r := z.Rank(rng)
		if r < 1 || r > 1000 {
			t.Fatalf("rank %d out of [1,1000]", r)
		}
	}
}

func TestZipfReedsSingleObject(t *testing.T) {
	z := NewZipfReeds(1)
	rng := Stream(2, 1)
	for i := 0; i < 100; i++ {
		if r := z.Rank(rng); r != 1 {
			t.Fatalf("rank = %d, want 1", r)
		}
	}
}

func TestZipfReedsMonotonePopularity(t *testing.T) {
	// Rank 1 must be sampled more often than rank 10, which must beat
	// rank 100 — the defining property of a Zipf-like head.
	z := NewZipfReeds(1000)
	rng := Stream(3, 1)
	counts := make(map[int]int)
	const draws = 500000
	for i := 0; i < draws; i++ {
		counts[z.Rank(rng)]++
	}
	if !(counts[1] > counts[10] && counts[10] > counts[100]) {
		t.Fatalf("popularity not decreasing: c1=%d c10=%d c100=%d", counts[1], counts[10], counts[100])
	}
}

func TestZipfReedsMatchesAnalyticMass(t *testing.T) {
	// Under the Reeds closed form, rank k receives probability mass
	// (ln(min(k+1/2, n)) - ln(max(k-1/2, 1))) / ln(n). Verify the sampler
	// against its own analytic distribution at head ranks.
	const n = 1000
	const draws = 2000000
	z := NewZipfReeds(n)
	rng := Stream(4, 1)
	counts := make([]int, n+1)
	for i := 0; i < draws; i++ {
		counts[z.Rank(rng)]++
	}
	logN := math.Log(n)
	for _, rank := range []int{1, 2, 3, 5, 8, 20} {
		lo := math.Max(float64(rank)-0.5, 1)
		hi := math.Min(float64(rank)+0.5, n)
		want := (math.Log(hi) - math.Log(lo)) / logN
		got := float64(counts[rank]) / draws
		if rel := math.Abs(got-want) / want; rel > 0.10 {
			t.Errorf("rank %d: got frequency %.5f, analytic %.5f (rel err %.2f > 0.10)", rank, got, want, rel)
		}
	}
}

func TestZipfReedsNearZipfMidRanks(t *testing.T) {
	// Away from the rounding artifact at rank 1, the approximation should
	// track exact Zipf within the paper's quoted ~15% (we allow 25% for
	// sampling noise at low-mass ranks).
	const n = 1000
	const draws = 2000000
	z := NewZipfReeds(n)
	rng := Stream(14, 1)
	counts := make([]int, n+1)
	for i := 0; i < draws; i++ {
		counts[z.Rank(rng)]++
	}
	h := 0.0
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	for _, rank := range []int{5, 10, 20, 50} {
		want := 1 / float64(rank) / h
		got := float64(counts[rank]) / draws
		if rel := math.Abs(got-want) / want; rel > 0.25 {
			t.Errorf("rank %d: got %.5f, exact Zipf %.5f (rel err %.2f > 0.25)", rank, got, want, rel)
		}
	}
}

func TestZipfExactMatchesHarmonicWeights(t *testing.T) {
	const n = 100
	const draws = 1000000
	z := NewZipfExact(n)
	rng := Stream(5, 1)
	counts := make([]int, n+1)
	for i := 0; i < draws; i++ {
		r := z.Rank(rng)
		if r < 1 || r > n {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	h := 0.0
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	for _, rank := range []int{1, 2, 4, 10} {
		want := 1 / float64(rank) / h
		got := float64(counts[rank]) / draws
		if rel := math.Abs(got-want) / want; rel > 0.05 {
			t.Errorf("rank %d: frequency %.5f, want %.5f (rel %.3f)", rank, got, want, rel)
		}
	}
}

func TestZipfRankAlwaysInRangeProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%5000 + 1
		z := NewZipfReeds(n)
		rng := Stream(seed, 99)
		for i := 0; i < 200; i++ {
			r := z.Rank(rng)
			if r < 1 || r > n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamIndependenceAndDeterminism(t *testing.T) {
	a1 := Stream(42, 1)
	a2 := Stream(42, 1)
	b := Stream(42, 2)
	c := Stream(43, 1)
	sameAsA1 := true
	diffB, diffC := false, false
	for i := 0; i < 100; i++ {
		v := a1.Int63()
		if a2.Int63() != v {
			sameAsA1 = false
		}
		if b.Int63() != v {
			diffB = true
		}
		if c.Int63() != v {
			diffC = true
		}
	}
	if !sameAsA1 {
		t.Error("same (seed, stream) produced different sequences")
	}
	if !diffB {
		t.Error("different streams produced identical sequences")
	}
	if !diffC {
		t.Error("different seeds produced identical sequences")
	}
}
