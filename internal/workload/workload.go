// Package workload implements the paper's four synthetic request workloads
// (§6.1): Zipf, hot-sites, hot-pages and regional, plus a uniform baseline.
//
// A Generator maps (requesting gateway, randomness) to the object requested.
// Generators are deterministic given their construction seed, so entire
// simulation runs are reproducible. A real-life workload is expected to be
// a mix of these shapes; the mix helper composes them.
package workload

import (
	"fmt"
	"math/rand"

	"radar/internal/object"
	"radar/internal/topology"
)

// Generator produces the object requested by a client entering at a gateway.
type Generator interface {
	// Name identifies the workload in reports ("zipf", "hot-sites", ...).
	Name() string
	// Next draws the next requested object for a request entering the
	// platform at gateway g, using rng for all randomness.
	Next(g topology.NodeID, rng *rand.Rand) object.ID
}

// Uniform requests every object with equal probability from every gateway.
type Uniform struct {
	count int
}

// NewUniform returns a uniform generator over u's objects.
func NewUniform(u object.Universe) (*Uniform, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	return &Uniform{count: u.Count}, nil
}

// Name implements Generator.
func (w *Uniform) Name() string { return "uniform" }

// Next implements Generator.
func (w *Uniform) Next(_ topology.NodeID, rng *rand.Rand) object.ID {
	return object.ID(rng.Intn(w.count))
}

// Zipf requests pages according to Zipf's law, where the page number is its
// popularity rank (object 0 is the most popular), sampled with the Reeds
// closed-form approximation the paper uses.
type Zipf struct {
	sampler *ZipfReeds
}

// NewZipf returns a Zipf generator over u's objects.
func NewZipf(u object.Universe) (*Zipf, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	return &Zipf{sampler: NewZipfReeds(u.Count)}, nil
}

// Name implements Generator.
func (w *Zipf) Name() string { return "zipf" }

// Next implements Generator.
func (w *Zipf) Next(_ topology.NodeID, rng *rand.Rand) object.ID {
	return object.ID(w.sampler.Rank(rng) - 1)
}

// HotSites models entire Web sites varying in popularity: sites (nodes) are
// randomly split into hot (1-p fraction) and cold (p fraction); with
// probability p a request targets a random page initially assigned to a hot
// site, otherwise a random page from a cold site. The paper uses p = 0.9.
type HotSites struct {
	p         float64
	hotPages  []object.ID
	coldPages []object.ID
}

// NewHotSites partitions the numNodes sites with the given seed and builds
// the page buckets from the round-robin initial assignment.
func NewHotSites(u object.Universe, numNodes int, p float64, seed int64) (*HotSites, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	if numNodes <= 0 {
		return nil, fmt.Errorf("workload: numNodes %d must be positive", numNodes)
	}
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("workload: hot-sites p %v must be in (0,1)", p)
	}
	rng := Stream(seed, 0x4053)
	perm := rng.Perm(numNodes)
	numHot := int(float64(numNodes)*(1-p) + 0.5)
	if numHot < 1 {
		numHot = 1
	}
	if numHot >= numNodes {
		numHot = numNodes - 1
	}
	hotSite := make([]bool, numNodes)
	for _, s := range perm[:numHot] {
		hotSite[s] = true
	}
	w := &HotSites{p: p}
	for i := 0; i < u.Count; i++ {
		id := object.ID(i)
		if hotSite[u.HomeNode(id, numNodes)] {
			w.hotPages = append(w.hotPages, id)
		} else {
			w.coldPages = append(w.coldPages, id)
		}
	}
	if len(w.hotPages) == 0 || len(w.coldPages) == 0 {
		return nil, fmt.Errorf("workload: hot-sites split left a bucket empty (objects=%d nodes=%d)", u.Count, numNodes)
	}
	return w, nil
}

// Name implements Generator.
func (w *HotSites) Name() string { return "hot-sites" }

// Next implements Generator.
func (w *HotSites) Next(_ topology.NodeID, rng *rand.Rand) object.ID {
	if rng.Float64() < w.p {
		return w.hotPages[rng.Intn(len(w.hotPages))]
	}
	return w.coldPages[rng.Intn(len(w.coldPages))]
}

// HotSiteCount returns the number of sites in the hot bucket; exposed for
// tests and reports.
func (w *HotSites) HotSiteCount(u object.Universe, numNodes int) int {
	sites := make(map[topology.NodeID]bool)
	for _, id := range w.hotPages {
		sites[u.HomeNode(id, numNodes)] = true
	}
	return len(sites)
}

// HotPages models uniformly more popular objects: pages are split into hot
// and cold buckets in ratio 1:9 and a hot page is requested with
// probability 0.9 (paper §6.1).
type HotPages struct {
	pHot      float64
	hotPages  []object.ID
	coldPages []object.ID
}

// NewHotPages builds the generator; hotFraction is the fraction of pages in
// the hot bucket (paper: 0.1) and pHot the probability of requesting a hot
// page (paper: 0.9). The hot pages are drawn randomly with the given seed,
// which spreads them across sites like the paper's setup ("in hot-pages
// they are well distributed").
func NewHotPages(u object.Universe, hotFraction, pHot float64, seed int64) (*HotPages, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	if hotFraction <= 0 || hotFraction >= 1 {
		return nil, fmt.Errorf("workload: hot fraction %v must be in (0,1)", hotFraction)
	}
	if pHot <= 0 || pHot >= 1 {
		return nil, fmt.Errorf("workload: pHot %v must be in (0,1)", pHot)
	}
	numHot := int(float64(u.Count)*hotFraction + 0.5)
	if numHot < 1 {
		numHot = 1
	}
	if numHot >= u.Count {
		numHot = u.Count - 1
	}
	rng := Stream(seed, 0x9a6e)
	perm := rng.Perm(u.Count)
	w := &HotPages{pHot: pHot}
	hot := make([]bool, u.Count)
	for _, i := range perm[:numHot] {
		hot[i] = true
	}
	for i := 0; i < u.Count; i++ {
		if hot[i] {
			w.hotPages = append(w.hotPages, object.ID(i))
		} else {
			w.coldPages = append(w.coldPages, object.ID(i))
		}
	}
	return w, nil
}

// Name implements Generator.
func (w *HotPages) Name() string { return "hot-pages" }

// Next implements Generator.
func (w *HotPages) Next(_ topology.NodeID, rng *rand.Rand) object.ID {
	if rng.Float64() < w.pHot {
		return w.hotPages[rng.Intn(len(w.hotPages))]
	}
	return w.coldPages[rng.Intn(len(w.coldPages))]
}

// Regional models popularity varying by region: each of the four regions is
// assigned a contiguous 1% slice of the object numbers as its preferred
// set; a node requests a random preferred object with probability 0.9 and a
// random object from the whole set otherwise (paper §6.1).
type Regional struct {
	pLocal    float64
	count     int
	preferred map[topology.Region][]object.ID
	regionOf  []topology.Region
}

// NewRegional builds the generator from the topology's region assignment.
// preferredFraction is the slice of the namespace preferred per region
// (paper: 0.01); pLocal the probability of a preferred request (paper: 0.9).
func NewRegional(u object.Universe, topo *topology.Topology, preferredFraction, pLocal float64) (*Regional, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	if preferredFraction <= 0 || preferredFraction >= 1 {
		return nil, fmt.Errorf("workload: preferred fraction %v must be in (0,1)", preferredFraction)
	}
	if pLocal <= 0 || pLocal >= 1 {
		return nil, fmt.Errorf("workload: pLocal %v must be in (0,1)", pLocal)
	}
	per := int(float64(u.Count)*preferredFraction + 0.5)
	if per < 1 {
		per = 1
	}
	regions := topology.Regions()
	if per*len(regions) > u.Count {
		return nil, fmt.Errorf("workload: %d objects cannot hold %d regions x %d preferred", u.Count, len(regions), per)
	}
	w := &Regional{
		pLocal:    pLocal,
		count:     u.Count,
		preferred: make(map[topology.Region][]object.ID, len(regions)),
		regionOf:  make([]topology.Region, topo.NumNodes()),
	}
	for ri, r := range regions {
		ids := make([]object.ID, 0, per)
		for i := ri * per; i < (ri+1)*per; i++ {
			ids = append(ids, object.ID(i))
		}
		w.preferred[r] = ids
	}
	for _, n := range topo.Nodes() {
		w.regionOf[n.ID] = n.Region
	}
	return w, nil
}

// Name implements Generator.
func (w *Regional) Name() string { return "regional" }

// Next implements Generator.
func (w *Regional) Next(g topology.NodeID, rng *rand.Rand) object.ID {
	if pref := w.preferred[w.regionOf[g]]; len(pref) > 0 && rng.Float64() < w.pLocal {
		return pref[rng.Intn(len(pref))]
	}
	return object.ID(rng.Intn(w.count))
}

// PreferredSet returns the preferred object IDs of region r; exposed for
// tests and reports.
func (w *Regional) PreferredSet(r topology.Region) []object.ID {
	out := make([]object.ID, len(w.preferred[r]))
	copy(out, w.preferred[r])
	return out
}

// Mix composes generators with fixed weights, modelling the paper's remark
// that "a real-life workload would be some mix of workloads similar to the
// ones considered". Component selection uses a Vose alias table — O(1) per
// draw instead of the former linear cumulative-weight walk.
type Mix struct {
	parts []Generator
	alias *AliasTable
	name  string
}

// NewMix builds a weighted mixture. Weights must be positive; they are
// normalized internally.
func NewMix(parts []Generator, weights []float64) (*Mix, error) {
	if len(parts) == 0 || len(parts) != len(weights) {
		return nil, fmt.Errorf("workload: mix needs matching non-empty parts (%d) and weights (%d)", len(parts), len(weights))
	}
	for _, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("workload: mix weight %v must be positive", w)
		}
	}
	alias, err := NewAliasTable(weights)
	if err != nil {
		return nil, err
	}
	return &Mix{name: "mix", parts: parts, alias: alias}, nil
}

// Name implements Generator.
func (w *Mix) Name() string { return w.name }

// Next implements Generator.
func (w *Mix) Next(g topology.NodeID, rng *rand.Rand) object.ID {
	return w.parts[w.alias.Draw(rng)].Next(g, rng)
}

// containsID reports whether the sorted slice contains id.
func containsID(sorted []object.ID, id object.ID) bool {
	lo, hi := 0, len(sorted)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		switch {
		case sorted[mid] == id:
			return true
		case sorted[mid] < id:
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	return false
}

// IsHot reports whether the page is in the hot bucket; exposed for
// analysis tools and tests. The hot bucket is built in ascending ID order.
func (w *HotPages) IsHot(id object.ID) bool { return containsID(w.hotPages, id) }

// IsHot reports whether the page is initially assigned to a hot site;
// exposed for analysis tools and tests.
func (w *HotSites) IsHot(id object.ID) bool { return containsID(w.hotPages, id) }
