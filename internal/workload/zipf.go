package workload

import (
	"math"
	"math/rand"
)

// ZipfReeds samples page ranks approximately following Zipf's law using the
// closed-form approximation due to Jim Reeds that the paper adopts
// (§6.1, footnote 3): the requested page number is e^(u(0,1)·ln n) rounded
// to the nearest integer, where u(0,1) is uniform on (0,1) and n is the
// number of objects. Returned ranks are in [1, n]; rank 1 is the most
// popular page. The paper reports the approximation stays within 15% of
// exact Zipf popularities.
type ZipfReeds struct {
	n    int
	logN float64
}

// NewZipfReeds returns a sampler over ranks 1..n. n must be >= 1.
func NewZipfReeds(n int) *ZipfReeds {
	if n < 1 {
		n = 1
	}
	return &ZipfReeds{n: n, logN: math.Log(float64(n))}
}

// Rank draws a page rank in [1, n].
func (z *ZipfReeds) Rank(rng *rand.Rand) int {
	// rand.Float64 returns [0,1); the formula wants (0,1). Zero would give
	// rank 1, which is the correct limit, so no resampling is needed, but
	// rounding can exceed n when u is close to 1: clamp.
	u := rng.Float64()
	r := int(math.Round(math.Exp(u * z.logN)))
	if r < 1 {
		r = 1
	}
	if r > z.n {
		r = z.n
	}
	return r
}

// ZipfExact samples ranks from the exact (truncated, s=1) Zipf
// distribution. It exists to validate the Reeds approximation and for
// ablation experiments; the paper's simulations use the approximation.
// Draws go through a Vose alias table, so each sample costs one uniform
// variate and O(1) work instead of the former O(log n) inverse-CDF binary
// search.
type ZipfExact struct {
	alias *AliasTable
}

// NewZipfExact builds the exact sampler over ranks 1..n.
func NewZipfExact(n int) *ZipfExact {
	if n < 1 {
		n = 1
	}
	weights := make([]float64, n)
	for i := 1; i <= n; i++ {
		weights[i-1] = 1 / float64(i)
	}
	alias, err := NewAliasTable(weights)
	if err != nil {
		// Harmonic weights are always positive and finite.
		panic(err)
	}
	return &ZipfExact{alias: alias}
}

// Rank draws a page rank in [1, n].
func (z *ZipfExact) Rank(rng *rand.Rand) int {
	return z.alias.Draw(rng) + 1
}
