package workload

import (
	"testing"

	"radar/internal/object"
	"radar/internal/topology"
)

func TestFocusedRouting(t *testing.T) {
	u := object.Universe{Count: 100, SizeBytes: 1}
	bg, err := NewUniform(u)
	if err != nil {
		t.Fatal(err)
	}
	targets := []object.ID{5, 10, 15}
	f, err := NewFocused(targets, []topology.NodeID{2}, 1.0, bg)
	if err != nil {
		t.Fatal(err)
	}
	targetSet := map[object.ID]bool{5: true, 10: true, 15: true}
	rng := Stream(1, 0)
	for i := 0; i < 1000; i++ {
		if id := f.Next(2, rng); !targetSet[id] {
			t.Fatalf("focus gateway drew non-target %d at pFocus=1", id)
		}
	}
	// Non-focus gateways follow the background: they must cover far more
	// than the target set.
	seen := map[object.ID]bool{}
	for i := 0; i < 2000; i++ {
		seen[f.Next(7, rng)] = true
	}
	if len(seen) < 50 {
		t.Fatalf("background gateway covered only %d objects", len(seen))
	}
}

func TestFocusedPartialProbability(t *testing.T) {
	u := object.Universe{Count: 1000, SizeBytes: 1}
	bg, err := NewUniform(u)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFocused([]object.ID{1}, []topology.NodeID{0}, 0.5, bg)
	if err != nil {
		t.Fatal(err)
	}
	rng := Stream(2, 0)
	hits := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if f.Next(0, rng) == 1 {
			hits++
		}
	}
	if frac := float64(hits) / draws; frac < 0.45 || frac > 0.55 {
		t.Fatalf("target share = %.3f, want ~0.5", frac)
	}
}

func TestFocusedValidation(t *testing.T) {
	u := object.Universe{Count: 10, SizeBytes: 1}
	bg, _ := NewUniform(u)
	if _, err := NewFocused(nil, []topology.NodeID{0}, 0.5, bg); err == nil {
		t.Error("empty targets accepted")
	}
	if _, err := NewFocused([]object.ID{1}, nil, 0.5, bg); err == nil {
		t.Error("empty gateways accepted")
	}
	if _, err := NewFocused([]object.ID{1}, []topology.NodeID{0}, 0, bg); err == nil {
		t.Error("zero pFocus accepted")
	}
	if _, err := NewFocused([]object.ID{1}, []topology.NodeID{0}, 0.5, nil); err == nil {
		t.Error("nil background accepted")
	}
	if f, err := NewFocused([]object.ID{1}, []topology.NodeID{0}, 0.5, bg); err != nil || f.Name() != "focused" {
		t.Errorf("valid construction failed: %v", err)
	}
}
