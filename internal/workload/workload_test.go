package workload

import (
	"testing"

	"radar/internal/object"
	"radar/internal/topology"
)

var testUniverse = object.Universe{Count: 1000, SizeBytes: 12 << 10}

func TestUniformCoversRange(t *testing.T) {
	w, err := NewUniform(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	rng := Stream(1, 0)
	seen := make(map[object.ID]bool)
	for i := 0; i < 50000; i++ {
		id := w.Next(0, rng)
		if id < 0 || int(id) >= testUniverse.Count {
			t.Fatalf("object %d out of range", id)
		}
		seen[id] = true
	}
	if len(seen) < testUniverse.Count*9/10 {
		t.Fatalf("uniform covered only %d/%d objects", len(seen), testUniverse.Count)
	}
}

func TestZipfHeadDominates(t *testing.T) {
	w, err := NewZipf(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	rng := Stream(2, 0)
	head := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if w.Next(0, rng) < 10 {
			head++
		}
	}
	// Under Zipf over 1000 objects, the top-10 pages draw a large share
	// (roughly H(10)/H(1000) ≈ 39%); require well above uniform's 1%.
	if frac := float64(head) / draws; frac < 0.20 {
		t.Fatalf("top-10 share = %.3f, want >= 0.20", frac)
	}
}

func TestHotSitesSkew(t *testing.T) {
	const nodes = 53
	w, err := NewHotSites(testUniverse, nodes, 0.9, 7)
	if err != nil {
		t.Fatal(err)
	}
	hotSites := w.HotSiteCount(testUniverse, nodes)
	if hotSites < 3 || hotSites > 8 {
		t.Fatalf("hot sites = %d, want ~10%% of 53", hotSites)
	}
	hotSet := make(map[object.ID]bool, len(w.hotPages))
	for _, id := range w.hotPages {
		hotSet[id] = true
	}
	rng := Stream(3, 0)
	hot := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if hotSet[w.Next(0, rng)] {
			hot++
		}
	}
	if frac := float64(hot) / draws; frac < 0.85 || frac > 0.95 {
		t.Fatalf("hot-site request share = %.3f, want ~0.9", frac)
	}
}

func TestHotSitesConcentratedOnFewSites(t *testing.T) {
	// In hot-sites all hot documents live on a few sites initially — that
	// is the defining contrast with hot-pages.
	const nodes = 53
	w, err := NewHotSites(testUniverse, nodes, 0.9, 7)
	if err != nil {
		t.Fatal(err)
	}
	sites := make(map[topology.NodeID]int)
	for _, id := range w.hotPages {
		sites[testUniverse.HomeNode(id, nodes)]++
	}
	if len(sites) > 8 {
		t.Fatalf("hot pages spread over %d sites, want few", len(sites))
	}
}

func TestHotPagesSkewAndSpread(t *testing.T) {
	const nodes = 53
	w, err := NewHotPages(testUniverse, 0.1, 0.9, 11)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(w.hotPages); got != 100 {
		t.Fatalf("hot bucket = %d pages, want 100 (1:9 of 1000)", got)
	}
	// Hot pages must be spread across many sites (contrast with hot-sites).
	sites := make(map[topology.NodeID]bool)
	for _, id := range w.hotPages {
		sites[testUniverse.HomeNode(id, nodes)] = true
	}
	if len(sites) < nodes/2 {
		t.Fatalf("hot pages on only %d sites, want wide spread", len(sites))
	}
	hotSet := make(map[object.ID]bool)
	for _, id := range w.hotPages {
		hotSet[id] = true
	}
	rng := Stream(4, 0)
	hot := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if hotSet[w.Next(0, rng)] {
			hot++
		}
	}
	if frac := float64(hot) / draws; frac < 0.85 || frac > 0.95 {
		t.Fatalf("hot-page share = %.3f, want ~0.9", frac)
	}
}

func TestRegionalPrefersOwnSlice(t *testing.T) {
	topo := topology.UUNET()
	w, err := NewRegional(testUniverse, topo, 0.01, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	regions := topology.Regions()
	// Preferred sets must be disjoint contiguous slices.
	seen := make(map[object.ID]topology.Region)
	for _, r := range regions {
		set := w.PreferredSet(r)
		if len(set) != 10 {
			t.Fatalf("region %v preferred set = %d objects, want 10 (1%% of 1000)", r, len(set))
		}
		for i := 1; i < len(set); i++ {
			if set[i] != set[i-1]+1 {
				t.Fatalf("region %v preferred set not contiguous: %v", r, set)
			}
		}
		for _, id := range set {
			if prev, dup := seen[id]; dup {
				t.Fatalf("object %d preferred by both %v and %v", id, prev, r)
			}
			seen[id] = r
		}
	}
	// A node in Europe must request Europe's slice ~90% of the time.
	var euNode topology.NodeID
	for _, n := range topo.Nodes() {
		if n.Region == topology.Europe {
			euNode = n.ID
			break
		}
	}
	euSet := make(map[object.ID]bool)
	for _, id := range w.PreferredSet(topology.Europe) {
		euSet[id] = true
	}
	rng := Stream(5, 0)
	local := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if euSet[w.Next(euNode, rng)] {
			local++
		}
	}
	// 90% local plus ~1% of the uniform tail landing in the slice.
	if frac := float64(local) / draws; frac < 0.85 || frac > 0.95 {
		t.Fatalf("local share = %.3f, want ~0.9", frac)
	}
}

func TestMixWeights(t *testing.T) {
	z, err := NewZipf(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUniform(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMix([]Generator{z, u}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := Stream(6, 0)
	head := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if m.Next(0, rng) < 10 {
			head++
		}
	}
	// 75% Zipf (top-10 ≈ 39%) + 25% uniform (top-10 = 1%) ≈ 30%.
	frac := float64(head) / draws
	if frac < 0.15 || frac > 0.45 {
		t.Fatalf("mixed top-10 share = %.3f, want ~0.30", frac)
	}
}

func TestConstructorValidation(t *testing.T) {
	topo := topology.UUNET()
	bad := object.Universe{Count: 0, SizeBytes: 1}
	if _, err := NewUniform(bad); err == nil {
		t.Error("NewUniform accepted empty universe")
	}
	if _, err := NewZipf(bad); err == nil {
		t.Error("NewZipf accepted empty universe")
	}
	if _, err := NewHotSites(testUniverse, 0, 0.9, 1); err == nil {
		t.Error("NewHotSites accepted zero nodes")
	}
	if _, err := NewHotSites(testUniverse, 53, 1.5, 1); err == nil {
		t.Error("NewHotSites accepted p out of range")
	}
	if _, err := NewHotPages(testUniverse, 0, 0.9, 1); err == nil {
		t.Error("NewHotPages accepted zero hot fraction")
	}
	if _, err := NewRegional(testUniverse, topo, 0.5, 0.9); err == nil {
		t.Error("NewRegional accepted oversized preferred fraction")
	}
	if _, err := NewRegional(object.Universe{Count: 2, SizeBytes: 1}, topo, 0.01, 0.9); err == nil {
		t.Error("NewRegional accepted universe smaller than region slices")
	}
	if _, err := NewMix(nil, nil); err == nil {
		t.Error("NewMix accepted empty parts")
	}
	z, _ := NewZipf(testUniverse)
	if _, err := NewMix([]Generator{z}, []float64{-1}); err == nil {
		t.Error("NewMix accepted negative weight")
	}
}

func TestGeneratorNames(t *testing.T) {
	topo := topology.UUNET()
	z, _ := NewZipf(testUniverse)
	u, _ := NewUniform(testUniverse)
	hs, _ := NewHotSites(testUniverse, 53, 0.9, 1)
	hp, _ := NewHotPages(testUniverse, 0.1, 0.9, 1)
	rg, _ := NewRegional(testUniverse, topo, 0.01, 0.9)
	want := map[Generator]string{
		z: "zipf", u: "uniform", hs: "hot-sites", hp: "hot-pages", rg: "regional",
	}
	for g, name := range want {
		if g.Name() != name {
			t.Errorf("Name() = %q, want %q", g.Name(), name)
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	mk := func() []object.ID {
		w, err := NewHotPages(testUniverse, 0.1, 0.9, 99)
		if err != nil {
			t.Fatal(err)
		}
		rng := Stream(123, 5)
		out := make([]object.ID, 1000)
		for i := range out {
			out[i] = w.Next(3, rng)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequence diverged at %d", i)
		}
	}
}

func TestObjectsHomedAtRoundRobin(t *testing.T) {
	u := object.Universe{Count: 10, SizeBytes: 1}
	got := u.ObjectsHomedAt(1, 4)
	want := []object.ID{1, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("ObjectsHomedAt = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ObjectsHomedAt = %v, want %v", got, want)
		}
	}
	if u.HomeNode(7, 4) != 3 {
		t.Fatalf("HomeNode(7,4) = %v, want 3", u.HomeNode(7, 4))
	}
}
