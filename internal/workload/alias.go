package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// AliasTable samples from an arbitrary finite discrete distribution in
// O(1) per draw using Vose's alias method: the distribution over n
// outcomes is repacked into n equal-probability columns, each holding at
// most two outcomes, so a draw is one uniform variate split into a column
// index and an acceptance test. This replaces the per-draw O(log n)
// inverse-CDF binary search (ZipfExact) and the O(n) cumulative-weight
// walk (Mix) that previously ran on every sample.
//
// Construction is deterministic: columns are filled by processing indices
// from two explicit stacks seeded in ascending index order, so the same
// weights always yield the same table. A table is immutable after
// NewAliasTable returns and safe for concurrent use by goroutines holding
// their own rng.
type AliasTable struct {
	prob  []float64 // acceptance threshold of each column, in [0, 1]
	alias []int32   // fallback outcome of each column
}

// NewAliasTable builds a sampler over len(weights) outcomes where outcome
// i is drawn with probability weights[i]/sum(weights). Weights must be
// non-empty, finite and non-negative with a positive, finite sum.
func NewAliasTable(weights []float64) (*AliasTable, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("workload: alias table needs at least one weight")
	}
	sum := 0.0
	for i, w := range weights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return nil, fmt.Errorf("workload: alias weight %d is %v, want finite and >= 0", i, w)
		}
		sum += w
	}
	if sum <= 0 || math.IsInf(sum, 0) {
		return nil, fmt.Errorf("workload: alias weights sum to %v, want positive and finite", sum)
	}
	t := &AliasTable{prob: make([]float64, n), alias: make([]int32, n)}
	scaled := make([]float64, n)
	scale := float64(n) / sum
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * scale
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		// The large outcome donated (1 - scaled[s]) of its mass to fill
		// column s.
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Whatever remains on either stack has (numerically) exactly unit
	// mass: give it its whole column.
	for _, i := range large {
		t.prob[i] = 1
		t.alias[i] = i
	}
	for _, i := range small {
		t.prob[i] = 1
		t.alias[i] = i
	}
	return t, nil
}

// N returns the number of outcomes.
func (t *AliasTable) N() int { return len(t.prob) }

// Draw samples an outcome index in [0, N) using one uniform variate from
// rng.
func (t *AliasTable) Draw(rng *rand.Rand) int {
	u := rng.Float64() * float64(len(t.prob))
	col := int(u)
	if col >= len(t.prob) {
		col = len(t.prob) - 1 // guard the u -> 1⁻ rounding edge
	}
	if u-float64(col) < t.prob[col] {
		return col
	}
	return int(t.alias[col])
}

// Probabilities reconstructs the exact distribution the table samples
// from: outcome i's probability is its own column's acceptance mass plus
// every donation it received from other columns. Tests compare this
// against the normalized input weights.
func (t *AliasTable) Probabilities() []float64 {
	n := len(t.prob)
	out := make([]float64, n)
	for i := range t.prob {
		out[i] += t.prob[i] / float64(n)
		out[t.alias[i]] += (1 - t.prob[i]) / float64(n)
	}
	return out
}
