package workload

import (
	"fmt"
	"math/rand"

	"radar/internal/object"
	"radar/internal/topology"
)

// Focused models vicinity-concentrated demand — the §3 motivating case
// where "a server is swamped with requests originating from its
// vicinity": a designated set of gateways directs pFocus of its requests
// at a fixed target object set, while all other traffic follows a
// background generator. With closest-replica routing no amount of
// replication relieves the target's home servers; the paper's distributor
// spills the excess to remote replicas.
type Focused struct {
	targets    []object.ID
	inFocus    map[topology.NodeID]bool
	pFocus     float64
	background Generator
}

// NewFocused builds the generator. focusGateways draw from targets with
// probability pFocus and otherwise (and for all other gateways) fall back
// to background.
func NewFocused(targets []object.ID, focusGateways []topology.NodeID, pFocus float64, background Generator) (*Focused, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("workload: focused needs target objects")
	}
	if len(focusGateways) == 0 {
		return nil, fmt.Errorf("workload: focused needs focus gateways")
	}
	if pFocus <= 0 || pFocus > 1 {
		return nil, fmt.Errorf("workload: pFocus %v must be in (0,1]", pFocus)
	}
	if background == nil {
		return nil, fmt.Errorf("workload: focused needs a background generator")
	}
	f := &Focused{
		targets:    append([]object.ID(nil), targets...),
		inFocus:    make(map[topology.NodeID]bool, len(focusGateways)),
		pFocus:     pFocus,
		background: background,
	}
	for _, g := range focusGateways {
		f.inFocus[g] = true
	}
	return f, nil
}

// Name implements Generator.
func (f *Focused) Name() string { return "focused" }

// Next implements Generator.
func (f *Focused) Next(g topology.NodeID, rng *rand.Rand) object.ID {
	if f.inFocus[g] && rng.Float64() < f.pFocus {
		return f.targets[rng.Intn(len(f.targets))]
	}
	return f.background.Next(g, rng)
}
