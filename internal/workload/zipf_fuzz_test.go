package workload

import (
	"math"
	"testing"
)

// FuzzZipfReedsRank: for any universe size and seed, the Reeds
// approximation must return ranks in [1, n] (clamping degenerate n to 1)
// and do so deterministically for a fixed (seed, stream) pair.
func FuzzZipfReedsRank(f *testing.F) {
	f.Add(int64(1), uint16(10000))
	f.Add(int64(-7), uint16(1))
	f.Add(int64(0), uint16(0))
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint16) {
		n := int(nRaw)
		z := NewZipfReeds(n)
		if n < 1 {
			n = 1
		}
		rng := Stream(seed, 3)
		rng2 := Stream(seed, 3)
		for i := 0; i < 64; i++ {
			r := z.Rank(rng)
			if r < 1 || r > n {
				t.Fatalf("rank %d out of [1, %d] (seed %d, draw %d)", r, n, seed, i)
			}
			if r2 := z.Rank(rng2); r2 != r {
				t.Fatalf("same stream diverged: draw %d gave %d then %d", i, r, r2)
			}
		}
	})
}

// FuzzAliasTable: alias-table construction must be total over arbitrary
// small weight vectors — valid inputs yield a well-formed table whose
// encoded distribution matches the normalized weights and whose draws stay
// in range; invalid inputs yield an error, never a panic or a malformed
// table. Weights are decoded from raw fuzz bytes so degenerate shapes
// (n=1, zeros, extreme ratios) are reachable.
func FuzzAliasTable(f *testing.F) {
	f.Add([]byte{1}, int64(1))
	f.Add([]byte{0, 0, 0}, int64(2))
	f.Add([]byte{255, 1, 128, 3, 7}, int64(42))
	f.Fuzz(func(t *testing.T, raw []byte, seed int64) {
		if len(raw) > 256 {
			raw = raw[:256]
		}
		weights := make([]float64, len(raw))
		sum := 0.0
		for i, b := range raw {
			// Spread magnitudes across ~9 decades to stress the
			// small/large worklists.
			weights[i] = float64(b%16) * math.Pow(10, float64(b/32)-4)
			sum += weights[i]
		}
		tab, err := NewAliasTable(weights)
		if len(weights) == 0 || sum <= 0 {
			if err == nil {
				t.Fatalf("NewAliasTable accepted invalid weights %v", weights)
			}
			return
		}
		if err != nil {
			t.Fatalf("NewAliasTable(%v): %v", weights, err)
		}
		if tab.N() != len(weights) {
			t.Fatalf("N() = %d, want %d", tab.N(), len(weights))
		}
		got := tab.Probabilities()
		for i, w := range weights {
			want := w / sum
			if math.Abs(got[i]-want) > 1e-9 {
				t.Fatalf("outcome %d has probability %v, want %v (weights %v)", i, got[i], want, weights)
			}
		}
		rng := Stream(seed, 5)
		for i := 0; i < 64; i++ {
			d := tab.Draw(rng)
			if d < 0 || d >= len(weights) {
				t.Fatalf("draw %d out of [0, %d)", d, len(weights))
			}
			if weights[d] == 0 {
				t.Fatalf("drew zero-weight outcome %d", d)
			}
		}
	})
}

// FuzzZipfExactRank: the alias-backed exact sampler must return in-range
// ranks deterministically for any universe size.
func FuzzZipfExactRank(f *testing.F) {
	f.Add(uint16(1), int64(1))
	f.Add(uint16(997), int64(42))
	f.Fuzz(func(t *testing.T, nRaw uint16, seed int64) {
		n := int(nRaw)%2048 + 1 // keep table construction cheap
		z := NewZipfExact(n)
		rng := Stream(seed, 5)
		rng2 := Stream(seed, 5)
		for i := 0; i < 64; i++ {
			r := z.Rank(rng)
			if r < 1 || r > n {
				t.Fatalf("exact rank %d out of [1, %d]", r, n)
			}
			if r2 := z.Rank(rng2); r2 != r {
				t.Fatalf("same stream diverged: draw %d gave %d then %d", i, r, r2)
			}
		}
	})
}
