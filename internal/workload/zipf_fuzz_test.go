package workload

import "testing"

// FuzzZipfReedsRank: for any universe size and seed, the Reeds
// approximation must return ranks in [1, n] (clamping degenerate n to 1)
// and do so deterministically for a fixed (seed, stream) pair.
func FuzzZipfReedsRank(f *testing.F) {
	f.Add(int64(1), uint16(10000))
	f.Add(int64(-7), uint16(1))
	f.Add(int64(0), uint16(0))
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint16) {
		n := int(nRaw)
		z := NewZipfReeds(n)
		if n < 1 {
			n = 1
		}
		rng := Stream(seed, 3)
		rng2 := Stream(seed, 3)
		for i := 0; i < 64; i++ {
			r := z.Rank(rng)
			if r < 1 || r > n {
				t.Fatalf("rank %d out of [1, %d] (seed %d, draw %d)", r, n, seed, i)
			}
			if r2 := z.Rank(rng2); r2 != r {
				t.Fatalf("same stream diverged: draw %d gave %d then %d", i, r, r2)
			}
		}
	})
}

// FuzzZipfExactCDF: the exact sampler's CDF must be monotone
// nondecreasing, end at exactly 1, and inverse-CDF draws must stay in
// [1, n].
func FuzzZipfExactCDF(f *testing.F) {
	f.Add(uint16(1), int64(1))
	f.Add(uint16(997), int64(42))
	f.Fuzz(func(t *testing.T, nRaw uint16, seed int64) {
		n := int(nRaw)%2048 + 1 // keep CDF construction cheap
		z := NewZipfExact(n)
		if len(z.cdf) != n {
			t.Fatalf("cdf has %d entries, want %d", len(z.cdf), n)
		}
		prev := 0.0
		for i, c := range z.cdf {
			if c < prev {
				t.Fatalf("cdf decreases at rank %d: %v < %v", i+1, c, prev)
			}
			prev = c
		}
		if z.cdf[n-1] != 1 {
			t.Fatalf("cdf ends at %v, want exactly 1", z.cdf[n-1])
		}
		rng := Stream(seed, 5)
		for i := 0; i < 64; i++ {
			if r := z.Rank(rng); r < 1 || r > n {
				t.Fatalf("exact rank %d out of [1, %d]", r, n)
			}
		}
	})
}
