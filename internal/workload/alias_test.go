package workload

import (
	"math"
	"testing"
)

// harmonicPMF returns the exact truncated Zipf (s=1) PMF over ranks 1..n.
func harmonicPMF(n int) []float64 {
	h := 0.0
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	pmf := make([]float64, n)
	for i := 1; i <= n; i++ {
		pmf[i-1] = 1 / float64(i) / h
	}
	return pmf
}

// TestAliasTableReconstructsWeights: the distribution encoded by the alias
// columns must equal the normalized input weights up to rounding — a
// deterministic, draw-free correctness check of the construction.
func TestAliasTableReconstructsWeights(t *testing.T) {
	cases := map[string][]float64{
		"harmonic100": harmonicPMF(100),
		"single":      {7},
		"uniform4":    {1, 1, 1, 1},
		"lumpy":       {0.5, 0, 3, 1e-9, 2},
		"huge-ratio":  {1e12, 1},
	}
	for name, weights := range cases {
		tab, err := NewAliasTable(weights)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sum := 0.0
		for _, w := range weights {
			sum += w
		}
		got := tab.Probabilities()
		for i, w := range weights {
			want := w / sum
			if math.Abs(got[i]-want) > 1e-12 {
				t.Errorf("%s: outcome %d has probability %v, want %v", name, i, got[i], want)
			}
		}
	}
}

func TestAliasTableRejectsBadWeights(t *testing.T) {
	for name, weights := range map[string][]float64{
		"empty":    {},
		"all-zero": {0, 0, 0},
		"negative": {1, -0.5},
		"nan":      {1, math.NaN()},
		"inf":      {math.Inf(1), 1},
	} {
		if _, err := NewAliasTable(weights); err == nil {
			t.Errorf("%s: NewAliasTable accepted invalid weights %v", name, weights)
		}
	}
}

// chiSquared returns the chi-squared statistic of observed counts against
// expected probabilities over `draws` samples.
func chiSquared(counts []int, pmf []float64, draws int) float64 {
	stat := 0.0
	for i, p := range pmf {
		exp := p * float64(draws)
		d := float64(counts[i]) - exp
		stat += d * d / exp
	}
	return stat
}

// TestZipfExactChiSquared: the alias-backed exact sampler's draws must be
// statistically indistinguishable from the exact Zipf PMF. With n=100 the
// smallest expected bin count is ~960 over 500k draws, so the plain
// chi-squared test applies to every bin; the threshold df + 5·sqrt(2·df)
// has a false-positive probability well under 1e-4, and the seed is fixed,
// so the test is deterministic in practice.
func TestZipfExactChiSquared(t *testing.T) {
	const n = 100
	const draws = 500000
	pmf := harmonicPMF(n)
	z := NewZipfExact(n)
	rng := Stream(11, 1)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Rank(rng)-1]++
	}
	df := float64(n - 1)
	limit := df + 5*math.Sqrt(2*df)
	if stat := chiSquared(counts, pmf, draws); stat > limit {
		t.Fatalf("chi-squared %.1f exceeds %.1f (df %.0f): alias sampler does not match exact Zipf PMF", stat, limit, df)
	}
}

// TestAliasTableChiSquaredLumpy repeats the distribution-equivalence check
// on a deliberately skewed non-Zipf distribution.
func TestAliasTableChiSquaredLumpy(t *testing.T) {
	weights := []float64{10, 1, 0.2, 5, 0.2, 3, 1, 7}
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	pmf := make([]float64, len(weights))
	for i, w := range weights {
		pmf[i] = w / sum
	}
	tab, err := NewAliasTable(weights)
	if err != nil {
		t.Fatal(err)
	}
	const draws = 400000
	counts := make([]int, len(weights))
	rng := Stream(12, 1)
	for i := 0; i < draws; i++ {
		counts[tab.Draw(rng)]++
	}
	df := float64(len(weights) - 1)
	limit := df + 5*math.Sqrt(2*df)
	if stat := chiSquared(counts, pmf, draws); stat > limit {
		t.Fatalf("chi-squared %.1f exceeds %.1f (df %.0f)", stat, limit, df)
	}
}

// TestZipfExactSingleObject: the degenerate n=1 sampler must always return
// rank 1.
func TestZipfExactSingleObject(t *testing.T) {
	z := NewZipfExact(1)
	rng := Stream(13, 1)
	for i := 0; i < 100; i++ {
		if r := z.Rank(rng); r != 1 {
			t.Fatalf("rank = %d, want 1", r)
		}
	}
}
