package workload

import "math/rand"

// splitmix64 advances and hashes a 64-bit state. It is the standard seed
// expander for deriving statistically independent streams from one master
// seed, so every simulation component gets its own deterministic PRNG.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream returns a deterministic PRNG for the given (master seed, stream)
// pair. Distinct streams are independent; the same pair always yields the
// same sequence, which keeps whole simulation runs reproducible.
func Stream(master int64, stream uint64) *rand.Rand {
	mixed := splitmix64(splitmix64(uint64(master)) ^ splitmix64(stream+0x5851f42d4c957f2d))
	return rand.New(rand.NewSource(int64(mixed)))
}
