// Package report renders simulation results as the paper presents them:
// fixed-width ASCII tables for Tables 1-2 style summaries and CSV series
// for the data behind Figures 6-9.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"radar/internal/metrics"
	"radar/internal/sim"
)

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// F formats a float with the given precision, trimming trailing zeros.
func F(v float64, prec int) string {
	s := strconv.FormatFloat(v, 'f', prec, 64)
	if strings.Contains(s, ".") {
		s = strings.TrimRight(s, "0")
		s = strings.TrimRight(s, ".")
	}
	return s
}

// Mins formats a duration in whole minutes like the paper's Table 2.
func Mins(d time.Duration) string {
	return strconv.Itoa(int(d.Round(time.Minute) / time.Minute))
}

// WriteSeriesCSV writes one or more named series sharing a time axis. All
// series must be sampled on the same bucket grid; shorter series pad with
// empty cells.
func WriteSeriesCSV(w io.Writer, timeUnit time.Duration, series map[string][]metrics.Point, order []string) error {
	if len(order) == 0 {
		return fmt.Errorf("report: no series to write")
	}
	maxLen := 0
	for _, name := range order {
		if len(series[name]) > maxLen {
			maxLen = len(series[name])
		}
	}
	var b strings.Builder
	b.WriteString("time")
	for _, name := range order {
		b.WriteByte(',')
		b.WriteString(name)
	}
	b.WriteByte('\n')
	for i := 0; i < maxLen; i++ {
		var ts time.Duration
		for _, name := range order {
			if i < len(series[name]) {
				ts = series[name][i].T
				break
			}
		}
		b.WriteString(F(float64(ts)/float64(timeUnit), 3))
		for _, name := range order {
			b.WriteByte(',')
			if i < len(series[name]) {
				b.WriteString(F(series[name][i].V, 6))
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteHostLoadCSV writes the Figure 8b trace.
func WriteHostLoadCSV(w io.Writer, samples []metrics.HostLoadSample) error {
	var b strings.Builder
	b.WriteString("time_s,actual,lower,upper\n")
	for _, s := range samples {
		fmt.Fprintf(&b, "%s,%s,%s,%s\n",
			F(s.T.Seconds(), 1), F(s.Actual, 4), F(s.Lower, 4), F(s.Upper, 4))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Summary renders a one-run summary table.
func Summary(res *sim.Results) *Table {
	t := &Table{
		Title:   fmt.Sprintf("run: workload=%s policy=%s dynamic=%v duration=%v seed=%d", res.WorkloadName, res.Policy, res.Dynamic, res.Duration, res.Seed),
		Headers: []string{"metric", "value"},
	}
	t.AddRow("bandwidth initial (byte-hops/s)", F(res.BandwidthStats.Initial, 0))
	t.AddRow("bandwidth equilibrium (byte-hops/s)", F(res.BandwidthStats.Equilibrium, 0))
	t.AddRow("bandwidth reduction (%)", F(res.BandwidthStats.ReductionPercent, 1))
	t.AddRow("latency initial (s)", F(res.LatencyStats.Initial, 3))
	t.AddRow("latency equilibrium (s)", F(res.LatencyStats.Equilibrium, 3))
	t.AddRow("latency reduction (%)", F(res.LatencyStats.ReductionPercent, 1))
	if res.Adjusted {
		t.AddRow("adjustment time (min)", Mins(res.AdjustmentTime))
	} else {
		t.AddRow("adjustment time (min)", "not settled")
	}
	t.AddRow("average replicas per object", F(res.AvgReplicas, 2))
	t.AddRow("overhead traffic (%)", F(res.OverheadPercent, 2))
	t.AddRow("max load peak (req/s)", F(res.MaxLoadPeak, 1))
	t.AddRow("max load settled (req/s)", F(res.MaxLoadSettled, 1))
	t.AddRow("high watermark (req/s)", F(res.HighWatermark, 0))
	t.AddRow("estimate sandwich violations", strconv.Itoa(res.SandwichViolations))
	t.AddRow("requests served", strconv.FormatInt(res.TotalServed, 10))
	t.AddRow("requests timed out", strconv.FormatInt(res.TimedOutRequests, 10))
	c := res.Counters
	t.AddRow("geo migrations / replications", fmt.Sprintf("%d / %d", c.GeoMigrations, c.GeoReplications))
	t.AddRow("load migrations / replications", fmt.Sprintf("%d / %d", c.LoadMigrations, c.LoadReplications))
	t.AddRow("drops / refusals", fmt.Sprintf("%d / %d", c.Drops, c.Refusals))
	// Availability section, only with fault injection configured: renders
	// of fault-free runs stay byte-identical to earlier builds (golden
	// files pin this).
	if res.FaultsEnabled {
		t.AddRow("host failures / recoveries", fmt.Sprintf("%d / %d", res.Failures, res.Recoveries))
		t.AddRow("link failures / recoveries", fmt.Sprintf("%d / %d", res.LinkFailures, res.LinkRecoveries))
		t.AddRow("requests failed (faults)", strconv.FormatInt(res.FailedRequests, 10))
		t.AddRow("outage windows", strconv.FormatInt(res.Outages, 10))
		t.AddRow("unavailable object-seconds", F(res.UnavailObjSecs, 1))
		t.AddRow("below-floor object-seconds", F(res.BelowFloorObjSecs, 1))
		t.AddRow("repair replications", strconv.FormatInt(c.RepairReplications, 10))
		t.AddRow("repair traffic (byte-hops)", strconv.FormatInt(res.RepairByteHops, 10))
	}
	// Storage section, only with a non-default replica-storage stack:
	// default-stack renders stay byte-identical. One row per stack layer,
	// in pre-order, with that layer's hit/miss and fault counters.
	if res.StoreEnabled {
		t.AddRow("store stack", res.StoreSpec)
		for i, l := range res.StoreLayers {
			t.AddRow(fmt.Sprintf("store[%d] %s serves (hit/miss)", i, l.Label),
				fmt.Sprintf("%d (%d / %d)", l.Serves, l.Hits, l.Misses))
			t.AddRow(fmt.Sprintf("store[%d] %s evict/repair/refetch", i, l.Label),
				fmt.Sprintf("%d / %d / %d", l.Evictions, l.Repairs, l.Refetches))
			if l.Crashes > 0 || l.LostWrites > 0 {
				t.AddRow(fmt.Sprintf("store[%d] %s crashes / lost writes", i, l.Label),
					fmt.Sprintf("%d / %d", l.Crashes, l.LostWrites))
			}
			t.AddRow(fmt.Sprintf("store[%d] %s replicas / MB / cost (s)", i, l.Label),
				fmt.Sprintf("%d / %s / %s", l.Replicas, F(float64(l.BytesUsed)/(1<<20), 1),
					F(time.Duration(l.CostNanos).Seconds(), 3)))
		}
	}
	// Control-plane section, only when message faults armed the unreliable
	// control plane: reliable-run renders stay byte-identical.
	if res.CtrlEnabled {
		st := res.CtrlStats
		t.AddRow("ctrl RPC attempts / retries", fmt.Sprintf("%d / %d", st.Attempts, st.Retries))
		t.AddRow("ctrl RPC timeouts / lost", fmt.Sprintf("%d / %d", st.Timeouts, st.Lost))
		t.AddRow("ctrl legs dropped / duplicated", fmt.Sprintf("%d / %d", st.DroppedLegs, st.DupLegs))
		t.AddRow("ctrl notifies sent / lost", fmt.Sprintf("%d / %d", st.NotifiesSent, st.NotifiesLost))
		t.AddRow("placement moves deferred", strconv.FormatInt(c.DeferredMoves, 10))
		t.AddRow("orphan replicas healed", strconv.FormatInt(res.OrphansHealed, 10))
		t.AddRow("stale affinities repaired", strconv.FormatInt(res.StaleAffinityRepaired, 10))
		t.AddRow("ghost records removed", strconv.FormatInt(res.GhostsRemoved, 10))
		t.AddRow("reconcile runs", strconv.FormatInt(res.ReconcileRuns, 10))
		t.AddRow("reconcile traffic (byte-hops)", strconv.FormatInt(res.ReconcileByteHops, 10))
	}
	return t
}
