package report

import (
	"strings"
	"testing"
	"time"

	"radar/internal/metrics"
	"radar/internal/sim"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{Title: "demo", Headers: []string{"a", "metric"}}
	tbl.AddRow("x", "1")
	tbl.AddRow("longer", "2.5")
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
	if lines[0] != "demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "a     ") {
		t.Errorf("header not width-aligned: %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("separator missing: %q", lines[2])
	}
}

func TestF(t *testing.T) {
	tests := []struct {
		v    float64
		prec int
		want string
	}{
		{1.5, 3, "1.5"},
		{2, 3, "2"},
		{0.123456, 3, "0.123"},
		{100, 0, "100"},
	}
	for _, tc := range tests {
		if got := F(tc.v, tc.prec); got != tc.want {
			t.Errorf("F(%v,%d) = %q, want %q", tc.v, tc.prec, got, tc.want)
		}
	}
}

func TestMins(t *testing.T) {
	if got := Mins(22*time.Minute + 29*time.Second); got != "22" {
		t.Errorf("Mins = %q, want 22", got)
	}
	if got := Mins(22*time.Minute + 31*time.Second); got != "23" {
		t.Errorf("Mins = %q, want 23", got)
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	series := map[string][]metrics.Point{
		"bw":  {{T: 0, V: 10}, {T: time.Minute, V: 20}},
		"lat": {{T: 0, V: 0.5}},
	}
	var b strings.Builder
	if err := WriteSeriesCSV(&b, time.Minute, series, []string{"bw", "lat"}); err != nil {
		t.Fatal(err)
	}
	want := "time,bw,lat\n0,10,0.5\n1,20,\n"
	if b.String() != want {
		t.Fatalf("csv = %q, want %q", b.String(), want)
	}
	if err := WriteSeriesCSV(&b, time.Minute, nil, nil); err == nil {
		t.Fatal("empty series accepted")
	}
}

func TestWriteHostLoadCSV(t *testing.T) {
	samples := []metrics.HostLoadSample{
		{T: 20 * time.Second, Actual: 40, Lower: 35.5, Upper: 50},
	}
	var b strings.Builder
	if err := WriteHostLoadCSV(&b, samples); err != nil {
		t.Fatal(err)
	}
	want := "time_s,actual,lower,upper\n20,40,35.5,50\n"
	if b.String() != want {
		t.Fatalf("csv = %q, want %q", b.String(), want)
	}
}

func TestSummaryIncludesKeyMetrics(t *testing.T) {
	res := &sim.Results{
		WorkloadName: "zipf",
		Dynamic:      true,
		Duration:     time.Hour,
		AvgReplicas:  1.86,
		Adjusted:     true,
	}
	res.BandwidthStats.Initial = 100
	res.BandwidthStats.Equilibrium = 40
	res.BandwidthStats.ReductionPercent = 60
	res.AdjustmentTime = 23 * time.Minute
	tbl := Summary(res)
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"zipf", "60", "1.86", "23"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
