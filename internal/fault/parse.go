package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"radar/internal/topology"
)

// ParseSchedule parses the compact fault-schedule DSL used by the -faults
// command-line flag. A schedule is a semicolon-separated list of clauses:
//
//	crash:NODE@START[+DOWNTIME]   crash host NODE at START; recover after
//	                              DOWNTIME (omitted = never recovers)
//	link:A-B@START[+DOWNTIME]     cut the A-B link at START
//	mtbf:DUR / mttr:DUR           exponential host crash cycles with the
//	                              given mean time between failures / to
//	                              repair (both required together)
//	linkmtbf:DUR / linkmttr:DUR   the link-failure analogues
//	drop:P                        lose each control message leg with
//	                              probability P (arms the unreliable
//	                              control plane when P > 0)
//	dup:P                         duplicate each delivered leg with
//	                              probability P
//	cdelay:DUR                    delay each delivered leg by an extra
//	                              uniform [0, DUR]
//
// Durations use Go syntax ("90s", "5m", "1h30m"). Whitespace around
// clauses is ignored; an empty string yields a disabled Spec. Examples:
//
//	crash:7@5m+3m; crash:12@10m
//	mtbf:20m; mttr:2m
//	link:7-9@8m+90s; linkmtbf:30m; linkmttr:1m
//	drop:0.2; dup:0.05; cdelay:50ms
//
// Node indices are validated against the topology later (Spec.Validate),
// and scripted links must name real backbone edges (Spec.Timeline); the
// parser only requires non-negative integers.
//
// Scalar clauses (mtbf, mttr, linkmtbf, linkmttr, drop, dup, cdelay) may
// appear at most once: a repeated key is a schedule typo — silently letting
// the last writer win would hide the intended value — and is rejected.
// Scripted crash/link clauses may repeat freely (each adds an event).
func ParseSchedule(s string) (Spec, error) {
	var spec Spec
	seen := make(map[string]bool, 4)
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, rest, ok := strings.Cut(clause, ":")
		if !ok {
			return Spec{}, fmt.Errorf("fault: clause %q needs a key: prefix", clause)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		rest = strings.TrimSpace(rest)
		switch key {
		case "mtbf", "mttr", "linkmtbf", "linkmttr", "drop", "dup", "cdelay":
			if seen[key] {
				return Spec{}, fmt.Errorf("fault: duplicate clause %q (each scalar key may appear once)", key)
			}
			seen[key] = true
		}
		var err error
		switch key {
		case "crash":
			err = parseCrash(&spec, rest)
		case "link":
			err = parseLinkCut(&spec, rest)
		case "mtbf":
			spec.HostMTBF, err = parsePositiveDuration(rest)
		case "mttr":
			spec.HostMTTR, err = parsePositiveDuration(rest)
		case "linkmtbf":
			spec.LinkMTBF, err = parsePositiveDuration(rest)
		case "linkmttr":
			spec.LinkMTTR, err = parsePositiveDuration(rest)
		case "drop":
			spec.MsgDrop, err = parseProbability(rest)
		case "dup":
			spec.MsgDup, err = parseProbability(rest)
		case "cdelay":
			spec.MsgDelay, err = parseNonNegativeDuration(rest)
		default:
			return Spec{}, fmt.Errorf("fault: unknown clause %q", key)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("fault: clause %q: %w", clause, err)
		}
	}
	if spec.HostMTBF > 0 && spec.HostMTTR <= 0 {
		return Spec{}, fmt.Errorf("fault: mtbf needs a matching mttr clause")
	}
	if spec.HostMTTR > 0 && spec.HostMTBF <= 0 {
		return Spec{}, fmt.Errorf("fault: mttr needs a matching mtbf clause")
	}
	if spec.LinkMTBF > 0 && spec.LinkMTTR <= 0 {
		return Spec{}, fmt.Errorf("fault: linkmtbf needs a matching linkmttr clause")
	}
	if spec.LinkMTTR > 0 && spec.LinkMTBF <= 0 {
		return Spec{}, fmt.Errorf("fault: linkmttr needs a matching linkmtbf clause")
	}
	return spec, nil
}

// parseCrash parses "NODE@START[+DOWNTIME]".
func parseCrash(spec *Spec, s string) error {
	elem, start, downtime, err := parseWindow(s)
	if err != nil {
		return err
	}
	node, err := parseNode(elem)
	if err != nil {
		return err
	}
	spec.Events = append(spec.Events, Event{Kind: HostDown, At: start, Node: node})
	if downtime > 0 {
		spec.Events = append(spec.Events, Event{Kind: HostUp, At: start + downtime, Node: node})
	}
	return nil
}

// parseLinkCut parses "A-B@START[+DOWNTIME]".
func parseLinkCut(spec *Spec, s string) error {
	elem, start, downtime, err := parseWindow(s)
	if err != nil {
		return err
	}
	as, bs, ok := strings.Cut(elem, "-")
	if !ok {
		return fmt.Errorf("link endpoints must be A-B, got %q", elem)
	}
	a, err := parseNode(as)
	if err != nil {
		return err
	}
	b, err := parseNode(bs)
	if err != nil {
		return err
	}
	if a == b {
		return fmt.Errorf("link cannot join node %d to itself", a)
	}
	if a > b {
		a, b = b, a
	}
	spec.Events = append(spec.Events, Event{Kind: LinkDown, At: start, A: a, B: b})
	if downtime > 0 {
		spec.Events = append(spec.Events, Event{Kind: LinkUp, At: start + downtime, A: a, B: b})
	}
	return nil
}

// parseWindow splits "ELEM@START[+DOWNTIME]" and parses the durations.
func parseWindow(s string) (elem string, start, downtime time.Duration, err error) {
	elem, when, ok := strings.Cut(s, "@")
	if !ok {
		return "", 0, 0, fmt.Errorf("missing @START time")
	}
	elem = strings.TrimSpace(elem)
	startStr, downStr, hasDown := strings.Cut(when, "+")
	start, err = time.ParseDuration(strings.TrimSpace(startStr))
	if err != nil {
		return "", 0, 0, fmt.Errorf("bad start time: %w", err)
	}
	if start < 0 {
		return "", 0, 0, fmt.Errorf("start time %v must be non-negative", start)
	}
	if hasDown {
		downtime, err = time.ParseDuration(strings.TrimSpace(downStr))
		if err != nil {
			return "", 0, 0, fmt.Errorf("bad downtime: %w", err)
		}
		if downtime <= 0 {
			return "", 0, 0, fmt.Errorf("downtime %v must be positive", downtime)
		}
	}
	return elem, start, downtime, nil
}

// parseNode parses a non-negative node index.
func parseNode(s string) (topology.NodeID, error) {
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("bad node index %q: %w", s, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("node index %d must be non-negative", v)
	}
	return topology.NodeID(v), nil
}

// parsePositiveDuration parses a strictly positive duration.
func parsePositiveDuration(s string) (time.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d <= 0 {
		return 0, fmt.Errorf("duration %v must be positive", d)
	}
	return d, nil
}

// parseNonNegativeDuration parses a duration that may be zero ("cdelay:0s"
// is an explicit no-op, like "drop:0").
func parseNonNegativeDuration(s string) (time.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("duration %v must be non-negative", d)
	}
	return d, nil
}

// parseProbability parses a probability in [0,1].
func parseProbability(s string) (float64, error) {
	p, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("bad probability %q: %w", s, err)
	}
	if p < 0 || p > 1 || p != p {
		return 0, fmt.Errorf("probability %v must be in [0,1]", p)
	}
	return p, nil
}
