package fault

import (
	"testing"
	"time"
)

func TestParseScheduleMessageFaults(t *testing.T) {
	spec, err := ParseSchedule("drop:0.2; dup:0.05; cdelay:50ms")
	if err != nil {
		t.Fatal(err)
	}
	if spec.MsgDrop != 0.2 || spec.MsgDup != 0.05 || spec.MsgDelay != 50*time.Millisecond {
		t.Fatalf("message terms = %v/%v/%v", spec.MsgDrop, spec.MsgDup, spec.MsgDelay)
	}
	if !spec.HasMessageFaults() {
		t.Fatal("spec should arm the control plane")
	}
	if spec.Enabled() {
		t.Fatal("message faults alone must not enable the crash/cut timeline")
	}
	if err := spec.Validate(16); err != nil {
		t.Fatal(err)
	}
}

func TestParseScheduleMessageFaultZeroIsDisarmed(t *testing.T) {
	for _, s := range []string{"drop:0", "dup:0", "cdelay:0s", "drop:0; dup:0; cdelay:0ms"} {
		spec, err := ParseSchedule(s)
		if err != nil {
			t.Fatalf("ParseSchedule(%q): %v", s, err)
		}
		if spec.HasMessageFaults() {
			t.Errorf("ParseSchedule(%q) armed the control plane, want disarmed", s)
		}
	}
}

func TestParseScheduleMessageFaultErrors(t *testing.T) {
	for _, bad := range []string{
		"drop:1.5",     // probability above 1
		"drop:-0.1",    // negative probability
		"drop:x",       // not a number
		"drop:NaN",     // NaN is not in [0,1]
		"dup:2",        // probability above 1
		"cdelay:-10ms", // negative delay
		"cdelay:10",    // missing duration unit
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) succeeded, want error", bad)
		}
	}
}

// Duplicate control-plane terms are schedule typos, not overrides: the
// parser rejects them rather than letting the last writer win.
func TestParseScheduleDuplicateMessageFaultKeys(t *testing.T) {
	for _, bad := range []string{
		"drop:0.2; drop:0.9",
		"dup:0.05; dup:0.1",
		"cdelay:50ms; cdelay:20ms",
		"drop:0.2; dup:0.05; drop:0.2", // even an identical repeat
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) succeeded, want duplicate-key error", bad)
		}
	}
}

func TestValidateRejectsBadMessageFaults(t *testing.T) {
	for _, spec := range []Spec{
		{MsgDrop: -0.5},
		{MsgDrop: 1.01},
		{MsgDup: 7},
		{MsgDelay: -time.Second},
	} {
		if err := spec.Validate(8); err == nil {
			t.Errorf("Validate(%+v) succeeded, want error", spec)
		}
	}
}

func TestMessageFaultsCombineWithCrashSchedule(t *testing.T) {
	spec, err := ParseSchedule("crash:3@5m+2m; drop:0.1; mtbf:20m; mttr:2m")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Enabled() || !spec.HasMessageFaults() {
		t.Fatal("combined schedule should enable both fault classes")
	}
}
