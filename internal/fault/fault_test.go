package fault

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"radar/internal/topology"
)

func TestParseScheduleScripted(t *testing.T) {
	spec, err := ParseSchedule("crash:7@5m+3m; link:9-3@10m+90s; crash:12@20m")
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: HostDown, At: 5 * time.Minute, Node: 7},
		{Kind: HostUp, At: 8 * time.Minute, Node: 7},
		{Kind: LinkDown, At: 10 * time.Minute, A: 3, B: 9},
		{Kind: LinkUp, At: 10*time.Minute + 90*time.Second, A: 3, B: 9},
		{Kind: HostDown, At: 20 * time.Minute, Node: 12},
	}
	if !reflect.DeepEqual(spec.Events, want) {
		t.Fatalf("events = %+v, want %+v", spec.Events, want)
	}
	if !spec.Enabled() || !spec.HasLinkFaults() {
		t.Fatal("spec should be enabled with link faults")
	}
}

func TestParseScheduleStochastic(t *testing.T) {
	spec, err := ParseSchedule("mtbf:20m; mttr:2m; linkmtbf:1h; linkmttr:5m")
	if err != nil {
		t.Fatal(err)
	}
	if spec.HostMTBF != 20*time.Minute || spec.HostMTTR != 2*time.Minute {
		t.Fatalf("host mtbf/mttr = %v/%v", spec.HostMTBF, spec.HostMTTR)
	}
	if spec.LinkMTBF != time.Hour || spec.LinkMTTR != 5*time.Minute {
		t.Fatalf("link mtbf/mttr = %v/%v", spec.LinkMTBF, spec.LinkMTTR)
	}
}

func TestParseScheduleEmpty(t *testing.T) {
	spec, err := ParseSchedule("  ")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Enabled() {
		t.Fatal("empty schedule must be disabled")
	}
}

func TestParseScheduleErrors(t *testing.T) {
	for _, bad := range []string{
		"crash:7",             // no time
		"crash:x@5m",          // bad node
		"crash:7@-5m",         // negative start
		"crash:7@5m+0s",       // zero downtime
		"link:3@5m",           // missing endpoint
		"link:3-3@5m",         // self link
		"mtbf:20m",            // mtbf without mttr
		"mttr:2m",             // mttr without mtbf
		"linkmtbf:20m",        // link mtbf without mttr
		"mtbf:-5m; mttr:1m",   // negative duration
		"bogus:1@2m",          // unknown clause
		"crash 7@5m",          // missing colon
		"crash:7@5m+3m extra", // trailing junk inside clause
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) succeeded, want error", bad)
		}
	}
}

// TestParseScheduleDuplicateScalarKeys: a repeated scalar clause is a
// schedule typo, not a request for last-writer-wins — the parser rejects
// it instead of silently discarding the earlier value. Scripted crash and
// link clauses may repeat (each names a distinct event).
func TestParseScheduleDuplicateScalarKeys(t *testing.T) {
	for _, bad := range []string{
		"mtbf:20m; mttr:2m; mtbf:10m",
		"mtbf:20m; mttr:2m; mttr:3m",
		"linkmtbf:1h; linkmttr:5m; linkmtbf:30m",
		"linkmtbf:1h; linkmttr:5m; linkmttr:1m",
		"mtbf:20m; MTBF:20m; mttr:2m", // keys are case-insensitive
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) succeeded, want duplicate-key error", bad)
		}
	}
	// Repeating crash/link clauses stays legal.
	spec, err := ParseSchedule("crash:7@5m+3m; crash:7@15m; link:1-2@2m; link:1-2@9m+1m")
	if err != nil {
		t.Fatalf("repeated scripted clauses rejected: %v", err)
	}
	if len(spec.Events) != 6 {
		t.Errorf("got %d events, want 6", len(spec.Events))
	}
}

func TestValidateRejectsUnknownNodes(t *testing.T) {
	spec := Spec{Events: []Event{{Kind: HostDown, At: time.Minute, Node: 99}}}
	if err := spec.Validate(10); err == nil {
		t.Fatal("want error for out-of-range node")
	}
	spec = Spec{Events: []Event{{Kind: LinkDown, At: time.Minute, A: 1, B: 99}}}
	if err := spec.Validate(10); err == nil {
		t.Fatal("want error for out-of-range link endpoint")
	}
}

func testEdges() [][2]topology.NodeID {
	return [][2]topology.NodeID{{0, 1}, {1, 2}, {2, 3}}
}

func TestTimelineDeterministic(t *testing.T) {
	spec := Spec{HostMTBF: 10 * time.Minute, HostMTTR: time.Minute,
		LinkMTBF: 30 * time.Minute, LinkMTTR: 2 * time.Minute}
	a, err := spec.Timeline(4, testEdges(), time.Hour, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Timeline(4, testEdges(), time.Hour, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal seeds must give identical timelines")
	}
	if len(a) == 0 {
		t.Fatal("an hour at 10m MTBF over 4 hosts should produce events")
	}
	if err := CheckTimeline(a); err != nil {
		t.Fatal(err)
	}
	c, err := spec.Timeline(4, testEdges(), time.Hour, rand.New(rand.NewSource(43)))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should give different timelines")
	}
}

func TestTimelineSanitizesRedundantEvents(t *testing.T) {
	spec := Spec{Events: []Event{
		{Kind: HostDown, At: time.Minute, Node: 1},
		{Kind: HostDown, At: 2 * time.Minute, Node: 1}, // already down
		{Kind: HostUp, At: 3 * time.Minute, Node: 1},
		{Kind: HostUp, At: 4 * time.Minute, Node: 1}, // already up
	}}
	tl, err := spec.Timeline(4, nil, time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl) != 2 {
		t.Fatalf("sanitized timeline has %d events, want 2: %+v", len(tl), tl)
	}
	if err := CheckTimeline(tl); err != nil {
		t.Fatal(err)
	}
}

func TestTimelineNormalizesLinkEndpoints(t *testing.T) {
	spec := Spec{Events: []Event{{Kind: LinkDown, At: time.Minute, A: 3, B: 1}}}
	edges := [][2]topology.NodeID{{1, 3}}
	tl, err := spec.Timeline(4, edges, time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl) != 1 || tl[0].A != 1 || tl[0].B != 3 {
		t.Fatalf("timeline = %+v, want normalized 1-3", tl)
	}
}

func TestTimelineRejectsNonEdgeLink(t *testing.T) {
	spec := Spec{Events: []Event{{Kind: LinkDown, At: time.Minute, A: 0, B: 2}}}
	edges := [][2]topology.NodeID{{0, 1}, {1, 2}}
	if _, err := spec.Timeline(4, edges, time.Hour, nil); err == nil {
		t.Fatal("want error for scripted cut of a non-edge (it would silently affect nothing)")
	}
}

func TestTimelineStochasticNeedsRNG(t *testing.T) {
	spec := Spec{HostMTBF: time.Minute, HostMTTR: time.Second}
	if _, err := spec.Timeline(4, nil, time.Hour, nil); err == nil {
		t.Fatal("want error for stochastic spec without rng")
	}
}

func TestCheckTimelineRejectsBadSequences(t *testing.T) {
	bad := [][]Event{
		{{Kind: HostUp, At: time.Minute, Node: 1}},                                             // up while up
		{{Kind: HostDown, At: 2 * time.Minute, Node: 1}, {Kind: HostDown, At: time.Minute}},    // unsorted
		{{Kind: LinkDown, At: time.Minute, A: 3, B: 1}},                                        // unnormalized
		{{Kind: HostDown, At: time.Minute, Node: 1}, {Kind: HostDown, At: time.Hour, Node: 1}}, // down while down
		{{Kind: Kind(9), At: time.Minute}},                                                     // unknown kind
	}
	for i, tl := range bad {
		if err := CheckTimeline(tl); err == nil {
			t.Errorf("case %d: CheckTimeline accepted %+v", i, tl)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{HostDown: "host-down", HostUp: "host-up",
		LinkDown: "link-down", LinkUp: "link-up"} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
