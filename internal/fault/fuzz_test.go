package fault

import (
	"math/rand"
	"testing"
	"time"

	"radar/internal/topology"
)

// FuzzFaultSchedule drives the schedule parser and timeline expansion with
// arbitrary input: parsing must never panic, and every schedule that
// parses and validates must expand into a sorted timeline with well-formed
// crash/recover pairs (CheckTimeline).
func FuzzFaultSchedule(f *testing.F) {
	for _, seed := range []string{
		"",
		"crash:7@5m+3m",
		"crash:7@5m+3m; crash:12@10m",
		"link:3-4@8m+90s",
		"link:3-9@8m+90s",
		"mtbf:20m; mttr:2m",
		"linkmtbf:30m; linkmttr:1m",
		"crash:0@0s+1ms; link:0-1@0s+1ms; mtbf:1m; mttr:1s; linkmtbf:1m; linkmttr:1s",
		"crash:7@5m+3m; crash:7@6m+3m",
		"CRASH:1@1m; LINK:2-1@2m",
		"crash:-1@1m",
		"mtbf:1ns; mttr:1ns",
		"mtbf:20m; mttr:2m; mtbf:10m", // duplicate scalar key — rejected
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseSchedule(s)
		if err != nil {
			return // rejected input is fine; it just must not panic
		}
		const numNodes = 16
		if err := spec.Validate(numNodes); err != nil {
			return // e.g. node index beyond the fuzz topology
		}
		checkScheduleRoundTrip(t, s, spec, numNodes)
	})
}

// FuzzCtrlSchedule targets the message-fault clauses (drop/dup/cdelay) of
// the schedule DSL: parsing must never panic, any spec that parses and
// validates must carry in-range message terms, and mixing message faults
// with crash/cut clauses must not corrupt the timeline invariants.
func FuzzCtrlSchedule(f *testing.F) {
	for _, seed := range []string{
		"drop:0.2",
		"drop:0.2; dup:0.1; cdelay:20ms",
		"drop:0; dup:0; cdelay:0s",
		"drop:1; dup:1; cdelay:1h",
		"cdelay:50ms",
		"dup:0.05",
		"drop:0.5; crash:7@5m+3m; mtbf:20m; mttr:2m",
		"drop:1.5",
		"drop:-0.1",
		"drop:NaN",
		"cdelay:-10ms",
		"DROP:0.3; DUP:0.3",
		"drop:0.2;drop:0.9",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseSchedule(s)
		if err != nil {
			return // rejected input is fine; it just must not panic
		}
		if spec.MsgDrop < 0 || spec.MsgDrop > 1 || spec.MsgDrop != spec.MsgDrop {
			t.Fatalf("parsed drop probability %v out of [0,1] for %q", spec.MsgDrop, s)
		}
		if spec.MsgDup < 0 || spec.MsgDup > 1 || spec.MsgDup != spec.MsgDup {
			t.Fatalf("parsed dup probability %v out of [0,1] for %q", spec.MsgDup, s)
		}
		if spec.MsgDelay < 0 {
			t.Fatalf("parsed message delay %v negative for %q", spec.MsgDelay, s)
		}
		if spec.HasMessageFaults() && spec.MsgDrop == 0 && spec.MsgDup == 0 && spec.MsgDelay == 0 {
			t.Fatalf("HasMessageFaults true with all-zero terms for %q", s)
		}
		const numNodes = 16
		if err := spec.Validate(numNodes); err != nil {
			return // e.g. node index beyond the fuzz topology
		}
		checkScheduleRoundTrip(t, s, spec, numNodes)
	})
}

// checkScheduleRoundTrip expands a validated spec over a line topology and
// asserts the timeline invariants and timeline determinism.
func checkScheduleRoundTrip(t *testing.T, s string, spec Spec, numNodes int) {
	t.Helper()
	edges := make([][2]topology.NodeID, 0, numNodes-1)
	for i := 0; i < numNodes-1; i++ {
		edges = append(edges, [2]topology.NodeID{topology.NodeID(i), topology.NodeID(i + 1)})
	}
	tl, err := spec.Timeline(numNodes, edges, 30*time.Minute, rand.New(rand.NewSource(1)))
	if err != nil {
		return // e.g. a scripted link event naming a non-edge of the line
	}
	if err := CheckTimeline(tl); err != nil {
		t.Fatalf("timeline invariant violated for %q: %v", s, err)
	}
	// Same inputs must reproduce the same timeline.
	tl2, err := spec.Timeline(numNodes, edges, 30*time.Minute, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(tl) != len(tl2) {
		t.Fatalf("timeline not deterministic: %d vs %d events", len(tl), len(tl2))
	}
	for i := range tl {
		if tl[i] != tl2[i] {
			t.Fatalf("timeline not deterministic at %d: %+v vs %+v", i, tl[i], tl2[i])
		}
	}
}
