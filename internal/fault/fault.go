// Package fault is a deterministic, seed-driven fault-injection engine
// for the simulator: it turns a declarative schedule — scripted host
// crashes and link cuts, and/or stochastic MTBF/MTTR exponentials — into a
// sorted, well-formed event timeline the simulation schedules into its
// event heap before the run starts.
//
// Determinism contract: stochastic draws come from a *rand.Rand the caller
// derives from the run's master seed on a stream reserved for faults, so
// (a) two runs with equal seeds produce bit-identical timelines, and
// (b) enabling faults never perturbs the request streams — a zero-fault
// schedule leaves the simulation bit-identical to a build without this
// package.
//
// The paper's protocol (§1.1) targets performance, not availability;
// fault injection is an extension that exercises the redirector's
// replica-set bookkeeping, the placement protocol's reaction to lost
// capacity, and the §2.1 estimate-retirement machinery under churn.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"radar/internal/topology"
)

// Kind labels a timeline event.
type Kind uint8

// Event kinds. At equal times, events apply in Kind order: a host goes
// down before it comes up, and host events precede link events.
const (
	// HostDown crashes a hosting server: its replicas are purged from the
	// redirectors and it accepts no requests or CreateObj calls until the
	// matching HostUp.
	HostDown Kind = iota + 1
	// HostUp recovers a crashed server; replicas surviving on its disk
	// re-register with the redirectors.
	HostUp
	// LinkDown cuts a backbone link (both directions). Routing tables are
	// immutable (a frozen substrate shared across runs), so traffic whose
	// path crosses a down link is lost rather than rerouted — the model of
	// a partition, not of routing convergence.
	LinkDown
	// LinkUp restores a cut link.
	LinkUp
)

// String returns the kind's schedule name.
func (k Kind) String() string {
	switch k {
	case HostDown:
		return "host-down"
	case HostUp:
		return "host-up"
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one scheduled fault or repair.
type Event struct {
	// Kind selects what happens.
	Kind Kind
	// At is the virtual time the event fires.
	At time.Duration
	// Node is the affected host (host events only).
	Node topology.NodeID
	// A, B are the affected link's endpoints, normalized A < B (link
	// events only).
	A, B topology.NodeID
}

// Spec is a declarative fault schedule: explicit scripted events plus
// optional stochastic crash/recovery cycles. The zero value disables
// injection entirely.
type Spec struct {
	// Events are scripted faults. A HostDown (or LinkDown) without a
	// matching later up-event is permanent.
	Events []Event
	// HostMTBF, when positive, draws each host's time-between-failures
	// from an exponential with this mean; HostMTTR (must then also be
	// positive) is the mean time-to-repair.
	HostMTBF time.Duration
	HostMTTR time.Duration
	// LinkMTBF/LinkMTTR are the link-failure analogues, applied to every
	// backbone edge.
	LinkMTBF time.Duration
	LinkMTTR time.Duration

	// Message-fault terms arm the unreliable control plane: when any is
	// non-zero, every control RPC leg (CreateObj handshakes, redirector
	// notifications, drop arbitration, reconciliation digests) is routed
	// through the lossy message layer instead of resolving reliably.
	// Draws come from a PRNG stream reserved for control messages
	// (disjoint from both the workload streams and the fault-timeline
	// stream), so arming them never perturbs request randomness or crash
	// timelines, and an all-zero set of terms leaves the run bit-identical
	// to a build without the control-plane subsystem.
	//
	// MsgDrop is the probability in [0,1] that a control message leg is
	// lost in transit (schedule clause "drop:P").
	MsgDrop float64
	// MsgDup is the probability in [0,1] that a delivered leg is
	// duplicated — the copy is charged to the network and absorbed by the
	// receiver's message-ID dedupe (clause "dup:P").
	MsgDup float64
	// MsgDelay adds an extra delay drawn uniformly from [0, MsgDelay] to
	// every delivered leg, on top of propagation (clause "cdelay:D").
	// Delays past the per-attempt timeout surface as RPC timeouts.
	MsgDelay time.Duration
}

// Enabled reports whether the spec injects host or link faults. Message
// faults are reported separately by HasMessageFaults: they arm the
// control-plane subsystem, not the crash/cut timeline.
func (s *Spec) Enabled() bool {
	return len(s.Events) > 0 || s.HostMTBF > 0 || s.LinkMTBF > 0
}

// HasMessageFaults reports whether the spec arms the unreliable control
// plane. All-zero message terms (e.g. a bare "drop:0" clause) do not: a
// zero-probability schedule is byte-equal to no schedule.
func (s *Spec) HasMessageFaults() bool {
	return s.MsgDrop > 0 || s.MsgDup > 0 || s.MsgDelay > 0
}

// HasLinkFaults reports whether the spec can produce link events.
func (s *Spec) HasLinkFaults() bool {
	if s.LinkMTBF > 0 {
		return true
	}
	for _, e := range s.Events {
		if e.Kind == LinkDown || e.Kind == LinkUp {
			return true
		}
	}
	return false
}

// Validate checks the spec against a topology of numNodes nodes.
func (s *Spec) Validate(numNodes int) error {
	for i, e := range s.Events {
		if e.At < 0 {
			return fmt.Errorf("fault: event %d at negative time %v", i, e.At)
		}
		switch e.Kind {
		case HostDown, HostUp:
			if int(e.Node) < 0 || int(e.Node) >= numNodes {
				return fmt.Errorf("fault: event %d names unknown node %d", i, e.Node)
			}
		case LinkDown, LinkUp:
			if int(e.A) < 0 || int(e.A) >= numNodes || int(e.B) < 0 || int(e.B) >= numNodes {
				return fmt.Errorf("fault: event %d names unknown link %d-%d", i, e.A, e.B)
			}
			if e.A == e.B {
				return fmt.Errorf("fault: event %d links node %d to itself", i, e.A)
			}
		default:
			return fmt.Errorf("fault: event %d has unknown kind %d", i, e.Kind)
		}
	}
	if s.HostMTBF < 0 || s.HostMTTR < 0 || s.LinkMTBF < 0 || s.LinkMTTR < 0 {
		return fmt.Errorf("fault: MTBF/MTTR values must be non-negative")
	}
	// Sub-second failure cycles would swamp a simulation of minutes with
	// millions of fault events; treat them as configuration errors.
	if s.HostMTBF > 0 && s.HostMTBF < time.Second {
		return fmt.Errorf("fault: host MTBF %v must be at least 1s", s.HostMTBF)
	}
	if s.LinkMTBF > 0 && s.LinkMTBF < time.Second {
		return fmt.Errorf("fault: link MTBF %v must be at least 1s", s.LinkMTBF)
	}
	if s.HostMTBF > 0 && s.HostMTTR <= 0 {
		return fmt.Errorf("fault: host MTBF %v needs a positive MTTR", s.HostMTBF)
	}
	if s.LinkMTBF > 0 && s.LinkMTTR <= 0 {
		return fmt.Errorf("fault: link MTBF %v needs a positive MTTR", s.LinkMTBF)
	}
	if s.MsgDrop < 0 || s.MsgDrop > 1 {
		return fmt.Errorf("fault: message drop probability %v must be in [0,1]", s.MsgDrop)
	}
	if s.MsgDup < 0 || s.MsgDup > 1 {
		return fmt.Errorf("fault: message duplication probability %v must be in [0,1]", s.MsgDup)
	}
	if s.MsgDelay < 0 {
		return fmt.Errorf("fault: message delay %v must be non-negative", s.MsgDelay)
	}
	return nil
}

// Timeline expands the spec into a sorted, well-formed event sequence for
// a run of the given horizon over numNodes nodes and the given undirected
// edges (each with first endpoint < second; required whenever the spec has
// link faults — scripted link events naming non-edges are rejected).
// Stochastic cycles draw from rng in a fixed element order, so equal
// (spec, rng state) inputs yield identical timelines; rng may be nil when
// no MTBF is set.
//
// Well-formedness: per element (host or link), events strictly alternate
// down, up, down, ... starting from the up state; redundant scripted
// events (crashing a crashed host) are dropped. Down events may extend
// past the horizon (a permanent failure's recovery simply never fires);
// every stochastic down is still paired with its up so the timeline is
// self-describing.
func (s *Spec) Timeline(numNodes int, edges [][2]topology.NodeID, horizon time.Duration, rng *rand.Rand) ([]Event, error) {
	if err := s.Validate(numNodes); err != nil {
		return nil, err
	}
	// Scripted link events must name real backbone edges: a cut on a
	// non-adjacent pair would silently affect nothing (no path crosses
	// it), which is a schedule typo, not a fault model.
	var edgeSet map[[2]topology.NodeID]bool
	if s.HasLinkFaults() {
		edgeSet = make(map[[2]topology.NodeID]bool, len(edges))
		for _, edge := range edges {
			edgeSet[edge] = true
		}
	}
	var events []Event
	for _, e := range s.Events {
		if e.Kind == LinkDown || e.Kind == LinkUp {
			if e.A > e.B {
				e.A, e.B = e.B, e.A
			}
			if !edgeSet[[2]topology.NodeID{e.A, e.B}] {
				return nil, fmt.Errorf("fault: scripted event cuts %d-%d, which is not a backbone link", e.A, e.B)
			}
		}
		events = append(events, e)
	}
	if s.HostMTBF > 0 {
		if rng == nil {
			return nil, fmt.Errorf("fault: stochastic schedule needs an rng")
		}
		for n := 0; n < numNodes; n++ {
			events = appendCycles(events, horizon, s.HostMTBF, s.HostMTTR, rng,
				func(at time.Duration, k Kind) Event { return Event{Kind: k, At: at, Node: topology.NodeID(n)} },
				HostDown, HostUp)
		}
	}
	if s.LinkMTBF > 0 {
		if rng == nil {
			return nil, fmt.Errorf("fault: stochastic schedule needs an rng")
		}
		for _, edge := range edges {
			a, b := edge[0], edge[1]
			events = appendCycles(events, horizon, s.LinkMTBF, s.LinkMTTR, rng,
				func(at time.Duration, k Kind) Event { return Event{Kind: k, At: at, A: a, B: b} },
				LinkDown, LinkUp)
		}
	}
	sortEvents(events)
	return sanitize(events), nil
}

// Cycles draws one element's alternating down/up outage windows out to
// the horizon from MTBF/MTTR exponentials — the single-element form of a
// stochastic Spec timeline, used by the store package for per-backend
// fault injection. Events carry only Kind (HostDown/HostUp) and At, in
// nondecreasing time order with strict down/up alternation. Equal
// (mtbf, mttr, rng state) inputs yield identical windows; the same
// sub-second MTBF guard as Spec.Validate applies.
func Cycles(horizon, mtbf, mttr time.Duration, rng *rand.Rand) ([]Event, error) {
	if mtbf < time.Second {
		return nil, fmt.Errorf("fault: backend MTBF %v must be at least 1s", mtbf)
	}
	if mttr <= 0 {
		return nil, fmt.Errorf("fault: backend MTBF %v needs a positive MTTR", mtbf)
	}
	if rng == nil {
		return nil, fmt.Errorf("fault: stochastic cycles need an rng")
	}
	return appendCycles(nil, horizon, mtbf, mttr, rng,
		func(at time.Duration, k Kind) Event { return Event{Kind: k, At: at} },
		HostDown, HostUp), nil
}

// appendCycles draws alternating down/up cycles out to the horizon.
func appendCycles(events []Event, horizon, mtbf, mttr time.Duration, rng *rand.Rand,
	mk func(time.Duration, Kind) Event, down, up Kind) []Event {
	t := time.Duration(0)
	for {
		t += time.Duration(rng.ExpFloat64() * float64(mtbf))
		if t > horizon || t <= 0 {
			return events
		}
		repair := time.Duration(rng.ExpFloat64() * float64(mttr))
		if repair < time.Millisecond {
			repair = time.Millisecond
		}
		events = append(events, mk(t, down), mk(t+repair, up))
		t += repair
	}
}

// sortEvents orders the timeline by (At, Kind, element), a total and
// deterministic order.
func sortEvents(events []Event) {
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
}

// sanitize drops events that do not change their element's state (a down
// while down, an up while up), so the returned timeline strictly
// alternates per element.
func sanitize(events []Event) []Event {
	type elem struct {
		link bool
		n    topology.NodeID
		a, b topology.NodeID
	}
	downState := make(map[elem]bool)
	kept := events[:0]
	for _, e := range events {
		var el elem
		var wantDown bool
		switch e.Kind {
		case HostDown, HostUp:
			el = elem{n: e.Node}
			wantDown = e.Kind == HostDown
		default:
			el = elem{link: true, a: e.A, b: e.B}
			wantDown = e.Kind == LinkDown
		}
		if downState[el] == wantDown {
			continue
		}
		downState[el] = wantDown
		kept = append(kept, e)
	}
	return kept
}

// CheckTimeline verifies a timeline's invariants: sorted by time, valid
// kinds, normalized link endpoints, and strict per-element down/up
// alternation starting from up. Timeline's output always satisfies it;
// fuzzing and tests assert it.
func CheckTimeline(events []Event) error {
	type elem struct {
		link bool
		n    topology.NodeID
		a, b topology.NodeID
	}
	downState := make(map[elem]bool)
	for i, e := range events {
		if i > 0 && e.At < events[i-1].At {
			return fmt.Errorf("fault: timeline unsorted at %d: %v after %v", i, e.At, events[i-1].At)
		}
		var el elem
		var wantDown bool
		switch e.Kind {
		case HostDown, HostUp:
			el = elem{n: e.Node}
			wantDown = e.Kind == HostDown
		case LinkDown, LinkUp:
			if e.A >= e.B {
				return fmt.Errorf("fault: timeline event %d has unnormalized link %d-%d", i, e.A, e.B)
			}
			el = elem{link: true, a: e.A, b: e.B}
			wantDown = e.Kind == LinkDown
		default:
			return fmt.Errorf("fault: timeline event %d has unknown kind %d", i, e.Kind)
		}
		if downState[el] == wantDown {
			return fmt.Errorf("fault: timeline event %d (%s) does not change element state", i, e.Kind)
		}
		downState[el] = wantDown
	}
	return nil
}
