package fault

import "radar/internal/topology"

// TopoEdges lists a backbone's undirected edges with first endpoint <
// second, in deterministic node order — the element order stochastic link
// cycles draw in, and the edge universe Spec.Timeline validates scripted
// link events against. The simulator and the live chaos controller both
// derive their edge lists here so a schedule parses to the same timeline
// in either world.
func TopoEdges(t *topology.Topology) [][2]topology.NodeID {
	var edges [][2]topology.NodeID
	n := t.NumNodes()
	for i := 0; i < n; i++ {
		a := topology.NodeID(i)
		for _, b := range t.Neighbors(a) {
			if b > a {
				edges = append(edges, [2]topology.NodeID{a, b})
			}
		}
	}
	return edges
}
