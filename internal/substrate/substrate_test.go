package substrate

import (
	"sync"
	"testing"

	"radar/internal/topology"
)

// TestSharedDeduplicatesEqualTopologies: structurally equal topologies —
// even when built as distinct values — must share one substrate, and
// structurally different ones must not.
func TestSharedDeduplicatesEqualTopologies(t *testing.T) {
	a := Shared(topology.Ring(8))
	b := Shared(topology.Ring(8))
	if a != b {
		t.Fatal("two structurally equal topologies produced distinct substrates")
	}
	if a.Topo == nil || a.Routes == nil {
		t.Fatal("cached substrate is missing its topology or routing table")
	}
	if c := Shared(topology.Line(5)); c == a {
		t.Fatal("different topologies share a substrate")
	}
}

// TestUUNETIsSharedCacheEntry: the UUNET fast path must resolve to the
// same substrate as the generic cache lookup.
func TestUUNETIsSharedCacheEntry(t *testing.T) {
	if UUNET() != Shared(topology.UUNET()) {
		t.Fatal("UUNET() and Shared(topology.UUNET()) disagree")
	}
	if UUNET() != UUNET() {
		t.Fatal("UUNET() is not stable across calls")
	}
}

// TestCacheSizeCountsDistinctStructures: a novel structure grows the
// cache by exactly one, and repeat lookups do not grow it.
func TestCacheSizeCountsDistinctStructures(t *testing.T) {
	topo := topology.Ring(31) // size unused by other tests in this package
	before := CacheSize()
	Shared(topo)
	if got := CacheSize(); got != before+1 {
		t.Fatalf("cache size %d after first lookup, want %d", got, before+1)
	}
	Shared(topology.Ring(31))
	if got := CacheSize(); got != before+1 {
		t.Fatalf("cache size %d after repeat lookup, want %d", got, before+1)
	}
}

// TestFingerprintIdentity: equal structures share a fingerprint;
// different structures get different ones (FNV-64a over the canonical
// key; a collision between these tiny fixed inputs would be a bug).
func TestFingerprintIdentity(t *testing.T) {
	a := Shared(topology.Ring(8))
	b := Shared(topology.Ring(8))
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("equal topologies have different fingerprints")
	}
	if c := Shared(topology.Line(5)); c.Fingerprint() == a.Fingerprint() {
		t.Fatal("different topologies share a fingerprint")
	}
}

// TestConcurrentSharedSingleFlight: many goroutines racing on the same
// new structure must all receive the identical substrate (run with -race
// to also check the cache's internal synchronization).
func TestConcurrentSharedSingleFlight(t *testing.T) {
	const goroutines = 16
	results := make([]*Substrate, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each goroutine builds its own topology value so the cache
			// must deduplicate by structure, not pointer.
			results[i] = Shared(topology.Ring(17))
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if results[i] != results[0] {
			t.Fatalf("goroutine %d received a different substrate", i)
		}
	}
}
