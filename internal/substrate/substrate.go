// Package substrate caches the expensive immutable inputs of a simulation
// run — the backbone topology and its all-pairs routing table — so that
// repeated and concurrent runs over the same topology share one copy
// instead of rebuilding N.
//
// An experiment suite (internal/experiments) executes dozens of runs, all
// on the same backbone; before this cache each run paid a full
// topology.UUNET() + routing.New() build and kept its own ~O(V²·diameter)
// path arena live for the run's duration. The substrate layer amortizes
// that: runs are keyed by a canonical fingerprint of the topology's
// structure (node names, regions and adjacency), and all workers sharing a
// fingerprint receive the same frozen *routing.Table and *Topology.
//
// Sharing is sound because both types are immutable once constructed:
// Topology has no mutating methods, and routing.Table documents its freeze
// point (see the Table godoc and the -race hammer test in
// internal/routing). The cache itself is concurrency-safe and
// single-flight — when many workers ask for the same fingerprint at once,
// exactly one builds and the rest block until it is done.
package substrate

import (
	"fmt"
	"hash/fnv"
	"sync"

	"radar/internal/routing"
	"radar/internal/topology"
)

// Substrate bundles the shared immutable inputs of a run: one topology and
// the routing table computed from it. Everything reachable from a
// Substrate is read-only; it may be used from any number of goroutines.
type Substrate struct {
	Topo   *topology.Topology
	Routes *routing.Table
	key    string
}

// Fingerprint returns a 64-bit digest of the canonical structure key,
// useful for logging and artifacts. Cache identity is decided by the full
// canonical key, not this digest, so fingerprint collisions cannot alias
// two different topologies.
func (s *Substrate) Fingerprint() uint64 {
	h := fnv.New64a()
	h.Write([]byte(s.key))
	return h.Sum64()
}

// canonicalKey serializes the structure a routing table depends on: node
// count, then each node's name and region in ID order, then every
// adjacency list. Two topologies with equal keys produce bit-identical
// routing tables.
func canonicalKey(topo *topology.Topology) string {
	var b []byte
	b = fmt.Appendf(b, "v1;n=%d;", topo.NumNodes())
	for _, node := range topo.Nodes() {
		b = fmt.Appendf(b, "%q/%d;", node.Name, int(node.Region))
	}
	for id := 0; id < topo.NumNodes(); id++ {
		b = fmt.Appendf(b, "a%d:", id)
		for _, w := range topo.Neighbors(topology.NodeID(id)) {
			b = fmt.Appendf(b, "%d,", int(w))
		}
		b = append(b, ';')
	}
	return string(b)
}

// entry is one cache slot; once guards the single-flight build.
type entry struct {
	once sync.Once
	sub  *Substrate
}

var (
	mu    sync.Mutex
	cache = map[string]*entry{}

	uunetOnce sync.Once
	uunet     *Substrate
)

// Shared returns the cached substrate for topo, building the routing table
// exactly once per distinct topology structure. The returned
// Substrate.Topo is the first structurally-equal topology the cache saw —
// it may not be the same pointer as the argument, but it is
// indistinguishable from it (same IDs, names, regions and adjacency).
func Shared(topo *topology.Topology) *Substrate {
	key := canonicalKey(topo)
	mu.Lock()
	e, ok := cache[key]
	if !ok {
		e = &entry{}
		cache[key] = e
	}
	mu.Unlock()
	e.once.Do(func() {
		e.sub = &Substrate{Topo: topo, Routes: routing.New(topo), key: key}
	})
	return e.sub
}

// UUNET returns the substrate of the canonical 53-node backbone, built on
// first use. This is the fast path for default-configured runs: it skips
// both the topology reconstruction and the fingerprint computation after
// the first call.
func UUNET() *Substrate {
	uunetOnce.Do(func() {
		uunet = Shared(topology.UUNET())
	})
	return uunet
}

// CacheSize reports the number of distinct topology structures currently
// cached. The cache is never evicted — topologies are tiny (a few hundred
// KB of routing state each) and experiment processes use a handful at most
// — but tests use this to observe hit/miss behavior.
func CacheSize() int {
	mu.Lock()
	defer mu.Unlock()
	return len(cache)
}
