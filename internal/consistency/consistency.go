// Package consistency implements the replica consistency scheme of paper
// §5: objects fall into three categories — (1) objects changed only by
// provider updates, kept consistent with a primary copy and asynchronous
// propagation (immediate or batched); (2) objects whose per-access updates
// commute (access statistics), replicable given statistics merging; and
// (3) objects with non-commuting per-access updates, which in general can
// only be migrated, or replicated up to a small cap when the application
// tolerates inconsistency.
//
// The package supplies the replication gate the placement protocol
// consults (CanReplicate), primary-copy tracking across migrations and
// drops, and an update-propagation planner that the simulator charges to
// the network.
package consistency

import (
	"fmt"
	"time"

	"radar/internal/object"
	"radar/internal/topology"
	"radar/internal/workload"
)

// Category classifies an object per §5.
type Category int

// Object categories.
const (
	// Static objects change only via provider updates (§5 category 1).
	// Studies cited by the paper put 80-95% of Web accesses here.
	Static Category = iota + 1
	// Commuting objects collect commuting per-access updates (category 2).
	Commuting
	// NonCommuting objects have non-commuting per-access updates
	// (category 3): migration only, or a capped number of replicas.
	NonCommuting
)

// String returns the category's report name.
func (c Category) String() string {
	switch c {
	case Static:
		return "static"
	case Commuting:
		return "commuting"
	case NonCommuting:
		return "non-commuting"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Mix is the fraction of objects in each category. Fractions must sum
// to 1.
type Mix struct {
	Static       float64
	Commuting    float64
	NonCommuting float64
}

// DefaultMix reflects the studies the paper cites (80-95% of accesses to
// category-1 objects): 85% static, 10% commuting, 5% non-commuting.
func DefaultMix() Mix {
	return Mix{Static: 0.85, Commuting: 0.10, NonCommuting: 0.05}
}

// Validate reports whether the mix is a distribution.
func (m Mix) Validate() error {
	if m.Static < 0 || m.Commuting < 0 || m.NonCommuting < 0 {
		return fmt.Errorf("consistency: negative fraction in %+v", m)
	}
	if total := m.Static + m.Commuting + m.NonCommuting; total < 0.999 || total > 1.001 {
		return fmt.Errorf("consistency: fractions sum to %v, want 1", total)
	}
	return nil
}

// Manager tracks per-object categories and primary copies and gates
// replication for category-3 objects.
type Manager struct {
	categories []Category
	primary    []topology.NodeID
	// maxNonCommutingReplicas caps category-3 replica sets; 1 means
	// migrate-only (the general case in §5).
	maxNonCommutingReplicas int

	pendingUpdates map[object.ID]int
}

// New assigns categories to u's objects deterministically from seed
// following mix, seeds primaries with the round-robin home nodes over
// numNodes, and caps category-3 replica sets at maxNonCommuting (>= 1).
func New(u object.Universe, mix Mix, numNodes int, maxNonCommuting int, seed int64) (*Manager, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	if numNodes <= 0 {
		return nil, fmt.Errorf("consistency: numNodes %d must be positive", numNodes)
	}
	if maxNonCommuting < 1 {
		return nil, fmt.Errorf("consistency: category-3 replica cap %d must be >= 1", maxNonCommuting)
	}
	m := &Manager{
		categories:              make([]Category, u.Count),
		primary:                 make([]topology.NodeID, u.Count),
		maxNonCommutingReplicas: maxNonCommuting,
		pendingUpdates:          make(map[object.ID]int),
	}
	rng := workload.Stream(seed, 0xC0DE)
	for i := 0; i < u.Count; i++ {
		roll := rng.Float64()
		switch {
		case roll < mix.Static:
			m.categories[i] = Static
		case roll < mix.Static+mix.Commuting:
			m.categories[i] = Commuting
		default:
			m.categories[i] = NonCommuting
		}
		m.primary[i] = u.HomeNode(object.ID(i), numNodes)
	}
	return m, nil
}

// Category returns the object's category.
func (m *Manager) Category(id object.ID) Category { return m.categories[id] }

// Primary returns the node holding the object's primary copy.
func (m *Manager) Primary(id object.ID) topology.NodeID { return m.primary[id] }

// CanReplicate is the placement gate: category 1 and 2 objects replicate
// freely; category 3 objects only while under the replica cap. The
// signature matches protocol.Env.CanReplicate.
func (m *Manager) CanReplicate(id object.ID, currentReplicas int) bool {
	if m.categories[id] != NonCommuting {
		return true
	}
	return currentReplicas < m.maxNonCommutingReplicas
}

// OnMigrate tracks the primary across migrations: if the primary's host
// sheds its copy, the primary moves with it.
func (m *Manager) OnMigrate(id object.ID, from, to topology.NodeID) {
	if m.primary[id] == from {
		m.primary[id] = to
	}
}

// OnDrop re-homes the primary when its host drops the replica; fallback
// names the surviving replica set's representative.
func (m *Manager) OnDrop(id object.ID, host topology.NodeID, survivor topology.NodeID) {
	if m.primary[id] == host {
		m.primary[id] = survivor
	}
}

// CountByCategory returns how many objects are in each category.
func (m *Manager) CountByCategory() map[Category]int {
	out := make(map[Category]int, 3)
	for _, c := range m.categories {
		out[c]++
	}
	return out
}

// PropagationMode selects how provider updates reach replicas.
type PropagationMode int

// Propagation modes (§5: "updates can propagate from the primary
// asynchronously ... either immediately or in batches using epidemic
// mechanisms").
const (
	Immediate PropagationMode = iota + 1
	Batched
)

// Update records a provider write against an object's primary.
func (m *Manager) Update(id object.ID) {
	m.pendingUpdates[id]++
}

// Pending returns the number of unpropagated updates for id.
func (m *Manager) Pending(id object.ID) int { return m.pendingUpdates[id] }

// Propagation is one primary-to-replica transfer the simulator must
// charge to the network.
type Propagation struct {
	ID   object.ID
	From topology.NodeID
	To   topology.NodeID
	// Updates is the number of provider writes carried (batching
	// amortizes transfers over many updates).
	Updates int
}

// Flush plans propagation of pending updates for id to the given replica
// set and clears the pending counter. In Immediate mode callers flush
// after every update; in Batched mode on a timer. Replicas equal to the
// primary are skipped.
func (m *Manager) Flush(id object.ID, replicas []topology.NodeID) []Propagation {
	n := m.pendingUpdates[id]
	if n == 0 {
		return nil
	}
	delete(m.pendingUpdates, id)
	var out []Propagation
	for _, r := range replicas {
		if r == m.primary[id] {
			continue
		}
		out = append(out, Propagation{ID: id, From: m.primary[id], To: r, Updates: n})
	}
	return out
}

// StalenessBound returns the maximum time a replica may lag the primary
// under the given mode and batch interval: zero for immediate
// propagation, the batch interval for batched.
func StalenessBound(mode PropagationMode, batchInterval time.Duration) time.Duration {
	if mode == Immediate {
		return 0
	}
	return batchInterval
}
