package consistency

import (
	"testing"
	"time"

	"radar/internal/object"
	"radar/internal/topology"
)

var u = object.Universe{Count: 2000, SizeBytes: 12 << 10}

func newManager(t *testing.T) *Manager {
	t.Helper()
	m, err := New(u, DefaultMix(), 53, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCategoryMix(t *testing.T) {
	m := newManager(t)
	counts := m.CountByCategory()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != u.Count {
		t.Fatalf("categorized %d objects, want %d", total, u.Count)
	}
	frac := func(c Category) float64 { return float64(counts[c]) / float64(u.Count) }
	if f := frac(Static); f < 0.80 || f > 0.90 {
		t.Errorf("static fraction = %.3f, want ~0.85", f)
	}
	if f := frac(Commuting); f < 0.06 || f > 0.14 {
		t.Errorf("commuting fraction = %.3f, want ~0.10", f)
	}
	if f := frac(NonCommuting); f < 0.02 || f > 0.08 {
		t.Errorf("non-commuting fraction = %.3f, want ~0.05", f)
	}
}

func TestDeterministicAssignment(t *testing.T) {
	a, err := New(u, DefaultMix(), 53, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(u, DefaultMix(), 53, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < u.Count; i++ {
		if a.Category(object.ID(i)) != b.Category(object.ID(i)) {
			t.Fatalf("object %d category differs across same-seed constructions", i)
		}
	}
}

func TestCanReplicateGate(t *testing.T) {
	m := newManager(t)
	var static, noncomm object.ID = -1, -1
	for i := 0; i < u.Count; i++ {
		switch m.Category(object.ID(i)) {
		case Static:
			if static < 0 {
				static = object.ID(i)
			}
		case NonCommuting:
			if noncomm < 0 {
				noncomm = object.ID(i)
			}
		}
	}
	if static < 0 || noncomm < 0 {
		t.Fatal("fixture lacks both categories")
	}
	if !m.CanReplicate(static, 50) {
		t.Error("static object replication blocked")
	}
	if m.CanReplicate(noncomm, 1) {
		t.Error("category-3 object replicated past cap 1 (migrate-only)")
	}
	// With a cap of 3, up to 2 existing replicas may grow to 3.
	m3, err := New(u, DefaultMix(), 53, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !m3.CanReplicate(noncomm, 2) {
		t.Error("category-3 replication below cap blocked")
	}
	if m3.CanReplicate(noncomm, 3) {
		t.Error("category-3 replication at cap allowed")
	}
}

func TestPrimaryTracking(t *testing.T) {
	m := newManager(t)
	id := object.ID(57)
	home := u.HomeNode(id, 53)
	if got := m.Primary(id); got != home {
		t.Fatalf("initial primary = %v, want home %v", got, home)
	}
	m.OnMigrate(id, home, 7)
	if got := m.Primary(id); got != 7 {
		t.Fatalf("primary after migration = %v, want 7", got)
	}
	// Migration of a non-primary replica must not move the primary.
	m.OnMigrate(id, 30, 31)
	if got := m.Primary(id); got != 7 {
		t.Fatalf("primary moved with non-primary migration: %v", got)
	}
	m.OnDrop(id, 7, 12)
	if got := m.Primary(id); got != 12 {
		t.Fatalf("primary after drop = %v, want survivor 12", got)
	}
	m.OnDrop(id, 40, 41) // non-primary drop: no effect
	if got := m.Primary(id); got != 12 {
		t.Fatalf("primary moved on unrelated drop: %v", got)
	}
}

func TestUpdateFlush(t *testing.T) {
	m := newManager(t)
	id := object.ID(3)
	primary := m.Primary(id)
	if got := m.Flush(id, []topology.NodeID{primary, 9}); got != nil {
		t.Fatalf("flush with no updates = %v, want nil", got)
	}
	m.Update(id)
	m.Update(id)
	if got := m.Pending(id); got != 2 {
		t.Fatalf("pending = %d, want 2", got)
	}
	props := m.Flush(id, []topology.NodeID{primary, 9, 11})
	if len(props) != 2 {
		t.Fatalf("propagations = %d, want 2 (primary skipped)", len(props))
	}
	for _, p := range props {
		if p.From != primary || p.Updates != 2 {
			t.Errorf("propagation %+v, want from primary with 2 updates", p)
		}
		if p.To == primary {
			t.Error("propagation targeted the primary")
		}
	}
	if got := m.Pending(id); got != 0 {
		t.Fatalf("pending after flush = %d, want 0", got)
	}
}

func TestStalenessBound(t *testing.T) {
	if got := StalenessBound(Immediate, time.Minute); got != 0 {
		t.Errorf("immediate staleness = %v, want 0", got)
	}
	if got := StalenessBound(Batched, time.Minute); got != time.Minute {
		t.Errorf("batched staleness = %v, want 1m", got)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(object.Universe{}, DefaultMix(), 53, 1, 1); err == nil {
		t.Error("empty universe accepted")
	}
	if _, err := New(u, Mix{Static: 0.5, Commuting: 0.2, NonCommuting: 0.2}, 53, 1, 1); err == nil {
		t.Error("non-normalized mix accepted")
	}
	if _, err := New(u, Mix{Static: -0.5, Commuting: 1.3, NonCommuting: 0.2}, 53, 1, 1); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := New(u, DefaultMix(), 0, 1, 1); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := New(u, DefaultMix(), 53, 0, 1); err == nil {
		t.Error("zero replica cap accepted")
	}
	if err := DefaultMix().Validate(); err != nil {
		t.Errorf("default mix invalid: %v", err)
	}
}
