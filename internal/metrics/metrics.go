// Package metrics collects everything the paper's evaluation reports:
// time-bucketed backbone bandwidth (payload and protocol overhead in
// byte×hops, Figures 6, 7 and 9), average response latency (Figures 6 and
// 9), per-interval maximum server load (Figure 8a), a tracked host's
// actual load against its lower/upper estimates (Figure 8b), the replica
// census and the adjustment-time analysis (Table 2), and protocol event
// counters.
package metrics

import (
	"fmt"
	"time"

	"radar/internal/object"
	"radar/internal/protocol"
	"radar/internal/simnet"
	"radar/internal/topology"
)

// Point is one sample of a time series.
type Point struct {
	T time.Duration
	V float64
}

// Counters aggregates protocol activity over a run.
type Counters struct {
	GeoMigrations    int64
	GeoReplications  int64
	LoadMigrations   int64
	LoadReplications int64
	Drops            int64
	Refusals         int64
	Requests         int64
	// RepairReplications counts replications made to restore objects to the
	// replica floor after failures (the availability extension).
	RepairReplications int64
	// FailedRequests counts requests lost to faults: serviced-host crash,
	// severed forwarding path, or no reachable replica.
	FailedRequests int64
	// DeferredMoves counts placement moves deferred to a later placement
	// interval after the control plane lost their handshake (each
	// re-deferral counts again; the unreliable-control-plane extension).
	DeferredMoves int64
}

// HostLoadSample is one Figure 8b sample: a host's measured load
// sandwiched by its estimates.
type HostLoadSample struct {
	T      time.Duration
	Actual float64
	Lower  float64
	Upper  float64
}

// Collector accumulates run statistics. It implements simnet.Recorder and
// protocol.Observer. The zero value is not usable; call New.
//
// Bucketed series live in parallel slices (histograms stored by value in
// one contiguous block); Reserve preallocates them for a known horizon so
// the steady-state recording path never grows a slice, and consecutive
// samples landing in the same bucket — the overwhelmingly common case —
// resolve through a cached bucket index without a division.
type Collector struct {
	bucket time.Duration

	payloadBH  []float64 // byte-hops per bucket
	overheadBH []float64
	latencySum []float64 // seconds
	latencyCnt []int64
	latencyH   []latencyHist
	failedCnt  []int64 // fault-failed requests per bucket

	// Cached bucket of the most recent sample: now in [curStart,
	// curStart+bucket) resolves to curIdx without division.
	curIdx   int
	curStart time.Duration

	maxLoad   []Point
	hostLoads []HostLoadSample
	replicas  []Point // average replicas per object over time

	// Availability accounting (fault injection).
	outages           int64   // completed zero-replica outage windows
	unavailObjSecs    float64 // total object-seconds spent with zero replicas
	belowFloor        []Point // objects below the replica floor over time
	belowFloorObjSecs float64 // object-seconds spent below the replica floor

	counters Counters
}

// New builds a collector with the given series bucket width.
func New(bucket time.Duration) (*Collector, error) {
	if bucket <= 0 {
		return nil, fmt.Errorf("metrics: bucket %v must be positive", bucket)
	}
	return &Collector{bucket: bucket, curIdx: -1}, nil
}

// Bucket returns the series bucket width.
func (c *Collector) Bucket() time.Duration { return c.bucket }

// Reserve preallocates bucketed storage to cover horizon (plus slack for
// deliveries completing just past it), so recording never reallocates
// mid-run. Calling it is optional and purely a performance hint.
func (c *Collector) Reserve(horizon time.Duration) {
	n := int(horizon/c.bucket) + 2
	if n <= cap(c.payloadBH) {
		return
	}
	c.payloadBH = append(make([]float64, 0, n), c.payloadBH...)
	c.overheadBH = append(make([]float64, 0, n), c.overheadBH...)
	c.latencySum = append(make([]float64, 0, n), c.latencySum...)
	c.latencyCnt = append(make([]int64, 0, n), c.latencyCnt...)
	c.latencyH = append(make([]latencyHist, 0, n), c.latencyH...)
	c.failedCnt = append(make([]int64, 0, n), c.failedCnt...)
}

func (c *Collector) idx(now time.Duration) int {
	if c.curIdx >= 0 {
		if off := now - c.curStart; off >= 0 && off < c.bucket {
			return c.curIdx
		}
	}
	i := int(now / c.bucket)
	for len(c.payloadBH) <= i {
		c.payloadBH = append(c.payloadBH, 0)
		c.overheadBH = append(c.overheadBH, 0)
		c.latencySum = append(c.latencySum, 0)
		c.latencyCnt = append(c.latencyCnt, 0)
		c.latencyH = append(c.latencyH, latencyHist{})
		c.failedCnt = append(c.failedCnt, 0)
	}
	c.curIdx = i
	c.curStart = time.Duration(i) * c.bucket
	return i
}

// RecordTransfer implements simnet.Recorder.
func (c *Collector) RecordTransfer(now time.Duration, class simnet.Class, bytes int64, hops int) {
	i := c.idx(now)
	bh := float64(bytes) * float64(hops)
	if class == simnet.Payload {
		c.payloadBH[i] += bh
	} else {
		c.overheadBH[i] += bh
	}
}

// RecordLatency records one completed request's end-to-end latency at its
// delivery time.
func (c *Collector) RecordLatency(deliveredAt, latency time.Duration) {
	i := c.idx(deliveredAt)
	c.latencySum[i] += latency.Seconds()
	c.latencyCnt[i]++
	c.latencyH[i].observe(latency)
	c.counters.Requests++
}

// RecordFailedRequest records a request lost to a fault (crashed host,
// severed path, or no reachable replica) at the time it failed.
func (c *Collector) RecordFailedRequest(now time.Duration) {
	c.failedCnt[c.idx(now)]++
	c.counters.FailedRequests++
}

// RecordOutageWindow records one completed zero-replica outage window of a
// single object: the object had no live registered replica from start until
// end. Object-seconds of unavailability accumulate.
func (c *Collector) RecordOutageWindow(start, end time.Duration) {
	if end < start {
		return
	}
	c.outages++
	c.unavailObjSecs += (end - start).Seconds()
}

// RecordBelowFloor records a census of objects whose replica count is below
// the configured floor: count objects at time now, contributing objSecs
// object-seconds (count × census interval) since the previous census.
func (c *Collector) RecordBelowFloor(now time.Duration, count int, objSecs float64) {
	c.belowFloor = append(c.belowFloor, Point{T: now, V: float64(count)})
	c.belowFloorObjSecs += objSecs
}

// RecordMaxLoad records the system-wide maximum measured server load at a
// measurement boundary (Figure 8a).
func (c *Collector) RecordMaxLoad(now time.Duration, load float64) {
	c.maxLoad = append(c.maxLoad, Point{T: now, V: load})
}

// RecordHostLoad records a tracked host's actual load and estimate bounds
// (Figure 8b).
func (c *Collector) RecordHostLoad(now time.Duration, actual, lower, upper float64) {
	c.hostLoads = append(c.hostLoads, HostLoadSample{T: now, Actual: actual, Lower: lower, Upper: upper})
}

// RecordReplicaCensus records the average number of replicas per object.
func (c *Collector) RecordReplicaCensus(now time.Duration, avg float64) {
	c.replicas = append(c.replicas, Point{T: now, V: avg})
}

// OnMigrate implements protocol.Observer.
func (c *Collector) OnMigrate(_ time.Duration, _ object.ID, _, _ topology.NodeID, kind protocol.MoveKind) {
	if kind == protocol.GeoMove {
		c.counters.GeoMigrations++
	} else {
		c.counters.LoadMigrations++
	}
}

// OnReplicate implements protocol.Observer.
func (c *Collector) OnReplicate(_ time.Duration, _ object.ID, _, _ topology.NodeID, kind protocol.MoveKind) {
	switch kind {
	case protocol.GeoMove:
		c.counters.GeoReplications++
	case protocol.RepairMove:
		c.counters.RepairReplications++
	default:
		c.counters.LoadReplications++
	}
}

// OnDrop implements protocol.Observer.
func (c *Collector) OnDrop(_ time.Duration, _ object.ID, _ topology.NodeID) {
	c.counters.Drops++
}

// OnRefuse implements protocol.Observer.
func (c *Collector) OnRefuse(_ time.Duration, _ object.ID, _, _ topology.NodeID, _ protocol.Method) {
	c.counters.Refusals++
}

// OnDefer implements protocol.DeferralObserver.
func (c *Collector) OnDefer(_ time.Duration, _ object.ID, _, _ topology.NodeID, _ protocol.Method) {
	c.counters.DeferredMoves++
}

// Counters returns the accumulated protocol counters.
func (c *Collector) Counters() Counters { return c.counters }

// ensureBuckets grows the bucketed slices to cover at least n buckets.
func (c *Collector) ensureBuckets(n int) {
	for len(c.payloadBH) < n {
		c.payloadBH = append(c.payloadBH, 0)
		c.overheadBH = append(c.overheadBH, 0)
		c.latencySum = append(c.latencySum, 0)
		c.latencyCnt = append(c.latencyCnt, 0)
		c.latencyH = append(c.latencyH, latencyHist{})
		c.failedCnt = append(c.failedCnt, 0)
	}
}

// MergeFrom folds another collector's bucketed accumulators, availability
// sums and counters into c. Both collectors must use the same bucket width.
//
// It exists for sharded simulations, whose shard-local collectors only ever
// accumulate order-independent quantities: integer counts, and byte×hop
// sums whose float64 adds are exact (byte×hop products are integers far
// below 2^53), so bucket-wise addition reproduces the serial totals bit for
// bit. Order-sensitive float sums (latency) are replayed into the main
// collector in canonical order instead of being merged here, and point-in-
// time series (max load, host load, replica census, below-floor) are always
// recorded on the main collector directly — MergeFrom does not merge series
// samples.
func (c *Collector) MergeFrom(o *Collector) {
	if o.bucket != c.bucket {
		panic(fmt.Sprintf("metrics: merging collectors with different buckets %v and %v", c.bucket, o.bucket))
	}
	c.ensureBuckets(len(o.payloadBH))
	for i := range o.payloadBH {
		c.payloadBH[i] += o.payloadBH[i]
		c.overheadBH[i] += o.overheadBH[i]
		c.latencySum[i] += o.latencySum[i]
		c.latencyCnt[i] += o.latencyCnt[i]
		c.latencyH[i].merge(&o.latencyH[i])
		c.failedCnt[i] += o.failedCnt[i]
	}
	c.outages += o.outages
	c.unavailObjSecs += o.unavailObjSecs
	c.belowFloorObjSecs += o.belowFloorObjSecs
	c.counters.GeoMigrations += o.counters.GeoMigrations
	c.counters.GeoReplications += o.counters.GeoReplications
	c.counters.LoadMigrations += o.counters.LoadMigrations
	c.counters.LoadReplications += o.counters.LoadReplications
	c.counters.Drops += o.counters.Drops
	c.counters.Refusals += o.counters.Refusals
	c.counters.Requests += o.counters.Requests
	c.counters.RepairReplications += o.counters.RepairReplications
	c.counters.FailedRequests += o.counters.FailedRequests
	c.counters.DeferredMoves += o.counters.DeferredMoves
}

// BandwidthSeries returns total (payload+overhead) backbone bandwidth per
// bucket, in byte×hops per second.
func (c *Collector) BandwidthSeries() []Point {
	out := make([]Point, len(c.payloadBH))
	secs := c.bucket.Seconds()
	for i := range out {
		out[i] = Point{
			T: time.Duration(i) * c.bucket,
			V: (c.payloadBH[i] + c.overheadBH[i]) / secs,
		}
	}
	return out
}

// OverheadPercentSeries returns protocol overhead as a percentage of total
// traffic per bucket (Figure 7).
func (c *Collector) OverheadPercentSeries() []Point {
	out := make([]Point, len(c.payloadBH))
	for i := range out {
		total := c.payloadBH[i] + c.overheadBH[i]
		v := 0.0
		if total > 0 {
			v = 100 * c.overheadBH[i] / total
		}
		out[i] = Point{T: time.Duration(i) * c.bucket, V: v}
	}
	return out
}

// LatencySeries returns average response latency (seconds) per bucket.
func (c *Collector) LatencySeries() []Point {
	out := make([]Point, len(c.latencySum))
	for i := range out {
		v := 0.0
		if c.latencyCnt[i] > 0 {
			v = c.latencySum[i] / float64(c.latencyCnt[i])
		}
		out[i] = Point{T: time.Duration(i) * c.bucket, V: v}
	}
	return out
}

// LatencyQuantileSeries returns a per-bucket latency quantile estimate
// (seconds). q is in [0,1]; e.g. 0.99 for p99. Estimates come from a
// log-spaced histogram with ~7% relative resolution and are rounded up.
func (c *Collector) LatencyQuantileSeries(q float64) []Point {
	out := make([]Point, len(c.latencyH))
	for i := range out {
		out[i] = Point{T: time.Duration(i) * c.bucket, V: c.latencyH[i].quantile(q)}
	}
	return out
}

// MaxLoadSeries returns the Figure 8a series.
func (c *Collector) MaxLoadSeries() []Point {
	out := make([]Point, len(c.maxLoad))
	copy(out, c.maxLoad)
	return out
}

// HostLoadSeries returns the Figure 8b samples.
func (c *Collector) HostLoadSeries() []HostLoadSample {
	out := make([]HostLoadSample, len(c.hostLoads))
	copy(out, c.hostLoads)
	return out
}

// FailedRequestSeries returns fault-failed requests per bucket.
func (c *Collector) FailedRequestSeries() []Point {
	out := make([]Point, len(c.failedCnt))
	for i := range out {
		out[i] = Point{T: time.Duration(i) * c.bucket, V: float64(c.failedCnt[i])}
	}
	return out
}

// Outages returns the number of completed zero-replica outage windows.
func (c *Collector) Outages() int64 { return c.outages }

// UnavailableObjectSeconds returns total object-seconds spent with zero
// live replicas.
func (c *Collector) UnavailableObjectSeconds() float64 { return c.unavailObjSecs }

// BelowFloorSeries returns the objects-below-replica-floor census series.
func (c *Collector) BelowFloorSeries() []Point {
	out := make([]Point, len(c.belowFloor))
	copy(out, c.belowFloor)
	return out
}

// BelowFloorObjectSeconds returns total object-seconds spent below the
// replica floor.
func (c *Collector) BelowFloorObjectSeconds() float64 { return c.belowFloorObjSecs }

// ReplicaSeries returns the average-replicas-per-object series.
func (c *Collector) ReplicaSeries() []Point {
	out := make([]Point, len(c.replicas))
	copy(out, c.replicas)
	return out
}

// TotalByteHops returns cumulative (payload, overhead) byte×hops.
func (c *Collector) TotalByteHops() (payload, overhead float64) {
	for i := range c.payloadBH {
		payload += c.payloadBH[i]
		overhead += c.overheadBH[i]
	}
	return payload, overhead
}

// OverheadPercent returns cumulative overhead as a percentage of total
// traffic.
func (c *Collector) OverheadPercent() float64 {
	p, o := c.TotalByteHops()
	if p+o == 0 {
		return 0
	}
	return 100 * o / (p + o)
}
