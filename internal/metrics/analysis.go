package metrics

import (
	"time"
)

// SeriesStats summarizes a time series for reporting.
type SeriesStats struct {
	// Initial is the mean over the head window (the pre-adjustment level;
	// with the paper's round-robin initial placement this is the static
	// no-replication baseline level).
	Initial float64
	// Equilibrium is the mean over the tail window.
	Equilibrium float64
	// ReductionPercent is 100·(Initial-Equilibrium)/Initial.
	ReductionPercent float64
}

// mean returns the average of the points' values; 0 for an empty slice.
func mean(points []Point) float64 {
	if len(points) == 0 {
		return 0
	}
	total := 0.0
	for _, p := range points {
		total += p.V
	}
	return total / float64(len(points))
}

// headTail slices the first headN points and the final quarter of the
// series (at least one point each).
func headTail(points []Point, headN int) (head, tail []Point) {
	if len(points) == 0 {
		return nil, nil
	}
	if headN < 1 {
		headN = 1
	}
	if headN > len(points) {
		headN = len(points)
	}
	tailN := len(points) / 4
	if tailN < 1 {
		tailN = 1
	}
	return points[:headN], points[len(points)-tailN:]
}

// Summarize computes initial/equilibrium levels for a series, using the
// first headN buckets as the initial level and the final quarter as
// equilibrium.
func Summarize(points []Point, headN int) SeriesStats {
	head, tail := headTail(points, headN)
	s := SeriesStats{Initial: mean(head), Equilibrium: mean(tail)}
	if s.Initial != 0 {
		s.ReductionPercent = 100 * (s.Initial - s.Equilibrium) / s.Initial
	}
	return s
}

// AdjustmentTime computes Table 2's responsiveness metric: the time from
// which the series stays within thresholdFactor of the equilibrium level
// (the paper uses 1.10 — "10% above the average equilibrium bandwidth
// consumption"). Scanning for the *last* excursion above the threshold
// makes the metric robust to both monotone-decreasing series and the
// rise-then-fall shape of backlogged workloads. It returns false when the
// series is still above the threshold at its end (never settled).
func AdjustmentTime(points []Point, thresholdFactor float64) (time.Duration, bool) {
	if len(points) == 0 {
		return 0, false
	}
	_, tail := headTail(points, 1)
	eq := mean(tail)
	limit := eq * thresholdFactor
	last := -1
	for i, p := range points {
		if p.V > limit {
			last = i
		}
	}
	switch {
	case last == -1:
		return points[0].T, true // never exceeded: settled from the start
	case last == len(points)-1:
		return 0, false // still unsettled at the end of the run
	default:
		return points[last+1].T, true
	}
}

// MaxValue returns the maximum value of the series (0 for empty).
func MaxValue(points []Point) float64 {
	max := 0.0
	for _, p := range points {
		if p.V > max {
			max = p.V
		}
	}
	return max
}

// WindowMean returns the mean of values with T in [from, to).
func WindowMean(points []Point, from, to time.Duration) float64 {
	total, n := 0.0, 0
	for _, p := range points {
		if p.T >= from && p.T < to {
			total += p.V
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// SandwichViolations counts Figure 8b samples where the actual load lies
// outside [lower-slack, upper+slack]. The paper's claim is zero.
func SandwichViolations(samples []HostLoadSample, slack float64) int {
	violations := 0
	for _, s := range samples {
		if s.Actual < s.Lower-slack || s.Actual > s.Upper+slack {
			violations++
		}
	}
	return violations
}
