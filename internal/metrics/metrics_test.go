package metrics

import (
	"math/rand"
	"testing"
	"time"

	"radar/internal/protocol"
	"radar/internal/simnet"
)

func newCollector(t *testing.T) *Collector {
	t.Helper()
	c, err := New(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBucketedBandwidth(t *testing.T) {
	c := newCollector(t)
	c.RecordTransfer(10*time.Second, simnet.Payload, 600, 2)  // bucket 0: 1200
	c.RecordTransfer(30*time.Second, simnet.Overhead, 100, 3) // bucket 0: 300
	c.RecordTransfer(90*time.Second, simnet.Payload, 60, 1)   // bucket 1: 60
	bw := c.BandwidthSeries()
	if len(bw) != 2 {
		t.Fatalf("series length = %d, want 2", len(bw))
	}
	if bw[0].V != 1500.0/60 {
		t.Errorf("bucket 0 bandwidth = %v, want 25 byte-hops/s", bw[0].V)
	}
	if bw[1].V != 1.0 {
		t.Errorf("bucket 1 bandwidth = %v, want 1", bw[1].V)
	}
	p, o := c.TotalByteHops()
	if p != 1260 || o != 300 {
		t.Errorf("totals = (%v, %v), want (1260, 300)", p, o)
	}
}

func TestOverheadPercent(t *testing.T) {
	c := newCollector(t)
	c.RecordTransfer(0, simnet.Payload, 900, 1)
	c.RecordTransfer(0, simnet.Overhead, 100, 1)
	if got := c.OverheadPercent(); got != 10 {
		t.Fatalf("OverheadPercent = %v, want 10", got)
	}
	series := c.OverheadPercentSeries()
	if series[0].V != 10 {
		t.Fatalf("series overhead = %v, want 10", series[0].V)
	}
}

func TestLatencySeries(t *testing.T) {
	c := newCollector(t)
	c.RecordLatency(5*time.Second, 100*time.Millisecond)
	c.RecordLatency(6*time.Second, 300*time.Millisecond)
	c.RecordLatency(61*time.Second, time.Second)
	s := c.LatencySeries()
	if len(s) != 2 {
		t.Fatalf("series length = %d, want 2", len(s))
	}
	if s[0].V != 0.2 {
		t.Errorf("bucket 0 avg latency = %v, want 0.2s", s[0].V)
	}
	if s[1].V != 1.0 {
		t.Errorf("bucket 1 avg latency = %v, want 1s", s[1].V)
	}
	if got := c.Counters().Requests; got != 3 {
		t.Errorf("requests = %d, want 3", got)
	}
}

func TestObserverCounters(t *testing.T) {
	c := newCollector(t)
	c.OnMigrate(0, 1, 0, 1, protocol.GeoMove)
	c.OnMigrate(0, 1, 0, 1, protocol.LoadMove)
	c.OnReplicate(0, 1, 0, 1, protocol.GeoMove)
	c.OnReplicate(0, 1, 0, 1, protocol.LoadMove)
	c.OnReplicate(0, 1, 0, 1, protocol.LoadMove)
	c.OnDrop(0, 1, 0)
	c.OnRefuse(0, 1, 0, 1, protocol.Migrate)
	got := c.Counters()
	want := Counters{GeoMigrations: 1, LoadMigrations: 1, GeoReplications: 1, LoadReplications: 2, Drops: 1, Refusals: 1}
	if got != want {
		t.Fatalf("counters = %+v, want %+v", got, want)
	}
}

func TestSummarize(t *testing.T) {
	points := []Point{
		{0, 100}, {1, 100}, {2, 80}, {3, 60},
		{4, 40}, {5, 40}, {6, 40}, {7, 40},
	}
	s := Summarize(points, 2)
	if s.Initial != 100 {
		t.Errorf("Initial = %v, want 100", s.Initial)
	}
	if s.Equilibrium != 40 {
		t.Errorf("Equilibrium = %v, want 40", s.Equilibrium)
	}
	if s.ReductionPercent != 60 {
		t.Errorf("Reduction = %v%%, want 60%%", s.ReductionPercent)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil, 3); s.Initial != 0 || s.Equilibrium != 0 {
		t.Errorf("empty series stats = %+v, want zeros", s)
	}
	one := []Point{{0, 5}}
	if s := Summarize(one, 3); s.Initial != 5 || s.Equilibrium != 5 {
		t.Errorf("single-point stats = %+v", s)
	}
}

func TestAdjustmentTime(t *testing.T) {
	mk := func(vals ...float64) []Point {
		out := make([]Point, len(vals))
		for i, v := range vals {
			out[i] = Point{T: time.Duration(i) * time.Minute, V: v}
		}
		return out
	}
	// Equilibrium (last quarter of 12 = 3 points) = 40; limit 44.
	pts := mk(100, 95, 90, 70, 60, 43, 42, 41, 40, 40, 40, 40)
	at, ok := AdjustmentTime(pts, 1.10)
	if !ok || at != 5*time.Minute {
		t.Fatalf("AdjustmentTime = (%v, %v), want 5m", at, ok)
	}
	// Transient dip at index 2 must not count (next bucket above limit).
	pts = mk(100, 95, 20, 95, 60, 43, 42, 41, 40, 40, 40, 40)
	at, ok = AdjustmentTime(pts, 1.10)
	if !ok || at != 5*time.Minute {
		t.Fatalf("with transient dip AdjustmentTime = (%v, %v), want 5m", at, ok)
	}
	if _, ok := AdjustmentTime(nil, 1.10); ok {
		t.Fatal("empty series reported adjustment")
	}
}

func TestMaxValueAndWindowMean(t *testing.T) {
	pts := []Point{{0, 1}, {time.Minute, 9}, {2 * time.Minute, 4}}
	if got := MaxValue(pts); got != 9 {
		t.Errorf("MaxValue = %v, want 9", got)
	}
	if got := WindowMean(pts, time.Minute, 3*time.Minute); got != 6.5 {
		t.Errorf("WindowMean = %v, want 6.5", got)
	}
	if got := WindowMean(pts, time.Hour, 2*time.Hour); got != 0 {
		t.Errorf("empty window mean = %v, want 0", got)
	}
}

func TestSandwichViolations(t *testing.T) {
	samples := []HostLoadSample{
		{T: 0, Actual: 50, Lower: 40, Upper: 60},
		{T: 1, Actual: 39, Lower: 40, Upper: 60},
		{T: 2, Actual: 61, Lower: 40, Upper: 60},
	}
	if got := SandwichViolations(samples, 0); got != 2 {
		t.Errorf("violations = %d, want 2", got)
	}
	if got := SandwichViolations(samples, 2); got != 0 {
		t.Errorf("violations with slack = %d, want 0", got)
	}
}

func TestSeriesAccessorsCopy(t *testing.T) {
	c := newCollector(t)
	c.RecordMaxLoad(0, 10)
	c.RecordHostLoad(0, 5, 4, 6)
	c.RecordReplicaCensus(0, 1.5)
	c.MaxLoadSeries()[0].V = 99
	if c.MaxLoadSeries()[0].V == 99 {
		t.Error("MaxLoadSeries exposed internals")
	}
	c.HostLoadSeries()[0].Actual = 99
	if c.HostLoadSeries()[0].Actual == 99 {
		t.Error("HostLoadSeries exposed internals")
	}
	c.ReplicaSeries()[0].V = 99
	if c.ReplicaSeries()[0].V == 99 {
		t.Error("ReplicaSeries exposed internals")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("zero bucket accepted")
	}
}

func TestLatencyQuantileSeries(t *testing.T) {
	c := newCollector(t)
	// 99 fast samples and 1 slow one in bucket 0.
	for i := 0; i < 99; i++ {
		c.RecordLatency(time.Second, 10*time.Millisecond)
	}
	c.RecordLatency(time.Second, 5*time.Second)
	p50 := c.LatencyQuantileSeries(0.50)[0].V
	p99 := c.LatencyQuantileSeries(0.99)[0].V
	p999 := c.LatencyQuantileSeries(0.999)[0].V
	// Histogram bins give upper-edge estimates with ~7% resolution.
	if p50 < 0.010 || p50 > 0.012 {
		t.Errorf("p50 = %v, want ~10ms", p50)
	}
	if p99 < 0.010 || p99 > 0.012 {
		t.Errorf("p99 = %v, want ~10ms (99/100 samples fast)", p99)
	}
	if p999 < 5.0 || p999 > 5.5 {
		t.Errorf("p99.9 = %v, want ~5s (the slow sample)", p999)
	}
	if got := c.LatencyQuantileSeries(0.99); len(got) != 1 {
		t.Errorf("series length = %d", len(got))
	}
}

func TestLatencyQuantileEdges(t *testing.T) {
	c := newCollector(t)
	c.RecordLatency(0, time.Microsecond) // below histogram floor
	c.RecordLatency(0, 2*time.Hour)      // above histogram ceiling
	q := c.LatencyQuantileSeries(1.0)[0].V
	if q < 999 {
		t.Errorf("max quantile = %v, want clamped at histogram ceiling", q)
	}
	lo := c.LatencyQuantileSeries(0)[0].V
	if lo <= 0 {
		t.Errorf("min quantile = %v, want positive floor bin", lo)
	}
	// Empty bucket: quantile 0.
	var empty latencyHist
	if got := empty.quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

// TestHistogramMonotoneProperty: quantiles are monotone in q and bracket
// the observed samples' bins.
func TestHistogramMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		var h latencyHist
		for i := 0; i < 200; i++ {
			h.observe(time.Duration(rng.Intn(10_000_000)+1) * time.Microsecond)
		}
		prev := 0.0
		for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
			v := h.quantile(q)
			if v < prev {
				t.Fatalf("trial %d: quantile not monotone at q=%v: %v < %v", trial, q, v, prev)
			}
			prev = v
		}
	}
}
