package metrics

import (
	"reflect"
	"testing"
	"time"

	"radar/internal/object"
	"radar/internal/protocol"
	"radar/internal/simnet"
)

// TestCollectorMergeFrom checks that splitting a stream of commutative
// records across two collectors and merging is indistinguishable from
// recording everything into one collector.
func TestCollectorMergeFrom(t *testing.T) {
	bucket := time.Second
	one, err := New(bucket)
	if err != nil {
		t.Fatal(err)
	}
	main, err := New(bucket)
	if err != nil {
		t.Fatal(err)
	}
	lane, err := New(bucket)
	if err != nil {
		t.Fatal(err)
	}

	rec := func(c *Collector, half int) {
		if half == 0 {
			c.RecordTransfer(time.Second, simnet.Payload, 1000, 3)
			c.RecordLatency(2*time.Second, 150*time.Millisecond)
			c.RecordFailedRequest(3 * time.Second)
			c.OnMigrate(0, object.ID(1), 0, 1, protocol.GeoMove)
			c.RecordOutageWindow(time.Second, 3*time.Second)
		} else {
			c.RecordTransfer(4*time.Second, simnet.Overhead, 500, 2)
			c.RecordLatency(4*time.Second, 50*time.Millisecond)
			c.RecordLatency(5*time.Second, 75*time.Millisecond)
			c.OnReplicate(0, object.ID(2), 1, 2, protocol.LoadMove)
			c.OnDrop(0, object.ID(2), 1)
			c.RecordBelowFloor(5*time.Second, 2, 4.5)
		}
	}
	rec(one, 0)
	rec(one, 1)
	rec(main, 0)
	rec(lane, 1)
	main.MergeFrom(lane)

	if !reflect.DeepEqual(one.Counters(), main.Counters()) {
		t.Errorf("counters diverge: %+v vs %+v", one.Counters(), main.Counters())
	}
	for name, pair := range map[string][2][]Point{
		"bandwidth": {one.BandwidthSeries(), main.BandwidthSeries()},
		"latency":   {one.LatencySeries(), main.LatencySeries()},
		"p99":       {one.LatencyQuantileSeries(0.99), main.LatencyQuantileSeries(0.99)},
		"failed":    {one.FailedRequestSeries(), main.FailedRequestSeries()},
		"overhead":  {one.OverheadPercentSeries(), main.OverheadPercentSeries()},
	} {
		if !reflect.DeepEqual(pair[0], pair[1]) {
			t.Errorf("%s series diverge:\n one: %v\nmerged: %v", name, pair[0], pair[1])
		}
	}
	if one.Outages() != main.Outages() || one.UnavailableObjectSeconds() != main.UnavailableObjectSeconds() {
		t.Error("outage accounting diverges after merge")
	}
	if one.BelowFloorObjectSeconds() != main.BelowFloorObjectSeconds() {
		t.Error("below-floor accounting diverges after merge")
	}
	if one.OverheadPercent() != main.OverheadPercent() {
		t.Error("overhead percent diverges after merge")
	}
}

// TestCollectorMergeBucketMismatchPanics pins the guard: lanes must be
// built with the simulation's bucket size.
func TestCollectorMergeBucketMismatchPanics(t *testing.T) {
	a, _ := New(time.Second)
	b, _ := New(2 * time.Second)
	defer func() {
		if recover() == nil {
			t.Error("bucket mismatch merge did not panic")
		}
	}()
	a.MergeFrom(b)
}
