package metrics

import (
	"math"
	"time"
)

// latencyHist is a log-spaced latency histogram covering 100µs to ~1000s
// with constant relative resolution, used for per-bucket percentile
// estimates without storing individual samples.
type latencyHist struct {
	bins  [histBins]int64
	count int64
}

const (
	histBins = 96
	histMin  = 100e-6 // 100 µs
	histMax  = 1000.0 // 1000 s
)

var histLogRange = math.Log(histMax / histMin)

// binFor maps a latency in seconds to a bin index.
func binFor(seconds float64) int {
	if seconds <= histMin {
		return 0
	}
	if seconds >= histMax {
		return histBins - 1
	}
	idx := int(math.Log(seconds/histMin) / histLogRange * float64(histBins))
	if idx < 0 {
		idx = 0
	}
	if idx >= histBins {
		idx = histBins - 1
	}
	return idx
}

// binUpper returns a bin's upper edge in seconds (a conservative
// percentile estimate).
func binUpper(idx int) float64 {
	return histMin * math.Exp(float64(idx+1)/float64(histBins)*histLogRange)
}

// observe records one latency sample.
func (h *latencyHist) observe(d time.Duration) {
	h.bins[binFor(d.Seconds())]++
	h.count++
}

// merge folds another histogram's counts into h. Counts are integers, so
// merging is order-independent.
func (h *latencyHist) merge(o *latencyHist) {
	if o.count == 0 {
		return
	}
	for i := range h.bins {
		h.bins[i] += o.bins[i]
	}
	h.count += o.count
}

// quantile returns an upper-edge estimate of the q-th quantile (0..1);
// zero when empty.
func (h *latencyHist) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := 0; i < histBins; i++ {
		seen += h.bins[i]
		if seen >= target {
			return binUpper(i)
		}
	}
	return binUpper(histBins - 1)
}
