package protocol

import (
	"time"

	"radar/internal/object"
)

// LoadSource provides a host's measured loads (paper §2.1): the rate of
// serviced requests averaged over the last completed measurement interval,
// total and attributed per object. The simulator's server model implements
// it; tests use fixtures.
type LoadSource interface {
	// Load returns the host's measured total load in requests/sec.
	Load() float64
	// ObjectLoad returns the fraction of the measured load attributed to
	// the given object, in requests/sec. Implementations return 0 for
	// objects with no measurements yet.
	ObjectLoad(id object.ID) float64
}

// LoadEstimator maintains the upper- and lower-limit load estimates of
// §2.1: a load measurement taken right after an object relocation does not
// reflect the change yet, so after accepting an object a host substitutes
// an upper-limit estimate (actual load at acceptance plus the Theorem 2/4
// bound per accepted object) when deciding whether to honor further
// CreateObj requests, and an offloading host symmetrically uses a
// lower-limit estimate (actual minus the Theorem 1/3 bound per shed
// object). Each estimate reverts to actual measurements once a measurement
// interval that started after the last relocation completes.
type LoadEstimator struct {
	upper       float64
	upperActive bool
	upperSince  time.Duration
	lastAccept  time.Duration

	lower       float64
	lowerActive bool
	lastShed    time.Duration
}

// OnAccept records that the host accepted an object at time now whose
// upper-bound load contribution is delta (4·ℓ/aff, Theorems 2/4).
// measured is the host's current measured load, used to seed the estimate.
func (e *LoadEstimator) OnAccept(now time.Duration, measured, delta float64) {
	if !e.upperActive {
		e.upper = measured
		e.upperActive = true
		e.upperSince = now
	}
	e.upper += delta
	e.lastAccept = now
}

// OnShed records that the host migrated or replicated an object away at
// time now; delta is the maximum load decrease (Theorems 1/3). measured
// seeds the estimate on first use.
func (e *LoadEstimator) OnShed(now time.Duration, measured, delta float64) {
	if !e.lowerActive {
		e.lower = measured
		e.lowerActive = true
	}
	e.lower -= delta
	if e.lower < 0 {
		e.lower = 0
	}
	e.lastShed = now
}

// OnIntervalClose tells the estimator that the measurement interval which
// began at start has completed. An estimate whose last relocation happened
// at or before start is now reflected in actual measurements and is
// retired.
func (e *LoadEstimator) OnIntervalClose(start time.Duration) {
	if e.upperActive && e.lastAccept <= start {
		e.upperActive = false
	}
	if e.lowerActive && e.lastShed <= start {
		e.lowerActive = false
	}
}

// Reset discards both estimates and their timing state — the model of a
// host crash wiping in-memory state. Without it a crashed host would come
// back still carrying pre-crash upper/lower bounds that no measurement
// interval of the downtime can retire coherently (stale bounds leak).
func (e *LoadEstimator) Reset() { *e = LoadEstimator{} }

// LoadForAccept returns the load a host must use when deciding whether to
// accept objects from other hosts: the upper-limit estimate while active,
// the measured load otherwise.
func (e *LoadEstimator) LoadForAccept(measured float64) float64 {
	if e.upperActive {
		return e.upper
	}
	return measured
}

// LoadForOffload returns the load a host must use when deciding whether it
// needs to offload: the lower-limit estimate while active, the measured
// load otherwise.
func (e *LoadEstimator) LoadForOffload(measured float64) float64 {
	if e.lowerActive {
		return e.lower
	}
	return measured
}

// UpperActive reports whether the upper-limit estimate is in force.
func (e *LoadEstimator) UpperActive() bool { return e.upperActive }

// UpperActiveFor returns how long the upper estimate has been continuously
// active; zero when inactive. Hosts use it to halt relocations so a clean
// measurement interval can complete when back-to-back acquisitions would
// otherwise keep the estimate alive forever (paper §2.1 footnote 2).
func (e *LoadEstimator) UpperActiveFor(now time.Duration) time.Duration {
	if !e.upperActive {
		return 0
	}
	return now - e.upperSince
}

// LowerActive reports whether the lower-limit estimate is in force.
func (e *LoadEstimator) LowerActive() bool { return e.lowerActive }

// Bounds returns the current (lower, upper) estimates with measured
// substituted for inactive sides; used for the Figure 8b trace.
func (e *LoadEstimator) Bounds(measured float64) (lower, upper float64) {
	return e.LoadForOffload(measured), e.LoadForAccept(measured)
}
