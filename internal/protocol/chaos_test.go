package protocol

import (
	"math/rand"
	"testing"
	"time"

	"radar/internal/object"
	"radar/internal/topology"
)

// TestChaosInvariants runs randomized interleavings of every protocol
// operation — request bursts, placement rounds, direct CreateObj calls,
// load swings — and asserts the cross-component invariants after every
// step: the redirector's replica sets match host state exactly (same
// hosts, same affinities), every object keeps at least one replica, and
// affinities stay positive.
func TestChaosInvariants(t *testing.T) {
	const (
		numObjects = 30
		steps      = 400
	)
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			params := DefaultParams()
			c := newCluster(t, topology.Ring(8), params)
			n := c.topo.NumNodes()
			for i := 0; i < numObjects; i++ {
				c.seed(object.ID(i), topology.NodeID(i%n))
			}
			now := time.Duration(0)
			for step := 0; step < steps; step++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // request burst at a random replica holder
					id := object.ID(rng.Intn(numObjects))
					reps := c.red.Replicas(id)
					if len(reps) == 0 {
						t.Fatalf("step %d: object %d lost all replicas", step, id)
					}
					holder := reps[rng.Intn(len(reps))].Host
					gw := topology.NodeID(rng.Intn(n))
					for k := 0; k < rng.Intn(50)+1; k++ {
						c.hosts[holder].OnRequest(id, gw)
					}
				case 4, 5, 6: // a host runs placement
					now += time.Duration(rng.Intn(100)+1) * time.Second
					c.hosts[rng.Intn(n)].DecidePlacement(now)
				case 7: // random load swing
					c.loads[rng.Intn(n)].total = rng.Float64() * 2 * params.HighWatermark
					id := object.ID(rng.Intn(numObjects))
					c.loads[rng.Intn(n)].perObj[id] = rng.Float64() * 10
				case 8: // direct CreateObj from a random peer
					id := object.ID(rng.Intn(numObjects))
					from := topology.NodeID(rng.Intn(n))
					to := topology.NodeID(rng.Intn(n))
					if from == to {
						continue
					}
					method := Migrate
					if rng.Intn(2) == 0 {
						method = Replicate
					}
					if c.hosts[to].CreateObj(now, method, id, rng.Float64()*5, 1, from) && method == Migrate {
						// The initiating host completes the migration.
						if st, ok := c.hosts[from].objects[id]; ok {
							c.hosts[from].reduceAffinity(now, id, st)
						}
					}
				case 9: // measurement interval closes everywhere
					for i := 0; i < n; i++ {
						c.hosts[i].OnMeasurementIntervalClose(now - 20*time.Second)
					}
				}
				c.checkSubsetInvariant(t)
				for i := 0; i < numObjects; i++ {
					id := object.ID(i)
					if c.red.ReplicaCount(id) == 0 {
						t.Fatalf("step %d: object %d has no replicas", step, id)
					}
					for _, rep := range c.red.Replicas(id) {
						if rep.Aff < 1 {
							t.Fatalf("step %d: object %d replica on %d has affinity %d", step, id, rep.Host, rep.Aff)
						}
						if rep.Rcnt < 0 {
							t.Fatalf("step %d: negative request count", step)
						}
					}
				}
			}
		})
	}
}

// TestChaosLoadEstimatorNeverNegative drives random accept/shed/close
// sequences and asserts estimates stay sane.
func TestChaosLoadEstimatorNeverNegative(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var e LoadEstimator
		now := time.Duration(0)
		measured := rng.Float64() * 100
		for step := 0; step < 300; step++ {
			now += time.Duration(rng.Intn(10)+1) * time.Second
			switch rng.Intn(3) {
			case 0:
				e.OnAccept(now, measured, rng.Float64()*20)
			case 1:
				e.OnShed(now, measured, rng.Float64()*20)
			case 2:
				e.OnIntervalClose(now - time.Duration(rng.Intn(40))*time.Second)
			}
			lo, hi := e.Bounds(measured)
			if lo < 0 {
				t.Fatalf("seed %d step %d: negative lower bound %v", seed, step, lo)
			}
			if e.UpperActive() && e.LowerActive() && lo > hi {
				t.Fatalf("seed %d step %d: lower %v above upper %v", seed, step, lo, hi)
			}
			if e.UpperActiveFor(now) < 0 {
				t.Fatalf("seed %d step %d: negative active-for", seed, step)
			}
		}
	}
}
