package protocol

import (
	"testing"
	"time"

	"radar/internal/object"
	"radar/internal/topology"
)

// touch registers a request from each given node so it becomes a
// placement candidate for the object on host h.
func touch(c *cluster, h topology.NodeID, id object.ID, nodes ...topology.NodeID) {
	for _, n := range nodes {
		c.hosts[h].OnRequest(id, n)
	}
}

// TestOrderCandidatesZeroWeightIsLegacy: with AvailabilityWeight zero the
// ordering is exactly the paper's farthest-first candidatesByDistanceDesc
// — same nodes, same order — and makes no redirector lookups.
func TestOrderCandidatesZeroWeightIsLegacy(t *testing.T) {
	c := newCluster(t, topology.Line(8), DefaultParams())
	c.seed(obj, 0)
	touch(c, 0, obj, 1, 3, 5, 7)
	h := c.hosts[0]
	st := h.objects[obj]
	legacy := append([]topology.NodeID(nil), h.candidatesByDistanceDesc(st)...)
	for _, method := range []Method{Migrate, Replicate} {
		got := h.orderCandidates(obj, st, method)
		if len(got) != len(legacy) {
			t.Fatalf("%v: ordered %d candidates, legacy %d", method, len(got), len(legacy))
		}
		for i := range got {
			if got[i] != legacy[i] {
				t.Errorf("%v: candidate[%d] = %d, legacy %d", method, i, got[i], legacy[i])
			}
		}
	}
}

// TestOrderCandidatesFloorSafety: when the recorded replica set is at the
// floor, a migration onto a host that already holds a copy (which would
// merge two replicas into one) is demoted behind every floor-safe
// candidate — never chosen while a feasible alternative exists.
func TestOrderCandidatesFloorSafety(t *testing.T) {
	for _, tc := range []struct {
		name     string
		floor    int
		replicas []topology.NodeID // replica hosts besides the deciding host 0
		method   Method
		unsafe   []topology.NodeID // candidates that must sort last
	}{
		{name: "migrate-at-floor", floor: 2, replicas: []topology.NodeID{7}, method: Migrate,
			unsafe: []topology.NodeID{7}},
		{name: "replicate-never-unsafe", floor: 2, replicas: []topology.NodeID{7}, method: Replicate,
			unsafe: nil},
		{name: "above-floor-safe", floor: 2, replicas: []topology.NodeID{5, 7}, method: Migrate,
			unsafe: nil}, // 3 recorded copies > floor: merging one is allowed
		{name: "no-floor-all-safe", floor: 0, replicas: []topology.NodeID{7}, method: Migrate,
			unsafe: nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			params := DefaultParams()
			params.ReplicaFloor = tc.floor
			params.AvailabilityWeight = 0.5
			c := newCluster(t, topology.Line(8), params)
			c.seed(obj, 0)
			for _, r := range tc.replicas {
				c.seed(obj, r)
			}
			touch(c, 0, obj, 1, 3, 5, 7)
			h := c.hosts[0]
			st := h.objects[obj]
			got := h.orderCandidates(obj, st, tc.method)
			unsafe := map[topology.NodeID]bool{}
			for _, u := range tc.unsafe {
				unsafe[u] = true
			}
			// Every unsafe candidate must appear strictly after every safe one.
			lastSafe, firstUnsafe := -1, len(got)
			for i, p := range got {
				if unsafe[p] {
					if i < firstUnsafe {
						firstUnsafe = i
					}
				} else if i > lastSafe {
					lastSafe = i
				}
			}
			if firstUnsafe < lastSafe {
				t.Errorf("unsafe candidate ordered at %d before safe candidate at %d: order %v",
					firstUnsafe, lastSafe, got)
			}
		})
	}
}

// TestAvailScoreTable pins the availability score's two terms: a fresh
// candidate outranks an equal-distance candidate that already holds a
// copy (newCopy), and among fresh candidates one far from the existing
// replicas outranks one adjacent to them (spread).
func TestAvailScoreTable(t *testing.T) {
	// Line(9): host 0 decides; replicas besides 0 sit on node 4.
	params := DefaultParams()
	params.AvailabilityWeight = 0.5
	c := newCluster(t, topology.Line(9), params)
	c.seed(obj, 0)
	c.seed(obj, 4)
	h := c.hosts[0]
	replicas := []topology.NodeID{0, 4}
	diam := float64(c.routes.Diameter())
	w := params.AvailabilityWeight
	for _, tc := range []struct {
		name   string
		better topology.NodeID
		worse  topology.NodeID
		method Method
	}{
		// 8 and 4 are both 4+ hops out, but 4 already holds a copy.
		{name: "new-copy-beats-holder", better: 8, worse: 4, method: Replicate},
		// 8 and 5 are fresh; 5 is adjacent to the replica on 4.
		{name: "spread-beats-adjacent", better: 8, worse: 5, method: Replicate},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := h.availScore(tc.better, replicas, tc.method, w, diam)
			ws := h.availScore(tc.worse, replicas, tc.method, w, diam)
			if b <= ws {
				t.Errorf("score(%d) = %.4f not greater than score(%d) = %.4f",
					tc.better, b, tc.worse, ws)
			}
		})
	}
}

// TestRepairAcceptCeiling: the Repair method is accepted against the
// availability-relaxed watermark lw + w·(hw-lw) while plain Replicate
// still refuses above lw; with w = 0 Repair degenerates to the legacy
// Replicate verdict.
func TestRepairAcceptCeiling(t *testing.T) {
	for _, tc := range []struct {
		name   string
		w      float64
		load   float64 // accept-side load of the target (lw=80, hw=90)
		method Method
		accept bool
	}{
		{name: "replicate-below-lw", w: 0.5, load: 79, method: Replicate, accept: true},
		{name: "replicate-above-lw", w: 0.5, load: 84, method: Replicate, accept: false},
		{name: "repair-in-relaxed-band", w: 0.5, load: 84, method: Repair, accept: true},
		{name: "repair-above-relaxed", w: 0.5, load: 86, method: Repair, accept: false},
		{name: "repair-zero-weight-is-legacy", w: 0, load: 84, method: Repair, accept: false},
		{name: "repair-full-weight-to-hw", w: 1, load: 89, method: Repair, accept: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			params := DefaultParams()
			params.AvailabilityWeight = tc.w
			c := newCluster(t, topology.Line(3), params)
			c.seed(obj, 0)
			c.loads[2].total = tc.load
			got := c.hosts[2].CreateObj(50*time.Second, tc.method, obj, 0.1, 1, 0)
			if got != tc.accept {
				t.Errorf("CreateObj(%v, load %.0f, w %.1f) = %v, want %v",
					tc.method, tc.load, tc.w, got, tc.accept)
			}
		})
	}
}

// TestAcquisitionHalted mirrors the CreateObj halt guard: after an
// acceptance keeps the upper estimate active past EstimateHaltAfter the
// host reports halted, and the guard clears once a clean interval passes.
func TestAcquisitionHalted(t *testing.T) {
	params := DefaultParams()
	c := newCluster(t, topology.Line(3), params)
	c.seed(obj, 0)
	if c.hosts[2].AcquisitionHalted(10 * time.Second) {
		t.Fatal("fresh host reports acquisition halt")
	}
	if !c.hosts[2].CreateObj(10*time.Second, Replicate, obj, 0.1, 1, 0) {
		t.Fatal("idle host refused a replicate")
	}
	if !c.hosts[2].AcquisitionHalted(10*time.Second + params.EstimateHaltAfter + time.Second) {
		t.Error("host not halted while the upper estimate is still active past the guard")
	}
}
