package protocol

// This file encodes the load-change bounds of Theorems 1-5 (paper §3).
// They are the protocol's central contribution: because the request
// distribution algorithm is deterministic given request counts, a host can
// bound — from purely local knowledge — how much load any potential
// migration or replication can add to the recipient or remove from itself,
// and therefore relocate many objects at once without waiting for fresh
// load observations after each move. The bounds below are stated for the
// distribution constant 2 used throughout the paper.

// ReplicationSourceMaxDecrease bounds how much the load on source host i
// may drop after it replicates object x elsewhere: at most (3/4)·ℓ where ℓ
// is the load on x_i before replication (Theorem 1). The offloading host
// subtracts this from its lower-bound load estimate.
func ReplicationSourceMaxDecrease(objLoad float64) float64 {
	return 0.75 * objLoad
}

// ReplicationTargetMaxIncrease bounds how much the load on recipient host j
// may grow after it accepts a replica of x from host i: at most 4·ℓ/aff(x_i)
// (Theorem 2). The recipient adds this to its upper-bound load estimate.
func ReplicationTargetMaxIncrease(objLoad float64, aff int) float64 {
	if aff < 1 {
		aff = 1
	}
	return 4 * objLoad / float64(aff)
}

// MigrationSourceMaxDecrease bounds how much the load on source host i may
// drop after it migrates one affinity unit of x to host j: at most
// ℓ/aff + (3/4)·ℓ·(aff-1)/aff (Theorem 3).
func MigrationSourceMaxDecrease(objLoad float64, aff int) float64 {
	if aff < 1 {
		aff = 1
	}
	a := float64(aff)
	return objLoad/a + 0.75*objLoad*(a-1)/a
}

// MigrationTargetMaxIncrease bounds how much the load on recipient host j
// may grow after a migration of x from host i: at most 4·ℓ/aff(x_i)
// (Theorem 4).
func MigrationTargetMaxIncrease(objLoad float64, aff int) float64 {
	return ReplicationTargetMaxIncrease(objLoad, aff)
}

// MinUnitAccessAfterReplication is Theorem 5: if hosts replicate only when
// the unit access count exceeds m, then after replication every replica's
// unit access count exceeds m/4 — even under concurrent independent
// replications and migrations. With the stability constraint 4u < m this
// guarantees freshly created replicas are never immediately dropped, which
// is what lets each host decide autonomously without vicious
// create/delete cycles.
func MinUnitAccessAfterReplication(m float64) float64 {
	return m / 4
}
