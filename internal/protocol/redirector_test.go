package protocol

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"radar/internal/object"
	"radar/internal/routing"
	"radar/internal/topology"
)

const testObj = object.ID(7)

func newTestRedirector(t *testing.T, topo *topology.Topology, policy Policy) (*Redirector, *routing.Table) {
	t.Helper()
	routes := routing.New(topo)
	r, err := NewRedirector(routes.MinAvgDistanceNode(), routes, policy, 2)
	if err != nil {
		t.Fatalf("NewRedirector: %v", err)
	}
	return r, routes
}

// drive sends k requests for id through r, drawing gateways cyclically
// from pattern, and returns the per-host service counts over the second
// half of the run (the first half is warm-up).
func drive(t *testing.T, r *Redirector, id object.ID, pattern []topology.NodeID, k int) map[topology.NodeID]int {
	t.Helper()
	counts := make(map[topology.NodeID]int)
	for i := 0; i < k; i++ {
		g := pattern[i%len(pattern)]
		h, err := r.ChooseReplica(g, id)
		if err != nil {
			t.Fatalf("ChooseReplica: %v", err)
		}
		if i >= k/2 {
			counts[h]++
		}
	}
	return counts
}

func share(counts map[topology.NodeID]int, h topology.NodeID) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	return float64(counts[h]) / float64(total)
}

// TestProximityWhenBalanced is the paper's first running example: with one
// replica per cluster and demand split evenly, every request must go to
// its local replica.
func TestProximityWhenBalanced(t *testing.T) {
	topo := topology.TwoClusters(3) // nodes 0-2 cluster A, 3-5 cluster B
	r, _ := newTestRedirector(t, topo, PolicyPaper)
	r.NotifyReplicaChange(testObj, 1, 1) // replica in A
	r.NotifyReplicaChange(testObj, 4, 1) // replica in B
	counts := drive(t, r, testObj, []topology.NodeID{2, 5}, 10000)
	if s := share(counts, 1); s < 0.45 || s > 0.55 {
		t.Errorf("replica A share = %.3f, want ~0.5 (local requests only)", s)
	}
	// Every request from gateway 2 must land on host 1 and from 5 on 4:
	// re-drive and verify per-gateway routing.
	for i := 0; i < 1000; i++ {
		h, err := r.ChooseReplica(2, testObj)
		if err != nil {
			t.Fatal(err)
		}
		if h != 1 {
			t.Fatalf("request from A-side gateway went to %d, want local replica 1", h)
		}
		h, err = r.ChooseReplica(5, testObj)
		if err != nil {
			t.Fatal(err)
		}
		if h != 4 {
			t.Fatalf("request from B-side gateway went to %d, want local replica 4", h)
		}
	}
}

// TestLocalOverloadSplitsOneThird is the paper's second running example:
// all demand local to one replica; the algorithm must shed one third of
// requests to the remote replica.
func TestLocalOverloadSplitsOneThird(t *testing.T) {
	topo := topology.TwoClusters(3)
	r, _ := newTestRedirector(t, topo, PolicyPaper)
	r.NotifyReplicaChange(testObj, 1, 1)
	r.NotifyReplicaChange(testObj, 4, 1)
	counts := drive(t, r, testObj, []topology.NodeID{2}, 30000) // all demand near A
	if s := share(counts, 1); s < 0.63 || s > 0.70 {
		t.Errorf("overloaded local replica share = %.3f, want ~2/3", s)
	}
	if s := share(counts, 4); s < 0.30 || s > 0.37 {
		t.Errorf("remote replica share = %.3f, want ~1/3", s)
	}
}

// TestClosestShareBound verifies the §3 claim: with n replicas and every
// request closest to the same replica, that replica services only
// ~2N/(n+1) of N requests.
func TestClosestShareBound(t *testing.T) {
	for _, n := range []int{2, 3, 5, 9} {
		topo := topology.Line(10)
		r, _ := newTestRedirector(t, topo, PolicyPaper)
		for i := 0; i < n; i++ {
			r.NotifyReplicaChange(testObj, topology.NodeID(i+1), 1)
		}
		counts := drive(t, r, testObj, []topology.NodeID{0}, 60000) // all closest to host 1
		want := 2.0 / float64(n+1)
		if s := share(counts, 1); s < want*0.9 || s > want*1.1 {
			t.Errorf("n=%d: closest replica share = %.4f, want ~%.4f = 2/(n+1)", n, s, want)
		}
	}
}

// TestAffinityNineToOne is the paper's 90/10 example: an American replica
// with affinity 4 and a European replica with affinity 1 under a 9:1
// demand split must send ~1/9 of all requests (including every European
// one) to Europe.
func TestAffinityNineToOne(t *testing.T) {
	topo := topology.TwoClusters(3)
	r, _ := newTestRedirector(t, topo, PolicyPaper)
	r.NotifyReplicaChange(testObj, 1, 4) // America, affinity 4
	r.NotifyReplicaChange(testObj, 4, 1) // Europe, affinity 1
	// Nine American requests then one European, evenly interleaved.
	pattern := []topology.NodeID{2, 2, 2, 2, 2, 2, 2, 2, 2, 5}
	const k = 90000
	euToEU := 0
	counts := make(map[topology.NodeID]int)
	for i := 0; i < k; i++ {
		g := pattern[i%len(pattern)]
		h, err := r.ChooseReplica(g, testObj)
		if err != nil {
			t.Fatal(err)
		}
		if i >= k/2 {
			counts[h]++
			if g == 5 && h == 4 {
				euToEU++
			}
		}
	}
	if s := share(counts, 4); s < 0.09 || s > 0.14 {
		t.Errorf("European share = %.4f, want ~1/9", s)
	}
	if euToEU < k/2/len(pattern)-1 {
		t.Errorf("only %d European requests served locally, want all ~%d", euToEU, k/2/len(pattern))
	}
}

func TestCountsResetOnReplicaChange(t *testing.T) {
	topo := topology.Line(4)
	r, _ := newTestRedirector(t, topo, PolicyPaper)
	r.NotifyReplicaChange(testObj, 0, 1)
	drive(t, r, testObj, []topology.NodeID{0}, 100)
	for _, rep := range r.Replicas(testObj) {
		if rep.Rcnt <= 1 {
			t.Fatalf("expected accumulated counts before change, got %d", rep.Rcnt)
		}
	}
	r.NotifyReplicaChange(testObj, 2, 1)
	for _, rep := range r.Replicas(testObj) {
		if rep.Rcnt != 1 {
			t.Errorf("host %d rcnt = %d after replica-set change, want 1", rep.Host, rep.Rcnt)
		}
	}
	// Affinity-only change also resets.
	drive(t, r, testObj, []topology.NodeID{0}, 100)
	r.NotifyReplicaChange(testObj, 2, 2)
	for _, rep := range r.Replicas(testObj) {
		if rep.Rcnt != 1 {
			t.Errorf("host %d rcnt = %d after affinity change, want 1", rep.Host, rep.Rcnt)
		}
	}
}

func TestRequestDropArbitration(t *testing.T) {
	topo := topology.Line(4)
	r, _ := newTestRedirector(t, topo, PolicyPaper)
	r.NotifyReplicaChange(testObj, 0, 1)
	if r.RequestDrop(testObj, 0) {
		t.Fatal("redirector allowed dropping the last replica")
	}
	r.NotifyReplicaChange(testObj, 2, 1)
	if !r.RequestDrop(testObj, 0) {
		t.Fatal("redirector refused a legal drop")
	}
	if got := r.ReplicaCount(testObj); got != 1 {
		t.Fatalf("replica count after drop = %d, want 1", got)
	}
	if r.RequestDrop(testObj, 2) {
		t.Fatal("redirector allowed dropping the now-last replica")
	}
	if r.RequestDrop(testObj, 3) {
		t.Fatal("redirector approved drop for a host without a replica")
	}
	if r.RequestDrop(object.ID(999), 0) {
		t.Fatal("redirector approved drop for unknown object")
	}
}

func TestChooseReplicaUnknownObject(t *testing.T) {
	topo := topology.Line(3)
	r, _ := newTestRedirector(t, topo, PolicyPaper)
	if _, err := r.ChooseReplica(0, object.ID(5)); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("err = %v, want ErrUnknownObject", err)
	}
}

func TestRoundRobinPolicy(t *testing.T) {
	topo := topology.Line(6)
	r, _ := newTestRedirector(t, topo, PolicyRoundRobin)
	for _, h := range []topology.NodeID{0, 2, 4} {
		r.NotifyReplicaChange(testObj, h, 1)
	}
	counts := drive(t, r, testObj, []topology.NodeID{0}, 9000)
	for _, h := range []topology.NodeID{0, 2, 4} {
		if s := share(counts, h); s < 0.32 || s > 0.35 {
			t.Errorf("round-robin share of host %d = %.3f, want 1/3", h, s)
		}
	}
}

func TestClosestPolicyIgnoresLoad(t *testing.T) {
	topo := topology.Line(6)
	r, _ := newTestRedirector(t, topo, PolicyClosest)
	r.NotifyReplicaChange(testObj, 1, 1)
	r.NotifyReplicaChange(testObj, 5, 1)
	counts := drive(t, r, testObj, []topology.NodeID{0}, 5000)
	if s := share(counts, 1); s != 1 {
		t.Errorf("closest policy sent %.3f to closest, want all (no load sharing)", s)
	}
}

func TestNewRedirectorValidation(t *testing.T) {
	routes := routing.New(topology.Line(3))
	if _, err := NewRedirector(0, nil, PolicyPaper, 2); err == nil {
		t.Error("nil routes accepted")
	}
	if _, err := NewRedirector(0, routes, PolicyPaper, 1); err == nil {
		t.Error("distribution constant 1 accepted")
	}
	if _, err := NewRedirector(0, routes, Policy(9), 2); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestReplicasReturnsCopy(t *testing.T) {
	topo := topology.Line(3)
	r, _ := newTestRedirector(t, topo, PolicyPaper)
	r.NotifyReplicaChange(testObj, 0, 1)
	reps := r.Replicas(testObj)
	reps[0].Rcnt = 999
	if r.Replicas(testObj)[0].Rcnt == 999 {
		t.Fatal("Replicas exposed internal state")
	}
	if r.Replicas(object.ID(555)) != nil {
		t.Fatal("Replicas for unknown object should be nil")
	}
}

func TestTotalAffinityAndObjects(t *testing.T) {
	topo := topology.Line(4)
	r, _ := newTestRedirector(t, topo, PolicyPaper)
	r.NotifyReplicaChange(object.ID(1), 0, 2)
	r.NotifyReplicaChange(object.ID(1), 3, 1)
	r.NotifyReplicaChange(object.ID(2), 2, 1)
	if got := r.TotalAffinity(object.ID(1)); got != 3 {
		t.Errorf("TotalAffinity = %d, want 3", got)
	}
	ids := r.Objects()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Errorf("Objects() = %v, want [1 2]", ids)
	}
}

// steadyState runs k random requests with per-gateway weights and returns
// each host's service share (measured over the second half).
func steadyState(r *Redirector, id object.ID, gateways []topology.NodeID, weights []float64, k int, rng *rand.Rand) map[topology.NodeID]float64 {
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		total += w
		cum[i] = total
	}
	counts := make(map[topology.NodeID]int)
	measured := 0
	for i := 0; i < k; i++ {
		u := rng.Float64() * total
		g := gateways[len(gateways)-1]
		for j, c := range cum {
			if u < c {
				g = gateways[j]
				break
			}
		}
		h, err := r.ChooseReplica(g, id)
		if err != nil {
			continue
		}
		if i >= k/2 {
			counts[h]++
			measured++
		}
	}
	shares := make(map[topology.NodeID]float64)
	for h, c := range counts {
		shares[h] = float64(c) / float64(measured)
	}
	return shares
}

// TestTheorem1And2ReplicationBounds empirically verifies the replication
// load bounds on randomized steady demands: after host i replicates to
// host j, i's service share may fall by at most (3/4) of its prior share
// (Thm 1) and j's share may rise by at most 4·(i's prior share)/aff(x_i)
// (Thm 2).
func TestTheorem1And2ReplicationBounds(t *testing.T) {
	const n = 8
	topo := topology.Line(n)
	routes := routing.New(topo)
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		r, err := NewRedirector(0, routes, PolicyPaper, 2)
		if err != nil {
			t.Fatal(err)
		}
		// Random replica set of 1-3 hosts with affinities 1-3.
		numReplicas := rng.Intn(3) + 1
		hosts := rng.Perm(n)[:numReplicas]
		for _, h := range hosts {
			r.NotifyReplicaChange(testObj, topology.NodeID(h), rng.Intn(3)+1)
		}
		gateways := make([]topology.NodeID, n)
		weights := make([]float64, n)
		for i := range gateways {
			gateways[i] = topology.NodeID(i)
			weights[i] = rng.Float64() + 0.01
		}
		pre := steadyState(r, testObj, gateways, weights, 40000, rng)

		// Host i replicates to a host j without a replica.
		i := topology.NodeID(hosts[rng.Intn(numReplicas)])
		var affI int
		for _, rep := range r.Replicas(testObj) {
			if rep.Host == i {
				affI = rep.Aff
			}
		}
		j := topology.NodeID(-1)
		for _, cand := range rng.Perm(n) {
			if _, isReplica := pre[topology.NodeID(cand)]; !isReplica {
				found := false
				for _, rep := range r.Replicas(testObj) {
					if rep.Host == topology.NodeID(cand) {
						found = true
					}
				}
				if !found {
					j = topology.NodeID(cand)
					break
				}
			}
		}
		if j < 0 {
			continue
		}
		r.NotifyReplicaChange(testObj, j, 1)
		post := steadyState(r, testObj, gateways, weights, 40000, rng)

		const tol = 0.04 // sampling/convergence slack on shares
		decrease := pre[i] - post[i]
		if bound := ReplicationSourceMaxDecrease(pre[i]); decrease > bound+tol {
			t.Errorf("trial %d: Thm1 violated: source share fell %.4f > bound %.4f (pre %.4f)",
				trial, decrease, bound, pre[i])
		}
		increase := post[j] - pre[j]
		if bound := ReplicationTargetMaxIncrease(pre[i], affI); increase > bound+tol {
			t.Errorf("trial %d: Thm2 violated: target share rose %.4f > bound %.4f (pre_i %.4f aff %d)",
				trial, increase, bound, pre[i], affI)
		}
	}
}

// TestTheorem3And4MigrationBounds does the same for migration: one
// affinity unit of i moves to j.
func TestTheorem3And4MigrationBounds(t *testing.T) {
	const n = 8
	topo := topology.Line(n)
	routes := routing.New(topo)
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(5000 + trial)))
		r, err := NewRedirector(0, routes, PolicyPaper, 2)
		if err != nil {
			t.Fatal(err)
		}
		numReplicas := rng.Intn(3) + 1
		hosts := rng.Perm(n)[:numReplicas]
		affs := make(map[topology.NodeID]int)
		for _, h := range hosts {
			aff := rng.Intn(3) + 1
			affs[topology.NodeID(h)] = aff
			r.NotifyReplicaChange(testObj, topology.NodeID(h), aff)
		}
		gateways := make([]topology.NodeID, n)
		weights := make([]float64, n)
		for i := range gateways {
			gateways[i] = topology.NodeID(i)
			weights[i] = rng.Float64() + 0.01
		}
		pre := steadyState(r, testObj, gateways, weights, 40000, rng)

		i := topology.NodeID(hosts[rng.Intn(numReplicas)])
		affI := affs[i]
		var j topology.NodeID = -1
		for _, cand := range rng.Perm(n) {
			if _, ok := affs[topology.NodeID(cand)]; !ok {
				j = topology.NodeID(cand)
				break
			}
		}
		if j < 0 {
			continue
		}
		// Migrate one unit: create on j, reduce on i (drop i if aff was 1).
		r.NotifyReplicaChange(testObj, j, 1)
		if affI > 1 {
			r.NotifyReplicaChange(testObj, i, affI-1)
		} else if !r.RequestDrop(testObj, i) {
			t.Fatalf("trial %d: drop refused with %d replicas", trial, r.ReplicaCount(testObj))
		}
		post := steadyState(r, testObj, gateways, weights, 40000, rng)

		const tol = 0.04
		decrease := pre[i] - post[i]
		if bound := MigrationSourceMaxDecrease(pre[i], affI); decrease > bound+tol {
			t.Errorf("trial %d: Thm3 violated: source fell %.4f > bound %.4f", trial, decrease, bound)
		}
		increase := post[j] - pre[j]
		if bound := MigrationTargetMaxIncrease(pre[i], affI); increase > bound+tol {
			t.Errorf("trial %d: Thm4 violated: target rose %.4f > bound %.4f", trial, increase, bound)
		}
	}
}

// TestTheorem5FloorAfterReplication: when the source's unit service rate
// exceeds m, every replica's post-replication unit rate stays above ~m/4.
func TestTheorem5FloorAfterReplication(t *testing.T) {
	const n = 8
	topo := topology.Line(n)
	routes := routing.New(topo)
	checked := 0
	for trial := 0; trial < 80 && checked < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(9000 + trial)))
		r, err := NewRedirector(0, routes, PolicyPaper, 2)
		if err != nil {
			t.Fatal(err)
		}
		numReplicas := rng.Intn(2) + 1
		hosts := rng.Perm(n)[:numReplicas]
		affs := make(map[topology.NodeID]int)
		for _, h := range hosts {
			aff := rng.Intn(2) + 1
			affs[topology.NodeID(h)] = aff
			r.NotifyReplicaChange(testObj, topology.NodeID(h), aff)
		}
		gateways := make([]topology.NodeID, n)
		weights := make([]float64, n)
		for i := range gateways {
			gateways[i] = topology.NodeID(i)
			weights[i] = rng.Float64() + 0.01
		}
		pre := steadyState(r, testObj, gateways, weights, 40000, rng)
		// Treat total rate as 1 req/s; m is a share threshold here.
		const m = 0.3
		i := topology.NodeID(hosts[0])
		if pre[i]/float64(affs[i]) <= m {
			continue // precondition of Theorem 5 not met
		}
		checked++
		var j topology.NodeID = -1
		for _, cand := range rng.Perm(n) {
			if _, ok := affs[topology.NodeID(cand)]; !ok {
				j = topology.NodeID(cand)
				break
			}
		}
		r.NotifyReplicaChange(testObj, j, 1)
		post := steadyState(r, testObj, gateways, weights, 40000, rng)
		floor := MinUnitAccessAfterReplication(m)
		for _, rep := range r.Replicas(testObj) {
			unit := post[rep.Host] / float64(rep.Aff)
			if unit < floor*0.9 {
				t.Errorf("trial %d: replica %d unit rate %.4f below Thm5 floor %.4f",
					trial, rep.Host, unit, floor)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no trial met the Theorem 5 precondition; fixture broken")
	}
}

func TestChooseReplicaDistanceTieBreak(t *testing.T) {
	// Two replicas equidistant from the gateway: the smaller host ID is
	// the deterministic "closest".
	topo := topology.Star(5) // leaves 1..4 all at distance 2 from each other
	r, _ := newTestRedirector(t, topo, PolicyPaper)
	r.NotifyReplicaChange(testObj, 3, 1)
	r.NotifyReplicaChange(testObj, 4, 1)
	h, err := r.ChooseReplica(1, testObj)
	if err != nil {
		t.Fatal(err)
	}
	if h != 3 {
		t.Fatalf("tie broken to %d, want smaller ID 3", h)
	}
}

func TestRoundRobinCursorSurvivesReplicaChange(t *testing.T) {
	topo := topology.Line(6)
	r, _ := newTestRedirector(t, topo, PolicyRoundRobin)
	r.NotifyReplicaChange(testObj, 0, 1)
	r.NotifyReplicaChange(testObj, 2, 1)
	if _, err := r.ChooseReplica(0, testObj); err != nil {
		t.Fatal(err)
	}
	// Growing the set must not break rotation.
	r.NotifyReplicaChange(testObj, 4, 1)
	seen := map[topology.NodeID]int{}
	for i := 0; i < 300; i++ {
		h, err := r.ChooseReplica(0, testObj)
		if err != nil {
			t.Fatal(err)
		}
		seen[h]++
	}
	for _, h := range []topology.NodeID{0, 2, 4} {
		if seen[h] != 100 {
			t.Fatalf("host %d served %d of 300, want exact rotation", h, seen[h])
		}
	}
}

func TestObjectsAreIsolated(t *testing.T) {
	// Heavy traffic to one object must not affect another's distribution.
	topo := topology.Line(6)
	r, _ := newTestRedirector(t, topo, PolicyPaper)
	a, b := object.ID(1), object.ID(2)
	r.NotifyReplicaChange(a, 0, 1)
	r.NotifyReplicaChange(a, 5, 1)
	r.NotifyReplicaChange(b, 0, 1)
	r.NotifyReplicaChange(b, 5, 1)
	for i := 0; i < 10000; i++ {
		if _, err := r.ChooseReplica(0, a); err != nil {
			t.Fatal(err)
		}
	}
	// Object b's counts are untouched: its first request from gateway 5
	// goes to its local replica 5.
	h, err := r.ChooseReplica(5, b)
	if err != nil {
		t.Fatal(err)
	}
	if h != 5 {
		t.Fatalf("object b routed to %d, want its closest replica 5", h)
	}
	for _, rep := range r.Replicas(b) {
		if rep.Host == 0 && rep.Rcnt != 1 {
			t.Fatalf("object b contaminated by object a's traffic: %+v", rep)
		}
	}
}

func TestPurgeHost(t *testing.T) {
	topo := topology.Line(4)
	r, _ := newTestRedirector(t, topo, PolicyPaper)
	r.NotifyReplicaChange(object.ID(1), 0, 1)
	r.NotifyReplicaChange(object.ID(1), 2, 1)
	r.NotifyReplicaChange(object.ID(2), 2, 1) // sole replica on the victim
	affected := r.PurgeHost(2)
	if len(affected) != 2 || affected[0] != 1 || affected[1] != 2 {
		t.Fatalf("affected = %v, want [1 2]", affected)
	}
	if got := r.ReplicaCount(object.ID(1)); got != 1 {
		t.Fatalf("object 1 replicas = %d, want 1", got)
	}
	if got := r.ReplicaCount(object.ID(2)); got != 0 {
		t.Fatalf("object 2 replicas = %d, want 0 (unavailable)", got)
	}
	if _, err := r.ChooseReplica(0, object.ID(2)); err == nil {
		t.Fatal("routed request to purged sole replica")
	}
	// Recovery: re-register and route again.
	r.NotifyReplicaChange(object.ID(2), 2, 1)
	if _, err := r.ChooseReplica(0, object.ID(2)); err != nil {
		t.Fatalf("routing after recovery failed: %v", err)
	}
}

// benchRedirector builds a redirector over the full UUNET backbone with
// nReplicas replicas of testObj spread across the nodes.
func benchRedirector(b *testing.B, policy Policy, nReplicas int) *Redirector {
	b.Helper()
	routes := routing.New(topology.UUNET())
	r, err := NewRedirector(routes.MinAvgDistanceNode(), routes, policy, 2)
	if err != nil {
		b.Fatal(err)
	}
	n := routes.NumNodes()
	for i := 0; i < nReplicas; i++ {
		r.NotifyReplicaChange(testObj, topology.NodeID((i*n)/nReplicas), 1)
	}
	return r
}

// BenchmarkChooseReplica measures the Fig. 2 per-request decision on the
// UUNET backbone — the redirector's hot path, which must not allocate.
func BenchmarkChooseReplica(b *testing.B) {
	for _, nReplicas := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("replicas=%d", nReplicas), func(b *testing.B) {
			r := benchRedirector(b, PolicyPaper, nReplicas)
			n := 53 // UUNET nodes
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.ChooseReplica(topology.NodeID(i%n), testObj); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
