package protocol

import (
	"time"

	"radar/internal/object"
	"radar/internal/topology"
)

// ObjectState is the control state a host keeps per hosted object
// (paper §4.1): the replica's affinity and, for every node that appeared
// on the preference paths of requests serviced since the last placement
// run, the number of those appearances.
type ObjectState struct {
	// Aff is this replica's affinity.
	Aff int
	// Cnt[p] is the access count of candidate p: how many preference
	// paths of requests for this object p appeared on since the last
	// placement decision. Cnt[own host] is the total access count,
	// because the servicing host heads every preference path. int32 is
	// ample for one observation window (minutes at a few thousand req/s)
	// and halves the cache footprint of the per-request increments, which
	// dominate the protocol layer's profile.
	Cnt []int32
	// AcquiredAt is when this host obtained the replica. An object
	// acquired partway through the current observation window is exempt
	// from placement decisions for that window: judging it on a partial
	// window would systematically under-estimate its unit access count
	// and drop freshly created replicas (the same measurement-hygiene
	// principle as §2.1's load estimates).
	AcquiredAt time.Duration
}

func newObjectState(numNodes int) *ObjectState {
	return &ObjectState{Aff: 1, Cnt: make([]int32, numNodes)}
}

// recordPath charges one appearance to every node on a preference path.
func (st *ObjectState) recordPath(path []topology.NodeID) {
	for _, p := range path {
		st.Cnt[p]++
	}
}

// reset clears all access counts for the next placement period.
func (st *ObjectState) reset() {
	for i := range st.Cnt {
		st.Cnt[i] = 0
	}
}

// unitAccess returns the unit access count cnt(s,x_s)/aff(x_s) as a rate
// (requests/sec) over a period of periodSec seconds.
func (st *ObjectState) unitAccess(self topology.NodeID, periodSec float64) float64 {
	if periodSec <= 0 {
		return 0
	}
	return float64(st.Cnt[self]) / (float64(st.Aff) * periodSec)
}

// candidates appends all nodes with non-zero access counts other than the
// host itself to buf[:0], in ascending node order; the caller reorders by
// distance. Passing a reused buffer keeps the placement pass allocation-
// free.
func (st *ObjectState) candidates(self topology.NodeID, buf []topology.NodeID) []topology.NodeID {
	out := buf[:0]
	for p, c := range st.Cnt {
		if c > 0 && topology.NodeID(p) != self {
			out = append(out, topology.NodeID(p))
		}
	}
	return out
}

// Method distinguishes the two CreateObj request kinds (Fig. 4).
type Method int

// CreateObj methods.
const (
	// Migrate asks the candidate to take over one affinity unit; the
	// source will drop its unit once the copy exists.
	Migrate Method = iota + 1
	// Replicate asks the candidate to host an additional affinity unit.
	Replicate
	// Repair is a replication issued by the replica-floor repair pass with
	// the availability-aware objective armed: the target accepts it against
	// the availability-relaxed watermark lw + w·(hw-lw) instead of lw, so
	// floor restoration may consume load-balancing headroom in proportion
	// to Params.AvailabilityWeight. With w = 0 repair uses plain Replicate
	// and this method never appears on the wire.
	Repair
)

// String returns the method's wire name.
func (m Method) String() string {
	switch m {
	case Migrate:
		return "MIGRATE"
	case Replicate:
		return "REPLICATE"
	case Repair:
		return "REPAIR"
	default:
		return "UNKNOWN"
	}
}

// MoveKind classifies a relocation for observers: geo moves are made for
// proximity by DecidePlacement, load moves by the offloading protocol
// (paper §2.2 terminology: geo-migrated vs load-migrated).
type MoveKind int

// Relocation kinds.
const (
	GeoMove MoveKind = iota + 1
	LoadMove
	// RepairMove is a replication made to restore an object's replica
	// count to Params.ReplicaFloor after failures thinned it — the
	// availability extension, not a paper mechanism.
	RepairMove
)

// String returns the kind's report name.
func (k MoveKind) String() string {
	switch k {
	case GeoMove:
		return "geo"
	case RepairMove:
		return "repair"
	default:
		return "load"
	}
}

// Observer receives placement protocol events; the simulator's metrics
// collector implements it. All methods must be cheap and must not call
// back into the protocol.
type Observer interface {
	// OnMigrate fires when one affinity unit of id moved from -> to.
	OnMigrate(now time.Duration, id object.ID, from, to topology.NodeID, kind MoveKind)
	// OnReplicate fires when to accepted a new affinity unit of id.
	OnReplicate(now time.Duration, id object.ID, from, to topology.NodeID, kind MoveKind)
	// OnDrop fires when host dropped its whole replica of id.
	OnDrop(now time.Duration, id object.ID, host topology.NodeID)
	// OnRefuse fires when a CreateObj request was refused.
	OnRefuse(now time.Duration, id object.ID, from, to topology.NodeID, method Method)
}

// DeferralObserver is an optional Observer extension: observers that also
// implement it receive deferral events from the unreliable control plane's
// degradation policy (a placement move whose CreateObj handshake exhausted
// its retry budget is deferred to the next placement interval rather than
// silently dropped). Kept separate from Observer so existing observers —
// trace writers, test recorders — keep compiling unchanged.
type DeferralObserver interface {
	// OnDefer fires when from deferred a placement move of id to `to`
	// because the control plane lost the handshake.
	OnDefer(now time.Duration, id object.ID, from, to topology.NodeID, method Method)
}

// nopObserver is used when no observer is wired.
type nopObserver struct{}

func (nopObserver) OnMigrate(time.Duration, object.ID, topology.NodeID, topology.NodeID, MoveKind) {}
func (nopObserver) OnReplicate(time.Duration, object.ID, topology.NodeID, topology.NodeID, MoveKind) {
}
func (nopObserver) OnDrop(time.Duration, object.ID, topology.NodeID)                            {}
func (nopObserver) OnRefuse(time.Duration, object.ID, topology.NodeID, topology.NodeID, Method) {}
