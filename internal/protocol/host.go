package protocol

import (
	"fmt"
	"sort"
	"time"

	"radar/internal/object"
	"radar/internal/routing"
	"radar/internal/store"
	"radar/internal/topology"
)

// RedirectorControl is the control-plane interface a host needs from the
// redirector responsible for an object: replica-set notifications and
// deletion arbitration. *Redirector implements it; the simulator may wrap
// it to add network charging.
type RedirectorControl interface {
	NotifyReplicaChange(id object.ID, host topology.NodeID, aff int)
	RequestDrop(id object.ID, host topology.NodeID) bool
	ReplicaCount(id object.ID) int
	// ReplicaHosts appends the hosts currently recorded for id to buf and
	// returns it, sorted by host ID. The availability-aware candidate
	// ordering reads it; pass a reusable buffer to keep the placement pass
	// allocation-free.
	ReplicaHosts(id object.ID, buf []topology.NodeID) []topology.NodeID
}

// CreateObjRequest is the wire-shaped payload of a CreateObj handshake
// (Fig. 4): every field the callee-side handler needs, with no captured Go
// state, so a transport can marshal it across a process boundary. The
// callee resolves it as CreateObj(arrivalTime, Method, Object, UnitLoad,
// SrcAff, From).
type CreateObjRequest struct {
	From     topology.NodeID
	To       topology.NodeID
	Method   Method
	Object   object.ID
	UnitLoad float64
	SrcAff   int
}

// NewPeerStub builds a Host that stands in for a peer living in another
// process: it carries only the node identity and a load source answering
// the offload protocol's recipient-load reads (Fig. 5 consults the
// recipient's accept-side load estimate; a remote stub's source reports
// the value fetched from the real peer, and the stub's own estimator stays
// permanently inactive so the fetched value passes through unmodified).
// A live transport wires Env.Peer to return stubs; every actual protocol
// interaction with the remote host travels through Env.SendCreateObj and
// the redirector control interface, never through stub methods.
func NewPeerStub(id topology.NodeID, loads LoadSource) *Host {
	return &Host{ID: id, loads: loads}
}

// CreateObjStatus is the caller-visible outcome of a CreateObj handshake.
type CreateObjStatus int

// CreateObj handshake outcomes.
const (
	// CreateAccepted: the peer accepted and the reply arrived.
	CreateAccepted CreateObjStatus = iota + 1
	// CreateRefused: the peer refused (watermark, storage, or halt guard).
	CreateRefused
	// CreateLost: the control plane exhausted its retry budget without a
	// confirmed reply. The caller cannot distinguish "request never
	// arrived" from "accepted, reply lost"; re-issuing with the returned
	// token is safe (idempotent), and anti-entropy reconciliation heals
	// any replica the lost exchange did create.
	CreateLost
)

// Env wires a host into its world. All fields except Observer,
// CanReplicate and SendCreateObj are required.
type Env struct {
	// Routes answers distance and preference-path queries (the stand-in
	// for the router databases of a real deployment).
	Routes *routing.Table
	// RedirectorFor returns the redirector responsible for an object
	// (the URL namespace may be hash-partitioned over several).
	RedirectorFor func(id object.ID) RedirectorControl
	// Peer returns the host running on node p, for CreateObj requests.
	Peer func(p topology.NodeID) *Host
	// FindRecipient locates an offload recipient: a host (other than
	// exclude) whose load is below the low watermark. It models the
	// periodic load-report exchange of §4.2.2.
	FindRecipient func(exclude topology.NodeID) (topology.NodeID, bool)
	// CopyObject charges an object transfer from -> to to the network.
	CopyObject func(now time.Duration, from, to topology.NodeID, id object.ID)
	// CanReplicate, if non-nil, gates replication per object — the
	// consistency hook of §5 (category-3 objects cap their replica
	// count). Migration is never gated.
	CanReplicate func(id object.ID, currentReplicas int) bool
	// FindRepairTarget locates a host able to take a repair replica of id:
	// a live host below the low watermark not already holding the object.
	// now is the repair pass time, so selection can consult time-dependent
	// host state (e.g. the acquisition-halt guard). Required when
	// Params.ReplicaFloor > 1; unused otherwise.
	FindRepairTarget func(now time.Duration, id object.ID, from topology.NodeID) (topology.NodeID, bool)
	// SendCreateObj, if non-nil, carries CreateObj handshakes over a
	// control-plane transport: it delivers req from req.From to req.To,
	// runs the callee-side handler at most once per token at the request's
	// arrival time, and reports the outcome, the message token (pass it
	// back to re-issue a CreateLost exchange with the same identity), and
	// the caller-side completion time. The request is fully serializable so
	// a transport may marshal it onto the wire; exec is a convenience for
	// in-process transports (the simulator's lossy plane) and equals
	// running CreateObj on the req.To host with req's fields — a remote
	// transport ignores it and invokes the peer's handler instead. Nil
	// resolves handshakes inline and reliably — the paper's instantaneous
	// model.
	SendCreateObj func(now time.Duration, req CreateObjRequest, token uint64, exec func(at time.Duration) bool) (CreateObjStatus, uint64, time.Duration)
	// Store, if non-nil, is this host's replica-storage backend stack.
	// CreateObj charges each accepted new replica to it as the last
	// admission check (a full backend refuses like §2.1 storage
	// capacity), and affinity drops release it. Serve costs are charged
	// by the simulator's request path, not here. Nil — like the default
	// unbounded memory stack — preserves the paper's costless-storage
	// model.
	Store store.ReplicaStore
	// Observer, if non-nil, receives placement events.
	Observer Observer
}

func (e *Env) validate() error {
	switch {
	case e.Routes == nil:
		return fmt.Errorf("%w: Routes", ErrNilDependency)
	case e.RedirectorFor == nil:
		return fmt.Errorf("%w: RedirectorFor", ErrNilDependency)
	case e.Peer == nil:
		return fmt.Errorf("%w: Peer", ErrNilDependency)
	case e.FindRecipient == nil:
		return fmt.Errorf("%w: FindRecipient", ErrNilDependency)
	case e.CopyObject == nil:
		return fmt.Errorf("%w: CopyObject", ErrNilDependency)
	}
	return nil
}

// Host is one hosting server's placement state machine. It services
// requests (accumulating access counts), periodically runs the replica
// placement algorithm of Fig. 3, serves CreateObj requests from peers
// (Fig. 4), and offloads under high load (Fig. 5). Host is not safe for
// concurrent use; the simulation is a sequential program over virtual time.
type Host struct {
	// ID is the node this host runs on.
	ID topology.NodeID

	params   Params
	env      Env
	loads    LoadSource
	est      LoadEstimator
	objects  map[object.ID]*ObjectState
	numNodes int

	offloading    bool
	lastPlacement time.Duration
	// deferred holds placement moves whose CreateObj handshake was lost;
	// they are re-issued with the same token at the next placement run
	// (the degradation policy of the unreliable control plane). Nil until
	// the first loss, so reliable runs never touch it.
	deferred map[object.ID]deferredMove
	// deferObs is env.Observer's DeferralObserver side, resolved once.
	deferObs DeferralObserver
	// candBuf is the reusable candidate scratch buffer for the placement
	// pass; its contents are only valid within one candidatesByDistanceDesc
	// call chain. replBuf and availBuf are the availability-aware ordering's
	// scratch buffers (replica hosts and scored candidates), with the same
	// single-call lifetime.
	candBuf  []topology.NodeID
	replBuf  []topology.NodeID
	availBuf []availCand

	// Stats accumulates protocol activity counters for reports.
	Stats HostStats
}

// HostStats counts a host's protocol activity.
type HostStats struct {
	GeoMigrations    int64
	GeoReplications  int64
	LoadMigrations   int64
	LoadReplications int64
	Drops            int64
	AffinityDecrs    int64
	RefusalsSent     int64
	RefusalsGot      int64
	OffloadRuns      int64
	Accepted         int64
	// RepairReplications counts replications made to restore objects to the
	// replica floor after failures (the availability extension).
	RepairReplications int64
	// CreateLost counts CreateObj handshakes abandoned after the control
	// plane's retry budget (unreliable control plane only).
	CreateLost int64
	// DeferredMoves counts placement moves deferred to a later placement
	// interval after a lost handshake (each re-deferral counts again);
	// DeferredCompleted counts deferred moves that later went through.
	DeferredMoves     int64
	DeferredCompleted int64
	// Refusal breakdown by which guard fired.
	RefusedHalt    int64 // relocation halt while estimates stay dirty
	RefusedLW      int64 // accept-side load at or above the low watermark
	RefusedHW      int64 // migration would push load past the high watermark
	RefusedStorage int64 // storage capacity exhausted (§2.1 vector load)
}

// Params returns the host's effective (possibly weight-scaled) parameters.
func (h *Host) Params() Params { return h.params }

// NewHost builds a host on node id with the given parameters, wiring and
// load source.
func NewHost(id topology.NodeID, params Params, env Env, loads LoadSource) (*Host, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if err := env.validate(); err != nil {
		return nil, err
	}
	if loads == nil {
		return nil, fmt.Errorf("%w: loads", ErrNilDependency)
	}
	if params.ReplicaFloor > 1 && env.FindRepairTarget == nil {
		return nil, fmt.Errorf("%w: FindRepairTarget (required when ReplicaFloor > 1)", ErrNilDependency)
	}
	if env.Observer == nil {
		env.Observer = nopObserver{}
	}
	deferObs, _ := env.Observer.(DeferralObserver)
	return &Host{
		deferObs: deferObs,
		ID:       id,
		params:   params,
		env:      env,
		loads:    loads,
		objects:  make(map[object.ID]*ObjectState),
		numNodes: env.Routes.NumNodes(),
		candBuf:  make([]topology.NodeID, 0, env.Routes.NumNodes()),
	}, nil
}

// SeedObject installs an initial replica (simulation bootstrap). It does
// not notify the redirector; the simulator seeds both sides.
func (h *Host) SeedObject(id object.ID) {
	if _, ok := h.objects[id]; !ok {
		st := newObjectState(h.numNodes)
		st.AcquiredAt = -1 // before any window: immediately eligible
		h.objects[id] = st
	}
}

// Has reports whether the host currently holds a replica of id.
func (h *Host) Has(id object.ID) bool {
	_, ok := h.objects[id]
	return ok
}

// Affinity returns the affinity of the host's replica of id (0 if absent).
func (h *Host) Affinity(id object.ID) int {
	if st, ok := h.objects[id]; ok {
		return st.Aff
	}
	return 0
}

// Objects returns the IDs of all hosted objects, sorted.
func (h *Host) Objects() []object.ID {
	ids := make([]object.ID, 0, len(h.objects))
	for id := range h.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// NumObjects returns the number of hosted objects.
func (h *Host) NumObjects() int { return len(h.objects) }

// Offloading reports whether the host is in offloading mode.
func (h *Host) Offloading() bool { return h.offloading }

// Estimator exposes the host's load estimator (read-only use by metrics).
func (h *Host) Estimator() *LoadEstimator { return &h.est }

// OnRequest records a serviced request for id that entered at gateway g:
// every node on the preference path from this host to g is charged one
// access-count appearance (paper §4.1). Requests for objects the host no
// longer holds (dropped while queued) are counted against no state.
func (h *Host) OnRequest(id object.ID, g topology.NodeID) {
	st, ok := h.objects[id]
	if !ok {
		return
	}
	st.recordPath(h.env.Routes.PreferencePath(h.ID, g))
}

// OnMeasurementIntervalClose informs the host that the load measurement
// interval which began at start completed, letting estimates retire
// (paper §2.1).
func (h *Host) OnMeasurementIntervalClose(start time.Duration) {
	h.est.OnIntervalClose(start)
}

// OnCrash models a host failure wiping the host's in-memory control state:
// load estimates, offloading mode and access counts are discarded. Hosted
// objects survive (disk state) so the host can re-register its replicas on
// recovery.
func (h *Host) OnCrash() {
	h.est.Reset()
	h.offloading = false
	h.deferred = nil
	for _, st := range h.objects {
		st.reset()
	}
}

// OnRecover prepares a host returning to service at virtual time now:
// every hosted object is marked as freshly acquired so the first placement
// pass after recovery — whose window reaches back over the downtime
// silence and covers at most a sliver of post-recovery traffic — skips
// them, the same measurement-hygiene rule applied to mid-window
// acquisitions. lastPlacement deliberately stays at the last pre-crash
// pass (strictly before now), which is what makes AcquiredAt > prev hold
// for every survivor; decisions resume one full clean window later.
func (h *Host) OnRecover(now time.Duration) {
	for _, st := range h.objects {
		st.AcquiredAt = now
	}
}

// PlacementSummary reports what one DecidePlacement run did.
type PlacementSummary struct {
	Dropped     int
	Migrated    int
	Replicated  int
	AffReduced  int
	OffloadRan  bool
	OffloadSent int
	// Repaired counts replica-floor repair replications made this run.
	Repaired int
	// Deferred is the number of placement moves still deferred to the next
	// placement interval when this run ended (lost handshakes awaiting
	// same-token retry).
	Deferred int
}

// moved reports whether any object was dropped, migrated or replicated.
func (s PlacementSummary) moved() bool {
	return s.Dropped > 0 || s.Migrated > 0 || s.Replicated > 0 || s.AffReduced > 0
}

// DecidePlacement runs the replica placement algorithm of Fig. 3 at
// virtual time now: update the offloading mode against the watermarks,
// then for every hosted object decide among dropping an affinity unit
// (unit access count below u), geo-migrating (a candidate appears on more
// than MIGR_RATIO of preference paths), or geo-replicating (unit access
// count above m and a candidate above REPL_RATIO); finally, if the host is
// offloading and the geo pass moved nothing, run the offloading protocol.
// Access counts are reset at the end of the run.
func (h *Host) DecidePlacement(now time.Duration) PlacementSummary {
	var sum PlacementSummary
	prev := h.lastPlacement
	period := (now - prev).Seconds()
	h.lastPlacement = now
	if period <= 0 {
		return sum
	}

	load := h.est.LoadForOffload(h.loads.Load())
	if load > h.params.HighWatermark {
		h.offloading = true
	}
	if load < h.params.LowWatermark {
		h.offloading = false
	}

	if len(h.deferred) > 0 {
		h.retryDeferred(now, &sum)
	}

	if h.params.ReplicaFloor > 1 {
		sum.Repaired = h.repairReplicas(now)
	}

	hasDeferred := len(h.deferred) > 0
	for _, id := range h.Objects() {
		st, ok := h.objects[id]
		if !ok {
			continue // dropped earlier in this run
		}
		if hasDeferred {
			if _, pending := h.deferred[id]; pending {
				continue // a lost move is still in flight toward its target
			}
		}
		if st.AcquiredAt > prev {
			continue // acquired mid-window: no full observation yet
		}
		ua := st.unitAccess(h.ID, period)
		dropped, migrated := false, false
		if ua < h.params.DeletionThreshold {
			switch h.reduceAffinity(now, id, st) {
			case affDropped:
				dropped = true
				sum.Dropped++
			case affDecremented:
				sum.AffReduced++
			case affUnchanged:
				// Sole replica of a cold object: the redirector refused
				// the drop; the object stays put.
			}
		} else {
			if to, ok := h.tryGeoMigrate(now, id, st); ok {
				migrated = true
				sum.Migrated++
				h.Stats.GeoMigrations++
				h.env.Observer.OnMigrate(now, id, h.ID, to, GeoMove)
			}
		}
		if !dropped && !migrated && ua > h.params.ReplicationThreshold {
			if to, ok := h.tryGeoReplicate(now, id, st); ok {
				sum.Replicated++
				h.Stats.GeoReplications++
				h.env.Observer.OnReplicate(now, id, h.ID, to, GeoMove)
			}
		}
	}

	// Offload when the geo pass gave no relief: either it moved nothing
	// (the Fig. 3 condition) or, despite its moves, the lower-bound load
	// estimate still exceeds the high watermark — without the second arm
	// a host whose geo pass always sheds a trickle would stay overloaded
	// forever while idle far-away hosts are never considered, because geo
	// moves can only target nodes on preference paths.
	if h.offloading &&
		(!sum.moved() || h.est.LoadForOffload(h.loads.Load()) > h.params.HighWatermark) {
		sum.OffloadRan = true
		sum.OffloadSent = h.offload(now, period)
		h.Stats.OffloadRuns++
	}

	for _, st := range h.objects {
		st.reset()
	}
	sum.Deferred = len(h.deferred)
	return sum
}

// createObj performs the CreateObj handshake with peer: inline and
// reliable when Env.SendCreateObj is nil (the paper's instantaneous
// model), otherwise as a retried RPC over the lossy control plane. It
// returns the outcome, the message token (re-issue a CreateLost exchange
// with it to keep the same identity), and the caller-side completion time
// (now on the inline path, so downstream bookkeeping is unchanged there).
func (h *Host) createObj(now time.Duration, peer *Host, method Method, id object.ID, unitLoad float64, srcAff int, token uint64) (CreateObjStatus, uint64, time.Duration) {
	if h.env.SendCreateObj == nil {
		if peer.CreateObj(now, method, id, unitLoad, srcAff, h.ID) {
			return CreateAccepted, 0, now
		}
		return CreateRefused, 0, now
	}
	req := CreateObjRequest{
		From:     h.ID,
		To:       peer.ID,
		Method:   method,
		Object:   id,
		UnitLoad: unitLoad,
		SrcAff:   srcAff,
	}
	status, tok, doneAt := h.env.SendCreateObj(now, req, token, func(at time.Duration) bool {
		return peer.CreateObj(at, method, id, unitLoad, srcAff, h.ID)
	})
	if status == CreateLost {
		h.Stats.CreateLost++
	}
	return status, tok, doneAt
}

// deferMove records a placement move whose handshake was lost, to be
// re-issued with the same token at the next placement run.
func (h *Host) deferMove(now time.Duration, id object.ID, to topology.NodeID, method Method, token uint64) {
	if h.deferred == nil {
		h.deferred = make(map[object.ID]deferredMove)
	}
	h.deferred[id] = deferredMove{to: to, method: method, token: token}
	h.Stats.DeferredMoves++
	if h.deferObs != nil {
		h.deferObs.OnDefer(now, id, h.ID, to, method)
	}
}

// deferredMove is one placement move awaiting same-token retry.
type deferredMove struct {
	to     topology.NodeID
	method Method
	token  uint64
}

// DeferredCount returns the number of placement moves currently deferred.
func (h *Host) DeferredCount() int { return len(h.deferred) }

// retryDeferred re-issues placement moves whose CreateObj was lost in an
// earlier interval, each with its original message token: if the lost
// request actually reached its target, the control plane replays the
// cached verdict instead of running CreateObj again, so a move completes
// exactly once. Accepted moves perform their source-side effects now (they
// could not safely run at loss time — the caller did not know whether the
// replica existed); refusals abandon the deferral; a re-lost exchange is
// deferred again.
func (h *Host) retryDeferred(now time.Duration, sum *PlacementSummary) {
	ids := make([]object.ID, 0, len(h.deferred))
	for id := range h.deferred {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		d := h.deferred[id]
		st, ok := h.objects[id]
		if !ok {
			delete(h.deferred, id) // replica gone meanwhile; nothing to move
			continue
		}
		peer := h.env.Peer(d.to)
		if peer == nil {
			continue // target down: hold the deferral for the next interval
		}
		objLoad := h.loads.ObjectLoad(id)
		unitLoad := objLoad / float64(st.Aff)
		status, tok, doneAt := h.createObj(now, peer, d.method, id, unitLoad, st.Aff, d.token)
		switch status {
		case CreateAccepted:
			delete(h.deferred, id)
			h.Stats.DeferredCompleted++
			if d.method == Migrate {
				h.est.OnShed(doneAt, h.loads.Load(), MigrationSourceMaxDecrease(objLoad, st.Aff))
				h.reduceAffinity(doneAt, id, st)
				sum.Migrated++
				h.Stats.GeoMigrations++
				h.env.Observer.OnMigrate(doneAt, id, h.ID, d.to, GeoMove)
			} else {
				h.est.OnShed(doneAt, h.loads.Load(), ReplicationSourceMaxDecrease(objLoad))
				sum.Replicated++
				h.Stats.GeoReplications++
				h.env.Observer.OnReplicate(doneAt, id, h.ID, d.to, GeoMove)
			}
		case CreateRefused:
			delete(h.deferred, id)
			h.Stats.RefusalsGot++
			h.env.Observer.OnRefuse(now, id, h.ID, d.to, d.method)
		case CreateLost:
			d.token = tok
			h.deferred[id] = d
			h.Stats.DeferredMoves++
			if h.deferObs != nil {
				h.deferObs.OnDefer(now, id, h.ID, d.to, d.method)
			}
		}
	}
}

// repairReplicas restores hosted objects whose recorded replica count fell
// below Params.ReplicaFloor (failures thinned the set) by replicating them
// to targets chosen by Env.FindRepairTarget. It runs before the Fig. 3 pass
// so availability repair is not starved by geo decisions. Returns the
// number of repair replications made.
func (h *Host) repairReplicas(now time.Duration) int {
	repaired := 0
	for _, id := range h.Objects() {
		st, ok := h.objects[id]
		if !ok {
			continue
		}
		red := h.env.RedirectorFor(id)
		count := red.ReplicaCount(id)
		if count == 0 {
			// This host's own replica is not registered (it crashed and has
			// not re-registered yet); nothing sensible to repair from.
			continue
		}
		for count < h.params.ReplicaFloor {
			if h.env.CanReplicate != nil && !h.env.CanReplicate(id, count) {
				break
			}
			target, ok := h.env.FindRepairTarget(now, id, h.ID)
			if !ok {
				break
			}
			peer := h.env.Peer(target)
			if peer == nil {
				break
			}
			objLoad := h.loads.ObjectLoad(id)
			unitLoad := objLoad / float64(st.Aff)
			// With the availability objective armed, repair travels as the
			// Repair method so the target applies the availability-relaxed
			// accept watermark; at w = 0 it is plain Replicate, byte-for-byte.
			method := Replicate
			if h.params.AvailabilityWeight > 0 {
				method = Repair
			}
			status, _, doneAt := h.createObj(now, peer, method, id, unitLoad, st.Aff, 0)
			if status != CreateAccepted {
				if status == CreateRefused {
					h.Stats.RefusalsGot++
					h.env.Observer.OnRefuse(now, id, h.ID, target, method)
				}
				// A lost repair handshake is retried by the next repair
				// pass; reconciliation heals any replica it did create.
				break
			}
			h.est.OnShed(doneAt, h.loads.Load(), ReplicationSourceMaxDecrease(objLoad))
			h.Stats.RepairReplications++
			h.env.Observer.OnReplicate(doneAt, id, h.ID, target, RepairMove)
			repaired++
			count = red.ReplicaCount(id)
		}
	}
	return repaired
}

// candidatesByDistanceDesc returns the object's candidate nodes ordered by
// decreasing distance from this host (the paper's responsiveness
// heuristic: place replicas on the farthest qualified candidate first).
// Under the NeighborOnly baseline only direct neighbors qualify.
func (h *Host) candidatesByDistanceDesc(st *ObjectState) []topology.NodeID {
	cands := st.candidates(h.ID, h.candBuf)
	if h.params.NeighborOnly {
		kept := cands[:0]
		for _, p := range cands {
			if h.env.Routes.Distance(h.ID, p) == 1 {
				kept = append(kept, p)
			}
		}
		cands = kept
	}
	h.env.Routes.SortByDistanceDesc(h.ID, cands)
	return cands
}

// tryGeoMigrate attempts the migration branch of Fig. 3. It returns the
// recipient on success.
func (h *Host) tryGeoMigrate(now time.Duration, id object.ID, st *ObjectState) (topology.NodeID, bool) {
	total := st.Cnt[h.ID]
	if total == 0 {
		return 0, false
	}
	unitLoad := h.loads.ObjectLoad(id) / float64(st.Aff)
	for _, p := range h.orderCandidates(id, st, Migrate) {
		if float64(st.Cnt[p])/float64(total) <= h.params.MigrRatio {
			continue
		}
		peer := h.env.Peer(p)
		if peer == nil {
			continue
		}
		switch status, tok, doneAt := h.createObj(now, peer, Migrate, id, unitLoad, st.Aff, 0); status {
		case CreateAccepted:
			h.est.OnShed(doneAt, h.loads.Load(), MigrationSourceMaxDecrease(h.loads.ObjectLoad(id), st.Aff))
			h.reduceAffinity(doneAt, id, st)
			return p, true
		case CreateLost:
			// The exchange may have landed; trying the next candidate could
			// double-place. Defer this exact move to the next interval.
			h.deferMove(now, id, p, Migrate, tok)
			return 0, false
		default:
			h.Stats.RefusalsGot++
			h.env.Observer.OnRefuse(now, id, h.ID, p, Migrate)
		}
	}
	return 0, false
}

// tryGeoReplicate attempts the replication branch of Fig. 3. It returns
// the recipient on success.
func (h *Host) tryGeoReplicate(now time.Duration, id object.ID, st *ObjectState) (topology.NodeID, bool) {
	total := st.Cnt[h.ID]
	if total == 0 {
		return 0, false
	}
	if h.env.CanReplicate != nil && !h.env.CanReplicate(id, h.env.RedirectorFor(id).ReplicaCount(id)) {
		return 0, false
	}
	unitLoad := h.loads.ObjectLoad(id) / float64(st.Aff)
	for _, p := range h.orderCandidates(id, st, Replicate) {
		if float64(st.Cnt[p])/float64(total) <= h.params.ReplRatio {
			continue
		}
		peer := h.env.Peer(p)
		if peer == nil {
			continue
		}
		switch status, tok, doneAt := h.createObj(now, peer, Replicate, id, unitLoad, st.Aff, 0); status {
		case CreateAccepted:
			h.est.OnShed(doneAt, h.loads.Load(), ReplicationSourceMaxDecrease(h.loads.ObjectLoad(id)))
			return p, true
		case CreateLost:
			h.deferMove(now, id, p, Replicate, tok)
			return 0, false
		default:
			h.Stats.RefusalsGot++
			h.env.Observer.OnRefuse(now, id, h.ID, p, Replicate)
		}
	}
	return 0, false
}

// affResult is the outcome of a ReduceAffinity attempt.
type affResult int

const (
	affUnchanged affResult = iota
	affDecremented
	affDropped
)

// reduceAffinity implements ReduceAffinity of Fig. 3: decrement the
// replica's affinity, or — when it would reach zero — ask the redirector
// for permission to drop the whole replica (the redirector never allows
// the last replica to go).
func (h *Host) reduceAffinity(now time.Duration, id object.ID, st *ObjectState) affResult {
	red := h.env.RedirectorFor(id)
	if st.Aff > 1 {
		st.Aff--
		h.Stats.AffinityDecrs++
		red.NotifyReplicaChange(id, h.ID, st.Aff)
		return affDecremented
	}
	if red.RequestDrop(id, h.ID) {
		delete(h.objects, id)
		if h.env.Store != nil {
			h.env.Store.Drop(now, id)
		}
		h.Stats.Drops++
		h.env.Observer.OnDrop(now, id, h.ID)
		return affDropped
	}
	return affUnchanged
}

// AcquisitionHalted reports whether the §2.1 footnote 2 guard is active:
// back-to-back acquisitions have kept the upper-bound load estimate alive
// past Params.EstimateHaltAfter, so the host refuses further acquisitions
// until a clean measurement interval completes. Exposed so repair-target
// selection can steer around hosts whose refusal is a foregone conclusion.
func (h *Host) AcquisitionHalted(now time.Duration) bool {
	return h.params.EstimateHaltAfter > 0 && h.est.UpperActiveFor(now) > h.params.EstimateHaltAfter
}

// CreateObj serves a replica creation request from peer host `from`
// (Fig. 4): refuse unless this host's accept-side load is below the low
// watermark; for migrations additionally refuse if the upper-bound load
// after the move would exceed the high watermark (the vicious-cycle guard
// — replications deliberately skip it so an overloaded neighborhood can
// bootstrap replication). On acceptance the object is copied if absent
// (affinity 1) or its affinity incremented, the redirector is notified
// after the fact, and this host's upper-bound load estimate grows by the
// Theorem 2/4 bound 4·unitLoad.
func (h *Host) CreateObj(now time.Duration, method Method, id object.ID, unitLoad float64, srcAff int, from topology.NodeID) bool {
	// §2.1 footnote 2: when back-to-back acquisitions have kept the
	// upper-bound estimate alive too long, halt further acquisitions so a
	// clean measurement interval can complete and real load data returns.
	if h.AcquisitionHalted(now) {
		h.Stats.RefusalsSent++
		h.Stats.RefusedHalt++
		return false
	}
	// Storage component of the vector load (§2.1): a full host refuses.
	// An incoming affinity increment occupies no extra storage.
	if h.params.StorageCapacity > 0 && !h.Has(id) && len(h.objects) >= h.params.StorageCapacity {
		h.Stats.RefusalsSent++
		h.Stats.RefusedStorage++
		return false
	}
	loadForAccept := h.est.LoadForAccept(h.loads.Load())
	// Availability-aware repair accepts against a watermark relaxed from lw
	// toward hw by the availability weight: a floor repair copy is cold (its
	// unit load is the thinned set's, not a hot spot's) and every refusal
	// costs the object a placement interval of single-copy exposure, so the
	// knob deliberately lets floor restoration consume load-balancing
	// headroom in proportion to w.
	acceptCeiling := h.params.LowWatermark
	if method == Repair {
		acceptCeiling += h.params.AvailabilityWeight * (h.params.HighWatermark - h.params.LowWatermark)
	}
	if loadForAccept > acceptCeiling {
		h.Stats.RefusalsSent++
		h.Stats.RefusedLW++
		return false
	}
	if method == Migrate && loadForAccept+4*unitLoad > h.params.HighWatermark {
		h.Stats.RefusalsSent++
		h.Stats.RefusedHW++
		return false
	}
	st, have := h.objects[id]
	if !have {
		// The storage backend is the last admission check: every earlier
		// guard is side-effect free, and a successful backend create
		// commits the placement.
		if h.env.Store != nil && !h.env.Store.Create(now, id) {
			h.Stats.RefusalsSent++
			h.Stats.RefusedStorage++
			return false
		}
		h.env.CopyObject(now, from, h.ID, id)
		st = newObjectState(h.numNodes)
		st.AcquiredAt = now
		h.objects[id] = st
	} else {
		st.Aff++
	}
	h.env.RedirectorFor(id).NotifyReplicaChange(id, h.ID, st.Aff)
	h.est.OnAccept(now, h.loads.Load(), 4*unitLoad)
	h.Stats.Accepted++
	_ = srcAff // affinity travels in the request for symmetry with Fig. 4; bounds use unitLoad directly
	return true
}

// offload implements the host offloading protocol of Fig. 5: find a
// recipient below the low watermark, then walk this host's objects in
// decreasing order of their foreign-request share, migrating those at or
// below the replication threshold and replicating those above it (so a
// load move never undoes a previous geo-replication), updating this
// host's lower-bound and the recipient's upper-bound load estimates after
// every move. The walk stops when either estimate crosses the low
// watermark, a request is refused, or objects run out. It returns the
// number of objects moved.
func (h *Host) offload(now time.Duration, period float64) int {
	rid, ok := h.env.FindRecipient(h.ID)
	if !ok {
		return 0
	}
	if h.params.NeighborOnly && h.env.Routes.Distance(h.ID, rid) != 1 {
		return 0 // the related-work baseline cannot shed to distant hosts
	}
	peer := h.env.Peer(rid)
	if peer == nil {
		return 0
	}
	recipientLoad := peer.est.LoadForAccept(peer.loads.Load())
	moved := 0

	type cand struct {
		id      object.ID
		foreign float64
	}
	windowStart := now - time.Duration(period*float64(time.Second))
	var cands []cand
	for _, id := range h.Objects() {
		st := h.objects[id]
		if st.AcquiredAt > windowStart {
			continue // acquired mid-window: no full observation yet
		}
		total := st.Cnt[h.ID]
		if total == 0 {
			continue
		}
		best := int32(0)
		for p, c := range st.Cnt {
			if topology.NodeID(p) != h.ID && c > best {
				best = c
			}
		}
		cands = append(cands, cand{id: id, foreign: float64(best) / float64(total)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].foreign != cands[j].foreign {
			return cands[i].foreign > cands[j].foreign
		}
		return cands[i].id < cands[j].id
	})

	for _, c := range cands {
		if h.params.MaxOffloadPerRun > 0 && moved >= h.params.MaxOffloadPerRun {
			break
		}
		if h.est.LoadForOffload(h.loads.Load()) <= h.params.LowWatermark || recipientLoad >= h.params.LowWatermark {
			break
		}
		st, ok := h.objects[c.id]
		if !ok {
			continue
		}
		objLoad := h.loads.ObjectLoad(c.id)
		unitLoad := objLoad / float64(st.Aff)
		if st.unitAccess(h.ID, period) <= h.params.ReplicationThreshold {
			status, _, doneAt := h.createObj(now, peer, Migrate, c.id, unitLoad, st.Aff, 0)
			if status != CreateAccepted {
				if status == CreateRefused {
					h.Stats.RefusalsGot++
					h.env.Observer.OnRefuse(now, c.id, h.ID, rid, Migrate)
				}
				// Lost or refused: stop shedding to this recipient — load
				// moves are re-decided from fresh estimates next run, so no
				// deferral is needed.
				break
			}
			h.est.OnShed(doneAt, h.loads.Load(), MigrationSourceMaxDecrease(objLoad, st.Aff))
			recipientLoad += MigrationTargetMaxIncrease(objLoad, st.Aff)
			h.reduceAffinity(doneAt, c.id, st)
			h.Stats.LoadMigrations++
			h.env.Observer.OnMigrate(doneAt, c.id, h.ID, rid, LoadMove)
		} else {
			// Hot objects are only ever replicated during offload (a load
			// migration could undo a previous geo-replication), so when
			// the consistency layer bars replication the object stays.
			if h.env.CanReplicate != nil && !h.env.CanReplicate(c.id, h.env.RedirectorFor(c.id).ReplicaCount(c.id)) {
				continue
			}
			status, _, doneAt := h.createObj(now, peer, Replicate, c.id, unitLoad, st.Aff, 0)
			if status != CreateAccepted {
				if status == CreateRefused {
					h.Stats.RefusalsGot++
					h.env.Observer.OnRefuse(now, c.id, h.ID, rid, Replicate)
				}
				break
			}
			h.est.OnShed(doneAt, h.loads.Load(), ReplicationSourceMaxDecrease(objLoad))
			recipientLoad += ReplicationTargetMaxIncrease(objLoad, st.Aff)
			h.Stats.LoadReplications++
			h.env.Observer.OnReplicate(doneAt, c.id, h.ID, rid, LoadMove)
		}
		moved++
	}
	return moved
}
