package protocol

import (
	"testing"
	"time"

	"radar/internal/topology"
)

// TestNeighborOnlyRestrictsGeoTargets: under the ADR/WebWave-style
// baseline, a far candidate that dominates the preference paths must be
// skipped in favor of the direct neighbor.
func TestNeighborOnlyRestrictsGeoTargets(t *testing.T) {
	params := DefaultParams()
	params.NeighborOnly = true
	c := newCluster(t, topology.Line(6), params)
	c.seed(obj, 0)
	// All requests from the far end: node 5 dominates, but nodes 1..5 all
	// appear on every path; only neighbor 1 is a legal target.
	for i := 0; i < 100; i++ {
		c.hosts[0].OnRequest(obj, 5)
	}
	sum := c.hosts[0].DecidePlacement(100 * time.Second)
	if sum.Migrated != 1 {
		t.Fatalf("Migrated = %d, want 1", sum.Migrated)
	}
	if !c.hosts[1].Has(obj) {
		t.Error("object should have crawled to the direct neighbor")
	}
	for n := 2; n <= 5; n++ {
		if c.hosts[n].Has(obj) {
			t.Errorf("object jumped to non-neighbor %d", n)
		}
	}
}

// TestNeighborOnlyCrawlIsSlow: reaching a distant demand center takes one
// placement round per hop under the baseline, versus one round for the
// paper's direct placement — the §1.1 responsiveness critique.
func TestNeighborOnlyCrawlIsSlow(t *testing.T) {
	mkCluster := func(neighborOnly bool) *cluster {
		params := DefaultParams()
		params.NeighborOnly = neighborOnly
		return newCluster(t, topology.Line(6), params)
	}
	rounds := func(c *cluster) int {
		c.seed(obj, 0)
		for round := 1; round <= 12; round++ {
			holder := topology.NodeID(-1)
			for n := 0; n < 6; n++ {
				if c.hosts[n].Has(obj) {
					holder = topology.NodeID(n)
				}
			}
			if holder == 5 {
				return round - 1
			}
			// Fresh demand from the far end each round, then every host
			// runs its periodic placement (in ID order).
			for i := 0; i < 100; i++ {
				c.hosts[holder].OnRequest(obj, 5)
			}
			for n := 0; n < 6; n++ {
				c.hosts[n].DecidePlacement(time.Duration(round) * 100 * time.Second)
			}
		}
		return 12
	}
	paper := rounds(mkCluster(false))
	crawl := rounds(mkCluster(true))
	if paper != 1 {
		t.Errorf("paper protocol took %d rounds, want 1 (direct distant migration)", paper)
	}
	if crawl != 5 {
		t.Errorf("neighbor-only took %d rounds, want 5 (one hop per round)", crawl)
	}
}

// TestNeighborOnlyOffloadRestricted: the baseline cannot offload to a
// distant recipient.
func TestNeighborOnlyOffloadRestricted(t *testing.T) {
	params := DefaultParams()
	params.NeighborOnly = true
	c := newCluster(t, topology.Line(6), params)
	overloadHostZero(t, c, params, 4, 16, 10)
	// Make the only under-loaded host the far end: recipient would be
	// node 5, which is not a neighbor of 0.
	for i := 1; i <= 4; i++ {
		c.loads[i].total = params.LowWatermark + 1
	}
	sum := c.hosts[0].DecidePlacement(100 * time.Second)
	if !sum.OffloadRan {
		t.Fatalf("offload did not run: %+v", sum)
	}
	if sum.OffloadSent != 0 {
		t.Fatalf("OffloadSent = %d, want 0 (recipient not a neighbor)", sum.OffloadSent)
	}
}
