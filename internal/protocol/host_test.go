package protocol

import (
	"testing"
	"time"

	"radar/internal/object"
	"radar/internal/routing"
	"radar/internal/topology"
)

// fakeLoads is a hand-set LoadSource.
type fakeLoads struct {
	total  float64
	perObj map[object.ID]float64
}

func (f *fakeLoads) Load() float64 { return f.total }

func (f *fakeLoads) ObjectLoad(id object.ID) float64 { return f.perObj[id] }

type copyRec struct {
	from, to topology.NodeID
	id       object.ID
}

type moveRec struct {
	id       object.ID
	from, to topology.NodeID
	kind     MoveKind
	method   Method
}

// recorder implements Observer.
type recorder struct {
	migrates, replicates []moveRec
	drops                []moveRec
	refusals             []moveRec
}

func (r *recorder) OnMigrate(_ time.Duration, id object.ID, from, to topology.NodeID, kind MoveKind) {
	r.migrates = append(r.migrates, moveRec{id: id, from: from, to: to, kind: kind})
}

func (r *recorder) OnReplicate(_ time.Duration, id object.ID, from, to topology.NodeID, kind MoveKind) {
	r.replicates = append(r.replicates, moveRec{id: id, from: from, to: to, kind: kind})
}

func (r *recorder) OnDrop(_ time.Duration, id object.ID, host topology.NodeID) {
	r.drops = append(r.drops, moveRec{id: id, from: host})
}

func (r *recorder) OnRefuse(_ time.Duration, id object.ID, from, to topology.NodeID, m Method) {
	r.refusals = append(r.refusals, moveRec{id: id, from: from, to: to, method: m})
}

// cluster is an in-memory wiring of hosts + one redirector for unit tests.
type cluster struct {
	topo   *topology.Topology
	routes *routing.Table
	red    *Redirector
	hosts  []*Host
	loads  []*fakeLoads
	copies []copyRec
	rec    *recorder
}

func newCluster(t *testing.T, topo *topology.Topology, params Params) *cluster {
	t.Helper()
	routes := routing.New(topo)
	red, err := NewRedirector(routes.MinAvgDistanceNode(), routes, PolicyPaper, params.DistConstant)
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{topo: topo, routes: routes, red: red, rec: &recorder{}}
	n := topo.NumNodes()
	c.hosts = make([]*Host, n)
	c.loads = make([]*fakeLoads, n)
	for i := 0; i < n; i++ {
		c.loads[i] = &fakeLoads{perObj: make(map[object.ID]float64)}
		env := Env{
			Routes:        routes,
			RedirectorFor: func(object.ID) RedirectorControl { return c.red },
			Peer:          func(p topology.NodeID) *Host { return c.hosts[p] },
			FindRecipient: c.findRecipient,
			FindRepairTarget: func(_ time.Duration, id object.ID, from topology.NodeID) (topology.NodeID, bool) {
				return c.findRepairTarget(id, from)
			},
			CopyObject: func(_ time.Duration, from, to topology.NodeID, id object.ID) {
				c.copies = append(c.copies, copyRec{from: from, to: to, id: id})
			},
			Observer: c.rec,
		}
		h, err := NewHost(topology.NodeID(i), params, env, c.loads[i])
		if err != nil {
			t.Fatal(err)
		}
		c.hosts[i] = h
	}
	return c
}

// findRecipient returns the host with the least accept-side load strictly
// below the low watermark, excluding the requester.
func (c *cluster) findRecipient(exclude topology.NodeID) (topology.NodeID, bool) {
	best, bestLoad, found := topology.NodeID(0), 0.0, false
	for i, h := range c.hosts {
		if topology.NodeID(i) == exclude {
			continue
		}
		l := h.Estimator().LoadForAccept(c.loads[i].Load())
		if l < h.params.LowWatermark && (!found || l < bestLoad) {
			best, bestLoad, found = topology.NodeID(i), l, true
		}
	}
	return best, found
}

// findRepairTarget mirrors the simulator's repair-target choice: the
// least-loaded host below the low watermark not already holding id.
func (c *cluster) findRepairTarget(id object.ID, from topology.NodeID) (topology.NodeID, bool) {
	best, bestLoad, found := topology.NodeID(0), 0.0, false
	for i, h := range c.hosts {
		if topology.NodeID(i) == from || h.Has(id) {
			continue
		}
		l := h.Estimator().LoadForAccept(c.loads[i].Load())
		if l < h.params.LowWatermark && (!found || l < bestLoad) {
			best, bestLoad, found = topology.NodeID(i), l, true
		}
	}
	return best, found
}

// seed places an object on a host and registers it at the redirector.
func (c *cluster) seed(id object.ID, host topology.NodeID) {
	c.hosts[host].SeedObject(id)
	c.red.NotifyReplicaChange(id, host, 1)
}

// checkSubsetInvariant asserts the redirector's recorded replicas all
// exist on their hosts.
func (c *cluster) checkSubsetInvariant(t *testing.T) {
	t.Helper()
	for _, id := range c.red.Objects() {
		for _, rep := range c.red.Replicas(id) {
			if !c.hosts[rep.Host].Has(id) {
				t.Fatalf("redirector records replica of %d on host %d, but host lacks it", id, rep.Host)
			}
			if got := c.hosts[rep.Host].Affinity(id); got != rep.Aff {
				t.Fatalf("object %d host %d affinity: redirector %d, host %d", id, rep.Host, rep.Aff, got)
			}
		}
	}
}

const obj = object.ID(3)

func TestGeoMigrationToFarthestQualified(t *testing.T) {
	c := newCluster(t, topology.Line(6), DefaultParams())
	c.seed(obj, 0)
	// 70 of 100 requests come from the far end: every node on the path
	// 0..5 appears in 70% of paths; the farthest (node 5) must win.
	for i := 0; i < 70; i++ {
		c.hosts[0].OnRequest(obj, 5)
	}
	for i := 0; i < 30; i++ {
		c.hosts[0].OnRequest(obj, 0)
	}
	sum := c.hosts[0].DecidePlacement(100 * time.Second)
	if sum.Migrated != 1 {
		t.Fatalf("Migrated = %d, want 1", sum.Migrated)
	}
	if c.hosts[0].Has(obj) {
		t.Error("source still holds the object after migration")
	}
	if !c.hosts[5].Has(obj) {
		t.Error("object not on farthest qualified candidate")
	}
	if len(c.copies) != 1 || c.copies[0] != (copyRec{from: 0, to: 5, id: obj}) {
		t.Errorf("copies = %v, want one 0->5 transfer", c.copies)
	}
	if len(c.rec.migrates) != 1 || c.rec.migrates[0].kind != GeoMove {
		t.Errorf("observer migrates = %v, want one geo move", c.rec.migrates)
	}
	c.checkSubsetInvariant(t)
}

func TestNoMigrationBelowRatio(t *testing.T) {
	c := newCluster(t, topology.Line(6), DefaultParams())
	c.seed(obj, 0)
	// Exactly 60% foreign is NOT enough (must exceed MIGR_RATIO).
	for i := 0; i < 60; i++ {
		c.hosts[0].OnRequest(obj, 5)
	}
	for i := 0; i < 40; i++ {
		c.hosts[0].OnRequest(obj, 0)
	}
	sum := c.hosts[0].DecidePlacement(100 * time.Second)
	if sum.Migrated != 0 {
		t.Fatalf("Migrated = %d at exactly MIGR_RATIO, want 0", sum.Migrated)
	}
	// It should replicate instead: ua = 1 req/s > m and 0.6 > REPL_RATIO.
	if sum.Replicated != 1 {
		t.Fatalf("Replicated = %d, want 1", sum.Replicated)
	}
	if !c.hosts[0].Has(obj) || !c.hosts[5].Has(obj) {
		t.Error("replication should leave copies on both source and target")
	}
	c.checkSubsetInvariant(t)
}

func TestGeoReplicationRequiresThreshold(t *testing.T) {
	params := DefaultParams()
	c := newCluster(t, topology.Line(6), params)
	c.seed(obj, 0)
	// 15 requests over 100s = 0.15 req/s < m = 0.18: no replication even
	// though the foreign share (1/3 > 1/6) qualifies.
	for i := 0; i < 10; i++ {
		c.hosts[0].OnRequest(obj, 0)
	}
	for i := 0; i < 5; i++ {
		c.hosts[0].OnRequest(obj, 5)
	}
	sum := c.hosts[0].DecidePlacement(100 * time.Second)
	if sum.Replicated != 0 || sum.Migrated != 0 || sum.Dropped != 0 {
		t.Fatalf("summary = %+v, want no action below replication threshold", sum)
	}
}

func TestColdObjectDropsWhenSafe(t *testing.T) {
	c := newCluster(t, topology.Line(4), DefaultParams())
	c.seed(obj, 0)
	c.seed(obj, 2) // second replica so the drop is legal
	c.hosts[0].OnRequest(obj, 0)
	// 1 request / 100s = 0.01 < u = 0.03.
	sum := c.hosts[0].DecidePlacement(100 * time.Second)
	if sum.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", sum.Dropped)
	}
	if c.hosts[0].Has(obj) {
		t.Error("cold replica still present")
	}
	if c.red.ReplicaCount(obj) != 1 {
		t.Errorf("redirector replica count = %d, want 1", c.red.ReplicaCount(obj))
	}
	c.checkSubsetInvariant(t)
}

func TestLastReplicaNeverDropped(t *testing.T) {
	c := newCluster(t, topology.Line(4), DefaultParams())
	c.seed(obj, 0)
	// Zero requests: clearly below deletion threshold.
	sum := c.hosts[0].DecidePlacement(100 * time.Second)
	if sum.Dropped != 0 {
		t.Fatalf("Dropped = %d, want 0 (sole replica)", sum.Dropped)
	}
	if !c.hosts[0].Has(obj) {
		t.Fatal("sole replica was dropped")
	}
	c.checkSubsetInvariant(t)
}

func TestAffinityDecrementBeforeDrop(t *testing.T) {
	c := newCluster(t, topology.Line(4), DefaultParams())
	c.seed(obj, 0)
	c.hosts[0].objects[obj].Aff = 3
	c.red.NotifyReplicaChange(obj, 0, 3)
	sum := c.hosts[0].DecidePlacement(100 * time.Second)
	if sum.AffReduced != 1 || sum.Dropped != 0 {
		t.Fatalf("summary = %+v, want one affinity decrement", sum)
	}
	if got := c.hosts[0].Affinity(obj); got != 2 {
		t.Fatalf("affinity = %d, want 2", got)
	}
	c.checkSubsetInvariant(t)
}

func TestCreateObjRefusesAboveLowWatermark(t *testing.T) {
	params := DefaultParams()
	c := newCluster(t, topology.Line(6), params)
	c.seed(obj, 0)
	c.loads[5].total = params.LowWatermark + 1 // farthest candidate busy
	for i := 0; i < 70; i++ {
		c.hosts[0].OnRequest(obj, 5)
	}
	for i := 0; i < 30; i++ {
		c.hosts[0].OnRequest(obj, 0)
	}
	sum := c.hosts[0].DecidePlacement(100 * time.Second)
	// Host 5 refuses; the next farthest qualified candidate (4) accepts.
	if sum.Migrated != 1 {
		t.Fatalf("Migrated = %d, want 1 via fallback candidate", sum.Migrated)
	}
	if !c.hosts[4].Has(obj) {
		t.Error("object not on fallback candidate 4")
	}
	if len(c.rec.refusals) != 1 || c.rec.refusals[0].to != 5 {
		t.Errorf("refusals = %v, want one from host 5", c.rec.refusals)
	}
	if c.hosts[5].Stats.RefusalsSent != 1 {
		t.Errorf("host 5 RefusalsSent = %d, want 1", c.hosts[5].Stats.RefusalsSent)
	}
}

func TestMigrateGuardAgainstViciousCycle(t *testing.T) {
	// A migration that would push the recipient from below lw to above hw
	// must be refused; the same load as a replication must be accepted
	// (the paper deliberately omits the guard for replications).
	params := DefaultParams()
	c := newCluster(t, topology.Line(3), params)
	c.seed(obj, 0)
	c.loads[2].total = params.LowWatermark - 1 // 79
	unitLoad := (params.HighWatermark - (params.LowWatermark - 1) + 1) / 4

	if c.hosts[2].CreateObj(50*time.Second, Migrate, obj, unitLoad, 1, 0) {
		t.Fatal("migration accepted although 4*unitLoad would cross hw")
	}
	if !c.hosts[2].CreateObj(50*time.Second, Replicate, obj, unitLoad, 1, 0) {
		t.Fatal("replication refused although load below lw")
	}
	if !c.hosts[2].Has(obj) {
		t.Fatal("replica not created")
	}
	// Upper estimate must now include the Theorem 2 bound.
	wantUpper := (params.LowWatermark - 1) + 4*unitLoad
	if got := c.hosts[2].Estimator().LoadForAccept(c.loads[2].Load()); got != wantUpper {
		t.Fatalf("upper estimate = %v, want %v", got, wantUpper)
	}
}

func TestCreateObjIncrementsAffinity(t *testing.T) {
	c := newCluster(t, topology.Line(3), DefaultParams())
	c.seed(obj, 1)
	if !c.hosts[1].CreateObj(time.Second, Replicate, obj, 1, 1, 0) {
		t.Fatal("replication refused")
	}
	if got := c.hosts[1].Affinity(obj); got != 2 {
		t.Fatalf("affinity = %d, want 2 (no duplicate copy)", got)
	}
	if len(c.copies) != 0 {
		t.Fatalf("object copied although replica already present: %v", c.copies)
	}
	c.checkSubsetInvariant(t)
}

func TestOffloadingModeHysteresis(t *testing.T) {
	params := DefaultParams()
	c := newCluster(t, topology.Line(3), params)
	h := c.hosts[0]
	c.loads[0].total = params.HighWatermark + 5
	h.DecidePlacement(100 * time.Second)
	if !h.Offloading() {
		t.Fatal("host above hw not offloading")
	}
	// Between lw and hw: mode must stick.
	c.loads[0].total = (params.HighWatermark + params.LowWatermark) / 2
	h.DecidePlacement(200 * time.Second)
	if !h.Offloading() {
		t.Fatal("offloading mode did not stick between watermarks")
	}
	c.loads[0].total = params.LowWatermark - 5
	h.DecidePlacement(300 * time.Second)
	if h.Offloading() {
		t.Fatal("host below lw still offloading")
	}
}

// overload prepares host 0 with local-only demand above hw so the geo pass
// can move nothing and offloading must engage.
func overloadHostZero(t *testing.T, c *cluster, params Params, objects int, reqPerObj int, perObj float64) {
	t.Helper()
	c.loads[0].total = params.HighWatermark * 2
	for i := 0; i < objects; i++ {
		id := object.ID(100 + i)
		c.seed(id, 0)
		c.loads[0].perObj[id] = perObj
		for r := 0; r < reqPerObj; r++ {
			c.hosts[0].OnRequest(id, 0) // self-gateway: no foreign candidates
		}
	}
}

func TestOffloadReplicatesHotObjects(t *testing.T) {
	params := DefaultParams()
	c := newCluster(t, topology.Line(4), params)
	// 4 objects, 100 requests each over 100s: ua = 1 > m -> replicate.
	overloadHostZero(t, c, params, 4, 100, 10)
	sum := c.hosts[0].DecidePlacement(100 * time.Second)
	if !sum.OffloadRan {
		t.Fatalf("offload did not run: %+v", sum)
	}
	if sum.OffloadSent == 0 {
		t.Fatal("offload moved nothing")
	}
	if len(c.rec.replicates) == 0 {
		t.Fatal("expected load replications")
	}
	for _, m := range c.rec.replicates {
		if m.kind != LoadMove {
			t.Errorf("offload produced %v move, want load", m.kind)
		}
	}
	// Hot objects must be replicated, never migrated (would undo a prior
	// geo-replication).
	if len(c.rec.migrates) != 0 {
		t.Errorf("offload migrated hot objects: %v", c.rec.migrates)
	}
	for i := 0; i < 4; i++ {
		if !c.hosts[0].Has(object.ID(100 + i)) {
			t.Errorf("source lost hot object %d during offload-by-replication", 100+i)
		}
	}
	c.checkSubsetInvariant(t)
}

func TestOffloadMigratesWarmObjects(t *testing.T) {
	params := DefaultParams()
	c := newCluster(t, topology.Line(4), params)
	// 16 requests per object over 100s: ua = 0.16 <= m = 0.18 -> migrate.
	overloadHostZero(t, c, params, 4, 16, 10)
	sum := c.hosts[0].DecidePlacement(100 * time.Second)
	if !sum.OffloadRan || sum.OffloadSent == 0 {
		t.Fatalf("offload did not move anything: %+v", sum)
	}
	if len(c.rec.migrates) == 0 {
		t.Fatal("expected load migrations")
	}
	moved := 0
	for i := 0; i < 4; i++ {
		if !c.hosts[0].Has(object.ID(100 + i)) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no object left the source")
	}
	c.checkSubsetInvariant(t)
}

func TestOffloadStopsAtRecipientWatermark(t *testing.T) {
	params := DefaultParams()
	c := newCluster(t, topology.Line(4), params)
	overloadHostZero(t, c, params, 10, 100, 18)
	// Each replication adds 4 * (180/10) = 72 to the recipient estimate;
	// recipient starts near lw so only ~1-2 moves fit below lw = 80.
	c.loads[1].total = 70
	c.loads[2].total = params.LowWatermark + 1 // ineligible
	c.loads[3].total = params.LowWatermark + 1 // ineligible
	sum := c.hosts[0].DecidePlacement(100 * time.Second)
	if !sum.OffloadRan {
		t.Fatalf("offload did not run: %+v", sum)
	}
	if sum.OffloadSent == 0 || sum.OffloadSent > 2 {
		t.Fatalf("OffloadSent = %d, want 1-2 (recipient estimate caps bulk)", sum.OffloadSent)
	}
}

func TestOffloadBulkRelocation(t *testing.T) {
	// With a fresh recipient, a single placement run must move MANY
	// objects at once — the paper's en-masse relocation feature.
	params := DefaultParams()
	c := newCluster(t, topology.Line(4), params)
	overloadHostZero(t, c, params, 40, 16, 4.5) // warm objects, light enough for bulk moves
	sum := c.hosts[0].DecidePlacement(100 * time.Second)
	if !sum.OffloadRan {
		t.Fatalf("offload did not run: %+v", sum)
	}
	if sum.OffloadSent < 3 {
		t.Fatalf("OffloadSent = %d, want >= 3 in one run (en-masse)", sum.OffloadSent)
	}
}

func TestOffloadSkippedWhenGeoPassRelieves(t *testing.T) {
	// When the geo pass both relocates an object and brings the
	// lower-bound load estimate back under the high watermark, the host
	// waits for fresh measurements instead of offloading (Fig. 3).
	params := DefaultParams()
	c := newCluster(t, topology.Line(6), params)
	c.loads[0].total = params.HighWatermark + 10
	c.loads[0].perObj[obj] = 15 // migration sheds up to the full 15
	c.seed(obj, 0)
	for i := 0; i < 100; i++ {
		c.hosts[0].OnRequest(obj, 5) // 100% foreign: geo-migrates
	}
	sum := c.hosts[0].DecidePlacement(100 * time.Second)
	if sum.Migrated != 1 {
		t.Fatalf("Migrated = %d, want 1", sum.Migrated)
	}
	if sum.OffloadRan {
		t.Fatal("offload ran although the geo pass relieved the overload")
	}
}

func TestOffloadRunsWhenGeoPassInsufficient(t *testing.T) {
	// A geo move that cannot bring the estimate under hw must not starve
	// the offloading protocol: geo candidates lie only on preference
	// paths, so idle far-away hosts are reachable through Offload alone.
	params := DefaultParams()
	c := newCluster(t, topology.Line(6), params)
	c.loads[0].total = params.HighWatermark * 2
	c.loads[0].perObj[obj] = 1 // migration relief is negligible
	c.seed(obj, 0)
	for i := 0; i < 100; i++ {
		c.hosts[0].OnRequest(obj, 5)
	}
	sum := c.hosts[0].DecidePlacement(100 * time.Second)
	if sum.Migrated != 1 {
		t.Fatalf("Migrated = %d, want 1", sum.Migrated)
	}
	if !sum.OffloadRan {
		t.Fatal("offload skipped although the host remains far above hw")
	}
}

func TestOffloadNoRecipient(t *testing.T) {
	params := DefaultParams()
	c := newCluster(t, topology.Line(3), params)
	overloadHostZero(t, c, params, 2, 100, 10)
	for i := 1; i < 3; i++ {
		c.loads[i].total = params.LowWatermark + 1
	}
	sum := c.hosts[0].DecidePlacement(100 * time.Second)
	if !sum.OffloadRan || sum.OffloadSent != 0 {
		t.Fatalf("summary = %+v, want offload attempted but nothing sent", sum)
	}
}

func TestCountsResetAfterPlacement(t *testing.T) {
	c := newCluster(t, topology.Line(4), DefaultParams())
	c.seed(obj, 0)
	for i := 0; i < 50; i++ {
		c.hosts[0].OnRequest(obj, 2)
	}
	c.hosts[0].DecidePlacement(100 * time.Second)
	if st := c.hosts[0].objects[obj]; st != nil {
		for p, cnt := range st.Cnt {
			if cnt != 0 {
				t.Fatalf("Cnt[%d] = %d after placement, want 0", p, cnt)
			}
		}
	}
}

func TestCanReplicateGate(t *testing.T) {
	params := DefaultParams()
	c := newCluster(t, topology.Line(6), params)
	for i := range c.hosts {
		c.hosts[i].env.CanReplicate = func(object.ID, int) bool { return false }
	}
	c.seed(obj, 0)
	for i := 0; i < 70; i++ {
		c.hosts[0].OnRequest(obj, 0)
	}
	for i := 0; i < 30; i++ {
		c.hosts[0].OnRequest(obj, 5)
	}
	sum := c.hosts[0].DecidePlacement(100 * time.Second)
	if sum.Replicated != 0 {
		t.Fatal("replication happened despite CanReplicate gate")
	}
	// Migration is never gated: flip demand so migration triggers.
	for i := 0; i < 100; i++ {
		c.hosts[0].OnRequest(obj, 5)
	}
	sum = c.hosts[0].DecidePlacement(200 * time.Second)
	if sum.Migrated != 1 {
		t.Fatalf("Migrated = %d, want 1 (gate must not block migration)", sum.Migrated)
	}
}

func TestSelfGatewayPathHasNoCandidates(t *testing.T) {
	c := newCluster(t, topology.Line(4), DefaultParams())
	c.seed(obj, 0)
	for i := 0; i < 1000; i++ {
		c.hosts[0].OnRequest(obj, 0)
	}
	sum := c.hosts[0].DecidePlacement(100 * time.Second)
	if sum.Migrated != 0 || sum.Replicated != 0 {
		t.Fatalf("summary = %+v: purely local demand must not relocate", sum)
	}
}

func TestOnRequestForUnknownObjectIgnored(t *testing.T) {
	c := newCluster(t, topology.Line(3), DefaultParams())
	c.hosts[0].OnRequest(object.ID(999), 2) // must not panic or create state
	if c.hosts[0].NumObjects() != 0 {
		t.Fatal("unknown-object request created state")
	}
}

func TestNewHostValidation(t *testing.T) {
	topo := topology.Line(3)
	routes := routing.New(topo)
	red, err := NewRedirector(0, routes, PolicyPaper, 2)
	if err != nil {
		t.Fatal(err)
	}
	loads := &fakeLoads{perObj: map[object.ID]float64{}}
	goodEnv := Env{
		Routes:        routes,
		RedirectorFor: func(object.ID) RedirectorControl { return red },
		Peer:          func(topology.NodeID) *Host { return nil },
		FindRecipient: func(topology.NodeID) (topology.NodeID, bool) { return 0, false },
		CopyObject:    func(time.Duration, topology.NodeID, topology.NodeID, object.ID) {},
	}
	if _, err := NewHost(0, Params{}, goodEnv, loads); err == nil {
		t.Error("invalid params accepted")
	}
	bad := goodEnv
	bad.Routes = nil
	if _, err := NewHost(0, DefaultParams(), bad, loads); err == nil {
		t.Error("nil Routes accepted")
	}
	bad = goodEnv
	bad.Peer = nil
	if _, err := NewHost(0, DefaultParams(), bad, loads); err == nil {
		t.Error("nil Peer accepted")
	}
	if _, err := NewHost(0, DefaultParams(), goodEnv, nil); err == nil {
		t.Error("nil loads accepted")
	}
	if _, err := NewHost(0, DefaultParams(), goodEnv, loads); err != nil {
		t.Errorf("valid host rejected: %v", err)
	}
}

func TestDecidePlacementZeroPeriod(t *testing.T) {
	c := newCluster(t, topology.Line(3), DefaultParams())
	c.seed(obj, 0)
	sum := c.hosts[0].DecidePlacement(0)
	if sum.moved() || sum.OffloadRan {
		t.Fatalf("zero-period placement acted: %+v", sum)
	}
}
