package protocol

import (
	"errors"
	"fmt"
	"sort"

	"radar/internal/object"
	"radar/internal/routing"
	"radar/internal/topology"
)

// Policy selects the request distribution algorithm a redirector runs.
// PolicyPaper is the contribution; the others are the strawmen of §3 kept
// as ablation baselines.
type Policy int

// Distribution policies.
const (
	// PolicyPaper is Fig. 2: direct the request to the closest replica
	// unless its unit request count exceeds DistConstant times the minimum
	// unit request count, in which case use the least-requested replica.
	PolicyPaper Policy = iota + 1
	// PolicyRoundRobin rotates over replicas, oblivious to proximity.
	PolicyRoundRobin
	// PolicyClosest always picks the closest replica, oblivious to load.
	PolicyClosest
)

// String returns the policy's report name.
func (p Policy) String() string {
	switch p {
	case PolicyPaper:
		return "paper"
	case PolicyRoundRobin:
		return "round-robin"
	case PolicyClosest:
		return "closest"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Replica is the redirector's view of one object replica.
type Replica struct {
	// Host is the node holding the replica.
	Host topology.NodeID
	// Aff is the replica's affinity: the compact representation of
	// multiple affinity units of the same object on the same host.
	Aff int
	// Rcnt counts how many times the redirector chose this replica since
	// the last replica-set change.
	Rcnt int64
}

// unitRcnt is the replica's unit request count rcnt/aff (Fig. 2).
func (r Replica) unitRcnt() float64 { return float64(r.Rcnt) / float64(r.Aff) }

type redirEntry struct {
	replicas []Replica // sorted by Host for deterministic iteration
	cursor   int       // round-robin position (baseline policy)
	known    bool      // a replica was ever recorded (survives PurgeHost)
}

// Redirector implements the request distribution side of the protocol: it
// tracks the replica set of each object it is responsible for, chooses a
// replica for every request (Fig. 2), and arbitrates replica deletions so
// the last copy of an object is never dropped. In a deployment redirectors
// are spread over the platform with the URL namespace hash-partitioned
// among them; Location records the node this redirector is co-located
// with, so the simulator can charge forwarding latency.
//
// Object IDs are dense small integers, so per-object state lives in a
// slice indexed by ID rather than a map: the per-request lookup is a
// bounds check and an indexed load.
type Redirector struct {
	// Location is the node the redirector runs on.
	Location topology.NodeID

	routes  *routing.Table
	policy  Policy
	cRatio  float64
	entries []redirEntry // indexed by object.ID, grown on demand

	// minReplicas is the replica count RequestDrop preserves per object
	// (>= 1; see SetReplicaFloor).
	minReplicas int

	// reachable, when non-nil, filters ChooseReplica candidates (fault
	// injection: a replica whose forwarding path crosses a cut link is
	// skipped). Nil means every recorded replica is eligible — the exact
	// paper behavior.
	reachable func(host topology.NodeID) bool

	// chooseCount counts ChooseReplica calls, for reports.
	chooseCount int64
}

// Errors returned by Redirector methods.
var (
	ErrUnknownObject  = errors.New("protocol: redirector has no replicas recorded for object")
	ErrUnknownReplica = errors.New("protocol: no such replica recorded")
	// ErrNoReachableReplica reports that an object has recorded replicas
	// but the reachability filter excluded all of them (every forwarding
	// path crosses a cut link); the request fails.
	ErrNoReachableReplica = errors.New("protocol: no reachable replica")
)

// NewRedirector returns a redirector at location using the given routes,
// distribution policy and distribution constant (Params.DistConstant).
func NewRedirector(location topology.NodeID, routes *routing.Table, policy Policy, distConstant float64) (*Redirector, error) {
	if routes == nil {
		return nil, fmt.Errorf("%w: routes", ErrNilDependency)
	}
	if distConstant <= 1 {
		return nil, fmt.Errorf("%w: got %v", ErrDistConstant, distConstant)
	}
	if policy < PolicyPaper || policy > PolicyClosest {
		return nil, fmt.Errorf("protocol: unknown policy %d", policy)
	}
	return &Redirector{
		Location:    location,
		routes:      routes,
		policy:      policy,
		cRatio:      distConstant,
		minReplicas: 1,
	}, nil
}

// SetReplicaFloor raises the replica count RequestDrop preserves per
// object from the default 1 (the paper's last-copy rule) to n — the
// redirector side of Params.ReplicaFloor. Values below 1 are clamped to 1.
func (r *Redirector) SetReplicaFloor(n int) {
	if n < 1 {
		n = 1
	}
	r.minReplicas = n
}

// SetReachable installs a reachability filter for ChooseReplica: replicas
// on hosts for which f returns false are skipped, and if every recorded
// replica is filtered out the request fails with ErrNoReachableReplica.
// A nil f restores the unfiltered paper behavior.
func (r *Redirector) SetReachable(f func(host topology.NodeID) bool) {
	r.reachable = f
}

// lookup returns the entry for id, or nil if none was ever recorded.
func (r *Redirector) lookup(id object.ID) *redirEntry {
	if int(id) >= len(r.entries) || int(id) < 0 {
		return nil
	}
	e := &r.entries[id]
	if !e.known {
		return nil
	}
	return e
}

// entry returns the entry for id, growing the index geometrically as
// needed (IDs arrive in ascending order during seeding; per-ID growth
// would be quadratic).
func (r *Redirector) entry(id object.ID) *redirEntry {
	if int(id) >= len(r.entries) {
		if int(id) < cap(r.entries) {
			r.entries = r.entries[:int(id)+1]
		} else {
			grown := make([]redirEntry, int(id)+1, max(2*cap(r.entries), int(id)+1))
			copy(grown, r.entries)
			r.entries = grown
		}
	}
	return &r.entries[id]
}

// ChooseReplica picks the host to service a request for id that entered
// the platform at gateway g, and charges the chosen replica's request
// count. This is the algorithm of Fig. 2 (under PolicyPaper).
func (r *Redirector) ChooseReplica(g topology.NodeID, id object.ID) (topology.NodeID, error) {
	e := r.lookup(id)
	if e == nil || len(e.replicas) == 0 {
		return 0, fmt.Errorf("%w: object %d", ErrUnknownObject, id)
	}
	r.chooseCount++
	if r.reachable != nil {
		return r.chooseFiltered(g, id, e)
	}
	switch r.policy {
	case PolicyRoundRobin:
		e.cursor = (e.cursor + 1) % len(e.replicas)
		rep := &e.replicas[e.cursor]
		rep.Rcnt++
		return rep.Host, nil
	case PolicyClosest:
		rep := e.closestTo(g, r.routes)
		rep.Rcnt++
		return rep.Host, nil
	default:
		// One pass finds both the closest replica (distance ties broken by
		// the sorted-by-host order) and the least-loaded one (strictly
		// smaller unit request count wins, so ties also break by host).
		dist := r.routes.DistancesFrom(g)
		closest, least := &e.replicas[0], &e.replicas[0]
		bestD := dist[closest.Host]
		leastU := least.unitRcnt()
		for i := 1; i < len(e.replicas); i++ {
			rep := &e.replicas[i]
			if d := dist[rep.Host]; d < bestD {
				closest, bestD = rep, d
			}
			if u := rep.unitRcnt(); u < leastU {
				least, leastU = rep, u
			}
		}
		chosen := closest
		if closest.unitRcnt() > r.cRatio*leastU {
			chosen = least
		}
		chosen.Rcnt++
		return chosen.Host, nil
	}
}

// chooseFiltered is ChooseReplica under a reachability filter: the same
// per-policy logic restricted to replicas the filter admits. It lives on a
// separate code path so fault-free runs execute the original byte-for-byte.
func (r *Redirector) chooseFiltered(g topology.NodeID, id object.ID, e *redirEntry) (topology.NodeID, error) {
	var buf [8]int
	live := buf[:0]
	for i := range e.replicas {
		if r.reachable(e.replicas[i].Host) {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return 0, fmt.Errorf("%w: object %d", ErrNoReachableReplica, id)
	}
	switch r.policy {
	case PolicyRoundRobin:
		// Advance the cursor until it lands on a reachable replica; the
		// non-empty live set guarantees termination.
		for {
			e.cursor = (e.cursor + 1) % len(e.replicas)
			if r.reachable(e.replicas[e.cursor].Host) {
				break
			}
		}
		rep := &e.replicas[e.cursor]
		rep.Rcnt++
		return rep.Host, nil
	case PolicyClosest:
		dist := r.routes.DistancesFrom(g)
		best := &e.replicas[live[0]]
		bestD := dist[best.Host]
		for _, i := range live[1:] {
			if d := dist[e.replicas[i].Host]; d < bestD {
				best, bestD = &e.replicas[i], d
			}
		}
		best.Rcnt++
		return best.Host, nil
	default:
		dist := r.routes.DistancesFrom(g)
		closest, least := &e.replicas[live[0]], &e.replicas[live[0]]
		bestD := dist[closest.Host]
		leastU := least.unitRcnt()
		for _, i := range live[1:] {
			rep := &e.replicas[i]
			if d := dist[rep.Host]; d < bestD {
				closest, bestD = rep, d
			}
			if u := rep.unitRcnt(); u < leastU {
				least, leastU = rep, u
			}
		}
		chosen := closest
		if closest.unitRcnt() > r.cRatio*leastU {
			chosen = least
		}
		chosen.Rcnt++
		return chosen.Host, nil
	}
}

// closestTo returns the replica closest to gateway g, breaking distance
// ties by smaller host ID.
func (e *redirEntry) closestTo(g topology.NodeID, routes *routing.Table) *Replica {
	dist := routes.DistancesFrom(g)
	best := &e.replicas[0]
	bestD := dist[best.Host]
	for i := 1; i < len(e.replicas); i++ {
		if d := dist[e.replicas[i].Host]; d < bestD {
			best, bestD = &e.replicas[i], d
		}
	}
	return best
}

// NotifyReplicaChange records that host now holds a replica of id with the
// given affinity, creating the replica record if needed, and resets all of
// the object's request counts to 1. The reset is the paper's remedy for
// new replicas being flooded until their counts catch up (§3). Copy
// creation is notified after the fact, so the recorded set stays a subset
// of live replicas.
func (r *Redirector) NotifyReplicaChange(id object.ID, host topology.NodeID, aff int) {
	if aff < 1 {
		aff = 1
	}
	e := r.entry(id)
	e.known = true
	found := false
	for i := range e.replicas {
		if e.replicas[i].Host == host {
			e.replicas[i].Aff = aff
			found = true
			break
		}
	}
	if !found {
		e.replicas = append(e.replicas, Replica{Host: host, Aff: aff})
		sort.Slice(e.replicas, func(i, j int) bool { return e.replicas[i].Host < e.replicas[j].Host })
	}
	e.resetCounts()
}

// resetCounts sets every replica's request count to 1.
func (e *redirEntry) resetCounts() {
	for i := range e.replicas {
		e.replicas[i].Rcnt = 1
	}
}

// RequestDrop arbitrates a host's intention to drop its replica of id
// (the ReduceAffinity handshake, Fig. 3). It refuses if the replica is the
// object's last, or if dropping would take the replica count below the
// configured replica floor. On approval the replica is removed from the
// recorded set immediately — deletion is notified before the fact — and
// the remaining counts are reset.
func (r *Redirector) RequestDrop(id object.ID, host topology.NodeID) bool {
	e := r.lookup(id)
	if e == nil || len(e.replicas) <= r.minReplicas {
		return false
	}
	for i := range e.replicas {
		if e.replicas[i].Host == host {
			e.replicas = append(e.replicas[:i], e.replicas[i+1:]...)
			e.resetCounts()
			return true
		}
	}
	return false
}

// RecordedAffinity returns the recorded affinity of id's replica on host
// and whether such a record exists. It is the anti-entropy digest probe:
// reconciliation compares it against the host's actual replica state to
// find orphans (live but unrecorded) and stale affinities left by lost
// notifications.
func (r *Redirector) RecordedAffinity(id object.ID, host topology.NodeID) (int, bool) {
	e := r.lookup(id)
	if e == nil {
		return 0, false
	}
	for i := range e.replicas {
		if e.replicas[i].Host == host {
			return e.replicas[i].Aff, true
		}
	}
	return 0, false
}

// RemoveRecord unconditionally deletes the replica record of id on host,
// reporting whether a record existed. Unlike RequestDrop there is no
// last-copy or floor arbitration: this is the anti-entropy path for
// erasing ghost records of replicas the host no longer holds, where
// keeping the record would route requests to a missing copy.
func (r *Redirector) RemoveRecord(id object.ID, host topology.NodeID) bool {
	e := r.lookup(id)
	if e == nil {
		return false
	}
	for i := range e.replicas {
		if e.replicas[i].Host == host {
			e.replicas = append(e.replicas[:i], e.replicas[i+1:]...)
			e.resetCounts()
			return true
		}
	}
	return false
}

// PurgeHost removes every replica recorded on the given host — the
// control-plane reaction to a host failure. Unlike RequestDrop it may
// leave an object with no replicas (the object is then unavailable until
// the host recovers and re-registers). It returns the IDs of the affected
// objects, sorted. The failure-handling extension is outside the paper's
// scope (§1.1 positions the protocol as performance-, not
// availability-oriented) but exercises the same control paths.
func (r *Redirector) PurgeHost(host topology.NodeID) []object.ID {
	var affected []object.ID
	for i := range r.entries {
		e := &r.entries[i]
		if !e.known {
			continue
		}
		for j := range e.replicas {
			if e.replicas[j].Host == host {
				e.replicas = append(e.replicas[:j], e.replicas[j+1:]...)
				e.resetCounts()
				affected = append(affected, object.ID(i))
				break
			}
		}
	}
	return affected
}

// Replicas returns a copy of the recorded replica set for id, sorted by
// host ID. It returns nil for unknown objects.
func (r *Redirector) Replicas(id object.ID) []Replica {
	e := r.lookup(id)
	if e == nil {
		return nil
	}
	out := make([]Replica, len(e.replicas))
	copy(out, e.replicas)
	return out
}

// ReplicaHosts appends the hosts recorded for id to buf and returns it,
// sorted by host ID (the entry order). It returns buf[:0] for unknown
// objects. Pass a reusable buffer to avoid allocating on the placement
// hot path.
func (r *Redirector) ReplicaHosts(id object.ID, buf []topology.NodeID) []topology.NodeID {
	buf = buf[:0]
	e := r.lookup(id)
	if e == nil {
		return buf
	}
	for i := range e.replicas {
		buf = append(buf, e.replicas[i].Host)
	}
	return buf
}

// ReplicaCount returns the number of recorded replicas of id.
func (r *Redirector) ReplicaCount(id object.ID) int {
	e := r.lookup(id)
	if e == nil {
		return 0
	}
	return len(e.replicas)
}

// TotalAffinity returns the sum of affinities over id's replicas.
func (r *Redirector) TotalAffinity(id object.ID) int {
	e := r.lookup(id)
	if e == nil {
		return 0
	}
	total := 0
	for _, rep := range e.replicas {
		total += rep.Aff
	}
	return total
}

// Objects returns the IDs of all objects with recorded replicas, sorted.
func (r *Redirector) Objects() []object.ID {
	var ids []object.ID
	for i := range r.entries {
		if r.entries[i].known {
			ids = append(ids, object.ID(i))
		}
	}
	return ids
}

// ChooseCount returns the number of ChooseReplica calls served.
func (r *Redirector) ChooseCount() int64 { return r.chooseCount }
