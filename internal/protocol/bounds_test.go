package protocol

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBoundFormulas(t *testing.T) {
	tests := []struct {
		name string
		got  float64
		want float64
	}{
		{"thm1: repl source decrease", ReplicationSourceMaxDecrease(100), 75},
		{"thm2: repl target increase aff=1", ReplicationTargetMaxIncrease(100, 1), 400},
		{"thm2: repl target increase aff=4", ReplicationTargetMaxIncrease(100, 4), 100},
		{"thm3: migr source decrease aff=1", MigrationSourceMaxDecrease(100, 1), 100},
		{"thm3: migr source decrease aff=2", MigrationSourceMaxDecrease(100, 2), 50 + 37.5},
		{"thm3: migr source decrease aff=4", MigrationSourceMaxDecrease(100, 4), 25 + 56.25},
		{"thm4: migr target increase aff=2", MigrationTargetMaxIncrease(100, 2), 200},
		{"thm5: min unit access", MinUnitAccessAfterReplication(0.18), 0.045},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if math.Abs(tc.got-tc.want) > 1e-12 {
				t.Fatalf("got %v, want %v", tc.got, tc.want)
			}
		})
	}
}

func TestBoundsDegenerateAffinity(t *testing.T) {
	// Zero or negative affinity must be treated as 1, not divide by zero.
	if got := ReplicationTargetMaxIncrease(10, 0); got != 40 {
		t.Errorf("aff=0 target increase = %v, want 40", got)
	}
	if got := MigrationSourceMaxDecrease(10, 0); got != 10 {
		t.Errorf("aff=0 migration source decrease = %v, want 10", got)
	}
}

// TestMigrationBoundsDominateProperty: a migration removes the whole unit
// plus replication spillover, so Theorem 3's bound must always be at least
// Theorem 1's unit share, and target bounds must be positive and shrink
// with affinity.
func TestMigrationBoundsDominateProperty(t *testing.T) {
	f := func(loadRaw uint16, affRaw uint8) bool {
		load := float64(loadRaw)/100 + 0.01
		aff := int(affRaw)%8 + 1
		migr := MigrationSourceMaxDecrease(load, aff)
		if migr < load/float64(aff)-1e-9 {
			return false
		}
		if migr > load+1e-9 { // cannot shed more than the object's whole load
			return false
		}
		inc1 := ReplicationTargetMaxIncrease(load, aff)
		inc2 := ReplicationTargetMaxIncrease(load, aff+1)
		return inc1 > 0 && inc2 < inc1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMigrationSourceDecreaseAff1EqualsFullLoad(t *testing.T) {
	// With affinity 1 a migration removes the object entirely: the bound
	// must equal the object's whole load.
	for _, load := range []float64{0.5, 1, 7, 123.25} {
		if got := MigrationSourceMaxDecrease(load, 1); math.Abs(got-load) > 1e-12 {
			t.Fatalf("load %v: bound = %v, want full load", load, got)
		}
	}
}
