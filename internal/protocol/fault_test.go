package protocol

import (
	"errors"
	"testing"
	"time"

	"radar/internal/topology"
)

// --- Replica floor and repair replication (availability extension) ---

func TestRepairRestoresReplicaFloor(t *testing.T) {
	params := DefaultParams()
	params.ReplicaFloor = 3
	c := newCluster(t, topology.Line(6), params)
	c.red.SetReplicaFloor(params.ReplicaFloor)
	c.seed(obj, 0)
	sum := c.hosts[0].DecidePlacement(100 * time.Second)
	if sum.Repaired != 2 {
		t.Fatalf("Repaired = %d, want 2 (floor 3, one replica)", sum.Repaired)
	}
	if got := c.red.ReplicaCount(obj); got != 3 {
		t.Fatalf("replica count = %d, want floor 3", got)
	}
	if got := c.hosts[0].Stats.RepairReplications; got != 2 {
		t.Errorf("RepairReplications = %d, want 2", got)
	}
	// Repairs are reported as RepairMove replications, distinct from the
	// paper's geo/load moves, and never double-counted as placement moves.
	repairs := 0
	for _, m := range c.rec.replicates {
		if m.kind == RepairMove {
			repairs++
		}
	}
	if repairs != 2 {
		t.Errorf("observer saw %d RepairMove replications, want 2", repairs)
	}
	if sum.Replicated != 0 {
		t.Errorf("Replicated = %d, want 0 (repairs are not geo replications)", sum.Replicated)
	}
	c.checkSubsetInvariant(t)
}

func TestRepairSkipsUnregisteredObjects(t *testing.T) {
	params := DefaultParams()
	params.ReplicaFloor = 2
	c := newCluster(t, topology.Line(4), params)
	c.red.SetReplicaFloor(params.ReplicaFloor)
	// The host holds the object on disk but the redirector has no record
	// of it — the state of a crashed host before re-registration. Repair
	// must not resurrect it from here.
	c.hosts[0].SeedObject(obj)
	sum := c.hosts[0].DecidePlacement(100 * time.Second)
	if sum.Repaired != 0 {
		t.Fatalf("Repaired = %d, want 0 for an unregistered object", sum.Repaired)
	}
}

func TestRepairStopsOnRefusal(t *testing.T) {
	params := DefaultParams()
	params.ReplicaFloor = 2
	c := newCluster(t, topology.Line(3), params)
	c.red.SetReplicaFloor(params.ReplicaFloor)
	c.seed(obj, 0)
	// Every candidate target is above the low watermark: repair is wanted
	// but must respect the Fig. 4 acceptance gating (best-effort floor).
	for i := 1; i < 3; i++ {
		c.loads[i].total = params.LowWatermark + 1
	}
	sum := c.hosts[0].DecidePlacement(100 * time.Second)
	if sum.Repaired != 0 {
		t.Fatalf("Repaired = %d, want 0 (all targets loaded)", sum.Repaired)
	}
	if got := c.red.ReplicaCount(obj); got != 1 {
		t.Fatalf("replica count = %d, want 1", got)
	}
}

func TestReplicaFloorBlocksDrops(t *testing.T) {
	c := newCluster(t, topology.Line(4), DefaultParams())
	c.red.SetReplicaFloor(2)
	c.seed(obj, 0)
	c.seed(obj, 2)
	// Cold object with two replicas: without a floor this drops (see
	// TestColdObjectDropsWhenSafe); floor 2 refuses the drop.
	sum := c.hosts[0].DecidePlacement(100 * time.Second)
	if sum.Dropped != 0 {
		t.Fatalf("Dropped = %d, want 0 under floor 2", sum.Dropped)
	}
	if got := c.red.ReplicaCount(obj); got != 2 {
		t.Fatalf("replica count = %d, want 2", got)
	}
	c.checkSubsetInvariant(t)
}

func TestNewHostRequiresRepairTargetWithFloor(t *testing.T) {
	c := newCluster(t, topology.Line(3), DefaultParams())
	env := c.hosts[0].env
	env.FindRepairTarget = nil
	params := DefaultParams()
	params.ReplicaFloor = 2
	if _, err := NewHost(0, params, env, c.loads[0]); err == nil {
		t.Fatal("NewHost accepted replica floor > 1 without FindRepairTarget")
	}
}

// --- Crash / recovery semantics ---

func TestOnCrashWipesControlState(t *testing.T) {
	c := newCluster(t, topology.Line(4), DefaultParams())
	c.seed(obj, 0)
	h := c.hosts[0]
	h.Estimator().OnAccept(10*time.Second, 50, 8)
	h.Estimator().OnShed(11*time.Second, 50, 3)
	h.OnCrash()
	if h.Estimator().UpperActive() || h.Estimator().LowerActive() {
		t.Error("crash left load estimates active")
	}
	if got := h.Estimator().UpperActiveFor(time.Hour); got != 0 {
		t.Errorf("UpperActiveFor after crash = %v, want 0", got)
	}
	if !h.Has(obj) {
		t.Error("crash destroyed disk state (replicas must survive)")
	}
}

func TestOnRecoverGrantsMeasurementGrace(t *testing.T) {
	c := newCluster(t, topology.Line(4), DefaultParams())
	c.seed(obj, 0)
	c.seed(obj, 2)
	h := c.hosts[0]
	// A cold two-replica object normally drops (TestColdObjectDropsWhenSafe).
	// After recovery the replica is marked freshly acquired, so the first
	// placement pass has no full observation window and must not drop it
	// on pre-crash silence.
	h.OnCrash()
	h.OnRecover(90 * time.Second)
	sum := h.DecidePlacement(100 * time.Second)
	if sum.Dropped != 0 {
		t.Fatalf("Dropped = %d, want 0 right after recovery (measurement grace)", sum.Dropped)
	}
	// A full observation window later, the still-cold replica drops.
	sum = h.DecidePlacement(200 * time.Second)
	if sum.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1 one full window after recovery", sum.Dropped)
	}
	c.checkSubsetInvariant(t)
}

// --- Redirector reachability filtering (link faults) ---

func TestChooseReplicaFailsOverToReachable(t *testing.T) {
	for _, policy := range []Policy{PolicyPaper, PolicyRoundRobin, PolicyClosest} {
		r, _ := newTestRedirector(t, topology.Line(6), policy)
		r.NotifyReplicaChange(testObj, 1, 1)
		r.NotifyReplicaChange(testObj, 4, 1)
		dead := topology.NodeID(1)
		r.SetReachable(func(h topology.NodeID) bool { return h != dead })
		for g := 0; g < 6; g++ {
			h, err := r.ChooseReplica(topology.NodeID(g), testObj)
			if err != nil {
				t.Fatalf("policy %v gateway %d: %v", policy, g, err)
			}
			if h == dead {
				t.Fatalf("policy %v gateway %d: chose unreachable replica %d", policy, g, h)
			}
		}
	}
}

func TestChooseReplicaNoReachableReplica(t *testing.T) {
	r, _ := newTestRedirector(t, topology.Line(4), PolicyPaper)
	r.NotifyReplicaChange(testObj, 2, 1)
	r.SetReachable(func(topology.NodeID) bool { return false })
	_, err := r.ChooseReplica(0, testObj)
	if !errors.Is(err, ErrNoReachableReplica) {
		t.Fatalf("err = %v, want ErrNoReachableReplica", err)
	}
	// Restoring reachability restores routing with no residue.
	r.SetReachable(nil)
	if _, err := r.ChooseReplica(0, testObj); err != nil {
		t.Fatalf("routing after filter removal: %v", err)
	}
}

func TestChooseReplicaFilterManyReplicas(t *testing.T) {
	// More replicas than the filter path's stack buffer, most unreachable:
	// exercises the spill path and still balances over the survivors.
	r, _ := newTestRedirector(t, topology.Line(16), PolicyRoundRobin)
	for i := 0; i < 16; i++ {
		r.NotifyReplicaChange(testObj, topology.NodeID(i), 1)
	}
	r.SetReachable(func(h topology.NodeID) bool { return h%5 == 0 })
	seen := make(map[topology.NodeID]int)
	for i := 0; i < 400; i++ {
		h, err := r.ChooseReplica(0, testObj)
		if err != nil {
			t.Fatal(err)
		}
		if h%5 != 0 {
			t.Fatalf("chose unreachable replica %d", h)
		}
		seen[h]++
	}
	for _, want := range []topology.NodeID{0, 5, 10, 15} {
		if seen[want] == 0 {
			t.Errorf("round-robin never chose reachable replica %d (got %v)", want, seen)
		}
	}
}

func TestRequestDropRespectsFloor(t *testing.T) {
	r, _ := newTestRedirector(t, topology.Line(4), PolicyPaper)
	r.SetReplicaFloor(2)
	r.NotifyReplicaChange(testObj, 0, 1)
	r.NotifyReplicaChange(testObj, 2, 1)
	r.NotifyReplicaChange(testObj, 3, 1)
	if !r.RequestDrop(testObj, 3) {
		t.Fatal("drop from 3 replicas refused under floor 2")
	}
	if r.RequestDrop(testObj, 2) {
		t.Fatal("drop below floor 2 allowed")
	}
	if got := r.ReplicaCount(testObj); got != 2 {
		t.Fatalf("replica count = %d, want 2", got)
	}
}
