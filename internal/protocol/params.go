// Package protocol implements the paper's contribution: the request
// distribution algorithm run by redirectors (Fig. 2), the autonomous
// replica placement algorithm run by every host (Fig. 3), the replica
// creation handshake (Fig. 4), the host offloading protocol (Fig. 5), and
// the load-change bounds of Theorems 1-5 that tie them together.
//
// The package is simulation-agnostic: time is passed in explicitly, loads
// arrive through the LoadSource interface, and the network and peers are
// reached through the Env wiring, so the same code runs under the
// discrete-event simulator or in unit tests with hand-built fixtures.
package protocol

import (
	"errors"
	"fmt"
	"time"
)

// Params are the protocol's tunable parameters (paper §4.2 and Table 1).
type Params struct {
	// HighWatermark hw is the load (requests/sec) above which a host
	// switches to offloading mode. It reflects host capacity.
	HighWatermark float64
	// LowWatermark lw (< hw) is the load below which a host leaves
	// offloading mode; candidates accept new replicas only below it.
	LowWatermark float64
	// DeletionThreshold u: an affinity unit whose unit access count
	// (requests/sec) falls below u can be dropped.
	DeletionThreshold float64
	// ReplicationThreshold m: an object may be replicated only when its
	// unit access count exceeds m. Stability requires 4u < m (Theorem 5);
	// the paper uses m = 6u to avoid boundary effects.
	ReplicationThreshold float64
	// MigrRatio: an object migrates to a candidate appearing on the
	// preference paths of more than this fraction of its requests. Must
	// exceed 0.5 to prevent back-and-forth migration; the paper uses 0.6.
	MigrRatio float64
	// ReplRatio: minimum fraction of requests a candidate must appear in
	// to receive a replica. Must be below MigrRatio for replication to
	// ever happen; the paper uses 1/6.
	ReplRatio float64
	// DistConstant is the constant of the request distribution algorithm
	// (Fig. 2): the closest replica is used unless its unit request count
	// exceeds DistConstant times the minimum. The paper uses 2; the load
	// bounds of Theorems 1-5 are stated for that value.
	DistConstant float64
	// EstimateHaltAfter implements §2.1 footnote 2: when a host's
	// upper-bound load estimate has been continuously active for longer
	// than this (back-to-back acquisitions keep every measurement
	// interval dirty), the host halts further acquisitions until a clean
	// interval completes and fresh load measurements are available.
	// Zero disables halting.
	EstimateHaltAfter time.Duration
	// MaxOffloadPerRun caps how many objects one Offload pass may move.
	// Zero means unlimited — the paper's en-masse relocation, enabled by
	// the load bounds. Setting it to 1 recreates the move-one-then-wait
	// strawman the paper argues against (§1.2); used by ablations.
	MaxOffloadPerRun int
	// NeighborOnly restricts all relocation targets to direct topology
	// neighbors, recreating the ADR/WebWave-style placement the paper
	// contrasts itself with (§1.1: "objects are replicated only between
	// neighbor servers, which would result in high delays and overheads
	// for creating distant replicas"). Pair it with PolicyClosest for the
	// full related-work baseline. Off in the paper's protocol.
	NeighborOnly bool
	// ReplicaFloor is the minimum replica count the system tries to keep
	// per object — the availability extension paired with fault injection.
	// When > 1, the redirector refuses drops that would go below the floor
	// and every host's placement pass re-replicates hosted objects whose
	// replica count fell below it (a repair replication, reported
	// separately from geo/load moves). Zero or one preserves the paper's
	// behavior exactly: replicas exist only where demand warrants them and
	// only the last copy is protected.
	ReplicaFloor int
	// AvailabilityWeight folds an availability objective into the
	// replicate/migrate candidate ordering (the continuous-placement idea
	// of availability-aware replica placement): candidates are scored by
	// (1-w)·distance + w·availability-gain, where the gain rewards targets
	// that add a new copy and widen the minimum distance between surviving
	// replicas (failure-domain spread). Zero — the default — preserves the
	// paper's farthest-first ordering byte-for-byte; 1 orders candidates by
	// availability gain alone. Must be in [0, 1].
	AvailabilityWeight float64
	// StorageCapacity caps the number of objects a host may store —
	// the storage component of the §2.1 vector load ("the load metric
	// may be represented by a vector reflecting multiple components,
	// notably computational load and storage utilization"). A full host
	// refuses CreateObj requests. Zero means unlimited.
	StorageCapacity int
}

// Weighted scales the load watermarks by a host's relative power w,
// implementing the §2 heterogeneity note ("heterogeneity could be
// introduced by incorporating into the protocol weights corresponding to
// relative power of hosts"). w must be positive.
func (p Params) Weighted(w float64) Params {
	p.HighWatermark *= w
	p.LowWatermark *= w
	return p
}

// DefaultParams returns the paper's low-load configuration (Table 1):
// hw/lw = 90/80 req/s, u = 0.03 req/s, m = 6u, MIGR_RATIO = 0.6,
// REPL_RATIO = 1/6, distribution constant 2.
func DefaultParams() Params {
	return Params{
		HighWatermark:        90,
		LowWatermark:         80,
		DeletionThreshold:    0.03,
		ReplicationThreshold: 0.18,
		MigrRatio:            0.6,
		ReplRatio:            1.0 / 6.0,
		DistConstant:         2,
		EstimateHaltAfter:    60 * time.Second,
	}
}

// HighLoadParams returns the paper's high-load configuration (Fig. 9):
// hw/lw = 50/40 req/s, all else as DefaultParams.
func HighLoadParams() Params {
	p := DefaultParams()
	p.HighWatermark = 50
	p.LowWatermark = 40
	return p
}

// Validation errors returned by Params.Validate.
var (
	ErrWatermarks    = errors.New("protocol: need 0 < lw < hw")
	ErrThresholds    = errors.New("protocol: need 0 < 4u < m (Theorem 5 stability constraint)")
	ErrMigrRatio     = errors.New("protocol: MIGR_RATIO must be in (0.5, 1]")
	ErrReplRatio     = errors.New("protocol: need 0 < REPL_RATIO < MIGR_RATIO")
	ErrDistConstant  = errors.New("protocol: distribution constant must be > 1")
	ErrNilDependency = errors.New("protocol: missing dependency")
)

// Validate checks the theoretical constraints the paper imposes on the
// parameters (§4.2).
func (p Params) Validate() error {
	if p.LowWatermark <= 0 || p.HighWatermark <= p.LowWatermark {
		return fmt.Errorf("%w: hw=%v lw=%v", ErrWatermarks, p.HighWatermark, p.LowWatermark)
	}
	if p.DeletionThreshold <= 0 || p.ReplicationThreshold <= 4*p.DeletionThreshold {
		return fmt.Errorf("%w: u=%v m=%v", ErrThresholds, p.DeletionThreshold, p.ReplicationThreshold)
	}
	if p.MigrRatio <= 0.5 || p.MigrRatio > 1 {
		return fmt.Errorf("%w: got %v", ErrMigrRatio, p.MigrRatio)
	}
	if p.ReplRatio <= 0 || p.ReplRatio >= p.MigrRatio {
		return fmt.Errorf("%w: repl=%v migr=%v", ErrReplRatio, p.ReplRatio, p.MigrRatio)
	}
	if p.DistConstant <= 1 {
		return fmt.Errorf("%w: got %v", ErrDistConstant, p.DistConstant)
	}
	if p.EstimateHaltAfter < 0 {
		return fmt.Errorf("protocol: EstimateHaltAfter %v must be non-negative", p.EstimateHaltAfter)
	}
	if p.MaxOffloadPerRun < 0 {
		return fmt.Errorf("protocol: MaxOffloadPerRun %d must be non-negative", p.MaxOffloadPerRun)
	}
	if p.ReplicaFloor < 0 {
		return fmt.Errorf("protocol: ReplicaFloor %d must be non-negative", p.ReplicaFloor)
	}
	if p.AvailabilityWeight < 0 || p.AvailabilityWeight > 1 || p.AvailabilityWeight != p.AvailabilityWeight {
		return fmt.Errorf("protocol: AvailabilityWeight %v must be in [0,1]", p.AvailabilityWeight)
	}
	if p.StorageCapacity < 0 {
		return fmt.Errorf("protocol: StorageCapacity %d must be non-negative", p.StorageCapacity)
	}
	return nil
}
