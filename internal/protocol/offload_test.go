package protocol

import (
	"testing"
	"time"

	"radar/internal/object"
	"radar/internal/topology"
)

// TestOffloadOrdersByForeignRatio: the offloading host examines objects
// "starting with those that have a higher rate of foreign requests"
// (Fig. 5). With the recipient estimate capping the run after one move,
// the most-foreign object must be the one that moves.
func TestOffloadOrdersByForeignRatio(t *testing.T) {
	params := DefaultParams()
	c := newCluster(t, topology.Line(4), params)
	c.loads[0].total = params.HighWatermark * 2

	mostForeign := object.ID(100)
	leastForeign := object.ID(101)
	for _, id := range []object.ID{mostForeign, leastForeign} {
		c.seed(id, 0)
		// Heavy per-object load so the recipient saturates after one
		// accept (recipient estimate += 4 * 25 = 100 >= lw).
		c.loads[0].perObj[id] = 25
	}
	// Both foreign ratios sit below REPL_RATIO (1/6) so the geo pass can
	// move nothing and only Offload acts: 15% vs 5%.
	for i := 0; i < 15; i++ {
		c.hosts[0].OnRequest(mostForeign, 2)
	}
	for i := 0; i < 85; i++ {
		c.hosts[0].OnRequest(mostForeign, 0)
	}
	for i := 0; i < 5; i++ {
		c.hosts[0].OnRequest(leastForeign, 2)
	}
	for i := 0; i < 95; i++ {
		c.hosts[0].OnRequest(leastForeign, 0)
	}
	sum := c.hosts[0].DecidePlacement(100 * time.Second)
	if !sum.OffloadRan {
		t.Fatalf("offload did not run: %+v", sum)
	}
	if sum.OffloadSent != 1 {
		t.Fatalf("OffloadSent = %d, want 1 (recipient saturates after one heavy object)", sum.OffloadSent)
	}
	if c.red.ReplicaCount(mostForeign) != 2 {
		t.Error("most-foreign object did not move")
	}
	// The least-foreign object must still be exclusively at the source
	// (the single available move went to the more foreign one).
	if c.red.ReplicaCount(leastForeign) != 1 || !c.hosts[0].Has(leastForeign) {
		t.Error("least-foreign object moved before the most-foreign one")
	}
}

// TestOffloadExaminedOnce: an offload pass never moves the same object
// twice in one run (each object is examined once).
func TestOffloadExaminedOnce(t *testing.T) {
	params := DefaultParams()
	c := newCluster(t, topology.Line(4), params)
	overloadHostZero(t, c, params, 3, 100, 2) // hot objects, light loads
	sum := c.hosts[0].DecidePlacement(100 * time.Second)
	if !sum.OffloadRan {
		t.Fatalf("offload did not run: %+v", sum)
	}
	// Hot objects are replicated during offload: each may gain at most
	// one new affinity unit at the recipient per run.
	for i := 0; i < 3; i++ {
		id := object.ID(100 + i)
		total := c.red.TotalAffinity(id)
		if total > 2 {
			t.Errorf("object %d total affinity %d after one offload run, want <= 2", id, total)
		}
	}
}

// TestOffloadStopsWhenSourceEstimateRecovers: the lower-bound estimate
// crossing lw ends the run even with recipient headroom left.
func TestOffloadStopsWhenSourceEstimateRecovers(t *testing.T) {
	params := DefaultParams()
	c := newCluster(t, topology.Line(4), params)
	// Source barely above hw; the first shed pulls the lower estimate
	// under lw, so exactly one object moves.
	c.loads[0].total = params.HighWatermark + 1
	for i := 0; i < 4; i++ {
		id := object.ID(100 + i)
		c.seed(id, 0)
		c.loads[0].perObj[id] = 12 // shed bound 12 > (hw+1)-lw = 11
		for r := 0; r < 16; r++ {
			c.hosts[0].OnRequest(id, 0)
		}
	}
	sum := c.hosts[0].DecidePlacement(100 * time.Second)
	if !sum.OffloadRan {
		t.Fatalf("offload did not run: %+v", sum)
	}
	if sum.OffloadSent != 1 {
		t.Fatalf("OffloadSent = %d, want exactly 1 (source estimate recovered)", sum.OffloadSent)
	}
}

// TestPolicyAndMethodStrings locks the report vocabulary.
func TestPolicyAndMethodStrings(t *testing.T) {
	if PolicyPaper.String() != "paper" || PolicyRoundRobin.String() != "round-robin" || PolicyClosest.String() != "closest" {
		t.Error("policy names changed")
	}
	if Policy(42).String() != "Policy(42)" {
		t.Error("unknown policy name changed")
	}
	if Migrate.String() != "MIGRATE" || Replicate.String() != "REPLICATE" || Method(9).String() != "UNKNOWN" {
		t.Error("method names changed")
	}
	if GeoMove.String() != "geo" || LoadMove.String() != "load" {
		t.Error("move kind names changed")
	}
}

// TestWeightedParams checks the §2 heterogeneity scaling.
func TestWeightedParams(t *testing.T) {
	p := DefaultParams().Weighted(2)
	if p.HighWatermark != 180 || p.LowWatermark != 160 {
		t.Fatalf("weighted watermarks = %v/%v, want 180/160", p.HighWatermark, p.LowWatermark)
	}
	// Thresholds and ratios are per-object properties, not host capacity:
	// they must not scale.
	base := DefaultParams()
	if p.DeletionThreshold != base.DeletionThreshold || p.ReplicationThreshold != base.ReplicationThreshold {
		t.Error("weighting must not scale object thresholds")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("weighted params invalid: %v", err)
	}
}
