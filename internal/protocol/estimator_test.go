package protocol

import (
	"testing"
	"time"
)

func TestEstimatorInactivePassthrough(t *testing.T) {
	var e LoadEstimator
	if got := e.LoadForAccept(42); got != 42 {
		t.Errorf("LoadForAccept = %v, want measured 42", got)
	}
	if got := e.LoadForOffload(42); got != 42 {
		t.Errorf("LoadForOffload = %v, want measured 42", got)
	}
	if e.UpperActive() || e.LowerActive() {
		t.Error("fresh estimator has active estimates")
	}
}

func TestEstimatorUpperAccumulates(t *testing.T) {
	var e LoadEstimator
	e.OnAccept(10*time.Second, 50, 8) // seeds from measured 50
	if got := e.LoadForAccept(50); got != 58 {
		t.Fatalf("upper after first accept = %v, want 58", got)
	}
	e.OnAccept(11*time.Second, 999 /* measured ignored once active */, 4)
	if got := e.LoadForAccept(50); got != 62 {
		t.Fatalf("upper after second accept = %v, want 62", got)
	}
	// Offload side unaffected.
	if got := e.LoadForOffload(50); got != 50 {
		t.Fatalf("LoadForOffload = %v, want measured 50", got)
	}
}

func TestEstimatorLowerAccumulatesAndClamps(t *testing.T) {
	var e LoadEstimator
	e.OnShed(10*time.Second, 20, 15)
	if got := e.LoadForOffload(20); got != 5 {
		t.Fatalf("lower = %v, want 5", got)
	}
	e.OnShed(11*time.Second, 20, 50)
	if got := e.LoadForOffload(20); got != 0 {
		t.Fatalf("lower = %v, want clamped 0", got)
	}
	if got := e.LoadForAccept(20); got != 20 {
		t.Fatalf("LoadForAccept = %v, want measured 20", got)
	}
}

func TestEstimatorRetiresAfterCleanInterval(t *testing.T) {
	var e LoadEstimator
	e.OnAccept(25*time.Second, 50, 8)
	e.OnShed(26*time.Second, 50, 5)
	// Interval [20s, 40s) contains the relocations: still dirty.
	e.OnIntervalClose(20 * time.Second)
	if !e.UpperActive() || !e.LowerActive() {
		t.Fatal("estimates retired although relocations happened mid-interval")
	}
	// Interval [40s, 60s) started after both relocations: clean.
	e.OnIntervalClose(40 * time.Second)
	if e.UpperActive() || e.LowerActive() {
		t.Fatal("estimates not retired after clean interval")
	}
	if got := e.LoadForAccept(33); got != 33 {
		t.Fatalf("LoadForAccept = %v, want measured", got)
	}
}

func TestEstimatorRelocationAtIntervalStartCounts(t *testing.T) {
	// An acquisition at exactly the interval start is reflected in that
	// interval's measurement, so the estimate may retire.
	var e LoadEstimator
	e.OnAccept(40*time.Second, 10, 4)
	e.OnIntervalClose(40 * time.Second)
	if e.UpperActive() {
		t.Fatal("estimate should retire when interval starts at acquisition time")
	}
}

func TestEstimatorNewAcceptReseedsFromMeasured(t *testing.T) {
	var e LoadEstimator
	e.OnAccept(5*time.Second, 50, 8)
	e.OnIntervalClose(10 * time.Second) // clean: retires
	e.OnAccept(35*time.Second, 60, 2)   // re-seeds from new measured load
	if got := e.LoadForAccept(60); got != 62 {
		t.Fatalf("re-seeded upper = %v, want 62", got)
	}
}

func TestEstimatorBounds(t *testing.T) {
	var e LoadEstimator
	e.OnAccept(time.Second, 40, 10)
	e.OnShed(time.Second, 40, 5)
	lo, hi := e.Bounds(40)
	if lo != 35 || hi != 50 {
		t.Fatalf("Bounds = (%v, %v), want (35, 50)", lo, hi)
	}
	var fresh LoadEstimator
	lo, hi = fresh.Bounds(40)
	if lo != 40 || hi != 40 {
		t.Fatalf("fresh Bounds = (%v, %v), want (40, 40)", lo, hi)
	}
}

// TestEstimatorSandwichInvariant mimics Figure 8b: across a run of
// accepts, sheds and interval closes, lower <= upper must always hold
// whenever both are active, and both must bracket the seeded measurement.
func TestEstimatorSandwichInvariant(t *testing.T) {
	var e LoadEstimator
	measured := 60.0
	now := time.Duration(0)
	for step := 0; step < 200; step++ {
		now += time.Second
		switch step % 5 {
		case 0:
			e.OnAccept(now, measured, float64(step%7))
		case 2:
			e.OnShed(now, measured, float64(step%5))
		case 4:
			e.OnIntervalClose(now - 3*time.Second)
		}
		lo, hi := e.Bounds(measured)
		if lo > hi {
			t.Fatalf("step %d: lower %v > upper %v", step, lo, hi)
		}
	}
}

// TestEstimatorRetirementNeedsNoTraffic pins that estimate retirement is
// driven purely by measurement-interval closes (simulated time), never by
// request arrivals: a host that stops receiving requests entirely still
// sheds its bounds once a clean interval completes. The simulator closes
// every host's interval on a global tick, so an idle host's OnIntervalClose
// sequence is exactly this.
func TestEstimatorRetirementNeedsNoTraffic(t *testing.T) {
	var e LoadEstimator
	e.OnAccept(10*time.Second, 30, 6)
	e.OnShed(12*time.Second, 30, 4)
	// No Load()/ObjectLoad() interaction, no further relocations — only
	// the periodic interval closes an idle host still gets.
	for start := 0 * time.Second; start <= 10*time.Second; start += 5 * time.Second {
		e.OnIntervalClose(start)
	}
	if e.UpperActive() {
		t.Error("upper estimate survived clean intervals on an idle host (dirty interval [10s,15s) retired too early?)")
	}
	// lastShed = 12s > start 10s: the shed is retired only by the next
	// close, at start 15s.
	if !e.LowerActive() {
		t.Error("lower estimate retired by an interval that contained the shed")
	}
	e.OnIntervalClose(15 * time.Second)
	if e.LowerActive() {
		t.Error("lower estimate survived a clean interval on an idle host")
	}
	if got := e.LoadForAccept(7); got != 7 {
		t.Errorf("LoadForAccept = %v, want measured passthrough after retirement", got)
	}
}

// TestEstimatorReset pins the crash semantics: Reset discards both
// estimates AND their timing state, so a recovered host neither carries
// stale bounds nor trips the §2.1 footnote-2 acquisition halt on
// pre-crash upperSince.
func TestEstimatorReset(t *testing.T) {
	var e LoadEstimator
	e.OnAccept(time.Minute, 80, 10)
	e.OnShed(time.Minute, 80, 10)
	if !e.UpperActive() || !e.LowerActive() {
		t.Fatal("setup: estimates not active")
	}
	e.Reset()
	if e.UpperActive() || e.LowerActive() {
		t.Error("Reset left estimates active")
	}
	if got := e.UpperActiveFor(2 * time.Hour); got != 0 {
		t.Errorf("UpperActiveFor after Reset = %v, want 0 (stale upperSince would halt acquisitions)", got)
	}
	if got := e.LoadForAccept(12); got != 12 {
		t.Errorf("LoadForAccept after Reset = %v, want measured 12", got)
	}
	if got := e.LoadForOffload(12); got != 12 {
		t.Errorf("LoadForOffload after Reset = %v, want measured 12", got)
	}
	// A fresh accept after Reset reseeds from measured, exactly like a
	// newly booted host.
	e.OnAccept(90*time.Minute, 20, 5)
	if got := e.LoadForAccept(20); got != 25 {
		t.Errorf("upper after post-Reset accept = %v, want 25", got)
	}
	if got := e.UpperActiveFor(91 * time.Minute); got != time.Minute {
		t.Errorf("UpperActiveFor = %v, want 1m (active since the post-Reset accept)", got)
	}
}
