package protocol

import (
	"testing"
	"time"
)

func TestEstimatorInactivePassthrough(t *testing.T) {
	var e LoadEstimator
	if got := e.LoadForAccept(42); got != 42 {
		t.Errorf("LoadForAccept = %v, want measured 42", got)
	}
	if got := e.LoadForOffload(42); got != 42 {
		t.Errorf("LoadForOffload = %v, want measured 42", got)
	}
	if e.UpperActive() || e.LowerActive() {
		t.Error("fresh estimator has active estimates")
	}
}

func TestEstimatorUpperAccumulates(t *testing.T) {
	var e LoadEstimator
	e.OnAccept(10*time.Second, 50, 8) // seeds from measured 50
	if got := e.LoadForAccept(50); got != 58 {
		t.Fatalf("upper after first accept = %v, want 58", got)
	}
	e.OnAccept(11*time.Second, 999 /* measured ignored once active */, 4)
	if got := e.LoadForAccept(50); got != 62 {
		t.Fatalf("upper after second accept = %v, want 62", got)
	}
	// Offload side unaffected.
	if got := e.LoadForOffload(50); got != 50 {
		t.Fatalf("LoadForOffload = %v, want measured 50", got)
	}
}

func TestEstimatorLowerAccumulatesAndClamps(t *testing.T) {
	var e LoadEstimator
	e.OnShed(10*time.Second, 20, 15)
	if got := e.LoadForOffload(20); got != 5 {
		t.Fatalf("lower = %v, want 5", got)
	}
	e.OnShed(11*time.Second, 20, 50)
	if got := e.LoadForOffload(20); got != 0 {
		t.Fatalf("lower = %v, want clamped 0", got)
	}
	if got := e.LoadForAccept(20); got != 20 {
		t.Fatalf("LoadForAccept = %v, want measured 20", got)
	}
}

func TestEstimatorRetiresAfterCleanInterval(t *testing.T) {
	var e LoadEstimator
	e.OnAccept(25*time.Second, 50, 8)
	e.OnShed(26*time.Second, 50, 5)
	// Interval [20s, 40s) contains the relocations: still dirty.
	e.OnIntervalClose(20 * time.Second)
	if !e.UpperActive() || !e.LowerActive() {
		t.Fatal("estimates retired although relocations happened mid-interval")
	}
	// Interval [40s, 60s) started after both relocations: clean.
	e.OnIntervalClose(40 * time.Second)
	if e.UpperActive() || e.LowerActive() {
		t.Fatal("estimates not retired after clean interval")
	}
	if got := e.LoadForAccept(33); got != 33 {
		t.Fatalf("LoadForAccept = %v, want measured", got)
	}
}

func TestEstimatorRelocationAtIntervalStartCounts(t *testing.T) {
	// An acquisition at exactly the interval start is reflected in that
	// interval's measurement, so the estimate may retire.
	var e LoadEstimator
	e.OnAccept(40*time.Second, 10, 4)
	e.OnIntervalClose(40 * time.Second)
	if e.UpperActive() {
		t.Fatal("estimate should retire when interval starts at acquisition time")
	}
}

func TestEstimatorNewAcceptReseedsFromMeasured(t *testing.T) {
	var e LoadEstimator
	e.OnAccept(5*time.Second, 50, 8)
	e.OnIntervalClose(10 * time.Second) // clean: retires
	e.OnAccept(35*time.Second, 60, 2)   // re-seeds from new measured load
	if got := e.LoadForAccept(60); got != 62 {
		t.Fatalf("re-seeded upper = %v, want 62", got)
	}
}

func TestEstimatorBounds(t *testing.T) {
	var e LoadEstimator
	e.OnAccept(time.Second, 40, 10)
	e.OnShed(time.Second, 40, 5)
	lo, hi := e.Bounds(40)
	if lo != 35 || hi != 50 {
		t.Fatalf("Bounds = (%v, %v), want (35, 50)", lo, hi)
	}
	var fresh LoadEstimator
	lo, hi = fresh.Bounds(40)
	if lo != 40 || hi != 40 {
		t.Fatalf("fresh Bounds = (%v, %v), want (40, 40)", lo, hi)
	}
}

// TestEstimatorSandwichInvariant mimics Figure 8b: across a run of
// accepts, sheds and interval closes, lower <= upper must always hold
// whenever both are active, and both must bracket the seeded measurement.
func TestEstimatorSandwichInvariant(t *testing.T) {
	var e LoadEstimator
	measured := 60.0
	now := time.Duration(0)
	for step := 0; step < 200; step++ {
		now += time.Second
		switch step % 5 {
		case 0:
			e.OnAccept(now, measured, float64(step%7))
		case 2:
			e.OnShed(now, measured, float64(step%5))
		case 4:
			e.OnIntervalClose(now - 3*time.Second)
		}
		lo, hi := e.Bounds(measured)
		if lo > hi {
			t.Fatalf("step %d: lower %v > upper %v", step, lo, hi)
		}
	}
}
