package protocol

import (
	"math/rand"
	"testing"
	"testing/quick"

	"radar/internal/object"
	"radar/internal/routing"
	"radar/internal/topology"
)

// The tests in this file check the Theorem 1-5 bounds (paper §3) against
// randomized feasible system states rather than hand-picked numbers.
//
// Model: one object, replicas 1..n with affinities a_i >= 1 and unit
// request counts w_i. The distribution algorithm (Fig. 2, constant c=2)
// keeps every unit count within a factor 2 of the minimum, so a feasible
// steady state is modeled by drawing w_i uniformly from [1, 2]. The
// object attracts total load L; replica i carries the share
// ℓ_i = L·a_i·w_i / Σ_j a_j·w_j. A replication or migration then moves
// the system to a fresh, independently drawn feasible state over the new
// replica set; the theorems bound how far any such post-state can move a
// host's load, and the properties below assert exactly that.

// boundState is one randomized feasible steady state.
type boundState struct {
	affs    []int     // replica affinities, source is index 0
	weights []float64 // unit request counts, each in [1, 2]
	total   float64   // total object load L
}

func randomState(rng *rand.Rand, nReplicas int) boundState {
	s := boundState{
		affs:    make([]int, nReplicas),
		weights: make([]float64, nReplicas),
		total:   1 + 99*rng.Float64(),
	}
	for i := range s.affs {
		s.affs[i] = 1 + rng.Intn(6)
		s.weights[i] = 1 + rng.Float64()
	}
	return s
}

// reweigh draws fresh feasible unit counts for the same replica set.
func (s boundState) reweigh(rng *rand.Rand) boundState {
	out := s
	out.weights = make([]float64, len(s.weights))
	for i := range out.weights {
		out.weights[i] = 1 + rng.Float64()
	}
	return out
}

// load returns replica i's share of the object's load.
func (s boundState) load(i int) float64 {
	sum := 0.0
	for j := range s.affs {
		sum += float64(s.affs[j]) * s.weights[j]
	}
	return s.total * float64(s.affs[i]) * s.weights[i] / sum
}

const boundTrials = 5000

// TestReplicationBoundsProperty: Theorems 1 and 2. Replicating the
// source replica onto a fresh host (affinity 1, counts reset) and letting
// the distribution algorithm settle into any feasible state must not
// drop the source's load by more than ReplicationSourceMaxDecrease nor
// raise the recipient's load by more than ReplicationTargetMaxIncrease.
func TestReplicationBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < boundTrials; trial++ {
		pre := randomState(rng, 1+rng.Intn(5))
		srcLoad := pre.load(0)
		srcAff := pre.affs[0]

		post := pre
		post.affs = append(append([]int{}, pre.affs...), 1) // new replica, aff 1
		post.weights = append(append([]float64{}, pre.weights...), 0)
		post = post.reweigh(rng)

		decrease := srcLoad - post.load(0)
		if max := ReplicationSourceMaxDecrease(srcLoad); decrease > max+1e-9 {
			t.Fatalf("trial %d: thm1 violated: source dropped %v, bound %v (state %+v -> %+v)",
				trial, decrease, max, pre, post)
		}
		increase := post.load(len(post.affs) - 1) // recipient had no load before
		if max := ReplicationTargetMaxIncrease(srcLoad, srcAff); increase > max+1e-9 {
			t.Fatalf("trial %d: thm2 violated: target gained %v, bound %v (state %+v -> %+v)",
				trial, increase, max, pre, post)
		}
	}
}

// TestMigrationBoundsProperty: Theorems 3 and 4. Migrating one affinity
// unit from the source to a fresh host must not drop the source's load by
// more than MigrationSourceMaxDecrease nor raise the recipient's by more
// than MigrationTargetMaxIncrease; with affinity 1 the object leaves the
// source entirely and the decrease is exactly the whole load.
func TestMigrationBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < boundTrials; trial++ {
		pre := randomState(rng, 1+rng.Intn(5))
		srcLoad := pre.load(0)
		srcAff := pre.affs[0]

		post := pre
		post.affs = append(append([]int{}, pre.affs...), 1) // moved unit, aff 1
		post.weights = append(append([]float64{}, pre.weights...), 0)
		post.affs[0]-- // one unit leaves the source
		post = post.reweigh(rng)

		var postSrc float64
		if post.affs[0] > 0 {
			postSrc = post.load(0)
		} // affinity 0: replica gone, load 0

		decrease := srcLoad - postSrc
		if max := MigrationSourceMaxDecrease(srcLoad, srcAff); decrease > max+1e-9 {
			t.Fatalf("trial %d: thm3 violated: source dropped %v, bound %v (state %+v -> %+v)",
				trial, decrease, max, pre, post)
		}
		increase := post.load(len(post.affs) - 1)
		if max := MigrationTargetMaxIncrease(srcLoad, srcAff); increase > max+1e-9 {
			t.Fatalf("trial %d: thm4 violated: target gained %v, bound %v (state %+v -> %+v)",
				trial, increase, max, pre, post)
		}
	}
}

// TestReplicationThresholdProperty: Theorem 5. If replication only
// triggers above unit access count m, every replica keeps a unit count
// above m/4, so with deletion threshold u satisfying the stability
// constraint 4u < m a fresh replica can never be eligible for immediate
// deletion.
func TestReplicationThresholdProperty(t *testing.T) {
	f := func(mRaw, uRaw uint16) bool {
		m := float64(mRaw)/100 + 0.01
		floor := MinUnitAccessAfterReplication(m)
		if floor != m/4 {
			return false
		}
		u := float64(uRaw) / 100
		if 4*u < m && floor <= u {
			return false // stability constraint must protect new replicas
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestDistributionKeepsUnitCountsBalanced drives a paper-policy
// redirector with random gateways and replica sets and checks the
// invariant behind the feasible-state model above: after every choice,
// each replica's unit request count stays within DistConstant times the
// minimum, plus the one in-flight increment.
func TestDistributionKeepsUnitCountsBalanced(t *testing.T) {
	topo := topology.UUNET()
	routes := routing.New(topo)
	rng := rand.New(rand.NewSource(3))
	const id = object.ID(42)

	for trial := 0; trial < 50; trial++ {
		r, err := NewRedirector(routes.MinAvgDistanceNode(), routes, PolicyPaper, 2)
		if err != nil {
			t.Fatal(err)
		}
		nReplicas := 1 + rng.Intn(6)
		for i := 0; i < nReplicas; i++ {
			host := topology.NodeID(rng.Intn(topo.NumNodes()))
			r.NotifyReplicaChange(id, host, 1+rng.Intn(4))
		}
		for step := 0; step < 400; step++ {
			g := topology.NodeID(rng.Intn(topo.NumNodes()))
			if _, err := r.ChooseReplica(g, id); err != nil {
				t.Fatal(err)
			}
			reps := r.Replicas(id)
			min := reps[0].unitRcnt()
			for _, rep := range reps {
				if u := rep.unitRcnt(); u < min {
					min = u
				}
			}
			for _, rep := range reps {
				if u := rep.unitRcnt(); u > 2*min+1+1e-9 {
					t.Fatalf("trial %d step %d: unit count %v exceeds 2·min+1 (min %v, replicas %+v)",
						trial, step, u, min, reps)
				}
			}
		}
	}
}
