package protocol

import (
	"errors"
	"testing"
)

func TestDefaultParamsMatchTable1(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	if p.HighWatermark != 90 || p.LowWatermark != 80 {
		t.Errorf("watermarks = %v/%v, want 90/80 (Table 1 low-load)", p.HighWatermark, p.LowWatermark)
	}
	if p.DeletionThreshold != 0.03 {
		t.Errorf("u = %v, want 0.03 req/s", p.DeletionThreshold)
	}
	if p.ReplicationThreshold != 0.18 {
		t.Errorf("m = %v, want 6u = 0.18 req/s", p.ReplicationThreshold)
	}
	if p.MigrRatio != 0.6 {
		t.Errorf("MIGR_RATIO = %v, want 0.6", p.MigrRatio)
	}
	if p.ReplRatio != 1.0/6.0 {
		t.Errorf("REPL_RATIO = %v, want 1/6", p.ReplRatio)
	}
	if p.DistConstant != 2 {
		t.Errorf("distribution constant = %v, want 2", p.DistConstant)
	}
}

func TestHighLoadParamsMatchFigure9(t *testing.T) {
	p := HighLoadParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("high-load params invalid: %v", err)
	}
	if p.HighWatermark != 50 || p.LowWatermark != 40 {
		t.Errorf("watermarks = %v/%v, want 50/40 (Figure 9)", p.HighWatermark, p.LowWatermark)
	}
}

func TestParamsValidate(t *testing.T) {
	base := DefaultParams()
	tests := []struct {
		name    string
		mutate  func(*Params)
		wantErr error
	}{
		{"lw >= hw", func(p *Params) { p.LowWatermark = p.HighWatermark }, ErrWatermarks},
		{"lw zero", func(p *Params) { p.LowWatermark = 0 }, ErrWatermarks},
		{"m = 4u violates theorem 5", func(p *Params) { p.ReplicationThreshold = 4 * p.DeletionThreshold }, ErrThresholds},
		{"u zero", func(p *Params) { p.DeletionThreshold = 0 }, ErrThresholds},
		{"migr ratio at 0.5 allows ping-pong", func(p *Params) { p.MigrRatio = 0.5 }, ErrMigrRatio},
		{"migr ratio above 1", func(p *Params) { p.MigrRatio = 1.1 }, ErrMigrRatio},
		{"repl ratio >= migr ratio", func(p *Params) { p.ReplRatio = p.MigrRatio }, ErrReplRatio},
		{"repl ratio zero", func(p *Params) { p.ReplRatio = 0 }, ErrReplRatio},
		{"dist constant 1", func(p *Params) { p.DistConstant = 1 }, ErrDistConstant},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := base
			tc.mutate(&p)
			if err := p.Validate(); !errors.Is(err, tc.wantErr) {
				t.Fatalf("Validate() = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestStabilityConstraintIsTheorem5(t *testing.T) {
	// The m/4 floor of Theorem 5 must exceed the deletion threshold for
	// the paper's arguments to hold; Validate must enforce it strictly.
	p := DefaultParams()
	if MinUnitAccessAfterReplication(p.ReplicationThreshold) <= p.DeletionThreshold {
		t.Fatalf("m/4 = %v must exceed u = %v",
			MinUnitAccessAfterReplication(p.ReplicationThreshold), p.DeletionThreshold)
	}
}
