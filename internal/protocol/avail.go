package protocol

import (
	"sort"

	"radar/internal/object"
	"radar/internal/topology"
)

// Availability-aware candidate ordering — the continuous-placement
// objective of availability-aware replica placement folded into the
// Fig. 3 replicate/migrate decision. The paper orders candidates
// farthest-first (responsiveness); with Params.AvailabilityWeight w > 0
// each candidate p is instead scored
//
//	score(p) = (1-w)·dist(h,p)/D + w·(newCopy(p) + spread(p))/2
//
// where D is the topology diameter, newCopy(p) is 1 iff p holds no
// replica of the object (the move widens the failure-domain set), and
// spread(p) is the minimum distance from p to the replicas that survive
// the move, normalized by D — placing far from existing copies keeps a
// regional outage from taking out the whole set. Candidates are tried in
// decreasing score; ties preserve the paper's farthest-first order.
//
// Additionally, when a replica floor is configured, migrations onto a
// host that already holds a copy are demoted behind every other
// candidate whenever the recorded set is at or below the floor: such a
// migration merges two replicas into one (the target absorbs the copy as
// an affinity increment and the source then asks to drop), so it either
// thins the set toward the floor or is refused by the redirector and
// wasted. With w = 0 none of this runs and the ordering — including its
// redirector traffic — is byte-for-byte the paper's.

// availCand pairs a candidate with its score and floor-safety verdict.
type availCand struct {
	node  topology.NodeID
	score float64
	safe  bool
}

// orderCandidates returns the candidate targets for moving id (method is
// Migrate or Replicate) in the order they should be tried. With
// AvailabilityWeight zero it is exactly candidatesByDistanceDesc.
func (h *Host) orderCandidates(id object.ID, st *ObjectState, method Method) []topology.NodeID {
	cands := h.candidatesByDistanceDesc(st)
	w := h.params.AvailabilityWeight
	if w == 0 || len(cands) < 2 {
		return cands
	}
	diam := float64(h.env.Routes.Diameter())
	if diam <= 0 {
		return cands
	}
	h.replBuf = h.env.RedirectorFor(id).ReplicaHosts(id, h.replBuf)
	replicas := h.replBuf

	if cap(h.availBuf) < len(cands) {
		h.availBuf = make([]availCand, 0, len(cands))
	}
	scored := h.availBuf[:0]
	for _, p := range cands {
		scored = append(scored, availCand{
			node:  p,
			score: h.availScore(p, replicas, method, w, diam),
			safe:  h.floorSafe(p, replicas, method),
		})
	}
	sort.SliceStable(scored, func(i, j int) bool {
		if scored[i].safe != scored[j].safe {
			return scored[i].safe
		}
		return scored[i].score > scored[j].score
	})
	for i := range scored {
		cands[i] = scored[i].node
	}
	h.availBuf = scored
	return cands
}

// availScore computes the blended distance/availability score of placing
// a copy of the object on p given its current replica hosts.
func (h *Host) availScore(p topology.NodeID, replicas []topology.NodeID, method Method, w, diam float64) float64 {
	distNorm := float64(h.env.Routes.Distance(h.ID, p)) / diam
	newCopy := 1.0
	for _, r := range replicas {
		if r == p {
			newCopy = 0
			break
		}
	}
	// spread: minimum distance from p to the copies that survive the move
	// (a migration's source copy departs). No surviving peer means any
	// placement maximizes diversity.
	spread, first := 1.0, true
	for _, r := range replicas {
		if method == Migrate && r == h.ID {
			continue
		}
		var d float64
		if r != p {
			d = float64(h.env.Routes.Distance(p, r)) / diam
		}
		if first || d < spread {
			spread, first = d, false
		}
	}
	return (1-w)*distNorm + w*(newCopy+spread)/2
}

// floorSafe reports whether trying candidate p cannot thin the replica
// set below the floor. Only a migration onto a host already holding a
// copy is unsafe, and only while the recorded set is at or below the
// floor; replications always grow or keep the set.
func (h *Host) floorSafe(p topology.NodeID, replicas []topology.NodeID, method Method) bool {
	if method != Migrate || h.params.ReplicaFloor <= 1 || len(replicas) > h.params.ReplicaFloor {
		return true
	}
	for _, r := range replicas {
		if r == p {
			return false
		}
	}
	return true
}
