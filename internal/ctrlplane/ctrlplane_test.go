package ctrlplane

import (
	"math/rand"
	"testing"
	"time"

	"radar/internal/topology"
)

// instantTransport delivers every leg after a fixed latency, counting legs.
func instantTransport(latency time.Duration, legs *int) Transport {
	return func(now time.Duration, from, to topology.NodeID) (time.Duration, bool) {
		if legs != nil {
			*legs++
		}
		return now + latency, true
	}
}

func newPlane(t *testing.T, faults Faults, tr Transport) *Plane {
	t.Helper()
	p, err := New(Params{}, faults, rand.New(rand.NewSource(1)), tr)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCallReliableSucceedsFirstTry(t *testing.T) {
	p := newPlane(t, Faults{}, instantTransport(10*time.Millisecond, nil))
	var execAt time.Duration
	execs := 0
	res, tok, doneAt, ok := p.Call(time.Second, 0, 1, 0, func(at time.Duration) bool {
		execs++
		execAt = at
		return true
	})
	if !ok || !res || execs != 1 {
		t.Fatalf("Call = (%v, ok=%v), execs=%d", res, ok, execs)
	}
	if tok == 0 {
		t.Fatal("no token allocated")
	}
	if execAt != time.Second+10*time.Millisecond {
		t.Fatalf("callee ran at %v, want 1.01s", execAt)
	}
	if doneAt != time.Second+20*time.Millisecond {
		t.Fatalf("reply at %v, want 1.02s (request + reply legs)", doneAt)
	}
	s := p.Stats()
	if s.Attempts != 1 || s.Retries != 0 || s.Timeouts != 0 || s.Lost != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestCallDropOneIsLostAfterBudget(t *testing.T) {
	p := newPlane(t, Faults{Drop: 1}, instantTransport(time.Millisecond, nil))
	execs := 0
	_, tok, doneAt, ok := p.Call(0, 0, 1, 0, func(time.Duration) bool {
		execs++
		return true
	})
	if ok {
		t.Fatal("drop:1 RPC succeeded")
	}
	if execs != 0 {
		t.Fatalf("callee ran %d times despite total loss", execs)
	}
	s := p.Stats()
	if want := int64(1 + p.Params().Retries); s.Attempts != want {
		t.Fatalf("attempts = %d, want %d", s.Attempts, want)
	}
	if s.Retries != int64(p.Params().Retries) || s.Lost != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// Give-up time covers every timeout window plus backoffs.
	if minDone := time.Duration(s.Attempts) * p.Params().Timeout; doneAt < minDone {
		t.Fatalf("gave up at %v, before %d timeout windows (%v)", doneAt, s.Attempts, minDone)
	}
	if tok == 0 {
		t.Fatal("lost call must still return its token for deferred retry")
	}
}

func TestCallDupExecutesOnce(t *testing.T) {
	legs := 0
	p := newPlane(t, Faults{Dup: 1}, instantTransport(time.Millisecond, &legs))
	execs := 0
	res, _, _, ok := p.Call(0, 0, 1, 0, func(time.Duration) bool {
		execs++
		return true
	})
	if !ok || !res {
		t.Fatalf("Call = (%v, %v)", res, ok)
	}
	if execs != 1 {
		t.Fatalf("callee ran %d times under dup:1, want 1", execs)
	}
	// Request + its duplicate + reply + its duplicate all hit the wire.
	if legs != 4 {
		t.Fatalf("transport legs = %d, want 4", legs)
	}
	if s := p.Stats(); s.DupLegs != 2 {
		t.Fatalf("dup legs = %d, want 2", s.DupLegs)
	}
}

func TestCallTokenReplayIsIdempotent(t *testing.T) {
	// First call: requests always arrive, replies always lost -> callee
	// executed, caller gives up. Same-token retry on a healed plane must
	// replay the cached verdict without re-executing.
	failReplies := true
	tr := func(now time.Duration, from, to topology.NodeID) (time.Duration, bool) {
		if failReplies && from == 1 { // reply direction
			return now, false
		}
		return now + time.Millisecond, true
	}
	p := newPlane(t, Faults{}, tr)
	execs := 0
	exec := func(time.Duration) bool {
		execs++
		return true
	}
	_, tok, _, ok := p.Call(0, 0, 1, 0, exec)
	if ok {
		t.Fatal("call should have been lost (replies severed)")
	}
	if execs != 1 {
		t.Fatalf("callee ran %d times (retries must dedupe on token), want 1", execs)
	}
	failReplies = false
	res, tok2, _, ok := p.Call(time.Minute, 0, 1, tok, exec)
	if !ok || !res {
		t.Fatalf("same-token retry = (%v, %v)", res, ok)
	}
	if tok2 != tok {
		t.Fatalf("token changed on re-issue: %d -> %d", tok, tok2)
	}
	if execs != 1 {
		t.Fatalf("callee re-executed on token replay: %d runs", execs)
	}
}

func TestCallTimeoutFromDelay(t *testing.T) {
	// Transport latency beyond the per-attempt timeout: every attempt
	// times out even with zero drop probability, and the callee runs only
	// once thanks to token dedupe.
	p, err := New(Params{Timeout: 10 * time.Millisecond}, Faults{},
		rand.New(rand.NewSource(1)), instantTransport(50*time.Millisecond, nil))
	if err != nil {
		t.Fatal(err)
	}
	execs := 0
	_, _, _, ok := p.Call(0, 0, 1, 0, func(time.Duration) bool {
		execs++
		return true
	})
	if ok {
		t.Fatal("late replies must count as timeouts")
	}
	if execs != 1 {
		t.Fatalf("callee ran %d times, want 1 (requests all arrive)", execs)
	}
	if s := p.Stats(); s.Timeouts != s.Attempts {
		t.Fatalf("stats = %+v, want every attempt timed out", s)
	}
}

func TestNotifyLossAndDelivery(t *testing.T) {
	p := newPlane(t, Faults{Drop: 1}, instantTransport(time.Millisecond, nil))
	applied := false
	if p.Notify(0, 0, 1, func(time.Duration) { applied = true }) || applied {
		t.Fatal("drop:1 notify delivered")
	}
	p2 := newPlane(t, Faults{}, instantTransport(time.Millisecond, nil))
	var at time.Duration
	if !p2.Notify(time.Second, 0, 1, func(a time.Duration) { at = a }) {
		t.Fatal("reliable notify lost")
	}
	if at != time.Second+time.Millisecond {
		t.Fatalf("notify applied at %v", at)
	}
	if s := p.Stats(); s.NotifiesSent != 1 || s.NotifiesLost != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLoopbackLegIsExempt(t *testing.T) {
	p := newPlane(t, Faults{Drop: 1}, func(time.Duration, topology.NodeID, topology.NodeID) (time.Duration, bool) {
		t.Fatal("loopback leg hit the transport")
		return 0, false
	})
	res, _, doneAt, ok := p.Call(time.Second, 3, 3, 0, func(time.Duration) bool { return true })
	if !ok || !res || doneAt != time.Second {
		t.Fatalf("loopback call = (%v, %v, %v)", res, ok, doneAt)
	}
}

func TestCallDeterministicGivenSeed(t *testing.T) {
	run := func() (Stats, time.Duration) {
		p := newPlane(t, Faults{Drop: 0.5, Dup: 0.3, Delay: 20 * time.Millisecond},
			instantTransport(time.Millisecond, nil))
		var last time.Duration
		for i := 0; i < 50; i++ {
			_, _, doneAt, _ := p.Call(time.Duration(i)*time.Second, 0, 1, 0,
				func(time.Duration) bool { return true })
			last = doneAt
		}
		return p.Stats(), last
	}
	s1, d1 := run()
	s2, d2 := run()
	if s1 != s2 || d1 != d2 {
		t.Fatalf("non-deterministic: %+v/%v vs %+v/%v", s1, d1, s2, d2)
	}
	if s1.DroppedLegs == 0 || s1.DupLegs == 0 {
		t.Fatalf("faults never fired: %+v", s1)
	}
}

func TestParamsValidate(t *testing.T) {
	for _, bad := range []Params{
		{Timeout: -time.Second},
		{Retries: -1},
		{BackoffBase: -time.Millisecond},
		{BackoffBase: time.Second, BackoffCap: time.Millisecond},
		{ReconcileInterval: -time.Minute},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%+v) succeeded, want error", bad)
		}
	}
	if err := (Params{}).Validate(); err != nil {
		t.Errorf("zero params rejected: %v", err)
	}
	def := Params{}.WithDefaults()
	if def.Timeout != time.Second || def.Retries != 3 ||
		def.BackoffBase != 200*time.Millisecond || def.BackoffCap != 2*time.Second ||
		def.ReconcileInterval != 100*time.Second {
		t.Fatalf("defaults = %+v", def)
	}
	if err := def.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsNilDeps(t *testing.T) {
	tr := instantTransport(0, nil)
	if _, err := New(Params{}, Faults{}, nil, tr); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := New(Params{}, Faults{}, rand.New(rand.NewSource(1)), nil); err == nil {
		t.Error("nil transport accepted")
	}
	if _, err := New(Params{Retries: -1}, Faults{}, rand.New(rand.NewSource(1)), tr); err == nil {
		t.Error("invalid params accepted")
	}
}
