// Package ctrlplane is the unreliable control plane: it carries the
// protocol's CreateObj/Offload handshakes and redirector notifications as
// request/reply message legs over the simulated network, injecting message
// loss, duplication, and extra delay from the fault DSL's drop/dup/cdelay
// terms, and makes RPCs correct under those faults with per-attempt
// timeouts, capped exponential backoff with deterministic jitter, a
// bounded retry budget, and message-ID-keyed idempotence (at-most-once
// callee execution, cached-result replay for duplicates and retries).
//
// The simulation resolves handshakes inline at decision time — faithful to
// the paper, where CreateObj is a blocking synchronous exchange — but every
// leg is charged through the network at its true send time and the
// completion time reflects delivery latency, timeouts, and backoff, so a
// lossy control plane slows and defers placement work exactly as a real
// one would.
//
// Determinism contract: all stochastic draws come from a *rand.Rand the
// simulation derives from the master seed on a stream reserved for control
// messages (disjoint from workload and fault-timeline streams). The plane
// is only constructed when the fault spec arms message faults, so
// fault-free runs never touch it and stay bit-identical to a build without
// this package.
package ctrlplane

import (
	"fmt"
	"math/rand"
	"time"

	"radar/internal/topology"
)

// Params tunes RPC retry behavior and reconciliation cadence. The zero
// value selects the documented defaults via WithDefaults.
type Params struct {
	// Timeout is the per-attempt RPC timeout: if the reply has not arrived
	// this long after the attempt's request was sent, the caller retries
	// (default 1s).
	Timeout time.Duration
	// Retries is the retry budget after the first attempt; an RPC is
	// reported Lost after 1+Retries failed attempts (default 3).
	Retries int
	// BackoffBase is the first retry's backoff ceiling; successive
	// attempts double it up to BackoffCap. The actual wait is a
	// deterministic jitter in [base/2, base] drawn from the control-plane
	// stream (defaults 200ms, capped at 2s).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// ReconcileInterval is the anti-entropy period: every interval each
	// host exchanges a replica digest with the redirectors, healing
	// orphaned replicas and stale records left by lost notifications
	// (default 100s, the placement interval).
	ReconcileInterval time.Duration
}

// WithDefaults returns p with zero fields replaced by the defaults.
func (p Params) WithDefaults() Params {
	if p.Timeout == 0 {
		p.Timeout = time.Second
	}
	if p.Retries == 0 {
		p.Retries = 3
	}
	if p.BackoffBase == 0 {
		p.BackoffBase = 200 * time.Millisecond
	}
	if p.BackoffCap == 0 {
		p.BackoffCap = 2 * time.Second
	}
	if p.ReconcileInterval == 0 {
		p.ReconcileInterval = 100 * time.Second
	}
	return p
}

// Validate rejects nonsensical parameters. It accepts the zero value
// (resolved by WithDefaults) but not negative or inconsistent settings.
func (p Params) Validate() error {
	if p.Timeout < 0 {
		return fmt.Errorf("ctrlplane: negative timeout %v", p.Timeout)
	}
	if p.Retries < 0 {
		return fmt.Errorf("ctrlplane: negative retry budget %d", p.Retries)
	}
	if p.BackoffBase < 0 || p.BackoffCap < 0 {
		return fmt.Errorf("ctrlplane: negative backoff %v/%v", p.BackoffBase, p.BackoffCap)
	}
	if p.BackoffBase > 0 && p.BackoffCap > 0 && p.BackoffCap < p.BackoffBase {
		return fmt.Errorf("ctrlplane: backoff cap %v below base %v", p.BackoffCap, p.BackoffBase)
	}
	if p.ReconcileInterval < 0 {
		return fmt.Errorf("ctrlplane: negative reconcile interval %v", p.ReconcileInterval)
	}
	return nil
}

// Backoff is the plane's retry wait schedule — capped exponential growth
// with jitter drawn uniformly from [b/2, b] — extracted as a standalone
// value so other control-plane transports (the live HTTP client) back off
// exactly as the simulated plane does. The zero value waits zero forever;
// obtain one from Params.NewBackoff.
type Backoff struct {
	next time.Duration
	cap  time.Duration
}

// NewBackoff returns the retry schedule for p, starting at BackoffBase and
// doubling up to BackoffCap. p should be resolved with WithDefaults first.
func (p Params) NewBackoff() Backoff {
	return Backoff{next: p.BackoffBase, cap: p.BackoffCap}
}

// Wait returns the jittered wait before the next retry and advances the
// schedule. rng supplies the jitter draw; the plane passes its reserved
// control stream, live transports pass any seeded source.
func (b *Backoff) Wait(rng *rand.Rand) time.Duration {
	w := jitteredWait(b.next, rng)
	if b.next *= 2; b.next > b.cap {
		b.next = b.cap
	}
	return w
}

// jitteredWait returns a jittered backoff in [b/2, b].
func jitteredWait(b time.Duration, rng *rand.Rand) time.Duration {
	if b <= 0 {
		return 0
	}
	half := b / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// Faults are the message-fault terms from the schedule DSL.
type Faults struct {
	// Drop is the per-leg loss probability.
	Drop float64
	// Dup is the per-delivered-leg duplication probability; copies are
	// charged to the network and absorbed by message-ID dedupe.
	Dup float64
	// Delay is the maximum extra per-leg delay (uniform in [0, Delay]).
	Delay time.Duration
}

// Stats counts control-plane activity for the run report.
type Stats struct {
	// Attempts is the total request attempts (first tries + retries).
	Attempts int64
	// Retries is the subset of Attempts after the first try of an RPC.
	Retries int64
	// Timeouts counts attempts whose reply missed the per-attempt timeout.
	Timeouts int64
	// Lost counts RPCs abandoned after the full retry budget.
	Lost int64
	// DroppedLegs counts message legs that failed to arrive (injected
	// drops and severed paths).
	DroppedLegs int64
	// DupLegs counts injected duplicate legs.
	DupLegs int64
	// NotifiesSent / NotifiesLost count one-way notifications.
	NotifiesSent int64
	NotifiesLost int64
}

// Transport delivers one message leg from one node toward another at the
// given virtual time, charging it to the network, and reports the arrival
// time and whether it physically arrived (a severed path strands the
// message at the partition boundary). The simulation supplies this; the
// plane layers probabilistic faults on top.
type Transport func(now time.Duration, from, to topology.NodeID) (arrival time.Duration, ok bool)

// Plane carries control RPCs and notifications with injected faults.
// It is not safe for concurrent use; the single-threaded event loop of one
// simulation owns it.
type Plane struct {
	params    Params
	faults    Faults
	rng       *rand.Rand
	transport Transport
	// results caches each message ID's callee verdict, making retries and
	// duplicates idempotent: the callee runs at most once per ID.
	// Entries are dropped once the caller sees the reply; IDs of Lost RPCs
	// keep theirs so a deferred re-issue with the same token replays it.
	results map[uint64]bool
	nextID  uint64
	stats   Stats
}

// New builds a plane. params are resolved with WithDefaults and must
// validate; rng must be non-nil (the reserved control-message stream).
func New(params Params, faults Faults, rng *rand.Rand, transport Transport) (*Plane, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("ctrlplane: nil rng")
	}
	if transport == nil {
		return nil, fmt.Errorf("ctrlplane: nil transport")
	}
	return &Plane{
		params:    params.WithDefaults(),
		faults:    faults,
		rng:       rng,
		transport: transport,
		results:   make(map[uint64]bool),
	}, nil
}

// Params returns the resolved parameters.
func (p *Plane) Params() Params { return p.params }

// Stats returns a snapshot of the activity counters.
func (p *Plane) Stats() Stats { return p.stats }

// NextToken allocates a fresh message ID.
func (p *Plane) NextToken() uint64 {
	p.nextID++
	return p.nextID
}

// Call executes an at-most-once request/reply RPC from caller to callee.
// token 0 allocates a fresh message ID; passing a previous Call's returned
// token re-issues that RPC with the same identity, so a retry of a Lost
// call whose request actually reached the callee replays the cached
// verdict instead of re-executing (no double-create, no double-count).
//
// exec is the callee-side handler; it runs at most once per token, at the
// virtual arrival time of the first surviving request leg, and its verdict
// is what the reply carries. Call returns the verdict, the token (for
// deferred re-issue), the caller-side completion time (reply arrival, or
// the post-backoff give-up time), and ok=false when the retry budget was
// exhausted — the caller cannot distinguish "never executed" from
// "executed, reply lost"; only a same-token retry or reconciliation can.
func (p *Plane) Call(now time.Duration, from, to topology.NodeID, token uint64, exec func(at time.Duration) bool) (verdict bool, tok uint64, doneAt time.Duration, ok bool) {
	if token == 0 {
		token = p.NextToken()
	}
	t := now
	backoff := p.params.NewBackoff()
	for attempt := 0; attempt <= p.params.Retries; attempt++ {
		p.stats.Attempts++
		if attempt > 0 {
			p.stats.Retries++
		}
		deadline := t + p.params.Timeout
		reqAt, reqOK := p.leg(t, from, to)
		if reqOK {
			res := p.execOnce(token, reqAt, exec)
			if replyAt, replyOK := p.leg(reqAt, to, from); replyOK && replyAt <= deadline {
				// Confirmed: the caller will never reuse this token.
				delete(p.results, token)
				return res, token, replyAt, true
			}
		}
		p.stats.Timeouts++
		t = deadline + backoff.Wait(p.rng)
	}
	p.stats.Lost++
	return false, token, t, false
}

// Notify sends a one-way, fire-and-forget notification; apply runs at the
// arrival time if the single leg survives. Lost notifications are the
// orphan source that anti-entropy reconciliation heals later.
func (p *Plane) Notify(now time.Duration, from, to topology.NodeID, apply func(at time.Duration)) bool {
	p.stats.NotifiesSent++
	at, ok := p.leg(now, from, to)
	if !ok {
		p.stats.NotifiesLost++
		return false
	}
	apply(at)
	return true
}

// execOnce runs exec for a token at most once, replaying the cached
// verdict for duplicates and retries.
func (p *Plane) execOnce(token uint64, at time.Duration, exec func(time.Duration) bool) bool {
	if res, seen := p.results[token]; seen {
		return res
	}
	res := exec(at)
	p.results[token] = res
	return res
}

// leg delivers one message leg with fault injection. Loopback legs
// (from == to) are in-memory and exempt from faults. Draw order per leg is
// fixed — drop, then delay, then dup, each drawn only when its term is
// set — so a given schedule consumes the control stream deterministically.
func (p *Plane) leg(now time.Duration, from, to topology.NodeID) (arrival time.Duration, ok bool) {
	if from == to {
		return now, true
	}
	arrival, ok = p.transport(now, from, to)
	if !ok {
		p.stats.DroppedLegs++
		return arrival, false
	}
	if p.faults.Drop > 0 && p.rng.Float64() < p.faults.Drop {
		p.stats.DroppedLegs++
		return arrival, false
	}
	if p.faults.Delay > 0 {
		arrival += time.Duration(p.rng.Int63n(int64(p.faults.Delay) + 1))
	}
	if p.faults.Dup > 0 && p.rng.Float64() < p.faults.Dup {
		p.stats.DupLegs++
		p.transport(now, from, to) // charge the duplicate; dedupe absorbs it
	}
	return arrival, true
}
