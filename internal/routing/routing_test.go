package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"radar/internal/topology"
)

func TestLineDistances(t *testing.T) {
	tab := New(topology.Line(5))
	for a := 0; a < 5; a++ {
		for b := 0; b < 5; b++ {
			want := a - b
			if want < 0 {
				want = -want
			}
			if got := tab.Distance(topology.NodeID(a), topology.NodeID(b)); got != want {
				t.Errorf("Distance(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestRingDistances(t *testing.T) {
	n := 8
	tab := New(topology.Ring(n))
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			d := (b - a + n) % n
			if d > n/2 {
				d = n - d
			}
			if got := tab.Distance(topology.NodeID(a), topology.NodeID(b)); got != d {
				t.Errorf("Distance(%d,%d) = %d, want %d", a, b, got, d)
			}
		}
	}
}

func TestPathEndpointsAndAdjacency(t *testing.T) {
	topo := topology.UUNET()
	tab := New(topo)
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every consecutive pair on every path must be a link.
	isLink := func(a, b topology.NodeID) bool {
		for _, w := range topo.Neighbors(a) {
			if w == b {
				return true
			}
		}
		return false
	}
	for s := 0; s < topo.NumNodes(); s++ {
		for d := 0; d < topo.NumNodes(); d++ {
			p := tab.Path(topology.NodeID(s), topology.NodeID(d))
			for i := 1; i < len(p); i++ {
				if !isLink(p[i-1], p[i]) {
					t.Fatalf("path %d->%d uses non-link %v-%v", s, d, p[i-1], p[i])
				}
			}
		}
	}
}

func TestDistanceSymmetry(t *testing.T) {
	tab := New(topology.UUNET())
	for a := 0; a < tab.NumNodes(); a++ {
		for b := 0; b < tab.NumNodes(); b++ {
			if tab.Distance(topology.NodeID(a), topology.NodeID(b)) !=
				tab.Distance(topology.NodeID(b), topology.NodeID(a)) {
				t.Fatalf("asymmetric distance between %d and %d", a, b)
			}
		}
	}
}

// TestTriangleInequality checks dist(a,c) <= dist(a,b) + dist(b,c) for all
// triples on the UUNET backbone — a shortest-path invariant.
func TestTriangleInequality(t *testing.T) {
	tab := New(topology.UUNET())
	n := tab.NumNodes()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		a := topology.NodeID(rng.Intn(n))
		b := topology.NodeID(rng.Intn(n))
		c := topology.NodeID(rng.Intn(n))
		if tab.Distance(a, c) > tab.Distance(a, b)+tab.Distance(b, c) {
			t.Fatalf("triangle inequality violated for (%d,%d,%d)", a, b, c)
		}
	}
}

// TestPathPrefixOptimality checks that every prefix of a chosen path is
// itself a shortest path (BFS tree property).
func TestPathPrefixOptimality(t *testing.T) {
	tab := New(topology.UUNET())
	n := tab.NumNodes()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			p := tab.Path(topology.NodeID(s), topology.NodeID(d))
			for i, v := range p {
				if tab.Distance(topology.NodeID(s), v) != i {
					t.Fatalf("path %d->%d: node %v at index %d but dist %d",
						s, d, v, i, tab.Distance(topology.NodeID(s), v))
				}
			}
		}
	}
}

func TestDeterministicPaths(t *testing.T) {
	a := New(topology.UUNET())
	b := New(topology.UUNET())
	for s := 0; s < a.NumNodes(); s++ {
		for d := 0; d < a.NumNodes(); d++ {
			pa := a.Path(topology.NodeID(s), topology.NodeID(d))
			pb := b.Path(topology.NodeID(s), topology.NodeID(d))
			if len(pa) != len(pb) {
				t.Fatalf("path %d->%d length differs across constructions", s, d)
			}
			for i := range pa {
				if pa[i] != pb[i] {
					t.Fatalf("path %d->%d differs across constructions", s, d)
				}
			}
		}
	}
}

func TestPreferencePathOrientation(t *testing.T) {
	topo := topology.UUNET()
	tab := New(topo)
	host, _ := topo.Lookup("Tokyo")
	gw, _ := topo.Lookup("London")
	p := tab.PreferencePath(host, gw)
	if p[0] != host || p[len(p)-1] != gw {
		t.Fatalf("preference path must run host -> gateway, got %v", p)
	}
}

func TestMinAvgDistanceNodeIsArgmin(t *testing.T) {
	tab := New(topology.UUNET())
	best := tab.MinAvgDistanceNode()
	bestAvg := tab.AvgDistance(best)
	for s := 0; s < tab.NumNodes(); s++ {
		if avg := tab.AvgDistance(topology.NodeID(s)); avg < bestAvg {
			t.Fatalf("node %d has avg %v < chosen %v", s, avg, bestAvg)
		}
	}
}

func TestMinAvgDistanceNodeStar(t *testing.T) {
	tab := New(topology.Star(9))
	if got := tab.MinAvgDistanceNode(); got != 0 {
		t.Fatalf("star redirector node = %d, want center 0", got)
	}
}

func TestDiameterUUNET(t *testing.T) {
	tab := New(topology.UUNET())
	d := tab.Diameter()
	// The reconstructed backbone should look like a late-90s global ISP:
	// chain-structured regional backbones give real locality and long
	// intercontinental paths (e.g. Melbourne to Stockholm).
	if d < 8 || d > 20 {
		t.Fatalf("UUNET diameter = %d, want a plausible 8..20", d)
	}
}

func TestSortByDistanceDesc(t *testing.T) {
	topo := topology.Line(6)
	tab := New(topo)
	ids := []topology.NodeID{1, 5, 3, 0, 4}
	tab.SortByDistanceDesc(0, ids)
	want := []topology.NodeID{5, 4, 3, 1, 0}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("sorted = %v, want %v", ids, want)
		}
	}
}

func TestSortByDistanceDescTieBreak(t *testing.T) {
	// On a star from the center, all leaves are at distance 1; ties must
	// order by ascending ID.
	tab := New(topology.Star(5))
	ids := []topology.NodeID{4, 2, 3, 1}
	tab.SortByDistanceDesc(0, ids)
	want := []topology.NodeID{1, 2, 3, 4}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("sorted = %v, want %v (ascending ID among ties)", ids, want)
		}
	}
}

// TestSortByDistanceDescProperty cross-checks the insertion sort against
// the ordering contract on random inputs.
func TestSortByDistanceDescProperty(t *testing.T) {
	topo := topology.UUNET()
	tab := New(topo)
	n := topo.NumNodes()
	f := func(seed int64, srcRaw uint8, count uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		src := topology.NodeID(int(srcRaw) % n)
		ids := make([]topology.NodeID, int(count)%20+2)
		for i := range ids {
			ids[i] = topology.NodeID(rng.Intn(n))
		}
		tab.SortByDistanceDesc(src, ids)
		for i := 1; i < len(ids); i++ {
			da, db := tab.Distance(src, ids[i-1]), tab.Distance(src, ids[i])
			if da < db {
				return false
			}
			if da == db && ids[i-1] > ids[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkNewUUNET(b *testing.B) {
	topo := topology.UUNET()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		New(topo)
	}
}

func BenchmarkPathLookup(b *testing.B) {
	tab := New(topology.UUNET())
	n := tab.NumNodes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tab.Path(topology.NodeID(i%n), topology.NodeID((i*7)%n))
	}
}

// BenchmarkDistanceLookup measures the per-request distance query — a
// single indexed load into the flattened all-pairs table.
func BenchmarkDistanceLookup(b *testing.B) {
	tab := New(topology.UUNET())
	n := tab.NumNodes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tab.Distance(topology.NodeID(i%n), topology.NodeID((i*7)%n))
	}
}

// BenchmarkNextHopLookup measures the per-hop forwarding query.
func BenchmarkNextHopLookup(b *testing.B) {
	tab := New(topology.UUNET())
	n := tab.NumNodes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tab.NextHop(topology.NodeID(i%n), topology.NodeID((i*7)%n))
	}
}

// BenchmarkDistancesFrom measures the row accessor the redirector's
// single-pass replica choice is built on.
func BenchmarkDistancesFrom(b *testing.B) {
	tab := New(topology.UUNET())
	n := tab.NumNodes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tab.DistancesFrom(topology.NodeID(i % n))
	}
}
