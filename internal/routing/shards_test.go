package routing

import (
	"testing"

	"radar/internal/topology"
)

func TestMinGroupDistanceLine(t *testing.T) {
	tb := New(topology.Line(4))
	// Groups {0,1} and {2,3}: closest pair is 1-2, one hop apart.
	m, err := tb.MinGroupDistance([]int{0, 0, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m[0][0] != 0 || m[1][1] != 0 {
		t.Errorf("diagonal not zero: %v", m)
	}
	if m[0][1] != 1 || m[1][0] != 1 {
		t.Errorf("cross distance %v, want 1", m)
	}
	// Groups {0} and {3}: three hops.
	m, err = tb.MinGroupDistance([]int{0, 0, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	_ = m
	d, err := tb.MinCrossGroupDistance([]int{0, 1, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Errorf("min cross distance %d, want 1", d)
	}
}

func TestMinGroupDistanceClusters(t *testing.T) {
	// TwoClusters(3): nodes 0-2 meshed, 3-5 meshed, one bridge 0-3.
	tb := New(topology.TwoClusters(3))
	d, err := tb.MinCrossGroupDistance([]int{0, 0, 0, 1, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Errorf("bridge distance %d, want 1", d)
	}
	// Exclude the bridge endpoints from the groups' frontier: nodes 1,2
	// vs 4,5 are >= 3 hops apart (1-0-3-4).
	d, err = tb.MinCrossGroupDistance([]int{2, 0, 0, 2, 1, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Errorf("min over all pairs %d, want 1 (0-3 bridge in group 2)", d)
	}
}

func TestMinGroupDistanceValidation(t *testing.T) {
	tb := New(topology.Line(3))
	if _, err := tb.MinGroupDistance([]int{0, 1}, 2); err == nil {
		t.Error("short assignment accepted")
	}
	if _, err := tb.MinGroupDistance([]int{0, 1, 2}, 2); err == nil {
		t.Error("out-of-range group accepted")
	}
	if _, err := tb.MinGroupDistance([]int{0, 0, 0}, 0); err == nil {
		t.Error("zero groups accepted")
	}
	if d, err := tb.MinCrossGroupDistance([]int{0, 0, 0}, 1); err != nil || d != 0 {
		t.Errorf("single group: got (%d, %v), want (0, nil)", d, err)
	}
}
