package routing

import (
	"reflect"
	"runtime"
	"sync"
	"testing"

	"radar/internal/topology"
)

// buildTopologies returns the graph shapes the parallel-build and
// concurrency tests sweep: the canonical backbone plus degenerate and
// tie-break-heavy synthetic shapes.
func buildTopologies(t *testing.T) map[string]*topology.Topology {
	t.Helper()
	single, err := topology.New([]topology.Node{{Name: "only", Region: topology.WesternNA}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*topology.Topology{
		"uunet":  topology.UUNET(),
		"line5":  topology.Line(5),
		"ring8":  topology.Ring(8),
		"line2":  topology.Line(2),
		"single": single,
	}
}

// TestParallelBuildBitIdentical: newTable must produce bit-identical
// dist/next/parent arrays and path contents for every worker count,
// including counts far above the node count.
func TestParallelBuildBitIdentical(t *testing.T) {
	for name, topo := range buildTopologies(t) {
		serial := newTable(topo, 1)
		for _, workers := range []int{2, 3, runtime.GOMAXPROCS(0), 2 * topo.NumNodes(), 64} {
			par := newTable(topo, workers)
			if !reflect.DeepEqual(serial.dist, par.dist) {
				t.Errorf("%s workers=%d: dist differs from serial build", name, workers)
			}
			if !reflect.DeepEqual(serial.next, par.next) {
				t.Errorf("%s workers=%d: next-hop table differs from serial build", name, workers)
			}
			if !reflect.DeepEqual(serial.parent, par.parent) {
				t.Errorf("%s workers=%d: parent table differs from serial build", name, workers)
			}
			if len(serial.paths) != len(par.paths) {
				t.Fatalf("%s workers=%d: %d paths, want %d", name, workers, len(par.paths), len(serial.paths))
			}
			for i := range serial.paths {
				if !reflect.DeepEqual(serial.paths[i], par.paths[i]) {
					t.Errorf("%s workers=%d: path %d differs from serial build", name, workers, i)
				}
			}
			if !reflect.DeepEqual(serial.avgDist, par.avgDist) ||
				serial.minAvgNode != par.minAvgNode || serial.diameter != par.diameter {
				t.Errorf("%s workers=%d: precomputed aggregates differ from serial build", name, workers)
			}
			if err := par.Validate(); err != nil {
				t.Errorf("%s workers=%d: %v", name, workers, err)
			}
		}
	}
}

// TestExportedNewMatchesSerial: the exported constructor (which picks
// GOMAXPROCS workers on its own) must equal the pinned serial build.
func TestExportedNewMatchesSerial(t *testing.T) {
	topo := topology.UUNET()
	serial, auto := newTable(topo, 1), New(topo)
	if !reflect.DeepEqual(serial.dist, auto.dist) || !reflect.DeepEqual(serial.next, auto.next) {
		t.Fatal("New differs from serial build")
	}
	for i := range serial.paths {
		if !reflect.DeepEqual(serial.paths[i], auto.paths[i]) {
			t.Fatalf("New path %d differs from serial build", i)
		}
	}
}

// TestSharedTableConcurrentReads hammers one shared Table from many
// goroutines through every read-path accessor the simulator uses —
// Distance, DistancesFrom, Path, PreferencePath, NextHop, AvgDistance,
// MinAvgDistanceNode, Diameter and SortByDistanceDesc (own slice per
// goroutine) — locking in the immutability contract the substrate cache
// relies on. Run it with -race to detect any accessor that writes Table
// state.
func TestSharedTableConcurrentReads(t *testing.T) {
	topo := topology.UUNET()
	tab := New(topo)
	n := tab.NumNodes()

	want := make([]int, n*n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			want[a*n+b] = tab.Distance(topology.NodeID(a), topology.NodeID(b))
		}
	}

	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := make([]topology.NodeID, n)
			for iter := 0; iter < 50; iter++ {
				s := topology.NodeID((g + iter) % n)
				row := tab.DistancesFrom(s)
				for d := 0; d < n; d++ {
					if int(row[d]) != want[int(s)*n+d] {
						t.Errorf("goroutine %d: DistancesFrom(%d)[%d] = %d, want %d", g, s, d, row[d], want[int(s)*n+d])
						return
					}
					if got := tab.Distance(s, topology.NodeID(d)); got != want[int(s)*n+d] {
						t.Errorf("goroutine %d: Distance(%d,%d) = %d, want %d", g, s, d, got, want[int(s)*n+d])
						return
					}
					p := tab.Path(s, topology.NodeID(d))
					if len(p) != want[int(s)*n+d]+1 || p[0] != s || p[len(p)-1] != topology.NodeID(d) {
						t.Errorf("goroutine %d: Path(%d,%d) malformed", g, s, d)
						return
					}
					if next := tab.NextHop(s, topology.NodeID(d)); len(p) > 1 && next != p[1] {
						t.Errorf("goroutine %d: NextHop(%d,%d) = %d, want %d", g, s, d, next, p[1])
						return
					}
				}
				_ = tab.PreferencePath(s, topology.NodeID((int(s)+1)%n))
				_ = tab.AvgDistance(s)
				_ = tab.MinAvgDistanceNode()
				_ = tab.Diameter()
				for i := range ids {
					ids[i] = topology.NodeID((i + iter) % n)
				}
				tab.SortByDistanceDesc(s, ids)
				for i := 1; i < len(ids); i++ {
					da, db := want[int(s)*n+int(ids[i-1])], want[int(s)*n+int(ids[i])]
					if da < db || (da == db && ids[i-1] > ids[i]) {
						t.Errorf("goroutine %d: SortByDistanceDesc out of order at %d", g, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
