// Package routing computes the path and distance information the protocol
// extracts from router databases in a real deployment (paper §2).
//
// Paths are shortest paths by hop count over the backbone topology, with
// deterministic tie-breaking: a breadth-first tree is grown from every
// source visiting neighbors in ascending node-ID order, so "when there are
// equidistant paths between nodes i and j, one path is chosen for all
// requests from i to j" (paper §6.1). The path from a host to a gateway is
// the request's preference path: the sequence of hosts co-located with the
// routers a response passes on its way out of the platform.
//
// All-pairs distances, next hops and materialized paths are precomputed at
// construction into contiguous backing arrays, so every per-request lookup
// (Distance, NextHop, Path, PreferencePath, DistancesFrom) is a bounds
// check and an indexed load — no allocation, no pointer chasing beyond a
// single row slice.
package routing

import (
	"fmt"

	"radar/internal/topology"
)

// Table holds precomputed all-pairs routes for one topology.
type Table struct {
	topo *topology.Topology
	n    int
	// dist[s*n+d] is the hop count of the chosen path s -> d, in one
	// contiguous int32 block for cache density (the redirector scans
	// distance rows on every request).
	dist []int32
	// next[s*n+d] is the first hop on the chosen path s -> d (the
	// next-hop forwarding table a router would hold); next[s*n+s] == s.
	next []topology.NodeID
	// parent[s*n+d] is the predecessor of d on the BFS tree rooted at s;
	// parent[s*n+s] == s.
	parent []topology.NodeID
	// paths[s*n+d] is the node sequence s, ..., d (inclusive) of the
	// chosen path, all rows sliced out of one shared backing array —
	// callers must not mutate.
	paths [][]topology.NodeID
}

// New computes routes for topo. Cost is O(V·(V+E)) time and O(V²·diameter)
// memory for materialized paths — trivial at backbone scale (53 nodes).
func New(topo *topology.Topology) *Table {
	n := topo.NumNodes()
	t := &Table{
		topo:   topo,
		n:      n,
		dist:   make([]int32, n*n),
		next:   make([]topology.NodeID, n*n),
		parent: make([]topology.NodeID, n*n),
		paths:  make([][]topology.NodeID, n*n),
	}
	for s := 0; s < n; s++ {
		t.bfs(topology.NodeID(s))
	}
	// Materialize every path into one shared arena: total length is
	// sum(dist)+n² nodes, known exactly after the BFS pass.
	total := 0
	for _, d := range t.dist {
		total += int(d) + 1
	}
	arena := make([]topology.NodeID, 0, total)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			start := len(arena)
			arena = t.appendPath(arena, topology.NodeID(s), topology.NodeID(d))
			t.paths[s*n+d] = arena[start:len(arena):len(arena)]
		}
	}
	// The next-hop table falls out of the materialized paths.
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			p := t.paths[s*n+d]
			if len(p) > 1 {
				t.next[s*n+d] = p[1]
			} else {
				t.next[s*n+d] = topology.NodeID(s)
			}
		}
	}
	return t
}

// bfs grows a breadth-first tree from src, visiting neighbors in ascending
// ID order so that the parent of every node is the smallest-ID predecessor
// at minimal distance discovered first — a deterministic tie-break.
func (t *Table) bfs(src topology.NodeID) {
	dist := t.dist[int(src)*t.n : (int(src)+1)*t.n]
	parent := t.parent[int(src)*t.n : (int(src)+1)*t.n]
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	parent[src] = src
	queue := make([]topology.NodeID, 0, t.n)
	queue = append(queue, src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range t.topo.Neighbors(v) {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				parent[w] = v
				queue = append(queue, w)
			}
		}
	}
}

// appendPath appends the chosen path s, ..., d to arena and returns it.
func (t *Table) appendPath(arena []topology.NodeID, s, d topology.NodeID) []topology.NodeID {
	hops := int(t.dist[int(s)*t.n+int(d)])
	start := len(arena)
	arena = arena[:start+hops+1]
	v := d
	row := t.parent[int(s)*t.n : (int(s)+1)*t.n]
	for i := hops; i >= 0; i-- {
		arena[start+i] = v
		v = row[v]
	}
	return arena
}

// Distance returns the hop count between a and b. Unit link costs make
// distance symmetric even though chosen paths need not be.
func (t *Table) Distance(a, b topology.NodeID) int {
	return int(t.dist[int(a)*t.n+int(b)])
}

// DistancesFrom returns the distance row of s: a slice of length NumNodes
// where element d is the hop count s -> d. The slice is shared backing
// storage; callers must not modify it. Hot loops that compare distances to
// many destinations should take the row once instead of calling Distance
// per destination.
func (t *Table) DistancesFrom(s topology.NodeID) []int32 {
	return t.dist[int(s)*t.n : (int(s)+1)*t.n]
}

// NextHop returns the first hop on the chosen path from s toward d — the
// forwarding table a router at s would consult. NextHop(s, s) == s.
func (t *Table) NextHop(s, d topology.NodeID) topology.NodeID {
	return t.next[int(s)*t.n+int(d)]
}

// Path returns the chosen path from s to d as the node sequence s, ..., d.
// The returned slice is shared; callers must not modify it.
func (t *Table) Path(s, d topology.NodeID) []topology.NodeID {
	return t.paths[int(s)*t.n+int(d)]
}

// PreferencePath returns the preference path of a request that entered at
// gateway g and is serviced by host s: the hosts co-located with the
// routers on the response route s -> g, in route order (paper §2). The
// first element is s and the last is g.
func (t *Table) PreferencePath(s, g topology.NodeID) []topology.NodeID {
	return t.paths[int(s)*t.n+int(g)]
}

// NumNodes returns the node count of the underlying topology.
func (t *Table) NumNodes() int { return t.n }

// AvgDistance returns the mean hop distance from s to every other node.
func (t *Table) AvgDistance(s topology.NodeID) float64 {
	if t.n == 1 {
		return 0
	}
	total := 0
	for _, d := range t.DistancesFrom(s) {
		total += int(d)
	}
	return float64(total) / float64(t.n-1)
}

// MinAvgDistanceNode returns the node whose average hop distance to all
// other nodes is minimal, breaking ties by smallest ID. The paper
// co-locates the redirector with this node (§6.1).
func (t *Table) MinAvgDistanceNode() topology.NodeID {
	best := topology.NodeID(0)
	bestAvg := t.AvgDistance(0)
	for s := 1; s < t.n; s++ {
		if avg := t.AvgDistance(topology.NodeID(s)); avg < bestAvg {
			best, bestAvg = topology.NodeID(s), avg
		}
	}
	return best
}

// Diameter returns the maximum hop distance between any node pair.
func (t *Table) Diameter() int {
	max := int32(0)
	for _, d := range t.dist {
		if d > max {
			max = d
		}
	}
	return int(max)
}

// SortByDistanceDesc orders ids in place by decreasing distance from s,
// breaking ties by ascending node ID. The replica placement algorithm
// examines candidates "in the decreasing order of distance" (paper Fig. 3);
// the deterministic tie-break keeps simulations reproducible.
func (t *Table) SortByDistanceDesc(s topology.NodeID, ids []topology.NodeID) {
	d := t.DistancesFrom(s)
	// Insertion sort: candidate lists are short (bounded by path lengths).
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0; j-- {
			a, b := ids[j-1], ids[j]
			if d[a] > d[b] || (d[a] == d[b] && a <= b) {
				break
			}
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
}

// Validate checks internal consistency; used by tests and cmd/radar-topology.
func (t *Table) Validate() error {
	for s := 0; s < t.n; s++ {
		for d := 0; d < t.n; d++ {
			if t.dist[s*t.n+d] < 0 {
				return fmt.Errorf("routing: no path %d -> %d", s, d)
			}
			p := t.paths[s*t.n+d]
			if len(p) != int(t.dist[s*t.n+d])+1 {
				return fmt.Errorf("routing: path %d -> %d has %d nodes, want %d", s, d, len(p), t.dist[s*t.n+d]+1)
			}
			if p[0] != topology.NodeID(s) || p[len(p)-1] != topology.NodeID(d) {
				return fmt.Errorf("routing: path %d -> %d has wrong endpoints", s, d)
			}
			if want := t.next[s*t.n+d]; len(p) > 1 && p[1] != want {
				return fmt.Errorf("routing: next hop %d -> %d is %d, path says %d", s, d, want, p[1])
			}
		}
	}
	return nil
}
