// Package routing computes the path and distance information the protocol
// extracts from router databases in a real deployment (paper §2).
//
// Paths are shortest paths by hop count over the backbone topology, with
// deterministic tie-breaking: a breadth-first tree is grown from every
// source visiting neighbors in ascending node-ID order, so "when there are
// equidistant paths between nodes i and j, one path is chosen for all
// requests from i to j" (paper §6.1). The path from a host to a gateway is
// the request's preference path: the sequence of hosts co-located with the
// routers a response passes on its way out of the platform.
//
// All-pairs distances, next hops and materialized paths are precomputed at
// construction into contiguous backing arrays, so every per-request lookup
// (Distance, NextHop, Path, PreferencePath, DistancesFrom) is a bounds
// check and an indexed load — no allocation, no pointer chasing beyond a
// single row slice.
//
// Construction fans the per-source work (BFS and path materialization)
// across GOMAXPROCS goroutines. Each source owns disjoint rows of the
// backing arrays and a disjoint segment of the path arena, with segment
// offsets fixed by a serial prefix-sum over per-source totals, so the
// resulting tables are bit-identical to a serial build regardless of
// scheduling or worker count.
package routing

import (
	"fmt"
	"runtime"
	"sync"

	"radar/internal/topology"
)

// Table holds precomputed all-pairs routes for one topology.
//
// Immutability contract: a Table is frozen when New returns. No method —
// including SortByDistanceDesc, which permutes only the caller's slice —
// mutates the Table afterwards, and no state is computed lazily, so a
// single Table may be shared freely across goroutines and concurrent
// simulation runs without synchronization (internal/substrate relies on
// this). Accessors that return slices (DistancesFrom, Path,
// PreferencePath) hand out shared backing storage; callers must treat it
// as read-only.
type Table struct {
	topo *topology.Topology
	n    int
	// dist[s*n+d] is the hop count of the chosen path s -> d, in one
	// contiguous int32 block for cache density (the redirector scans
	// distance rows on every request).
	dist []int32
	// next[s*n+d] is the first hop on the chosen path s -> d (the
	// next-hop forwarding table a router would hold); next[s*n+s] == s.
	next []topology.NodeID
	// parent[s*n+d] is the predecessor of d on the BFS tree rooted at s;
	// parent[s*n+s] == s.
	parent []topology.NodeID
	// paths[s*n+d] is the node sequence s, ..., d (inclusive) of the
	// chosen path, all rows sliced out of one shared backing array —
	// callers must not mutate.
	paths [][]topology.NodeID

	// Aggregates precomputed at construction so the accessors below are
	// O(1) reads on the frozen table rather than lazy O(n²) scans.
	avgDist    []float64 // avgDist[s] is the mean hop distance from s
	minAvgNode topology.NodeID
	diameter   int
}

// New computes routes for topo. Cost is O(V·(V+E)) time and O(V²·diameter)
// memory for materialized paths — trivial at backbone scale (53 nodes).
// The per-source work runs on up to GOMAXPROCS goroutines; the result is
// bit-identical to a single-threaded build.
func New(topo *topology.Topology) *Table {
	return newTable(topo, runtime.GOMAXPROCS(0))
}

// newTable builds the table using the given worker count (tests pin it to
// compare serial and parallel builds).
func newTable(topo *topology.Topology, workers int) *Table {
	n := topo.NumNodes()
	t := &Table{
		topo:   topo,
		n:      n,
		dist:   make([]int32, n*n),
		next:   make([]topology.NodeID, n*n),
		parent: make([]topology.NodeID, n*n),
		paths:  make([][]topology.NodeID, n*n),
	}

	// Phase 1: one BFS per source. Source s writes only rows s of dist
	// and parent, so sources partition cleanly across workers.
	forEachSource(n, workers, func(lo, hi int) {
		queue := make([]topology.NodeID, 0, n)
		for s := lo; s < hi; s++ {
			t.bfs(topology.NodeID(s), queue)
		}
	})

	// Phase 2: materialize every path into one shared arena. Each source
	// row occupies a contiguous segment whose offset is fixed by a serial
	// prefix-sum over exact per-source totals (sum(dist)+n per row), so
	// arena layout — and therefore every path slice — is independent of
	// how sources were scheduled in either phase.
	offsets := make([]int, n+1)
	for s := 0; s < n; s++ {
		rowTotal := n
		for _, d := range t.dist[s*n : (s+1)*n] {
			rowTotal += int(d)
		}
		offsets[s+1] = offsets[s] + rowTotal
	}
	arena := make([]topology.NodeID, offsets[n])
	forEachSource(n, workers, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			t.materialize(topology.NodeID(s), arena, offsets[s])
		}
	})

	t.freezeAggregates()
	return t
}

// forEachSource invokes fn over a static partition of [0, n) across up to
// workers goroutines. Static block partitioning keeps the call allocation-
// free apart from the goroutines themselves; determinism does not depend
// on the partition because every source's output is disjoint.
func forEachSource(n, workers int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// bfs grows a breadth-first tree from src, visiting neighbors in ascending
// ID order so that the parent of every node is the smallest-ID predecessor
// at minimal distance discovered first — a deterministic tie-break. queue
// is scratch space owned by the calling worker.
func (t *Table) bfs(src topology.NodeID, queue []topology.NodeID) {
	dist := t.dist[int(src)*t.n : (int(src)+1)*t.n]
	parent := t.parent[int(src)*t.n : (int(src)+1)*t.n]
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	parent[src] = src
	queue = append(queue[:0], src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range t.topo.Neighbors(v) {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				parent[w] = v
				queue = append(queue, w)
			}
		}
	}
}

// materialize writes source s's paths into arena starting at off, filling
// t.paths and t.next for row s. Each path is reconstructed backwards from
// the parent row, exactly as a serial arena build would lay it out.
func (t *Table) materialize(s topology.NodeID, arena []topology.NodeID, off int) {
	row := t.parent[int(s)*t.n : (int(s)+1)*t.n]
	for d := 0; d < t.n; d++ {
		hops := int(t.dist[int(s)*t.n+d])
		seg := arena[off : off+hops+1 : off+hops+1]
		v := topology.NodeID(d)
		for i := hops; i >= 0; i-- {
			seg[i] = v
			v = row[v]
		}
		t.paths[int(s)*t.n+d] = seg
		if hops > 0 {
			t.next[int(s)*t.n+d] = seg[1]
		} else {
			t.next[int(s)*t.n+d] = s
		}
		off += hops + 1
	}
}

// freezeAggregates precomputes the whole-table summaries (average
// distances, min-average node, diameter) so their accessors never touch —
// let alone lazily populate — mutable state after construction.
func (t *Table) freezeAggregates() {
	t.avgDist = make([]float64, t.n)
	maxD := int32(0)
	for s := 0; s < t.n; s++ {
		total := 0
		for _, d := range t.dist[s*t.n : (s+1)*t.n] {
			total += int(d)
			if d > maxD {
				maxD = d
			}
		}
		if t.n > 1 {
			t.avgDist[s] = float64(total) / float64(t.n-1)
		}
	}
	t.diameter = int(maxD)
	t.minAvgNode = 0
	for s := 1; s < t.n; s++ {
		if t.avgDist[s] < t.avgDist[t.minAvgNode] {
			t.minAvgNode = topology.NodeID(s)
		}
	}
}

// Distance returns the hop count between a and b. Unit link costs make
// distance symmetric even though chosen paths need not be.
func (t *Table) Distance(a, b topology.NodeID) int {
	return int(t.dist[int(a)*t.n+int(b)])
}

// DistancesFrom returns the distance row of s: a slice of length NumNodes
// where element d is the hop count s -> d. The slice is shared backing
// storage; callers must not modify it. Hot loops that compare distances to
// many destinations should take the row once instead of calling Distance
// per destination.
func (t *Table) DistancesFrom(s topology.NodeID) []int32 {
	return t.dist[int(s)*t.n : (int(s)+1)*t.n]
}

// NextHop returns the first hop on the chosen path from s toward d — the
// forwarding table a router at s would consult. NextHop(s, s) == s.
func (t *Table) NextHop(s, d topology.NodeID) topology.NodeID {
	return t.next[int(s)*t.n+int(d)]
}

// Path returns the chosen path from s to d as the node sequence s, ..., d.
// The returned slice is shared; callers must not modify it.
func (t *Table) Path(s, d topology.NodeID) []topology.NodeID {
	return t.paths[int(s)*t.n+int(d)]
}

// PreferencePath returns the preference path of a request that entered at
// gateway g and is serviced by host s: the hosts co-located with the
// routers on the response route s -> g, in route order (paper §2). The
// first element is s and the last is g.
func (t *Table) PreferencePath(s, g topology.NodeID) []topology.NodeID {
	return t.paths[int(s)*t.n+int(g)]
}

// NumNodes returns the node count of the underlying topology.
func (t *Table) NumNodes() int { return t.n }

// AvgDistance returns the mean hop distance from s to every other node.
func (t *Table) AvgDistance(s topology.NodeID) float64 {
	return t.avgDist[int(s)]
}

// MinAvgDistanceNode returns the node whose average hop distance to all
// other nodes is minimal, breaking ties by smallest ID. The paper
// co-locates the redirector with this node (§6.1).
func (t *Table) MinAvgDistanceNode() topology.NodeID { return t.minAvgNode }

// Diameter returns the maximum hop distance between any node pair.
func (t *Table) Diameter() int { return t.diameter }

// SortByDistanceDesc orders ids in place by decreasing distance from s,
// breaking ties by ascending node ID. The replica placement algorithm
// examines candidates "in the decreasing order of distance" (paper Fig. 3);
// the deterministic tie-break keeps simulations reproducible. Only the
// caller's slice is written; the Table itself is read-only here, so
// concurrent calls against a shared Table are safe as long as each caller
// passes its own slice.
func (t *Table) SortByDistanceDesc(s topology.NodeID, ids []topology.NodeID) {
	d := t.DistancesFrom(s)
	// Insertion sort: candidate lists are short (bounded by path lengths).
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0; j-- {
			a, b := ids[j-1], ids[j]
			if d[a] > d[b] || (d[a] == d[b] && a <= b) {
				break
			}
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
}

// Validate checks internal consistency; used by tests and cmd/radar-topology.
func (t *Table) Validate() error {
	for s := 0; s < t.n; s++ {
		for d := 0; d < t.n; d++ {
			if t.dist[s*t.n+d] < 0 {
				return fmt.Errorf("routing: no path %d -> %d", s, d)
			}
			p := t.paths[s*t.n+d]
			if len(p) != int(t.dist[s*t.n+d])+1 {
				return fmt.Errorf("routing: path %d -> %d has %d nodes, want %d", s, d, len(p), t.dist[s*t.n+d]+1)
			}
			if p[0] != topology.NodeID(s) || p[len(p)-1] != topology.NodeID(d) {
				return fmt.Errorf("routing: path %d -> %d has wrong endpoints", s, d)
			}
			if want := t.next[s*t.n+d]; len(p) > 1 && p[1] != want {
				return fmt.Errorf("routing: next hop %d -> %d is %d, path says %d", s, d, want, p[1])
			}
		}
	}
	return nil
}
