// Package routing computes the path and distance information the protocol
// extracts from router databases in a real deployment (paper §2).
//
// Paths are shortest paths by hop count over the backbone topology, with
// deterministic tie-breaking: a breadth-first tree is grown from every
// source visiting neighbors in ascending node-ID order, so "when there are
// equidistant paths between nodes i and j, one path is chosen for all
// requests from i to j" (paper §6.1). The path from a host to a gateway is
// the request's preference path: the sequence of hosts co-located with the
// routers a response passes on its way out of the platform.
package routing

import (
	"fmt"

	"radar/internal/topology"
)

// Table holds precomputed all-pairs routes for one topology.
type Table struct {
	topo *topology.Topology
	n    int
	// dist[s][d] is the hop count of the chosen path s -> d.
	dist [][]int
	// parent[s][d] is the predecessor of d on the BFS tree rooted at s;
	// parent[s][s] == s.
	parent [][]topology.NodeID
	// paths[s][d] is the node sequence s, ..., d (inclusive) of the chosen
	// path, shared storage — callers must not mutate.
	paths [][][]topology.NodeID
}

// New computes routes for topo. Cost is O(V·(V+E)) time and O(V²·diameter)
// memory for materialized paths — trivial at backbone scale (53 nodes).
func New(topo *topology.Topology) *Table {
	n := topo.NumNodes()
	t := &Table{
		topo:   topo,
		n:      n,
		dist:   make([][]int, n),
		parent: make([][]topology.NodeID, n),
		paths:  make([][][]topology.NodeID, n),
	}
	for s := 0; s < n; s++ {
		t.dist[s], t.parent[s] = bfs(topo, topology.NodeID(s))
	}
	for s := 0; s < n; s++ {
		t.paths[s] = make([][]topology.NodeID, n)
		for d := 0; d < n; d++ {
			t.paths[s][d] = t.materialize(topology.NodeID(s), topology.NodeID(d))
		}
	}
	return t
}

// bfs grows a breadth-first tree from src, visiting neighbors in ascending
// ID order so that the parent of every node is the smallest-ID predecessor
// at minimal distance discovered first — a deterministic tie-break.
func bfs(topo *topology.Topology, src topology.NodeID) (dist []int, parent []topology.NodeID) {
	n := topo.NumNodes()
	dist = make([]int, n)
	parent = make([]topology.NodeID, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	parent[src] = src
	queue := make([]topology.NodeID, 0, n)
	queue = append(queue, src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range topo.Neighbors(v) {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				parent[w] = v
				queue = append(queue, w)
			}
		}
	}
	return dist, parent
}

func (t *Table) materialize(s, d topology.NodeID) []topology.NodeID {
	hops := t.dist[s][d]
	path := make([]topology.NodeID, hops+1)
	v := d
	for i := hops; i >= 0; i-- {
		path[i] = v
		v = t.parent[s][v]
	}
	return path
}

// Distance returns the hop count between a and b. Unit link costs make
// distance symmetric even though chosen paths need not be.
func (t *Table) Distance(a, b topology.NodeID) int { return t.dist[a][b] }

// Path returns the chosen path from s to d as the node sequence s, ..., d.
// The returned slice is shared; callers must not modify it.
func (t *Table) Path(s, d topology.NodeID) []topology.NodeID { return t.paths[s][d] }

// PreferencePath returns the preference path of a request that entered at
// gateway g and is serviced by host s: the hosts co-located with the
// routers on the response route s -> g, in route order (paper §2). The
// first element is s and the last is g.
func (t *Table) PreferencePath(s, g topology.NodeID) []topology.NodeID {
	return t.paths[s][g]
}

// NumNodes returns the node count of the underlying topology.
func (t *Table) NumNodes() int { return t.n }

// AvgDistance returns the mean hop distance from s to every other node.
func (t *Table) AvgDistance(s topology.NodeID) float64 {
	if t.n == 1 {
		return 0
	}
	total := 0
	for d := 0; d < t.n; d++ {
		total += t.dist[s][d]
	}
	return float64(total) / float64(t.n-1)
}

// MinAvgDistanceNode returns the node whose average hop distance to all
// other nodes is minimal, breaking ties by smallest ID. The paper
// co-locates the redirector with this node (§6.1).
func (t *Table) MinAvgDistanceNode() topology.NodeID {
	best := topology.NodeID(0)
	bestAvg := t.AvgDistance(0)
	for s := 1; s < t.n; s++ {
		if avg := t.AvgDistance(topology.NodeID(s)); avg < bestAvg {
			best, bestAvg = topology.NodeID(s), avg
		}
	}
	return best
}

// Diameter returns the maximum hop distance between any node pair.
func (t *Table) Diameter() int {
	max := 0
	for s := 0; s < t.n; s++ {
		for d := 0; d < t.n; d++ {
			if t.dist[s][d] > max {
				max = t.dist[s][d]
			}
		}
	}
	return max
}

// SortByDistanceDesc orders ids in place by decreasing distance from s,
// breaking ties by ascending node ID. The replica placement algorithm
// examines candidates "in the decreasing order of distance" (paper Fig. 3);
// the deterministic tie-break keeps simulations reproducible.
func (t *Table) SortByDistanceDesc(s topology.NodeID, ids []topology.NodeID) {
	d := t.dist[s]
	// Insertion sort: candidate lists are short (bounded by path lengths).
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0; j-- {
			a, b := ids[j-1], ids[j]
			if d[a] > d[b] || (d[a] == d[b] && a <= b) {
				break
			}
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
}

// Validate checks internal consistency; used by tests and cmd/radar-topology.
func (t *Table) Validate() error {
	for s := 0; s < t.n; s++ {
		for d := 0; d < t.n; d++ {
			if t.dist[s][d] < 0 {
				return fmt.Errorf("routing: no path %d -> %d", s, d)
			}
			p := t.paths[s][d]
			if len(p) != t.dist[s][d]+1 {
				return fmt.Errorf("routing: path %d -> %d has %d nodes, want %d", s, d, len(p), t.dist[s][d]+1)
			}
			if p[0] != topology.NodeID(s) || p[len(p)-1] != topology.NodeID(d) {
				return fmt.Errorf("routing: path %d -> %d has wrong endpoints", s, d)
			}
		}
	}
	return nil
}
