package routing

import "fmt"

// MinGroupDistance returns the k×k matrix of minimum hop distances between
// node groups: entry [a][b] is the smallest Distance(i, j) over nodes i in
// group a and j in group b. assign maps each node to its group in [0, k);
// its length must equal the table's node count. Diagonal entries are 0
// (every node is at distance 0 from itself).
//
// The sharded simulation uses this at freeze time to derive its
// conservative lookahead bound: any interaction between shard a and shard b
// crosses at least MinGroupDistance[a][b] links, so it arrives no earlier
// than that many hop delays after it was sent (see internal/sim's sharded
// engine and DESIGN.md).
func (t *Table) MinGroupDistance(assign []int, k int) ([][]int32, error) {
	if len(assign) != t.n {
		return nil, fmt.Errorf("routing: group assignment covers %d nodes, table has %d", len(assign), t.n)
	}
	if k <= 0 {
		return nil, fmt.Errorf("routing: group count %d must be positive", k)
	}
	for i, g := range assign {
		if g < 0 || g >= k {
			return nil, fmt.Errorf("routing: node %d assigned to group %d, want [0,%d)", i, g, k)
		}
	}
	m := make([][]int32, k)
	backing := make([]int32, k*k)
	for a := 0; a < k; a++ {
		m[a] = backing[a*k : (a+1)*k]
		for b := 0; b < k; b++ {
			if a != b {
				m[a][b] = -1
			}
		}
	}
	for i := 0; i < t.n; i++ {
		a := assign[i]
		row := t.dist[i*t.n : (i+1)*t.n]
		for j := 0; j < t.n; j++ {
			b := assign[j]
			if a == b {
				continue
			}
			if d := row[j]; m[a][b] == -1 || d < m[a][b] {
				m[a][b] = d
			}
		}
	}
	return m, nil
}

// MinCrossGroupDistance returns the smallest off-diagonal entry of
// MinGroupDistance(assign, k): the minimum hop count any cross-group
// interaction must traverse. With a single group (or when every node is in
// one group) it returns 0.
func (t *Table) MinCrossGroupDistance(assign []int, k int) (int, error) {
	m, err := t.MinGroupDistance(assign, k)
	if err != nil {
		return 0, err
	}
	best := int32(-1)
	for a := 0; a < k; a++ {
		for b := 0; b < k; b++ {
			if a == b || m[a][b] < 0 {
				continue
			}
			if best == -1 || m[a][b] < best {
				best = m[a][b]
			}
		}
	}
	if best < 0 {
		return 0, nil
	}
	return int(best), nil
}
