// Package stats provides the summary statistics used to aggregate
// multi-seed experiment runs: sample mean, standard deviation,
// percentiles and normal-approximation confidence intervals. Single-seed
// simulation results carry run-to-run noise; reporting mean ± interval
// across seeds is what makes paper-vs-measured comparisons defensible.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean; 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total / float64(len(xs))
}

// StdDev returns the sample (n-1) standard deviation; 0 for fewer than
// two points.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between order statistics; it panics on no data or an out
// of range p being impossible — instead it clamps p into [0,100] and
// returns 0 for an empty sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary is a sample's headline statistics.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P50    float64
}

// Summarize computes a Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Mean: Mean(xs), StdDev: StdDev(xs), P50: Percentile(xs, 50)}
	for i, x := range xs {
		if i == 0 || x < s.Min {
			s.Min = x
		}
		if i == 0 || x > s.Max {
			s.Max = x
		}
	}
	return s
}

// MeanErr returns the mean and its ~95% normal-approximation half-width
// (1.96 standard errors). With fewer than two samples the half-width is
// zero.
func MeanErr(xs []float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	halfWidth = 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
	return mean, halfWidth
}

// FormatMeanErr renders "mean ± half" with the given precision.
func FormatMeanErr(xs []float64, prec int) string {
	m, h := MeanErr(xs)
	return fmt.Sprintf("%.*f ± %.*f", prec, m, prec, h)
}
