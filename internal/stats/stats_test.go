package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %v, want 4", got)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev single = %v", got)
	}
	// Sample stddev of {2,4,4,4,5,5,7,9} is ~2.138.
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !approx(got, 2.138, 0.01) {
		t.Errorf("StdDev = %v, want ~2.138", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {-5, 10}, {150, 40},
	}
	for _, tc := range tests {
		if got := Percentile(xs, tc.p); !approx(got, tc.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("single percentile = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestMeanErrShrinksWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	small := make([]float64, 10)
	large := make([]float64, 1000)
	for i := range small {
		small[i] = rng.NormFloat64()
	}
	for i := range large {
		large[i] = rng.NormFloat64()
	}
	_, hSmall := MeanErr(small)
	_, hLarge := MeanErr(large)
	if hLarge >= hSmall {
		t.Fatalf("half-width did not shrink: %v vs %v", hSmall, hLarge)
	}
	if _, h := MeanErr([]float64{1}); h != 0 {
		t.Fatalf("single-sample half-width = %v", h)
	}
}

func TestFormatMeanErr(t *testing.T) {
	got := FormatMeanErr([]float64{1, 1, 1}, 2)
	if got != "1.00 ± 0.00" {
		t.Fatalf("FormatMeanErr = %q", got)
	}
}

// TestPropertyBounds checks order-statistics invariants on random samples.
func TestPropertyBounds(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%50 + 2
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*200 - 100
		}
		s := Summarize(xs)
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		if s.P50 < s.Min-1e-9 || s.P50 > s.Max+1e-9 {
			return false
		}
		if s.StdDev < 0 {
			return false
		}
		p25, p75 := Percentile(xs, 25), Percentile(xs, 75)
		return p25 <= s.P50+1e-9 && s.P50 <= p75+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
