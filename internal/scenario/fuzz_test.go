package scenario

import (
	"testing"
)

// FuzzScenarioSpec drives the scenario DSL parser with arbitrary input:
// parsing must never panic, and any composition that parses must be
// internally coherent — defaults filled, values inside their documented
// ranges, and the fault sub-schedule accepted by its own validator.
// (Config building is deliberately not fuzzed: it allocates universes.)
func FuzzScenarioSpec(f *testing.F) {
	for _, sc := range Corpus() {
		f.Add(sc.DSL)
	}
	for _, seed := range []string{
		"",
		"workload:zipf",
		"workload:uniform; highload",
		"workload:zipf; switch:hot-pages@6m; faults:drop:0.2|dup:0.05",
		"workload:zipf; workload:zipf",
		"workload:zipf; objects:-1",
		"workload:zipf; avail:1.5",
		"workload:zipf; faults:crash:9@4m+3m|link:12-13@4m",
		"workload:zipf; faults:drop:0.2|drop:0.9",
		"WORKLOAD:zipf; HIGHLOAD",
		"workload:zipf;;;; duration:9m",
		"workload:zipf; seed:9223372036854775807",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := ParseSpec(s)
		if err != nil {
			return // rejected composition is fine; it just must not panic
		}
		if !workloadNames[sp.Workload] {
			t.Fatalf("parsed unknown workload %q from %q", sp.Workload, s)
		}
		if sp.SwitchTo != "" && (!workloadNames[sp.SwitchTo] || sp.SwitchAt <= 0 || sp.SwitchAt >= sp.Duration) {
			t.Fatalf("parsed incoherent switch %q@%v from %q", sp.SwitchTo, sp.SwitchAt, s)
		}
		if sp.Objects < 1 || sp.Objects > maxObjects {
			t.Fatalf("parsed object count %d out of range from %q", sp.Objects, s)
		}
		if sp.Duration <= 0 || sp.Duration > maxDuration {
			t.Fatalf("parsed duration %v out of range from %q", sp.Duration, s)
		}
		if sp.RPS <= 0 || sp.RPS > maxRPS || sp.RPS != sp.RPS {
			t.Fatalf("parsed rps %v out of range from %q", sp.RPS, s)
		}
		if sp.Seed < 0 {
			t.Fatalf("parsed negative seed %d from %q", sp.Seed, s)
		}
		if sp.Floor < 0 || sp.Floor > maxFloor {
			t.Fatalf("parsed floor %d out of range from %q", sp.Floor, s)
		}
		if sp.Avail < 0 || sp.Avail > 1 || sp.Avail != sp.Avail {
			t.Fatalf("parsed availability weight %v out of range from %q", sp.Avail, s)
		}
		if sp.Redirectors < 1 || sp.Redirectors > maxRedirectors {
			t.Fatalf("parsed redirector count %d out of range from %q", sp.Redirectors, s)
		}
		if !policyNames[sp.Policy] {
			t.Fatalf("parsed unknown policy %q from %q", sp.Policy, s)
		}
		// Message-fault terms must be in range (the fault parser's own
		// contract, re-checked across the "|" rewriting).
		if sp.Faults.MsgDrop < 0 || sp.Faults.MsgDrop > 1 || sp.Faults.MsgDup < 0 || sp.Faults.MsgDup > 1 || sp.Faults.MsgDelay < 0 {
			t.Fatalf("parsed out-of-range message faults %+v from %q", sp.Faults, s)
		}
	})
}
