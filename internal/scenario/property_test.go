package scenario

import (
	"testing"
)

// TestCorpusInvariants checks, for every corpus scenario at its final
// reconcile boundary (Results are assembled after the horizon's closing
// anti-entropy pass):
//
//   - no ghost records: the post-run invariant check passes, so every
//     redirector record points at a live replica with a matching affinity;
//   - outage accounting consistency: unavailable object-seconds exist
//     exactly when outage windows were recorded, and stay within the
//     universe × horizon bound;
//   - floor census truthfulness: the final below-floor census sample
//     counts exactly the objects still below the floor per the
//     redirectors' records.
func TestCorpusInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("integration runs")
	}
	for _, sc := range Corpus() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			run := runScenario(t, sc.Name)
			res := run.res
			if res.InvariantsError != nil {
				t.Fatalf("invariants (ghost records / stale affinity): %v", res.InvariantsError)
			}

			if (res.Outages == 0) != (res.UnavailObjSecs == 0) {
				t.Errorf("outage accounting inconsistent: %d windows, %.0f object-seconds",
					res.Outages, res.UnavailObjSecs)
			}
			sp, err := sc.Spec()
			if err != nil {
				t.Fatal(err)
			}
			maxObjSecs := float64(sp.Objects) * sp.Duration.Seconds()
			if res.UnavailObjSecs < 0 || res.UnavailObjSecs > maxObjSecs {
				t.Errorf("unavailable object-seconds %.0f outside [0, %.0f]", res.UnavailObjSecs, maxObjSecs)
			}
			if !sp.Faults.Enabled() && (res.Outages != 0 || res.FailedRequests != 0) {
				t.Errorf("fault-free scenario reports %d outages, %d failed requests",
					res.Outages, res.FailedRequests)
			}

			if sp.Floor > 1 {
				below := 0
				for _, red := range run.sim.Redirectors() {
					for _, id := range red.Objects() {
						if red.ReplicaCount(id) < sp.Floor {
							below++
						}
					}
				}
				if len(res.BelowFloor) == 0 {
					t.Fatalf("no below-floor census despite floor %d", sp.Floor)
				}
				if final := res.BelowFloor[len(res.BelowFloor)-1]; int(final.V) != below {
					t.Errorf("final below-floor census = %v, want %d (objects actually below floor %d)",
						final.V, below, sp.Floor)
				}
			}
		})
	}
}
