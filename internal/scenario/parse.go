package scenario

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"radar/internal/fault"
	"radar/internal/store"
)

// Spec is a parsed scenario composition. The zero value is not runnable;
// build Specs with ParseSpec, which fills the documented defaults.
type Spec struct {
	// Workload names the demand generator (required): uniform, zipf,
	// hot-sites, hot-pages, regional, or flash-crowd.
	Workload string
	// SwitchTo / SwitchAt, when SwitchTo is non-empty, swap the demand
	// generator mid-run (the diurnal pattern change of §1).
	SwitchTo string
	SwitchAt time.Duration
	// Objects is the universe size (default 2000, the Quick scale).
	Objects int
	// Duration is the simulated span (default 8m).
	Duration time.Duration
	// RPS is each gateway's request rate (default 40, Table 1).
	RPS float64
	// Seed drives all randomness (default 1).
	Seed int64
	// Floor is Params.ReplicaFloor (default 0: the paper's behavior).
	Floor int
	// Avail is Params.AvailabilityWeight (default 0: legacy ordering).
	Avail float64
	// Redirectors hash-partitions the URL namespace (default 1).
	Redirectors int
	// Policy is the request distribution algorithm: paper (default),
	// round-robin, or closest.
	Policy string
	// HighLoad selects the Figure 9 watermarks (50/40) over Table 1's.
	HighLoad bool
	// Faults is the parsed fault schedule; FaultsDSL keeps the raw
	// sub-schedule for display.
	Faults    fault.Spec
	FaultsDSL string
	// Store is the parsed replica-storage stack; StoreDSL keeps the raw
	// term for display. The zero value is the default memory stack.
	Store    store.Spec
	StoreDSL string
}

// Scenario DSL limits: a composition is a simulation recipe, not a place
// to smuggle in unbounded allocations.
const (
	maxObjects     = 1_000_000
	maxDuration    = 24 * time.Hour
	maxRPS         = 1e6
	maxFloor       = 16
	maxRedirectors = 64
)

var workloadNames = map[string]bool{
	"uniform":     true,
	"zipf":        true,
	"hot-sites":   true,
	"hot-pages":   true,
	"regional":    true,
	"flash-crowd": true,
}

var policyNames = map[string]bool{
	"paper":       true,
	"round-robin": true,
	"closest":     true,
}

// ParseSpec parses the scenario DSL: a semicolon-separated list of
// key:value clauses composing workload, faults, control-plane loss and
// policy parameters into one runnable scenario.
//
//	workload:NAME       demand generator (required): uniform, zipf,
//	                    hot-sites, hot-pages, regional, flash-crowd
//	switch:NAME@TIME    swap the demand generator at TIME
//	objects:N           universe size (default 2000)
//	duration:D          simulated span (default 8m)
//	rps:F               per-gateway request rate (default 40)
//	seed:N              PRNG seed (default 1)
//	floor:N             replica floor (default 0)
//	avail:F             availability weight in [0,1] (default 0)
//	redirectors:N       hash-partitioned redirectors (default 1)
//	policy:NAME         paper (default), round-robin, closest
//	highload            Figure 9 watermarks (bare clause, no value)
//	faults:SCHEDULE     fault sub-schedule in the -faults DSL with "|"
//	                    standing in for ";" (e.g. crash:9@4m+3m|drop:0.2)
//	store:TERM          replica-storage stack in the -store DSL (e.g.
//	                    mem, cache(mem:64,disk:5ms), mirror(faulty(mem),mem))
//
// Durations use Go syntax. Unknown keys, duplicate keys, malformed values
// and a missing workload are errors — a scenario either parses into
// exactly what was written or is rejected.
func ParseSpec(s string) (Spec, error) {
	sp := Spec{
		Objects:     2000,
		Duration:    8 * time.Minute,
		RPS:         40,
		Seed:        1,
		Redirectors: 1,
		Policy:      "paper",
	}
	seen := make(map[string]bool, 8)
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, rest, hasValue := strings.Cut(clause, ":")
		key = strings.ToLower(strings.TrimSpace(key))
		if seen[key] {
			return Spec{}, fmt.Errorf("scenario: duplicate clause %q", key)
		}
		seen[key] = true
		if !hasValue {
			if key == "highload" {
				sp.HighLoad = true
				continue
			}
			return Spec{}, fmt.Errorf("scenario: clause %q needs a key: prefix", clause)
		}
		rest = strings.TrimSpace(rest)
		var err error
		switch key {
		case "workload":
			sp.Workload, err = parseWorkloadName(rest)
		case "switch":
			sp.SwitchTo, sp.SwitchAt, err = parseSwitch(rest)
		case "objects":
			sp.Objects, err = parseIntRange(rest, 1, maxObjects)
		case "duration":
			sp.Duration, err = parseDurationRange(rest, maxDuration)
		case "rps":
			sp.RPS, err = parsePositiveFloat(rest, maxRPS)
		case "seed":
			sp.Seed, err = strconv.ParseInt(rest, 10, 64)
			if err == nil && sp.Seed < 0 {
				err = fmt.Errorf("seed %d must be non-negative", sp.Seed)
			}
		case "floor":
			sp.Floor, err = parseIntRange(rest, 0, maxFloor)
		case "avail":
			sp.Avail, err = strconv.ParseFloat(rest, 64)
			if err == nil && (sp.Avail < 0 || sp.Avail > 1 || sp.Avail != sp.Avail) {
				err = fmt.Errorf("availability weight %v must be in [0,1]", sp.Avail)
			}
		case "redirectors":
			sp.Redirectors, err = parseIntRange(rest, 1, maxRedirectors)
		case "policy":
			if !policyNames[rest] {
				err = fmt.Errorf("unknown policy %q", rest)
			} else {
				sp.Policy = rest
			}
		case "highload":
			err = fmt.Errorf("highload is a bare clause and takes no value")
		case "faults":
			sp.Faults, err = fault.ParseSchedule(strings.ReplaceAll(rest, "|", ";"))
			sp.FaultsDSL = rest
		case "store":
			sp.Store, err = store.ParseSpec(rest)
			sp.StoreDSL = rest
		default:
			return Spec{}, fmt.Errorf("scenario: unknown clause %q", key)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("scenario: clause %q: %w", clause, err)
		}
	}
	if sp.Workload == "" {
		return Spec{}, fmt.Errorf("scenario: composition needs a workload: clause")
	}
	if sp.SwitchTo != "" && sp.SwitchAt >= sp.Duration {
		return Spec{}, fmt.Errorf("scenario: switch time %v not before the %v horizon", sp.SwitchAt, sp.Duration)
	}
	return sp, nil
}

func parseWorkloadName(s string) (string, error) {
	if !workloadNames[s] {
		return "", fmt.Errorf("unknown workload %q", s)
	}
	return s, nil
}

// parseSwitch parses "NAME@TIME".
func parseSwitch(s string) (string, time.Duration, error) {
	name, when, ok := strings.Cut(s, "@")
	if !ok {
		return "", 0, fmt.Errorf("switch needs NAME@TIME")
	}
	name = strings.TrimSpace(name)
	if _, err := parseWorkloadName(name); err != nil {
		return "", 0, err
	}
	at, err := time.ParseDuration(strings.TrimSpace(when))
	if err != nil {
		return "", 0, fmt.Errorf("bad switch time: %w", err)
	}
	if at <= 0 {
		return "", 0, fmt.Errorf("switch time %v must be positive", at)
	}
	return name, at, nil
}

func parseIntRange(s string, lo, hi int) (int, error) {
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if v < lo || v > hi {
		return 0, fmt.Errorf("value %d outside [%d, %d]", v, lo, hi)
	}
	return v, nil
}

func parseDurationRange(s string, maxD time.Duration) (time.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d <= 0 || d > maxD {
		return 0, fmt.Errorf("duration %v outside (0, %v]", d, maxD)
	}
	return d, nil
}

func parsePositiveFloat(s string, maxV float64) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if v <= 0 || v > maxV || v != v {
		return 0, fmt.Errorf("value %v outside (0, %v]", v, maxV)
	}
	return v, nil
}
