package scenario

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"radar/internal/sim"
)

// update regenerates the golden acceptance files:
//
//	go test ./internal/scenario/ -run TestCorpusGolden -update
//
// Regenerate only when a deliberate behavior change shifts the corpus
// metrics, and say why in the commit message (the -update etiquette of
// EXPERIMENTS.md).
var update = flag.Bool("update", false, "rewrite golden scenario acceptance files")

// corpusRun is one scenario's shared run: golden and property tests judge
// the same simulation instead of paying for it twice.
type corpusRun struct {
	sim *sim.Simulation
	res *sim.Results
	err error
}

var (
	runMu    sync.Mutex
	runCache = map[string]*corpusRun{}
)

// runScenario runs (once) and returns the named corpus scenario.
func runScenario(t *testing.T, name string) *corpusRun {
	t.Helper()
	runMu.Lock()
	defer runMu.Unlock()
	if r, ok := runCache[name]; ok {
		if r.err != nil {
			t.Fatal(r.err)
		}
		return r
	}
	r := &corpusRun{}
	runCache[name] = r
	sc, ok := ByName(name)
	if !ok {
		t.Fatalf("no scenario %q in corpus", name)
	}
	cfg, err := sc.Config()
	if err != nil {
		r.err = err
		t.Fatal(err)
	}
	s, err := sim.New(cfg)
	if err != nil {
		r.err = err
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		r.err = err
		t.Fatal(err)
	}
	r.sim, r.res = s, res
	return r
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".json")
}

// TestCorpusGolden is the corpus acceptance gate: every scenario's
// metrics must match its golden file within the scenario's tolerances,
// and the golden must carry the scenario's current version.
func TestCorpusGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("integration runs")
	}
	for _, sc := range Corpus() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			got := MetricsFrom(runScenario(t, sc.Name).res)
			path := goldenPath(sc.Name)
			if *update {
				data, err := json.MarshalIndent(Golden{Version: sc.Version, Metrics: got}, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to generate): %v", err)
			}
			var want Golden
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatalf("corrupt golden file %s: %v", path, err)
			}
			if want.Version != sc.Version {
				t.Fatalf("golden generated for scenario version %d, corpus is at %d — regenerate with -update",
					want.Version, sc.Version)
			}
			for _, v := range Check(got, want.Metrics, sc.Tolerances) {
				t.Errorf("acceptance gate: %s", v)
			}
		})
	}
}
