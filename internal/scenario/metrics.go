package scenario

import (
	"fmt"
	"math"

	"radar/internal/sim"
)

// Metrics is a scenario's acceptance surface: the availability, repair
// and efficiency aggregates a corpus run is judged on. Every field is a
// golden-tracked metric; Check compares two Metrics field by field under
// a scenario's tolerances.
type Metrics struct {
	TotalServed        int64   `json:"totalServed"`
	FailedRequests     int64   `json:"failedRequests"`
	TimedOutRequests   int64   `json:"timedOutRequests"`
	Availability       float64 `json:"availability"` // served / (served + failed)
	HitRatio           float64 `json:"hitRatio"`     // served / (served + failed + timed out)
	Outages            int64   `json:"outages"`
	UnavailObjSecs     float64 `json:"unavailObjSecs"`
	BelowFloorObjSecs  float64 `json:"belowFloorObjSecs"`
	DeferredMoves      int64   `json:"deferredMoves"`
	RepairReplications int64   `json:"repairReplications"`
	RepairByteHops     int64   `json:"repairByteHops"`
	ReconcileByteHops  int64   `json:"reconcileByteHops"`
	BandwidthEq        float64 `json:"bandwidthEq"` // byte-hops/s at equilibrium
	LatencyEq          float64 `json:"latencyEq"`   // seconds at equilibrium
	AvgReplicas        float64 `json:"avgReplicas"`
	TotalMoves         int64   `json:"totalMoves"`
	// Replica-storage stack counters, summed across layers. All zero for
	// the default memory stack (the only layer it has never hits, misses,
	// evicts, repairs or refetches), so pre-store goldens — which decode
	// these fields as zero — still match storeless scenarios exactly.
	StoreHits      int64 `json:"storeHits,omitempty"`
	StoreMisses    int64 `json:"storeMisses,omitempty"`
	StoreEvictions int64 `json:"storeEvictions,omitempty"`
	StoreRepairs   int64 `json:"storeRepairs,omitempty"`
	StoreRefetches int64 `json:"storeRefetches,omitempty"`
}

// MetricsFrom extracts the acceptance metrics from a run's results.
func MetricsFrom(res *sim.Results) Metrics {
	served := float64(res.TotalServed)
	failed := float64(res.FailedRequests)
	timedOut := float64(res.TimedOutRequests)
	m := Metrics{
		TotalServed:        res.TotalServed,
		FailedRequests:     res.FailedRequests,
		TimedOutRequests:   res.TimedOutRequests,
		Outages:            res.Outages,
		UnavailObjSecs:     res.UnavailObjSecs,
		BelowFloorObjSecs:  res.BelowFloorObjSecs,
		DeferredMoves:      res.Counters.DeferredMoves,
		RepairReplications: res.Counters.RepairReplications,
		RepairByteHops:     res.RepairByteHops,
		ReconcileByteHops:  res.ReconcileByteHops,
		BandwidthEq:        res.BandwidthStats.Equilibrium,
		LatencyEq:          res.LatencyStats.Equilibrium,
		AvgReplicas:        res.AvgReplicas,
		TotalMoves:         res.TotalMoves(),
	}
	if served+failed > 0 {
		m.Availability = served / (served + failed)
	}
	if served+failed+timedOut > 0 {
		m.HitRatio = served / (served + failed + timedOut)
	}
	for _, l := range res.StoreLayers {
		m.StoreHits += l.Hits
		m.StoreMisses += l.Misses
		m.StoreEvictions += l.Evictions
		m.StoreRepairs += l.Repairs
		m.StoreRefetches += l.Refetches
	}
	return m
}

// Golden is the on-disk acceptance record for one scenario: the metrics
// plus the scenario version they were generated for.
type Golden struct {
	Version int     `json:"version"`
	Metrics Metrics `json:"metrics"`
}

// field is one named metric value for tolerance comparison.
type field struct {
	name string
	v    float64
}

func (m Metrics) fields() []field {
	return []field{
		{"TotalServed", float64(m.TotalServed)},
		{"FailedRequests", float64(m.FailedRequests)},
		{"TimedOutRequests", float64(m.TimedOutRequests)},
		{"Availability", m.Availability},
		{"HitRatio", m.HitRatio},
		{"Outages", float64(m.Outages)},
		{"UnavailObjSecs", m.UnavailObjSecs},
		{"BelowFloorObjSecs", m.BelowFloorObjSecs},
		{"DeferredMoves", float64(m.DeferredMoves)},
		{"RepairReplications", float64(m.RepairReplications)},
		{"RepairByteHops", float64(m.RepairByteHops)},
		{"ReconcileByteHops", float64(m.ReconcileByteHops)},
		{"BandwidthEq", m.BandwidthEq},
		{"LatencyEq", m.LatencyEq},
		{"AvgReplicas", m.AvgReplicas},
		{"TotalMoves", float64(m.TotalMoves)},
		{"StoreHits", float64(m.StoreHits)},
		{"StoreMisses", float64(m.StoreMisses)},
		{"StoreEvictions", float64(m.StoreEvictions)},
		{"StoreRepairs", float64(m.StoreRepairs)},
		{"StoreRefetches", float64(m.StoreRefetches)},
	}
}

// Check compares got against the golden want under tol (field name →
// relative tolerance; absolute when the golden value is zero; missing
// field → exact match). It returns one violation string per metric
// outside its gate, empty when the run is accepted.
func Check(got, want Metrics, tol map[string]float64) []string {
	var violations []string
	gf, wf := got.fields(), want.fields()
	for i := range gf {
		name := gf[i].name
		g, w := gf[i].v, wf[i].v
		allowed := tol[name] * math.Abs(w)
		if w == 0 {
			allowed = tol[name]
		}
		if diff := math.Abs(g - w); diff > allowed {
			violations = append(violations,
				fmt.Sprintf("%s = %v, golden %v (|diff| %v > allowed %v)", name, g, w, diff, allowed))
		}
	}
	return violations
}
