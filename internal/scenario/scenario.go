// Package scenario composes workload × fault schedule × control-plane
// loss × policy parameters into named, versioned end-to-end scenarios —
// the repo's standing acceptance corpus. Each scenario is written in a
// compact DSL (ParseSpec), builds into a full sim.Config (Spec.Config),
// and carries golden acceptance metrics with per-metric tolerances
// (Metrics, Check) pinned under testdata/golden/ — every future change
// runs against the corpus, the way the fault and control-plane layers
// run against their golden regression tables.
package scenario

import (
	"fmt"
	"sort"

	"radar/internal/sim"
)

// Scenario is one named, versioned corpus entry: a DSL composition plus
// the tolerances its golden acceptance gate allows.
type Scenario struct {
	// Name identifies the scenario (CLI -scenario NAME, golden file name).
	Name string
	// Version is bumped whenever the scenario's composition changes
	// incompatibly; the golden file records the version it was generated
	// for, so a stale golden fails loudly instead of drifting silently.
	Version int
	// Description says what the scenario stresses.
	Description string
	// DSL is the composition (see ParseSpec for the grammar).
	DSL string
	// Tolerances maps a Metrics field name to the relative deviation the
	// acceptance gate allows against the golden value (absolute when the
	// golden value is zero). Fields not listed must match exactly — the
	// simulator is deterministic, so exact is the default and tolerances
	// exist only for metrics future refactors may legitimately nudge.
	Tolerances map[string]float64
}

// Spec parses the scenario's DSL.
func (s Scenario) Spec() (Spec, error) { return ParseSpec(s.DSL) }

// Config builds the scenario's simulation configuration.
func (s Scenario) Config() (sim.Config, error) {
	sp, err := s.Spec()
	if err != nil {
		return sim.Config{}, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	cfg, err := sp.Config()
	if err != nil {
		return sim.Config{}, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return cfg, nil
}

// floatTol is the default relative tolerance for time-integrated floats;
// series-equilibrium metrics get the same; ratios get a tighter one.
var defaultTolerances = map[string]float64{
	"Availability":      0.005,
	"HitRatio":          0.005,
	"UnavailObjSecs":    0.05,
	"BelowFloorObjSecs": 0.05,
	"BandwidthEq":       0.02,
	"LatencyEq":         0.02,
	"AvgReplicas":       0.02,
}

// Corpus returns the standing scenario corpus, in presentation order.
// Every entry is Quick-scale (2000 objects) so the full matrix runs in CI.
func Corpus() []Scenario {
	return []Scenario{
		{
			Name:    "steady-state-baseline",
			Version: 1,
			Description: "zipf demand, no faults, no availability knob — pins the " +
				"zero-knob/zero-fault path bit-identical to the paper's protocol",
			DSL:        "workload:zipf; objects:2000; duration:8m; rps:40; seed:1",
			Tolerances: defaultTolerances,
		},
		{
			Name:    "flash-crowd-regional-outage",
			Version: 1,
			Description: "a vicinity flash crowd on node 9's pages while node 9, a remote " +
				"node and a backbone link fail together — replica floor 2 with the " +
				"availability-aware objective at w=0.5",
			DSL: "workload:flash-crowd; objects:2000; duration:12m; rps:40; seed:1; " +
				"floor:2; avail:0.5; faults:crash:9@4m+4m|crash:30@4m+4m|link:12-13@4m+4m",
			Tolerances: defaultTolerances,
		},
		{
			Name:    "diurnal-lossy-ctrl",
			Version: 1,
			Description: "a diurnal demand swap (zipf to hot-pages at 6m) over a lossy " +
				"control plane (20% drop, 5% dup, 20ms delay) — floor 2, w=0.5",
			DSL: "workload:zipf; switch:hot-pages@6m; objects:2000; duration:12m; rps:40; " +
				"seed:1; floor:2; avail:0.5; faults:drop:0.2|dup:0.05|cdelay:20ms",
			Tolerances: defaultTolerances,
		},
		{
			Name:    "cache-over-disk-tier",
			Version: 1,
			Description: "zipf demand served from a small memory cache over a 5ms disk " +
				"tier — pins the replica-storage stack's hit/miss/eviction accounting " +
				"and the serve-cost queueing it feeds into FCFS occupancy",
			DSL: "workload:zipf; objects:2000; duration:8m; rps:40; seed:1; " +
				"store:cache(mem:64,disk:5ms)",
			Tolerances: defaultTolerances,
		},
		{
			Name:    "correlated-rack-failures",
			Version: 1,
			Description: "three adjacent hosts (9, 10, 11) crash simultaneously for 3m " +
				"under uniform demand — the correlated-failure case the spread term of " +
				"the availability objective (w=0.6) is built for",
			DSL: "workload:uniform; objects:2000; duration:10m; rps:40; seed:1; " +
				"floor:2; avail:0.6; faults:crash:9@4m+3m|crash:10@4m+3m|crash:11@4m+3m",
			Tolerances: defaultTolerances,
		},
	}
}

// ByName returns the corpus scenario with the given name.
func ByName(name string) (Scenario, bool) {
	for _, s := range Corpus() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// Names returns the corpus scenario names, sorted.
func Names() []string {
	corpus := Corpus()
	names := make([]string, 0, len(corpus))
	for _, s := range corpus {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return names
}
