package scenario

import (
	"fmt"

	"radar/internal/object"
	"radar/internal/protocol"
	"radar/internal/sim"
	"radar/internal/substrate"
	"radar/internal/topology"
	"radar/internal/workload"
)

// Flash-crowd composition constants: the crowd hammers the pages homed on
// flashCrowdHome from every gateway within flashCrowdRadius hops of it,
// sending flashCrowdPFocus of that vicinity's traffic at the targets —
// the §3 motivating case, aimed at the node the outage scenarios crash.
const (
	flashCrowdHome   = topology.NodeID(9)
	flashCrowdRadius = 2
	flashCrowdPFocus = 0.8
)

// Config builds the full simulation configuration the spec composes:
// Table 1 defaults specialized by every parsed clause.
func (sp Spec) Config() (sim.Config, error) {
	if sp.Workload == "" {
		return sim.Config{}, fmt.Errorf("scenario: spec has no workload (use ParseSpec)")
	}
	sub := substrate.UUNET()
	u := object.Universe{Count: sp.Objects, SizeBytes: 12 << 10}
	gen, err := buildGenerator(sp.Workload, u, sub, sp.Seed)
	if err != nil {
		return sim.Config{}, err
	}
	cfg := sim.DefaultConfig(gen, sp.Seed)
	cfg.Universe = u
	cfg.Duration = sp.Duration
	cfg.NodeRequestRPS = sp.RPS
	cfg.NumRedirectors = sp.Redirectors
	if sp.HighLoad {
		cfg.Protocol = protocol.HighLoadParams()
	}
	cfg.Protocol.ReplicaFloor = sp.Floor
	cfg.Protocol.AvailabilityWeight = sp.Avail
	switch sp.Policy {
	case "round-robin":
		cfg.Policy = protocol.PolicyRoundRobin
	case "closest":
		cfg.Policy = protocol.PolicyClosest
	}
	cfg.Faults = sp.Faults
	cfg.Store = sp.Store
	if sp.SwitchTo != "" {
		to, err := buildGenerator(sp.SwitchTo, u, sub, sp.Seed)
		if err != nil {
			return sim.Config{}, err
		}
		cfg.WorkloadSwitch.At = sp.SwitchAt
		cfg.WorkloadSwitch.To = to
	}
	if err := cfg.Validate(); err != nil {
		return sim.Config{}, err
	}
	return cfg, nil
}

// buildGenerator constructs a demand generator by scenario name, with the
// paper's skew parameters for the named workloads.
func buildGenerator(name string, u object.Universe, sub *substrate.Substrate, seed int64) (workload.Generator, error) {
	topo := sub.Topo
	switch name {
	case "uniform":
		return workload.NewUniform(u)
	case "zipf":
		return workload.NewZipf(u)
	case "hot-sites":
		return workload.NewHotSites(u, topo.NumNodes(), 0.9, seed)
	case "hot-pages":
		return workload.NewHotPages(u, 0.1, 0.9, seed)
	case "regional":
		return workload.NewRegional(u, topo, 0.01, 0.9)
	case "flash-crowd":
		background, err := workload.NewZipf(u)
		if err != nil {
			return nil, err
		}
		targets := u.ObjectsHomedAt(flashCrowdHome, topo.NumNodes())
		if len(targets) == 0 {
			return nil, fmt.Errorf("scenario: no objects homed at node %d for the flash crowd", flashCrowdHome)
		}
		var gateways []topology.NodeID
		for n := 0; n < topo.NumNodes(); n++ {
			if sub.Routes.Distance(flashCrowdHome, topology.NodeID(n)) <= flashCrowdRadius {
				gateways = append(gateways, topology.NodeID(n))
			}
		}
		return workload.NewFocused(targets, gateways, flashCrowdPFocus, background)
	}
	return nil, fmt.Errorf("scenario: unknown workload %q", name)
}
