package scenario

import (
	"strings"
	"testing"
	"time"

	"radar/internal/fault"
	"radar/internal/protocol"
)

func TestParseSpecDefaults(t *testing.T) {
	sp, err := ParseSpec("workload:zipf")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Workload != "zipf" || sp.Objects != 2000 || sp.Duration != 8*time.Minute ||
		sp.RPS != 40 || sp.Seed != 1 || sp.Redirectors != 1 || sp.Policy != "paper" ||
		sp.Floor != 0 || sp.Avail != 0 || sp.HighLoad || sp.SwitchTo != "" ||
		sp.Faults.Enabled() || sp.FaultsDSL != "" {
		t.Errorf("ParseSpec defaults = %+v", sp)
	}
}

func TestParseSpecFullComposition(t *testing.T) {
	sp, err := ParseSpec("workload:flash-crowd; switch:hot-pages@6m; objects:500; duration:12m; " +
		"rps:25.5; seed:7; floor:2; avail:0.5; redirectors:4; policy:closest; highload; " +
		"faults:crash:9@4m+3m|drop:0.2")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Workload != "flash-crowd" || sp.SwitchTo != "hot-pages" || sp.SwitchAt != 6*time.Minute {
		t.Errorf("workload/switch = %q/%q@%v", sp.Workload, sp.SwitchTo, sp.SwitchAt)
	}
	if sp.Objects != 500 || sp.Duration != 12*time.Minute || sp.RPS != 25.5 || sp.Seed != 7 {
		t.Errorf("scale = %d obj, %v, %v rps, seed %d", sp.Objects, sp.Duration, sp.RPS, sp.Seed)
	}
	if sp.Floor != 2 || sp.Avail != 0.5 || sp.Redirectors != 4 || sp.Policy != "closest" || !sp.HighLoad {
		t.Errorf("policy knobs = floor %d avail %v redirectors %d policy %q highload %v",
			sp.Floor, sp.Avail, sp.Redirectors, sp.Policy, sp.HighLoad)
	}
	if len(sp.Faults.Events) != 2 || sp.Faults.MsgDrop != 0.2 {
		t.Errorf("faults = %+v", sp.Faults)
	}
	if sp.Faults.Events[0].Kind != fault.HostDown {
		t.Errorf("first fault event = %+v, want a host crash", sp.Faults.Events[0])
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"",                                        // no workload
		"objects:500",                             // no workload
		"workload:bogus",                          // unknown workload
		"workload:zipf; workload:uniform",         // duplicate key
		"workload:zipf; highload; highload",       // duplicate bare clause
		"workload:zipf; highload:1",               // highload takes no value
		"workload:zipf; bogus:1",                  // unknown key
		"workload:zipf; objects:0",                // out of range
		"workload:zipf; objects:9999999",          // above cap
		"workload:zipf; objects:-5",               // negative
		"workload:zipf; duration:0s",              // zero duration
		"workload:zipf; duration:48h",             // above cap
		"workload:zipf; rps:0",                    // zero rate
		"workload:zipf; rps:NaN",                  // NaN
		"workload:zipf; seed:-1",                  // negative seed
		"workload:zipf; floor:-1",                 // negative floor
		"workload:zipf; floor:99",                 // above cap
		"workload:zipf; avail:1.5",                // weight above 1
		"workload:zipf; avail:-0.1",               // negative weight
		"workload:zipf; avail:NaN",                // NaN weight
		"workload:zipf; redirectors:0",            // below 1
		"workload:zipf; policy:best",              // unknown policy
		"workload:zipf; switch:hot-pages",         // switch without time
		"workload:zipf; switch:bogus@5m",          // unknown switch target
		"workload:zipf; switch:uniform@0s",        // non-positive switch time
		"workload:zipf; switch:uniform@10m",       // switch at/after the 8m horizon
		"workload:zipf; faults:crash:7",           // malformed fault sub-schedule
		"workload:zipf; faults:drop:2",            // fault value out of range
		"workload:zipf; faults:drop:0.2|drop:0.3", // duplicate fault key
		"workload",                                // bare non-highload clause
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", bad)
		}
	}
}

func TestCorpusScenariosBuild(t *testing.T) {
	corpus := Corpus()
	if len(corpus) < 4 {
		t.Fatalf("corpus has %d scenarios, want >= 4", len(corpus))
	}
	seen := map[string]bool{}
	for _, sc := range corpus {
		if sc.Name == "" || sc.Version < 1 || sc.Description == "" {
			t.Errorf("scenario %+v missing name, version or description", sc)
		}
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		cfg, err := sc.Config()
		if err != nil {
			t.Errorf("scenario %s does not build: %v", sc.Name, err)
			continue
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("scenario %s config invalid: %v", sc.Name, err)
		}
	}
	if _, ok := ByName("steady-state-baseline"); !ok {
		t.Error("ByName(steady-state-baseline) not found")
	}
	if _, ok := ByName("no-such-scenario"); ok {
		t.Error("ByName(no-such-scenario) unexpectedly found")
	}
	if names := Names(); len(names) != len(corpus) {
		t.Errorf("Names() returned %d names for %d scenarios", len(names), len(corpus))
	}
}

// The baseline scenario must not arm any extension path: its config is the
// zero-knob/zero-fault composition that pins bit-identity with the paper.
func TestBaselineScenarioArmsNothing(t *testing.T) {
	sc, ok := ByName("steady-state-baseline")
	if !ok {
		t.Fatal("no steady-state-baseline in corpus")
	}
	cfg, err := sc.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Faults.Enabled() || cfg.Faults.HasMessageFaults() {
		t.Errorf("baseline arms faults: %+v", cfg.Faults)
	}
	if cfg.Protocol.ReplicaFloor != 0 || cfg.Protocol.AvailabilityWeight != 0 {
		t.Errorf("baseline sets floor %d / avail %v, want 0/0",
			cfg.Protocol.ReplicaFloor, cfg.Protocol.AvailabilityWeight)
	}
	if cfg.Policy != protocol.PolicyPaper {
		t.Errorf("baseline policy = %v, want paper", cfg.Policy)
	}
}

// Spec.Config on a hand-built (non-parsed) spec without a workload fails
// cleanly rather than panicking downstream.
func TestSpecConfigRequiresWorkload(t *testing.T) {
	var sp Spec
	if _, err := sp.Config(); err == nil || !strings.Contains(err.Error(), "workload") {
		t.Errorf("zero Spec.Config() error = %v, want workload complaint", err)
	}
}
