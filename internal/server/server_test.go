package server

import (
	"math/rand"
	"testing"
	"time"

	"radar/internal/object"
)

func newServer(t *testing.T, capacity float64) *Server {
	t.Helper()
	s, err := New(3, Config{CapacityRPS: capacity, MeasurementInterval: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFCFSQueueing(t *testing.T) {
	s := newServer(t, 200) // 5ms service time
	d1 := s.Enqueue(0, 0)
	if d1 != 5*time.Millisecond {
		t.Fatalf("first completion = %v, want 5ms", d1)
	}
	d2 := s.Enqueue(time.Millisecond, 0) // arrives while busy
	if d2 != 10*time.Millisecond {
		t.Fatalf("second completion = %v, want 10ms (queued)", d2)
	}
	d3 := s.Enqueue(time.Second, 0) // arrives idle
	if d3 != time.Second+5*time.Millisecond {
		t.Fatalf("third completion = %v, want 1.005s", d3)
	}
}

func TestQueueDelayAndLength(t *testing.T) {
	s := newServer(t, 100) // 10ms
	s.Enqueue(0, 0)
	s.Enqueue(0, 0)
	if got := s.QueueDelay(0); got != 20*time.Millisecond {
		t.Fatalf("QueueDelay = %v, want 20ms", got)
	}
	if got := s.QueueLen(); got != 2 {
		t.Fatalf("QueueLen = %d, want 2", got)
	}
	s.OnServed(1)
	if got := s.QueueLen(); got != 1 {
		t.Fatalf("QueueLen after completion = %d, want 1", got)
	}
	if got := s.MaxQueueLen(); got != 2 {
		t.Fatalf("MaxQueueLen = %d, want 2", got)
	}
	if got := s.QueueDelay(time.Hour); got != 0 {
		t.Fatalf("idle QueueDelay = %v, want 0", got)
	}
}

func TestLoadMeasurement(t *testing.T) {
	s := newServer(t, 200)
	for i := 0; i < 100; i++ {
		s.OnServed(object.ID(i % 2))
	}
	if got := s.Load(); got != 0 {
		t.Fatalf("load before first interval close = %v, want 0", got)
	}
	start := s.CloseInterval(20 * time.Second)
	if start != 0 {
		t.Fatalf("closed interval start = %v, want 0", start)
	}
	if got := s.Load(); got != 5 { // 100 served / 20s
		t.Fatalf("measured load = %v, want 5 req/s", got)
	}
	// Per-object attribution: both objects served 50 times.
	if got := s.ObjectLoad(0); got != 2.5 {
		t.Fatalf("ObjectLoad(0) = %v, want 2.5", got)
	}
	if got := s.ObjectLoad(1); got != 2.5 {
		t.Fatalf("ObjectLoad(1) = %v, want 2.5", got)
	}
	if got := s.ObjectLoad(99); got != 0 {
		t.Fatalf("ObjectLoad(unknown) = %v, want 0", got)
	}
	// Next interval with no service: load drops to 0, old object loads gone.
	if start := s.CloseInterval(40 * time.Second); start != 20*time.Second {
		t.Fatalf("second closed start = %v, want 20s", start)
	}
	if got := s.Load(); got != 0 {
		t.Fatalf("empty interval load = %v, want 0", got)
	}
	if got := s.ObjectLoad(0); got != 0 {
		t.Fatalf("stale ObjectLoad = %v, want 0", got)
	}
}

func TestLoadReflectsCapacityUnderOverload(t *testing.T) {
	// Offered 400 req/s to a 200 req/s server: measured load must cap at
	// the service rate, not the offered rate (load is *serviced* requests).
	s := newServer(t, 200)
	now := time.Duration(0)
	served := 0
	for i := 0; i < 8000; i++ { // 400/s for 20s
		done := s.Enqueue(now, 0)
		if done <= 20*time.Second {
			s.OnServed(0)
			served++
		}
		now += 2500 * time.Microsecond
	}
	s.CloseInterval(20 * time.Second)
	if got := s.Load(); got < 195 || got > 200 {
		t.Fatalf("overloaded measured load = %v, want ~200 (capacity)", got)
	}
}

func TestCloseIntervalZeroLength(t *testing.T) {
	s := newServer(t, 200)
	s.OnServed(1)
	s.CloseInterval(0) // zero-length: keep previous measurement
	if got := s.Load(); got != 0 {
		t.Fatalf("load = %v, want unchanged 0", got)
	}
}

func TestTotalServed(t *testing.T) {
	s := newServer(t, 200)
	for i := 0; i < 7; i++ {
		s.OnServed(0)
	}
	s.CloseInterval(20 * time.Second)
	for i := 0; i < 3; i++ {
		s.OnServed(0)
	}
	if got := s.TotalServed(); got != 10 {
		t.Fatalf("TotalServed = %d, want 10 across intervals", got)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(0, Config{CapacityRPS: 0, MeasurementInterval: time.Second}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(0, Config{CapacityRPS: 1, MeasurementInterval: 0}); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestDefaultConfigMatchesTable1(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.CapacityRPS != 200 {
		t.Errorf("capacity = %v, want 200 req/s", cfg.CapacityRPS)
	}
	if cfg.MeasurementInterval != 20*time.Second {
		t.Errorf("measurement interval = %v, want 20s", cfg.MeasurementInterval)
	}
	s, err := New(0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.ServiceTime() != 5*time.Millisecond {
		t.Errorf("service time = %v, want 5ms", s.ServiceTime())
	}
}

// TestQueueInvariantsProperty drives random arrival sequences and checks
// FCFS invariants: completion times are strictly increasing by service
// time, and the queue never goes negative.
func TestQueueInvariantsProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := newServer(t, 100) // 10ms service
		now := time.Duration(0)
		var prevDone time.Duration
		var pending []time.Duration
		for i := 0; i < 300; i++ {
			now += time.Duration(rng.Intn(20)) * time.Millisecond
			// Complete any services that finished by now.
			for len(pending) > 0 && pending[0] <= now {
				s.OnServed(object.ID(rng.Intn(5)))
				pending = pending[1:]
			}
			done := s.Enqueue(now, 0)
			if done < now+s.ServiceTime() {
				t.Fatalf("seed %d: completion %v before arrival+service", seed, done)
			}
			if done < prevDone+s.ServiceTime() {
				t.Fatalf("seed %d: FCFS violated: %v after %v", seed, done, prevDone)
			}
			prevDone = done
			pending = append(pending, done)
			if s.QueueLen() < 0 {
				t.Fatalf("seed %d: negative queue", seed)
			}
		}
	}
}

// TestLoadAttributionSumsToTotal: per-object loads sum to the total
// measured load.
func TestLoadAttributionSumsToTotal(t *testing.T) {
	s := newServer(t, 200)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		s.OnServed(object.ID(rng.Intn(17)))
	}
	s.CloseInterval(20 * time.Second)
	sum := 0.0
	for id := 0; id < 17; id++ {
		sum += s.ObjectLoad(object.ID(id))
	}
	if diff := sum - s.Load(); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("object loads sum %v != total %v", sum, s.Load())
	}
}

// TestEnqueueStorageCost: a storage cost extends the request's occupancy
// of the server, backing up the FCFS queue like slow service.
func TestEnqueueStorageCost(t *testing.T) {
	s := newServer(t, 200) // 5ms service time
	d1 := s.Enqueue(0, 5*time.Millisecond)
	if d1 != 10*time.Millisecond {
		t.Fatalf("first completion = %v, want 10ms (5ms service + 5ms storage)", d1)
	}
	d2 := s.Enqueue(0, 0)
	if d2 != 15*time.Millisecond {
		t.Fatalf("second completion = %v, want 15ms (queued behind storage)", d2)
	}
}
