// Package server models a hosting server (paper §2, §2.1, §6.1): a
// first-come-first-served queue with fixed service rate, and load
// measurement as the rate of serviced requests averaged over a measurement
// interval, attributed per object proportionally to per-object service.
package server

import (
	"fmt"
	"time"

	"radar/internal/object"
	"radar/internal/topology"
)

// Config parameterizes a server.
type Config struct {
	// CapacityRPS is the service rate in requests/sec (Table 1: 200).
	CapacityRPS float64
	// MeasurementInterval is the load averaging window (paper: 20 s).
	MeasurementInterval time.Duration
}

// DefaultConfig returns Table 1 server parameters.
func DefaultConfig() Config {
	return Config{CapacityRPS: 200, MeasurementInterval: 20 * time.Second}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.CapacityRPS <= 0 {
		return fmt.Errorf("server: capacity %v must be positive", c.CapacityRPS)
	}
	if c.MeasurementInterval <= 0 {
		return fmt.Errorf("server: measurement interval %v must be positive", c.MeasurementInterval)
	}
	return nil
}

// Server is one hosting server's queueing and load-measurement state.
// It implements protocol.LoadSource.
type Server struct {
	// ID is the node the server runs on.
	ID topology.NodeID

	serviceTime time.Duration
	interval    time.Duration

	busyUntil time.Duration

	// Current (open) interval accumulation. Object IDs are dense small
	// integers, so per-object counters are slices indexed by ID with a
	// touched-list instead of maps: the per-request update is an indexed
	// increment, and CloseInterval only walks objects actually served.
	intervalStart time.Duration
	served        int64
	servedPerObj  []int32 // indexed by object.ID, grown on demand;
	// int32 is ample for one measurement interval and keeps the dense
	// per-object counter block cache-resident

	servedTouched []object.ID // IDs with non-zero servedPerObj entries

	// Last completed interval's measurements.
	measuredLoad float64
	objLoad      []float64   // indexed by object.ID, grown on demand
	loadTouched  []object.ID // IDs with non-zero objLoad entries

	// Lifetime counters.
	totalServed int64
	maxQueueLen int
	queueLen    int
}

// New builds a server on node id.
func New(id topology.NodeID, cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Server{
		ID:          id,
		serviceTime: time.Duration(float64(time.Second) / cfg.CapacityRPS),
		interval:    cfg.MeasurementInterval,
	}, nil
}

// growTo returns s grown to length n, zero-filling new elements and
// reusing spare capacity when possible. n must be at least len(s).
func growTo[T any](s []T, n int) []T {
	if n <= cap(s) {
		return s[:n]
	}
	grown := make([]T, n, max(2*cap(s), n))
	copy(grown, s)
	return grown
}

// Enqueue admits a request arriving at now into the FCFS queue and returns
// its service completion time. storageCost is the extra service latency
// the replica-storage backend charges for this read (zero for resident
// memory); it extends the request's occupancy of the server, so slow
// tiers back up the FCFS queue exactly like slow service. The caller
// schedules the completion event and calls OnServed there.
func (s *Server) Enqueue(now time.Duration, storageCost time.Duration) time.Duration {
	start := now
	if s.busyUntil > start {
		start = s.busyUntil
	}
	done := start + s.serviceTime + storageCost
	s.busyUntil = done
	s.queueLen++
	if s.queueLen > s.maxQueueLen {
		s.maxQueueLen = s.queueLen
	}
	return done
}

// OnServed records the completion of a request for id.
func (s *Server) OnServed(id object.ID) {
	s.served++
	s.totalServed++
	if int(id) >= len(s.servedPerObj) {
		s.servedPerObj = growTo(s.servedPerObj, int(id)+1)
	}
	if s.servedPerObj[id] == 0 {
		s.servedTouched = append(s.servedTouched, id)
	}
	s.servedPerObj[id]++
	if s.queueLen > 0 {
		s.queueLen--
	}
}

// CloseInterval completes the measurement interval ending at now: the
// measured load becomes served/intervalSeconds, per-object loads are
// attributed proportionally to per-object service, and a new interval
// opens. It returns the start time of the interval just closed, which the
// protocol layer feeds to its load estimator.
func (s *Server) CloseInterval(now time.Duration) (closedStart time.Duration) {
	closedStart = s.intervalStart
	secs := (now - s.intervalStart).Seconds()
	if secs <= 0 {
		return closedStart
	}
	s.measuredLoad = float64(s.served) / secs
	for _, id := range s.loadTouched {
		s.objLoad[id] = 0
	}
	s.loadTouched = s.loadTouched[:0]
	if len(s.servedPerObj) > len(s.objLoad) {
		s.objLoad = growTo(s.objLoad, len(s.servedPerObj))
	}
	for _, id := range s.servedTouched {
		s.objLoad[id] = float64(s.servedPerObj[id]) / secs
		s.servedPerObj[id] = 0
		s.loadTouched = append(s.loadTouched, id)
	}
	s.servedTouched = s.servedTouched[:0]
	s.served = 0
	s.intervalStart = now
	return closedStart
}

// Load returns the measured total load (requests/sec) of the last
// completed interval. It implements protocol.LoadSource.
func (s *Server) Load() float64 { return s.measuredLoad }

// ObjectLoad returns the measured load attributed to id over the last
// completed interval. It implements protocol.LoadSource.
func (s *Server) ObjectLoad(id object.ID) float64 {
	if int(id) >= len(s.objLoad) {
		return 0
	}
	return s.objLoad[id]
}

// QueueDelay returns how long a request arriving at now would wait before
// service begins.
func (s *Server) QueueDelay(now time.Duration) time.Duration {
	if s.busyUntil <= now {
		return 0
	}
	return s.busyUntil - now
}

// QueueLen returns the number of requests admitted but not yet completed.
func (s *Server) QueueLen() int { return s.queueLen }

// MaxQueueLen returns the high-water mark of the queue length.
func (s *Server) MaxQueueLen() int { return s.maxQueueLen }

// TotalServed returns the lifetime number of serviced requests.
func (s *Server) TotalServed() int64 { return s.totalServed }

// ServiceTime returns the fixed per-request service time.
func (s *Server) ServiceTime() time.Duration { return s.serviceTime }
