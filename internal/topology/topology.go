// Package topology models the hosting platform's backbone: a set of nodes
// (each a router co-located with a hosting server, per the paper's system
// model) connected by wide-area links.
//
// The canonical instance, returned by UUNET, is a 53-node reconstruction of
// the 1998 UUNET backbone used as the paper's testbed. The original map
// (paper reference [34]) is no longer available; the reconstruction is built
// from UUNET's published POP cities of that era and preserves the properties
// the evaluation depends on: four regions (Western North America, Eastern
// North America, Europe, Pacific Rim & Australia), hub-and-spoke regional
// structure, and historical transoceanic link placement.
package topology

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a backbone node. IDs are dense, starting at 0, and are
// used as indices throughout the simulator.
type NodeID int

// Region is the geographic region of a node, used by the regional workload.
type Region int

// Regions of the reconstructed backbone. The paper divides nodes into
// exactly these four.
const (
	WesternNA Region = iota + 1
	EasternNA
	Europe
	PacificAustralia
)

// String returns the human-readable region name.
func (r Region) String() string {
	switch r {
	case WesternNA:
		return "Western North America"
	case EasternNA:
		return "Eastern North America"
	case Europe:
		return "Europe"
	case PacificAustralia:
		return "Pacific & Australia"
	default:
		return fmt.Sprintf("Region(%d)", int(r))
	}
}

// Regions lists all regions in canonical order.
func Regions() []Region {
	return []Region{WesternNA, EasternNA, Europe, PacificAustralia}
}

// Node is a backbone node: a router plus a co-located hosting server.
type Node struct {
	ID     NodeID
	Name   string
	Region Region
}

// Topology is an undirected graph of backbone nodes. All links have unit
// hop cost; bandwidth and delay are modeled by package simnet.
type Topology struct {
	nodes []Node
	adj   [][]NodeID // sorted neighbor lists, indexed by NodeID
}

// Errors returned by New.
var (
	ErrNoNodes       = errors.New("topology: no nodes")
	ErrBadEdge       = errors.New("topology: edge references unknown node")
	ErrSelfLoop      = errors.New("topology: self-loop")
	ErrDuplicateEdge = errors.New("topology: duplicate edge")
	ErrDisconnected  = errors.New("topology: graph is not connected")
)

// Edge is an undirected link between two nodes, identified by name.
type Edge struct {
	A, B string
}

// New builds a validated topology from a node list and an edge list.
// Node IDs are assigned in list order. The graph must be connected,
// self-loop-free and duplicate-free.
func New(nodes []Node, edges []Edge) (*Topology, error) {
	if len(nodes) == 0 {
		return nil, ErrNoNodes
	}
	byName := make(map[string]NodeID, len(nodes))
	ns := make([]Node, len(nodes))
	for i, n := range nodes {
		n.ID = NodeID(i)
		if _, dup := byName[n.Name]; dup {
			return nil, fmt.Errorf("topology: duplicate node name %q", n.Name)
		}
		byName[n.Name] = n.ID
		ns[i] = n
	}
	adj := make([][]NodeID, len(ns))
	seen := make(map[[2]NodeID]bool, len(edges))
	for _, e := range edges {
		a, okA := byName[e.A]
		b, okB := byName[e.B]
		if !okA || !okB {
			return nil, fmt.Errorf("%w: %q - %q", ErrBadEdge, e.A, e.B)
		}
		if a == b {
			return nil, fmt.Errorf("%w: %q", ErrSelfLoop, e.A)
		}
		key := [2]NodeID{min(a, b), max(a, b)}
		if seen[key] {
			return nil, fmt.Errorf("%w: %q - %q", ErrDuplicateEdge, e.A, e.B)
		}
		seen[key] = true
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for i := range adj {
		sort.Slice(adj[i], func(x, y int) bool { return adj[i][x] < adj[i][y] })
	}
	t := &Topology{nodes: ns, adj: adj}
	if !t.connected() {
		return nil, ErrDisconnected
	}
	return t, nil
}

// connected reports whether every node is reachable from node 0.
func (t *Topology) connected() bool {
	visited := make([]bool, len(t.nodes))
	queue := []NodeID{0}
	visited[0] = true
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range t.adj[v] {
			if !visited[w] {
				visited[w] = true
				count++
				queue = append(queue, w)
			}
		}
	}
	return count == len(t.nodes)
}

// NumNodes returns the number of backbone nodes.
func (t *Topology) NumNodes() int { return len(t.nodes) }

// Node returns the node with the given ID.
func (t *Topology) Node(id NodeID) Node { return t.nodes[int(id)] }

// Nodes returns a copy of the node list in ID order.
func (t *Topology) Nodes() []Node {
	out := make([]Node, len(t.nodes))
	copy(out, t.nodes)
	return out
}

// Neighbors returns the sorted neighbor list of id. The returned slice is
// shared; callers must not modify it.
func (t *Topology) Neighbors(id NodeID) []NodeID { return t.adj[int(id)] }

// NumEdges returns the number of undirected links.
func (t *Topology) NumEdges() int {
	total := 0
	for _, a := range t.adj {
		total += len(a)
	}
	return total / 2
}

// NodesInRegion returns the IDs of all nodes in region r, in ID order.
func (t *Topology) NodesInRegion(r Region) []NodeID {
	var out []NodeID
	for _, n := range t.nodes {
		if n.Region == r {
			out = append(out, n.ID)
		}
	}
	return out
}

// Lookup returns the ID of the node with the given name.
func (t *Topology) Lookup(name string) (NodeID, bool) {
	for _, n := range t.nodes {
		if n.Name == name {
			return n.ID, true
		}
	}
	return 0, false
}

func min(a, b NodeID) NodeID {
	if a < b {
		return a
	}
	return b
}

func max(a, b NodeID) NodeID {
	if a > b {
		return a
	}
	return b
}
