package topology

import "testing"

func TestTransitStubShape(t *testing.T) {
	topo := TransitStub(4, 4, 15)
	if got, want := topo.NumNodes(), 4*4*16; got != want {
		t.Fatalf("node count %d, want %d", got, want)
	}
	// Regions are assigned round-robin over transit domains and node IDs
	// are dense per domain, so each region's node range is contiguous.
	for _, r := range Regions() {
		ids := topo.NodesInRegion(r)
		if len(ids) != 64 {
			t.Fatalf("region %v has %d nodes, want 64", r, len(ids))
		}
		for i := 1; i < len(ids); i++ {
			if ids[i] != ids[i-1]+1 {
				t.Fatalf("region %v node IDs not contiguous: %v", r, ids)
			}
		}
	}
	// New() rejects disconnected graphs, so construction succeeding is a
	// connectivity proof; spot-check naming.
	if topo.Node(0).Name != "r0.h0" {
		t.Errorf("node 0 named %q", topo.Node(0).Name)
	}
}

func TestTransitStubSmallCounts(t *testing.T) {
	cases := []struct {
		r, h, s, nodes int
	}{
		{2, 1, 1, 4},
		{2, 2, 0, 4},
		{3, 2, 2, 18},
	}
	for _, c := range cases {
		topo := TransitStub(c.r, c.h, c.s)
		if topo.NumNodes() != c.nodes {
			t.Errorf("TransitStub(%d,%d,%d): %d nodes, want %d", c.r, c.h, c.s, topo.NumNodes(), c.nodes)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("TransitStub(0,1,1) did not panic")
		}
	}()
	TransitStub(0, 1, 1)
}
