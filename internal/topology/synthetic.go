package topology

import "strconv"

// The synthetic constructors below build small regular graphs used by unit
// tests, examples and ablation experiments. Nodes are named "n0", "n1", ...
// and assigned regions round-robin so region-dependent code paths stay
// exercised even on synthetic graphs.

func syntheticNodes(n int) []Node {
	regions := Regions()
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{
			Name:   "n" + strconv.Itoa(i),
			Region: regions[i%len(regions)],
		}
	}
	return nodes
}

func mustNew(nodes []Node, edges []Edge) *Topology {
	t, err := New(nodes, edges)
	if err != nil {
		// Synthetic constructors only produce valid inputs for n >= 1;
		// failure indicates a bug in this package.
		panic("topology: invalid synthetic graph: " + err.Error())
	}
	return t
}

// Line returns a path graph n0 - n1 - ... - n(n-1). n must be >= 2.
func Line(n int) *Topology {
	nodes := syntheticNodes(n)
	edges := make([]Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, Edge{nodes[i].Name, nodes[i+1].Name})
	}
	return mustNew(nodes, edges)
}

// Ring returns a cycle over n nodes. n must be >= 3.
func Ring(n int) *Topology {
	nodes := syntheticNodes(n)
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{nodes[i].Name, nodes[(i+1)%n].Name})
	}
	return mustNew(nodes, edges)
}

// Star returns a star with n0 at the center and n-1 leaves. n must be >= 2.
func Star(n int) *Topology {
	nodes := syntheticNodes(n)
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{nodes[0].Name, nodes[i].Name})
	}
	return mustNew(nodes, edges)
}

// TransitStub returns a transit-stub graph in the style of the GT-ITM
// internet models: `regions` transit domains arranged in a ring, each
// containing hubsPerRegion transit hubs in a ring, with stubsPerHub stub
// (edge) nodes hanging off every hub in a star. Node count is
// regions × hubsPerRegion × (1 + stubsPerHub).
//
// The graph gives benchmarks and shard tests a realistic larger-than-UUNET
// backbone with natural shard boundaries: regions are sparsely connected
// (one inter-region link per ring edge), so partitioning by region
// maximizes the minimum cross-shard hop distance. Transit domains take
// geographic regions round-robin from Regions(), matching the regional
// workload's expectations. Hubs are named "rR.hH" and stubs "rR.hH.sS";
// IDs are dense in (region, hub, stub) order, so region node ranges are
// contiguous.
//
// regions and hubsPerRegion must be >= 1 and stubsPerHub >= 0; a
// single-node request (regions=1, hubsPerRegion=1, stubsPerHub=0) is
// rejected by the underlying validator only when disconnected, so the
// minimum useful graph is two nodes.
func TransitStub(regions, hubsPerRegion, stubsPerHub int) *Topology {
	if regions < 1 || hubsPerRegion < 1 || stubsPerHub < 0 {
		panic("topology: TransitStub needs regions >= 1, hubsPerRegion >= 1, stubsPerHub >= 0")
	}
	geo := Regions()
	perRegion := hubsPerRegion * (1 + stubsPerHub)
	nodes := make([]Node, 0, regions*perRegion)
	var edges []Edge
	hubName := func(r, h int) string {
		return "r" + strconv.Itoa(r) + ".h" + strconv.Itoa(h)
	}
	for r := 0; r < regions; r++ {
		region := geo[r%len(geo)]
		for h := 0; h < hubsPerRegion; h++ {
			nodes = append(nodes, Node{Name: hubName(r, h), Region: region})
			for s := 0; s < stubsPerHub; s++ {
				name := hubName(r, h) + ".s" + strconv.Itoa(s)
				nodes = append(nodes, Node{Name: name, Region: region})
				edges = append(edges, Edge{hubName(r, h), name})
			}
		}
		// Intra-region transit ring (a single link for two hubs, none
		// for one).
		switch {
		case hubsPerRegion == 2:
			edges = append(edges, Edge{hubName(r, 0), hubName(r, 1)})
		case hubsPerRegion > 2:
			for h := 0; h < hubsPerRegion; h++ {
				edges = append(edges, Edge{hubName(r, h), hubName(r, (h+1)%hubsPerRegion)})
			}
		}
	}
	// Inter-region transit ring over each region's hub 0.
	switch {
	case regions == 2:
		edges = append(edges, Edge{hubName(0, 0), hubName(1, 0)})
	case regions > 2:
		for r := 0; r < regions; r++ {
			edges = append(edges, Edge{hubName(r, 0), hubName((r+1)%regions, 0)})
		}
	}
	return mustNew(nodes, edges)
}

// TwoClusters returns two fully-meshed clusters of size k bridged by a
// single long link, modelling the paper's America/Europe running example.
// Nodes 0..k-1 form cluster A (WesternNA), nodes k..2k-1 form cluster B
// (Europe). k must be >= 1.
func TwoClusters(k int) *Topology {
	n := 2 * k
	nodes := make([]Node, n)
	for i := 0; i < k; i++ {
		nodes[i] = Node{Name: "a" + strconv.Itoa(i), Region: WesternNA}
	}
	for i := 0; i < k; i++ {
		nodes[k+i] = Node{Name: "b" + strconv.Itoa(i), Region: Europe}
	}
	var edges []Edge
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			edges = append(edges,
				Edge{nodes[i].Name, nodes[j].Name},
				Edge{nodes[k+i].Name, nodes[k+j].Name})
		}
	}
	edges = append(edges, Edge{nodes[0].Name, nodes[k].Name})
	return mustNew(nodes, edges)
}
