package topology

import "strconv"

// The synthetic constructors below build small regular graphs used by unit
// tests, examples and ablation experiments. Nodes are named "n0", "n1", ...
// and assigned regions round-robin so region-dependent code paths stay
// exercised even on synthetic graphs.

func syntheticNodes(n int) []Node {
	regions := Regions()
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{
			Name:   "n" + strconv.Itoa(i),
			Region: regions[i%len(regions)],
		}
	}
	return nodes
}

func mustNew(nodes []Node, edges []Edge) *Topology {
	t, err := New(nodes, edges)
	if err != nil {
		// Synthetic constructors only produce valid inputs for n >= 1;
		// failure indicates a bug in this package.
		panic("topology: invalid synthetic graph: " + err.Error())
	}
	return t
}

// Line returns a path graph n0 - n1 - ... - n(n-1). n must be >= 2.
func Line(n int) *Topology {
	nodes := syntheticNodes(n)
	edges := make([]Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, Edge{nodes[i].Name, nodes[i+1].Name})
	}
	return mustNew(nodes, edges)
}

// Ring returns a cycle over n nodes. n must be >= 3.
func Ring(n int) *Topology {
	nodes := syntheticNodes(n)
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{nodes[i].Name, nodes[(i+1)%n].Name})
	}
	return mustNew(nodes, edges)
}

// Star returns a star with n0 at the center and n-1 leaves. n must be >= 2.
func Star(n int) *Topology {
	nodes := syntheticNodes(n)
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{nodes[0].Name, nodes[i].Name})
	}
	return mustNew(nodes, edges)
}

// TwoClusters returns two fully-meshed clusters of size k bridged by a
// single long link, modelling the paper's America/Europe running example.
// Nodes 0..k-1 form cluster A (WesternNA), nodes k..2k-1 form cluster B
// (Europe). k must be >= 1.
func TwoClusters(k int) *Topology {
	n := 2 * k
	nodes := make([]Node, n)
	for i := 0; i < k; i++ {
		nodes[i] = Node{Name: "a" + strconv.Itoa(i), Region: WesternNA}
	}
	for i := 0; i < k; i++ {
		nodes[k+i] = Node{Name: "b" + strconv.Itoa(i), Region: Europe}
	}
	var edges []Edge
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			edges = append(edges,
				Edge{nodes[i].Name, nodes[j].Name},
				Edge{nodes[k+i].Name, nodes[k+j].Name})
		}
	}
	edges = append(edges, Edge{nodes[0].Name, nodes[k].Name})
	return mustNew(nodes, edges)
}
