package topology

import (
	"errors"
	"testing"
)

func TestUUNETShape(t *testing.T) {
	topo := UUNET()
	if got := topo.NumNodes(); got != 53 {
		t.Fatalf("NumNodes = %d, want 53 (paper testbed size)", got)
	}
	wantRegions := map[Region]int{
		WesternNA:        18,
		EasternNA:        17,
		Europe:           11,
		PacificAustralia: 7,
	}
	total := 0
	for r, want := range wantRegions {
		got := len(topo.NodesInRegion(r))
		if got != want {
			t.Errorf("region %v has %d nodes, want %d", r, got, want)
		}
		total += got
	}
	if total != 53 {
		t.Errorf("regions cover %d nodes, want 53", total)
	}
}

func TestUUNETEveryNodeHasNeighbors(t *testing.T) {
	topo := UUNET()
	for _, n := range topo.Nodes() {
		if len(topo.Neighbors(n.ID)) == 0 {
			t.Errorf("node %s has no links", n.Name)
		}
	}
}

func TestUUNETDeterministic(t *testing.T) {
	a, b := UUNET(), UUNET()
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("two UUNET constructions differ in size")
	}
	for i := 0; i < a.NumNodes(); i++ {
		id := NodeID(i)
		if a.Node(id) != b.Node(id) {
			t.Fatalf("node %d differs between constructions", i)
		}
		na, nb := a.Neighbors(id), b.Neighbors(id)
		if len(na) != len(nb) {
			t.Fatalf("node %d neighbor count differs", i)
		}
		for j := range na {
			if na[j] != nb[j] {
				t.Fatalf("node %d neighbor %d differs", i, j)
			}
		}
	}
}

func TestNeighborsSorted(t *testing.T) {
	topo := UUNET()
	for i := 0; i < topo.NumNodes(); i++ {
		ns := topo.Neighbors(NodeID(i))
		for j := 1; j < len(ns); j++ {
			if ns[j-1] >= ns[j] {
				t.Fatalf("neighbors of node %d not strictly sorted: %v", i, ns)
			}
		}
	}
}

func TestLookup(t *testing.T) {
	topo := UUNET()
	id, ok := topo.Lookup("Tokyo")
	if !ok {
		t.Fatal("Lookup(Tokyo) failed")
	}
	if topo.Node(id).Region != PacificAustralia {
		t.Errorf("Tokyo region = %v, want PacificAustralia", topo.Node(id).Region)
	}
	if _, ok := topo.Lookup("Atlantis"); ok {
		t.Error("Lookup(Atlantis) succeeded, want miss")
	}
}

func TestNewValidation(t *testing.T) {
	n2 := []Node{{Name: "a"}, {Name: "b"}}
	tests := []struct {
		name    string
		nodes   []Node
		edges   []Edge
		wantErr error
	}{
		{"empty", nil, nil, ErrNoNodes},
		{"unknown edge endpoint", n2, []Edge{{"a", "zzz"}}, ErrBadEdge},
		{"self loop", n2, []Edge{{"a", "a"}}, ErrSelfLoop},
		{"duplicate edge", n2, []Edge{{"a", "b"}, {"b", "a"}}, ErrDuplicateEdge},
		{"disconnected", []Node{{Name: "a"}, {Name: "b"}, {Name: "c"}}, []Edge{{"a", "b"}}, ErrDisconnected},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.nodes, tc.edges)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("New() err = %v, want %v", err, tc.wantErr)
			}
		})
	}
	if _, err := New([]Node{{Name: "a"}, {Name: "a"}}, nil); err == nil {
		t.Fatal("duplicate node names accepted")
	}
}

func TestSyntheticGraphs(t *testing.T) {
	tests := []struct {
		name      string
		topo      *Topology
		wantNodes int
		wantEdges int
	}{
		{"line", Line(5), 5, 4},
		{"ring", Ring(6), 6, 6},
		{"star", Star(7), 7, 6},
		{"two clusters", TwoClusters(3), 6, 7},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.topo.NumNodes(); got != tc.wantNodes {
				t.Errorf("NumNodes = %d, want %d", got, tc.wantNodes)
			}
			if got := tc.topo.NumEdges(); got != tc.wantEdges {
				t.Errorf("NumEdges = %d, want %d", got, tc.wantEdges)
			}
		})
	}
}

func TestStarCenterDegree(t *testing.T) {
	s := Star(10)
	if got := len(s.Neighbors(0)); got != 9 {
		t.Fatalf("star center degree = %d, want 9", got)
	}
	for i := 1; i < 10; i++ {
		if got := len(s.Neighbors(NodeID(i))); got != 1 {
			t.Fatalf("star leaf %d degree = %d, want 1", i, got)
		}
	}
}

func TestTwoClustersBridge(t *testing.T) {
	tc := TwoClusters(4)
	// Node 0 should have 4 neighbors (3 in-cluster + bridge), node 4 too.
	if got := len(tc.Neighbors(0)); got != 4 {
		t.Fatalf("bridge endpoint a0 degree = %d, want 4", got)
	}
	if got := len(tc.Neighbors(4)); got != 4 {
		t.Fatalf("bridge endpoint b0 degree = %d, want 4", got)
	}
	for _, n := range tc.Nodes()[:4] {
		if n.Region != WesternNA {
			t.Errorf("cluster A node %s region = %v, want WesternNA", n.Name, n.Region)
		}
	}
	for _, n := range tc.Nodes()[4:] {
		if n.Region != Europe {
			t.Errorf("cluster B node %s region = %v, want Europe", n.Name, n.Region)
		}
	}
}

func TestNodesReturnsCopy(t *testing.T) {
	topo := Line(3)
	nodes := topo.Nodes()
	nodes[0].Name = "mutated"
	if topo.Node(0).Name == "mutated" {
		t.Fatal("Nodes() exposed internal slice")
	}
}

func TestRegionString(t *testing.T) {
	for _, r := range Regions() {
		if r.String() == "" {
			t.Errorf("region %d has empty name", r)
		}
	}
	if got := Region(99).String(); got != "Region(99)" {
		t.Errorf("unknown region String() = %q", got)
	}
}
