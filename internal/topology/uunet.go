package topology

// uunetNodes is the reconstructed 53-node UUNET backbone node list:
// 18 Western North America, 17 Eastern North America, 11 Europe,
// 7 Pacific Rim & Australia. See the package comment and DESIGN.md §2 for
// the reconstruction rationale.
var uunetNodes = []Node{
	// Western North America (18).
	{Name: "Seattle", Region: WesternNA},
	{Name: "Portland", Region: WesternNA},
	{Name: "Vancouver", Region: WesternNA},
	{Name: "Calgary", Region: WesternNA},
	{Name: "Sacramento", Region: WesternNA},
	{Name: "SanFrancisco", Region: WesternNA},
	{Name: "SanJose", Region: WesternNA},
	{Name: "LosAngeles", Region: WesternNA},
	{Name: "SanDiego", Region: WesternNA},
	{Name: "LasVegas", Region: WesternNA},
	{Name: "Phoenix", Region: WesternNA},
	{Name: "SaltLakeCity", Region: WesternNA},
	{Name: "Denver", Region: WesternNA},
	{Name: "Albuquerque", Region: WesternNA},
	{Name: "Dallas", Region: WesternNA},
	{Name: "Houston", Region: WesternNA},
	{Name: "Austin", Region: WesternNA},
	{Name: "KansasCity", Region: WesternNA},
	// Eastern North America (17).
	{Name: "Minneapolis", Region: EasternNA},
	{Name: "Chicago", Region: EasternNA},
	{Name: "StLouis", Region: EasternNA},
	{Name: "Detroit", Region: EasternNA},
	{Name: "Cleveland", Region: EasternNA},
	{Name: "Pittsburgh", Region: EasternNA},
	{Name: "Toronto", Region: EasternNA},
	{Name: "Montreal", Region: EasternNA},
	{Name: "Boston", Region: EasternNA},
	{Name: "NewYork", Region: EasternNA},
	{Name: "Philadelphia", Region: EasternNA},
	{Name: "WashingtonDC", Region: EasternNA},
	{Name: "Raleigh", Region: EasternNA},
	{Name: "Nashville", Region: EasternNA},
	{Name: "Atlanta", Region: EasternNA},
	{Name: "Orlando", Region: EasternNA},
	{Name: "Miami", Region: EasternNA},
	// Europe (11).
	{Name: "London", Region: Europe},
	{Name: "Dublin", Region: Europe},
	{Name: "Amsterdam", Region: Europe},
	{Name: "Brussels", Region: Europe},
	{Name: "Paris", Region: Europe},
	{Name: "Frankfurt", Region: Europe},
	{Name: "Zurich", Region: Europe},
	{Name: "Milan", Region: Europe},
	{Name: "Madrid", Region: Europe},
	{Name: "Copenhagen", Region: Europe},
	{Name: "Stockholm", Region: Europe},
	// Pacific Rim & Australia (7).
	{Name: "Tokyo", Region: PacificAustralia},
	{Name: "Osaka", Region: PacificAustralia},
	{Name: "Seoul", Region: PacificAustralia},
	{Name: "HongKong", Region: PacificAustralia},
	{Name: "Singapore", Region: PacificAustralia},
	{Name: "Sydney", Region: PacificAustralia},
	{Name: "Melbourne", Region: PacificAustralia},
}

// uunetEdges is the reconstructed link list. Late-90s backbones were
// sparse partial meshes: long regional chains threading through
// intermediate POPs, a few ring closures for redundancy, and a handful of
// transoceanic landings. The chain structure matters for the protocol:
// almost every node carries transit traffic, so almost every node appears
// on preference paths and is a legal geo-replication target (a
// hub-and-spoke mesh would leave spoke nodes invisible to the placement
// heuristics). All links have unit hop cost.
var uunetEdges = []Edge{
	// Western North America: coastal chain + inland chain + closures.
	{"Vancouver", "Seattle"},
	{"Calgary", "Vancouver"},
	{"Calgary", "Denver"},
	{"Seattle", "Portland"},
	{"Portland", "Sacramento"},
	{"Sacramento", "SanFrancisco"},
	{"Sacramento", "SaltLakeCity"},
	{"SanFrancisco", "SanJose"},
	{"SanJose", "LosAngeles"},
	{"LosAngeles", "SanDiego"},
	{"LosAngeles", "LasVegas"},
	{"LasVegas", "SaltLakeCity"},
	{"SaltLakeCity", "Denver"},
	{"SanDiego", "Phoenix"},
	{"Phoenix", "Albuquerque"},
	{"Albuquerque", "Denver"},
	{"Albuquerque", "Dallas"},
	{"Denver", "KansasCity"},
	{"Dallas", "Austin"},
	{"Austin", "Houston"},
	{"Dallas", "KansasCity"},
	// Southern cross-country chain.
	{"Houston", "Atlanta"},
	// Eastern North America: midwest and east-coast chains.
	{"KansasCity", "StLouis"},
	{"KansasCity", "Minneapolis"},
	{"Minneapolis", "Chicago"},
	{"StLouis", "Chicago"},
	{"StLouis", "Nashville"},
	{"Nashville", "Atlanta"},
	{"Chicago", "Detroit"},
	{"Detroit", "Cleveland"},
	{"Detroit", "Toronto"},
	{"Cleveland", "Pittsburgh"},
	{"Pittsburgh", "WashingtonDC"},
	{"Pittsburgh", "Philadelphia"},
	{"Toronto", "Montreal"},
	{"Montreal", "Boston"},
	{"Boston", "NewYork"},
	{"NewYork", "Philadelphia"},
	{"Philadelphia", "WashingtonDC"},
	{"WashingtonDC", "Raleigh"},
	{"Raleigh", "Atlanta"},
	{"Atlanta", "Orlando"},
	{"Orlando", "Miami"},
	// Transatlantic landings (New York).
	{"NewYork", "London"},
	{"NewYork", "Amsterdam"},
	// Europe: core ring (London-Amsterdam-Frankfurt-Zurich-Milan-Paris)
	// with Benelux chain and northern/southern spurs.
	{"Dublin", "London"},
	{"London", "Amsterdam"},
	{"Amsterdam", "Frankfurt"},
	{"Frankfurt", "Zurich"},
	{"Zurich", "Milan"},
	{"Milan", "Paris"},
	{"Paris", "London"},
	{"Paris", "Madrid"},
	{"Amsterdam", "Brussels"},
	{"Brussels", "Paris"},
	{"Amsterdam", "Copenhagen"},
	{"Copenhagen", "Stockholm"},
	// Transpacific landings (US West).
	{"Seattle", "Tokyo"},
	{"SanFrancisco", "Tokyo"},
	{"LosAngeles", "Sydney"},
	// Pacific Rim & Australia: Japan/Korea triangle + southern chain.
	{"Tokyo", "Osaka"},
	{"Osaka", "Seoul"},
	{"Seoul", "Tokyo"},
	{"Tokyo", "HongKong"},
	{"HongKong", "Singapore"},
	{"Singapore", "Sydney"},
	{"Sydney", "Melbourne"},
}

// UUNET returns the reconstructed 53-node UUNET backbone used by all paper
// experiments. The construction is deterministic; the returned topology is
// freshly allocated on each call.
func UUNET() *Topology {
	t, err := New(uunetNodes, uunetEdges)
	if err != nil {
		// The node and edge lists are compile-time constants validated by
		// tests; a construction failure is unreachable in a correct build.
		panic("topology: invalid built-in UUNET backbone: " + err.Error())
	}
	return t
}
