package experiments

import (
	"context"
	"testing"
	"time"

	"radar/internal/object"
	"radar/internal/sim"
	"radar/internal/workload"
)

func tinyConfig(t *testing.T, seed int64) sim.Config {
	t.Helper()
	u := object.Universe{Count: 300, SizeBytes: 12 << 10}
	gen, err := workload.NewUniform(u)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(gen, seed)
	cfg.Universe = u
	cfg.Duration = time.Minute
	return cfg
}

func TestSweepRunsAllPointsInOrder(t *testing.T) {
	points := []SweepPoint{
		{Label: "a", Config: tinyConfig(t, 1)},
		{Label: "b", Config: tinyConfig(t, 2)},
		{Label: "c", Config: tinyConfig(t, 3)},
	}
	results := Sweep(points, 2)
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for i, r := range results {
		if r.Label != points[i].Label {
			t.Errorf("result %d label = %q, want %q (order preserved)", i, r.Label, points[i].Label)
		}
		if r.Err != nil {
			t.Errorf("point %q failed: %v", r.Label, r.Err)
		}
		if r.Results == nil || r.Results.TotalServed == 0 {
			t.Errorf("point %q produced no results", r.Label)
		}
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	bad := tinyConfig(t, 1)
	bad.NodeRequestRPS = -1
	results := Sweep([]SweepPoint{
		{Label: "good", Config: tinyConfig(t, 1)},
		{Label: "bad", Config: bad},
	}, 1)
	if results[0].Err != nil {
		t.Errorf("good point failed: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Error("bad point succeeded")
	}
}

func TestSweepDefaultParallelism(t *testing.T) {
	results := Sweep([]SweepPoint{{Label: "only", Config: tinyConfig(t, 5)}}, 0)
	if len(results) != 1 || results[0].Err != nil {
		t.Fatalf("results = %+v", results)
	}
}

func TestSweepMatchesSequentialRun(t *testing.T) {
	cfg := tinyConfig(t, 9)
	seq, err := runOne(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	par := Sweep([]SweepPoint{{Label: "x", Config: tinyConfig(t, 9)}}, 4)
	if par[0].Err != nil {
		t.Fatal(par[0].Err)
	}
	if par[0].Results.TotalServed != seq.TotalServed ||
		par[0].Results.Counters != seq.Counters {
		t.Error("sweep run diverged from sequential run with the same seed")
	}
}
