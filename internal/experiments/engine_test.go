package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// engineJobs builds n tiny, independent jobs with distinct seeds.
func engineJobs(t *testing.T, n int) []Job {
	t.Helper()
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Label: fmt.Sprintf("job-%d", i), Config: tinyConfig(t, int64(i+1))}
	}
	return jobs
}

func TestEnginePreservesInputOrder(t *testing.T) {
	jobs := engineJobs(t, 4)
	results, err := Engine{Parallelism: 3}.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}
	for i, r := range results {
		if r.Label != jobs[i].Label {
			t.Errorf("result %d label = %q, want %q (input order)", i, r.Label, jobs[i].Label)
		}
		if r.Err != nil {
			t.Errorf("job %q failed: %v", r.Label, r.Err)
		}
		if r.Results == nil || r.Results.TotalServed == 0 {
			t.Errorf("job %q produced no results", r.Label)
		}
		if r.Wall <= 0 {
			t.Errorf("job %q has no wall-clock recorded", r.Label)
		}
	}
}

// TestEngineCollectAllErrorPropagation includes a point whose config
// fails validation: collect-all mode must still run every other point
// and report the failure in place.
func TestEngineCollectAllErrorPropagation(t *testing.T) {
	jobs := engineJobs(t, 3)
	jobs[1].Config.NodeRequestRPS = -1 // fails sim.Config.Validate
	results, err := Engine{Parallelism: 2}.Run(context.Background(), jobs)
	if err != nil {
		t.Fatalf("collect-all Run returned %v, want nil", err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("good jobs failed: %v, %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Fatal("invalid config succeeded")
	}
	if !strings.Contains(results[1].Err.Error(), jobs[1].Label) {
		t.Errorf("error %q does not name the failing job %q", results[1].Err, jobs[1].Label)
	}
	if err := FirstError(results); !errors.Is(err, results[1].Err) {
		t.Errorf("FirstError = %v, want the bad job's error %v", err, results[1].Err)
	}
}

// TestEngineFailFast: the first failing job's error is returned and the
// good results that did run are still available.
func TestEngineFailFast(t *testing.T) {
	jobs := engineJobs(t, 3)
	jobs[0].Config.NodeRequestRPS = -1
	results, err := Engine{Parallelism: 1, FailFast: true}.Run(context.Background(), jobs)
	if err == nil {
		t.Fatal("fail-fast Run returned nil error")
	}
	if !strings.Contains(err.Error(), jobs[0].Label) {
		t.Errorf("error %q does not name the failing job %q", err, jobs[0].Label)
	}
	if results[0].Err == nil {
		t.Error("failing job has no recorded error")
	}
	// With parallelism 1 and the failure first, the remaining jobs must
	// have been abandoned, not run.
	for _, r := range results[1:] {
		if r.Err == nil || !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %q = %+v, want abandoned with context.Canceled", r.Label, r.Err)
		}
		if r.Results != nil {
			t.Errorf("abandoned job %q carries results", r.Label)
		}
	}
}

func TestEngineCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := engineJobs(t, 2)
	results, err := Engine{}.Run(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run with canceled ctx returned %v, want context.Canceled", err)
	}
	for _, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %q = %v, want context.Canceled", r.Label, r.Err)
		}
	}
}

func TestEngineEmptyBatch(t *testing.T) {
	results, err := Engine{}.Run(context.Background(), nil)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty batch: results=%v err=%v", results, err)
	}
}

// TestEngineRaceSmoke drives a wide batch at maximum parallelism; under
// `go test -race` this is the smoke test that independent simulations
// share no mutable state. It always runs (tiny scale); the full quick
// suite gets the same treatment in TestRunSuiteQuick when -short is off.
func TestEngineRaceSmoke(t *testing.T) {
	n := 2 * runtime.GOMAXPROCS(0)
	if n < 4 {
		n = 4
	}
	jobs := engineJobs(t, n)
	results, err := Engine{Parallelism: n}.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("job %q failed: %v", r.Label, r.Err)
		}
	}
}

// TestEngineFailFastStopsLongTail: cancellation must abandon queued work
// rather than run the whole batch. With parallelism 1, everything after
// the failure is skipped, so the batch finishes far faster than its
// serial cost would be.
func TestEngineFailFastStopsLongTail(t *testing.T) {
	const n = 16
	jobs := make([]Job, n)
	for i := range jobs {
		cfg := tinyConfig(t, int64(i+1))
		cfg.Duration = 5 * time.Minute
		jobs[i] = Job{Label: fmt.Sprintf("tail-%d", i), Config: cfg}
	}
	jobs[0].Config.NodeRequestRPS = -1
	results, err := Engine{Parallelism: 1, FailFast: true}.Run(context.Background(), jobs)
	if err == nil {
		t.Fatal("want error")
	}
	ran := 0
	for _, r := range results {
		if r.Results != nil {
			ran++
		}
	}
	if ran != 0 {
		t.Errorf("%d jobs ran after the first failure with parallelism 1, want 0", ran)
	}
}
