package experiments

import (
	"runtime"
	"sync"

	"radar/internal/sim"
)

// SweepPoint is one configuration in a parameter sweep.
type SweepPoint struct {
	// Label identifies the point in reports.
	Label string
	// Config is the full simulation configuration to run.
	Config sim.Config
}

// SweepResult pairs a sweep point with its outcome.
type SweepResult struct {
	Label   string
	Results *sim.Results
	Err     error
}

// Sweep runs every point, up to parallelism simulations concurrently
// (each simulation is single-threaded and independent; parallelism <= 0
// selects GOMAXPROCS). Results are returned in input order.
func Sweep(points []SweepPoint, parallelism int) []SweepResult {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(points) {
		parallelism = len(points)
	}
	out := make([]SweepResult, len(points))
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i, p := range points {
		i, p := i, p
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := runOne(p.Config)
			out[i] = SweepResult{Label: p.Label, Results: res, Err: err}
		}()
	}
	wg.Wait()
	return out
}
