package experiments

import (
	"context"
	"time"

	"radar/internal/sim"
)

// SweepPoint is one configuration in a parameter sweep.
type SweepPoint struct {
	// Label identifies the point in reports.
	Label string
	// Config is the full simulation configuration to run.
	Config sim.Config
}

// SweepResult pairs a sweep point with its outcome.
type SweepResult struct {
	Label   string
	Results *sim.Results
	Err     error
	// Wall is the point's wall-clock execution time.
	Wall time.Duration
}

// Sweep runs every point, up to parallelism simulations concurrently
// (each simulation is single-threaded and independent; parallelism <= 0
// selects GOMAXPROCS). Results are returned in input order. Sweep is the
// collect-all facade over the parallel engine: every point runs even
// when some fail, and per-point errors are reported in the results.
func Sweep(points []SweepPoint, parallelism int) []SweepResult {
	jobs := make([]Job, len(points))
	for i, p := range points {
		jobs[i] = Job{Label: p.Label, Config: p.Config}
	}
	results, _ := Engine{Parallelism: parallelism}.Run(context.Background(), jobs)
	out := make([]SweepResult, len(results))
	for i, r := range results {
		out[i] = SweepResult{Label: r.Label, Results: r.Results, Err: r.Err, Wall: r.Wall}
	}
	return out
}
