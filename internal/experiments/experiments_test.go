package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"radar/internal/topology"
)

func TestGeneratorsCoverPaperWorkloads(t *testing.T) {
	opts := Options{Seed: 1, Quick: true}
	gens, err := Generators(opts.universe(), topology.UUNET(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range WorkloadNames {
		g, ok := gens[name]
		if !ok {
			t.Fatalf("missing generator %q", name)
		}
		if g.Name() != name {
			t.Errorf("generator %q reports name %q", name, g.Name())
		}
	}
}

func TestTrackedHotSiteIsHot(t *testing.T) {
	opts := Options{Seed: 1, Quick: true}
	u := opts.universe()
	topo := topology.UUNET()
	n := trackedHotSite(u, topo, 1)
	if int(n) < 0 || int(n) >= topo.NumNodes() {
		t.Fatalf("tracked host %d out of range", n)
	}
}

func TestOptionsScaling(t *testing.T) {
	quick := Options{Quick: true}
	full := Options{}
	if quick.universe().Count >= full.universe().Count {
		t.Error("quick universe not smaller")
	}
	if quick.dynamicDuration("zipf") >= full.dynamicDuration("zipf") {
		t.Error("quick duration not shorter")
	}
	if full.dynamicDuration("hot-sites") <= full.dynamicDuration("zipf") {
		t.Error("hot-sites must run longer (backlog drain)")
	}
}

// TestRunSuiteQuick executes the full paper suite at reduced scale and
// checks the qualitative claims of §6.2 hold end to end.
func TestRunSuiteQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick suite takes ~1 minute")
	}
	opts := Options{Seed: 3, Quick: true, over: raceOver()}
	suite, err := RunSuite(opts, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range WorkloadNames {
		r := suite.Runs[name]
		if r == nil {
			t.Fatalf("missing run %q", name)
		}
		if opts.over != nil {
			continue // race runs cover concurrency, not settled physics
		}
		if red := r.BandwidthReduction(); red < 20 {
			t.Errorf("%s: bandwidth reduction %.1f%%, want >= 20%% (paper: 60-90%%)", name, red)
		}
		// Hot-sites starts saturated; at quick scale its backlog is still
		// draining at the end of the run, so judge it by collapse from
		// its own initial level rather than against the static baseline.
		if name == "hot-sites" {
			ls := r.Dynamic.LatencyStats
			if ls.Equilibrium > ls.Initial/2 {
				t.Errorf("hot-sites: latency eq %.3g not far below initial %.3g", ls.Equilibrium, ls.Initial)
			}
		} else if red := r.LatencyReduction(); red <= 0 {
			t.Errorf("%s: latency did not improve (%.1f%%)", name, red)
		}
		if r.Dynamic.OverheadPercent > 2.5 {
			t.Errorf("%s: overhead %.2f%% above the paper's 2.5%% ceiling", name, r.Dynamic.OverheadPercent)
		}
		if r.Dynamic.AvgReplicas < 1.05 || r.Dynamic.AvgReplicas > 8 {
			t.Errorf("%s: avg replicas %.2f outside plausible range", name, r.Dynamic.AvgReplicas)
		}
	}
	if opts.over == nil {
		// Regional must be the biggest bandwidth winner (locality).
		regional := suite.Runs["regional"].BandwidthReduction()
		for _, name := range []string{"zipf", "hot-pages"} {
			if suite.Runs[name].BandwidthReduction() >= regional {
				t.Errorf("regional reduction %.1f%% should exceed %s's %.1f%%",
					regional, name, suite.Runs[name].BandwidthReduction())
			}
		}
		// Hot-sites and hot-pages share an access pattern, so their dynamic
		// equilibria converge to the same level (paper §6.2). Quick-scale
		// runs end before both fully settle; require same order of magnitude
		// here and verify the tight match in the full-scale experiments.
		hs := suite.Runs["hot-sites"].Dynamic.BandwidthStats.Equilibrium
		hp := suite.Runs["hot-pages"].Dynamic.BandwidthStats.Equilibrium
		if ratio := hs / hp; ratio < 0.3 || ratio > 3 {
			t.Errorf("hot-sites eq %.3g vs hot-pages eq %.3g: want same order", hs, hp)
		}
	}

	var b strings.Builder
	if err := suite.RenderAll(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Figure 6", "Figure 7", "Figure 8a", "Figure 8b", "Table 2", "regional", "hot-sites"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered artifacts missing %q", want)
		}
	}

	dir := t.TempDir()
	if err := suite.WriteCSVs(dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"fig6_bandwidth.csv", "fig6_latency.csv", "fig7_overhead.csv", "fig8a_maxload.csv", "fig8b_hostload.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Errorf("missing CSV %s: %v", f, err)
			continue
		}
		minBytes := 100
		if opts.over != nil {
			minBytes = 20 // tiny race-mode runs produce only a few buckets
		}
		if len(data) < minBytes {
			t.Errorf("CSV %s suspiciously small (%d bytes)", f, len(data))
		}
	}
}

func TestAblationFullReplicationQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	tbl, err := AblationFullReplication(Options{Seed: 3, Quick: true, over: raceOver()})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (zipf and regional, full and dynamic)", len(tbl.Rows))
	}
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "replicate everywhere") {
		t.Errorf("table missing baseline row:\n%s", b.String())
	}
}

func TestMultiSeedAggregation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed integration run")
	}
	// Two seeds at tiny scale: verify aggregation plumbing, not physics.
	base := Options{Quick: true, over: &scaleOverride{Objects: 300, Dynamic: 2 * time.Minute, Static: time.Minute}}
	ms, err := RunMultiSeed(base, []int64{1, 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Suites) != 2 {
		t.Fatalf("suites = %d, want 2", len(ms.Suites))
	}
	tbl := ms.Table()
	if len(tbl.Rows) != len(WorkloadNames) {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), len(WorkloadNames))
	}
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "±") {
		t.Errorf("aggregated table missing ± intervals:\n%s", b.String())
	}
}

func TestRunMultiSeedValidation(t *testing.T) {
	if _, err := RunMultiSeed(Options{Quick: true}, nil, false); err == nil {
		t.Fatal("empty seed list accepted")
	}
}

func TestAblationOracleQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	tbl, err := AblationOracle(Options{Seed: 3, Quick: true, over: raceOver()})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	// The oracle sees the true demand; it must not lose on bandwidth by
	// a wide margin (allow slack for protocol runs that out-replicate the
	// oracle budget mid-run at quick scale).
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "oracle") {
		t.Errorf("missing oracle rows:\n%s", b.String())
	}
}
