package experiments

import (
	"fmt"

	"radar/internal/oracle"
	"radar/internal/report"
	"radar/internal/scenario"
	"radar/internal/sim"
	"radar/internal/substrate"
)

// CorpusRun is one scenario's three-way comparison: the legacy policy
// (availability weight forced to zero), the scenario's availability-aware
// composition, and the offline greedy oracle evaluated statically under
// the same demand, faults and horizon.
type CorpusRun struct {
	Scenario scenario.Scenario
	Legacy   *sim.Results
	Avail    *sim.Results
	Oracle   *sim.Results
	// LegacyM/AvailM/OracleM are the acceptance metrics of each variant.
	LegacyM, AvailM, OracleM scenario.Metrics
}

// CorpusReport bundles the corpus comparison runs with their rendered
// table.
type CorpusReport struct {
	Runs  []CorpusRun
	Table *report.Table
}

// RunCorpus executes the scenario corpus (or the given subset) as a
// three-variant comparison per scenario on the parallel engine. Stage 1
// fans out the legacy and availability-aware runs; stage 2 evaluates the
// greedy oracle, whose replica budget is the legacy run's outcome (the
// AblationOracle discipline). Results are bit-identical at every
// parallelism level.
func RunCorpus(opts Options, scens []scenario.Scenario) (*CorpusReport, error) {
	if len(scens) == 0 {
		scens = scenario.Corpus()
	}
	sub := substrate.UUNET()

	stage1 := make([]Job, 0, 2*len(scens))
	for _, sc := range scens {
		cfg, err := sc.Config()
		if err != nil {
			return nil, err
		}
		legacy := cfg
		legacy.Protocol.AvailabilityWeight = 0
		stage1 = append(stage1, Job{Label: sc.Name + "/legacy", Config: legacy})
		stage1 = append(stage1, Job{Label: sc.Name + "/avail", Config: cfg})
	}
	res1, err := runAblationJobs(opts, stage1)
	if err != nil {
		return nil, err
	}

	// Stage 2: the oracle sees the exact initial demand matrix and places
	// greedily with the legacy run's replica budget; its placement is then
	// frozen (static run) under the identical composition — including the
	// fault schedule, so outage scenarios measure what an offline-optimal
	// but unrepaired placement costs in availability.
	stage2 := make([]Job, 0, len(scens))
	for i, sc := range scens {
		legacyRes := res1[2*i].Results
		cfg := stage1[2*i].Config
		demand, err := oracle.EstimateDemand(cfg.Workload, sub.Topo, cfg.Universe, cfg.NodeRequestRPS, 20000, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("corpus %s: %w", sc.Name, err)
		}
		extra := int(float64(cfg.Universe.Count) * (legacyRes.AvgReplicas - 1))
		if extra < 0 {
			extra = 0
		}
		placement, err := oracle.Greedy(sub.Routes, demand, extra)
		if err != nil {
			return nil, fmt.Errorf("corpus %s: %w", sc.Name, err)
		}
		ocfg := cfg
		ocfg.DynamicPlacement = false
		ocfg.InitialPlacement = placement
		stage2 = append(stage2, Job{Label: sc.Name + "/oracle", Config: ocfg})
	}
	res2, err := runAblationJobs(opts, stage2)
	if err != nil {
		return nil, err
	}

	rep := &CorpusReport{Table: &report.Table{
		Title: "Scenario corpus: legacy policy vs availability-aware placement vs greedy oracle",
		Headers: []string{"scenario", "variant", "avail %", "failed", "outage obj·s",
			"<floor obj·s", "repairs", "bw eq (B·hops/s)", "latency eq (s)", "replicas"},
	}}
	for i, sc := range scens {
		run := CorpusRun{
			Scenario: sc,
			Legacy:   res1[2*i].Results,
			Avail:    res1[2*i+1].Results,
			Oracle:   res2[i].Results,
		}
		run.LegacyM = scenario.MetricsFrom(run.Legacy)
		run.AvailM = scenario.MetricsFrom(run.Avail)
		run.OracleM = scenario.MetricsFrom(run.Oracle)
		rep.Runs = append(rep.Runs, run)
		for _, v := range []struct {
			name string
			m    scenario.Metrics
		}{
			{"legacy", run.LegacyM},
			{"avail-aware", run.AvailM},
			{"oracle (static)", run.OracleM},
		} {
			rep.Table.AddRow(sc.Name, v.name,
				report.F(100*v.m.Availability, 3),
				fmt.Sprint(v.m.FailedRequests),
				report.F(v.m.UnavailObjSecs, 0),
				report.F(v.m.BelowFloorObjSecs, 0),
				fmt.Sprint(v.m.RepairReplications),
				report.F(v.m.BandwidthEq, 0),
				report.F(v.m.LatencyEq, 3),
				report.F(v.m.AvgReplicas, 2))
		}
	}
	return rep, nil
}
