package experiments

import (
	"context"
	"fmt"

	"radar/internal/protocol"
	"radar/internal/report"
	"radar/internal/sim"
	"radar/internal/substrate"
)

// Each ablation builds its sweep points up front, fans them out on the
// parallel engine (fail-fast), and assembles its table from the ordered
// results, so rows always appear in point order regardless of which run
// finishes first.

// runAblationJobs executes an ablation's points on the options' engine.
func runAblationJobs(opts Options, jobs []Job) ([]JobResult, error) {
	return opts.engine().Run(context.Background(), jobs)
}

// AblationDistribution compares the paper's request distribution algorithm
// against the §3 strawmen on the hot-sites workload, where both failure
// modes are visible: round-robin wastes proximity (high bandwidth), and
// closest-replica cannot relieve a host swamped by requests from its own
// vicinity — "no matter how many additional replicas the server creates,
// all requests will be sent to it anyway" (§3) — so its hot spots and
// latency persist.
func AblationDistribution(opts Options) (*report.Table, error) {
	topo := substrate.UUNET().Topo
	u := opts.universe()
	gens, err := Generators(u, topo, opts.Seed)
	if err != nil {
		return nil, err
	}
	policies := []protocol.Policy{protocol.PolicyPaper, protocol.PolicyRoundRobin, protocol.PolicyClosest}
	jobs := make([]Job, 0, len(policies))
	for _, pol := range policies {
		cfg := baseConfig(gens["hot-sites"], opts, false)
		cfg.Duration = opts.dynamicDuration("hot-sites")
		cfg.Policy = pol
		jobs = append(jobs, Job{Label: "policy/" + pol.String(), Config: cfg})
	}
	results, err := runAblationJobs(opts, jobs)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Ablation A1 (§3): request distribution policies on hot-sites",
		Headers: []string{"policy", "bw equilibrium (B·hops/s)", "latency eq (s)", "max load settled", "timeouts", "avg replicas"},
	}
	for i, pol := range policies {
		res := results[i].Results
		t.AddRow(pol.String(),
			report.F(res.BandwidthStats.Equilibrium, 0),
			report.F(res.LatencyStats.Equilibrium, 3),
			report.F(res.MaxLoadSettled, 1),
			fmt.Sprint(res.TimedOutRequests),
			report.F(res.AvgReplicas, 2))
	}
	return t, nil
}

// AblationFullReplication probes the §4 claim that needless replicas are
// harmful. The harm is demand-dependent: under symmetric demand (zipf,
// requested equally from everywhere) a replica on every node lets every
// request stay local, so full replication wins bandwidth and only wastes
// storage (53x the replicas). Under asymmetric demand (regional) the
// load-oblivious distributor sees 40+ nearly idle remote replicas of each
// regional object as least-requested and ships a steady stream of requests
// across the world — the §4 spillover harm — so full replication loses to
// the protocol's selective placement despite infinite storage.
func AblationFullReplication(opts Options) (*report.Table, error) {
	topo := substrate.UUNET().Topo
	u := opts.universe()
	gens, err := Generators(u, topo, opts.Seed)
	if err != nil {
		return nil, err
	}
	names := []string{"zipf", "regional"}
	var jobs []Job
	for _, name := range names {
		full := baseConfig(gens[name], opts, false)
		full.Duration = opts.staticDuration()
		full.DynamicPlacement = false
		full.ReplicateEverywhere = true
		jobs = append(jobs, Job{Label: "full/" + name, Config: full})

		dyn := baseConfig(gens[name], opts, false)
		dyn.Duration = opts.dynamicDuration(name)
		jobs = append(jobs, Job{Label: "dynamic/" + name, Config: dyn})
	}
	results, err := runAblationJobs(opts, jobs)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Ablation A2 (§4): replicate-everywhere vs selective dynamic placement",
		Headers: []string{"workload", "placement", "bw equilibrium (B·hops/s)", "latency eq (s)", "avg replicas"},
	}
	for i, name := range names {
		fullRes, dynRes := results[2*i].Results, results[2*i+1].Results
		t.AddRow(name, "replicate everywhere",
			report.F(fullRes.BandwidthStats.Equilibrium, 0),
			report.F(fullRes.LatencyStats.Equilibrium, 3),
			report.F(fullRes.AvgReplicas, 2))
		t.AddRow(name, "dynamic (paper)",
			report.F(dynRes.BandwidthStats.Equilibrium, 0),
			report.F(dynRes.LatencyStats.Equilibrium, 3),
			report.F(dynRes.AvgReplicas, 2))
	}
	return t, nil
}

// AblationConstant sweeps the request distribution constant (§6.1 names it
// a tunable; the paper fixes 2).
func AblationConstant(opts Options) (*report.Table, error) {
	topo := substrate.UUNET().Topo
	u := opts.universe()
	gens, err := Generators(u, topo, opts.Seed)
	if err != nil {
		return nil, err
	}
	consts := []float64{1.5, 2, 3, 4}
	jobs := make([]Job, 0, len(consts))
	for _, c := range consts {
		cfg := baseConfig(gens["hot-pages"], opts, false)
		cfg.Duration = opts.dynamicDuration("hot-pages")
		cfg.Protocol.DistConstant = c
		jobs = append(jobs, Job{Label: fmt.Sprintf("constant/%v", c), Config: cfg})
	}
	results, err := runAblationJobs(opts, jobs)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Ablation A3 (§6.1): distribution constant sweep on hot-pages",
		Headers: []string{"constant", "bw equilibrium (B·hops/s)", "latency eq (s)", "max load settled", "avg replicas"},
	}
	for i, c := range consts {
		res := results[i].Results
		t.AddRow(report.F(c, 1),
			report.F(res.BandwidthStats.Equilibrium, 0),
			report.F(res.LatencyStats.Equilibrium, 3),
			report.F(res.MaxLoadSettled, 1),
			report.F(res.AvgReplicas, 2))
	}
	return t, nil
}

// AblationThresholds sweeps the deletion threshold u and the m/u ratio
// (§6.1 discusses both tradeoffs; the theory requires m > 4u).
func AblationThresholds(opts Options) (*report.Table, error) {
	topo := substrate.UUNET().Topo
	u := opts.universe()
	gens, err := Generators(u, topo, opts.Seed)
	if err != nil {
		return nil, err
	}
	type pt struct {
		u, ratio float64
	}
	pts := []pt{{0.015, 6}, {0.03, 4.5}, {0.03, 6}, {0.03, 9}, {0.06, 6}}
	jobs := make([]Job, 0, len(pts))
	for _, p := range pts {
		cfg := baseConfig(gens["hot-pages"], opts, false)
		cfg.Duration = opts.dynamicDuration("hot-pages")
		cfg.Protocol.DeletionThreshold = p.u
		cfg.Protocol.ReplicationThreshold = p.u * p.ratio
		jobs = append(jobs, Job{Label: fmt.Sprintf("thresholds/u=%v,ratio=%v", p.u, p.ratio), Config: cfg})
	}
	results, err := runAblationJobs(opts, jobs)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Ablation A4 (§6.1): deletion/replication threshold sweep on hot-pages",
		Headers: []string{"u (req/s)", "m/u", "bw equilibrium (B·hops/s)", "avg replicas", "drops", "overhead %"},
	}
	for i, p := range pts {
		res := results[i].Results
		t.AddRow(report.F(p.u, 3), report.F(p.ratio, 1),
			report.F(res.BandwidthStats.Equilibrium, 0),
			report.F(res.AvgReplicas, 2),
			fmt.Sprint(res.Counters.Drops),
			report.F(res.OverheadPercent, 2))
	}
	return t, nil
}

// AblationNeighborOnly compares the paper's protocol against the
// related-work baseline it critiques in §1.1 (ADR / WebWave style):
// replicas may only be created on direct topology neighbors and requests
// always go to the closest replica. Under hot-sites demand the baseline
// can neither shed a swamped host's local requests (closest routing keeps
// sending them back) nor create distant replicas directly, so hot spots
// and bandwidth linger.
func AblationNeighborOnly(opts Options) (*report.Table, error) {
	topo := substrate.UUNET().Topo
	u := opts.universe()
	gens, err := Generators(u, topo, opts.Seed)
	if err != nil {
		return nil, err
	}
	variants := []struct {
		label  string
		mutate func(*sim.Config)
	}{
		{"paper protocol", func(*sim.Config) {}},
		{"neighbor-only + closest (ADR/WebWave style)", func(cfg *sim.Config) {
			cfg.Protocol.NeighborOnly = true
			cfg.Policy = protocol.PolicyClosest
		}},
	}
	jobs := make([]Job, 0, len(variants))
	for _, v := range variants {
		cfg := baseConfig(gens["hot-sites"], opts, false)
		cfg.Duration = opts.dynamicDuration("hot-sites")
		v.mutate(&cfg)
		jobs = append(jobs, Job{Label: "variant/" + v.label, Config: cfg})
	}
	results, err := runAblationJobs(opts, jobs)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Ablation A6 (§1.1): paper protocol vs neighbor-only placement + closest routing (hot-sites)",
		Headers: []string{"protocol", "bw equilibrium (B·hops/s)", "latency eq (s)", "max load settled", "timeouts", "avg replicas"},
	}
	for i, v := range variants {
		res := results[i].Results
		t.AddRow(v.label,
			report.F(res.BandwidthStats.Equilibrium, 0),
			report.F(res.LatencyStats.Equilibrium, 3),
			report.F(res.MaxLoadSettled, 1),
			fmt.Sprint(res.TimedOutRequests),
			report.F(res.AvgReplicas, 2))
	}
	return t, nil
}

// AblationBulkOffload compares the paper's en-masse offloading (enabled by
// the Theorem 1-4 load bounds) against moving one object per placement
// round (§1.2: without bulk relocation "a system of our intended scale
// would be hopelessly slow in adjusting to demand changes"). Measured on
// hot-sites, where offloading does the heavy lifting.
func AblationBulkOffload(opts Options) (*report.Table, error) {
	topo := substrate.UUNET().Topo
	u := opts.universe()
	gens, err := Generators(u, topo, opts.Seed)
	if err != nil {
		return nil, err
	}
	caps := []int{0, 1}
	jobs := make([]Job, 0, len(caps))
	for _, cap := range caps {
		cfg := baseConfig(gens["hot-sites"], opts, false)
		cfg.Duration = opts.dynamicDuration("hot-sites")
		cfg.Protocol.MaxOffloadPerRun = cap
		jobs = append(jobs, Job{Label: fmt.Sprintf("offload-cap/%d", cap), Config: cfg})
	}
	results, err := runAblationJobs(opts, jobs)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Ablation A5 (§1.2): en-masse vs one-object-per-round offloading on hot-sites",
		Headers: []string{"offload mode", "adjustment (min)", "max load settled", "latency eq (s)", "load moves"},
	}
	for i, cap := range caps {
		res := results[i].Results
		mode := "en masse (paper)"
		if cap == 1 {
			mode = "one per round"
		}
		adj := "not settled"
		if res.Adjusted {
			adj = report.Mins(res.AdjustmentTime)
		}
		t.AddRow(mode, adj,
			report.F(res.MaxLoadSettled, 1),
			report.F(res.LatencyStats.Equilibrium, 3),
			fmt.Sprint(res.Counters.LoadMigrations+res.Counters.LoadReplications))
	}
	return t, nil
}

// Ablation pairs an ablation's report name with its runner.
type Ablation struct {
	Name string
	Run  func(Options) (*report.Table, error)
}

// Ablations lists every ablation in presentation order (A1..A8).
var Ablations = []Ablation{
	{"A1 distribution policies", AblationDistribution},
	{"A2 full replication", AblationFullReplication},
	{"A3 distribution constant", AblationConstant},
	{"A4 thresholds", AblationThresholds},
	{"A5 bulk offload", AblationBulkOffload},
	{"A6 neighbor-only", AblationNeighborOnly},
	{"A7 oracle", AblationOracle},
	{"A8 redirectors", AblationRedirectors},
}

// RunAblations executes every registered ablation and returns the tables
// in registry order. Ablations run one after another, but each fans its
// own sweep points out on the parallel engine.
func RunAblations(opts Options) ([]*report.Table, error) {
	tables := make([]*report.Table, 0, len(Ablations))
	for _, ab := range Ablations {
		tbl, err := ab.Run(opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %s: %w", ab.Name, err)
		}
		tables = append(tables, tbl)
	}
	return tables, nil
}
