package experiments

import (
	"fmt"

	"radar/internal/protocol"
	"radar/internal/report"
	"radar/internal/sim"
	"radar/internal/topology"
)

// AblationDistribution compares the paper's request distribution algorithm
// against the §3 strawmen on the hot-sites workload, where both failure
// modes are visible: round-robin wastes proximity (high bandwidth), and
// closest-replica cannot relieve a host swamped by requests from its own
// vicinity — "no matter how many additional replicas the server creates,
// all requests will be sent to it anyway" (§3) — so its hot spots and
// latency persist.
func AblationDistribution(opts Options) (*report.Table, error) {
	topo := topology.UUNET()
	u := opts.universe()
	gens, err := Generators(u, topo, opts.Seed)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Ablation A1 (§3): request distribution policies on hot-sites",
		Headers: []string{"policy", "bw equilibrium (B·hops/s)", "latency eq (s)", "max load settled", "timeouts", "avg replicas"},
	}
	for _, pol := range []protocol.Policy{protocol.PolicyPaper, protocol.PolicyRoundRobin, protocol.PolicyClosest} {
		cfg := baseConfig(gens["hot-sites"], opts, false)
		cfg.Duration = opts.dynamicDuration("hot-sites")
		cfg.Policy = pol
		res, err := runOne(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: policy %v: %w", pol, err)
		}
		t.AddRow(pol.String(),
			report.F(res.BandwidthStats.Equilibrium, 0),
			report.F(res.LatencyStats.Equilibrium, 3),
			report.F(res.MaxLoadSettled, 1),
			fmt.Sprint(res.TimedOutRequests),
			report.F(res.AvgReplicas, 2))
	}
	return t, nil
}

// AblationFullReplication probes the §4 claim that needless replicas are
// harmful. The harm is demand-dependent: under symmetric demand (zipf,
// requested equally from everywhere) a replica on every node lets every
// request stay local, so full replication wins bandwidth and only wastes
// storage (53x the replicas). Under asymmetric demand (regional) the
// load-oblivious distributor sees 40+ nearly idle remote replicas of each
// regional object as least-requested and ships a steady stream of requests
// across the world — the §4 spillover harm — so full replication loses to
// the protocol's selective placement despite infinite storage.
func AblationFullReplication(opts Options) (*report.Table, error) {
	topo := topology.UUNET()
	u := opts.universe()
	gens, err := Generators(u, topo, opts.Seed)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Ablation A2 (§4): replicate-everywhere vs selective dynamic placement",
		Headers: []string{"workload", "placement", "bw equilibrium (B·hops/s)", "latency eq (s)", "avg replicas"},
	}
	for _, name := range []string{"zipf", "regional"} {
		full := baseConfig(gens[name], opts, false)
		full.Duration = opts.staticDuration()
		full.DynamicPlacement = false
		full.ReplicateEverywhere = true
		fullRes, err := runOne(full)
		if err != nil {
			return nil, fmt.Errorf("experiments: full replication %s: %w", name, err)
		}
		dyn := baseConfig(gens[name], opts, false)
		dyn.Duration = opts.dynamicDuration(name)
		dynRes, err := runOne(dyn)
		if err != nil {
			return nil, fmt.Errorf("experiments: dynamic %s: %w", name, err)
		}
		t.AddRow(name, "replicate everywhere",
			report.F(fullRes.BandwidthStats.Equilibrium, 0),
			report.F(fullRes.LatencyStats.Equilibrium, 3),
			report.F(fullRes.AvgReplicas, 2))
		t.AddRow(name, "dynamic (paper)",
			report.F(dynRes.BandwidthStats.Equilibrium, 0),
			report.F(dynRes.LatencyStats.Equilibrium, 3),
			report.F(dynRes.AvgReplicas, 2))
	}
	return t, nil
}

// AblationConstant sweeps the request distribution constant (§6.1 names it
// a tunable; the paper fixes 2).
func AblationConstant(opts Options) (*report.Table, error) {
	topo := topology.UUNET()
	u := opts.universe()
	gens, err := Generators(u, topo, opts.Seed)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Ablation A3 (§6.1): distribution constant sweep on hot-pages",
		Headers: []string{"constant", "bw equilibrium (B·hops/s)", "latency eq (s)", "max load settled", "avg replicas"},
	}
	for _, c := range []float64{1.5, 2, 3, 4} {
		cfg := baseConfig(gens["hot-pages"], opts, false)
		cfg.Duration = opts.dynamicDuration("hot-pages")
		cfg.Protocol.DistConstant = c
		res, err := runOne(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: constant %v: %w", c, err)
		}
		t.AddRow(report.F(c, 1),
			report.F(res.BandwidthStats.Equilibrium, 0),
			report.F(res.LatencyStats.Equilibrium, 3),
			report.F(res.MaxLoadSettled, 1),
			report.F(res.AvgReplicas, 2))
	}
	return t, nil
}

// AblationThresholds sweeps the deletion threshold u and the m/u ratio
// (§6.1 discusses both tradeoffs; the theory requires m > 4u).
func AblationThresholds(opts Options) (*report.Table, error) {
	topo := topology.UUNET()
	u := opts.universe()
	gens, err := Generators(u, topo, opts.Seed)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Ablation A4 (§6.1): deletion/replication threshold sweep on hot-pages",
		Headers: []string{"u (req/s)", "m/u", "bw equilibrium (B·hops/s)", "avg replicas", "drops", "overhead %"},
	}
	type pt struct {
		u, ratio float64
	}
	for _, p := range []pt{{0.015, 6}, {0.03, 4.5}, {0.03, 6}, {0.03, 9}, {0.06, 6}} {
		cfg := baseConfig(gens["hot-pages"], opts, false)
		cfg.Duration = opts.dynamicDuration("hot-pages")
		cfg.Protocol.DeletionThreshold = p.u
		cfg.Protocol.ReplicationThreshold = p.u * p.ratio
		res, err := runOne(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: thresholds %v: %w", p, err)
		}
		t.AddRow(report.F(p.u, 3), report.F(p.ratio, 1),
			report.F(res.BandwidthStats.Equilibrium, 0),
			report.F(res.AvgReplicas, 2),
			fmt.Sprint(res.Counters.Drops),
			report.F(res.OverheadPercent, 2))
	}
	return t, nil
}

// AblationNeighborOnly compares the paper's protocol against the
// related-work baseline it critiques in §1.1 (ADR / WebWave style):
// replicas may only be created on direct topology neighbors and requests
// always go to the closest replica. Under hot-sites demand the baseline
// can neither shed a swamped host's local requests (closest routing keeps
// sending them back) nor create distant replicas directly, so hot spots
// and bandwidth linger.
func AblationNeighborOnly(opts Options) (*report.Table, error) {
	topo := topology.UUNET()
	u := opts.universe()
	gens, err := Generators(u, topo, opts.Seed)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Ablation A6 (§1.1): paper protocol vs neighbor-only placement + closest routing (hot-sites)",
		Headers: []string{"protocol", "bw equilibrium (B·hops/s)", "latency eq (s)", "max load settled", "timeouts", "avg replicas"},
	}
	variants := []struct {
		label  string
		mutate func(*sim.Config)
	}{
		{"paper protocol", func(*sim.Config) {}},
		{"neighbor-only + closest (ADR/WebWave style)", func(cfg *sim.Config) {
			cfg.Protocol.NeighborOnly = true
			cfg.Policy = protocol.PolicyClosest
		}},
	}
	for _, v := range variants {
		cfg := baseConfig(gens["hot-sites"], opts, false)
		cfg.Duration = opts.dynamicDuration("hot-sites")
		v.mutate(&cfg)
		res, err := runOne(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", v.label, err)
		}
		t.AddRow(v.label,
			report.F(res.BandwidthStats.Equilibrium, 0),
			report.F(res.LatencyStats.Equilibrium, 3),
			report.F(res.MaxLoadSettled, 1),
			fmt.Sprint(res.TimedOutRequests),
			report.F(res.AvgReplicas, 2))
	}
	return t, nil
}

// AblationBulkOffload compares the paper's en-masse offloading (enabled by
// the Theorem 1-4 load bounds) against moving one object per placement
// round (§1.2: without bulk relocation "a system of our intended scale
// would be hopelessly slow in adjusting to demand changes"). Measured on
// hot-sites, where offloading does the heavy lifting.
func AblationBulkOffload(opts Options) (*report.Table, error) {
	topo := topology.UUNET()
	u := opts.universe()
	gens, err := Generators(u, topo, opts.Seed)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Ablation A5 (§1.2): en-masse vs one-object-per-round offloading on hot-sites",
		Headers: []string{"offload mode", "adjustment (min)", "max load settled", "latency eq (s)", "load moves"},
	}
	for _, cap := range []int{0, 1} {
		cfg := baseConfig(gens["hot-sites"], opts, false)
		cfg.Duration = opts.dynamicDuration("hot-sites")
		cfg.Protocol.MaxOffloadPerRun = cap
		res, err := runOne(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: offload cap %d: %w", cap, err)
		}
		mode := "en masse (paper)"
		if cap == 1 {
			mode = "one per round"
		}
		adj := "not settled"
		if res.Adjusted {
			adj = report.Mins(res.AdjustmentTime)
		}
		t.AddRow(mode, adj,
			report.F(res.MaxLoadSettled, 1),
			report.F(res.LatencyStats.Equilibrium, 3),
			fmt.Sprint(res.Counters.LoadMigrations+res.Counters.LoadReplications))
	}
	return t, nil
}
