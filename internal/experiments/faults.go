package experiments

import (
	"fmt"
	"time"

	"radar/internal/fault"
	"radar/internal/report"
	"radar/internal/workload"
)

// RunFaultScenario sweeps host failure rates over the uniform workload —
// the hardest case for availability, since uniform demand leaves most
// objects at a single replica — with a replica floor of 2 so the repair
// extension has work to do. Severity runs from fault-free (a control
// pinning that the subsystem is inert when disabled) through mean
// time-between-failures of 20, 10 and 5 minutes per host with 2-minute
// repairs. The table shows the availability cost (failed requests, outage
// object-seconds) and the repair machinery's response (repair
// replications, replica census).
func RunFaultScenario(opts Options) (*report.Table, error) {
	u := opts.universe()
	uniform, err := workload.NewUniform(u)
	if err != nil {
		return nil, err
	}
	mtbfs := []time.Duration{0, 20 * time.Minute, 10 * time.Minute, 5 * time.Minute}
	jobs := make([]Job, 0, len(mtbfs))
	for _, mtbf := range mtbfs {
		cfg := baseConfig(uniform, opts, false)
		cfg.Duration = opts.dynamicDuration("uniform")
		cfg.Protocol.ReplicaFloor = 2
		if mtbf > 0 {
			cfg.Faults = fault.Spec{HostMTBF: mtbf, HostMTTR: 2 * time.Minute}
		}
		label := "faults/none"
		if mtbf > 0 {
			label = fmt.Sprintf("faults/mtbf-%s", mtbf)
		}
		jobs = append(jobs, Job{Label: label, Config: cfg})
	}
	results, err := runAblationJobs(opts, jobs)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Fault injection: host MTBF sweep (MTTR 2m, replica floor 2, uniform demand)",
		Headers: []string{"host mtbf", "failures", "failed reqs", "outage obj-s", "below-floor obj-s", "repairs", "avg replicas", "latency eq (s)"},
	}
	for i, mtbf := range mtbfs {
		res := results[i].Results
		name := "none"
		if mtbf > 0 {
			name = mtbf.String()
		}
		t.AddRow(name,
			fmt.Sprint(res.Failures),
			fmt.Sprint(res.FailedRequests),
			report.F(res.UnavailObjSecs, 0),
			report.F(res.BelowFloorObjSecs, 0),
			fmt.Sprint(res.Counters.RepairReplications),
			report.F(res.AvgReplicas, 2),
			report.F(res.LatencyStats.Equilibrium, 3))
	}
	return t, nil
}
