package experiments

import (
	"reflect"
	"testing"
	"time"

	"radar/internal/fault"
	"radar/internal/workload"
)

// TestFaultedRunsDeterministicAcrossParallelism pins the acceptance
// criterion that a nonzero-fault run is bit-identical regardless of
// engine parallelism: the fault timeline is expanded up front from a
// dedicated PRNG stream, so worker scheduling cannot perturb it.
func TestFaultedRunsDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("integration runs")
	}
	makeJobs := func() []Job {
		u := Options{Quick: true}.universe()
		uniform, err := workload.NewUniform(u)
		if err != nil {
			t.Fatal(err)
		}
		jobs := make([]Job, 0, 3)
		for i, mtbf := range []time.Duration{4 * time.Minute, 7 * time.Minute, 11 * time.Minute} {
			opts := Options{Seed: int64(i + 1), Quick: true}
			cfg := baseConfig(uniform, opts, false)
			cfg.Duration = 8 * time.Minute
			cfg.Protocol.ReplicaFloor = 2
			cfg.Faults = fault.Spec{HostMTBF: mtbf, HostMTTR: time.Minute}
			jobs = append(jobs, Job{Label: mtbf.String(), Config: cfg})
		}
		return jobs
	}
	serial, err := runAblationJobs(Options{Parallelism: 1}, makeJobs())
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := runAblationJobs(Options{Parallelism: 0}, makeJobs())
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		a, b := serial[i].Results, parallel[i].Results
		if a.Failures == 0 {
			t.Errorf("job %d: no failures fired; the test is not exercising faults", i)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("job %d (%s): faulted results differ between parallelism 1 and GOMAXPROCS", i, serial[i].Label)
		}
	}
}
