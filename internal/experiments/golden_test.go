package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"
	"time"

	"radar/internal/fault"
	"radar/internal/object"
	"radar/internal/sim"
	"radar/internal/substrate"
	"radar/internal/workload"
)

// update rewrites the golden files instead of comparing against them:
//
//	go test ./internal/experiments/ -run TestGolden -update
//
// Regenerate ONLY when an intentional behavior change shifts the outputs;
// the whole point of these files is to catch unintentional shifts.
var update = flag.Bool("update", false, "rewrite golden files under testdata/golden/")

// suiteGoldenHash is the FNV-64a hash of the rendered multi-seed quick
// suite table (seeds 1-2, 16 runs), recorded before the fault-injection
// subsystem existed. The suite configures no faults, so its output pins
// the zero-fault bit-identity guarantee: if this hash moves, some
// fault-path check leaked into the fault-free hot path.
const suiteGoldenHash = "69d09600928e18d3"

func goldenPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join("testdata", "golden", name)
}

// checkGolden compares got against the named golden file, rewriting the
// file under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := goldenPath(t, name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (run with -update after verifying the change is intentional)\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestGoldenSuiteTable pins the rendered multi-seed quick suite table
// byte-for-byte, and its hash against the pre-fault-subsystem baseline.
func TestGoldenSuiteTable(t *testing.T) {
	if testing.Short() {
		t.Skip("16-run suite")
	}
	ms, err := RunMultiSeed(Options{Seed: 1, Quick: true}, []int64{1, 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ms.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	h.Write(buf.Bytes())
	if got := fmt.Sprintf("%x", h.Sum64()); got != suiteGoldenHash {
		t.Errorf("suite table hash %s, want %s (zero-fault output is no longer bit-identical to the baseline)", got, suiteGoldenHash)
	}
	checkGolden(t, "suite_table.txt", buf.Bytes())
}

// runSnapshot is the deterministic slice of a run's results the per-run
// goldens pin. Every field is exactly reproducible for a fixed seed; wall
// times and anything host-dependent are excluded.
type runSnapshot struct {
	TotalServed          int64   `json:"total_served"`
	TimedOut             int64   `json:"timed_out"`
	DroppedChoices       int64   `json:"dropped_choices"`
	GeoMigrations        int64   `json:"geo_migrations"`
	GeoReplications      int64   `json:"geo_replications"`
	LoadMigrations       int64   `json:"load_migrations"`
	LoadReplications     int64   `json:"load_replications"`
	Drops                int64   `json:"drops"`
	Refusals             int64   `json:"refusals"`
	AvgReplicas          float64 `json:"avg_replicas"`
	BandwidthInitial     float64 `json:"bandwidth_initial"`
	BandwidthEquilibrium float64 `json:"bandwidth_equilibrium"`
	LatencyEquilibrium   float64 `json:"latency_equilibrium"`
	MaxLoadPeak          float64 `json:"max_load_peak"`
	MaxLoadSettled       float64 `json:"max_load_settled"`

	Failures           int64   `json:"failures"`
	Recoveries         int64   `json:"recoveries"`
	LinkFailures       int64   `json:"link_failures"`
	LinkRecoveries     int64   `json:"link_recoveries"`
	FailedRequests     int64   `json:"failed_requests"`
	Outages            int64   `json:"outages"`
	UnavailObjSecs     float64 `json:"unavailable_object_seconds"`
	BelowFloorObjSecs  float64 `json:"below_floor_object_seconds"`
	RepairReplications int64   `json:"repair_replications"`
	RepairByteHops     int64   `json:"repair_byte_hops"`

	CtrlEnabled       bool  `json:"ctrl_enabled"`
	CtrlAttempts      int64 `json:"ctrl_attempts"`
	CtrlRetries       int64 `json:"ctrl_retries"`
	CtrlTimeouts      int64 `json:"ctrl_timeouts"`
	CtrlLost          int64 `json:"ctrl_lost"`
	CtrlDroppedLegs   int64 `json:"ctrl_dropped_legs"`
	CtrlDupLegs       int64 `json:"ctrl_dup_legs"`
	CtrlNotifiesSent  int64 `json:"ctrl_notifies_sent"`
	CtrlNotifiesLost  int64 `json:"ctrl_notifies_lost"`
	DeferredMoves     int64 `json:"deferred_moves"`
	OrphansHealed     int64 `json:"orphans_healed"`
	StaleAffinity     int64 `json:"stale_affinity_repaired"`
	GhostsRemoved     int64 `json:"ghosts_removed"`
	ReconcileRuns     int64 `json:"reconcile_runs"`
	ReconcileByteHops int64 `json:"reconcile_byte_hops"`
}

func snapshot(res *sim.Results) runSnapshot {
	return runSnapshot{
		TotalServed:          res.TotalServed,
		TimedOut:             res.TimedOutRequests,
		DroppedChoices:       res.DroppedChoices,
		GeoMigrations:        res.Counters.GeoMigrations,
		GeoReplications:      res.Counters.GeoReplications,
		LoadMigrations:       res.Counters.LoadMigrations,
		LoadReplications:     res.Counters.LoadReplications,
		Drops:                res.Counters.Drops,
		Refusals:             res.Counters.Refusals,
		AvgReplicas:          res.AvgReplicas,
		BandwidthInitial:     res.BandwidthStats.Initial,
		BandwidthEquilibrium: res.BandwidthStats.Equilibrium,
		LatencyEquilibrium:   res.LatencyStats.Equilibrium,
		MaxLoadPeak:          res.MaxLoadPeak,
		MaxLoadSettled:       res.MaxLoadSettled,
		Failures:             res.Failures,
		Recoveries:           res.Recoveries,
		LinkFailures:         res.LinkFailures,
		LinkRecoveries:       res.LinkRecoveries,
		FailedRequests:       res.FailedRequests,
		Outages:              res.Outages,
		UnavailObjSecs:       res.UnavailObjSecs,
		BelowFloorObjSecs:    res.BelowFloorObjSecs,
		RepairReplications:   res.Counters.RepairReplications,
		RepairByteHops:       res.RepairByteHops,
		CtrlEnabled:          res.CtrlEnabled,
		CtrlAttempts:         res.CtrlStats.Attempts,
		CtrlRetries:          res.CtrlStats.Retries,
		CtrlTimeouts:         res.CtrlStats.Timeouts,
		CtrlLost:             res.CtrlStats.Lost,
		CtrlDroppedLegs:      res.CtrlStats.DroppedLegs,
		CtrlDupLegs:          res.CtrlStats.DupLegs,
		CtrlNotifiesSent:     res.CtrlStats.NotifiesSent,
		CtrlNotifiesLost:     res.CtrlStats.NotifiesLost,
		DeferredMoves:        res.Counters.DeferredMoves,
		OrphansHealed:        res.OrphansHealed,
		StaleAffinity:        res.StaleAffinityRepaired,
		GhostsRemoved:        res.GhostsRemoved,
		ReconcileRuns:        res.ReconcileRuns,
		ReconcileByteHops:    res.ReconcileByteHops,
	}
}

// TestGoldenRunMetrics pins per-run metrics for three canonical
// configurations: the paper's dynamic protocol, its high-load variant,
// and a faulted run with a replica floor (the availability extension's
// numbers are golden too — fault injection is bit-reproducible).
func TestGoldenRunMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("integration runs")
	}
	topo := substrate.UUNET().Topo
	u := object.Universe{Count: 2000, SizeBytes: 12 << 10}
	gens, err := Generators(u, topo, 1)
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := workload.NewUniform(u)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  func() sim.Config
	}{
		{"zipf_dynamic", func() sim.Config {
			cfg := sim.DefaultConfig(gens["zipf"], 1)
			cfg.Universe = u
			cfg.Duration = 8 * time.Minute
			return cfg
		}},
		{"hotsites_highload", func() sim.Config {
			cfg := sim.DefaultConfig(gens["hot-sites"], 1)
			cfg.Universe = u
			cfg.Duration = 8 * time.Minute
			cfg.Protocol.HighWatermark = 50
			cfg.Protocol.LowWatermark = 40
			return cfg
		}},
		{"uniform_faults", func() sim.Config {
			cfg := sim.DefaultConfig(uniform, 1)
			cfg.Universe = u
			cfg.Duration = 10 * time.Minute
			cfg.Protocol.ReplicaFloor = 2
			cfg.Faults = fault.Spec{
				Events: []fault.Event{
					{Kind: fault.HostDown, At: 3 * time.Minute, Node: 9},
					{Kind: fault.HostUp, At: 8 * time.Minute, Node: 9},
					{Kind: fault.LinkDown, At: 4 * time.Minute, A: 12, B: 13},
					{Kind: fault.LinkUp, At: 6 * time.Minute, A: 12, B: 13},
				},
			}
			return cfg
		}},
		{"zipf_ctrl_lossy", func() sim.Config {
			cfg := sim.DefaultConfig(gens["zipf"], 1)
			cfg.Universe = u
			cfg.Duration = 10 * time.Minute
			cfg.Protocol.ReplicaFloor = 2
			cfg.Faults = fault.Spec{
				MsgDrop:  0.2,
				MsgDup:   0.1,
				MsgDelay: 20 * time.Millisecond,
			}
			return cfg
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			s, err := sim.New(tc.cfg())
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.InvariantsError != nil {
				t.Fatalf("invariants: %v", res.InvariantsError)
			}
			got, err := json.MarshalIndent(snapshot(res), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			checkGolden(t, "run_"+tc.name+".json", got)
		})
	}
}
