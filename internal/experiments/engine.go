package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"radar/internal/sim"
)

// This file implements the unified parallel experiment engine. The
// paper's evaluation is reproduced by running many independent
// single-threaded simulations — workloads x seeds x ablation points — so
// the harness fans them out over a bounded worker pool. Every batch
// entry point in this package (RunSuite, RunMultiSeed, RunAblations,
// Sweep) funnels through Engine.Run.
//
// Concurrency safety rests on each sim.Config being self-contained: a
// simulation derives every RNG stream from its own Seed and builds its
// own topology, routing table, hosts and collectors in sim.New. The
// workload generators built by Generators are immutable after
// construction (their Next methods only read), so sharing one generator
// across concurrent jobs is safe. Configs that carry *stateful* shared
// components — a trace.Recording/trace.Replay generator, a
// consistency.Manager, or an ExtraObserver — must not appear in more
// than one job of a batch; give each job its own instance.

// Job is one labeled simulation in an engine batch.
type Job struct {
	// Label identifies the job in errors and timing reports.
	Label string
	// Config is the full simulation configuration. It must not share
	// mutable components (stateful generators, consistency managers,
	// observers) with any other job in the same batch.
	Config sim.Config
}

// JobResult pairs a job with its outcome. Results are always returned in
// input order regardless of completion order.
type JobResult struct {
	Label   string
	Results *sim.Results
	// Err is the job's failure, nil on success. Jobs abandoned by a
	// fail-fast cancellation or a canceled context carry an error
	// wrapping context.Canceled.
	Err error
	// Wall is the job's wall-clock execution time (zero for jobs that
	// never ran).
	Wall time.Duration
}

// Engine executes batches of independent simulations on a bounded worker
// pool. The zero value is ready to use: GOMAXPROCS workers, collect-all
// error mode.
type Engine struct {
	// Parallelism bounds how many simulations run concurrently; <= 0
	// selects GOMAXPROCS. Each simulation is single-threaded and
	// CPU-bound, so GOMAXPROCS workers saturate the machine and the
	// effective worker count is capped there: extra workers could not add
	// throughput, they would only interleave working sets through the
	// cache (a measurable slowdown on small machines). Results are
	// bit-identical at every requested level either way — see the
	// determinism suite.
	Parallelism int
	// FailFast stops dispatching new jobs after the first failure and
	// makes Run return that failure. When false (collect-all), every job
	// runs and errors are reported per JobResult only.
	FailFast bool
}

// Run executes jobs and returns one JobResult per job, in input order.
// Identical job lists produce identical Results regardless of
// Parallelism: per-run determinism comes from each config's Seed, and
// the pool never shares state between jobs.
//
// Under FailFast the first error (lowest input index) is returned and
// not-yet-started jobs are abandoned with a cancellation error; jobs
// already in flight are interrupted promptly (the simulation engine polls
// cancellation every few thousand events) and report a cancellation
// error. Canceling ctx abandons and interrupts jobs the same way and
// makes Run return ctx's error. In collect-all mode Run's error is nil
// unless ctx was canceled; inspect per-job Errs (see FirstError).
func (e Engine) Run(ctx context.Context, jobs []Job) ([]JobResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p := e.Parallelism
	if procs := runtime.GOMAXPROCS(0); p <= 0 || p > procs {
		p = procs
	}
	if p > len(jobs) {
		p = len(jobs)
	}
	out := make([]JobResult, len(jobs))
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = e.runJob(runCtx, jobs[i])
				if out[i].Err != nil && e.FailFast {
					cancel()
				}
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return out, err
	}
	if e.FailFast {
		return out, FirstError(out)
	}
	return out, nil
}

// runJob executes one job under ctx, timing it. A job whose context is
// already canceled is abandoned without running; one canceled mid-run is
// interrupted and reports the cancellation.
func (e Engine) runJob(ctx context.Context, j Job) JobResult {
	select {
	case <-ctx.Done():
		return JobResult{Label: j.Label, Err: fmt.Errorf("experiments: job %q abandoned: %w", j.Label, context.Canceled)}
	default:
	}
	start := time.Now()
	res, err := runOne(ctx, j.Config)
	if err != nil {
		err = fmt.Errorf("experiments: job %q: %w", j.Label, err)
	}
	return JobResult{Label: j.Label, Results: res, Err: err, Wall: time.Since(start)}
}

// FirstError returns the first real failure in input order, skipping
// cancellation-abandoned jobs so the error that triggered a fail-fast
// stop is reported rather than its fallout. It returns nil if every job
// succeeded or was merely abandoned.
func FirstError(results []JobResult) error {
	var abandoned error
	for _, r := range results {
		if r.Err == nil {
			continue
		}
		if errors.Is(r.Err, context.Canceled) {
			if abandoned == nil {
				abandoned = r.Err
			}
			continue
		}
		return r.Err
	}
	return abandoned
}
