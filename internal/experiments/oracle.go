package experiments

import (
	"fmt"

	"radar/internal/oracle"
	"radar/internal/report"
	"radar/internal/routing"
	"radar/internal/topology"
)

// AblationOracle answers the paper's future-work question (§1.1): how far
// is the autonomous protocol from a centrally computed placement? The
// oracle sees the exact demand matrix and greedily minimizes byte×hops
// with the same replica budget the protocol ended up using; the protocol
// sees nothing but its own local request counts. Both placements are then
// evaluated under identical demand: the oracle as a static run (its
// placement is already demand-optimal), the protocol dynamically.
func AblationOracle(opts Options) (*report.Table, error) {
	topo := topology.UUNET()
	routes := routing.New(topo)
	u := opts.universe()
	gens, err := Generators(u, topo, opts.Seed)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Ablation A7 (§1.1 future work): autonomous protocol vs offline greedy oracle (same replica budget)",
		Headers: []string{"workload", "placement", "bw equilibrium (B·hops/s)", "latency eq (s)", "replicas/object"},
	}
	for _, name := range []string{"zipf", "regional"} {
		gen := gens[name]
		dyn := baseConfig(gen, opts, false)
		dyn.Duration = opts.dynamicDuration(name)
		dynRes, err := runOne(dyn)
		if err != nil {
			return nil, fmt.Errorf("experiments: dynamic %s: %w", name, err)
		}

		demand, err := oracle.EstimateDemand(gen, topo, u, dyn.NodeRequestRPS, 20000, opts.Seed)
		if err != nil {
			return nil, err
		}
		extra := int(float64(u.Count) * (dynRes.AvgReplicas - 1))
		if extra < 0 {
			extra = 0
		}
		placement, err := oracle.Greedy(routes, demand, extra)
		if err != nil {
			return nil, err
		}
		oracleCfg := baseConfig(gen, opts, false)
		oracleCfg.Duration = opts.staticDuration()
		oracleCfg.DynamicPlacement = false
		oracleCfg.InitialPlacement = placement
		oracleRes, err := runOne(oracleCfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: oracle %s: %w", name, err)
		}

		t.AddRow(name, "protocol (autonomous)",
			report.F(dynRes.BandwidthStats.Equilibrium, 0),
			report.F(dynRes.LatencyStats.Equilibrium, 3),
			report.F(dynRes.AvgReplicas, 2))
		t.AddRow(name, "oracle (offline greedy)",
			report.F(oracleRes.BandwidthStats.Equilibrium, 0),
			report.F(oracleRes.LatencyStats.Equilibrium, 3),
			report.F(float64(oracle.TotalReplicas(placement))/float64(u.Count), 2))
	}
	return t, nil
}

// AblationRedirectors sweeps the number of hash-partitioned redirectors
// (§6.1 future work: redirector placement to minimize added latency).
// More redirectors shorten the gateway-to-redirector detour on average.
func AblationRedirectors(opts Options) (*report.Table, error) {
	topo := topology.UUNET()
	u := opts.universe()
	gens, err := Generators(u, topo, opts.Seed)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Ablation A8 (§6.1 future work): redirector count sweep (zipf)",
		Headers: []string{"redirectors", "latency eq (s)", "bw equilibrium (B·hops/s)", "avg replicas"},
	}
	for _, k := range []int{1, 2, 4, 8} {
		cfg := baseConfig(gens["zipf"], opts, false)
		cfg.Duration = opts.dynamicDuration("zipf")
		cfg.NumRedirectors = k
		res, err := runOne(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %d redirectors: %w", k, err)
		}
		t.AddRow(fmt.Sprint(k),
			report.F(res.LatencyStats.Equilibrium, 3),
			report.F(res.BandwidthStats.Equilibrium, 0),
			report.F(res.AvgReplicas, 2))
	}
	// Per-object placement: each object's redirector at its home node.
	cfg := baseConfig(gens["zipf"], opts, false)
	cfg.Duration = opts.dynamicDuration("zipf")
	cfg.RedirectorAtHome = true
	res, err := runOne(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: per-object redirectors: %w", err)
	}
	t.AddRow("per-object (home node)",
		report.F(res.LatencyStats.Equilibrium, 3),
		report.F(res.BandwidthStats.Equilibrium, 0),
		report.F(res.AvgReplicas, 2))
	return t, nil
}
