package experiments

import (
	"fmt"

	"radar/internal/oracle"
	"radar/internal/report"
	"radar/internal/substrate"
	"radar/internal/topology"
)

// AblationOracle answers the paper's future-work question (§1.1): how far
// is the autonomous protocol from a centrally computed placement? The
// oracle sees the exact demand matrix and greedily minimizes byte×hops
// with the same replica budget the protocol ended up using; the protocol
// sees nothing but its own local request counts. Both placements are then
// evaluated under identical demand: the oracle as a static run (its
// placement is already demand-optimal), the protocol dynamically.
func AblationOracle(opts Options) (*report.Table, error) {
	sub := substrate.UUNET()
	topo, routes := sub.Topo, sub.Routes
	u := opts.universe()
	gens, err := Generators(u, topo, opts.Seed)
	if err != nil {
		return nil, err
	}
	names := []string{"zipf", "regional"}

	// Stage 1: the autonomous protocol runs, fanned out together. The
	// oracle's replica budget depends on their outcomes, so the static
	// oracle evaluations form a second batch.
	dynJobs := make([]Job, 0, len(names))
	for _, name := range names {
		dyn := baseConfig(gens[name], opts, false)
		dyn.Duration = opts.dynamicDuration(name)
		dynJobs = append(dynJobs, Job{Label: "dynamic/" + name, Config: dyn})
	}
	dynResults, err := runAblationJobs(opts, dynJobs)
	if err != nil {
		return nil, err
	}

	// Stage 2: offline greedy placements with the protocol's budget,
	// evaluated as static runs under identical demand.
	placements := make([][][]topology.NodeID, len(names))
	oracleJobs := make([]Job, 0, len(names))
	for i, name := range names {
		gen := gens[name]
		dynRes := dynResults[i].Results
		demand, err := oracle.EstimateDemand(gen, topo, u, dynJobs[i].Config.NodeRequestRPS, 20000, opts.Seed)
		if err != nil {
			return nil, err
		}
		extra := int(float64(u.Count) * (dynRes.AvgReplicas - 1))
		if extra < 0 {
			extra = 0
		}
		placement, err := oracle.Greedy(routes, demand, extra)
		if err != nil {
			return nil, err
		}
		placements[i] = placement
		oracleCfg := baseConfig(gen, opts, false)
		oracleCfg.Duration = opts.staticDuration()
		oracleCfg.DynamicPlacement = false
		oracleCfg.InitialPlacement = placement
		oracleJobs = append(oracleJobs, Job{Label: "oracle/" + name, Config: oracleCfg})
	}
	oracleResults, err := runAblationJobs(opts, oracleJobs)
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title:   "Ablation A7 (§1.1 future work): autonomous protocol vs offline greedy oracle (same replica budget)",
		Headers: []string{"workload", "placement", "bw equilibrium (B·hops/s)", "latency eq (s)", "replicas/object"},
	}
	for i, name := range names {
		dynRes := dynResults[i].Results
		oracleRes := oracleResults[i].Results
		t.AddRow(name, "protocol (autonomous)",
			report.F(dynRes.BandwidthStats.Equilibrium, 0),
			report.F(dynRes.LatencyStats.Equilibrium, 3),
			report.F(dynRes.AvgReplicas, 2))
		t.AddRow(name, "oracle (offline greedy)",
			report.F(oracleRes.BandwidthStats.Equilibrium, 0),
			report.F(oracleRes.LatencyStats.Equilibrium, 3),
			report.F(float64(oracle.TotalReplicas(placements[i]))/float64(u.Count), 2))
	}
	return t, nil
}

// AblationRedirectors sweeps the number of hash-partitioned redirectors
// (§6.1 future work: redirector placement to minimize added latency).
// More redirectors shorten the gateway-to-redirector detour on average.
func AblationRedirectors(opts Options) (*report.Table, error) {
	topo := substrate.UUNET().Topo
	u := opts.universe()
	gens, err := Generators(u, topo, opts.Seed)
	if err != nil {
		return nil, err
	}
	counts := []int{1, 2, 4, 8}
	jobs := make([]Job, 0, len(counts)+1)
	labels := make([]string, 0, len(counts)+1)
	for _, k := range counts {
		cfg := baseConfig(gens["zipf"], opts, false)
		cfg.Duration = opts.dynamicDuration("zipf")
		cfg.NumRedirectors = k
		jobs = append(jobs, Job{Label: fmt.Sprintf("redirectors/%d", k), Config: cfg})
		labels = append(labels, fmt.Sprint(k))
	}
	// Per-object placement: each object's redirector at its home node.
	cfg := baseConfig(gens["zipf"], opts, false)
	cfg.Duration = opts.dynamicDuration("zipf")
	cfg.RedirectorAtHome = true
	jobs = append(jobs, Job{Label: "redirectors/per-object", Config: cfg})
	labels = append(labels, "per-object (home node)")

	results, err := runAblationJobs(opts, jobs)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Ablation A8 (§6.1 future work): redirector count sweep (zipf)",
		Headers: []string{"redirectors", "latency eq (s)", "bw equilibrium (B·hops/s)", "avg replicas"},
	}
	for i, label := range labels {
		res := results[i].Results
		t.AddRow(label,
			report.F(res.LatencyStats.Equilibrium, 3),
			report.F(res.BandwidthStats.Equilibrium, 0),
			report.F(res.AvgReplicas, 2))
	}
	return t, nil
}
