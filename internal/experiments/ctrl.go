package experiments

import (
	"fmt"
	"time"

	"radar/internal/fault"
	"radar/internal/report"
	"radar/internal/workload"
)

// RunCtrlScenario sweeps control-message drop rates over the Zipf workload
// with a replica floor of 2. Severity runs from loss-free (a control
// pinning that zero-valued message-fault terms leave the plane disarmed)
// through 5%, 20% and 50% per-leg loss, each with 5% duplication and up to
// 20ms extra delay. The table shows how RPC retries, lost handshakes,
// deferred placement moves and anti-entropy healing grow with loss, and
// that the protocol keeps converging (equilibrium bandwidth/latency).
func RunCtrlScenario(opts Options) (*report.Table, error) {
	u := opts.universe()
	zipf, err := workload.NewZipf(u)
	if err != nil {
		return nil, err
	}
	drops := []float64{0, 0.05, 0.2, 0.5}
	jobs := make([]Job, 0, len(drops))
	for _, drop := range drops {
		cfg := baseConfig(zipf, opts, false)
		cfg.Duration = opts.dynamicDuration("zipf")
		cfg.Protocol.ReplicaFloor = 2
		if drop > 0 {
			cfg.Faults = fault.Spec{MsgDrop: drop, MsgDup: 0.05, MsgDelay: 20 * time.Millisecond}
		}
		label := "ctrl/reliable"
		if drop > 0 {
			label = fmt.Sprintf("ctrl/drop-%g", drop)
		}
		jobs = append(jobs, Job{Label: label, Config: cfg})
	}
	results, err := runAblationJobs(opts, jobs)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Unreliable control plane: message drop sweep (dup 5%, cdelay <=20ms, replica floor 2, Zipf demand)",
		Headers: []string{"drop rate", "rpc attempts", "retries", "lost", "deferred", "orphans healed", "stale fixed", "bw eq (B-h/s)", "latency eq (s)"},
	}
	for i, drop := range drops {
		res := results[i].Results
		name := "0 (reliable)"
		if drop > 0 {
			name = report.F(drop, 2)
		}
		t.AddRow(name,
			fmt.Sprint(res.CtrlStats.Attempts),
			fmt.Sprint(res.CtrlStats.Retries),
			fmt.Sprint(res.CtrlStats.Lost),
			fmt.Sprint(res.Counters.DeferredMoves),
			fmt.Sprint(res.OrphansHealed),
			fmt.Sprint(res.StaleAffinityRepaired),
			report.F(res.BandwidthStats.Equilibrium, 0),
			report.F(res.LatencyStats.Equilibrium, 3))
	}
	return t, nil
}
