package experiments

import (
	"reflect"
	"testing"
	"time"

	"radar/internal/fault"
	"radar/internal/workload"
)

// TestLossyRunsDeterministicAcrossParallelism pins the acceptance
// criterion that a lossy-control-plane run is bit-identical regardless of
// engine parallelism: drop/dup/delay draws, retry jitter and token
// allocation all come from per-run state seeded off the master seed, so
// worker scheduling cannot perturb them.
func TestLossyRunsDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("integration runs")
	}
	makeJobs := func() []Job {
		u := Options{Quick: true}.universe()
		zipf, err := workload.NewZipf(u)
		if err != nil {
			t.Fatal(err)
		}
		jobs := make([]Job, 0, 3)
		for i, drop := range []float64{0.05, 0.2, 0.5} {
			opts := Options{Seed: int64(i + 1), Quick: true}
			cfg := baseConfig(zipf, opts, false)
			cfg.Duration = 8 * time.Minute
			cfg.Protocol.ReplicaFloor = 2
			cfg.Faults = fault.Spec{MsgDrop: drop, MsgDup: 0.05, MsgDelay: 20 * time.Millisecond}
			jobs = append(jobs, Job{Label: "drop", Config: cfg})
		}
		return jobs
	}
	serial, err := runAblationJobs(Options{Parallelism: 1}, makeJobs())
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := runAblationJobs(Options{Parallelism: 0}, makeJobs())
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		a, b := serial[i].Results, parallel[i].Results
		if a.CtrlStats.Attempts == 0 {
			t.Errorf("job %d: no control RPCs fired; the test is not exercising the plane", i)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("job %d: lossy results differ between parallelism 1 and GOMAXPROCS", i)
		}
	}
}
