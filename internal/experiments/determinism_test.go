package experiments

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"radar/internal/sim"
)

// raceOver returns the reduced-scale override used by heavy integration
// tests when the race detector is on. The detector multiplies simulation
// cost several-fold; shrinking the simulated scale keeps the exact same
// concurrency structure (same jobs, same worker pool, same shared
// generators) within the test timeout, trading only physics fidelity,
// which the non-race run still covers. It returns nil without -race.
func raceOver() *scaleOverride {
	if !raceEnabled {
		return nil
	}
	return &scaleOverride{Objects: 300, Dynamic: 2 * time.Minute, Static: time.Minute}
}

// tinyOptions shrinks the suite far below Quick scale so determinism can
// be checked end to end in seconds.
func tinyOptions(seed int64, parallelism int) Options {
	over := &scaleOverride{Objects: 300, Dynamic: 2 * time.Minute, Static: time.Minute}
	if raceEnabled {
		over.Dynamic = time.Minute
	}
	return Options{
		Seed:        seed,
		Quick:       true,
		Parallelism: parallelism,
		over:        over,
	}
}

// runSerial is the reference execution: the jobs one after another on the
// calling goroutine, no engine involved.
func runSerial(t *testing.T, jobs []Job) []*sim.Results {
	t.Helper()
	out := make([]*sim.Results, len(jobs))
	for i, j := range jobs {
		res, err := runOne(context.Background(), j.Config)
		if err != nil {
			t.Fatalf("serial run %q: %v", j.Label, err)
		}
		out[i] = res
	}
	return out
}

// TestEngineMatchesSerialExecution: the engine at parallelism 1 and at
// GOMAXPROCS must produce results bit-identical to a plain sequential
// loop over the same jobs (same Options.Seed throughout).
func TestEngineMatchesSerialExecution(t *testing.T) {
	jobs, err := suiteJobs(tinyOptions(7, 0), false)
	if err != nil {
		t.Fatal(err)
	}
	want := runSerial(t, jobs)

	for _, p := range []int{1, runtime.GOMAXPROCS(0)} {
		results, err := Engine{Parallelism: p, FailFast: true}.Run(context.Background(), jobs)
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		for i, r := range results {
			if r.Label != jobs[i].Label {
				t.Fatalf("parallelism %d: result %d is %q, want %q", p, i, r.Label, jobs[i].Label)
			}
			if !reflect.DeepEqual(r.Results, want[i]) {
				t.Errorf("parallelism %d: run %q differs from serial execution", p, r.Label)
			}
		}
	}
}

// TestSuiteDeterministicRepeat: the same Options.Seed through the full
// suite pipeline twice yields identical runs and byte-identical rendered
// artifacts.
func TestSuiteDeterministicRepeat(t *testing.T) {
	first, err := RunSuite(tinyOptions(3, 0), false)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunSuite(tinyOptions(3, 0), false)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range WorkloadNames {
		a, b := first.Runs[name], second.Runs[name]
		if !reflect.DeepEqual(a.Dynamic, b.Dynamic) || !reflect.DeepEqual(a.Static, b.Static) {
			t.Errorf("workload %q differs between two runs with the same seed", name)
		}
	}
	var bufA, bufB bytes.Buffer
	if err := first.RenderAll(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := second.RenderAll(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Error("rendered artifacts differ between two runs with the same seed")
	}
}

// TestMultiSeedDeterministicAcrossParallelism: a multi-seed batch (>= 4
// seeds) produces byte-identical aggregated tables whether it runs
// sequentially or fanned out across the worker pool.
func TestMultiSeedDeterministicAcrossParallelism(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	serial, err := RunMultiSeed(tinyOptions(1, 1), seeds, false)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunMultiSeed(tinyOptions(1, 0), seeds, false)
	if err != nil {
		t.Fatal(err)
	}
	var bufA, bufB bytes.Buffer
	if err := serial.Table().Render(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := parallel.Table().Render(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Errorf("aggregated tables differ between parallelism 1 and GOMAXPROCS:\n%s\nvs\n%s",
			bufA.String(), bufB.String())
	}
	for i := range seeds {
		for _, name := range WorkloadNames {
			a := serial.Suites[i].Runs[name]
			b := parallel.Suites[i].Runs[name]
			if !reflect.DeepEqual(a.Dynamic, b.Dynamic) {
				t.Errorf("seed %d workload %q dynamic run differs across parallelism", seeds[i], name)
			}
		}
	}
}
