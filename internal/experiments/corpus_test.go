package experiments

import (
	"testing"

	"radar/internal/scenario"
)

// TestRunCorpus is the corpus acceptance run: it executes the full
// scenario corpus at parallelism 4, checks the comparison is complete,
// and asserts the headline claim — the availability-aware objective beats
// the legacy policy on the availability metrics of both outage scenarios.
func TestRunCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("integration runs")
	}
	rep, err := RunCorpus(Options{Seed: 1, Parallelism: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != len(scenario.Corpus()) {
		t.Fatalf("corpus report has %d runs, want %d", len(rep.Runs), len(scenario.Corpus()))
	}
	outage := map[string]bool{
		"flash-crowd-regional-outage": true,
		"correlated-rack-failures":    true,
	}
	for _, run := range rep.Runs {
		name := run.Scenario.Name
		if run.Legacy == nil || run.Avail == nil || run.Oracle == nil {
			t.Fatalf("%s: missing variant results", name)
		}
		if !outage[name] {
			continue
		}
		if run.AvailM.Availability <= run.LegacyM.Availability {
			t.Errorf("%s: availability-aware availability %.6f does not beat legacy %.6f",
				name, run.AvailM.Availability, run.LegacyM.Availability)
		}
		if run.AvailM.FailedRequests >= run.LegacyM.FailedRequests {
			t.Errorf("%s: availability-aware failed requests %d do not beat legacy %d",
				name, run.AvailM.FailedRequests, run.LegacyM.FailedRequests)
		}
		if run.AvailM.UnavailObjSecs > run.LegacyM.UnavailObjSecs {
			t.Errorf("%s: availability-aware unavailable object-seconds %.0f exceed legacy %.0f",
				name, run.AvailM.UnavailObjSecs, run.LegacyM.UnavailObjSecs)
		}
	}
}

// TestRunCorpusParallelismInvariance: the corpus comparison is
// bit-identical at parallelism 1 and 4 — every metric of every variant of
// every scenario matches exactly.
func TestRunCorpusParallelismInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("integration runs")
	}
	scens := []scenario.Scenario{}
	for _, name := range []string{"steady-state-baseline", "correlated-rack-failures", "cache-over-disk-tier"} {
		sc, ok := scenario.ByName(name)
		if !ok {
			t.Fatalf("scenario %s missing from corpus", name)
		}
		scens = append(scens, sc)
	}
	seq, err := RunCorpus(Options{Seed: 1, Parallelism: 1}, scens)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunCorpus(Options{Seed: 1, Parallelism: 4}, scens)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Runs) != len(par.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(seq.Runs), len(par.Runs))
	}
	for i := range seq.Runs {
		name := seq.Runs[i].Scenario.Name
		if seq.Runs[i].LegacyM != par.Runs[i].LegacyM {
			t.Errorf("%s legacy metrics differ across parallelism:\n p=1: %+v\n p=4: %+v",
				name, seq.Runs[i].LegacyM, par.Runs[i].LegacyM)
		}
		if seq.Runs[i].AvailM != par.Runs[i].AvailM {
			t.Errorf("%s avail metrics differ across parallelism:\n p=1: %+v\n p=4: %+v",
				name, seq.Runs[i].AvailM, par.Runs[i].AvailM)
		}
		if seq.Runs[i].OracleM != par.Runs[i].OracleM {
			t.Errorf("%s oracle metrics differ across parallelism:\n p=1: %+v\n p=4: %+v",
				name, seq.Runs[i].OracleM, par.Runs[i].OracleM)
		}
	}
}
