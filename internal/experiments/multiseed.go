package experiments

import (
	"fmt"

	"radar/internal/report"
	"radar/internal/stats"
)

// MultiSeed aggregates the paper suite across several seeds, reporting
// each headline metric as mean ± 95% half-width. Simulation results carry
// run-to-run noise (workload sampling, hot-site selection); multi-seed
// aggregation is what makes the paper-vs-measured comparison defensible.
type MultiSeed struct {
	Seeds  []int64
	Suites []*Suite
}

// RunMultiSeed executes the paper suite once per seed.
func RunMultiSeed(base Options, seeds []int64, highLoad bool) (*MultiSeed, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiments: no seeds")
	}
	ms := &MultiSeed{Seeds: seeds}
	for _, seed := range seeds {
		opts := base
		opts.Seed = seed
		suite, err := RunSuite(opts, highLoad)
		if err != nil {
			return nil, fmt.Errorf("experiments: seed %d: %w", seed, err)
		}
		ms.Suites = append(ms.Suites, suite)
	}
	return ms, nil
}

// gather extracts one metric per workload across seeds.
func (ms *MultiSeed) gather(workload string, metric func(*WorkloadRun) float64) []float64 {
	out := make([]float64, 0, len(ms.Suites))
	for _, s := range ms.Suites {
		out = append(out, metric(s.Runs[workload]))
	}
	return out
}

// Table renders the aggregated Figure 6 + Table 2 metrics.
func (ms *MultiSeed) Table() *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Paper suite across %d seeds (mean ± 95%% half-width)", len(ms.Seeds)),
		Headers: []string{"workload", "bw reduction %", "latency eq (s)",
			"avg replicas", "overhead %", "max load settled"},
	}
	for _, name := range WorkloadNames {
		t.AddRow(name,
			stats.FormatMeanErr(ms.gather(name, func(r *WorkloadRun) float64 { return r.BandwidthReduction() }), 1),
			stats.FormatMeanErr(ms.gather(name, func(r *WorkloadRun) float64 { return r.Dynamic.LatencyStats.Equilibrium }), 3),
			stats.FormatMeanErr(ms.gather(name, func(r *WorkloadRun) float64 { return r.Dynamic.AvgReplicas }), 2),
			stats.FormatMeanErr(ms.gather(name, func(r *WorkloadRun) float64 { return r.Dynamic.OverheadPercent }), 2),
			stats.FormatMeanErr(ms.gather(name, func(r *WorkloadRun) float64 { return r.Dynamic.MaxLoadSettled }), 1),
		)
	}
	return t
}
