package experiments

import (
	"context"
	"fmt"
	"time"

	"radar/internal/report"
	"radar/internal/stats"
)

// MultiSeed aggregates the paper suite across several seeds, reporting
// each headline metric as mean ± 95% half-width. Simulation results carry
// run-to-run noise (workload sampling, hot-site selection); multi-seed
// aggregation is what makes the paper-vs-measured comparison defensible.
type MultiSeed struct {
	Seeds  []int64
	Suites []*Suite
}

// RunMultiSeed executes the paper suite once per seed. The whole
// seeds x workloads x {static,dynamic} grid is fanned out as one batch on
// the parallel engine, so wall-clock approaches the cost of the slowest
// single run; aggregated results are identical to running the suites
// sequentially.
func RunMultiSeed(base Options, seeds []int64, highLoad bool) (*MultiSeed, error) {
	return RunMultiSeedContext(context.Background(), base, seeds, highLoad)
}

// RunMultiSeedContext is RunMultiSeed with cancellation.
func RunMultiSeedContext(ctx context.Context, base Options, seeds []int64, highLoad bool) (*MultiSeed, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiments: no seeds")
	}
	var jobs []Job
	perSeed := 2 * len(WorkloadNames)
	for _, seed := range seeds {
		opts := base
		opts.Seed = seed
		seedJobs, err := suiteJobs(opts, highLoad)
		if err != nil {
			return nil, fmt.Errorf("experiments: seed %d: %w", seed, err)
		}
		for i := range seedJobs {
			seedJobs[i].Label = fmt.Sprintf("seed%d/%s", seed, seedJobs[i].Label)
		}
		jobs = append(jobs, seedJobs...)
	}
	results, err := base.engine().Run(ctx, jobs)
	if err != nil {
		return nil, err
	}
	ms := &MultiSeed{Seeds: seeds}
	for i, seed := range seeds {
		suite, err := suiteFromResults(results[i*perSeed:(i+1)*perSeed], highLoad)
		if err != nil {
			return nil, fmt.Errorf("experiments: seed %d: %w", seed, err)
		}
		ms.Suites = append(ms.Suites, suite)
	}
	return ms, nil
}

// gather extracts one metric per workload across seeds.
func (ms *MultiSeed) gather(workload string, metric func(*WorkloadRun) float64) []float64 {
	out := make([]float64, 0, len(ms.Suites))
	for _, s := range ms.Suites {
		out = append(out, metric(s.Runs[workload]))
	}
	return out
}

// Table renders the aggregated Figure 6 + Table 2 metrics. Its bytes are
// identical at every engine parallelism level (wall-clock lives in the
// separate Timing tables).
func (ms *MultiSeed) Table() *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Paper suite across %d seeds (mean ± 95%% half-width)", len(ms.Seeds)),
		Headers: []string{"workload", "bw reduction %", "latency eq (s)",
			"avg replicas", "overhead %", "max load settled"},
	}
	for _, name := range WorkloadNames {
		t.AddRow(name,
			stats.FormatMeanErr(ms.gather(name, func(r *WorkloadRun) float64 { return r.BandwidthReduction() }), 1),
			stats.FormatMeanErr(ms.gather(name, func(r *WorkloadRun) float64 { return r.Dynamic.LatencyStats.Equilibrium }), 3),
			stats.FormatMeanErr(ms.gather(name, func(r *WorkloadRun) float64 { return r.Dynamic.AvgReplicas }), 2),
			stats.FormatMeanErr(ms.gather(name, func(r *WorkloadRun) float64 { return r.Dynamic.OverheadPercent }), 2),
			stats.FormatMeanErr(ms.gather(name, func(r *WorkloadRun) float64 { return r.Dynamic.MaxLoadSettled }), 1),
		)
	}
	return t
}

// Timing reports per-run wall-clock across all seeds.
func (ms *MultiSeed) Timing() *report.Table {
	t := &report.Table{
		Title:   "Multi-seed run wall-clock (parallel engine)",
		Headers: []string{"run", "wall"},
	}
	for _, s := range ms.Suites {
		for _, rt := range s.Timings {
			t.AddRow(rt.Label, rt.Wall.Round(time.Millisecond).String())
		}
	}
	return t
}
