// Package experiments defines one runnable experiment per table and figure
// in the paper's evaluation (§6), plus the ablations DESIGN.md calls out.
// Figures 6, 7, 8a/8b and Table 2 all derive from the same four workload
// runs, so the package runs each configuration once and extracts every
// artifact from the shared results.
package experiments

import (
	"context"
	"fmt"
	"time"

	"radar/internal/object"
	"radar/internal/protocol"
	"radar/internal/sim"
	"radar/internal/substrate"
	"radar/internal/topology"
	"radar/internal/workload"
)

// WorkloadNames lists the paper's four workloads in presentation order.
var WorkloadNames = []string{"hot-sites", "hot-pages", "zipf", "regional"}

// Options scales an experiment run.
type Options struct {
	// Seed drives all randomness.
	Seed int64
	// Quick shrinks the object universe and run length so the whole suite
	// finishes in tens of seconds (for benchmarks and CI); the full-scale
	// runs reproduce Table 1 exactly.
	Quick bool
	// Parallelism bounds how many simulations run concurrently in
	// RunSuite, RunMultiSeed and the ablations; <= 0 selects GOMAXPROCS.
	// Results are bit-identical at every parallelism level.
	Parallelism int
	// Shards selects the sharded event engine inside each run (see
	// sim.Config.Shards): 0/1 serial, -1 one shard per region, >= 2 that
	// many shards. Cross-run parallelism (Parallelism) and intra-run
	// sharding compose; results are bit-identical either way.
	Shards int
	// over shrinks runs far below Quick scale; tests use it to exercise
	// the whole suite pipeline in seconds.
	over *scaleOverride
}

// scaleOverride is the test-only scale knob (see Options.over).
type scaleOverride struct {
	Objects         int
	Dynamic, Static time.Duration
}

// engine returns the fail-fast engine the batch entry points share.
func (o Options) engine() Engine {
	return Engine{Parallelism: o.Parallelism, FailFast: true}
}

// universe returns the object universe for the scale.
func (o Options) universe() object.Universe {
	if o.over != nil {
		return object.Universe{Count: o.over.Objects, SizeBytes: 12 << 10}
	}
	if o.Quick {
		return object.Universe{Count: 2000, SizeBytes: 12 << 10}
	}
	return object.Universe{Count: 10000, SizeBytes: 12 << 10}
}

// dynamicDuration is the simulated span for dynamic runs; hot-sites needs
// longer to fully drain its initial backlog.
func (o Options) dynamicDuration(workloadName string) time.Duration {
	if o.over != nil {
		return o.over.Dynamic
	}
	base := 40 * time.Minute
	if workloadName == "hot-sites" {
		base = 55 * time.Minute
	}
	if o.Quick {
		return base / 2
	}
	return base
}

// staticDuration is the simulated span for static baseline runs; static
// placement reaches steady state immediately.
func (o Options) staticDuration() time.Duration {
	if o.over != nil {
		return o.over.Static
	}
	if o.Quick {
		return 5 * time.Minute
	}
	return 10 * time.Minute
}

// Generators builds the paper's four workload generators over u and topo.
func Generators(u object.Universe, topo *topology.Topology, seed int64) (map[string]workload.Generator, error) {
	zipf, err := workload.NewZipf(u)
	if err != nil {
		return nil, err
	}
	hotSites, err := workload.NewHotSites(u, topo.NumNodes(), 0.9, seed)
	if err != nil {
		return nil, err
	}
	hotPages, err := workload.NewHotPages(u, 0.1, 0.9, seed)
	if err != nil {
		return nil, err
	}
	regional, err := workload.NewRegional(u, topo, 0.01, 0.9)
	if err != nil {
		return nil, err
	}
	return map[string]workload.Generator{
		"zipf":      zipf,
		"hot-sites": hotSites,
		"hot-pages": hotPages,
		"regional":  regional,
	}, nil
}

// WorkloadRun pairs a workload's dynamic run with its static baseline.
type WorkloadRun struct {
	Name    string
	Dynamic *sim.Results
	// Static is the no-replication baseline under the same demand. For
	// hot-sites the static system is permanently saturated (that is the
	// point of the workload), so its equilibrium is not meaningful as a
	// baseline; use the hot-pages static level, which has the identical
	// access pattern (the paper makes the same observation in §6.2).
	Static *sim.Results
}

// BandwidthReduction returns the equilibrium bandwidth reduction against
// the static baseline, in percent.
func (wr *WorkloadRun) BandwidthReduction() float64 {
	if wr.Static == nil || wr.Static.BandwidthStats.Equilibrium == 0 {
		return 0
	}
	return 100 * (wr.Static.BandwidthStats.Equilibrium - wr.Dynamic.BandwidthStats.Equilibrium) /
		wr.Static.BandwidthStats.Equilibrium
}

// LatencyReduction returns the equilibrium latency reduction against the
// static baseline, in percent.
func (wr *WorkloadRun) LatencyReduction() float64 {
	if wr.Static == nil || wr.Static.LatencyStats.Equilibrium == 0 {
		return 0
	}
	return 100 * (wr.Static.LatencyStats.Equilibrium - wr.Dynamic.LatencyStats.Equilibrium) /
		wr.Static.LatencyStats.Equilibrium
}

// Suite holds the shared runs behind Figures 6, 7, 8a, 8b and Table 2 (or
// their Figure 9 high-load variants).
type Suite struct {
	Runs     map[string]*WorkloadRun
	HighLoad bool
	// Timings records each run's wall-clock, in job order (static and
	// dynamic per workload). Wall times vary run to run, so the timing
	// table is rendered separately from the deterministic artifacts.
	Timings []RunTiming
}

// RunTiming is one run's wall-clock cost.
type RunTiming struct {
	Label string
	Wall  time.Duration
}

// baseConfig builds the Table 1 configuration for one run.
func baseConfig(gen workload.Generator, opts Options, highLoad bool) sim.Config {
	cfg := sim.DefaultConfig(gen, opts.Seed)
	cfg.Universe = opts.universe()
	cfg.Shards = opts.Shards
	if highLoad {
		cfg.Protocol = protocol.HighLoadParams()
	}
	return cfg
}

// trackedHotSite returns a node that the hot-sites workload overloads, so
// the Figure 8b trace shows estimates doing real work.
func trackedHotSite(u object.Universe, topo *topology.Topology, seed int64) topology.NodeID {
	hs, err := workload.NewHotSites(u, topo.NumNodes(), 0.9, seed)
	if err != nil {
		return 0
	}
	for n := 0; n < topo.NumNodes(); n++ {
		pages := u.ObjectsHomedAt(topology.NodeID(n), topo.NumNodes())
		if len(pages) == 0 {
			continue
		}
		if hs.IsHot(pages[0]) {
			return topology.NodeID(n)
		}
	}
	return 0
}

// suiteJobs builds the suite's job list: a static baseline and a dynamic
// run per workload, two jobs per workload in WorkloadNames order. The
// generators built here are immutable after construction, so sharing one
// between a workload's static and dynamic jobs is concurrency-safe.
func suiteJobs(opts Options, highLoad bool) ([]Job, error) {
	topo := substrate.UUNET().Topo
	u := opts.universe()
	gens, err := Generators(u, topo, opts.Seed)
	if err != nil {
		return nil, err
	}
	tracked := trackedHotSite(u, topo, opts.Seed)
	jobs := make([]Job, 0, 2*len(WorkloadNames))
	for _, name := range WorkloadNames {
		gen := gens[name]

		staticCfg := baseConfig(gen, opts, highLoad)
		staticCfg.DynamicPlacement = false
		staticCfg.Duration = opts.staticDuration()
		jobs = append(jobs, Job{Label: "static/" + name, Config: staticCfg})

		dynCfg := baseConfig(gen, opts, highLoad)
		dynCfg.Duration = opts.dynamicDuration(name)
		if name == "hot-sites" {
			dynCfg.TrackedHost = tracked
		}
		jobs = append(jobs, Job{Label: "dynamic/" + name, Config: dynCfg})
	}
	return jobs, nil
}

// suiteFromResults assembles a Suite from suiteJobs results (two per
// workload, in WorkloadNames order).
func suiteFromResults(results []JobResult, highLoad bool) (*Suite, error) {
	if len(results) != 2*len(WorkloadNames) {
		return nil, fmt.Errorf("experiments: suite expects %d results, got %d", 2*len(WorkloadNames), len(results))
	}
	suite := &Suite{Runs: make(map[string]*WorkloadRun), HighLoad: highLoad}
	for i, name := range WorkloadNames {
		static, dyn := results[2*i], results[2*i+1]
		suite.Runs[name] = &WorkloadRun{Name: name, Dynamic: dyn.Results, Static: static.Results}
	}
	for _, r := range results {
		suite.Timings = append(suite.Timings, RunTiming{Label: r.Label, Wall: r.Wall})
	}
	// Hot-sites static saturates forever; substitute the hot-pages static
	// level as its baseline (identical access pattern, §6.2).
	suite.Runs["hot-sites"].Static = suite.Runs["hot-pages"].Static
	return suite, nil
}

// RunSuite executes the four paper workloads (dynamic plus static
// baselines) at the given load level and returns the shared results.
// highLoad selects the Figure 9 watermarks (50/40) instead of Table 1's
// (90/80). The eight runs execute concurrently on the engine's worker
// pool; results are identical to a sequential execution.
func RunSuite(opts Options, highLoad bool) (*Suite, error) {
	return RunSuiteContext(context.Background(), opts, highLoad)
}

// RunSuiteContext is RunSuite with cancellation: canceling ctx abandons
// runs that have not started and returns ctx's error.
func RunSuiteContext(ctx context.Context, opts Options, highLoad bool) (*Suite, error) {
	jobs, err := suiteJobs(opts, highLoad)
	if err != nil {
		return nil, err
	}
	results, err := opts.engine().Run(ctx, jobs)
	if err != nil {
		return nil, err
	}
	return suiteFromResults(results, highLoad)
}

func runOne(ctx context.Context, cfg sim.Config) (*sim.Results, error) {
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	res, err := s.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	if res.InvariantsError != nil {
		return nil, fmt.Errorf("invariants violated: %w", res.InvariantsError)
	}
	return res, nil
}
