package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"radar/internal/metrics"
	"radar/internal/report"
)

// Figure6 summarizes bandwidth and latency per workload (the headline
// numbers of the paper's Figure 6 curves).
func (s *Suite) Figure6() *report.Table {
	title := "Figure 6: bandwidth and average latency, dynamic replication vs static placement"
	if s.HighLoad {
		title = "Figure 9: bandwidth and average latency under high load (hw=50, lw=40)"
	}
	t := &report.Table{
		Title: title,
		Headers: []string{"workload", "static bw (B·hops/s)", "dynamic bw (B·hops/s)", "bw reduction %",
			"static lat (s)", "dynamic lat (s)", "lat reduction %"},
	}
	for _, name := range WorkloadNames {
		r := s.Runs[name]
		t.AddRow(name,
			report.F(r.Static.BandwidthStats.Equilibrium, 0),
			report.F(r.Dynamic.BandwidthStats.Equilibrium, 0),
			report.F(r.BandwidthReduction(), 1),
			report.F(r.Static.LatencyStats.Equilibrium, 3),
			report.F(r.Dynamic.LatencyStats.Equilibrium, 3),
			report.F(r.LatencyReduction(), 1),
		)
	}
	return t
}

// Figure7 summarizes protocol overhead as a percentage of total traffic.
func (s *Suite) Figure7() *report.Table {
	t := &report.Table{
		Title:   "Figure 7: network overhead (replication/migration traffic, % of total)",
		Headers: []string{"workload", "overhead %", "peak bucket %"},
	}
	for _, name := range WorkloadNames {
		r := s.Runs[name]
		t.AddRow(name,
			report.F(r.Dynamic.OverheadPercent, 2),
			report.F(metrics.MaxValue(r.Dynamic.OverheadPct), 2),
		)
	}
	return t
}

// Figure8a summarizes the maximum-load series.
func (s *Suite) Figure8a() *report.Table {
	t := &report.Table{
		Title:   "Figure 8a: maximum server load (req/s)",
		Headers: []string{"workload", "peak", "settled (final quarter)", "high watermark"},
	}
	for _, name := range WorkloadNames {
		r := s.Runs[name]
		t.AddRow(name,
			report.F(r.Dynamic.MaxLoadPeak, 1),
			report.F(r.Dynamic.MaxLoadSettled, 1),
			report.F(r.Dynamic.HighWatermark, 0),
		)
	}
	return t
}

// Figure8b summarizes the tracked host's estimate sandwich for the
// hot-sites run (the paper plots one host's actual load between its lower
// and upper estimates).
func (s *Suite) Figure8b() *report.Table {
	r := s.Runs["hot-sites"].Dynamic
	t := &report.Table{
		Title:   fmt.Sprintf("Figure 8b: load estimates vs actual (host %d, hot-sites)", r.TrackedHost),
		Headers: []string{"samples", "violations", "violation %"},
	}
	n := len(r.HostLoad)
	pct := 0.0
	if n > 0 {
		pct = 100 * float64(r.SandwichViolations) / float64(n)
	}
	t.AddRow(fmt.Sprint(n), fmt.Sprint(r.SandwichViolations), report.F(pct, 1))
	return t
}

// Table2 reproduces adjustment time and average replica count.
func (s *Suite) Table2() *report.Table {
	t := &report.Table{
		Title:   "Table 2: adjustment time and average number of replicas",
		Headers: []string{"workload", "adjustment time (min)", "average number of replicas"},
	}
	for _, name := range WorkloadNames {
		r := s.Runs[name].Dynamic
		adj := "not settled"
		if r.Adjusted {
			adj = report.Mins(r.AdjustmentTime)
		}
		t.AddRow(name, adj, report.F(r.AvgReplicas, 2))
	}
	return t
}

// Timing reports each run's wall-clock cost as measured by the parallel
// engine. Unlike the other artifacts this table is not deterministic
// (wall times vary run to run), so RenderAll excludes it; callers that
// want it render it explicitly.
func (s *Suite) Timing() *report.Table {
	t := &report.Table{
		Title:   "Run wall-clock (parallel engine)",
		Headers: []string{"run", "wall"},
	}
	var total time.Duration
	for _, rt := range s.Timings {
		t.AddRow(rt.Label, rt.Wall.Round(time.Millisecond).String())
		total += rt.Wall
	}
	// Concurrent runs include time spent waiting for each other's CPU
	// timeslices, so this sum exceeds both the batch wall-clock and the
	// true CPU time whenever parallelism > 1.
	t.AddRow("sum of runs", total.Round(time.Millisecond).String())
	return t
}

// RenderAll writes every artifact of the suite to w.
func (s *Suite) RenderAll(w io.Writer) error {
	tables := []*report.Table{s.Figure6(), s.Figure7(), s.Figure8a(), s.Figure8b(), s.Table2()}
	if s.HighLoad {
		tables = []*report.Table{s.Figure6()}
	}
	for _, t := range tables {
		if err := t.Render(w); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSVs dumps the per-figure series data to dir: one file per figure,
// with a column per workload.
func (s *Suite) WriteCSVs(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	prefix := "fig6"
	if s.HighLoad {
		prefix = "fig9"
	}
	collect := func(pick func(*WorkloadRun) []metrics.Point) map[string][]metrics.Point {
		out := make(map[string][]metrics.Point, len(WorkloadNames))
		for _, name := range WorkloadNames {
			out[name] = pick(s.Runs[name])
		}
		return out
	}
	files := []struct {
		name   string
		series map[string][]metrics.Point
	}{
		{prefix + "_bandwidth.csv", collect(func(r *WorkloadRun) []metrics.Point { return r.Dynamic.Bandwidth })},
		{prefix + "_latency.csv", collect(func(r *WorkloadRun) []metrics.Point { return r.Dynamic.Latency })},
		{"fig7_overhead.csv", collect(func(r *WorkloadRun) []metrics.Point { return r.Dynamic.OverheadPct })},
		{"fig8a_maxload.csv", collect(func(r *WorkloadRun) []metrics.Point { return r.Dynamic.MaxLoad })},
	}
	if s.HighLoad {
		files = files[:2]
	}
	for _, f := range files {
		if err := writeCSVFile(filepath.Join(dir, f.name), f.series); err != nil {
			return err
		}
	}
	if !s.HighLoad {
		path := filepath.Join(dir, "fig8b_hostload.csv")
		fh, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
		defer fh.Close()
		if err := report.WriteHostLoadCSV(fh, s.Runs["hot-sites"].Dynamic.HostLoad); err != nil {
			return err
		}
		return fh.Close()
	}
	return nil
}

func writeCSVFile(path string, series map[string][]metrics.Point) error {
	fh, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	defer fh.Close()
	if err := report.WriteSeriesCSV(fh, time.Minute, series, WorkloadNames); err != nil {
		return err
	}
	return fh.Close()
}
