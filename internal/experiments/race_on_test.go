//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in; heavy
// integration tests shrink their simulation scale under -race (see
// raceOver) because the detector multiplies simulation cost several-fold.
const raceEnabled = true
