package sim

import (
	"reflect"
	"testing"
	"time"

	"radar/internal/fault"
	"radar/internal/topology"
	"radar/internal/workload"
)

// shardVariants are the scenario mutations the bit-identity property is
// checked under: the plain dynamic-placement run, a hostile run with
// crash/link faults plus a lossy control plane, and the transit-stub
// topology the bigrun benchmark uses.
func shardVariants(t *testing.T) []struct {
	name   string
	mutate func(*Config)
} {
	t.Helper()
	return []struct {
		name   string
		mutate func(*Config)
	}{
		{"uunet-dynamic", func(*Config) {}},
		{"uunet-faults-lossy-ctrl", func(c *Config) {
			c.Protocol.ReplicaFloor = 2
			c.Faults = fault.Spec{
				HostMTBF: 4 * time.Minute,
				HostMTTR: 60 * time.Second,
				LinkMTBF: 5 * time.Minute,
				LinkMTTR: 45 * time.Second,
				MsgDrop:  0.2,
				MsgDup:   0.05,
			}
		}},
		{"transit-stub", func(c *Config) {
			c.Topo = topology.TransitStub(4, 2, 3) // 32 nodes, 4 regions
		}},
	}
}

func shardTestConfig(t *testing.T) Config {
	t.Helper()
	gen, err := workload.NewHotPages(testUniverse, 0.1, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(gen, 11)
	cfg.Universe = testUniverse
	cfg.Duration = 2 * time.Minute
	return cfg
}

func runShards(t *testing.T, cfg Config, shards int) *Results {
	t.Helper()
	cfg.Shards = shards
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestShardedBitIdenticalToSerial is the sharded engine's core property:
// at every shard count, under faults and a lossy control plane, on both
// backbones, the full Results struct — floating-point latency series,
// per-host stats, failure counters, everything — is deeply equal to the
// serial engine's.
func TestShardedBitIdenticalToSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("integration runs")
	}
	for _, v := range shardVariants(t) {
		v := v
		t.Run(v.name, func(t *testing.T) {
			cfg := shardTestConfig(t)
			v.mutate(&cfg)
			serial := runShards(t, cfg, 0)
			for _, k := range []int{2, 4, 8} {
				got := runShards(t, cfg, k)
				if !reflect.DeepEqual(serial, got) {
					t.Errorf("shards=%d diverges from serial: serial=%+v sharded=%+v", k, abridge(serial), abridge(got))
				}
			}
			auto := runShards(t, cfg, -1)
			if !reflect.DeepEqual(serial, auto) {
				t.Errorf("shards=auto diverges from serial")
			}
		})
	}
}

// abridge trims the bulky series out of a Results copy so divergence
// reports stay readable.
func abridge(r *Results) Results {
	c := *r
	c.Bandwidth, c.Latency, c.LatencyP99, c.OverheadPct = nil, nil, nil, nil
	c.MaxLoad, c.HostLoad, c.Replicas, c.FailedSeries, c.BelowFloor = nil, nil, nil, nil, nil
	c.HostStats = nil
	return c
}

// TestShardedQuantumBitIdentical forces very short windows (many more
// barriers than global events require) and checks results are still
// bit-identical: the barrier protocol itself must not be observable.
func TestShardedQuantumBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("integration runs")
	}
	cfg := shardTestConfig(t)
	cfg.Duration = time.Minute
	serial := runShards(t, cfg, 0)
	for _, q := range []time.Duration{75 * time.Millisecond, time.Second} {
		cfg.ShardQuantum = q
		got := runShards(t, cfg, 4)
		if !reflect.DeepEqual(serial, got) {
			t.Errorf("quantum=%v diverges from serial", q)
		}
	}
}

// TestShardsSerialPathUnchanged checks Shards=1 and Shards=0 take the
// serial engine (no lanes, no lookahead) and agree with each other.
func TestShardsSerialPathUnchanged(t *testing.T) {
	cfg := shardTestConfig(t)
	cfg.Duration = 30 * time.Second
	for _, k := range []int{0, 1} {
		cfg.Shards = k
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if s.ShardCount() != 1 || s.Lookahead() != 0 || s.ShardOf() != nil {
			t.Fatalf("Shards=%d built a sharded engine", k)
		}
	}
}

// TestShardAssignmentsPartition checks the node partition is a valid,
// deterministic, region-aligned cover with non-empty shards.
func TestShardAssignmentsPartition(t *testing.T) {
	topos := map[string]*topology.Topology{
		"transit-stub": topology.TransitStub(4, 4, 15), // 256 nodes
		"two-clusters": topology.TwoClusters(6),
		"line":         topology.Line(9),
	}
	for name, topo := range topos {
		for _, k := range []int{2, 3, 4, 8} {
			if k > topo.NumNodes() {
				continue
			}
			a := shardAssignments(topo, k)
			b := shardAssignments(topo, k)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s k=%d: assignment not deterministic", name, k)
			}
			count := make([]int, k)
			for node, sh := range a {
				if sh < 0 || sh >= k {
					t.Fatalf("%s k=%d: node %d in shard %d", name, node, k, sh)
				}
				count[sh]++
			}
			for sh, c := range count {
				if c == 0 {
					t.Errorf("%s k=%d: shard %d empty", name, k, sh)
				}
			}
		}
	}
	// Region alignment: with one shard per region, every region must be
	// whole (this is what maximizes the lookahead bound).
	ts := topology.TransitStub(4, 2, 3)
	a := shardAssignments(ts, 4)
	for _, r := range topology.Regions() {
		ids := ts.NodesInRegion(r)
		for _, id := range ids {
			if a[id] != a[ids[0]] {
				t.Errorf("region %v split across shards at k=4", r)
			}
		}
	}
}

// TestLookaheadBoundsCrossShardDeliveries verifies the conservative
// lookahead invariant end to end: every cross-shard request delivery
// (gateway and chosen host in different shards) is timestamped at least
// W = minCrossShardHops × HopDelay after its dispatch time, because the
// redirector detour can only lengthen the g→h path (triangle
// inequality on hop distances).
func TestLookaheadBoundsCrossShardDeliveries(t *testing.T) {
	cfg := shardTestConfig(t)
	cfg.Topo = topology.TransitStub(4, 2, 3)
	cfg.Duration = 30 * time.Second
	cfg.Shards = 4
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.ShardCount() != 4 {
		t.Fatalf("got %d shards", s.ShardCount())
	}
	w := s.Lookahead()
	if w <= 0 {
		t.Fatalf("lookahead %v, want positive on a region-sparse graph", w)
	}
	assign := s.ShardOf()
	hop := cfg.Net.HopDelay
	n := cfg.Topo.NumNodes()
	// The delivery timestamp for (g, red, h) is
	// t0 + (d(g,red)+d(red,h))·hop >= t0 + d(g,h)·hop >= t0 + W whenever
	// shard(g) != shard(h). Check the per-pair bound directly.
	for g := 0; g < n; g++ {
		for h := 0; h < n; h++ {
			if assign[g] == assign[h] {
				continue
			}
			d := time.Duration(s.routes.Distance(topology.NodeID(g), topology.NodeID(h))) * hop
			if d < w {
				t.Fatalf("cross-shard pair (%d,%d) delay %v below lookahead %v", g, h, d, w)
			}
		}
	}
}

// TestSerialOutageCloseDeterministic regression-tests the horizon-close
// path for outage windows: the windows still open at the end of a run
// accumulate into a floating-point sum, so they must close in sorted
// object order, not map order. (Found by the bit-identity property test:
// repeated serial runs disagreed in the low bits of UnavailObjSecs.)
func TestSerialOutageCloseDeterministic(t *testing.T) {
	mk := func() float64 {
		cfg := shardTestConfig(t)
		cfg.Protocol.ReplicaFloor = 2
		cfg.Faults = fault.Spec{
			HostMTBF: 4 * time.Minute,
			HostMTTR: 60 * time.Second,
			LinkMTBF: 5 * time.Minute,
			LinkMTTR: 45 * time.Second,
		}
		return runShards(t, cfg, 0).UnavailObjSecs
	}
	a, b := mk(), mk()
	if a != b {
		t.Errorf("serial runs disagree: %.10f vs %.10f", a, b)
	}
}

// TestShardedBarrierHammer drives many short windows through the barrier
// loop; its real teeth come from the CI race job, where it runs under
// -race and any unsynchronized lane access between the coordinator and
// the shard workers is flagged.
func TestShardedBarrierHammer(t *testing.T) {
	cfg := shardTestConfig(t)
	cfg.Duration = 20 * time.Second
	cfg.ShardQuantum = 20 * time.Millisecond // ~1000 windows
	cfg.Shards = 8
	serial := cfg
	serial.Shards = 0
	serial.ShardQuantum = 0
	want := runShards(t, serial, 0)
	got := runShards(t, cfg, cfg.Shards)
	if !reflect.DeepEqual(want, got) {
		t.Error("hammered sharded run diverges from serial")
	}
}

// TestShardedRefusesIncompatibleSubsystems checks validation rejects the
// combinations the sharded engine cannot partition.
func TestShardedRefusesIncompatibleSubsystems(t *testing.T) {
	base := shardTestConfig(t)
	base.Shards = 4

	cfg := base
	cfg.Net.Contention = true
	if _, err := New(cfg); err == nil {
		t.Error("sharded + contention accepted")
	}

	cfg = base
	cfg.Shards = -2
	if _, err := New(cfg); err == nil {
		t.Error("Shards=-2 accepted")
	}

	cfg = base
	cfg.ShardQuantum = -time.Second
	if _, err := New(cfg); err == nil {
		t.Error("negative quantum accepted")
	}
}
