package sim

import (
	"testing"
	"time"

	"radar/internal/object"
	"radar/internal/protocol"
	"radar/internal/server"
	"radar/internal/topology"
	"radar/internal/workload"
)

// TestVicinityOverloadClosestVsPaper reproduces the §3 motivating example
// end to end: one gateway swamps the objects homed on its own node at a
// rate beyond the server's capacity. Under closest-replica routing no
// amount of replication relieves the victim — the vicinity requests'
// closest replica is always the victim itself; the paper's distributor
// caps the victim at roughly 2/(n+1) of the vicinity demand and spills
// the rest to remote replicas.
func TestVicinityOverloadClosestVsPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	run := func(policy protocol.Policy) (victimLoad float64, victimQueue int) {
		topo := topology.TwoClusters(4) // nodes 0-3 cluster A, 4-7 cluster B
		u := object.Universe{Count: 320, SizeBytes: 12 << 10}
		targets := u.ObjectsHomedAt(0, topo.NumNodes())
		background, err := workload.NewUniform(u)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := workload.NewFocused(targets,
			[]topology.NodeID{0}, 1.0, background)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(gen, 5)
		cfg.Topo = topo
		cfg.Universe = u
		cfg.Policy = policy
		cfg.Server = server.Config{CapacityRPS: 50, MeasurementInterval: 20 * time.Second}
		cfg.Protocol.HighWatermark = 45
		cfg.Protocol.LowWatermark = 35
		// Gateway 0 fires 100 req/s at its own node's objects; everyone
		// else trickles background demand.
		rates := []float64{100, 10, 10, 10, 10, 10, 10, 10}
		cfg.NodeRates = rates
		cfg.Duration = 70 * time.Minute
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.InvariantsError != nil {
			t.Fatal(res.InvariantsError)
		}
		return s.Servers()[0].Load(), s.Servers()[0].QueueLen()
	}

	closestLoad, closestQueue := run(protocol.PolicyClosest)
	paperLoad, paperQueue := run(protocol.PolicyPaper)
	// Closest routing keeps the victim saturated at its 50 req/s capacity
	// with a standing (timeout-capped) backlog; the paper's distributor
	// sheds enough vicinity traffic for the queue to drain and the load to
	// fall below capacity.
	if closestLoad < 48 {
		t.Errorf("closest-policy victim load = %.1f, expected pinned near capacity 50", closestLoad)
	}
	if closestQueue < 1000 {
		t.Errorf("closest-policy victim queue = %d, expected a standing backlog", closestQueue)
	}
	if paperLoad > 48 {
		t.Errorf("paper-policy victim load = %.1f, expected relief below capacity", paperLoad)
	}
	if paperQueue > closestQueue/10 {
		t.Errorf("paper-policy victim queue = %d vs closest %d, expected drained", paperQueue, closestQueue)
	}
}
