package sim

import (
	"fmt"
	"math/rand"
	"time"

	"radar/internal/fault"
	"radar/internal/object"
	"radar/internal/topology"
	"radar/internal/workload"
)

// faultStream is the PRNG stream index reserved for stochastic fault
// timelines. Gateways use streams 0..numNodes-1 of the run's seed, so a
// large constant keeps fault draws disjoint from every workload stream:
// enabling faults never perturbs request randomness, and the timeline is
// expanded up front so it is independent of experiment parallelism.
const faultStream uint64 = 1 << 32

// Failure schedules a hosting-server crash (the co-located router stays
// up, so routing is unaffected — a process failure, not a link cut). While
// down, the server accepts no requests and no replicas; its replicas are
// purged from the redirectors, so objects whose only copy lived there are
// unavailable until recovery. On recovery the host re-registers the
// replicas still on its disk.
//
// Failure is the legacy scripted-crash interface, kept for compatibility;
// Config.Faults subsumes it (crashes, link cuts, stochastic MTBF/MTTR
// cycles). Both feed the same timeline.
//
// Failure handling is an extension beyond the paper (which targets
// performance, not availability, §1.1); it exercises the redirector's
// subset invariant and the placement protocol's reaction to lost
// capacity.
type Failure struct {
	// Node is the failing host.
	Node topology.NodeID
	// At is the crash time.
	At time.Duration
	// RecoverAt is the recovery time; zero means the host never returns.
	RecoverAt time.Duration
}

// validateFailures checks failure specs against the topology.
func (c *Config) validateFailures() error {
	for _, f := range c.Failures {
		if int(f.Node) < 0 || int(f.Node) >= c.Topo.NumNodes() {
			return fmt.Errorf("sim: failure names unknown node %d", f.Node)
		}
		if f.At < 0 {
			return fmt.Errorf("sim: failure time %v must be non-negative", f.At)
		}
		if f.RecoverAt != 0 && f.RecoverAt <= f.At {
			return fmt.Errorf("sim: recovery %v must follow failure %v", f.RecoverAt, f.At)
		}
	}
	return nil
}

// faultsEnabled reports whether any fault source is configured.
func (s *Simulation) faultsEnabled() bool {
	return len(s.cfg.Failures) > 0 || s.cfg.Faults.Enabled()
}

// faultSpec merges the legacy Failures list into the Faults spec as
// scripted host events, without aliasing either config slice.
func (s *Simulation) faultSpec() fault.Spec {
	spec := s.cfg.Faults
	if len(s.cfg.Failures) > 0 {
		evs := make([]fault.Event, 0, len(spec.Events)+2*len(s.cfg.Failures))
		evs = append(evs, spec.Events...)
		for _, f := range s.cfg.Failures {
			evs = append(evs, fault.Event{Kind: fault.HostDown, At: f.At, Node: f.Node})
			if f.RecoverAt > 0 {
				evs = append(evs, fault.Event{Kind: fault.HostUp, At: f.RecoverAt, Node: f.Node})
			}
		}
		spec.Events = evs
	}
	return spec
}

// topoEdges lists the backbone's undirected edges with first endpoint <
// second, in deterministic node order — the element order stochastic link
// cycles draw in. Shared with the live chaos controller via
// fault.TopoEdges so both worlds expand a schedule identically.
func (s *Simulation) topoEdges() [][2]topology.NodeID {
	return fault.TopoEdges(s.topo)
}

// scheduleFaults expands the merged fault spec into a timeline and arms
// every event. Events beyond the run's horizon are dropped (a permanent
// failure's recovery simply never fires). When the timeline contains link
// events, the request path gains severed-link checks and every redirector
// gets a reachability filter; fault-free runs skip all of it, keeping the
// hot path bit-identical to a build without fault injection.
func (s *Simulation) scheduleFaults() error {
	spec := s.faultSpec()
	if !spec.Enabled() {
		return nil
	}
	var rng *rand.Rand
	if spec.HostMTBF > 0 || spec.LinkMTBF > 0 {
		rng = workload.Stream(s.cfg.Seed, faultStream)
	}
	var edges [][2]topology.NodeID
	if spec.HasLinkFaults() {
		edges = s.topoEdges()
	}
	timeline, err := spec.Timeline(s.topo.NumNodes(), edges, s.cfg.Duration, rng)
	if err != nil {
		return fmt.Errorf("sim: building fault timeline: %w", err)
	}
	for _, ev := range timeline {
		if ev.At > s.cfg.Duration {
			continue
		}
		ev := ev
		var fire func(now time.Duration)
		switch ev.Kind {
		case fault.HostDown:
			fire = func(now time.Duration) { s.failHost(now, ev.Node) }
		case fault.HostUp:
			fire = func(now time.Duration) { s.recoverHost(now, ev.Node) }
		case fault.LinkDown:
			s.haveLinkFaults = true
			fire = func(now time.Duration) { s.failLink(now, ev.A, ev.B) }
		case fault.LinkUp:
			s.haveLinkFaults = true
			fire = func(now time.Duration) { s.recoverLink(now, ev.A, ev.B) }
		}
		if err := s.engine.Schedule(ev.At, fire); err != nil {
			return fmt.Errorf("sim: scheduling fault event: %w", err)
		}
	}
	if s.haveLinkFaults {
		// Redirectors fail requests over to replicas whose forwarding path
		// is intact; when no recorded replica is reachable the request
		// fails (counted by dispatch).
		for _, red := range s.redirectors {
			loc := red.Location
			red.SetReachable(func(h topology.NodeID) bool {
				return s.net.PathUp(s.routes.Path(loc, h))
			})
		}
	}
	return nil
}

// failHost marks the node down, wipes the host's in-memory control state,
// and purges its replicas from every redirector. Objects left with zero
// recorded replicas open an outage window.
func (s *Simulation) failHost(now time.Duration, n topology.NodeID) {
	if s.down[n] {
		return
	}
	s.down[n] = true
	s.failures++
	s.hosts[n].OnCrash()
	for _, red := range s.redirectors {
		for _, id := range red.PurgeHost(n) {
			if red.ReplicaCount(id) == 0 {
				if s.outageStart == nil {
					s.outageStart = make(map[object.ID]time.Duration)
				}
				if _, open := s.outageStart[id]; !open {
					s.outageStart[id] = now
				}
			}
		}
	}
}

// recoverHost brings the node back and re-registers the replicas that
// survived on its disk, closing outage windows its replicas end.
func (s *Simulation) recoverHost(now time.Duration, n topology.NodeID) {
	if !s.down[n] {
		return
	}
	s.down[n] = false
	s.recoveries++
	h := s.hosts[n]
	h.OnRecover(now)
	for _, id := range h.Objects() {
		s.redirectorFor(id).NotifyReplicaChange(id, n, h.Affinity(id))
		if start, open := s.outageStart[id]; open {
			s.col.RecordOutageWindow(start, now)
			delete(s.outageStart, id)
		}
	}
}

// failLink cuts the undirected link a-b: traffic whose path crosses it is
// dropped until restoration (routing tables are immutable, so there is no
// rerouting — the model of a partition, not of convergence).
func (s *Simulation) failLink(_ time.Duration, a, b topology.NodeID) {
	if s.net.LinkIsDown(a, b) {
		return
	}
	s.net.SetLinkDown(a, b, true)
	s.linkFailures++
}

// recoverLink restores the undirected link a-b.
func (s *Simulation) recoverLink(_ time.Duration, a, b topology.NodeID) {
	if !s.net.LinkIsDown(a, b) {
		return
	}
	s.net.SetLinkDown(a, b, false)
	s.linkRecoveries++
}

// Down reports whether node n is currently failed.
func (s *Simulation) Down(n topology.NodeID) bool { return s.down[n] }
