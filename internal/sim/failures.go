package sim

import (
	"fmt"
	"time"

	"radar/internal/simevent"
	"radar/internal/topology"
)

// Failure schedules a hosting-server crash (the co-located router stays
// up, so routing is unaffected — a process failure, not a link cut). While
// down, the server accepts no requests and no replicas; its replicas are
// purged from the redirectors, so objects whose only copy lived there are
// unavailable until recovery. On recovery the host re-registers the
// replicas still on its disk.
//
// Failure handling is an extension beyond the paper (which targets
// performance, not availability, §1.1); it exercises the redirector's
// subset invariant and the placement protocol's reaction to lost
// capacity.
type Failure struct {
	// Node is the failing host.
	Node topology.NodeID
	// At is the crash time.
	At time.Duration
	// RecoverAt is the recovery time; zero means the host never returns.
	RecoverAt time.Duration
}

// validateFailures checks failure specs against the topology.
func (c *Config) validateFailures() error {
	for _, f := range c.Failures {
		if int(f.Node) < 0 || int(f.Node) >= c.Topo.NumNodes() {
			return fmt.Errorf("sim: failure names unknown node %d", f.Node)
		}
		if f.At < 0 {
			return fmt.Errorf("sim: failure time %v must be non-negative", f.At)
		}
		if f.RecoverAt != 0 && f.RecoverAt <= f.At {
			return fmt.Errorf("sim: recovery %v must follow failure %v", f.RecoverAt, f.At)
		}
	}
	return nil
}

// scheduleFailures arms the crash/recovery events.
func (s *Simulation) scheduleFailures() error {
	for _, f := range s.cfg.Failures {
		f := f
		if err := s.engine.Schedule(f.At, func(now time.Duration) { s.failHost(now, f.Node) }); err != nil {
			return err
		}
		if f.RecoverAt > 0 {
			var recover simevent.Event = func(now time.Duration) { s.recoverHost(now, f.Node) }
			if err := s.engine.Schedule(f.RecoverAt, recover); err != nil {
				return err
			}
		}
	}
	return nil
}

// failHost marks the node down and purges its replicas from every
// redirector.
func (s *Simulation) failHost(_ time.Duration, n topology.NodeID) {
	if s.down[n] {
		return
	}
	s.down[n] = true
	s.failures++
	for _, red := range s.redirectors {
		red.PurgeHost(n)
	}
}

// recoverHost brings the node back and re-registers the replicas that
// survived on its disk.
func (s *Simulation) recoverHost(_ time.Duration, n topology.NodeID) {
	if !s.down[n] {
		return
	}
	s.down[n] = false
	s.recoveries++
	h := s.hosts[n]
	for _, id := range h.Objects() {
		s.redirectorFor(id).NotifyReplicaChange(id, n, h.Affinity(id))
	}
}

// Down reports whether node n is currently failed.
func (s *Simulation) Down(n topology.NodeID) bool { return s.down[n] }
