package sim

import (
	"testing"
	"time"

	"radar/internal/consistency"
	"radar/internal/object"
	"radar/internal/protocol"
	"radar/internal/topology"
	"radar/internal/workload"
)

// testUniverse is scaled down (2000 objects) so integration tests stay
// fast; rates and thresholds are the paper's.
var testUniverse = object.Universe{Count: 2000, SizeBytes: 12 << 10}

func testConfig(t *testing.T, gen workload.Generator, dur time.Duration) Config {
	t.Helper()
	cfg := DefaultConfig(gen, 7)
	cfg.Universe = testUniverse
	cfg.Duration = dur
	return cfg
}

func mustRun(t *testing.T, cfg Config) *Results {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.InvariantsError != nil {
		t.Fatalf("invariants violated: %v", res.InvariantsError)
	}
	return res
}

func TestStaticBaselineServesEverything(t *testing.T) {
	gen, err := workload.NewUniform(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, gen, 5*time.Minute)
	cfg.DynamicPlacement = false
	res := mustRun(t, cfg)
	// 53 gateways x 40 req/s x 300 s = 636,000 requests offered; uniform
	// demand never overloads a server, so all are served, none time out.
	if res.TimedOutRequests != 0 {
		t.Errorf("timed out %d requests under uniform static load", res.TimedOutRequests)
	}
	if res.TotalServed < 600000 {
		t.Errorf("served %d requests, want ~636k", res.TotalServed)
	}
	if res.Counters.Requests == 0 {
		t.Error("no latency samples recorded")
	}
	if res.AvgReplicas != 1 {
		t.Errorf("static run grew replicas: %v", res.AvgReplicas)
	}
	if res.TotalMoves() != 0 {
		t.Errorf("static run relocated objects: %+v", res.Counters)
	}
	if res.OverheadPercent != 0 {
		t.Errorf("static overhead = %v%%, want 0", res.OverheadPercent)
	}
}

func TestDynamicReducesBandwidthHotPages(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	gen, err := workload.NewHotPages(testUniverse, 0.1, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	staticCfg := testConfig(t, gen, 5*time.Minute)
	staticCfg.DynamicPlacement = false
	static := mustRun(t, staticCfg)

	dynCfg := testConfig(t, gen, 25*time.Minute)
	dyn := mustRun(t, dynCfg)

	reduction := 100 * (static.BandwidthStats.Equilibrium - dyn.BandwidthStats.Equilibrium) /
		static.BandwidthStats.Equilibrium
	// The paper reports 62.9% for hot-pages at full scale; the scaled-down
	// fixture should still show a substantial reduction.
	if reduction < 30 {
		t.Errorf("bandwidth reduction = %.1f%%, want >= 30%%", reduction)
	}
	if dyn.LatencyStats.Equilibrium >= static.LatencyStats.Equilibrium {
		t.Errorf("latency did not improve: dynamic %v vs static %v",
			dyn.LatencyStats.Equilibrium, static.LatencyStats.Equilibrium)
	}
	if dyn.AvgReplicas <= 1.05 {
		t.Errorf("AvgReplicas = %v, want growth above 1", dyn.AvgReplicas)
	}
	if dyn.AvgReplicas > 8 {
		t.Errorf("AvgReplicas = %v: paper creates only a small number of extra replicas", dyn.AvgReplicas)
	}
	// Figure 7 claim: overhead below 2.5% of total traffic.
	if dyn.OverheadPercent > 2.5 {
		t.Errorf("overhead = %.2f%%, paper keeps it under 2.5%%", dyn.OverheadPercent)
	}
}

func TestHotSpotRemovalHotSites(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	gen, err := workload.NewHotSites(testUniverse, 53, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, gen, 45*time.Minute)
	res := mustRun(t, cfg)
	// Hot sites start far beyond server capacity; the protocol must
	// dissolve them: settled max load below the server capacity and near
	// the high watermark.
	if res.MaxLoadPeak < 150 {
		t.Errorf("max load peak = %v, expected initial hot spots near capacity", res.MaxLoadPeak)
	}
	if res.MaxLoadSettled > 120 {
		t.Errorf("settled max load = %v, want hot spots dissolved (paper: below hw)", res.MaxLoadSettled)
	}
	// Latency must collapse from the initial backlog regime.
	if res.LatencyStats.Equilibrium > 1 {
		t.Errorf("equilibrium latency = %vs, want sub-second after adjustment", res.LatencyStats.Equilibrium)
	}
	if res.LatencyStats.Initial < 2*res.LatencyStats.Equilibrium {
		t.Errorf("expected initial latency far above equilibrium, got %v vs %v",
			res.LatencyStats.Initial, res.LatencyStats.Equilibrium)
	}
}

func TestLoadEstimateSandwich(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	gen, err := workload.NewHotPages(testUniverse, 0.1, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, gen, 20*time.Minute)
	cfg.TrackedHost = 5
	res := mustRun(t, cfg)
	if len(res.HostLoad) < 10 {
		t.Fatalf("only %d host-load samples", len(res.HostLoad))
	}
	// Figure 8b: the actual load should (almost always) lie between the
	// lower and upper estimates; allow a small fraction of samples to
	// escape during transients.
	if frac := float64(res.SandwichViolations) / float64(len(res.HostLoad)); frac > 0.15 {
		t.Errorf("%.0f%% of samples escaped the estimate sandwich", 100*frac)
	}
}

func TestDeterminism(t *testing.T) {
	gen, err := workload.NewZipf(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Results {
		cfg := testConfig(t, gen, 4*time.Minute)
		return mustRun(t, cfg)
	}
	a, b := run(), run()
	if a.TotalServed != b.TotalServed {
		t.Errorf("TotalServed differs: %d vs %d", a.TotalServed, b.TotalServed)
	}
	if a.AvgReplicas != b.AvgReplicas {
		t.Errorf("AvgReplicas differs: %v vs %v", a.AvgReplicas, b.AvgReplicas)
	}
	if a.Counters != b.Counters {
		t.Errorf("counters differ:\n%+v\n%+v", a.Counters, b.Counters)
	}
	pa, oa := a.BandwidthStats, b.BandwidthStats
	if pa != oa {
		t.Errorf("bandwidth stats differ: %+v vs %+v", pa, oa)
	}
}

func TestSeedChangesRun(t *testing.T) {
	gen, err := workload.NewZipf(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	cfgA := testConfig(t, gen, 3*time.Minute)
	cfgB := testConfig(t, gen, 3*time.Minute)
	cfgB.Seed = 8888
	a := mustRun(t, cfgA)
	b := mustRun(t, cfgB)
	if a.BandwidthStats == b.BandwidthStats && a.Counters == b.Counters {
		t.Error("different seeds produced identical runs")
	}
}

func TestPoissonArrivals(t *testing.T) {
	gen, err := workload.NewUniform(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, gen, 4*time.Minute)
	cfg.PoissonArrivals = true
	res := mustRun(t, cfg)
	// Mean rate is preserved: ~53*40*240 = 508,800 requests +- noise.
	if res.TotalServed < 480000 || res.TotalServed > 540000 {
		t.Errorf("Poisson served = %d, want ~509k", res.TotalServed)
	}
}

func TestMultipleRedirectors(t *testing.T) {
	gen, err := workload.NewZipf(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, gen, 4*time.Minute)
	cfg.NumRedirectors = 4
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Redirectors()) != 4 {
		t.Fatalf("built %d redirectors, want 4", len(s.Redirectors()))
	}
	locs := make(map[topology.NodeID]bool)
	for _, r := range s.Redirectors() {
		locs[r.Location] = true
	}
	if len(locs) != 4 {
		t.Fatalf("redirectors share locations: %v", locs)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.InvariantsError != nil {
		t.Fatal(res.InvariantsError)
	}
	// Each redirector must have served requests (hash partitioning).
	for i, r := range s.Redirectors() {
		if r.ChooseCount() == 0 {
			t.Errorf("redirector %d served no requests", i)
		}
	}
}

func TestReplicateEverywhereBaseline(t *testing.T) {
	small := object.Universe{Count: 200, SizeBytes: 12 << 10}
	gen, err := workload.NewUniform(small)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(gen, 7)
	cfg.Universe = small
	cfg.Duration = 3 * time.Minute
	cfg.DynamicPlacement = false
	cfg.ReplicateEverywhere = true
	res := mustRun(t, cfg)
	if res.AvgReplicas != 53 {
		t.Fatalf("AvgReplicas = %v, want 53 (replica on every node)", res.AvgReplicas)
	}
}

func TestConsistencyGateCapsCategory3(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	gen, err := workload.NewHotPages(testUniverse, 0.1, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Everything non-commuting with a replica cap of 1: migrate-only.
	mgr, err := consistency.New(testUniverse, consistency.Mix{NonCommuting: 1}, 53, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, gen, 15*time.Minute)
	cfg.Consistency = mgr
	res := mustRun(t, cfg)
	if res.Counters.GeoReplications != 0 || res.Counters.LoadReplications != 0 {
		t.Errorf("replications happened despite migrate-only consistency: %+v", res.Counters)
	}
	if res.AvgReplicas != 1 {
		t.Errorf("AvgReplicas = %v, want 1 under migrate-only", res.AvgReplicas)
	}
	if res.Counters.GeoMigrations == 0 {
		t.Error("no migrations at all; placement seems inert")
	}
}

func TestPolicyBaselinesRun(t *testing.T) {
	gen, err := workload.NewZipf(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []protocol.Policy{protocol.PolicyRoundRobin, protocol.PolicyClosest} {
		cfg := testConfig(t, gen, 3*time.Minute)
		cfg.Policy = pol
		res := mustRun(t, cfg)
		if res.TotalServed == 0 {
			t.Errorf("policy %v served nothing", pol)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	gen, err := workload.NewUniform(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	mutations := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no workload", func(c *Config) { c.Workload = nil }},
		{"bad universe", func(c *Config) { c.Universe.Count = 0 }},
		{"bad protocol", func(c *Config) { c.Protocol.LowWatermark = 0 }},
		{"bad rate", func(c *Config) { c.NodeRequestRPS = 0 }},
		{"bad placement interval", func(c *Config) { c.PlacementInterval = 0 }},
		{"no redirectors", func(c *Config) { c.NumRedirectors = 0 }},
		{"bad duration", func(c *Config) { c.Duration = 0 }},
		{"bad bucket", func(c *Config) { c.MetricsBucket = 0 }},
		{"negative control bytes", func(c *Config) { c.ControlMsgBytes = -1 }},
		{"negative timeout", func(c *Config) { c.ClientTimeout = -time.Second }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			cfg := testConfig(t, gen, time.Minute)
			m.mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestRedirectorPlacedAtMinAvgDistance(t *testing.T) {
	gen, err := workload.NewUniform(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, gen, time.Minute)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := s.routes.MinAvgDistanceNode()
	if got := s.Redirectors()[0].Location; got != want {
		t.Fatalf("redirector at %v, want min-avg-distance node %v", got, want)
	}
}
