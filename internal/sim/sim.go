package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"radar/internal/metrics"
	"radar/internal/object"
	"radar/internal/protocol"
	"radar/internal/routing"
	"radar/internal/server"
	"radar/internal/simevent"
	"radar/internal/simnet"
	"radar/internal/store"
	"radar/internal/substrate"
	"radar/internal/topology"
	"radar/internal/workload"
)

// Simulation is one configured run. Build with New, execute with Run.
type Simulation struct {
	cfg    Config
	topo   *topology.Topology
	routes *routing.Table
	engine *simevent.Engine
	net    *simnet.Network
	col    *metrics.Collector

	servers []*server.Server
	hosts   []*protocol.Host
	stores  []store.ReplicaStore // one backend stack per host
	gen     workload.Generator

	redirectors []*protocol.Redirector
	rngs        []*rand.Rand // one request stream per gateway
	svcQueue    []reqFIFO    // deferred FCFS completions, one FIFO per server

	// Sharded-engine state (see shards.go). laneOf maps every node to its
	// execution lane; serial runs point every node at the single main lane,
	// whose sinks alias col/net above, so the per-request code is the same
	// in both modes. dispEng carries the generator/redirector dispatch
	// plane: the main engine when serial, a dedicated serial engine when
	// sharded.
	sharded   bool
	lanes     []*lane
	laneOf    []*lane
	disp      *lane
	dispEng   *simevent.Engine
	dispSeq   uint64
	shardOf   []int
	lookahead time.Duration

	droppedChoices    int64
	timedOut          int64
	updatesInjected   int64
	updatesPropagated int64

	down       []bool
	failures   int64
	recoveries int64

	// ctrl is the armed unreliable control plane; nil unless the fault
	// spec carries message-fault terms, so reliable runs keep the exact
	// inline control paths (bit-identical output).
	ctrl *ctrlState

	// Fault-injection state. haveLinkFaults arms the per-request severed-
	// path checks; it stays false in fault-free runs so the hot path is
	// bit-identical to a build without the fault subsystem.
	haveLinkFaults bool
	linkFailures   int64
	linkRecoveries int64
	repairByteHops int64
	// outageStart[id] is when object id lost its last recorded replica;
	// windows close on recovery (or at the horizon, in results).
	outageStart map[object.ID]time.Duration
}

// New builds a simulation from cfg. A nil cfg.Topo selects the
// reconstructed UUNET backbone. The topology and routing table come from
// the shared substrate cache (internal/substrate): every simulation over a
// structurally identical topology — including concurrent runs in an
// experiment suite — reads the same frozen instances instead of rebuilding
// its own.
func New(cfg Config) (*Simulation, error) {
	var sub *substrate.Substrate
	if cfg.Topo == nil {
		sub = substrate.UUNET()
		cfg.Topo = sub.Topo
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sub == nil {
		sub = substrate.Shared(cfg.Topo)
	}
	s := &Simulation{
		cfg:    cfg,
		topo:   cfg.Topo,
		engine: simevent.New(),
		gen:    cfg.Workload,
	}
	s.routes = sub.Routes
	col, err := metrics.New(cfg.MetricsBucket)
	if err != nil {
		return nil, err
	}
	col.Reserve(cfg.Duration)
	s.col = col
	s.net, err = simnet.New(cfg.Net, s.topo.NumNodes(), col)
	if err != nil {
		return nil, err
	}
	if err := s.buildRedirectors(); err != nil {
		return nil, err
	}
	if f := cfg.Protocol.ReplicaFloor; f > 1 {
		for _, red := range s.redirectors {
			red.SetReplicaFloor(f)
		}
	}
	if err := s.armCtrlPlane(); err != nil {
		return nil, err
	}
	s.stores, err = cfg.Store.BuildAll(s.topo.NumNodes(), store.Params{
		Seed:     cfg.Seed,
		Horizon:  cfg.Duration,
		ObjBytes: int64(cfg.Universe.SizeBytes),
	})
	if err != nil {
		return nil, err
	}
	if err := s.buildHosts(); err != nil {
		return nil, err
	}
	s.seedPlacement()
	n := s.topo.NumNodes()
	s.down = make([]bool, n)
	s.svcQueue = make([]reqFIFO, n)
	s.rngs = make([]*rand.Rand, n)
	for i := 0; i < n; i++ {
		s.rngs[i] = workload.Stream(cfg.Seed, uint64(i))
	}
	if err := s.initLanes(); err != nil {
		return nil, err
	}
	return s, nil
}

// buildRedirectors places cfg.NumRedirectors redirectors on the nodes with
// the smallest average hop distance (paper §6.1) and hash-partitions the
// object namespace among them.
func (s *Simulation) buildRedirectors() error {
	n := s.topo.NumNodes()
	if s.cfg.RedirectorAtHome {
		// One redirector per node; objects map to their home node's.
		s.redirectors = make([]*protocol.Redirector, n)
		for i := 0; i < n; i++ {
			r, err := protocol.NewRedirector(topology.NodeID(i), s.routes, s.cfg.Policy, s.cfg.Protocol.DistConstant)
			if err != nil {
				return err
			}
			s.redirectors[i] = r
		}
		return nil
	}
	k := s.cfg.NumRedirectors
	if k > n {
		k = n
	}
	type cand struct {
		id  topology.NodeID
		avg float64
	}
	cands := make([]cand, n)
	for i := 0; i < n; i++ {
		cands[i] = cand{topology.NodeID(i), s.routes.AvgDistance(topology.NodeID(i))}
	}
	// Selection by (avg, id): stable and deterministic.
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if cands[j].avg < cands[best].avg ||
				(cands[j].avg == cands[best].avg && cands[j].id < cands[best].id) {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}
	s.redirectors = make([]*protocol.Redirector, k)
	for i := 0; i < k; i++ {
		r, err := protocol.NewRedirector(cands[i].id, s.routes, s.cfg.Policy, s.cfg.Protocol.DistConstant)
		if err != nil {
			return err
		}
		s.redirectors[i] = r
	}
	return nil
}

// redirectorFor maps an object to its responsible redirector: its home
// node's under RedirectorAtHome, otherwise by hash partition.
func (s *Simulation) redirectorFor(id object.ID) *protocol.Redirector {
	if s.cfg.RedirectorAtHome {
		return s.redirectors[s.cfg.Universe.HomeNode(id, len(s.redirectors))]
	}
	return s.redirectors[int(id)%len(s.redirectors)]
}

func (s *Simulation) buildHosts() error {
	n := s.topo.NumNodes()
	s.servers = make([]*server.Server, n)
	s.hosts = make([]*protocol.Host, n)
	obs := &chargingObserver{s: s}
	var canReplicate func(object.ID, int) bool
	if s.cfg.Consistency != nil {
		canReplicate = s.cfg.Consistency.CanReplicate
	}
	for i := 0; i < n; i++ {
		weight := 1.0
		if s.cfg.HostWeights != nil {
			weight = s.cfg.HostWeights[i]
		}
		srvCfg := s.cfg.Server
		srvCfg.CapacityRPS *= weight
		srv, err := server.New(topology.NodeID(i), srvCfg)
		if err != nil {
			return err
		}
		s.servers[i] = srv
		env := protocol.Env{
			Routes: s.routes,
			RedirectorFor: func(id object.ID) protocol.RedirectorControl {
				if s.ctrl != nil {
					return s.lossyRedirectorFor(id)
				}
				return s.redirectorFor(id)
			},
			Peer: func(p topology.NodeID) *protocol.Host {
				if s.down[p] {
					return nil // failed hosts accept nothing
				}
				return s.hosts[p]
			},
			FindRecipient:    s.findRecipient,
			CopyObject:       s.copyObject,
			CanReplicate:     canReplicate,
			FindRepairTarget: s.findRepairTarget,
			Store:            s.stores[i],
			Observer:         obs,
		}
		if s.ctrl != nil {
			env.SendCreateObj = s.sendCreateObj
		}
		h, err := protocol.NewHost(topology.NodeID(i), s.cfg.Protocol.Weighted(weight), env, srv)
		if err != nil {
			return err
		}
		s.hosts[i] = h
	}
	return nil
}

// seedPlacement installs the paper's round-robin initial assignment
// (object i on node i mod N), or a full replica set everywhere for the
// full-replication ablation.
func (s *Simulation) seedPlacement() {
	n := s.topo.NumNodes()
	for i := 0; i < s.cfg.Universe.Count; i++ {
		id := object.ID(i)
		switch {
		case s.cfg.ReplicateEverywhere:
			for h := 0; h < n; h++ {
				s.hosts[h].SeedObject(id)
				s.stores[h].Create(0, id)
				s.redirectorFor(id).NotifyReplicaChange(id, topology.NodeID(h), 1)
			}
		case s.cfg.InitialPlacement != nil:
			for _, h := range s.cfg.InitialPlacement[i] {
				s.hosts[h].SeedObject(id)
				s.stores[h].Create(0, id)
				s.redirectorFor(id).NotifyReplicaChange(id, h, 1)
			}
		default:
			home := s.cfg.Universe.HomeNode(id, n)
			s.hosts[home].SeedObject(id)
			s.stores[home].Create(0, id)
			s.redirectorFor(id).NotifyReplicaChange(id, home, 1)
		}
	}
}

// findRecipient implements the offload-recipient lookup backed by the
// periodic load-report exchange of §4.2.2: the host with the least
// accept-side load strictly below the low watermark.
func (s *Simulation) findRecipient(exclude topology.NodeID) (topology.NodeID, bool) {
	best, bestLoad, found := topology.NodeID(0), 0.0, false
	for i := range s.hosts {
		id := topology.NodeID(i)
		if id == exclude || s.down[i] {
			continue
		}
		l := s.hosts[i].Estimator().LoadForAccept(s.servers[i].Load())
		// Compare against each host's own (weight-scaled) watermark, and
		// prefer the most relative headroom so strong hosts absorb more.
		lw := s.hosts[i].Params().LowWatermark
		rel := l / lw
		if l < lw && (!found || rel < bestLoad) {
			best, bestLoad, found = id, rel, true
		}
	}
	return best, found
}

// findRepairTarget locates a host for a replica-floor repair copy: the
// live host with the most relative headroom below its accept watermark
// that does not already hold the object. With the availability-aware
// objective armed (Params.AvailabilityWeight = w > 0) selection becomes
// refusal-aware in two ways that mirror the Repair accept path: the
// watermark is relaxed from lw toward hw by w (floor restoration may
// consume load-balancing headroom in proportion to the knob), and hosts
// whose acquisition-halt guard is active are skipped — their load
// estimate is stale-low, so the pure-headroom rule keeps electing them
// pass after pass and every such election is a guaranteed refusal that
// costs the object a full placement interval of single-copy exposure.
// Weight zero keeps the legacy selection byte-for-byte, halted electees
// and all.
func (s *Simulation) findRepairTarget(now time.Duration, id object.ID, from topology.NodeID) (topology.NodeID, bool) {
	w := s.cfg.Protocol.AvailabilityWeight
	best, bestRel, found := topology.NodeID(0), 0.0, false
	for i := range s.hosts {
		nid := topology.NodeID(i)
		if nid == from || s.down[i] || s.hosts[i].Has(id) {
			continue
		}
		if w > 0 && s.hosts[i].AcquisitionHalted(now) {
			continue
		}
		l := s.hosts[i].Estimator().LoadForAccept(s.servers[i].Load())
		p := s.hosts[i].Params()
		ceiling := p.LowWatermark + w*(p.HighWatermark-p.LowWatermark)
		rel := l / ceiling
		if l < ceiling && (!found || rel < bestRel) {
			best, bestRel, found = nid, rel, true
		}
	}
	return best, found
}

// copyObject charges an inter-host object transfer as protocol overhead.
func (s *Simulation) copyObject(now time.Duration, from, to topology.NodeID, _ object.ID) {
	s.net.Transfer(now, s.routes.Path(from, to), int64(s.cfg.Universe.SizeBytes), simnet.Overhead)
}

// chargeHandshake charges a request/response control message pair.
func (s *Simulation) chargeHandshake(now time.Duration, from, to topology.NodeID) {
	if s.cfg.ControlMsgBytes == 0 {
		return
	}
	s.net.ControlMessage(now, s.routes.Path(from, to), s.cfg.ControlMsgBytes)
	s.net.ControlMessage(now, s.routes.Path(to, from), s.cfg.ControlMsgBytes)
}

// chargeNotify charges a one-way notification from a host to the object's
// redirector.
func (s *Simulation) chargeNotify(now time.Duration, from topology.NodeID, id object.ID) {
	if s.cfg.ControlMsgBytes == 0 {
		return
	}
	red := s.redirectorFor(id)
	s.net.ControlMessage(now, s.routes.Path(from, red.Location), s.cfg.ControlMsgBytes)
}

// chargingObserver forwards protocol events to the metrics collector and
// charges the associated control traffic; it also keeps the consistency
// manager's primary tracking current. When the unreliable control plane is
// armed the handshake/notify charges are skipped: the plane already
// charged every message leg (including retries and duplicates) at its true
// send time, so charging here would double-count.
type chargingObserver struct {
	s *Simulation
}

func (o *chargingObserver) OnMigrate(now time.Duration, id object.ID, from, to topology.NodeID, kind protocol.MoveKind) {
	if o.s.ctrl == nil {
		o.s.chargeHandshake(now, from, to)
		o.s.chargeNotify(now, to, id)
	}
	if o.s.cfg.Consistency != nil {
		o.s.cfg.Consistency.OnMigrate(id, from, to)
	}
	o.s.col.OnMigrate(now, id, from, to, kind)
	if o.s.cfg.ExtraObserver != nil {
		o.s.cfg.ExtraObserver.OnMigrate(now, id, from, to, kind)
	}
}

func (o *chargingObserver) OnReplicate(now time.Duration, id object.ID, from, to topology.NodeID, kind protocol.MoveKind) {
	if o.s.ctrl == nil {
		o.s.chargeHandshake(now, from, to)
		o.s.chargeNotify(now, to, id)
	}
	if kind == protocol.RepairMove {
		// Re-replication traffic: the repair copy's bytes over its path.
		o.s.repairByteHops += int64(o.s.cfg.Universe.SizeBytes) * int64(o.s.routes.Distance(from, to))
	}
	o.s.col.OnReplicate(now, id, from, to, kind)
	if o.s.cfg.ExtraObserver != nil {
		o.s.cfg.ExtraObserver.OnReplicate(now, id, from, to, kind)
	}
}

func (o *chargingObserver) OnDrop(now time.Duration, id object.ID, host topology.NodeID) {
	if o.s.ctrl == nil {
		o.s.chargeNotify(now, host, id)
	}
	if o.s.cfg.Consistency != nil {
		reps := o.s.redirectorFor(id).Replicas(id)
		if len(reps) > 0 {
			o.s.cfg.Consistency.OnDrop(id, host, reps[0].Host)
		}
	}
	o.s.col.OnDrop(now, id, host)
	if o.s.cfg.ExtraObserver != nil {
		o.s.cfg.ExtraObserver.OnDrop(now, id, host)
	}
}

func (o *chargingObserver) OnRefuse(now time.Duration, id object.ID, from, to topology.NodeID, method protocol.Method) {
	if o.s.ctrl == nil {
		o.s.chargeHandshake(now, from, to)
	}
	o.s.col.OnRefuse(now, id, from, to, method)
	if o.s.cfg.ExtraObserver != nil {
		o.s.cfg.ExtraObserver.OnRefuse(now, id, from, to, method)
	}
}

func (o *chargingObserver) OnDefer(now time.Duration, id object.ID, from, to topology.NodeID, method protocol.Method) {
	o.s.col.OnDefer(now, id, from, to, method)
	if d, ok := o.s.cfg.ExtraObserver.(protocol.DeferralObserver); ok {
		d.OnDefer(now, id, from, to, method)
	}
}

// Run executes the simulation for cfg.Duration of virtual time and
// returns its results. Run must be called at most once.
func (s *Simulation) Run() (*Results, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cancellation: the engine polls ctx every few
// thousand events (microseconds of wall time), so canceling a long run
// returns promptly with ctx.Err() and no results. The poll does not
// perturb the event stream — a run that is never canceled is bit-identical
// to Run. RunContext must be called at most once.
func (s *Simulation) RunContext(ctx context.Context) (*Results, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := s.scheduleGenerators(); err != nil {
		return nil, err
	}
	if err := s.scheduleMeasurement(); err != nil {
		return nil, err
	}
	if s.cfg.DynamicPlacement {
		if err := s.schedulePlacement(); err != nil {
			return nil, err
		}
	}
	if err := s.scheduleCensus(); err != nil {
		return nil, err
	}
	if err := s.scheduleUpdates(); err != nil {
		return nil, err
	}
	if err := s.scheduleFaults(); err != nil {
		return nil, err
	}
	if err := s.scheduleReconcile(); err != nil {
		return nil, err
	}
	if sw := s.cfg.WorkloadSwitch; sw.To != nil {
		if err := s.engine.Schedule(sw.At, func(time.Duration) { s.gen = sw.To }); err != nil {
			return nil, fmt.Errorf("sim: scheduling workload switch: %w", err)
		}
	}
	if done := ctx.Done(); done != nil {
		poll := func() bool {
			select {
			case <-done:
				return true
			default:
				return false
			}
		}
		s.engine.SetInterrupt(0, poll)
		defer s.engine.SetInterrupt(0, nil)
		if s.dispEng != s.engine {
			s.dispEng.SetInterrupt(0, poll)
			defer s.dispEng.SetInterrupt(0, nil)
		}
	}
	if s.sharded {
		if err := s.runSharded(ctx); err != nil {
			return nil, err
		}
	} else {
		s.engine.Run(s.cfg.Duration)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.results(), nil
}

// scheduleGenerators starts one request stream per gateway. Every backbone
// node is a gateway (paper §6.1). Streams are phase-offset so the fleet
// does not fire in lockstep.
func (s *Simulation) scheduleGenerators() error {
	n := s.topo.NumNodes()
	for i := 0; i < n; i++ {
		g := topology.NodeID(i)
		rate := s.cfg.NodeRequestRPS
		if s.cfg.NodeRates != nil {
			rate = s.cfg.NodeRates[i]
		}
		if rate == 0 {
			continue
		}
		spacing := time.Duration(float64(time.Second) / rate)
		phase := spacing * time.Duration(i) / time.Duration(n)
		// schedAt tracks when this emit was (re)scheduled — the instant its
		// serial sequence number was assigned. Sharded runs stamp it onto
		// deliveries as the tie-breaking ParentAt (see shards.go).
		schedAt := time.Duration(0)
		var emit simevent.Event
		emit = func(now time.Duration) {
			s.dispatch(now, schedAt, g, s.gen.Next(g, s.rngs[g]))
			next := spacing
			if s.cfg.PoissonArrivals {
				next = time.Duration(s.rngs[g].ExpFloat64() * float64(spacing))
				if next <= 0 {
					next = time.Nanosecond
				}
			}
			if now+next <= s.cfg.Duration {
				schedAt = now
				// Rescheduling forward in time cannot fail.
				_ = s.dispEng.Schedule(now+next, emit)
			}
		}
		if err := s.dispEng.Schedule(phase, emit); err != nil {
			return fmt.Errorf("sim: scheduling generator %d: %w", i, err)
		}
	}
	return nil
}

// dispatch runs one request through the paper's pipeline: gateway ->
// redirector (UDP, latency only) -> chosen host (UDP) -> FCFS service ->
// response along the preference path back to the gateway. schedAt is the
// instant the calling emit event was scheduled; serial runs ignore it,
// sharded runs fold it into the delivery's ordering stamp.
func (s *Simulation) dispatch(t0, schedAt time.Duration, g topology.NodeID, id object.ID) {
	red := s.redirectorFor(id)
	if s.haveLinkFaults && !s.net.PathUp(s.routes.Path(g, red.Location)) {
		s.col.RecordFailedRequest(t0) // redirector unreachable: request lost
		return
	}
	t1 := s.net.ControlLatency(t0, s.routes.Distance(g, red.Location))
	h, err := red.ChooseReplica(g, id)
	if err != nil {
		// No replica to serve from: every copy was purged by crashes, or
		// the reachability filter excluded them all. Only faults produce
		// this, so the failed-request metric stays zero in fault-free runs.
		s.droppedChoices++
		s.col.RecordFailedRequest(t1)
		return
	}
	t2 := s.net.ControlLatency(t1, s.routes.Distance(red.Location, h))
	r := s.disp.newRequest()
	*r = request{s: s, g: g, h: h, id: id, t0: t0, phase: reqArrive}
	if !s.sharded {
		// Scheduling forward in time cannot fail.
		_ = s.engine.ScheduleHandler(t2, r)
		return
	}
	// Deliver into the chosen host's shard wheel. The stamp reconstructs
	// the serial engine's tie-breaking order: dispatch runs serially, so
	// dispSeq is exactly the order arrivals would have drawn sequence
	// numbers, and (t0, schedAt) resolves ties against shard-local events
	// stamped elsewhere. The wheel asserts t2 is outside the shard's
	// committed window — the lookahead invariant.
	s.dispSeq++
	s.laneOf[r.h].wheel.Push(t2, simevent.Stamp{
		SchedAt:  t0,
		ParentAt: schedAt,
		Plane:    simevent.PlaneDelivery,
		Seq:      s.dispSeq,
	}, r)
}

// scheduleMeasurement drives the periodic load measurement (paper §2.1):
// close every server's interval, retire estimates, and sample the
// Figure 8a/8b series.
func (s *Simulation) scheduleMeasurement() error {
	interval := s.cfg.Server.MeasurementInterval
	var tick simevent.Event
	tick = func(now time.Duration) {
		maxLoad := 0.0
		for i := range s.servers {
			start := s.servers[i].CloseInterval(now)
			s.hosts[i].OnMeasurementIntervalClose(start)
			if l := s.servers[i].Load(); l > maxLoad {
				maxLoad = l
			}
		}
		s.col.RecordMaxLoad(now, maxLoad)
		tracked := s.cfg.TrackedHost
		actual := s.servers[tracked].Load()
		lower, upper := s.hosts[tracked].Estimator().Bounds(actual)
		s.col.RecordHostLoad(now, actual, lower, upper)
		if now+interval <= s.cfg.Duration {
			_ = s.engine.Schedule(now+interval, tick)
		}
	}
	return s.engine.Schedule(interval, tick)
}

// schedulePlacement drives each host's periodic DecidePlacement. Hosts are
// staggered across the placement interval unless PlacementSynchronized.
func (s *Simulation) schedulePlacement() error {
	n := s.topo.NumNodes()
	interval := s.cfg.PlacementInterval
	for i := 0; i < n; i++ {
		h := s.hosts[i]
		offset := time.Duration(0)
		if !s.cfg.PlacementSynchronized {
			offset = interval * time.Duration(i) / time.Duration(n)
		}
		i := i
		var tick simevent.Event
		tick = func(now time.Duration) {
			if !s.down[i] {
				h.DecidePlacement(now)
			}
			if now+interval <= s.cfg.Duration {
				_ = s.engine.Schedule(now+interval, tick)
			}
		}
		if err := s.engine.Schedule(interval+offset, tick); err != nil {
			return fmt.Errorf("sim: scheduling placement for host %d: %w", i, err)
		}
	}
	return nil
}

// scheduleCensus samples the average replica count per object once per
// placement interval (Table 2's replica metric).
func (s *Simulation) scheduleCensus() error {
	interval := s.cfg.PlacementInterval
	floor := s.cfg.Protocol.ReplicaFloor
	var tick simevent.Event
	tick = func(now time.Duration) {
		if floor > 1 {
			// One pass yields both the average and the below-floor census;
			// below-floor object-seconds integrate count x interval.
			total, below := 0, 0
			for i := 0; i < s.cfg.Universe.Count; i++ {
				c := s.redirectorFor(object.ID(i)).ReplicaCount(object.ID(i))
				total += c
				if c < floor {
					below++
				}
			}
			s.col.RecordReplicaCensus(now, float64(total)/float64(s.cfg.Universe.Count))
			s.col.RecordBelowFloor(now, below, float64(below)*interval.Seconds())
		} else {
			s.col.RecordReplicaCensus(now, s.averageReplicas())
		}
		if now+interval <= s.cfg.Duration {
			_ = s.engine.Schedule(now+interval, tick)
		}
	}
	return s.engine.Schedule(interval, tick)
}

// averageReplicas returns the mean number of physical replicas per object.
func (s *Simulation) averageReplicas() float64 {
	total := 0
	for i := 0; i < s.cfg.Universe.Count; i++ {
		total += s.redirectorFor(object.ID(i)).ReplicaCount(object.ID(i))
	}
	return float64(total) / float64(s.cfg.Universe.Count)
}

// Hosts exposes the protocol hosts (read-only use by tests and tools).
func (s *Simulation) Hosts() []*protocol.Host { return s.hosts }

// Servers exposes the server models (read-only use by tests and tools).
func (s *Simulation) Servers() []*server.Server { return s.servers }

// Redirectors exposes the redirectors (read-only use by tests and tools).
func (s *Simulation) Redirectors() []*protocol.Redirector { return s.redirectors }

// Network exposes the network model (read-only use by tests and tools).
func (s *Simulation) Network() *simnet.Network { return s.net }

// CheckInvariants verifies cross-component invariants: the redirector's
// replica sets are subsets of what hosts actually hold with matching
// affinities, and every object retains at least one replica.
func (s *Simulation) CheckInvariants() error {
	for i := 0; i < s.cfg.Universe.Count; i++ {
		id := object.ID(i)
		reps := s.redirectorFor(id).Replicas(id)
		if len(reps) == 0 {
			// With faults configured an object whose only replica lived
			// on a downed host is legitimately unavailable.
			if s.faultsEnabled() {
				continue
			}
			return fmt.Errorf("sim: object %d has no replicas recorded", id)
		}
		for _, rep := range reps {
			if !s.hosts[rep.Host].Has(id) {
				return fmt.Errorf("sim: redirector lists replica of %d on host %d which lacks it", id, rep.Host)
			}
			if got := s.hosts[rep.Host].Affinity(id); got != rep.Aff {
				return fmt.Errorf("sim: object %d host %d affinity mismatch: redirector %d host %d", id, rep.Host, rep.Aff, got)
			}
		}
	}
	return nil
}

// trimSeries caps a series at the number of full buckets the run covers,
// dropping the trailing partial bucket (deliveries completing just past
// the horizon land there and would skew per-second rates).
func (s *Simulation) trimSeries(points []metrics.Point) []metrics.Point {
	full := int(s.cfg.Duration / s.cfg.MetricsBucket)
	if full < 1 {
		full = 1
	}
	if len(points) > full {
		return points[:full]
	}
	return points
}

// results assembles the run's outputs.
func (s *Simulation) results() *Results {
	// Fold shard lanes' commutative accumulators into the main sinks
	// before anything below reads them (no-op for serial runs).
	s.mergeLanes()
	// A final anti-entropy pass closes the run: any orphan or stale record
	// left by notifications lost since the last tick is healed before the
	// invariant check, mirroring what the next periodic pass would do.
	if s.ctrl != nil {
		s.reconcile(s.cfg.Duration)
	}
	// Close outage windows still open at the horizon so object-seconds of
	// unavailability are complete — in sorted object order, because the
	// windows accumulate into a floating-point sum and map iteration
	// order would otherwise leak into the result's low bits.
	if len(s.outageStart) > 0 {
		open := make([]object.ID, 0, len(s.outageStart))
		for id := range s.outageStart {
			open = append(open, id)
		}
		sort.Slice(open, func(i, j int) bool { return open[i] < open[j] })
		for _, id := range open {
			s.col.RecordOutageWindow(s.outageStart[id], s.cfg.Duration)
			delete(s.outageStart, id)
		}
	}
	r := &Results{
		WorkloadName:      s.cfg.Workload.Name(),
		Policy:            s.cfg.Policy,
		Dynamic:           s.cfg.DynamicPlacement,
		Duration:          s.cfg.Duration,
		Seed:              s.cfg.Seed,
		Bandwidth:         s.trimSeries(s.col.BandwidthSeries()),
		Latency:           s.trimSeries(s.col.LatencySeries()),
		LatencyP99:        s.trimSeries(s.col.LatencyQuantileSeries(0.99)),
		OverheadPct:       s.trimSeries(s.col.OverheadPercentSeries()),
		MaxLoad:           s.col.MaxLoadSeries(),
		HostLoad:          s.col.HostLoadSeries(),
		Replicas:          s.col.ReplicaSeries(),
		Counters:          s.col.Counters(),
		OverheadPercent:   s.col.OverheadPercent(),
		AvgReplicas:       s.averageReplicas(),
		DroppedChoices:    s.droppedChoices,
		TimedOutRequests:  s.timedOut,
		UpdatesInjected:   s.updatesInjected,
		UpdatesPropagated: s.updatesPropagated,
		Failures:          s.failures,
		Recoveries:        s.recoveries,
		FaultsEnabled:     s.faultsEnabled(),
		LinkFailures:      s.linkFailures,
		LinkRecoveries:    s.linkRecoveries,
		FailedRequests:    s.col.Counters().FailedRequests,
		FailedSeries:      s.trimSeries(s.col.FailedRequestSeries()),
		Outages:           s.col.Outages(),
		UnavailObjSecs:    s.col.UnavailableObjectSeconds(),
		BelowFloor:        s.col.BelowFloorSeries(),
		BelowFloorObjSecs: s.col.BelowFloorObjectSeconds(),
		RepairByteHops:    s.repairByteHops,
		HostStats:         make([]protocol.HostStats, len(s.hosts)),
		InvariantsError:   s.CheckInvariants(),
		TrackedHost:       s.cfg.TrackedHost,
		HighWatermark:     s.cfg.Protocol.HighWatermark,
		SandwichSlackRPS:  1e-9,
	}
	for i, h := range s.hosts {
		r.HostStats[i] = h.Stats
	}
	if s.ctrl != nil {
		r.CtrlEnabled = true
		r.CtrlStats = s.ctrl.plane.Stats()
		r.OrphansHealed = s.ctrl.orphansHealed
		r.StaleAffinityRepaired = s.ctrl.staleAffinity
		r.GhostsRemoved = s.ctrl.ghostsRemoved
		r.ReconcileRuns = s.ctrl.reconcileRuns
		r.ReconcileByteHops = s.ctrl.reconcileByteHops
	}
	r.StoreEnabled = !s.cfg.Store.IsDefault()
	r.StoreSpec = s.cfg.Store.String()
	r.StoreLayers = store.Aggregate(s.stores)
	r.BandwidthStats = metrics.Summarize(r.Bandwidth, 2)
	r.LatencyStats = metrics.Summarize(r.Latency, 2)
	r.AdjustmentTime, r.Adjusted = metrics.AdjustmentTime(r.Bandwidth, 1.10)
	r.MaxLoadPeak = metrics.MaxValue(r.MaxLoad)
	if len(r.MaxLoad) > 0 {
		tail := r.MaxLoad[len(r.MaxLoad)*3/4:]
		r.MaxLoadSettled = metrics.MaxValue(tail)
	}
	r.SandwichViolations = metrics.SandwichViolations(r.HostLoad, r.SandwichSlackRPS)
	maxQ := 0
	var totalServed int64
	for _, srv := range s.servers {
		if srv.MaxQueueLen() > maxQ {
			maxQ = srv.MaxQueueLen()
		}
		totalServed += srv.TotalServed()
	}
	r.MaxQueueLen = maxQ
	r.TotalServed = totalServed
	if math.IsNaN(r.BandwidthStats.ReductionPercent) {
		r.BandwidthStats.ReductionPercent = 0
	}
	return r
}
