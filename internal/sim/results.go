package sim

import (
	"time"

	"radar/internal/ctrlplane"
	"radar/internal/metrics"
	"radar/internal/protocol"
	"radar/internal/store"
	"radar/internal/topology"
)

// Results carries everything a run produces: the series behind each paper
// figure, the aggregates behind each table, protocol counters and
// invariant checks.
type Results struct {
	// Run identity.
	WorkloadName string
	Policy       protocol.Policy
	Dynamic      bool
	Duration     time.Duration
	Seed         int64

	// Figure 6 / Figure 9 series.
	Bandwidth []metrics.Point // byte-hops per second, per bucket
	Latency   []metrics.Point // mean seconds, per bucket
	// LatencyP99 is the per-bucket 99th-percentile latency estimate —
	// beyond the paper's averages; tail latency is where backlogs and
	// redirector detours show first.
	LatencyP99 []metrics.Point
	// Figure 7 series.
	OverheadPct []metrics.Point
	// Figure 8a series.
	MaxLoad []metrics.Point
	// Figure 8b series for TrackedHost.
	HostLoad    []metrics.HostLoadSample
	TrackedHost topology.NodeID
	// Replica census over time; AvgReplicas is the final census
	// (Table 2).
	Replicas    []metrics.Point
	AvgReplicas float64

	// Aggregates.
	BandwidthStats  metrics.SeriesStats
	LatencyStats    metrics.SeriesStats
	AdjustmentTime  time.Duration // Table 2
	Adjusted        bool
	OverheadPercent float64 // cumulative, Figure 7 headline
	MaxLoadPeak     float64
	// MaxLoadSettled is the maximum load over the final quarter of the
	// run — the Figure 8a claim is that it stays below the high
	// watermark once hot spots are dissolved.
	MaxLoadSettled float64
	HighWatermark  float64

	// Figure 8b verification: samples where the actual load escaped the
	// [lower, upper] estimate sandwich.
	SandwichViolations int
	SandwichSlackRPS   float64

	// Volume and protocol activity.
	TotalServed    int64
	MaxQueueLen    int
	DroppedChoices int64
	// TimedOutRequests counts requests abandoned due to ClientTimeout.
	TimedOutRequests int64
	// UpdatesInjected / UpdatesPropagated count §5 provider writes and
	// the primary-to-replica transfers that carried them.
	UpdatesInjected   int64
	UpdatesPropagated int64
	// Failures / Recoveries count executed host crash and recovery events.
	Failures   int64
	Recoveries int64

	// Availability metrics (fault injection). FaultsEnabled records
	// whether any fault source was configured; when false every field
	// below is zero and reports omit the availability section, keeping
	// fault-free output byte-identical to earlier builds.
	FaultsEnabled bool
	// LinkFailures / LinkRecoveries count executed link cut/restore events.
	LinkFailures   int64
	LinkRecoveries int64
	// FailedRequests counts requests lost to faults (crashed host, severed
	// path, no reachable replica); FailedSeries buckets them over time.
	FailedRequests int64
	FailedSeries   []metrics.Point
	// Outages counts zero-replica outage windows; UnavailObjSecs
	// integrates their object-seconds of unavailability.
	Outages        int64
	UnavailObjSecs float64
	// BelowFloor is the objects-below-replica-floor census;
	// BelowFloorObjSecs integrates time spent below the floor.
	BelowFloor        []metrics.Point
	BelowFloorObjSecs float64
	// RepairByteHops is the re-replication traffic spent restoring the
	// replica floor, in byte×hops.
	RepairByteHops int64

	// Unreliable control plane (message faults). CtrlEnabled records
	// whether drop/dup/cdelay terms armed the plane; when false every field
	// below is zero and reports omit the control-plane section, keeping
	// reliable-run output byte-identical to earlier builds.
	CtrlEnabled bool
	// CtrlStats snapshots the plane's RPC and notification counters.
	CtrlStats ctrlplane.Stats
	// OrphansHealed counts replicas re-registered by reconciliation after
	// their create-notify was lost; StaleAffinityRepaired counts recorded
	// affinities corrected; GhostsRemoved counts records erased for
	// replicas their host no longer held.
	OrphansHealed         int64
	StaleAffinityRepaired int64
	GhostsRemoved         int64
	// ReconcileRuns counts anti-entropy passes (including the final pass at
	// the horizon); ReconcileByteHops is their digest traffic in byte×hops.
	ReconcileRuns     int64
	ReconcileByteHops int64

	// Replica-storage backend stack. StoreEnabled records whether a
	// non-default stack was configured; the default unbounded memory
	// stack keeps it false and reports omit the storage section, keeping
	// default output byte-identical to earlier builds. StoreLayers is the
	// fleet-aggregated per-layer counter view (populated even for the
	// default stack; it then carries only serve counts).
	StoreEnabled bool
	StoreSpec    string
	StoreLayers  []store.LayerStats

	Counters  metrics.Counters
	HostStats []protocol.HostStats

	// InvariantsError is non-nil if the post-run invariant check failed.
	InvariantsError error
}

// TotalMoves returns the total number of migrations and replications.
func (r *Results) TotalMoves() int64 {
	c := r.Counters
	return c.GeoMigrations + c.GeoReplications + c.LoadMigrations + c.LoadReplications
}
