package sim

import (
	"testing"
	"time"

	"radar/internal/fault"
	"radar/internal/workload"
)

// lossyConfig builds a Zipf run with message faults armed.
func lossyConfig(t *testing.T, dur time.Duration, seed int64, drop float64) Config {
	t.Helper()
	gen, err := workload.NewZipf(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(gen, seed)
	cfg.Universe = testUniverse
	cfg.Duration = dur
	cfg.Protocol.ReplicaFloor = 2
	cfg.Faults = fault.Spec{MsgDrop: drop, MsgDup: 0.05, MsgDelay: 20 * time.Millisecond}
	return cfg
}

// TestPropertyCtrlZeroTermsBitIdentical: a fault spec whose message-fault
// terms are all zero (the parse of "drop:0") must not arm the control
// plane — the run stays byte-identical to one with no schedule at all.
// This is the subsystem's pay-for-what-you-use contract.
func TestPropertyCtrlZeroTermsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("integration runs")
	}
	gen, err := workload.NewZipf(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	base := testConfig(t, gen, 8*time.Minute)
	clean := mustRun(t, base)

	spec, err := fault.ParseSchedule("drop:0; dup:0; cdelay:0s")
	if err != nil {
		t.Fatal(err)
	}
	zeroed := testConfig(t, gen, 8*time.Minute)
	zeroed.Faults = spec
	zres := mustRun(t, zeroed)

	if zres.CtrlEnabled || clean.CtrlEnabled {
		t.Fatalf("CtrlEnabled = %v/%v, want false/false", zres.CtrlEnabled, clean.CtrlEnabled)
	}
	if clean.TotalServed != zres.TotalServed ||
		clean.Counters != zres.Counters ||
		clean.BandwidthStats != zres.BandwidthStats ||
		clean.LatencyStats != zres.LatencyStats ||
		clean.AvgReplicas != zres.AvgReplicas ||
		zres.CtrlStats != clean.CtrlStats ||
		zres.Counters.DeferredMoves != 0 {
		t.Errorf("zero-valued message-fault terms perturbed the run:\nclean %+v\nzeroed %+v", clean, zres)
	}
}

// TestPropertyCtrlInvariantAtReconcileBoundaries is the tentpole's safety
// property: under any message drop rate, the redirector invariant
// (recorded replica set ⊆ live replicas with matching affinities) holds at
// every reconciliation boundary. Mid-interval a lost decrement-notify may
// leave a stale recorded affinity, but each anti-entropy pass must fully
// heal the divergence — probes run 1ns after every pass and at the end.
func TestPropertyCtrlInvariantAtReconcileBoundaries(t *testing.T) {
	if testing.Short() {
		t.Skip("integration runs")
	}
	for _, drop := range []float64{0.05, 0.2, 0.5, 0.9} {
		cfg := lossyConfig(t, 10*time.Minute, 5, drop)
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if s.ctrl == nil {
			t.Fatalf("drop %v: control plane not armed", drop)
		}
		// Probes fire one nanosecond after each reconcile tick; the tick and
		// same-timestamp placement runs execute first (scheduled earlier), so
		// the probe observes the post-reconciliation state.
		interval := s.ctrl.plane.Params().ReconcileInterval
		var probeErr error
		probes := 0
		for at := interval + time.Nanosecond; at <= cfg.Duration; at += interval {
			if err := s.engine.Schedule(at, func(time.Duration) {
				probes++
				if e := s.CheckInvariants(); e != nil && probeErr == nil {
					probeErr = e
				}
			}); err != nil {
				t.Fatal(err)
			}
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if probes == 0 {
			t.Fatalf("drop %v: no reconcile-boundary probes fired", drop)
		}
		if probeErr != nil {
			t.Errorf("drop %v: invariant violated after a reconciliation pass: %v", drop, probeErr)
		}
		if res.InvariantsError != nil {
			t.Errorf("drop %v: final invariants: %v", drop, res.InvariantsError)
		}
		if !res.CtrlEnabled {
			t.Errorf("drop %v: results not flagged CtrlEnabled", drop)
		}
	}
}

// TestPropertyLossyRunDeterminism: a lossy-control-plane run is
// bit-identical across repeats for a fixed seed — message faults draw from
// their own reserved stream and must preserve the reproducibility contract.
func TestPropertyLossyRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("integration runs")
	}
	run := func() *Results {
		return mustRun(t, lossyConfig(t, 10*time.Minute, 3, 0.2))
	}
	a, b := run(), run()
	if a.TotalServed != b.TotalServed ||
		a.CtrlStats != b.CtrlStats ||
		a.OrphansHealed != b.OrphansHealed ||
		a.StaleAffinityRepaired != b.StaleAffinityRepaired ||
		a.GhostsRemoved != b.GhostsRemoved ||
		a.ReconcileByteHops != b.ReconcileByteHops ||
		a.Counters != b.Counters ||
		a.BandwidthStats != b.BandwidthStats ||
		a.LatencyStats != b.LatencyStats {
		t.Errorf("lossy runs with equal seeds diverge:\n%+v\nvs\n%+v", a, b)
	}
}

// TestCtrlLossAccountingConsistent exercises a heavily lossy run and pins
// the bookkeeping relations: lost handshakes defer placement moves (never
// silently drop them), deferred completions cannot exceed deferrals, the
// per-host counters agree with the collector's, and reconciliation both
// runs and heals.
func TestCtrlLossAccountingConsistent(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	cfg := lossyConfig(t, 10*time.Minute, 42, 0.2)
	cfg.Faults.MsgDup = 0.1
	res := mustRun(t, cfg)

	st := res.CtrlStats
	if st.Attempts == 0 || st.Retries == 0 || st.Timeouts == 0 || st.DroppedLegs == 0 || st.DupLegs == 0 {
		t.Fatalf("drop 0.2 produced no control-plane activity: %+v", st)
	}
	if st.Lost == 0 || st.NotifiesLost == 0 {
		t.Fatalf("drop 0.2 lost no RPCs/notifies: %+v", st)
	}
	var hostDeferred, hostCompleted, hostLost int64
	for _, hs := range res.HostStats {
		hostDeferred += hs.DeferredMoves
		hostCompleted += hs.DeferredCompleted
		hostLost += hs.CreateLost
	}
	if hostDeferred != res.Counters.DeferredMoves {
		t.Errorf("host deferral counters %d disagree with collector %d", hostDeferred, res.Counters.DeferredMoves)
	}
	if hostCompleted > hostDeferred {
		t.Errorf("%d deferred completions exceed %d deferrals", hostCompleted, hostDeferred)
	}
	if hostLost < hostDeferred {
		t.Errorf("%d deferrals exceed %d lost handshakes (every deferral needs a loss)", hostDeferred, hostLost)
	}
	if res.ReconcileRuns == 0 {
		t.Error("no reconciliation passes in a 10-minute run")
	}
	if st.NotifiesLost > 0 && res.OrphansHealed == 0 {
		t.Errorf("%d notifies lost but no orphans healed", st.NotifiesLost)
	}
	if res.ReconcileByteHops <= 0 {
		t.Errorf("reconciliation charged no digest traffic: %d", res.ReconcileByteHops)
	}
}
