package sim

import (
	"time"

	"radar/internal/consistency"
	"radar/internal/object"
	"radar/internal/simevent"
	"radar/internal/simnet"
	"radar/internal/topology"
	"radar/internal/workload"
)

// scheduleUpdates drives §5 provider-write injection: writes arrive at
// objects' primary copies at a fixed global rate and propagate to the
// other replicas asynchronously — immediately per write, or batched on a
// flush timer using the epidemic-style batching the paper references.
// Propagated bytes are charged as protocol overhead.
func (s *Simulation) scheduleUpdates() error {
	rate := s.cfg.Updates.RatePerSec
	if rate <= 0 {
		return nil
	}
	rng := workload.Stream(s.cfg.Seed, 0x0BDA7E5)
	spacing := time.Duration(float64(time.Second) / rate)

	var write simevent.Event
	write = func(now time.Duration) {
		id := object.ID(rng.Intn(s.cfg.Universe.Count))
		s.cfg.Consistency.Update(id)
		s.updatesInjected++
		if s.cfg.Updates.Mode == consistency.Immediate {
			s.flushUpdates(now, id)
		}
		if now+spacing <= s.cfg.Duration {
			_ = s.engine.Schedule(now+spacing, write)
		}
	}
	if err := s.engine.Schedule(spacing, write); err != nil {
		return err
	}

	if s.cfg.Updates.Mode == consistency.Batched {
		interval := s.cfg.Updates.BatchInterval
		var flush simevent.Event
		flush = func(now time.Duration) {
			// Flush every object with pending writes. Objects are visited
			// in ID order for determinism; Flush clears the pending set.
			for i := 0; i < s.cfg.Universe.Count; i++ {
				id := object.ID(i)
				if s.cfg.Consistency.Pending(id) > 0 {
					s.flushUpdates(now, id)
				}
			}
			if now+interval <= s.cfg.Duration {
				_ = s.engine.Schedule(now+interval, flush)
			}
		}
		if err := s.engine.Schedule(interval, flush); err != nil {
			return err
		}
	}
	return nil
}

// flushUpdates propagates an object's pending writes from its primary to
// every other recorded replica, charging one transfer per replica.
func (s *Simulation) flushUpdates(now time.Duration, id object.ID) {
	reps := s.redirectorFor(id).Replicas(id)
	hosts := make([]topology.NodeID, len(reps))
	for i, r := range reps {
		hosts[i] = r.Host
	}
	size := s.cfg.Updates.SizeBytes
	if size <= 0 {
		size = int64(s.cfg.Universe.SizeBytes)
	}
	for _, p := range s.cfg.Consistency.Flush(id, hosts) {
		s.net.Transfer(now, s.routes.Path(p.From, p.To), size, simnet.Overhead)
		s.updatesPropagated++
	}
}
