package sim

import (
	"testing"
	"time"

	"radar/internal/fault"
	"radar/internal/topology"
	"radar/internal/workload"
)

// faultedConfig builds a uniform-demand configuration with a replica
// floor, the canvas for the availability properties: uniform demand
// leaves most objects at a single replica, so crashes create real
// outages and the repair machinery has work to do.
func faultedConfig(t *testing.T, dur time.Duration, seed int64) Config {
	t.Helper()
	gen, err := workload.NewUniform(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(gen, seed)
	cfg.Universe = testUniverse
	cfg.Duration = dur
	cfg.Protocol.ReplicaFloor = 2
	return cfg
}

// TestPropertyOutageWindowsAccountForUnavailability is the subsystem's
// core safety property: under any fault schedule, every object either
// retains at least one live replica at all times, or the violation window
// is reported in the metrics. Externally that means the outage accounting
// is self-consistent — unavailable object-seconds exist exactly when
// outage windows were recorded, windows never outlive the run, and the
// invariant checker (which tolerates zero-replica objects only under
// faults) still passes.
func TestPropertyOutageWindowsAccountForUnavailability(t *testing.T) {
	if testing.Short() {
		t.Skip("integration runs")
	}
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		cfg := faultedConfig(t, 12*time.Minute, seed)
		cfg.Faults = fault.Spec{HostMTBF: 6 * time.Minute, HostMTTR: 90 * time.Second}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.InvariantsError != nil {
			t.Fatalf("seed %d: invariants: %v", seed, res.InvariantsError)
		}
		if (res.Outages == 0) != (res.UnavailObjSecs == 0) {
			t.Errorf("seed %d: outage accounting inconsistent: %d windows, %.0f object-seconds",
				seed, res.Outages, res.UnavailObjSecs)
		}
		// Windows are bounded by the run: no object can be unavailable
		// longer than every object for the whole horizon.
		maxObjSecs := float64(cfg.Universe.Count) * cfg.Duration.Seconds()
		if res.UnavailObjSecs < 0 || res.UnavailObjSecs > maxObjSecs {
			t.Errorf("seed %d: unavailable object-seconds %.0f outside [0, %.0f]",
				seed, res.UnavailObjSecs, maxObjSecs)
		}
		if res.Failures < res.Recoveries {
			t.Errorf("seed %d: %d recoveries exceed %d failures", seed, res.Recoveries, res.Failures)
		}
		// The floor triggers repair replication (initial placement homes a
		// single copy per object, so floor 2 forces repairs regardless of
		// the crash draw).
		if res.Counters.RepairReplications == 0 {
			t.Errorf("seed %d: no repair replications despite floor 2", seed)
		}
	}
}

// TestPropertyScriptedOutageExactness pins the accounting analytically.
// With dynamic placement off, replica sets are frozen at the initial
// homing, so crashing a host takes exactly its homed objects to zero
// replicas for exactly the downtime:
//
//   - a permanent crash yields k outage windows (k = objects homed on the
//     victim) of (horizon - crash) seconds each, closed at the horizon;
//   - the same crash with recovery yields the same k windows of exactly
//     the downtime.
func TestPropertyScriptedOutageExactness(t *testing.T) {
	if testing.Short() {
		t.Skip("integration runs")
	}
	const (
		dur     = 6 * time.Minute
		crashAt = 2 * time.Minute
		recover = 4 * time.Minute
	)
	victim := topology.NodeID(9)

	permanent := faultedConfig(t, dur, 7)
	permanent.Protocol.ReplicaFloor = 0 // no repair: outages must persist
	permanent.DynamicPlacement = false
	permanent.Faults = fault.Spec{Events: []fault.Event{
		{Kind: fault.HostDown, At: crashAt, Node: victim},
	}}
	resP := mustRun(t, permanent)
	k := resP.Outages
	if k == 0 {
		t.Fatal("no objects homed on the victim; test needs a different node")
	}
	wantP := float64(k) * (dur - crashAt).Seconds()
	if resP.UnavailObjSecs != wantP {
		t.Errorf("permanent crash: unavailable object-seconds = %v, want exactly %v (%d objects x %v)",
			resP.UnavailObjSecs, wantP, k, dur-crashAt)
	}

	recovered := faultedConfig(t, dur, 7)
	recovered.Protocol.ReplicaFloor = 0
	recovered.DynamicPlacement = false
	recovered.Faults = fault.Spec{Events: []fault.Event{
		{Kind: fault.HostDown, At: crashAt, Node: victim},
		{Kind: fault.HostUp, At: recover, Node: victim},
	}}
	resR := mustRun(t, recovered)
	if resR.Outages != k {
		t.Errorf("recovered crash: %d outage windows, want %d (same placement, same victim)", resR.Outages, k)
	}
	wantR := float64(k) * (recover - crashAt).Seconds()
	if resR.UnavailObjSecs != wantR {
		t.Errorf("recovered crash: unavailable object-seconds = %v, want exactly %v (%d objects x %v)",
			resR.UnavailObjSecs, wantR, k, recover-crashAt)
	}
	if resR.Recoveries != 1 || resP.Recoveries != 0 {
		t.Errorf("recoveries = %d/%d, want 1/0", resR.Recoveries, resP.Recoveries)
	}
}

// TestPropertyRepairReachesFloor: with a replica floor and no faults,
// repair replication lifts (nearly) every object to the floor. The floor
// is best-effort — acceptance still goes through the Fig. 4 load gating,
// so a saturated system can leave a residue below the floor — but the
// below-floor census must report that residue exactly: every object is
// either at the floor or counted.
func TestPropertyRepairReachesFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	cfg := faultedConfig(t, 8*time.Minute, 11)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.InvariantsError != nil {
		t.Fatalf("invariants: %v", res.InvariantsError)
	}
	below := 0
	for _, red := range s.Redirectors() {
		for _, id := range red.Objects() {
			if red.ReplicaCount(id) < 2 {
				below++
			}
		}
	}
	// Uniform demand keeps acceptors scarce (most hosts sit near the low
	// watermark), yet repair must still reach the floor for ≥99% of
	// objects within the run.
	if below > cfg.Universe.Count/100 {
		t.Errorf("%d of %d objects below floor 2 at end of run", below, cfg.Universe.Count)
	}
	if len(res.BelowFloor) == 0 {
		t.Fatal("no below-floor census recorded despite floor 2")
	}
	// The census is truthful: its final sample counts exactly the objects
	// still below the floor.
	if final := res.BelowFloor[len(res.BelowFloor)-1]; int(final.V) != below {
		t.Errorf("final below-floor census = %v, want %d (the objects actually below floor)", final.V, below)
	}
	if res.Counters.RepairReplications < int64(cfg.Universe.Count)*9/10 {
		t.Errorf("only %d repair replications for %d single-homed objects", res.Counters.RepairReplications, cfg.Universe.Count)
	}
}

// TestPropertyFaultedRunDeterminism: a nonzero-fault run is bit-identical
// across repeats for a fixed seed — the acceptance criterion that fault
// injection preserves the simulator's reproducibility contract.
func TestPropertyFaultedRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("integration runs")
	}
	run := func() *Results {
		cfg := faultedConfig(t, 10*time.Minute, 3)
		cfg.Faults = fault.Spec{
			Events: []fault.Event{
				{Kind: fault.HostDown, At: 3 * time.Minute, Node: 9},
				{Kind: fault.HostUp, At: 7 * time.Minute, Node: 9},
			},
			HostMTBF: 15 * time.Minute,
			HostMTTR: time.Minute,
		}
		return mustRun(t, cfg)
	}
	a, b := run(), run()
	if a.TotalServed != b.TotalServed ||
		a.FailedRequests != b.FailedRequests ||
		a.Outages != b.Outages ||
		a.UnavailObjSecs != b.UnavailObjSecs ||
		a.BelowFloorObjSecs != b.BelowFloorObjSecs ||
		a.RepairByteHops != b.RepairByteHops ||
		a.Failures != b.Failures ||
		a.Counters != b.Counters ||
		a.BandwidthStats != b.BandwidthStats ||
		a.LatencyStats != b.LatencyStats {
		t.Errorf("faulted runs with equal seeds diverge:\n%+v\nvs\n%+v", a, b)
	}
}

// TestPropertyFutureFaultsAreInert: a fault schedule whose every event
// lies beyond the horizon marks the run as faulted but must not perturb a
// single metric — the fault path is pay-for-what-fires.
func TestPropertyFutureFaultsAreInert(t *testing.T) {
	if testing.Short() {
		t.Skip("integration runs")
	}
	gen, err := workload.NewUniform(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	base := testConfig(t, gen, 6*time.Minute)
	clean := mustRun(t, base)

	faulted := testConfig(t, gen, 6*time.Minute)
	faulted.Faults = fault.Spec{Events: []fault.Event{
		{Kind: fault.HostDown, At: 7 * time.Minute, Node: 2},
	}}
	fres := mustRun(t, faulted)

	if !fres.FaultsEnabled || clean.FaultsEnabled {
		t.Fatalf("FaultsEnabled = %v/%v, want true/false", fres.FaultsEnabled, clean.FaultsEnabled)
	}
	if clean.TotalServed != fres.TotalServed ||
		clean.Counters != fres.Counters ||
		clean.BandwidthStats != fres.BandwidthStats ||
		clean.LatencyStats != fres.LatencyStats ||
		clean.AvgReplicas != fres.AvgReplicas ||
		fres.Failures != 0 || fres.FailedRequests != 0 || fres.Outages != 0 {
		t.Errorf("future-only fault schedule perturbed the run:\nclean %+v\nfaulted %+v", clean, fres)
	}
}
