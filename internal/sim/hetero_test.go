package sim

import (
	"testing"
	"time"

	"radar/internal/protocol"
	"radar/internal/workload"
)

func TestHostWeightsValidation(t *testing.T) {
	gen, err := workload.NewUniform(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, gen, time.Minute)
	cfg.HostWeights = []float64{1, 2} // wrong length
	if _, err := New(cfg); err == nil {
		t.Error("wrong-length weights accepted")
	}
	cfg = testConfig(t, gen, time.Minute)
	w := make([]float64, 53)
	for i := range w {
		w[i] = 1
	}
	w[5] = 0
	cfg.HostWeights = w
	if _, err := New(cfg); err == nil {
		t.Error("zero weight accepted")
	}
}

func TestHeterogeneousFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	gen, err := workload.NewHotPages(testUniverse, 0.1, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, gen, 15*time.Minute)
	weights := make([]float64, 53)
	for i := range weights {
		if i%2 == 0 {
			weights[i] = 2 // strong hosts
		} else {
			weights[i] = 0.5 // weak hosts
		}
	}
	cfg.HostWeights = weights
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Watermarks scale with weight.
	if got := s.Hosts()[0].Params().HighWatermark; got != 2*cfg.Protocol.HighWatermark {
		t.Fatalf("strong host hw = %v, want doubled", got)
	}
	if got := s.Hosts()[1].Params().LowWatermark; got != 0.5*cfg.Protocol.LowWatermark {
		t.Fatalf("weak host lw = %v, want halved", got)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.InvariantsError != nil {
		t.Fatal(res.InvariantsError)
	}
	// No weak host may settle above its own scaled high watermark; the
	// system still dissolves pressure with heterogeneous capacity.
	for i, srv := range s.Servers() {
		hw := s.Hosts()[i].Params().HighWatermark
		if srv.Load() > hw*1.3 {
			t.Errorf("host %d settled at %.1f, far above its scaled hw %.1f", i, srv.Load(), hw)
		}
	}
	// Strong hosts should end up holding more objects than weak ones on
	// average.
	strongObjs, weakObjs := 0, 0
	for i, h := range s.Hosts() {
		if i%2 == 0 {
			strongObjs += h.NumObjects()
		} else {
			weakObjs += h.NumObjects()
		}
	}
	if strongObjs <= weakObjs {
		t.Errorf("strong hosts hold %d objects vs weak %d; want more on strong", strongObjs, weakObjs)
	}
}

func TestStorageCapacityRefusals(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	gen, err := workload.NewHotPages(testUniverse, 0.1, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, gen, 15*time.Minute)
	// ~38 objects per host initially; a cap of 45 leaves little headroom.
	cfg.Protocol.StorageCapacity = 45
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.InvariantsError != nil {
		t.Fatal(res.InvariantsError)
	}
	var storageRefusals int64
	for _, hs := range res.HostStats {
		storageRefusals += hs.RefusedStorage
	}
	if storageRefusals == 0 {
		t.Error("tight storage produced no storage refusals")
	}
	for i, h := range s.Hosts() {
		if h.NumObjects() > 45 {
			t.Errorf("host %d stores %d objects, capacity 45", i, h.NumObjects())
		}
	}
	// Replication is throttled relative to the uncapped run but the
	// system still functions.
	if res.AvgReplicas <= 1 {
		t.Error("no replication at all under storage cap")
	}
}

func TestStorageCapAllowsAffinityIncrement(t *testing.T) {
	gen, err := workload.NewUniform(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, gen, time.Minute)
	cfg.Protocol.StorageCapacity = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Host 0 is full (its seeded objects exceed... cap=1 but seeding
	// ignores caps: the cap only guards CreateObj). An affinity increment
	// on an object it already has must still be accepted.
	h := s.Hosts()[0]
	objs := h.Objects()
	if len(objs) == 0 {
		t.Fatal("host 0 has no seeded objects")
	}
	if !h.CreateObj(time.Second, protocol.Replicate, objs[0], 0.1, 1, 1) {
		t.Fatal("affinity increment refused under storage cap")
	}
	if h.Affinity(objs[0]) != 2 {
		t.Fatalf("affinity = %d, want 2", h.Affinity(objs[0]))
	}
}
