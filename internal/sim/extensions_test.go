package sim

import (
	"testing"
	"time"

	"radar/internal/consistency"
	"radar/internal/topology"
	"radar/internal/workload"
)

func TestWorkloadSwitch(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	zipf, err := workload.NewZipf(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	regional, err := workload.NewRegional(testUniverse, topology.UUNET(), 0.01, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, zipf, 20*time.Minute)
	cfg.WorkloadSwitch.At = 10 * time.Minute
	cfg.WorkloadSwitch.To = regional
	res := mustRun(t, cfg)
	// After the switch the regional locality should pull bandwidth below
	// the Zipf-era level: final-quarter mean well under the level around
	// the switch point.
	around := 0.0
	for _, p := range res.Bandwidth {
		if p.T <= 10*time.Minute {
			around = p.V
		}
	}
	if res.BandwidthStats.Equilibrium >= around {
		t.Errorf("bandwidth eq %.3g not below switch-time level %.3g", res.BandwidthStats.Equilibrium, around)
	}
}

func TestUpdatePropagationImmediate(t *testing.T) {
	gen, err := workload.NewUniform(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := consistency.New(testUniverse, consistency.DefaultMix(), 53, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, gen, 4*time.Minute)
	cfg.Consistency = mgr
	cfg.Updates.RatePerSec = 5
	cfg.Updates.Mode = consistency.Immediate
	res := mustRun(t, cfg)
	// 5/s for 240s = ~1200 writes.
	if res.UpdatesInjected < 1100 || res.UpdatesInjected > 1300 {
		t.Errorf("UpdatesInjected = %d, want ~1200", res.UpdatesInjected)
	}
	// With mostly single-replica objects few propagations occur, but some
	// replicas exist by the end of the run.
	if res.UpdatesInjected == 0 {
		t.Fatal("no updates injected")
	}
}

func TestUpdatePropagationBatchedAmortizes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	gen, err := workload.NewHotPages(testUniverse, 0.1, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	run := func(mode consistency.PropagationMode) *Results {
		mgr, err := consistency.New(testUniverse, consistency.Mix{Static: 1}, 53, 1, 7)
		if err != nil {
			t.Fatal(err)
		}
		cfg := testConfig(t, gen, 15*time.Minute)
		cfg.Consistency = mgr
		cfg.Updates.RatePerSec = 50 // hot namespace: repeats hit the same objects
		cfg.Updates.Mode = mode
		cfg.Updates.BatchInterval = time.Minute
		cfg.Updates.SizeBytes = 1 << 10
		return mustRun(t, cfg)
	}
	imm := run(consistency.Immediate)
	bat := run(consistency.Batched)
	if imm.UpdatesInjected == 0 || bat.UpdatesInjected == 0 {
		t.Fatal("no updates injected")
	}
	// Batching must send no more propagation transfers than immediate
	// mode for the same write stream (multiple writes share a flush).
	if bat.UpdatesPropagated > imm.UpdatesPropagated {
		t.Errorf("batched propagated %d > immediate %d", bat.UpdatesPropagated, imm.UpdatesPropagated)
	}
}

func TestUpdateValidation(t *testing.T) {
	gen, err := workload.NewUniform(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, gen, time.Minute)
	cfg.Updates.RatePerSec = 1 // no consistency manager
	if _, err := New(cfg); err == nil {
		t.Error("updates without consistency accepted")
	}
	mgr, err := consistency.New(testUniverse, consistency.DefaultMix(), 53, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Consistency = mgr
	cfg.Updates.Mode = consistency.Batched // missing interval
	if _, err := New(cfg); err == nil {
		t.Error("batched mode without interval accepted")
	}
}

func TestHostFailureAndRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	gen, err := workload.NewUniform(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, gen, 12*time.Minute)
	victim := topology.NodeID(9)
	cfg.Failures = []Failure{{Node: victim, At: 3 * time.Minute, RecoverAt: 8 * time.Minute}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 1 || res.Recoveries != 1 {
		t.Fatalf("failures/recoveries = %d/%d, want 1/1", res.Failures, res.Recoveries)
	}
	if s.Down(victim) {
		t.Error("victim still down after recovery")
	}
	// Some requests were lost to the failure (sole-replica objects lived
	// on the victim under uniform demand).
	if res.DroppedChoices == 0 {
		t.Error("no requests observed the failure")
	}
	// After recovery the victim's replicas are routable again: invariant
	// check must pass with every object having at least one replica.
	if res.InvariantsError != nil {
		t.Fatalf("invariants: %v", res.InvariantsError)
	}
	for _, red := range s.Redirectors() {
		for _, id := range red.Objects() {
			if red.ReplicaCount(id) == 0 {
				t.Fatalf("object %d unavailable after recovery", id)
			}
		}
	}
}

func TestFailureValidation(t *testing.T) {
	gen, err := workload.NewUniform(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, gen, time.Minute)
	cfg.Topo = topology.UUNET()
	cfg.Failures = []Failure{{Node: 999, At: time.Second}}
	if _, err := New(cfg); err == nil {
		t.Error("failure on unknown node accepted")
	}
	cfg.Failures = []Failure{{Node: 1, At: 2 * time.Minute, RecoverAt: time.Minute}}
	if _, err := New(cfg); err == nil {
		t.Error("recovery before failure accepted")
	}
}

func TestPermanentFailureLeavesObjectsUnavailable(t *testing.T) {
	gen, err := workload.NewUniform(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, gen, 5*time.Minute)
	cfg.DynamicPlacement = false // nothing re-replicates
	victim := topology.NodeID(3)
	cfg.Failures = []Failure{{Node: victim, At: time.Minute}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Down(victim) {
		t.Fatal("victim recovered unexpectedly")
	}
	if res.DroppedChoices == 0 {
		t.Error("requests to dead sole replicas were not dropped")
	}
	// Invariants tolerate unavailable objects when failures are
	// configured.
	if res.InvariantsError != nil {
		t.Fatalf("invariants: %v", res.InvariantsError)
	}
}
