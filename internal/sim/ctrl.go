package sim

import (
	"fmt"
	"time"

	"radar/internal/ctrlplane"
	"radar/internal/object"
	"radar/internal/protocol"
	"radar/internal/topology"
	"radar/internal/workload"
)

// ctrlStream is the PRNG stream index reserved for control-message faults
// (drop/dup/cdelay draws, retry jitter). Gateways use streams
// 0..numNodes-1 and fault timelines use 1<<32, so a disjoint constant
// keeps control-plane randomness from perturbing either: arming message
// faults never changes request streams or crash timelines.
const ctrlStream uint64 = 1 << 33

// ctrlState is the armed unreliable-control-plane of one run. It exists
// only when the fault spec carries message-fault terms; a nil
// Simulation.ctrl means every control exchange resolves inline and
// reliably, byte-identical to a build without the subsystem.
type ctrlState struct {
	plane *ctrlplane.Plane
	// redirWrap[i] wraps redirectors[i] with lossy notification and
	// drop-arbitration legs; preallocated so Env.RedirectorFor returns an
	// existing pointer instead of allocating per call.
	redirWrap []lossyRedirector
	// execAt, while non-zero, is the virtual arrival time of the CreateObj
	// request currently executing on its callee: control messages the
	// callee sends from inside the handshake (its replica-change notify)
	// depart at that dilated time, not at the enclosing event's time.
	execAt time.Duration

	// Anti-entropy accounting.
	reconcileRuns     int64
	orphansHealed     int64
	staleAffinity     int64
	ghostsRemoved     int64
	reconcileByteHops int64
}

// armCtrlPlane builds the control plane when the merged fault spec has
// message-fault terms. Must run after the network and redirectors exist
// and before buildHosts (which wires Env.SendCreateObj and the lossy
// redirector wrappers).
func (s *Simulation) armCtrlPlane() error {
	spec := s.faultSpec()
	if !spec.HasMessageFaults() {
		return nil
	}
	faults := ctrlplane.Faults{Drop: spec.MsgDrop, Dup: spec.MsgDup, Delay: spec.MsgDelay}
	plane, err := ctrlplane.New(s.cfg.Ctrl, faults, workload.Stream(s.cfg.Seed, ctrlStream), s.ctrlTransport)
	if err != nil {
		return fmt.Errorf("sim: arming control plane: %w", err)
	}
	s.ctrl = &ctrlState{plane: plane}
	s.ctrl.redirWrap = make([]lossyRedirector, len(s.redirectors))
	for i, red := range s.redirectors {
		s.ctrl.redirWrap[i] = lossyRedirector{s: s, red: red}
	}
	return nil
}

// ctrlTransport delivers one control-message leg for the plane: charged
// over the routing path, stranded at the first severed link. A zero
// ControlMsgBytes charges nothing (matching the reliable path's "free
// control traffic" configuration) but still accrues propagation delay.
func (s *Simulation) ctrlTransport(now time.Duration, from, to topology.NodeID) (time.Duration, bool) {
	path := s.routes.Path(from, to)
	if s.cfg.ControlMsgBytes == 0 {
		if !s.net.PathUp(path) {
			return now, false
		}
		return s.net.ControlLatency(now, len(path)-1), true
	}
	return s.net.ControlMessageTo(now, path, s.cfg.ControlMsgBytes)
}

// ctrlNow is the departure time for a control message sent right now:
// the dilated CreateObj arrival time while a callee handler runs, the
// engine clock otherwise.
func (s *Simulation) ctrlNow() time.Duration {
	if s.ctrl.execAt != 0 {
		return s.ctrl.execAt
	}
	return s.engine.Now()
}

// sendCreateObj implements protocol.Env.SendCreateObj over the plane: the
// handshake becomes a retried request/reply RPC, and the callee handler
// runs under execAt so its own notifications depart at the request's true
// arrival time.
func (s *Simulation) sendCreateObj(now time.Duration, req protocol.CreateObjRequest, token uint64, exec func(at time.Duration) bool) (protocol.CreateObjStatus, uint64, time.Duration) {
	verdict, tok, doneAt, ok := s.ctrl.plane.Call(now, req.From, req.To, token, func(at time.Duration) bool {
		prev := s.ctrl.execAt
		s.ctrl.execAt = at
		res := exec(at)
		s.ctrl.execAt = prev
		return res
	})
	switch {
	case !ok:
		return protocol.CreateLost, tok, doneAt
	case verdict:
		return protocol.CreateAccepted, tok, doneAt
	default:
		return protocol.CreateRefused, tok, doneAt
	}
}

// lossyRedirectorFor is redirectorFor's armed twin: the same object ->
// redirector mapping, returning the preallocated lossy wrapper.
func (s *Simulation) lossyRedirectorFor(id object.ID) protocol.RedirectorControl {
	if s.cfg.RedirectorAtHome {
		return &s.ctrl.redirWrap[s.cfg.Universe.HomeNode(id, len(s.redirectors))]
	}
	return &s.ctrl.redirWrap[int(id)%len(s.redirectors)]
}

// lossyRedirector carries a host's redirector control traffic over the
// plane. Replica-change notifications are one-way fire-and-forget — a lost
// notify leaves an orphaned replica for reconciliation to heal. Drop
// arbitration is a full retried RPC; when it is lost the host
// conservatively keeps its replica (returning false), which at worst
// leaves an approved-but-unexecuted drop as an orphan record direction the
// reconciler also repairs. Replica counts are read directly: the paper's
// hosts already learn cluster state from the periodic load-report
// exchange, which this models.
type lossyRedirector struct {
	s   *Simulation
	red *protocol.Redirector
}

func (l *lossyRedirector) NotifyReplicaChange(id object.ID, host topology.NodeID, aff int) {
	l.s.ctrl.plane.Notify(l.s.ctrlNow(), host, l.red.Location, func(time.Duration) {
		l.red.NotifyReplicaChange(id, host, aff)
	})
}

func (l *lossyRedirector) RequestDrop(id object.ID, host topology.NodeID) bool {
	approved, _, _, ok := l.s.ctrl.plane.Call(l.s.ctrlNow(), host, l.red.Location, 0, func(time.Duration) bool {
		return l.red.RequestDrop(id, host)
	})
	return ok && approved
}

func (l *lossyRedirector) ReplicaCount(id object.ID) int {
	return l.red.ReplicaCount(id)
}

func (l *lossyRedirector) ReplicaHosts(id object.ID, buf []topology.NodeID) []topology.NodeID {
	// Read-through like ReplicaCount: replica-set knowledge rides the
	// periodic load-report exchange, not a per-query RPC.
	return l.red.ReplicaHosts(id, buf)
}

// scheduleReconcile arms the periodic anti-entropy pass.
func (s *Simulation) scheduleReconcile() error {
	if s.ctrl == nil {
		return nil
	}
	interval := s.ctrl.plane.Params().ReconcileInterval
	var tick func(now time.Duration)
	tick = func(now time.Duration) {
		s.reconcile(now)
		if now+interval <= s.cfg.Duration {
			_ = s.engine.Schedule(now+interval, tick)
		}
	}
	if err := s.engine.Schedule(interval, tick); err != nil {
		return fmt.Errorf("sim: scheduling reconciliation: %w", err)
	}
	return nil
}

// reconcile is one anti-entropy pass: every live host exchanges a replica
// digest with each redirector (modeled as a reliable TCP bulk sync, unlike
// the lossy per-message control RPCs) and the redirector's records are
// brought in line with ground truth — orphaned replicas whose
// create-notify was lost are registered, stale affinities from lost
// decrement-notifies are corrected, and ghost records of replicas their
// host no longer holds are erased. After a pass the redirector invariant
// (recorded replica set ⊆ live replicas, with matching affinities) holds
// for every object whose host is up.
func (s *Simulation) reconcile(now time.Duration) {
	c := s.ctrl
	c.reconcileRuns++
	// Digest round trips: one request/summary pair per live host per
	// redirector, charged reliably (reconciliation rides TCP, not the
	// lossy datagram legs).
	if s.cfg.ControlMsgBytes > 0 {
		for i := range s.hosts {
			if s.down[i] {
				continue
			}
			h := topology.NodeID(i)
			for _, red := range s.redirectors {
				d := int64(s.routes.Distance(h, red.Location))
				s.net.ControlMessage(now, s.routes.Path(h, red.Location), s.cfg.ControlMsgBytes)
				s.net.ControlMessage(now, s.routes.Path(red.Location, h), s.cfg.ControlMsgBytes)
				c.reconcileByteHops += 2 * s.cfg.ControlMsgBytes * d
			}
		}
	}
	// Host -> redirector direction: heal orphans and stale affinities.
	for i, h := range s.hosts {
		if s.down[i] {
			continue
		}
		for _, id := range h.Objects() {
			red := s.redirectorFor(id)
			aff := h.Affinity(id)
			rec, known := red.RecordedAffinity(id, topology.NodeID(i))
			switch {
			case !known:
				red.NotifyReplicaChange(id, topology.NodeID(i), aff)
				c.orphansHealed++
			case rec != aff:
				red.NotifyReplicaChange(id, topology.NodeID(i), aff)
				c.staleAffinity++
			}
		}
	}
	// Redirector -> host direction: erase records of replicas the host no
	// longer holds (defensive; message loss alone cannot produce these, but
	// the invariant is asserted, not assumed).
	for _, red := range s.redirectors {
		for _, id := range red.Objects() {
			for _, rep := range red.Replicas(id) {
				if !s.hosts[rep.Host].Has(id) {
					red.RemoveRecord(id, rep.Host)
					c.ghostsRemoved++
				}
			}
		}
	}
}
