package sim

import (
	"context"
	"fmt"
	"sort"
	"time"

	"radar/internal/metrics"
	"radar/internal/simevent"
	"radar/internal/simnet"
	"radar/internal/topology"
)

// Sharded event engine: conservative-lookahead intra-run parallelism with
// bit-identical results.
//
// The simulation's event population splits cleanly into three planes:
//
//   - The GLOBAL plane — measurement, placement, census, faults, workload
//     switches, anti-entropy reconciliation — reads and writes cross-host
//     state (redirector records, load reports, link status). It stays on
//     the serial engine.
//   - The DISPATCH plane — the per-gateway generators and the redirector
//     ChooseReplica step, which mutates redirector cursors and counters —
//     is inherently serial state shared by all gateways. It runs on its
//     own serial engine (s.dispEng).
//   - The SERVE plane — request arrival, FCFS completion, and response
//     delivery — touches only the chosen host's state (server queue,
//     store stack, host access records) plus commutative accumulators.
//     It is the hot plane (≥95% of events in request-heavy runs) and the
//     one that shards: hosts partition into lanes, each with its own
//     event wheel, metrics lane and network lane, executed concurrently.
//
// Virtual time advances in windows [T, end). Each window runs the global
// plane due at T, then the dispatch plane over [T, end) (serially,
// pushing arrival deliveries into target shard wheels), then all shard
// wheels over [T, end) in parallel, then a barrier that replays the
// shards' order-sensitive latency samples into the main collector in the
// canonical serial order. `end` is clamped to the next global event (so
// no global can fire inside a window and be observed late by dispatch or
// serve events) and optionally to T + ShardQuantum.
//
// Determinism. Serial event order is (time, seq) with seq assigned at
// scheduling time. Shard wheels order events by (time, Stamp) where
// Stamp = (SchedAt, ParentAt, Plane, Seq) records when the event — and,
// on ties, its scheduler — was scheduled (simevent.Stamp). Within a
// plane this reconstructs the serial seq order exactly: dispatch runs
// serially so delivery Seqs replicate arrival scheduling order, and a
// wheel's local events are stamped in its own pop order, which inductively
// matches the serial relative order. Across planes, ties deeper than
// (SchedAt, ParentAt) fall back to a fixed Plane order; on the
// simulator's discrete latency grids such ties do not arise, and the
// bit-identity property tests in shards_test.go check the end-to-end
// results are byte-for-byte equal to the serial engine's.
//
// Lookahead. The conservative bound W = (min cross-shard hop distance) ×
// HopDelay: any cross-shard interaction sent at t arrives no earlier than
// t+W (routing.Table.MinGroupDistance, computed once at freeze). The
// engine is in fact stricter than W requires — the only cross-shard
// channel is dispatcher→shard, and the dispatch phase of window k runs
// before the serve phase of window k — so windows of any length are safe.
// simevent.Wheel.Push still asserts the invariant at run time: a delivery
// timestamped inside a shard's committed window panics.

// lane is one shard's execution context: an event wheel over a subset of
// hosts, plus shard-local sinks for everything the serve plane writes —
// metrics lane, network lane, request pool, counters, and the
// order-sensitive latency log replayed at barriers. The serial engine
// uses a single degenerate lane (wheel == nil) whose sinks alias the
// simulation's own, which keeps request.Fire identical across modes.
type lane struct {
	s     *Simulation
	idx   int             // shard index; -1 for the serial main lane
	wheel *simevent.Wheel // nil selects the serial engine paths
	col   *metrics.Collector
	net   *simnet.Network

	reqFree []*request // shard-local request pool (drained at barriers)

	droppedChoices int64
	timedOut       int64

	latLog []latRec // this window's latency samples, in wheel pop order
	latPos int

	start chan time.Duration // window end; closed to stop the worker
	done  chan int
}

// latRec is one order-sensitive latency sample awaiting canonical replay:
// the wheel key (at, st) of the event that recorded it plus the sample.
type latRec struct {
	at      time.Duration
	st      simevent.Stamp
	deliver time.Duration
	lat     time.Duration
}

// newRequest takes a request from the lane's pool, or allocates one.
func (ln *lane) newRequest() *request {
	if n := len(ln.reqFree); n > 0 {
		r := ln.reqFree[n-1]
		ln.reqFree = ln.reqFree[:n-1]
		return r
	}
	return &request{}
}

// release returns a finished request to the lane's pool.
func (ln *lane) release(r *request) {
	ln.reqFree = append(ln.reqFree, r)
}

// scheduleCompletion enqueues a reserved FCFS completion: on the serial
// engine under its reserved sequence number, on a shard wheel under its
// reserved stamp. Completion times are >= the current event time by FCFS
// monotonicity, so neither path can fail.
func (ln *lane) scheduleCompletion(r *request) {
	if ln.wheel == nil {
		_ = ln.s.engine.ScheduleHandlerReserved(r.doneAt, r.seq, r)
		return
	}
	ln.wheel.Push(r.doneAt, r.stamp, r)
}

// recordLatency records an end-to-end latency sample. Latency aggregates
// are floating-point sums, so sample order matters for bit-identity;
// shard lanes log samples with their wheel keys and the barrier replays
// them into the main collector in canonical order.
func (ln *lane) recordLatency(deliver, lat time.Duration) {
	if ln.wheel == nil {
		ln.col.RecordLatency(deliver, lat)
		return
	}
	at, st := ln.wheel.Executing()
	ln.latLog = append(ln.latLog, latRec{at: at, st: st, deliver: deliver, lat: lat})
}

// run is the shard worker loop: one persistent goroutine per lane,
// executing one window per start message. The channel handoffs order all
// lane state against the coordinator, so the serve plane needs no other
// synchronization.
func (ln *lane) run() {
	for end := range ln.start {
		ln.done <- ln.wheel.RunBefore(end)
	}
}

// shardTarget resolves cfg.Shards to an effective shard count: -1 maps to
// the number of populated regions, and the count is clamped to the node
// count. Results < 2 select the serial engine.
func (s *Simulation) shardTarget() int {
	k := s.cfg.Shards
	if k == -1 {
		k = 0
		for _, r := range topology.Regions() {
			if len(s.topo.NodesInRegion(r)) > 0 {
				k++
			}
		}
	}
	if n := s.topo.NumNodes(); k > n {
		k = n
	}
	return k
}

// shardAssignments deterministically partitions the topology's nodes into
// k shards along region boundaries: populated regions (in canonical
// Regions() order) form the initial groups; while there are fewer groups
// than shards the largest group splits in half (keeping node-ID order);
// finally groups are bin-packed into k shards by longest-processing-time
// (largest group to least-loaded shard, all ties by lowest index/ID).
// Keeping regions whole maximizes the minimum cross-shard hop distance on
// region-sparse graphs, which maximizes the lookahead bound W.
func shardAssignments(topo *topology.Topology, k int) []int {
	var groups [][]topology.NodeID
	seen := make([]bool, topo.NumNodes())
	for _, r := range topology.Regions() {
		ids := topo.NodesInRegion(r)
		if len(ids) == 0 {
			continue
		}
		for _, id := range ids {
			seen[id] = true
		}
		groups = append(groups, ids)
	}
	// Nodes outside the canonical region list (none today) form one
	// trailing group rather than silently landing in shard 0.
	var rest []topology.NodeID
	for id, ok := range seen {
		if !ok {
			rest = append(rest, topology.NodeID(id))
		}
	}
	if len(rest) > 0 {
		groups = append(groups, rest)
	}
	for len(groups) < k {
		li, size := -1, 1
		for i, g := range groups {
			if len(g) > size {
				li, size = i, len(g)
			}
		}
		if li == -1 {
			break // all singletons: k was larger than the node count
		}
		g := groups[li]
		mid := len(g) / 2
		groups[li] = g[:mid]
		groups = append(groups, nil)
		copy(groups[li+2:], groups[li+1:])
		groups[li+1] = g[mid:]
	}
	order := make([]int, len(groups))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ga, gb := groups[order[a]], groups[order[b]]
		if len(ga) != len(gb) {
			return len(ga) > len(gb)
		}
		return ga[0] < gb[0] // group min-IDs are distinct, so this is total
	})
	assign := make([]int, topo.NumNodes())
	load := make([]int, k)
	for _, gi := range order {
		bin := 0
		for b := 1; b < k; b++ {
			if load[b] < load[bin] {
				bin = b
			}
		}
		for _, id := range groups[gi] {
			assign[id] = bin
		}
		load[bin] += len(groups[gi])
	}
	return assign
}

// initLanes wires the execution lanes. Serial runs get one main lane
// aliasing the simulation's own collector, network and pool; sharded runs
// additionally get one lane per shard and a dedicated dispatch engine,
// plus the frozen lookahead bound derived from the routing table.
func (s *Simulation) initLanes() error {
	main := &lane{s: s, idx: -1, col: s.col, net: s.net}
	s.disp = main
	s.dispEng = s.engine
	n := s.topo.NumNodes()
	s.laneOf = make([]*lane, n)
	for i := range s.laneOf {
		s.laneOf[i] = main
	}
	k := s.shardTarget()
	if k < 2 {
		return nil
	}
	s.sharded = true
	s.dispEng = simevent.New()
	s.shardOf = shardAssignments(s.topo, k)
	minHops, err := s.routes.MinCrossGroupDistance(s.shardOf, k)
	if err != nil {
		return fmt.Errorf("sim: computing shard lookahead: %w", err)
	}
	s.lookahead = time.Duration(minHops) * s.cfg.Net.HopDelay
	s.lanes = make([]*lane, k)
	for i := range s.lanes {
		col, err := metrics.New(s.cfg.MetricsBucket)
		if err != nil {
			return err
		}
		col.Reserve(s.cfg.Duration)
		ln := &lane{s: s, idx: i, wheel: simevent.NewWheel(), col: col}
		ln.net = s.net.Lane(col)
		s.lanes[i] = ln
	}
	for node, sh := range s.shardOf {
		s.laneOf[node] = s.lanes[sh]
	}
	return nil
}

// ShardCount reports the effective number of serve-plane shards (1 for
// the serial engine).
func (s *Simulation) ShardCount() int {
	if !s.sharded {
		return 1
	}
	return len(s.lanes)
}

// ShardOf exposes the node→shard assignment (nil for serial runs;
// read-only use by tests and tools).
func (s *Simulation) ShardOf() []int { return s.shardOf }

// Lookahead reports the frozen conservative lookahead bound W: the
// minimum virtual-time distance any cross-shard interaction covers. Zero
// for serial runs.
func (s *Simulation) Lookahead() time.Duration { return s.lookahead }

// runSharded executes the window/barrier loop described at the top of
// this file. It produces exactly the event executions of
// s.engine.Run(horizon) on the serial engine, in an order that differs
// only between provably independent events.
func (s *Simulation) runSharded(ctx context.Context) error {
	horizon := s.cfg.Duration
	quantum := s.cfg.ShardQuantum
	done := ctx.Done()
	for _, ln := range s.lanes {
		ln.start = make(chan time.Duration, 1)
		ln.done = make(chan int, 1)
		go ln.run()
	}
	defer func() {
		for _, ln := range s.lanes {
			close(ln.start)
		}
	}()
	var T time.Duration
	for {
		// Global plane due at T. Later globals bound the window below, so
		// none can fire between T and end.
		s.engine.Run(T)
		// Window end: the next global event, the quantum cap, or one step
		// past the horizon for the final window (serial Run(horizon) is
		// inclusive; RunBefore/Run(end-1) below are exclusive of end).
		end := horizon + time.Nanosecond
		if tg, ok := s.engine.PeekTime(); ok && tg < end {
			end = tg
		}
		if quantum > 0 && T+quantum < end {
			end = T + quantum
		}
		// Dispatch plane over [T, end): serial, pushes arrival deliveries
		// into target shard wheels under (time, Stamp) keys.
		s.dispEng.Run(end - time.Nanosecond)
		// Serve plane over [T, end): all shard wheels in parallel.
		for _, ln := range s.lanes {
			ln.start <- end
		}
		for _, ln := range s.lanes {
			<-ln.done
		}
		// Barrier: replay order-sensitive samples canonically, return
		// drained request pools to the dispatcher, observe cancellation.
		s.drainLatencyLogs()
		s.reclaimRequests()
		if done != nil {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		if end > horizon {
			return nil
		}
		T = end
	}
}

// drainLatencyLogs k-way merges the lanes' latency logs by (at, stamp,
// lane) — the canonical serial execution order — and replays them into
// the main collector, so its floating-point sums accumulate in exactly
// the serial order.
func (s *Simulation) drainLatencyLogs() {
	for {
		best := -1
		for i, ln := range s.lanes {
			if ln.latPos >= len(ln.latLog) {
				continue
			}
			if best == -1 {
				best = i
				continue
			}
			a := &ln.latLog[ln.latPos]
			b := &s.lanes[best].latLog[s.lanes[best].latPos]
			if a.at < b.at || (a.at == b.at && a.st.Less(b.st)) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		ln := s.lanes[best]
		rec := ln.latLog[ln.latPos]
		ln.latPos++
		s.col.RecordLatency(rec.deliver, rec.lat)
	}
	for _, ln := range s.lanes {
		ln.latLog = ln.latLog[:0]
		ln.latPos = 0
	}
}

// reclaimRequests hands shard-released requests back to the dispatcher's
// pool at each barrier, keeping steady-state allocation near zero without
// cross-goroutine pool contention inside a window.
func (s *Simulation) reclaimRequests() {
	for _, ln := range s.lanes {
		s.disp.reqFree = append(s.disp.reqFree, ln.reqFree...)
		ln.reqFree = ln.reqFree[:0]
	}
}

// mergeLanes folds every lane's commutative accumulators — metric
// buckets, network byte counters, failure counters — into the
// simulation-level sinks. Serial runs have nothing to fold (the main
// lane aliases the simulation's own sinks). Called exactly once, from
// results().
func (s *Simulation) mergeLanes() {
	for _, ln := range append([]*lane{s.disp}, s.lanes...) {
		s.droppedChoices += ln.droppedChoices
		s.timedOut += ln.timedOut
		if ln.col != s.col {
			s.col.MergeFrom(ln.col)
		}
		if ln.net != s.net {
			s.net.MergeFrom(ln.net)
		}
	}
}
