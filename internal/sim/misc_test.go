package sim

import (
	"strings"
	"testing"
	"time"

	"radar/internal/object"
	"radar/internal/topology"
	"radar/internal/trace"
	"radar/internal/workload"
)

func TestRedirectorAtHome(t *testing.T) {
	gen, err := workload.NewUniform(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, gen, 3*time.Minute)
	cfg.RedirectorAtHome = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Redirectors()); got != 53 {
		t.Fatalf("redirectors = %d, want one per node", got)
	}
	// Each object's redirector sits at its home node.
	for _, id := range []object.ID{0, 1, 52, 53, 777} {
		want := testUniverse.HomeNode(id, 53)
		if got := s.redirectorFor(id).Location; got != want {
			t.Fatalf("object %d redirector at %v, want home %v", id, got, want)
		}
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.InvariantsError != nil {
		t.Fatal(res.InvariantsError)
	}
	if res.TotalServed == 0 {
		t.Fatal("no requests served")
	}
}

func TestNodeRatesZeroSilencesGateway(t *testing.T) {
	gen, err := workload.NewUniform(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, gen, 2*time.Minute)
	rates := make([]float64, 53)
	rates[7] = 40 // only gateway 7 speaks
	cfg.NodeRates = rates
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 40 req/s x 120 s = 4800 requests, all from gateway 7.
	if res.TotalServed < 4700 || res.TotalServed > 4900 {
		t.Fatalf("TotalServed = %d, want ~4800", res.TotalServed)
	}
}

func TestNodeRatesValidation(t *testing.T) {
	gen, err := workload.NewUniform(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, gen, time.Minute)
	cfg.NodeRates = []float64{40}
	if _, err := New(cfg); err == nil {
		t.Error("wrong-length node rates accepted")
	}
	cfg = testConfig(t, gen, time.Minute)
	r := make([]float64, 53)
	r[3] = -1
	cfg.NodeRates = r
	if _, err := New(cfg); err == nil {
		t.Error("negative node rate accepted")
	}
}

func TestInitialPlacementValidation(t *testing.T) {
	gen, err := workload.NewUniform(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, gen, time.Minute)
	cfg.InitialPlacement = [][]topology.NodeID{{0}} // wrong length
	if _, err := New(cfg); err == nil {
		t.Error("short initial placement accepted")
	}
	cfg = testConfig(t, gen, time.Minute)
	placement := make([][]topology.NodeID, testUniverse.Count)
	for i := range placement {
		placement[i] = []topology.NodeID{topology.NodeID(i % 7)}
	}
	placement[5] = nil // empty replica set
	cfg.InitialPlacement = placement
	if _, err := New(cfg); err == nil {
		t.Error("empty per-object placement accepted")
	}
}

func TestInitialPlacementApplied(t *testing.T) {
	small := object.Universe{Count: 60, SizeBytes: 12 << 10}
	gen, err := workload.NewUniform(small)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(gen, 7)
	cfg.Universe = small
	cfg.Duration = time.Minute
	cfg.DynamicPlacement = false
	placement := make([][]topology.NodeID, small.Count)
	for i := range placement {
		placement[i] = []topology.NodeID{3, 40} // two replicas everywhere
	}
	cfg.InitialPlacement = placement
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgReplicas != 2 {
		t.Fatalf("AvgReplicas = %v, want 2", res.AvgReplicas)
	}
	for i := 0; i < small.Count; i++ {
		if !s.Hosts()[3].Has(object.ID(i)) || !s.Hosts()[40].Has(object.ID(i)) {
			t.Fatalf("object %d not placed per InitialPlacement", i)
		}
	}
}

func TestExtraObserverReceivesEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	gen, err := workload.NewHotPages(testUniverse, 0.1, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	w := trace.NewWriter(&buf)
	cfg := testConfig(t, gen, 8*time.Minute)
	cfg.ExtraObserver = w
	res := mustRun(t, cfg)
	if res.TotalMoves() == 0 {
		t.Fatal("no placement activity")
	}
	events, err := trace.Read(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	s := trace.Summarize(events)
	moves := int64(s.Migrations + s.Replications)
	if moves != res.TotalMoves() {
		t.Fatalf("trace recorded %d moves, metrics %d", moves, res.TotalMoves())
	}
	if int64(s.Refusals) != res.Counters.Refusals {
		t.Fatalf("trace refusals %d, metrics %d", s.Refusals, res.Counters.Refusals)
	}
}

func TestLinkContentionRun(t *testing.T) {
	small := object.Universe{Count: 500, SizeBytes: 12 << 10}
	gen, err := workload.NewUniform(small)
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultConfig(gen, 7)
	base.Universe = small
	base.Duration = 2 * time.Minute
	free, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	freeRes, err := free.Run()
	if err != nil {
		t.Fatal(err)
	}
	cont := base
	cont.Net.Contention = true
	c, err := New(cont)
	if err != nil {
		t.Fatal(err)
	}
	contRes, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Shared links can only slow responses down.
	if contRes.LatencyStats.Equilibrium < freeRes.LatencyStats.Equilibrium {
		t.Fatalf("contention latency %v below contention-free %v",
			contRes.LatencyStats.Equilibrium, freeRes.LatencyStats.Equilibrium)
	}
}

func TestSeriesTrimmedToFullBuckets(t *testing.T) {
	gen, err := workload.NewUniform(testUniverse)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, gen, 150*time.Second) // 2.5 buckets of 1 min
	res := mustRun(t, cfg)
	if len(res.Bandwidth) > 2 {
		t.Fatalf("bandwidth series has %d buckets, want <= 2 full buckets", len(res.Bandwidth))
	}
}
