// Package sim wires every substrate into the paper's event-driven
// simulation (§6.1): gateways generate client requests at a constant rate,
// a redirector (co-located with the minimum-average-distance node, or
// several with the URL namespace hash-partitioned) assigns each request to
// a replica, FCFS servers service them, responses travel the preference
// path consuming backbone bandwidth, and every host periodically runs the
// replica placement algorithm.
package sim

import (
	"errors"
	"fmt"
	"time"

	"radar/internal/consistency"
	"radar/internal/ctrlplane"
	"radar/internal/fault"
	"radar/internal/object"
	"radar/internal/protocol"
	"radar/internal/server"
	"radar/internal/simnet"
	"radar/internal/store"
	"radar/internal/topology"
	"radar/internal/workload"
)

// Config fully describes one simulation run. DefaultConfig reproduces
// Table 1.
type Config struct {
	// Seed drives all randomness; equal seeds give bit-identical runs.
	Seed int64
	// Topo is the backbone; nil means the reconstructed UUNET backbone.
	Topo *topology.Topology
	// Universe is the hosted object set (Table 1: 10,000 x 12 KB).
	Universe object.Universe
	// Protocol carries the placement/distribution parameters.
	Protocol protocol.Params
	// Server carries capacity and measurement interval.
	Server server.Config
	// Net carries hop delay, bandwidth and the contention switch.
	Net simnet.Config
	// NodeRequestRPS is each gateway's constant request rate (Table 1: 40).
	NodeRequestRPS float64
	// NodeRates, when non-nil, overrides NodeRequestRPS per gateway
	// (length must equal the node count; zero entries silence a gateway).
	// Real gateways differ in offered load; the paper's simulation uses a
	// uniform rate.
	NodeRates []float64
	// PoissonArrivals switches gateways from constant spacing (the
	// paper's model) to Poisson arrivals.
	PoissonArrivals bool
	// PlacementInterval is the placement decision frequency (Table 1:
	// 100 s). Hosts are staggered across the interval unless
	// PlacementSynchronized is set.
	PlacementInterval     time.Duration
	PlacementSynchronized bool
	// DynamicPlacement enables the paper's protocol; false freezes the
	// initial placement (the static/no-replication baseline).
	DynamicPlacement bool
	// Policy selects the request distribution algorithm.
	Policy protocol.Policy
	// NumRedirectors hash-partitions the URL namespace over the K nodes
	// with the smallest average hop distance (paper simulates 1).
	NumRedirectors int
	// RedirectorAtHome places one redirector per node and assigns each
	// object's redirector to the object's (initial) home node — a
	// per-object placement policy for the §6.1 future-work question of
	// redirector placement. Overrides NumRedirectors.
	RedirectorAtHome bool
	// ReplicateEverywhere seeds a replica of every object on every node —
	// the §4 strawman used by the full-replication ablation.
	ReplicateEverywhere bool
	// InitialPlacement, when non-nil, overrides the paper's round-robin
	// initial assignment with an explicit replica set per object (e.g.
	// the oracle's offline placement). Its length must equal
	// Universe.Count and every object needs at least one replica.
	InitialPlacement [][]topology.NodeID
	// Duration is the simulated time span.
	Duration time.Duration
	// MetricsBucket is the reporting series granularity.
	MetricsBucket time.Duration
	// TrackedHost is the node whose load estimates are sampled for the
	// Figure 8b trace.
	TrackedHost topology.NodeID
	// ControlMsgBytes sizes a control message (CreateObj handshake legs,
	// redirector notifications), charged as protocol overhead.
	ControlMsgBytes int64
	// ClientTimeout models clients abandoning slow requests: a request
	// that would wait longer than this in a server queue is dropped
	// ("servers normally drop messages or clients timeout before queues
	// build up", §6.1). Zero disables timeouts (unbounded backlog).
	ClientTimeout time.Duration
	// Consistency, when non-nil, gates category-3 replication and tracks
	// primaries (§5).
	Consistency *consistency.Manager
	// Updates, when Updates.RatePerSec > 0, injects provider writes
	// against random objects' primary copies and propagates them to
	// replicas asynchronously (§5): immediately per write, or batched
	// every Updates.BatchInterval. Requires Consistency.
	Updates UpdateConfig
	// Failures schedules host crash/recovery events (extension beyond
	// the paper; see Failure). Kept for backward compatibility; new code
	// should use Faults, which subsumes it.
	Failures []Failure
	// Faults is the deterministic fault-injection schedule: scripted
	// crash/recovery and link cut/restore events plus optional stochastic
	// MTBF/MTTR cycles drawn from the run's seed (a dedicated PRNG stream,
	// so enabling faults never perturbs the workload's randomness). The
	// zero value disables injection and leaves the run bit-identical to a
	// build without the fault subsystem.
	Faults fault.Spec
	// Store describes each host's replica-storage backend stack (see
	// internal/store). The zero value is the plain unbounded memory
	// stack, which keeps runs byte-identical to builds without the store
	// subsystem; non-default stacks charge per-read storage costs into
	// the FCFS servers and surface per-layer counters in Results.
	Store store.Spec
	// Ctrl tunes the unreliable control plane's RPC retry behavior and
	// reconciliation cadence. Only consulted when Faults carries message-
	// fault terms (drop/dup/cdelay); the zero value selects the documented
	// ctrlplane defaults.
	Ctrl ctrlplane.Params
	// Shards selects the sharded event engine: the node set is partitioned
	// into this many shards (along region boundaries) and request
	// service — arrival, FCFS completion, response delivery — runs
	// concurrently across shards between deterministic barriers, with
	// results bit-identical to the serial engine (see shards.go and
	// DESIGN.md). 0 and 1 select the serial engine (the default, and
	// byte-identical to builds without the sharding subsystem); -1 selects
	// one shard per populated region; values above the node count are
	// clamped. Sharding is incompatible with link contention and with the
	// consistency/update subsystem, whose cross-host feedback cannot be
	// partitioned.
	Shards int
	// ShardQuantum caps a sharded run's window length: shards synchronize
	// at least this often in virtual time (and always at global protocol
	// events — measurement, placement, census, faults, reconciliation —
	// which bound windows regardless). Zero, the default, lets windows run
	// to the next global event. Smaller quanta exercise the barrier more;
	// results are bit-identical at any quantum. Ignored by serial runs.
	ShardQuantum time.Duration
	// ExtraObserver, when non-nil, receives every placement protocol
	// event in addition to the metrics collector — e.g. a trace.Writer.
	ExtraObserver protocol.Observer
	// HostWeights gives each host a relative power factor (§2:
	// heterogeneity via per-host weights): host i gets weight x the
	// server capacity and weight-scaled watermarks. Nil means a
	// homogeneous fleet (the paper's setting); otherwise the length must
	// equal the node count and every weight must be positive.
	HostWeights []float64
	// Workload generates requests. Required.
	Workload workload.Generator
	// WorkloadSwitch, when WorkloadSwitch.To is non-nil, swaps the demand
	// generator at virtual time WorkloadSwitch.At — the demand-pattern
	// change whose adjustment the protocol is designed to track (§1).
	WorkloadSwitch struct {
		At time.Duration
		To workload.Generator
	}
}

// DefaultConfig returns the Table 1 configuration (low-load watermarks)
// with the given workload and seed. Topo defaults to the UUNET backbone
// at build time in New.
func DefaultConfig(gen workload.Generator, seed int64) Config {
	return Config{
		Seed:              seed,
		Universe:          object.Universe{Count: 10000, SizeBytes: 12 << 10},
		Protocol:          protocol.DefaultParams(),
		Server:            server.DefaultConfig(),
		Net:               simnet.DefaultConfig(),
		NodeRequestRPS:    40,
		PlacementInterval: 100 * time.Second,
		DynamicPlacement:  true,
		Policy:            protocol.PolicyPaper,
		NumRedirectors:    1,
		Duration:          40 * time.Minute,
		MetricsBucket:     time.Minute,
		TrackedHost:       0,
		ControlMsgBytes:   200,
		ClientTimeout:     60 * time.Second,
		Workload:          gen,
	}
}

// UpdateConfig describes provider-write injection (§5).
type UpdateConfig struct {
	// RatePerSec is the global provider write rate; writes target
	// uniformly random objects. The paper cites studies showing most Web
	// objects are rarely written, so realistic rates are small.
	RatePerSec float64
	// SizeBytes is the payload carried per propagated write batch; zero
	// defaults to the object size (full-object refresh).
	SizeBytes int64
	// Mode selects immediate or batched propagation.
	Mode consistency.PropagationMode
	// BatchInterval is the flush period in Batched mode.
	BatchInterval time.Duration
}

// ErrNoWorkload reports a Config without a workload generator.
var ErrNoWorkload = errors.New("sim: config needs a workload generator")

// ErrUpdatesNeedConsistency reports update injection without a
// consistency manager.
var ErrUpdatesNeedConsistency = errors.New("sim: update injection requires a consistency manager")

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Workload == nil {
		return ErrNoWorkload
	}
	if err := c.Universe.Validate(); err != nil {
		return err
	}
	if err := c.Protocol.Validate(); err != nil {
		return err
	}
	if err := c.Server.Validate(); err != nil {
		return err
	}
	if err := c.Net.Validate(); err != nil {
		return err
	}
	if c.NodeRequestRPS <= 0 {
		return fmt.Errorf("sim: node request rate %v must be positive", c.NodeRequestRPS)
	}
	if c.PlacementInterval <= 0 {
		return fmt.Errorf("sim: placement interval %v must be positive", c.PlacementInterval)
	}
	if c.NumRedirectors < 1 {
		return fmt.Errorf("sim: need at least one redirector, got %d", c.NumRedirectors)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("sim: duration %v must be positive", c.Duration)
	}
	if c.MetricsBucket <= 0 {
		return fmt.Errorf("sim: metrics bucket %v must be positive", c.MetricsBucket)
	}
	if c.ControlMsgBytes < 0 {
		return fmt.Errorf("sim: control message size %v must be non-negative", c.ControlMsgBytes)
	}
	if err := c.Ctrl.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if c.ClientTimeout < 0 {
		return fmt.Errorf("sim: client timeout %v must be non-negative", c.ClientTimeout)
	}
	if c.Shards < -1 {
		return fmt.Errorf("sim: shard count %d must be -1 (auto), 0/1 (serial) or >= 2", c.Shards)
	}
	if c.ShardQuantum < 0 {
		return fmt.Errorf("sim: shard quantum %v must be non-negative", c.ShardQuantum)
	}
	if c.Shards == -1 || c.Shards >= 2 {
		// The sharded engine partitions per-node state; subsystems with
		// un-partitionable cross-host feedback on the per-request path are
		// refused rather than silently run wrong.
		if c.Net.Contention {
			return fmt.Errorf("sim: sharded engine is incompatible with link contention (shared busy-until state)")
		}
		if c.Consistency != nil || c.Updates.RatePerSec > 0 {
			return fmt.Errorf("sim: sharded engine is incompatible with the consistency/update subsystem")
		}
	}
	if c.Updates.RatePerSec < 0 {
		return fmt.Errorf("sim: update rate %v must be non-negative", c.Updates.RatePerSec)
	}
	if c.Updates.RatePerSec > 0 {
		if c.Consistency == nil {
			return ErrUpdatesNeedConsistency
		}
		if c.Updates.Mode == consistency.Batched && c.Updates.BatchInterval <= 0 {
			return fmt.Errorf("sim: batched propagation needs a positive batch interval")
		}
		if c.Updates.Mode != consistency.Immediate && c.Updates.Mode != consistency.Batched {
			return fmt.Errorf("sim: unknown propagation mode %d", c.Updates.Mode)
		}
	}
	if c.InitialPlacement != nil {
		if len(c.InitialPlacement) != c.Universe.Count {
			return fmt.Errorf("sim: initial placement covers %d objects, universe has %d", len(c.InitialPlacement), c.Universe.Count)
		}
		for i, reps := range c.InitialPlacement {
			if len(reps) == 0 {
				return fmt.Errorf("sim: object %d has empty initial placement", i)
			}
		}
	}
	if c.Topo != nil {
		if err := c.validateFailures(); err != nil {
			return err
		}
		if err := c.Faults.Validate(c.Topo.NumNodes()); err != nil {
			return err
		}
		if c.NodeRates != nil {
			if len(c.NodeRates) != c.Topo.NumNodes() {
				return fmt.Errorf("sim: %d node rates for %d nodes", len(c.NodeRates), c.Topo.NumNodes())
			}
			for i, r := range c.NodeRates {
				if r < 0 {
					return fmt.Errorf("sim: node %d rate %v must be non-negative", i, r)
				}
			}
		}
		if c.HostWeights != nil {
			if len(c.HostWeights) != c.Topo.NumNodes() {
				return fmt.Errorf("sim: %d host weights for %d nodes", len(c.HostWeights), c.Topo.NumNodes())
			}
			for i, w := range c.HostWeights {
				if w <= 0 {
					return fmt.Errorf("sim: host %d weight %v must be positive", i, w)
				}
			}
		}
	}
	return nil
}
