package sim

import (
	"radar/internal/object"
	"radar/internal/simnet"
	"radar/internal/topology"
	"time"
)

// request carries one in-flight client request through its two scheduled
// hops: arrival at the chosen host and service completion. Requests
// implement simevent.Handler and are recycled through a free list, so the
// per-request hot path performs no heap allocations in steady state
// (closures scheduled per event were the simulator's dominant allocation
// source).
type request struct {
	s      *Simulation
	g      topology.NodeID // gateway the request entered at
	h      topology.NodeID // chosen replica host
	id     object.ID
	t0     time.Duration // entry time, for end-to-end latency
	doneAt time.Duration // reserved service completion time (reqDone phase)
	seq    uint64        // reserved engine sequence number (reqDone phase)
	phase  uint8
}

// Request phases.
const (
	reqArrive uint8 = iota // UDP forward reached the chosen host
	reqDone                // FCFS service completed
)

// reqFIFO is a ring buffer of deferred service completions for one server.
//
// An FCFS server's completion times are nondecreasing in admission order,
// and completions reserve their engine sequence numbers at admission, so a
// server's pending completions are already totally ordered by (at, seq).
// Only the head of each FIFO therefore needs to occupy the global event
// queue; the rest wait here. This keeps the event heap at ~one entry per
// server instead of one per queued request (tens of thousands when servers
// saturate), which removes most of the heap's sift cost and its backing
// memory. Fired heads push their successor while executing, which is early
// enough to preserve the engine's exact pop order (see
// simevent.ScheduleHandlerReserved).
type reqFIFO struct {
	buf  []*request // capacity is always a power of two
	head int
	len  int
}

func (q *reqFIFO) push(r *request) {
	if q.len == len(q.buf) {
		grown := make([]*request, max(2*len(q.buf), 64))
		for i := 0; i < q.len; i++ {
			grown[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
		}
		q.buf, q.head = grown, 0
	}
	q.buf[(q.head+q.len)&(len(q.buf)-1)] = r
	q.len++
}

func (q *reqFIFO) pop() *request {
	r := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.len--
	return r
}

func (q *reqFIFO) peek() *request {
	if q.len == 0 {
		return nil
	}
	return q.buf[q.head]
}

// newRequest takes a request from the pool, or allocates one.
func (s *Simulation) newRequest() *request {
	if n := len(s.reqFree); n > 0 {
		r := s.reqFree[n-1]
		s.reqFree = s.reqFree[:n-1]
		return r
	}
	return &request{}
}

// releaseRequest returns a finished request to the pool.
func (s *Simulation) releaseRequest(r *request) {
	s.reqFree = append(s.reqFree, r)
}

// Fire implements simevent.Handler.
func (r *request) Fire(now time.Duration) {
	s := r.s
	switch r.phase {
	case reqArrive:
		if s.down[r.h] {
			s.droppedChoices++ // chosen replica crashed in flight
			s.col.RecordFailedRequest(now)
			s.releaseRequest(r)
			return
		}
		if s.cfg.ClientTimeout > 0 && s.servers[r.h].QueueDelay(now) > s.cfg.ClientTimeout {
			s.timedOut++
			s.releaseRequest(r)
			return
		}
		// Reserve the completion's time and FIFO tie-break position at the
		// exact point it used to be scheduled, but defer the actual queue
		// insertion to the per-server FIFO (see reqFIFO). The storage
		// backend charges its per-read cost here, at admission, so the
		// stack's state (cache residency, outage windows) advances in
		// arrival order — a deterministic sequence.
		r.doneAt = s.servers[r.h].Enqueue(now, s.stores[r.h].ServeCost(now, r.id))
		r.phase = reqDone
		r.seq = s.engine.ReserveSeq()
		q := &s.svcQueue[r.h]
		q.push(r)
		if q.len == 1 {
			// Scheduling forward in time cannot fail.
			_ = s.engine.ScheduleHandlerReserved(r.doneAt, r.seq, r)
		}
	case reqDone:
		// This request is its server's stream head; promote the successor
		// into the event queue (its completion time is >= now by FCFS
		// monotonicity, so this cannot fail).
		q := &s.svcQueue[r.h]
		q.pop()
		if next := q.peek(); next != nil {
			_ = s.engine.ScheduleHandlerReserved(next.doneAt, next.seq, next)
		}
		if s.down[r.h] {
			// Host crashed while this request sat in its queue: the work
			// dies with the server; the client never hears back.
			s.col.RecordFailedRequest(now)
			s.releaseRequest(r)
			return
		}
		s.servers[r.h].OnServed(r.id)
		s.hosts[r.h].OnRequest(r.id, r.g)
		path := s.routes.PreferencePath(r.h, r.g)
		if s.haveLinkFaults && !s.net.PathUp(path) {
			// Response path severed: bytes never reach the gateway.
			s.col.RecordFailedRequest(now)
			s.releaseRequest(r)
			return
		}
		deliver := s.net.Transfer(now, path, int64(s.cfg.Universe.SizeBytes), simnet.Payload)
		s.col.RecordLatency(deliver, deliver-r.t0)
		s.releaseRequest(r)
	}
}
