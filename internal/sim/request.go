package sim

import (
	"radar/internal/object"
	"radar/internal/simevent"
	"radar/internal/simnet"
	"radar/internal/topology"
	"time"
)

// request carries one in-flight client request through its two scheduled
// hops: arrival at the chosen host and service completion. Requests
// implement simevent.Handler and are recycled through a free list, so the
// per-request hot path performs no heap allocations in steady state
// (closures scheduled per event were the simulator's dominant allocation
// source).
type request struct {
	s      *Simulation
	g      topology.NodeID // gateway the request entered at
	h      topology.NodeID // chosen replica host
	id     object.ID
	t0     time.Duration  // entry time, for end-to-end latency
	doneAt time.Duration  // reserved service completion time (reqDone phase)
	seq    uint64         // reserved engine sequence number (reqDone, serial)
	stamp  simevent.Stamp // reserved wheel stamp (reqDone, sharded)
	phase  uint8
}

// Request phases.
const (
	reqArrive uint8 = iota // UDP forward reached the chosen host
	reqDone                // FCFS service completed
)

// reqFIFO is a ring buffer of deferred service completions for one server.
//
// An FCFS server's completion times are nondecreasing in admission order,
// and completions reserve their engine sequence numbers at admission, so a
// server's pending completions are already totally ordered by (at, seq).
// Only the head of each FIFO therefore needs to occupy the global event
// queue; the rest wait here. This keeps the event heap at ~one entry per
// server instead of one per queued request (tens of thousands when servers
// saturate), which removes most of the heap's sift cost and its backing
// memory. Fired heads push their successor while executing, which is early
// enough to preserve the engine's exact pop order (see
// simevent.ScheduleHandlerReserved).
type reqFIFO struct {
	buf  []*request // capacity is always a power of two
	head int
	len  int
}

func (q *reqFIFO) push(r *request) {
	if q.len == len(q.buf) {
		grown := make([]*request, max(2*len(q.buf), 64))
		for i := 0; i < q.len; i++ {
			grown[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
		}
		q.buf, q.head = grown, 0
	}
	q.buf[(q.head+q.len)&(len(q.buf)-1)] = r
	q.len++
}

func (q *reqFIFO) pop() *request {
	r := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.len--
	return r
}

func (q *reqFIFO) peek() *request {
	if q.len == 0 {
		return nil
	}
	return q.buf[q.head]
}

// Fire implements simevent.Handler. Everything it touches is either
// state of the chosen host r.h (server queue, store stack, protocol
// records) or a sink on r.h's lane, which is what lets the sharded
// engine run hosts' serve planes concurrently (see shards.go). Serial
// runs take the ln.wheel == nil paths, which reproduce the original
// single-engine code exactly.
func (r *request) Fire(now time.Duration) {
	s := r.s
	ln := s.laneOf[r.h]
	switch r.phase {
	case reqArrive:
		if s.down[r.h] {
			ln.droppedChoices++ // chosen replica crashed in flight
			ln.col.RecordFailedRequest(now)
			ln.release(r)
			return
		}
		if s.cfg.ClientTimeout > 0 && s.servers[r.h].QueueDelay(now) > s.cfg.ClientTimeout {
			ln.timedOut++
			ln.release(r)
			return
		}
		// Reserve the completion's time and FIFO tie-break position at the
		// exact point it used to be scheduled, but defer the actual queue
		// insertion to the per-server FIFO (see reqFIFO). The storage
		// backend charges its per-read cost here, at admission, so the
		// stack's state (cache residency, outage windows) advances in
		// arrival order — a deterministic sequence.
		r.doneAt = s.servers[r.h].Enqueue(now, s.stores[r.h].ServeCost(now, r.id))
		r.phase = reqDone
		if ln.wheel == nil {
			r.seq = s.engine.ReserveSeq()
		} else {
			_, est := ln.wheel.Executing()
			r.stamp = simevent.Stamp{
				SchedAt:  now,
				ParentAt: est.SchedAt,
				Plane:    simevent.PlaneLocal,
				Seq:      ln.wheel.NextLocalSeq(),
			}
		}
		q := &s.svcQueue[r.h]
		q.push(r)
		if q.len == 1 {
			ln.scheduleCompletion(r)
		}
	case reqDone:
		// This request is its server's stream head; promote the successor
		// into the event queue (its completion time is >= now by FCFS
		// monotonicity, so this cannot fail).
		q := &s.svcQueue[r.h]
		q.pop()
		if next := q.peek(); next != nil {
			ln.scheduleCompletion(next)
		}
		if s.down[r.h] {
			// Host crashed while this request sat in its queue: the work
			// dies with the server; the client never hears back.
			ln.col.RecordFailedRequest(now)
			ln.release(r)
			return
		}
		s.servers[r.h].OnServed(r.id)
		s.hosts[r.h].OnRequest(r.id, r.g)
		path := s.routes.PreferencePath(r.h, r.g)
		if s.haveLinkFaults && !ln.net.PathUp(path) {
			// Response path severed: bytes never reach the gateway.
			ln.col.RecordFailedRequest(now)
			ln.release(r)
			return
		}
		deliver := ln.net.Transfer(now, path, int64(s.cfg.Universe.SizeBytes), simnet.Payload)
		ln.recordLatency(deliver, deliver-r.t0)
		ln.release(r)
	}
}
