package sim

import (
	"radar/internal/object"
	"radar/internal/simnet"
	"radar/internal/topology"
	"time"
)

// request carries one in-flight client request through its two scheduled
// hops: arrival at the chosen host and service completion. Requests
// implement simevent.Handler and are recycled through a free list, so the
// per-request hot path performs no heap allocations in steady state
// (closures scheduled per event were the simulator's dominant allocation
// source).
type request struct {
	s     *Simulation
	g     topology.NodeID // gateway the request entered at
	h     topology.NodeID // chosen replica host
	id    object.ID
	t0    time.Duration // entry time, for end-to-end latency
	phase uint8
}

// Request phases.
const (
	reqArrive uint8 = iota // UDP forward reached the chosen host
	reqDone                // FCFS service completed
)

// newRequest takes a request from the pool, or allocates one.
func (s *Simulation) newRequest() *request {
	if n := len(s.reqFree); n > 0 {
		r := s.reqFree[n-1]
		s.reqFree = s.reqFree[:n-1]
		return r
	}
	return &request{}
}

// releaseRequest returns a finished request to the pool.
func (s *Simulation) releaseRequest(r *request) {
	s.reqFree = append(s.reqFree, r)
}

// Fire implements simevent.Handler.
func (r *request) Fire(now time.Duration) {
	s := r.s
	switch r.phase {
	case reqArrive:
		if s.down[r.h] {
			s.droppedChoices++ // chosen replica crashed in flight
			s.releaseRequest(r)
			return
		}
		if s.cfg.ClientTimeout > 0 && s.servers[r.h].QueueDelay(now) > s.cfg.ClientTimeout {
			s.timedOut++
			s.releaseRequest(r)
			return
		}
		done := s.servers[r.h].Enqueue(now)
		r.phase = reqDone
		// Rescheduling forward in time cannot fail.
		_ = s.engine.ScheduleHandler(done, r)
	case reqDone:
		s.servers[r.h].OnServed(now, r.id)
		s.hosts[r.h].OnRequest(r.id, r.g)
		deliver := s.net.Transfer(now, s.routes.PreferencePath(r.h, r.g), int64(s.cfg.Universe.SizeBytes), simnet.Payload)
		s.col.RecordLatency(deliver, deliver-r.t0)
		s.releaseRequest(r)
	}
}
