package live

import (
	"fmt"
	"time"

	"radar/internal/ctrlplane"
	"radar/internal/protocol"
	"radar/internal/routing"
	"radar/internal/sim"
	"radar/internal/substrate"
	"radar/internal/topology"
)

// Config describes one live fleet. The simulation configuration is
// embedded whole — the same sim.Config drives both the simulator and the
// fleet, which is what lets the equivalence test hand one value to both
// sides — plus the live-only transport knobs.
type Config struct {
	// Sim is the run the fleet mirrors: topology, object universe,
	// protocol parameters, server model, request rates, intervals, policy,
	// redirector count, duration. A nil Sim.Topo selects the UUNET
	// backbone, like the simulator.
	Sim sim.Config

	// MaxInflightCreates caps concurrent CreateObj executions per node
	// (the buildbarn-style replication concurrency limit). Zero selects
	// DefaultMaxInflightCreates.
	MaxInflightCreates int

	// RPC tunes the control-plane client: per-attempt timeout, retry
	// budget, and backoff, reusing ctrlplane.Params (zero fields select
	// the ctrlplane defaults).
	RPC ctrlplane.Params

	// FreeRunning switches the fleet from driver-paced to self-scheduled
	// operation: nodes own wall-clock timers for their measurement,
	// placement, and census ticks, virtual time is wall time since node
	// start, and peer handlers answer busy (503, retried by the caller)
	// rather than block when a concurrent placement pass holds the node.
	// Verification shifts from sequence equality to invariants (package
	// live/check); driver-paced replay of the same Config is untouched.
	FreeRunning bool

	// FreeRun tunes the free-running timers; zero fields take defaults
	// derived from the simulation intervals.
	FreeRun FreeRun

	// RetryBudget arms the per-peer retry token bucket with this many
	// tokens (free-running mode defaults to DefaultRetryBudget). Zero
	// disables the budget — the driver-paced default, where retry cutoffs
	// would perturb the pinned schedule.
	RetryBudget int
}

// FreeRun groups the free-running mode's wall-clock timer periods. In
// free-running mode virtual time is wall time, so the defaults map the
// simulation's virtual intervals one-to-one onto real ones.
type FreeRun struct {
	// Measurement is the load-measurement interval (default:
	// Sim.Server.MeasurementInterval).
	Measurement time.Duration
	// Placement is the placement-pass interval (default:
	// Sim.PlacementInterval).
	Placement time.Duration
	// Census is the census/self-audit interval (default: Placement).
	Census time.Duration
	// Jitter is the fraction of each period by which ticks are randomly
	// advanced or delayed, in [0,1) (default DefaultFreeRunJitter), so a
	// fleet started in the same instant does not phase-lock its placement
	// passes.
	Jitter float64
}

// Free-running defaults.
const (
	DefaultRetryBudget   = 8
	DefaultFreeRunJitter = 0.1
)

// DefaultMaxInflightCreates is the per-node CreateObj concurrency limit
// when Config.MaxInflightCreates is zero.
const DefaultMaxInflightCreates = 4

// Normalized returns the configuration with every default resolved — the
// exact configuration a fleet, driver, or checker built from c will run
// with. Callers that need the resolved topology (to compute redirector
// locations, say) before constructing any of those should go through it.
func (c Config) Normalized() Config { return c.normalize() }

// normalize resolves defaults: the UUNET topology for a nil Topo, the
// ctrlplane RPC defaults, and the CreateObj concurrency default.
func (c Config) normalize() Config {
	if c.Sim.Topo == nil {
		c.Sim.Topo = substrate.UUNET().Topo
	}
	if c.MaxInflightCreates == 0 {
		c.MaxInflightCreates = DefaultMaxInflightCreates
	}
	c.RPC = c.RPC.WithDefaults()
	if c.FreeRunning {
		if c.FreeRun.Measurement == 0 {
			c.FreeRun.Measurement = c.Sim.Server.MeasurementInterval
		}
		if c.FreeRun.Placement == 0 {
			c.FreeRun.Placement = c.Sim.PlacementInterval
		}
		if c.FreeRun.Census == 0 {
			c.FreeRun.Census = c.FreeRun.Placement
		}
		if c.FreeRun.Jitter == 0 {
			c.FreeRun.Jitter = DefaultFreeRunJitter
		}
		if c.RetryBudget == 0 {
			c.RetryBudget = DefaultRetryBudget
		}
	}
	return c
}

// Validate rejects configurations the live fleet cannot run. Live mode
// deliberately supports the simulator's core surface — the paper's
// protocol over a real transport — and refuses the simulation-only
// subsystems (fault injection, storage stacks, consistency/updates,
// heterogeneous weights, alternate seeding modes): those model phenomena
// the simulator induces artificially, while a live fleet exhibits its own.
func (c Config) Validate() error {
	c = c.normalize()
	if err := c.Sim.Validate(); err != nil {
		return err
	}
	if c.MaxInflightCreates < 0 {
		return fmt.Errorf("live: negative MaxInflightCreates %d", c.MaxInflightCreates)
	}
	if err := c.RPC.Validate(); err != nil {
		return err
	}
	if c.RetryBudget < 0 {
		return fmt.Errorf("live: negative RetryBudget %d", c.RetryBudget)
	}
	if c.FreeRun.Measurement < 0 || c.FreeRun.Placement < 0 || c.FreeRun.Census < 0 {
		return fmt.Errorf("live: negative free-running interval")
	}
	if c.FreeRun.Jitter < 0 || c.FreeRun.Jitter >= 1 {
		return fmt.Errorf("live: free-running jitter %v outside [0,1)", c.FreeRun.Jitter)
	}
	switch {
	case c.Sim.Faults.Enabled() || c.Sim.Faults.HasMessageFaults() || len(c.Sim.Failures) > 0:
		return fmt.Errorf("live: fault injection is simulation-only (kill live nodes instead)")
	case !c.Sim.Store.IsDefault():
		return fmt.Errorf("live: replica-storage stacks are simulation-only")
	case c.Sim.Consistency != nil || c.Sim.Updates.RatePerSec > 0:
		return fmt.Errorf("live: consistency/update subsystem is simulation-only")
	case c.Sim.HostWeights != nil:
		return fmt.Errorf("live: host weights are simulation-only")
	case c.Sim.RedirectorAtHome || c.Sim.ReplicateEverywhere || c.Sim.InitialPlacement != nil:
		return fmt.Errorf("live: alternate seeding modes are simulation-only")
	case c.Sim.Net.Contention:
		return fmt.Errorf("live: link contention is simulation-only")
	}
	return nil
}

// RedirectorLocations reproduces the simulator's redirector placement
// (sim.buildRedirectors): the k nodes with the smallest average hop
// distance, selected by (avg, id). Every fleet member and the driver
// compute the same list from the shared routing table, so the object ->
// redirector partition needs no coordination.
func RedirectorLocations(routes *routing.Table, k int) []topology.NodeID {
	n := routes.NumNodes()
	if k > n {
		k = n
	}
	type cand struct {
		id  topology.NodeID
		avg float64
	}
	cands := make([]cand, n)
	for i := 0; i < n; i++ {
		cands[i] = cand{topology.NodeID(i), routes.AvgDistance(topology.NodeID(i))}
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if cands[j].avg < cands[best].avg ||
				(cands[j].avg == cands[best].avg && cands[j].id < cands[best].id) {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}
	out := make([]topology.NodeID, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].id
	}
	return out
}

// eventKind maps an observer callback to its wire event kind.
func moveEvent(kind string, at int64, id int64, from, to int, mv protocol.MoveKind) Event {
	return Event{At: at, Kind: kind, Object: id, From: from, To: to, Move: mv.String()}
}
