// Package check is the free-running mode's verification instrument: a
// continuous invariant checker that scrapes a live fleet's census and
// stats endpoints and asserts the properties that replace sequence
// equality once nodes self-schedule. Driver-paced runs are verified by
// byte-identity with the simulator; free-running runs are verified here —
// watermark bounds hold within a convergence budget, the replica floor is
// repaired after recoveries, no object is lost, counters only move
// forward within a boot, and request failures stay confined to crash
// windows.
//
// The checker learns about crashes through NoteKill/NoteRestart (it
// satisfies chaos.Observer), so everything that goes wrong while a node
// is legitimately dead — unreachable scrapes, failed requests, a sagging
// floor — is excused until the convergence budget after recovery runs
// out.
package check

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"radar/internal/live"
	"radar/internal/topology"
)

// Config tunes the checker.
type Config struct {
	// URLs are the fleet's node base URLs, indexed by node ID.
	URLs []string
	// Redirectors are the nodes whose census endpoints own objects
	// (live.RedirectorLocations).
	Redirectors []topology.NodeID
	// Interval is the scrape period (default 250ms).
	Interval time.Duration
	// Convergence is the budget within which a violated bound must heal:
	// a below-floor or zero-replica census older than this (outside crash
	// windows) is a violation, as is a request failure later than this
	// after the last recovery. Default 5s.
	Convergence time.Duration
	// MaxUnreachable is how many consecutive failed scrapes of a node not
	// in a crash window count as a violation (default 4).
	MaxUnreachable int
}

func (c Config) withDefaults() Config {
	if c.Interval == 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.Convergence == 0 {
		c.Convergence = 5 * time.Second
	}
	if c.MaxUnreachable == 0 {
		c.MaxUnreachable = 4
	}
	return c
}

// Violation is one observed invariant breach.
type Violation struct {
	// At is when the checker observed it.
	At time.Time
	// Rule names the violated invariant.
	Rule string
	// Node is the implicated node, -1 for fleet-wide rules.
	Node int
	// Detail explains the observation.
	Detail string
}

func (v Violation) String() string {
	if v.Node >= 0 {
		return fmt.Sprintf("[%s] node %d: %s", v.Rule, v.Node, v.Detail)
	}
	return fmt.Sprintf("[%s] %s", v.Rule, v.Detail)
}

// Rule names.
const (
	RuleBelowFloor  = "replica-floor"
	RuleLostObject  = "lost-object"
	RuleOverMax     = "replica-ceiling"
	RuleCounter     = "counter-monotone"
	RuleUnreachable = "unreachable"
	RuleFailures    = "failure-confinement"
)

// Report is the checker's verdict: every violation observed, plus the
// scrape count as evidence the checker actually ran.
type Report struct {
	Scrapes    int
	Violations []Violation
}

// OK reports a clean run.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

func (r *Report) String() string {
	if r.OK() {
		return fmt.Sprintf("check: OK (%d scrapes, 0 violations)", r.Scrapes)
	}
	s := fmt.Sprintf("check: %d violations in %d scrapes:", len(r.Violations), r.Scrapes)
	for _, v := range r.Violations {
		s += "\n  " + v.String()
	}
	return s
}

// window is one crash window: [start, end], end zero while open.
type window struct {
	node  topology.NodeID
	start time.Time
	end   time.Time
}

// nodeState is the checker's per-node scrape memory.
type nodeState struct {
	haveStats   bool
	stats       live.StatsReply
	unreachable int
}

// redState is per-redirector condition-onset bookkeeping.
type redState struct {
	belowSince time.Time
	zeroSince  time.Time
	overSince  time.Time
}

// Checker scrapes and judges one fleet. Create with New, feed crash
// windows via NoteKill/NoteRestart (or wire it as the chaos controller's
// Observer), Run until the experiment ends, then Report.
type Checker struct {
	cfg    Config
	client *http.Client

	mu         sync.Mutex
	windows    []window
	nodes      []nodeState
	reds       map[topology.NodeID]*redState
	scrapes    int
	violations []Violation
}

// New builds a checker.
func New(cfg Config) *Checker {
	cfg = cfg.withDefaults()
	c := &Checker{
		cfg:    cfg,
		client: &http.Client{Timeout: 2 * time.Second},
		nodes:  make([]nodeState, len(cfg.URLs)),
		reds:   make(map[topology.NodeID]*redState, len(cfg.Redirectors)),
	}
	for _, r := range cfg.Redirectors {
		c.reds[r] = &redState{}
	}
	return c
}

// OnKill and OnRestart make the checker a chaos controller Observer:
// applied lifecycle actions become crash windows.
func (c *Checker) OnKill(n topology.NodeID, at time.Time)    { c.NoteKill(n, at) }
func (c *Checker) OnRestart(n topology.NodeID, at time.Time) { c.NoteRestart(n, at) }

// NoteKill opens a crash window for node n.
func (c *Checker) NoteKill(n topology.NodeID, at time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.windows = append(c.windows, window{node: n, start: at})
}

// NoteRestart closes node n's open crash window.
func (c *Checker) NoteRestart(n topology.NodeID, at time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := len(c.windows) - 1; i >= 0; i-- {
		if c.windows[i].node == n && c.windows[i].end.IsZero() {
			c.windows[i].end = at
			return
		}
	}
	// A restart without a recorded kill still bounds confinement checks.
	c.windows = append(c.windows, window{node: n, start: at, end: at})
}

// inWindow reports whether t falls inside any crash window, extended by
// the convergence grace after its close. Callers hold c.mu.
func (c *Checker) inWindow(t time.Time, node topology.NodeID, anyNode bool) bool {
	for _, w := range c.windows {
		if !anyNode && w.node != node {
			continue
		}
		if t.Before(w.start) {
			continue
		}
		if w.end.IsZero() || !t.After(w.end.Add(c.cfg.Convergence)) {
			return true
		}
	}
	return false
}

// openWindows reports whether any crash window is open or closed less
// than the convergence budget ago. Callers hold c.mu.
func (c *Checker) openWindows(now time.Time) bool {
	for _, w := range c.windows {
		if w.end.IsZero() || !now.After(w.end.Add(c.cfg.Convergence)) {
			return true
		}
	}
	return false
}

// liveNodes counts nodes without an open crash window. Callers hold c.mu.
func (c *Checker) liveNodes() int {
	down := map[topology.NodeID]bool{}
	for _, w := range c.windows {
		if w.end.IsZero() {
			down[w.node] = true
		}
	}
	return len(c.cfg.URLs) - len(down)
}

// Run scrapes every Interval until ctx is done.
func (c *Checker) Run(ctx context.Context) {
	t := time.NewTicker(c.cfg.Interval)
	defer t.Stop()
	defer c.client.CloseIdleConnections()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.Scrape()
		}
	}
}

// Scrape performs one scrape-and-judge pass. Exposed so tests (and
// one-shot callers) can drive the checker without the ticker.
func (c *Checker) Scrape() {
	now := time.Now()
	type censusResult struct {
		loc topology.NodeID
		rep live.CensusReply
		ok  bool
	}
	var censuses []censusResult
	for _, loc := range c.cfg.Redirectors {
		var rep live.CensusReply
		ok := c.get(c.cfg.URLs[loc]+live.PathCensus, &rep) == nil
		censuses = append(censuses, censusResult{loc, rep, ok})
	}
	stats := make([]*live.StatsReply, len(c.cfg.URLs))
	for i, u := range c.cfg.URLs {
		var rep live.StatsReply
		if c.get(u+live.PathStats, &rep) == nil {
			stats[i] = &rep
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.scrapes++
	for _, cr := range censuses {
		c.judgeCensus(now, cr.loc, cr.rep, cr.ok)
	}
	for i, rep := range stats {
		c.judgeStats(now, topology.NodeID(i), rep)
	}
}

// judgeCensus applies the replica-set rules to one redirector's census.
// Callers hold c.mu.
func (c *Checker) judgeCensus(now time.Time, loc topology.NodeID, rep live.CensusReply, ok bool) {
	rs := c.reds[loc]
	if !ok {
		// Reachability is judged in judgeStats; an unreachable census
		// just freezes the onset clocks (no fresh evidence either way).
		return
	}
	// Bound violations get a convergence budget: the condition may exist
	// transiently (the instants around a crash or repair), but persisting
	// past the budget is a violation. Floor and loss are additionally
	// excused while a crash window is open or fresh — a dead node's
	// deficit is repaired after recovery, not during the outage. The
	// ceiling is not: a stale registration (more replicas recorded than
	// live nodes) must be purged within the budget of the mark even while
	// the node stays down.
	judgeOnset := func(active, excuseWindows bool, since *time.Time, rule, detail string) {
		if !active {
			*since = time.Time{}
			return
		}
		if since.IsZero() {
			*since = now
			return
		}
		if excuseWindows && c.openWindows(now) {
			return
		}
		if now.Sub(*since) > c.cfg.Convergence {
			c.violate(now, rule, int(loc), detail)
			*since = now // re-arm so one stuck condition reports per budget, not per scrape
		}
	}
	n := c.liveNodes()
	judgeOnset(n > 0 && rep.MaxReplicas > n, false, &rs.overSince, RuleOverMax,
		fmt.Sprintf("object with %d replicas, only %d live nodes, past %v budget", rep.MaxReplicas, n, c.cfg.Convergence))
	judgeOnset(rep.BelowFloor > 0, true, &rs.belowSince, RuleBelowFloor,
		fmt.Sprintf("%d objects below replica floor past %v budget", rep.BelowFloor, c.cfg.Convergence))
	judgeOnset(rep.Zero > 0, true, &rs.zeroSince, RuleLostObject,
		fmt.Sprintf("%d objects with zero replicas past %v budget", rep.Zero, c.cfg.Convergence))
}

// judgeStats applies reachability and counter-monotonicity to one node's
// stats scrape. Callers hold c.mu.
func (c *Checker) judgeStats(now time.Time, id topology.NodeID, rep *live.StatsReply) {
	ns := &c.nodes[id]
	if rep == nil {
		if c.inWindow(now, id, false) {
			ns.unreachable = 0
			ns.haveStats = false // counters legitimately reset across the window
			return
		}
		ns.unreachable++
		if ns.unreachable == c.cfg.MaxUnreachable {
			c.violate(now, RuleUnreachable, int(id),
				fmt.Sprintf("%d consecutive failed scrapes outside any crash window", ns.unreachable))
		}
		return
	}
	ns.unreachable = 0
	if ns.haveStats && rep.BootID == ns.stats.BootID {
		type ctr struct {
			name     string
			old, new int64
		}
		for _, x := range []ctr{
			{"create_executions", ns.stats.CreateExecutions, rep.CreateExecutions},
			{"total_served", ns.stats.TotalServed, rep.TotalServed},
			{"rpc_attempts", ns.stats.RPCAttempts, rep.RPCAttempts},
			{"measure_ticks", ns.stats.MeasureTicks, rep.MeasureTicks},
			{"place_ticks", ns.stats.PlaceTicks, rep.PlaceTicks},
			{"census_ticks", ns.stats.CensusTicks, rep.CensusTicks},
		} {
			if x.new < x.old {
				c.violate(now, RuleCounter, int(id),
					fmt.Sprintf("%s went backward (%d -> %d) within boot %d", x.name, x.old, x.new, rep.BootID))
			}
		}
	}
	ns.haveStats = true
	ns.stats = *rep
}

// CheckFailures judges the load generator's failed-request timestamps:
// every failure must fall inside some crash window (any node — a dead
// redirector fails requests for objects it owns regardless of where the
// load is aimed), extended by the convergence grace. Call once after the
// run with (*live.FreeDriver).Failures().
func (c *Checker) CheckFailures(failures []time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sort.Slice(failures, func(i, j int) bool { return failures[i].Before(failures[j]) })
	stray := 0
	var first time.Time
	for _, t := range failures {
		if c.inWindow(t, 0, true) {
			continue
		}
		if stray == 0 {
			first = t
		}
		stray++
	}
	if stray > 0 {
		c.violate(time.Now(), RuleFailures, -1,
			fmt.Sprintf("%d failed requests outside crash windows (first at %s)", stray, first.Format(time.RFC3339Nano)))
	}
}

// violate records one violation. Callers hold c.mu.
func (c *Checker) violate(at time.Time, rule string, node int, detail string) {
	c.violations = append(c.violations, Violation{At: at, Rule: rule, Node: node, Detail: detail})
}

// Report returns the verdict so far.
func (c *Checker) Report() *Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	return &Report{
		Scrapes:    c.scrapes,
		Violations: append([]Violation(nil), c.violations...),
	}
}

// get fetches and decodes one JSON endpoint.
func (c *Checker) get(url string, msg interface{ Validate() error }) error {
	res, err := c.client.Get(url)
	if err != nil {
		return err
	}
	data, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		return err
	}
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("check: %s: %s", url, res.Status)
	}
	return live.Decode(data, msg)
}
