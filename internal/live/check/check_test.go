package check

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"radar/internal/live"
	"radar/internal/topology"
)

// stubNode is a mutable census/stats endpoint pair behind a test server.
type stubNode struct {
	mu     sync.Mutex
	census live.CensusReply
	stats  live.StatsReply
	srv    *httptest.Server
}

func newStubNode(t *testing.T) *stubNode {
	n := &stubNode{}
	mux := http.NewServeMux()
	mux.HandleFunc(live.PathCensus, func(w http.ResponseWriter, r *http.Request) {
		n.mu.Lock()
		defer n.mu.Unlock()
		w.Write(live.Encode(&n.census))
	})
	mux.HandleFunc(live.PathStats, func(w http.ResponseWriter, r *http.Request) {
		n.mu.Lock()
		defer n.mu.Unlock()
		w.Write(live.Encode(&n.stats))
	})
	n.srv = httptest.NewServer(mux)
	t.Cleanup(n.srv.Close)
	return n
}

func (n *stubNode) set(fn func(*live.CensusReply, *live.StatsReply)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	fn(&n.census, &n.stats)
}

func testConfig(urls []string) Config {
	return Config{
		URLs:           urls,
		Redirectors:    []topology.NodeID{0},
		Convergence:    40 * time.Millisecond,
		MaxUnreachable: 2,
	}
}

// TestCheckerCleanFleet: a healthy, stable fleet produces no violations.
func TestCheckerCleanFleet(t *testing.T) {
	a, b := newStubNode(t), newStubNode(t)
	a.set(func(c *live.CensusReply, s *live.StatsReply) {
		c.Objects, c.TotalReplicas, c.MinReplicas, c.MaxReplicas = 4, 8, 2, 2
		s.BootID = 1
	})
	b.set(func(c *live.CensusReply, s *live.StatsReply) { s.BootID = 2 })
	c := New(testConfig([]string{a.srv.URL, b.srv.URL}))
	for i := 0; i < 3; i++ {
		c.Scrape()
		// Counters move forward between scrapes, as on a live node.
		a.set(func(_ *live.CensusReply, s *live.StatsReply) { s.TotalServed++; s.MeasureTicks++ })
	}
	if rep := c.Report(); !rep.OK() || rep.Scrapes != 3 {
		t.Fatalf("clean fleet: %s", rep)
	}
}

// TestCheckerLostObject: a zero-replica object persisting past the
// convergence budget (with no crash window open) is a violation — and the
// same condition inside a crash window is excused.
func TestCheckerLostObject(t *testing.T) {
	a := newStubNode(t)
	a.set(func(c *live.CensusReply, _ *live.StatsReply) {
		c.Objects, c.Zero = 3, 1
	})
	c := New(testConfig([]string{a.srv.URL}))
	c.Scrape() // onset
	time.Sleep(60 * time.Millisecond)
	c.Scrape() // past budget
	rep := c.Report()
	if rep.OK() || rep.Violations[0].Rule != RuleLostObject {
		t.Fatalf("persistent zero-replica census not flagged: %s", rep)
	}

	// Same scenario with an open crash window: excused.
	c2 := New(testConfig([]string{a.srv.URL}))
	c2.NoteKill(0, time.Now())
	c2.Scrape()
	time.Sleep(60 * time.Millisecond)
	c2.Scrape()
	if rep := c2.Report(); !rep.OK() {
		t.Fatalf("crash-window zero-replica census flagged: %s", rep)
	}
}

// TestCheckerBelowFloorHeals: a floor deficit that heals within the
// budget is fine.
func TestCheckerBelowFloorHeals(t *testing.T) {
	a := newStubNode(t)
	a.set(func(c *live.CensusReply, _ *live.StatsReply) { c.Objects, c.BelowFloor = 3, 2 })
	c := New(testConfig([]string{a.srv.URL}))
	c.Scrape()
	a.set(func(cr *live.CensusReply, _ *live.StatsReply) { cr.BelowFloor = 0 })
	time.Sleep(60 * time.Millisecond)
	c.Scrape()
	if rep := c.Report(); !rep.OK() {
		t.Fatalf("healed floor deficit flagged: %s", rep)
	}
}

// TestCheckerReplicaCeiling: more replicas of one object than live nodes,
// persisting past the convergence budget, is flagged — even while the
// implicated node's crash window is still open (stale registrations must
// be purged on the mark, not on the recovery).
func TestCheckerReplicaCeiling(t *testing.T) {
	a := newStubNode(t)
	a.set(func(c *live.CensusReply, _ *live.StatsReply) {
		c.Objects, c.TotalReplicas, c.MinReplicas, c.MaxReplicas = 1, 3, 3, 3
	})
	c := New(testConfig([]string{a.srv.URL}))
	c.Scrape() // onset: ceiling is 1 live node here, 3 recorded replicas
	time.Sleep(60 * time.Millisecond)
	c.Scrape()
	rep := c.Report()
	if rep.OK() || rep.Violations[0].Rule != RuleOverMax {
		t.Fatalf("persistent over-ceiling census not flagged: %s", rep)
	}
}

// TestCheckerCounterMonotone: a counter going backward within one boot is
// a violation; the same reset under a new boot ID is a legitimate
// restart.
func TestCheckerCounterMonotone(t *testing.T) {
	a := newStubNode(t)
	a.set(func(_ *live.CensusReply, s *live.StatsReply) { s.BootID, s.TotalServed = 1, 100 })
	c := New(testConfig([]string{a.srv.URL}))
	c.Scrape()
	a.set(func(_ *live.CensusReply, s *live.StatsReply) { s.TotalServed = 50 })
	c.Scrape()
	rep := c.Report()
	if rep.OK() || rep.Violations[0].Rule != RuleCounter {
		t.Fatalf("backward counter not flagged: %s", rep)
	}

	b := newStubNode(t)
	b.set(func(_ *live.CensusReply, s *live.StatsReply) { s.BootID, s.TotalServed = 1, 100 })
	c2 := New(testConfig([]string{b.srv.URL}))
	c2.Scrape()
	b.set(func(_ *live.CensusReply, s *live.StatsReply) { s.BootID, s.TotalServed = 2, 0 })
	c2.Scrape()
	if rep := c2.Report(); !rep.OK() {
		t.Fatalf("reboot counter reset flagged: %s", rep)
	}
}

// TestCheckerUnreachable: consecutive failed scrapes of a node are a
// violation outside a crash window and excused inside one.
func TestCheckerUnreachable(t *testing.T) {
	a := newStubNode(t)
	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close()

	c := New(testConfig([]string{a.srv.URL, deadURL}))
	c.Scrape()
	c.Scrape()
	rep := c.Report()
	if rep.OK() || rep.Violations[0].Rule != RuleUnreachable || rep.Violations[0].Node != 1 {
		t.Fatalf("unreachable node not flagged: %s", rep)
	}

	c2 := New(testConfig([]string{a.srv.URL, deadURL}))
	c2.NoteKill(1, time.Now())
	c2.Scrape()
	c2.Scrape()
	if rep := c2.Report(); !rep.OK() {
		t.Fatalf("killed node's unreachability flagged: %s", rep)
	}
}

// TestCheckFailures: failed requests inside crash windows (plus the
// convergence grace) pass; strays are flagged.
func TestCheckFailures(t *testing.T) {
	c := New(testConfig([]string{"http://invalid"}))
	kill := time.Now()
	c.NoteKill(0, kill)
	c.NoteRestart(0, kill.Add(20*time.Millisecond))
	inside := kill.Add(10 * time.Millisecond)
	grace := kill.Add(50 * time.Millisecond)  // within 40ms convergence of restart
	stray := kill.Add(-10 * time.Millisecond) // before the window
	c.CheckFailures([]time.Time{inside, grace})
	if rep := c.Report(); !rep.OK() {
		t.Fatalf("confined failures flagged: %s", rep)
	}
	c.CheckFailures([]time.Time{stray})
	rep := c.Report()
	if rep.OK() || rep.Violations[0].Rule != RuleFailures {
		t.Fatalf("stray failure not flagged: %s", rep)
	}
}
