package chaos

import (
	"testing"
	"time"

	"radar/internal/topology"
	"radar/internal/workload"
)

// FuzzChaosSchedule: any schedule string either fails to plan or yields a
// well-formed action sequence — sorted by time, kill/restart strictly
// alternating per node starting from alive, cut/heal alternating per
// pair, no action kinds outside the enum, and deterministic (planning
// twice yields the identical sequence).
func FuzzChaosSchedule(f *testing.F) {
	f.Add("crash:1@2s+3s")
	f.Add("link:0-1@1s+2s; cdelay:50ms")
	f.Add("mtbf:60s; mttr:5s")
	f.Add("crash:0@1s; crash:0@2s+1s")
	f.Add("drop:0.5")
	f.Add("")
	topo := topology.Star(4)
	f.Fuzz(func(t *testing.T, sched string) {
		plan := func() []Action {
			a, err := Plan(sched, topo, 30*time.Second, workload.Stream(1, 2))
			if err != nil {
				t.SkipNow()
			}
			return a
		}
		actions := plan()
		again := plan()
		if len(actions) != len(again) {
			t.Fatalf("plan not deterministic: %d vs %d actions", len(actions), len(again))
		}
		nodeDown := map[topology.NodeID]bool{}
		pairCut := map[[2]topology.NodeID]bool{}
		for i, a := range actions {
			if a != again[i] {
				t.Fatalf("plan not deterministic at %d: %v vs %v", i, a, again[i])
			}
			if i > 0 && a.At < actions[i-1].At {
				t.Fatalf("plan unsorted at %d: %v after %v", i, a.At, actions[i-1].At)
			}
			switch a.Kind {
			case Kill:
				if nodeDown[a.Node] {
					t.Fatalf("action %d kills node %d twice", i, a.Node)
				}
				nodeDown[a.Node] = true
			case Restart:
				if !nodeDown[a.Node] {
					t.Fatalf("action %d restarts live node %d", i, a.Node)
				}
				nodeDown[a.Node] = false
			case Cut:
				if a.A >= a.B {
					t.Fatalf("action %d has unnormalized pair %d-%d", i, a.A, a.B)
				}
				if pairCut[[2]topology.NodeID{a.A, a.B}] {
					t.Fatalf("action %d cuts %d-%d twice", i, a.A, a.B)
				}
				pairCut[[2]topology.NodeID{a.A, a.B}] = true
			case Heal:
				if !pairCut[[2]topology.NodeID{a.A, a.B}] {
					t.Fatalf("action %d heals intact pair %d-%d", i, a.A, a.B)
				}
				pairCut[[2]topology.NodeID{a.A, a.B}] = false
			case Latency:
				if a.Delay < 0 {
					t.Fatalf("action %d has negative latency %v", i, a.Delay)
				}
			default:
				t.Fatalf("action %d has unknown kind %d", i, a.Kind)
			}
		}
	})
}
