// Package chaos turns the simulator's declarative fault schedules into
// real faults against a live fleet: killed and restarted node processes,
// control-plane partitions, and client-hop latency. The schedule DSL and
// its expansion are shared with the simulator (package fault), so the same
// "crash:3@10s+5s" clause that crashes simulated host 3 SIGKILLs live
// node 3 — deterministically, from the same seed.
//
// The controller is deliberately open-loop: it applies the planned actions
// at their wall-clock times and reports what it did. Deciding whether the
// fleet survived is the invariant checker's job (package check), which the
// controller keeps informed through the Observer hook.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"radar/internal/fault"
	"radar/internal/topology"
)

// Kind labels a chaos action.
type Kind uint8

// Action kinds, in application order at equal times (mirroring
// fault.Kind order: a node dies before one revives, node actions precede
// partition actions).
const (
	// Kill SIGKILLs a node (or the in-process equivalent: listener torn
	// down, goroutines reaped).
	Kill Kind = iota + 1
	// Restart brings a killed node back as a fresh incarnation.
	Restart
	// Cut partitions a pair of nodes at the control plane: each side's
	// peer-URL entry for the other is poisoned, so every control RPC
	// between them fails at the client without crossing the network.
	Cut
	// Heal restores a cut pair's peer URLs.
	Heal
	// Latency sets the client-hop injection delay (applied before every
	// generated request).
	Latency
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case Kill:
		return "kill"
	case Restart:
		return "restart"
	case Cut:
		return "cut"
	case Heal:
		return "heal"
	case Latency:
		return "latency"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Action is one scheduled chaos step, At relative to the run's epoch.
type Action struct {
	At   time.Duration
	Kind Kind
	// Node is the killed/restarted node (Kill, Restart).
	Node topology.NodeID
	// A, B are the partitioned pair, A < B (Cut, Heal).
	A, B topology.NodeID
	// Delay is the injected client-hop latency (Latency).
	Delay time.Duration
}

// String renders the action for logs and violation reports.
func (a Action) String() string {
	switch a.Kind {
	case Kill, Restart:
		return fmt.Sprintf("%v %s node %d", a.At, a.Kind, a.Node)
	case Cut, Heal:
		return fmt.Sprintf("%v %s %d-%d", a.At, a.Kind, a.A, a.B)
	default:
		return fmt.Sprintf("%v %s %v", a.At, a.Kind, a.Delay)
	}
}

// Plan parses a fault-DSL schedule ("crash:N@T+D; mtbf/mttr; link:A-B@T+D;
// cdelay:D") and expands it into the chaos actions for a fleet on the
// given topology over the given horizon. Expansion goes through the exact
// code path the simulator uses (fault.ParseSchedule, Spec.Timeline over
// fault.TopoEdges), so a schedule means the same thing in both worlds;
// stochastic clauses draw from rng (nil is fine for purely scripted
// schedules). Message drop/dup clauses are rejected: a live fleet cannot
// un-deliver a TCP payload — crash or partition it instead.
func Plan(schedule string, topo *topology.Topology, horizon time.Duration, rng *rand.Rand) ([]Action, error) {
	spec, err := fault.ParseSchedule(schedule)
	if err != nil {
		return nil, err
	}
	if spec.MsgDrop > 0 || spec.MsgDup > 0 {
		return nil, fmt.Errorf("chaos: message drop/dup is simulation-only (crash or partition live nodes instead)")
	}
	timeline, err := spec.Timeline(topo.NumNodes(), fault.TopoEdges(topo), horizon, rng)
	if err != nil {
		return nil, err
	}
	var actions []Action
	if spec.MsgDelay > 0 {
		actions = append(actions, Action{Kind: Latency, Delay: spec.MsgDelay})
	}
	for _, e := range timeline {
		switch e.Kind {
		case fault.HostDown:
			actions = append(actions, Action{At: e.At, Kind: Kill, Node: e.Node})
		case fault.HostUp:
			actions = append(actions, Action{At: e.At, Kind: Restart, Node: e.Node})
		case fault.LinkDown:
			actions = append(actions, Action{At: e.At, Kind: Cut, A: e.A, B: e.B})
		case fault.LinkUp:
			actions = append(actions, Action{At: e.At, Kind: Heal, A: e.A, B: e.B})
		}
	}
	sort.SliceStable(actions, func(i, j int) bool {
		if actions[i].At != actions[j].At {
			return actions[i].At < actions[j].At
		}
		return actions[i].Kind < actions[j].Kind
	})
	return actions, nil
}

// Target is what the controller acts on: an in-process fleet
// (FleetTarget) or real node processes (ProcTarget).
type Target interface {
	// Kill crashes a node.
	Kill(n topology.NodeID) error
	// Restart revives a killed node and waits until it reports ready.
	Restart(n topology.NodeID) error
	// SetPartition cuts (or heals) the control plane between a and b.
	SetPartition(a, b topology.NodeID, cut bool) error
	// SetLatency sets the client-hop injection delay.
	SetLatency(d time.Duration) error
}

// Observer is notified of applied node-lifecycle actions with their
// wall-clock times — the invariant checker's crash-window bookkeeping
// hook. Either method may be nil-receiver-safe no-ops; a nil Observer
// disables notification entirely.
type Observer interface {
	OnKill(n topology.NodeID, at time.Time)
	OnRestart(n topology.NodeID, at time.Time)
}

// Controller applies a planned action sequence to a target at wall-clock
// pace.
type Controller struct {
	target  Target
	actions []Action
	obs     Observer

	applied []Action
}

// NewController builds a controller for the given plan. obs may be nil.
func NewController(target Target, actions []Action, obs Observer) *Controller {
	return &Controller{target: target, actions: append([]Action(nil), actions...), obs: obs}
}

// Run applies each action when the wall clock reaches epoch+Action.At,
// stopping early if ctx is cancelled. Failed actions do not stop the run
// (chaos is best-effort: a Kill of an already-dead node is not worth
// aborting an experiment over); the joined errors are returned at the
// end, and every action that did apply is recorded for Applied.
func (c *Controller) Run(ctx context.Context, epoch time.Time) error {
	var errs []error
	for _, a := range c.actions {
		if wait := time.Until(epoch.Add(a.At)); wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				t.Stop()
				return errors.Join(errs...)
			case <-t.C:
			}
		}
		if ctx.Err() != nil {
			return errors.Join(errs...)
		}
		if err := c.apply(a); err != nil {
			errs = append(errs, fmt.Errorf("chaos: %s: %w", a, err))
			continue
		}
		c.applied = append(c.applied, a)
	}
	return errors.Join(errs...)
}

func (c *Controller) apply(a Action) error {
	switch a.Kind {
	case Kill:
		// The window opens when the kill BEGINS: requests already fail
		// while the listener is being torn down, and the observer's crash
		// window must cover them.
		at := time.Now()
		if err := c.target.Kill(a.Node); err != nil {
			return err
		}
		if c.obs != nil {
			c.obs.OnKill(a.Node, at)
		}
		return nil
	case Restart:
		if err := c.target.Restart(a.Node); err != nil {
			return err
		}
		if c.obs != nil {
			c.obs.OnRestart(a.Node, time.Now())
		}
		return nil
	case Cut:
		return c.target.SetPartition(a.A, a.B, true)
	case Heal:
		return c.target.SetPartition(a.A, a.B, false)
	case Latency:
		return c.target.SetLatency(a.Delay)
	default:
		return fmt.Errorf("unknown action kind %d", a.Kind)
	}
}

// Applied returns the actions that were successfully applied, in order.
func (c *Controller) Applied() []Action { return append([]Action(nil), c.applied...) }
