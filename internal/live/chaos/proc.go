package chaos

import (
	"fmt"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"

	"radar/internal/topology"
)

// Proc describes one restartable node process: the argv to launch it and
// the ready file its -ready-file flag points at. The ready file is the
// process-world readiness signal (the counterpart of /readyz): the node
// creates it once it is serving and has finished recovery, and Restart
// removes it before relaunching so it cannot observe a stale one.
type Proc struct {
	Command   []string
	ReadyFile string
}

// ProcTarget adapts a fleet of real node processes (cmd/radar-node) to the
// controller. Kill delivers SIGKILL and reaps the process; Restart
// relaunches the same argv and waits for the ready file. Partitions and
// latency are not supported at the process level — those act through the
// fleet's peer tables and the load generator, which live outside the node
// processes — so schedules using them need the in-process FleetTarget.
type ProcTarget struct {
	specs        []Proc
	readyTimeout time.Duration

	mu   sync.Mutex
	cmds []*exec.Cmd
}

// NewProcTarget builds a target for the given processes. Start launches
// them.
func NewProcTarget(specs []Proc) *ProcTarget {
	return &ProcTarget{
		specs:        append([]Proc(nil), specs...),
		readyTimeout: 30 * time.Second,
		cmds:         make([]*exec.Cmd, len(specs)),
	}
}

// Start launches every process and waits until all ready files exist.
func (t *ProcTarget) Start() error {
	for i := range t.specs {
		if err := t.launch(i); err != nil {
			t.Close()
			return err
		}
	}
	for i := range t.specs {
		if err := t.awaitReady(i); err != nil {
			t.Close()
			return err
		}
	}
	return nil
}

func (t *ProcTarget) launch(i int) error {
	spec := t.specs[i]
	if len(spec.Command) == 0 {
		return fmt.Errorf("chaos: process %d has no command", i)
	}
	if spec.ReadyFile != "" {
		_ = os.Remove(spec.ReadyFile)
	}
	cmd := exec.Command(spec.Command[0], spec.Command[1:]...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	// Each node gets its own process group so Kill takes down the whole
	// tree (a shell wrapper's children included), like a real crash.
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("chaos: starting process %d: %w", i, err)
	}
	t.mu.Lock()
	t.cmds[i] = cmd
	t.mu.Unlock()
	return nil
}

func (t *ProcTarget) awaitReady(i int) error {
	spec := t.specs[i]
	if spec.ReadyFile == "" {
		return nil
	}
	deadline := time.Now().Add(t.readyTimeout)
	for {
		if _, err := os.Stat(spec.ReadyFile); err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: process %d not ready after %v", i, t.readyTimeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Kill implements Target: SIGKILL and reap.
func (t *ProcTarget) Kill(n topology.NodeID) error {
	t.mu.Lock()
	cmd := t.cmds[n]
	t.cmds[n] = nil
	t.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("chaos: process %d is not running", n)
	}
	killTree(cmd)
	_ = cmd.Wait() // reap; a killed process's exit error is expected
	if t.specs[n].ReadyFile != "" {
		_ = os.Remove(t.specs[n].ReadyFile)
	}
	return nil
}

// Restart implements Target: relaunch the argv and wait for readiness.
func (t *ProcTarget) Restart(n topology.NodeID) error {
	t.mu.Lock()
	running := t.cmds[n] != nil
	t.mu.Unlock()
	if running {
		return fmt.Errorf("chaos: restarting process %d, which is still running", n)
	}
	if err := t.launch(int(n)); err != nil {
		return err
	}
	return t.awaitReady(int(n))
}

// SetPartition implements Target; unsupported for process fleets.
func (t *ProcTarget) SetPartition(a, b topology.NodeID, cut bool) error {
	return fmt.Errorf("chaos: partitions need the in-process fleet target")
}

// SetLatency implements Target; unsupported for process fleets.
func (t *ProcTarget) SetLatency(d time.Duration) error {
	return fmt.Errorf("chaos: latency injection needs the in-process fleet target")
}

// Close kills every process still running.
func (t *ProcTarget) Close() {
	t.mu.Lock()
	cmds := append([]*exec.Cmd(nil), t.cmds...)
	for i := range t.cmds {
		t.cmds[i] = nil
	}
	t.mu.Unlock()
	for _, cmd := range cmds {
		if cmd != nil && cmd.Process != nil {
			killTree(cmd)
			_ = cmd.Wait()
		}
	}
}

// killTree SIGKILLs the process's group, falling back to the process
// alone if the group is gone.
func killTree(cmd *exec.Cmd) {
	if err := syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL); err != nil {
		_ = cmd.Process.Kill()
	}
}
