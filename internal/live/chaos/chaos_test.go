package chaos

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"radar/internal/topology"
	"radar/internal/workload"
)

// TestPlanScriptedCrash: a scripted crash clause expands to a kill and a
// restart at the scheduled times.
func TestPlanScriptedCrash(t *testing.T) {
	actions, err := Plan("crash:1@2s+3s", topology.Star(4), 10*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []Action{
		{At: 2 * time.Second, Kind: Kill, Node: 1},
		{At: 5 * time.Second, Kind: Restart, Node: 1},
	}
	if len(actions) != len(want) {
		t.Fatalf("got %d actions %v, want %d", len(actions), actions, len(want))
	}
	for i := range want {
		if actions[i] != want[i] {
			t.Fatalf("action %d = %v, want %v", i, actions[i], want[i])
		}
	}
}

// TestPlanLinkAndLatency: link clauses become cut/heal pairs and a cdelay
// clause becomes an upfront latency action.
func TestPlanLinkAndLatency(t *testing.T) {
	actions, err := Plan("link:0-1@1s+2s; cdelay:50ms", topology.Star(4), 10*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []Action{
		{At: 0, Kind: Latency, Delay: 50 * time.Millisecond},
		{At: 1 * time.Second, Kind: Cut, A: 0, B: 1},
		{At: 3 * time.Second, Kind: Heal, A: 0, B: 1},
	}
	if len(actions) != len(want) {
		t.Fatalf("got %v, want %v", actions, want)
	}
	for i := range want {
		if actions[i] != want[i] {
			t.Fatalf("action %d = %v, want %v", i, actions[i], want[i])
		}
	}
}

// TestPlanRejectsMessageLoss: drop/dup clauses are simulation-only.
func TestPlanRejectsMessageLoss(t *testing.T) {
	for _, sched := range []string{"drop:0.5", "dup:0.2", "crash:0@1s; drop:0.1"} {
		if _, err := Plan(sched, topology.Star(4), 10*time.Second, nil); err == nil {
			t.Fatalf("Plan(%q) accepted a message-loss clause", sched)
		}
	}
}

// TestPlanStochasticDeterministic: equal seeds yield identical plans.
func TestPlanStochasticDeterministic(t *testing.T) {
	topo := topology.Ring(6)
	plan := func() []Action {
		a, err := Plan("mtbf:60s; mttr:5s", topo, 5*time.Minute, workload.Stream(7, 99))
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a, b := plan(), plan()
	if len(a) == 0 {
		t.Fatal("stochastic schedule produced no actions over a 5m horizon")
	}
	if len(a) != len(b) {
		t.Fatalf("plans differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plans diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// fakeTarget records applied actions.
type fakeTarget struct {
	mu    sync.Mutex
	calls []string
}

func (f *fakeTarget) note(s string) {
	f.mu.Lock()
	f.calls = append(f.calls, s)
	f.mu.Unlock()
}
func (f *fakeTarget) Kill(n topology.NodeID) error    { f.note("kill"); return nil }
func (f *fakeTarget) Restart(n topology.NodeID) error { f.note("restart"); return nil }
func (f *fakeTarget) SetPartition(a, b topology.NodeID, cut bool) error {
	if cut {
		f.note("cut")
	} else {
		f.note("heal")
	}
	return nil
}
func (f *fakeTarget) SetLatency(d time.Duration) error { f.note("latency"); return nil }

// fakeObserver records lifecycle notifications.
type fakeObserver struct {
	mu       sync.Mutex
	kills    int
	restarts int
}

func (o *fakeObserver) OnKill(n topology.NodeID, at time.Time) {
	o.mu.Lock()
	o.kills++
	o.mu.Unlock()
}
func (o *fakeObserver) OnRestart(n topology.NodeID, at time.Time) {
	o.mu.Lock()
	o.restarts++
	o.mu.Unlock()
}

// TestControllerAppliesPlan: the controller walks the plan in order,
// notifies the observer of lifecycle actions, and records what applied.
func TestControllerAppliesPlan(t *testing.T) {
	tgt := &fakeTarget{}
	obs := &fakeObserver{}
	actions := []Action{
		{At: 0, Kind: Latency, Delay: time.Millisecond},
		{At: 5 * time.Millisecond, Kind: Kill, Node: 1},
		{At: 10 * time.Millisecond, Kind: Cut, A: 0, B: 1},
		{At: 15 * time.Millisecond, Kind: Heal, A: 0, B: 1},
		{At: 20 * time.Millisecond, Kind: Restart, Node: 1},
	}
	ctl := NewController(tgt, actions, obs)
	if err := ctl.Run(context.Background(), time.Now()); err != nil {
		t.Fatal(err)
	}
	want := []string{"latency", "kill", "cut", "heal", "restart"}
	if len(tgt.calls) != len(want) {
		t.Fatalf("calls = %v, want %v", tgt.calls, want)
	}
	for i := range want {
		if tgt.calls[i] != want[i] {
			t.Fatalf("call %d = %s, want %s", i, tgt.calls[i], want[i])
		}
	}
	if obs.kills != 1 || obs.restarts != 1 {
		t.Fatalf("observer saw %d kills, %d restarts; want 1, 1", obs.kills, obs.restarts)
	}
	if got := ctl.Applied(); len(got) != len(actions) {
		t.Fatalf("Applied() = %d actions, want %d", len(got), len(actions))
	}
}

// TestControllerCancel: cancelling the context stops the run without
// applying pending actions.
func TestControllerCancel(t *testing.T) {
	tgt := &fakeTarget{}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ctl := NewController(tgt, []Action{{At: time.Hour, Kind: Kill, Node: 0}}, nil)
	if err := ctl.Run(ctx, time.Now()); err != nil {
		t.Fatal(err)
	}
	if len(tgt.calls) != 0 {
		t.Fatalf("cancelled run applied %v", tgt.calls)
	}
}

// TestProcTargetKillRestart: the process target launches a real process,
// SIGKILLs it, and relaunches it, gating on the ready file both times.
func TestProcTargetKillRestart(t *testing.T) {
	dir := t.TempDir()
	ready := filepath.Join(dir, "ready")
	tgt := NewProcTarget([]Proc{{
		Command:   []string{"sh", "-c", "touch " + ready + " && sleep 60"},
		ReadyFile: ready,
	}})
	defer tgt.Close()
	if err := tgt.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ready); err != nil {
		t.Fatalf("ready file missing after Start: %v", err)
	}
	if err := tgt.Kill(0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ready); err == nil {
		t.Fatal("ready file survives Kill")
	}
	if err := tgt.Kill(0); err == nil {
		t.Fatal("double Kill did not error")
	}
	if err := tgt.Restart(0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ready); err != nil {
		t.Fatalf("ready file missing after Restart: %v", err)
	}
	if err := tgt.Restart(0); err == nil {
		t.Fatal("Restart of a running process did not error")
	}
}
