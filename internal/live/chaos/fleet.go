package chaos

import (
	"bytes"
	"fmt"
	"net/http"
	"time"

	"radar/internal/live"
	"radar/internal/topology"
)

// PoisonURL is the peer-URL sentinel that severs a control-plane edge: the
// live RPC client fast-fails any base URL without an http scheme, so a
// poisoned entry makes every RPC toward that peer die at the caller
// without touching the network — the in-process model of a partition.
const PoisonURL = "poison://partition"

// FleetTarget adapts an in-process live.Fleet to the controller. Kill and
// Restart also broadcast the reachability mark to the surviving nodes
// (the live analog of the simulator's crash detection), and Restart gates
// on the whole fleet reporting ready so a follow-up action cannot race
// the node's recovery re-registration.
type FleetTarget struct {
	fleet  *live.Fleet
	client *http.Client
	// latency receives SetLatency updates — wired to the free driver's
	// client-hop injection point. May be nil (latency actions then fail).
	latency func(time.Duration)
	// readyTimeout bounds Restart's readiness wait.
	readyTimeout time.Duration
}

// NewFleetTarget wraps a fleet. latencySink may be nil when the plan has
// no latency actions; pass (*live.FreeDriver).SetLatency to inject at the
// client hop.
func NewFleetTarget(f *live.Fleet, latencySink func(time.Duration)) *FleetTarget {
	return &FleetTarget{
		fleet:        f,
		client:       &http.Client{Timeout: 2 * time.Second},
		latency:      latencySink,
		readyTimeout: 10 * time.Second,
	}
}

// Close releases the target's HTTP connections.
func (t *FleetTarget) Close() { t.client.CloseIdleConnections() }

// Kill implements Target: crash the node, then tell the survivors.
func (t *FleetTarget) Kill(n topology.NodeID) error {
	if err := t.fleet.Kill(n); err != nil {
		return err
	}
	t.broadcastMark(n, true)
	return nil
}

// Restart implements Target: revive the node, wait for readiness (which
// includes its recovery re-registration), then clear the survivors' marks.
func (t *FleetTarget) Restart(n topology.NodeID) error {
	if err := t.fleet.Restart(n); err != nil {
		return err
	}
	if err := t.fleet.WaitReady(t.readyTimeout); err != nil {
		return err
	}
	t.broadcastMark(n, false)
	return nil
}

// broadcastMark posts a reachability mark for host n to every live node,
// best-effort — a node that misses the mark rediscovers reachability
// through its own RPC failures.
func (t *FleetTarget) broadcastMark(n topology.NodeID, down bool) {
	msg := live.MarkMsg{Host: int(n), Down: down}
	for i := 0; i < t.fleet.NumNodes(); i++ {
		id := topology.NodeID(i)
		if id == n && down || t.fleet.Killed(id) {
			continue
		}
		res, err := t.client.Post(t.fleet.URL(id)+live.PathMark, "application/json",
			bytes.NewReader(live.Encode(&msg)))
		if err == nil {
			res.Body.Close()
		}
	}
}

// SetPartition implements Target: poison (or restore) each side's peer-URL
// entry for the other. Only the control plane is cut — the serve-URL
// manifest behind client 302s is immutable by design.
func (t *FleetTarget) SetPartition(a, b topology.NodeID, cut bool) error {
	if err := t.setPeer(a, b, cut); err != nil {
		return err
	}
	return t.setPeer(b, a, cut)
}

func (t *FleetTarget) setPeer(on, peer topology.NodeID, cut bool) error {
	if t.fleet.Killed(on) {
		return nil // a dead node has no peer table to poison
	}
	url := PoisonURL
	if !cut {
		url = t.fleet.URL(peer)
	}
	msg := live.PeersMsg{Peer: int(peer), URL: url}
	res, err := t.client.Post(t.fleet.URL(on)+live.PathPeers, "application/json",
		bytes.NewReader(live.Encode(&msg)))
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("chaos: node %d rejected peer rewrite: %s", on, res.Status)
	}
	return nil
}

// SetLatency implements Target.
func (t *FleetTarget) SetLatency(d time.Duration) error {
	if t.latency == nil {
		return fmt.Errorf("chaos: no latency injection point wired")
	}
	t.latency(d)
	return nil
}
