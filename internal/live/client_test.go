package live

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"radar/internal/ctrlplane"
	"radar/internal/workload"
)

// testParams is a fast retry schedule for client tests: jittered waits in
// [20,40]ms then [40,80]ms (doubling, capped).
func testParams() ctrlplane.Params {
	return ctrlplane.Params{
		Timeout:     time.Second,
		Retries:     3,
		BackoffBase: 40 * time.Millisecond,
		BackoffCap:  80 * time.Millisecond,
	}
}

func testClient(t *testing.T, budget int) *rpcClient {
	t.Helper()
	c := newRPCClient(testParams(), workload.Stream(1, 2), budget)
	t.Cleanup(c.Close)
	return c
}

// flakyServer answers 503 for the first fail attempts, then 200 with the
// given body.
func flakyServer(t *testing.T, fail int, body string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= int64(fail) {
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(body))
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

// TestClientRetriesFlakyPeer: a peer failing its first two attempts is
// retried through the capped, jittered backoff schedule and eventually
// answers; the elapsed time sits inside the schedule's analytic bounds.
func TestClientRetriesFlakyPeer(t *testing.T) {
	srv, hits := flakyServer(t, 2, `{"ok":true}`)
	c := testClient(t, 0)
	var resp struct {
		OK bool `json:"ok"`
	}
	start := time.Now()
	if err := c.get(srv.URL, "/x", nil, &resp); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if !resp.OK {
		t.Fatal("reply not decoded")
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
	attempts, retries, lost := c.Stats()
	if attempts != 3 || retries != 2 || lost != 0 {
		t.Fatalf("Stats() = (%d, %d, %d), want (3, 2, 0)", attempts, retries, lost)
	}
	// Two jittered waits: [20,40]ms + [40,80]ms. Loopback round-trips are
	// microseconds, so elapsed is essentially the backoff sum.
	if elapsed < 60*time.Millisecond {
		t.Fatalf("retries completed in %v, faster than the %v backoff floor", elapsed, 60*time.Millisecond)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("retries took %v, far beyond the %v backoff ceiling", elapsed, 120*time.Millisecond)
	}
}

// TestClientExhaustsSchedule: a peer that never recovers costs exactly
// 1+Retries attempts and surfaces as a typed ErrRPCLost.
func TestClientExhaustsSchedule(t *testing.T) {
	srv, hits := flakyServer(t, 1<<30, "")
	c := testClient(t, 0)
	err := c.call(srv.URL, "/x", &MarkMsg{Host: 0}, nil)
	if !errors.Is(err, ErrRPCLost) {
		t.Fatalf("err = %v, want ErrRPCLost", err)
	}
	var re *RPCError
	if !errors.As(err, &re) || re.Attempts != 4 || re.Op != "/x" {
		t.Fatalf("RPCError = %+v, want 4 attempts on /x", re)
	}
	if got := hits.Load(); got != 4 {
		t.Fatalf("server saw %d attempts, want 4", got)
	}
	if _, _, lost := c.Stats(); lost != 1 {
		t.Fatalf("lost counter = %d, want 1", lost)
	}
}

// TestClientRetryBudget: with a one-token budget, the first failing call
// spends its token on one retry and the next failing call is cut short
// with a typed ErrRetryBudget — the peer stops soaking up backoff rounds.
func TestClientRetryBudget(t *testing.T) {
	srv, hits := flakyServer(t, 1<<30, "")
	c := testClient(t, 1)
	err := c.call(srv.URL, "/x", &MarkMsg{Host: 0}, nil)
	// First call: one retry allowed (bucket 1.0 -> 0), then denied.
	if !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("first call err = %v, want ErrRetryBudget", err)
	}
	var re *RPCError
	if !errors.As(err, &re) || re.Attempts != 2 {
		t.Fatalf("RPCError = %+v, want 2 attempts", re)
	}
	after := hits.Load()
	// Second call: earns 0.1, still below a whole token — no retry at all.
	err = c.call(srv.URL, "/x", &MarkMsg{Host: 0}, nil)
	if !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("second call err = %v, want ErrRetryBudget", err)
	}
	if got := hits.Load() - after; got != 1 {
		t.Fatalf("second call issued %d attempts, want 1 (budget dry)", got)
	}
	if got := c.BudgetDenials(); got != 2 {
		t.Fatalf("BudgetDenials() = %d, want 2", got)
	}
}

// TestClientPoisonedPeer: a poisoned base URL fails before any attempt —
// the partitioned message never leaves the node.
func TestClientPoisonedPeer(t *testing.T) {
	c := testClient(t, 0)
	err := c.call("poison://partition", "/x", &MarkMsg{Host: 0}, nil)
	if !errors.Is(err, ErrPeerUnreachable) {
		t.Fatalf("err = %v, want ErrPeerUnreachable", err)
	}
	if attempts, _, _ := c.Stats(); attempts != 0 {
		t.Fatalf("poisoned call issued %d attempts, want 0", attempts)
	}
}

// TestClientDedupReplayOnRetry: when a reply is lost in transit the
// client re-issues the same message ID, and the receiver's dedup replays
// the recorded verdict instead of executing twice — at-most-once effect,
// at-least-once delivery.
func TestClientDedupReplayOnRetry(t *testing.T) {
	d := newCallDedup(4)
	var execs atomic.Int64
	var drops atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var msg struct {
			MsgID uint64 `json:"msg_id"`
		}
		if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
			t.Errorf("bad body: %v", err)
		}
		reply, _ := d.do(msg.MsgID, func() ([]byte, bool) {
			execs.Add(1)
			return []byte(`{"done":true}`), true
		})
		if drops.Add(1) == 1 {
			// Execute, then lose the reply: the client cannot tell this
			// from a never-delivered request.
			panic(http.ErrAbortHandler)
		}
		w.Write(reply)
	}))
	t.Cleanup(srv.Close)

	c := testClient(t, 0)
	var resp struct {
		Done bool `json:"done"`
	}
	type createReq struct {
		MsgID uint64 `json:"msg_id"`
	}
	if err := c.call(srv.URL, "/rpc/createobj", &createReq{MsgID: 77}, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Done {
		t.Fatal("verdict not replayed to the retry")
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("handler executed %d times across the retry, want 1", got)
	}
	if got := d.Executed(); got != 1 {
		t.Fatalf("dedup Executed() = %d, want 1", got)
	}
}

// TestClientCloseAbortsBackoff: Close during a failing call's backoff
// returns promptly instead of sitting out the schedule — a killed node
// must not linger.
func TestClientCloseAbortsBackoff(t *testing.T) {
	srv, _ := flakyServer(t, 1<<30, "")
	params := testParams()
	params.BackoffBase = 10 * time.Second
	params.BackoffCap = 10 * time.Second
	c := newRPCClient(params, workload.Stream(1, 2), 0)
	done := make(chan error, 1)
	go func() { done <- c.call(srv.URL, "/x", &MarkMsg{Host: 0}, nil) }()
	time.Sleep(50 * time.Millisecond) // let it fail once and enter backoff
	start := time.Now()
	c.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("closed call reported success")
		}
		if waited := time.Since(start); waited > time.Second {
			t.Fatalf("call outlived Close by %v", waited)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("call still blocked 2s after Close")
	}
}
