// Package livetest is the in-process integration harness for live mode:
// it stands up a loopback Fleet, waits for every node's health endpoint,
// and wires a driver to it, so a test (or radar-load's default mode) can
// replay a workload against real HTTP servers in a few lines. Kill
// crashes a node mid-replay the way the failover tests need: the
// listener closes AND the driver marks the node down, mirroring what an
// external health check would conclude.
//
// Every Start-ed harness also registers a goroutine-leak check: after the
// fleet is torn down, no goroutine of the live stack (nodes, servers,
// HTTP keep-alives) may survive. Kill and Close reap node goroutines by
// contract; this is the assertion that keeps that contract honest.
package livetest

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"radar/internal/live"
	"radar/internal/sim"
	"radar/internal/topology"
)

// HealthTimeout bounds how long New waits for the fleet to answer health
// checks before giving up.
const HealthTimeout = 10 * time.Second

// Harness couples a loopback fleet with the driver that replays a
// workload against it. Exactly one of Driver (driver-paced) and Free
// (free-running) is non-nil, keyed by Config.FreeRunning.
type Harness struct {
	Fleet  *live.Fleet
	Driver *live.Driver
	Free   *live.FreeDriver
}

// New builds a fleet for cfg, waits for it to become ready, and attaches
// the mode's driver. The caller owns Close.
func New(cfg live.Config) (*Harness, error) {
	f, err := live.NewFleet(cfg)
	if err != nil {
		return nil, err
	}
	if err := f.WaitReady(HealthTimeout); err != nil {
		f.Close()
		return nil, err
	}
	h := &Harness{Fleet: f}
	if cfg.FreeRunning {
		h.Free, err = live.NewFreeDriver(f.Config(), f.URLs())
	} else {
		h.Driver, err = live.NewDriver(f.Config(), f.URLs())
	}
	if err != nil {
		f.Close()
		return nil, err
	}
	return h, nil
}

// Start is New for tests: failures become t.Fatal, the fleet is torn down
// by t.Cleanup, and a goroutine-leak check runs after teardown.
func Start(t *testing.T, cfg live.Config) *Harness {
	t.Helper()
	// Registered before the Close cleanup: cleanups run LIFO, so the
	// check observes the world after the fleet is gone.
	CheckGoroutines(t)
	h, err := New(cfg)
	if err != nil {
		t.Fatalf("livetest: starting fleet: %v", err)
	}
	t.Cleanup(h.Close)
	return h
}

// Close tears the fleet down and releases the driver's connections.
func (h *Harness) Close() {
	if h.Driver != nil {
		h.Driver.Close()
	}
	h.Fleet.Close()
}

// Kill crashes node i mid-replay: the node's listener closes and the
// driver (in driver-paced mode) marks it down, so subsequent redirects
// route around it. Free-running fleets spread the mark via the chaos
// controller instead.
func (h *Harness) Kill(i topology.NodeID) error {
	if err := h.Fleet.Kill(i); err != nil {
		return fmt.Errorf("livetest: killing node %d: %w", i, err)
	}
	if h.Driver != nil {
		h.Driver.MarkDown(i)
	}
	return nil
}

// Run replays the configured workload against the fleet and returns the
// run's results in the simulator's schema (driver-paced harnesses only;
// free-running tests drive h.Free directly).
func (h *Harness) Run(ctx context.Context) (*sim.Results, error) {
	return h.Driver.Run(ctx)
}

// leakSettleTimeout is how long CheckGoroutines waits for straggler
// goroutines (closing HTTP conns, exiting tickers) to drain before
// declaring them leaked.
const leakSettleTimeout = 3 * time.Second

// leakPatterns mark a goroutine as belonging to the live stack: node and
// driver code, the fleet's HTTP servers, and client keep-alive loops.
var leakPatterns = []string{
	"radar/internal/live.",
	"net/http.(*Server).Serve",
	"net/http.(*conn).serve",
	"net/http.(*persistConn).readLoop",
	"net/http.(*persistConn).writeLoop",
}

// CheckGoroutines registers a cleanup that fails the test if any live
// stack goroutine survives teardown. Register it before the harness (or
// any other cleanup that owns live goroutines) so it runs last.
func CheckGoroutines(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		// Keep-alive conns owned by the default transport (stray test
		// clients) die here, not in the retry loop, so a parked readLoop
		// is not misread as a leak.
		http.DefaultClient.CloseIdleConnections()
		deadline := time.Now().Add(leakSettleTimeout)
		var leaked []string
		for {
			leaked = liveGoroutines()
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Errorf("livetest: %d live-stack goroutines leaked after fleet teardown:\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	})
}

// liveGoroutines returns the stacks of goroutines still inside the live
// stack, excluding the caller's own.
func liveGoroutines() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	for n == len(buf) {
		buf = make([]byte, 2*len(buf))
		n = runtime.Stack(buf, true)
	}
	var leaked []string
	for i, g := range strings.Split(string(buf[:n]), "\n\n") {
		if i == 0 {
			continue // the first stack is this goroutine
		}
		for _, pat := range leakPatterns {
			if strings.Contains(g, pat) {
				leaked = append(leaked, g)
				break
			}
		}
	}
	return leaked
}
