// Package livetest is the in-process integration harness for live mode:
// it stands up a loopback Fleet, waits for every node's health endpoint,
// and wires a Driver to it, so a test (or radar-load's default mode) can
// replay a workload against real HTTP servers in a few lines. Kill
// crashes a node mid-replay the way the failover tests need: the
// listener closes AND the driver marks the node down, mirroring what an
// external health check would conclude.
package livetest

import (
	"context"
	"fmt"
	"testing"
	"time"

	"radar/internal/live"
	"radar/internal/sim"
	"radar/internal/topology"
)

// HealthTimeout bounds how long New waits for the fleet to answer health
// checks before giving up.
const HealthTimeout = 10 * time.Second

// Harness couples a loopback fleet with the driver that replays a
// workload against it.
type Harness struct {
	Fleet  *live.Fleet
	Driver *live.Driver
}

// New builds a fleet for cfg, waits for it to become healthy, and
// attaches a driver. The caller owns Close.
func New(cfg live.Config) (*Harness, error) {
	f, err := live.NewFleet(cfg)
	if err != nil {
		return nil, err
	}
	if err := f.WaitHealthy(HealthTimeout); err != nil {
		f.Close()
		return nil, err
	}
	d, err := live.NewDriver(f.Config(), f.URLs())
	if err != nil {
		f.Close()
		return nil, err
	}
	return &Harness{Fleet: f, Driver: d}, nil
}

// Start is New for tests: failures become t.Fatal and the fleet is torn
// down by t.Cleanup.
func Start(t *testing.T, cfg live.Config) *Harness {
	t.Helper()
	h, err := New(cfg)
	if err != nil {
		t.Fatalf("livetest: starting fleet: %v", err)
	}
	t.Cleanup(h.Close)
	return h
}

// Close tears the fleet down.
func (h *Harness) Close() { h.Fleet.Close() }

// Kill crashes node i mid-replay: the node's listener closes and the
// driver marks it down, so subsequent redirects route around it.
func (h *Harness) Kill(i topology.NodeID) error {
	if err := h.Fleet.Kill(i); err != nil {
		return fmt.Errorf("livetest: killing node %d: %w", i, err)
	}
	h.Driver.MarkDown(i)
	return nil
}

// Run replays the configured workload against the fleet and returns the
// run's results in the simulator's schema.
func (h *Harness) Run(ctx context.Context) (*sim.Results, error) {
	return h.Driver.Run(ctx)
}
