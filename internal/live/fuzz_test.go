package live

import (
	"errors"
	"testing"
)

// FuzzLiveRPC feeds arbitrary bytes through every wire message type's
// decode -> validate -> re-encode path: decoding never panics, every
// rejection is a typed *WireError, and a body that validates re-encodes
// to a body that decodes and validates again (the round trip is stable).
func FuzzLiveRPC(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"msg_id":`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add(Encode(&CreateObjMsg{MsgID: 1, From: 0, To: 1, Method: "REPLICATE", Object: 3, UnitLoad: 0.5, SrcAff: 2, Now: 99}))
	f.Add(Encode(&NotifyMsg{MsgID: 2, Object: 4, Host: 1, Aff: 1}))
	f.Add(Encode(&DropMsg{MsgID: 3, Object: 5, Host: 0}))
	f.Add(Encode(&LoadReply{AcceptLoad: 1.25, Low: 80, High: 90, Has: true}))
	f.Add(Encode(&TickMsg{Now: 1000}))
	f.Add(Encode(&CompleteMsg{Object: 6, Gateway: 2, Now: 5}))
	f.Add(Encode(&MarkMsg{Host: 3, Down: true}))
	f.Add(Encode(&PeersMsg{Peer: 2, URL: "poison://partition"}))
	f.Add(Encode(&EventsReply{Events: []Event{
		{At: 1, Kind: EventMigrate, Object: 2, From: 0, To: 1, Move: "geo"},
		{At: 2, Kind: EventRefuse, Object: 3, From: 1, To: 2, Method: "MIGRATE"},
		{At: 3, Kind: EventCopy, Object: 4, From: 2, To: 0},
	}}))
	f.Add(Encode(&StatsReply{TotalServed: 10, CreateExecutions: 2, CreatePeakConcurrency: 1}))
	f.Add([]byte(`{"msg_id":18446744073709551615,"method":"MIGRATE","src_aff":1}`))
	f.Add([]byte(`{"accept_load":1e308,"lw":1e-300,"hw":1e308}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		msgs := []validator{
			&CreateObjMsg{}, &CreateObjReply{}, &NotifyMsg{}, &DropMsg{},
			&DropReply{}, &LoadReply{}, &ReplicasReply{}, &TickMsg{},
			&PlaceReply{}, &MeasureReply{}, &CompleteMsg{}, &CensusReply{},
			&MarkMsg{}, &PeersMsg{}, &Event{}, &EventsReply{}, &StatsReply{},
		}
		for _, msg := range msgs {
			err := Decode(data, msg)
			if err != nil {
				var we *WireError
				if !errors.As(err, &we) {
					t.Fatalf("%T: rejection is %T, not *WireError: %v", msg, err, err)
				}
				continue
			}
			re := Encode(msg)
			if err := Decode(re, msg); err != nil {
				t.Fatalf("%T: re-encoded body failed to decode: %v\nbody: %s", msg, err, re)
			}
		}
	})
}
