package live

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"radar/internal/object"
	"radar/internal/protocol"
	"radar/internal/routing"
	"radar/internal/server"
	"radar/internal/topology"
	"radar/internal/workload"
)

// Node is one live fleet member: a protocol.Host and its FCFS server
// behind the HTTP control plane, plus — when this node is one of the
// fleet's redirector locations — a protocol.Redirector answering object
// requests with 302s.
//
// In driver-paced mode nodes are clock-less: every mutating endpoint
// carries an explicit virtual timestamp, so a driver pacing the fleet
// through the simulator's event schedule reproduces the simulation's
// decision sequence exactly (DESIGN.md §4.8). In free-running mode
// (Config.FreeRunning) the node owns its clock — virtual time is wall time
// since Start — and runs its own jittered measurement/placement/census
// tickers; wire timestamps on incoming requests are ignored for the node's
// own state (DESIGN.md §4.9).
//
// Locking: mu guards the host, server, and event log; redMu guards the
// redirector and the peer-reachability view; peerMu guards the mutable
// peer URL table (chaos partitions poison it). The only permitted nesting
// is mu -> redMu (a placement pass notifying its own co-located
// redirector). Handlers that issue outgoing RPCs while holding mu rely on
// the driven operating model in driver-paced mode: the driver serializes
// control operations fleet-wide, so no two nodes run placement
// concurrently and cross-node lock cycles cannot form. In free-running
// mode placement passes on different nodes do overlap, so the peer-called
// handlers (CreateObj, load queries) take mu with a bounded try-lock and
// answer busy (503) on timeout — the caller's jittered backoff retry
// breaks the symmetry that a blocking lock would deadlock on.
type Node struct {
	id      topology.NodeID
	cfg     Config
	n       int  // fleet size
	freeRun bool // cfg.FreeRunning
	bootID  int64

	manifest []string // immutable base URL per node ID (client 302s)

	routes  *routing.Table
	client  *rpcClient
	mux     *http.ServeMux
	payload []byte

	creates *callDedup // CreateObj admission gate + verdict cache
	drops   *callDedup // RequestDrop verdict cache

	nextMsg uint64 // atomic; message IDs are id<<40 | seq

	epoch    time.Time // wall-clock zero of virtual time (Start)
	stopCh   chan struct{}
	stopOnce sync.Once
	tickWG   sync.WaitGroup
	ready    atomic.Bool
	stopped  atomic.Bool

	measureTicks atomic.Int64
	placeTicks   atomic.Int64
	censusTicks  atomic.Int64

	peerMu sync.RWMutex
	peers  []string // mutable control-plane URL per node ID

	timerMu sync.Mutex
	timers  map[*time.Timer]struct{} // pending self-scheduled completions

	mu     sync.Mutex
	host   *protocol.Host
	srv    *server.Server
	events []Event

	redMu      sync.Mutex
	redirector *protocol.Redirector
	redLocs    []topology.NodeID
	downPeers  []bool
	filtering  bool // reachability filter installed (first mark-down arms it)
}

// bootCounter allocates process-unique boot IDs; a restarted node gets a
// fresh incarnation number.
var bootCounter int64

// busyDeadline bounds how long a free-running peer handler waits for the
// node lock before answering busy; busyPoll is its retry spacing.
const (
	busyDeadline = 250 * time.Millisecond
	busyPoll     = 2 * time.Millisecond
)

// dropDedupLimit bounds concurrent RequestDrop executions; drops are cheap
// map operations, the gate exists only to reuse the verdict-replay
// machinery.
const dropDedupLimit = 16

// NewNode builds the fleet member running on node id. peers maps every
// node ID to its base URL (http://host:port); the entry for id itself may
// be empty. routes may be nil, in which case the node computes the routing
// table from the configured topology (fleets sharing a process pass one
// table to all members).
func NewNode(cfg Config, id topology.NodeID, peers []string, routes *routing.Table) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalize()
	if routes == nil {
		routes = routing.New(cfg.Sim.Topo)
	}
	n := routes.NumNodes()
	if int(id) < 0 || int(id) >= n {
		return nil, fmt.Errorf("live: node id %d outside topology of %d nodes", id, n)
	}
	if len(peers) != n {
		return nil, fmt.Errorf("live: %d peer URLs for %d nodes", len(peers), n)
	}
	srv, err := server.New(id, cfg.Sim.Server)
	if err != nil {
		return nil, err
	}
	nd := &Node{
		id:       id,
		cfg:      cfg,
		peers:    append([]string(nil), peers...),
		manifest: append([]string(nil), peers...),
		n:        n,
		freeRun:  cfg.FreeRunning,
		bootID:   atomic.AddInt64(&bootCounter, 1),
		routes:   routes,
		client:   newRPCClient(cfg.RPC, workload.Stream(cfg.Sim.Seed, (1<<33)|uint64(id)), cfg.RetryBudget),
		payload:  bytes.Repeat([]byte{0x5a}, cfg.Sim.Universe.SizeBytes),
		creates:  newCallDedup(cfg.MaxInflightCreates),
		drops:    newCallDedup(dropDedupLimit),
		srv:      srv,
		stopCh:   make(chan struct{}),
		timers:   make(map[*time.Timer]struct{}),
	}
	nd.redLocs = RedirectorLocations(routes, cfg.Sim.NumRedirectors)
	nd.downPeers = make([]bool, n)
	for _, loc := range nd.redLocs {
		if loc == id {
			r, err := protocol.NewRedirector(id, routes, cfg.Sim.Policy, cfg.Sim.Protocol.DistConstant)
			if err != nil {
				return nil, err
			}
			if f := cfg.Sim.Protocol.ReplicaFloor; f > 1 {
				r.SetReplicaFloor(f)
			}
			nd.redirector = r
		}
	}
	env := protocol.Env{
		Routes:        routes,
		RedirectorFor: nd.redirectorFor,
		Peer:          nd.peer,
		FindRecipient: nd.findRecipient,
		CopyObject:    nd.copyObject,
		SendCreateObj: nd.sendCreateObj,
		Observer:      (*nodeObserver)(nd),
	}
	if cfg.Sim.Protocol.ReplicaFloor > 1 {
		env.FindRepairTarget = nd.findRepairTarget
	}
	nd.host, err = protocol.NewHost(id, cfg.Sim.Protocol, env, srv)
	if err != nil {
		return nil, err
	}
	nd.seedPlacement()
	nd.buildMux()
	return nd, nil
}

// seedPlacement installs the paper's round-robin initial assignment: this
// node seeds the objects homed on it, and its redirector (if any) records
// the initial replica of every object it is responsible for. All state is
// local — every fleet member derives the same assignment from the shared
// configuration, so startup needs no cross-node traffic.
func (nd *Node) seedPlacement() {
	for i := 0; i < nd.cfg.Sim.Universe.Count; i++ {
		id := object.ID(i)
		home := nd.cfg.Sim.Universe.HomeNode(id, nd.n)
		if home == nd.id {
			nd.host.SeedObject(id)
		}
		if nd.redirector != nil && nd.redirectorLoc(id) == nd.id {
			nd.redirector.NotifyReplicaChange(id, home, 1)
		}
	}
}

// redirectorLoc returns the node owning id's redirector (the simulator's
// hash partition: redirector i of k gets objects with id % k == i).
func (nd *Node) redirectorLoc(id object.ID) topology.NodeID {
	return nd.redLocs[int(id)%len(nd.redLocs)]
}

// ID returns the node's ID.
func (nd *Node) ID() topology.NodeID { return nd.id }

// Handler returns the node's HTTP handler.
func (nd *Node) Handler() http.Handler { return nd.mux }

// Host exposes the protocol host for in-process inspection by tests. The
// caller must not race it against live traffic.
func (nd *Node) Host() *protocol.Host { return nd.host }

// BootID returns the node's incarnation number.
func (nd *Node) BootID() int64 { return nd.bootID }

// ---- Lifecycle ------------------------------------------------------------

// Start begins the node's life at the given wall-clock epoch (virtual time
// zero). In driver-paced mode it only marks the node ready; in free-running
// mode it launches the measurement, placement, and census tickers, and —
// when recovered is set (a restart after a crash) — first re-registers
// every held replica with its object's redirector, the live analog of the
// simulator's HostUp re-registration.
func (nd *Node) Start(epoch time.Time, recovered bool) {
	nd.epoch = epoch
	if nd.freeRun {
		if recovered {
			nd.reRegister()
		}
		nd.startTickers()
	}
	nd.ready.Store(true)
}

// Stop halts the node: tickers exit, pending self-scheduled completions
// are cancelled, and the RPC client aborts in-flight calls and backoff
// waits so a dying node never sits out a retry schedule. Stop is
// idempotent and safe against a node never started.
func (nd *Node) Stop() {
	nd.stopOnce.Do(func() {
		nd.stopped.Store(true)
		nd.ready.Store(false)
		close(nd.stopCh)
		nd.client.Close()
		nd.timerMu.Lock()
		for t := range nd.timers {
			t.Stop()
		}
		nd.timers = make(map[*time.Timer]struct{})
		nd.timerMu.Unlock()
		nd.tickWG.Wait()
	})
}

// vnow is the node's own virtual clock: wall time since Start.
func (nd *Node) vnow() time.Duration { return time.Since(nd.epoch) }

// resolveNow maps a wire timestamp to the time a handler should act at:
// the wire value in driver-paced mode (the driver owns time), the node's
// own clock in free-running mode (peers' clocks are never trusted for
// local state).
func (nd *Node) resolveNow(wire int64) time.Duration {
	if nd.freeRun {
		return nd.vnow()
	}
	return time.Duration(wire)
}

// lockMu takes the node lock for a peer-called handler. Driver-paced mode
// blocks (the driver's serialization guarantees no cross-node cycle);
// free-running mode bounds the wait and reports failure, because two
// overlapping placement passes hold their own node's lock while calling
// into each other — the busy answer plus the caller's jittered backoff is
// what breaks that symmetry.
func (nd *Node) lockMu() bool {
	if !nd.freeRun {
		nd.mu.Lock()
		return true
	}
	deadline := time.Now().Add(busyDeadline)
	for {
		if nd.mu.TryLock() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(busyPoll)
	}
}

// peerURL reads the (poisonable) control-plane URL of a peer.
func (nd *Node) peerURL(p topology.NodeID) string {
	nd.peerMu.RLock()
	defer nd.peerMu.RUnlock()
	return nd.peers[p]
}

// reRegister announces every replica this node holds to its object's
// redirector. A recovering node's holdings are its seed image (the
// process restarted from its on-disk state); the redirectors purged its
// records when the crash was marked, so re-registration is what makes the
// replicas choosable again.
func (nd *Node) reRegister() {
	nd.mu.Lock()
	objs := nd.host.Objects()
	affs := make([]int, len(objs))
	for i, id := range objs {
		affs[i] = nd.host.Affinity(id)
	}
	nd.mu.Unlock()
	for i, id := range objs {
		nd.redirectorFor(id).NotifyReplicaChange(id, nd.id, affs[i])
	}
}

// ---- Free-running tickers -------------------------------------------------

// startTickers launches the node's self-scheduled control loops.
func (nd *Node) startTickers() {
	nd.ticker(nd.cfg.FreeRun.Measurement, 1, &nd.measureTicks, nd.measureTick)
	if nd.cfg.Sim.DynamicPlacement {
		nd.ticker(nd.cfg.FreeRun.Placement, 2, &nd.placeTicks, nd.placeTick)
	}
	if nd.redirector != nil {
		nd.ticker(nd.cfg.FreeRun.Census, 3, &nd.censusTicks, nd.censusTick)
	}
}

// ticker runs fn every jittered period until Stop. Each ticker draws its
// jitter from its own seeded stream, so runs are reproducible modulo
// scheduling.
func (nd *Node) ticker(period time.Duration, stream uint64, count *atomic.Int64, fn func(now time.Duration)) {
	if period <= 0 {
		return
	}
	rng := workload.Stream(nd.cfg.Sim.Seed, (1<<34)|stream<<20|uint64(nd.id))
	jitter := nd.cfg.FreeRun.Jitter
	nd.tickWG.Add(1)
	go func() {
		defer nd.tickWG.Done()
		for {
			d := period
			if jitter > 0 {
				d = time.Duration(float64(period) * (1 + jitter*(2*rng.Float64()-1)))
			}
			t := time.NewTimer(d)
			select {
			case <-nd.stopCh:
				t.Stop()
				return
			case <-t.C:
			}
			fn(nd.vnow())
			count.Add(1)
		}
	}()
}

// measureTick closes one load-measurement interval on the node's own
// clock.
func (nd *Node) measureTick(now time.Duration) {
	nd.mu.Lock()
	start := nd.srv.CloseInterval(now)
	nd.host.OnMeasurementIntervalClose(start)
	nd.mu.Unlock()
}

// placeTick runs one self-scheduled placement pass. The pass holds mu
// while issuing peer RPCs — the free-running deadlock hazard that the
// peers' bounded try-lock answers (see lockMu).
func (nd *Node) placeTick(now time.Duration) {
	nd.mu.Lock()
	nd.host.DecidePlacement(now)
	nd.mu.Unlock()
}

// censusTick audits the co-located redirector's records; the scrape
// endpoints serve the same computation on demand, so the ticker's product
// is liveness (the counter the readiness checks and the invariant checker
// watch).
func (nd *Node) censusTick(time.Duration) {
	_ = nd.census()
}

// maxEventLog bounds the free-running event log: nothing drains it
// continuously (the driver does in driver-paced mode), so it keeps only
// the most recent entries.
const maxEventLog = 4096

// capEvents halves the event log when it outgrows the free-running bound.
// Callers hold mu.
func (nd *Node) capEvents() {
	if nd.freeRun && len(nd.events) > maxEventLog {
		nd.events = append(nd.events[:0:0], nd.events[len(nd.events)-maxEventLog/2:]...)
	}
}

// nextMsgID allocates a fleet-unique message ID: node ID in the high bits,
// a per-node counter in the low 40.
func (nd *Node) nextMsgID() uint64 {
	return uint64(nd.id)<<40 | atomic.AddUint64(&nd.nextMsg, 1)
}

// event appends to the node's event log. Callers hold mu (the log is
// drained under mu by /ctl/place and /ctl/events).
func (nd *Node) event(e Event) {
	nd.events = append(nd.events, e)
	nd.capEvents()
}

// drainEvents returns and clears the event log. Callers hold mu.
func (nd *Node) drainEvents() []Event {
	ev := nd.events
	nd.events = nil
	return ev
}

// ---- Env wiring -----------------------------------------------------------

// redirectorFor returns the control interface of id's redirector: the
// co-located redirector under redMu, or an RPC stub toward the owning node.
func (nd *Node) redirectorFor(id object.ID) protocol.RedirectorControl {
	loc := nd.redirectorLoc(id)
	if loc == nd.id {
		return (*localRedirector)(nd)
	}
	return &remoteRedirector{nd: nd, loc: loc}
}

// peer returns the host to hand a CreateObj to: the real host for
// loopback, a stub carrying the node identity and an on-demand load
// fetcher for remote peers, nil for peers marked down (the simulator's
// s.down check).
func (nd *Node) peer(p topology.NodeID) *protocol.Host {
	if p == nd.id {
		return nd.host
	}
	if nd.peerDown(p) {
		return nil
	}
	return protocol.NewPeerStub(p, &remoteLoads{nd: nd, peer: p})
}

func (nd *Node) peerDown(p topology.NodeID) bool {
	nd.redMu.Lock()
	defer nd.redMu.Unlock()
	return nd.downPeers[p]
}

// findRecipient mirrors sim.findRecipient over the wire: query every live
// peer's accept-side load and pick the one with the most relative headroom
// strictly below its low watermark. A failed load query is the down-host
// analog — the peer is skipped.
func (nd *Node) findRecipient(exclude topology.NodeID) (topology.NodeID, bool) {
	best, bestRel, found := topology.NodeID(0), 0.0, false
	for i := 0; i < nd.n; i++ {
		id := topology.NodeID(i)
		if id == exclude || nd.peerDown(id) {
			continue
		}
		rep, err := nd.fetchLoad(id, -1, 0)
		if err != nil {
			continue
		}
		rel := rep.AcceptLoad / rep.Low
		if rep.AcceptLoad < rep.Low && (!found || rel < bestRel) {
			best, bestRel, found = id, rel, true
		}
	}
	return best, found
}

// findRepairTarget mirrors sim.findRepairTarget: the live peer with the
// most relative headroom below its (availability-relaxed) accept ceiling
// that does not already hold the object, skipping acquisition-halted hosts
// when the availability objective is armed.
func (nd *Node) findRepairTarget(now time.Duration, id object.ID, from topology.NodeID) (topology.NodeID, bool) {
	w := nd.cfg.Sim.Protocol.AvailabilityWeight
	best, bestRel, found := topology.NodeID(0), 0.0, false
	for i := 0; i < nd.n; i++ {
		nid := topology.NodeID(i)
		if nid == from || nd.peerDown(nid) {
			continue
		}
		rep, err := nd.fetchLoad(nid, id, now)
		if err != nil || rep.Has {
			continue
		}
		if w > 0 && rep.Halted {
			continue
		}
		ceiling := rep.Low + w*(rep.High-rep.Low)
		rel := rep.AcceptLoad / ceiling
		if rep.AcceptLoad < ceiling && (!found || rel < bestRel) {
			best, bestRel, found = nid, rel, true
		}
	}
	return best, found
}

// fetchLoad queries a peer's /rpc/load. obj < 0 omits the replica-presence
// and halt-guard fields.
func (nd *Node) fetchLoad(p topology.NodeID, obj object.ID, now time.Duration) (LoadReply, error) {
	q := url.Values{}
	if obj >= 0 {
		q.Set("obj", strconv.FormatInt(int64(obj), 10))
		q.Set("now", strconv.FormatInt(int64(now), 10))
	}
	var rep LoadReply
	if err := nd.client.get(nd.peerURL(p), PathLoad, q, &rep); err != nil {
		return LoadReply{}, err
	}
	return rep, nil
}

// copyObject runs on the accepting side of a CreateObj that materialized a
// new replica: fetch the object's bytes from the source over the data
// plane and record the copy for the driver's network accounting. The fetch
// is best-effort — in the simulation the copy cannot fail, and a live
// source that died mid-handshake leaves the replica to be healed by the
// next placement pass; the copy event is recorded regardless so the
// accounting matches the simulator's.
func (nd *Node) copyObject(now time.Duration, from, to topology.NodeID, id object.ID) {
	if from != nd.id {
		_ = nd.fetchBytes(from, id)
	}
	nd.event(Event{At: int64(now), Kind: EventCopy, Object: int64(id), From: int(from), To: int(to)})
}

// fetchBytes GETs an object's bytes from a peer's /fetch endpoint.
func (nd *Node) fetchBytes(from topology.NodeID, id object.ID) error {
	u := nd.peerURL(from) + PathFetch + strconv.FormatInt(int64(id), 10)
	res, err := http.Get(u)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("live: fetch %s: status %d", u, res.StatusCode)
	}
	got, err := io.Copy(io.Discard, res.Body)
	if err != nil {
		return err
	}
	if got != int64(len(nd.payload)) {
		return fmt.Errorf("live: fetch %s: %d bytes, want %d", u, got, len(nd.payload))
	}
	return nil
}

// sendCreateObj carries a CreateObj handshake to a remote peer as a
// retried, idempotent RPC: the message ID doubles as the ctrlplane token,
// so a CreateLost re-issue (same token, next placement interval) replays
// the receiver's cached verdict instead of double-creating. The returned
// completion time is the virtual send time — live handshakes resolve
// inline, like the simulator's reliable path.
func (nd *Node) sendCreateObj(now time.Duration, req protocol.CreateObjRequest, token uint64, _ func(at time.Duration) bool) (protocol.CreateObjStatus, uint64, time.Duration) {
	msgID := token
	if msgID == 0 {
		msgID = nd.nextMsgID()
	}
	msg := CreateObjMsg{
		MsgID:    msgID,
		From:     int(req.From),
		To:       int(req.To),
		Method:   req.Method.String(),
		Object:   int64(req.Object),
		UnitLoad: req.UnitLoad,
		SrcAff:   req.SrcAff,
		Now:      int64(now),
	}
	var rep CreateObjReply
	if err := nd.client.call(nd.peerURL(req.To), PathCreateObj, &msg, &rep); err != nil {
		return protocol.CreateLost, msgID, now
	}
	if rep.Accepted {
		return protocol.CreateAccepted, msgID, now
	}
	return protocol.CreateRefused, msgID, now
}

// nodeObserver appends protocol events to the node's log; the driver
// drains and replays them into its metrics and network accounting. The
// host only fires observer callbacks inside mutating entry points that
// already hold mu.
type nodeObserver Node

func (o *nodeObserver) OnMigrate(now time.Duration, id object.ID, from, to topology.NodeID, kind protocol.MoveKind) {
	(*Node)(o).event(moveEvent(EventMigrate, int64(now), int64(id), int(from), int(to), kind))
}

func (o *nodeObserver) OnReplicate(now time.Duration, id object.ID, from, to topology.NodeID, kind protocol.MoveKind) {
	(*Node)(o).event(moveEvent(EventReplicate, int64(now), int64(id), int(from), int(to), kind))
}

func (o *nodeObserver) OnDrop(now time.Duration, id object.ID, host topology.NodeID) {
	(*Node)(o).event(Event{At: int64(now), Kind: EventDrop, Object: int64(id), From: int(host)})
}

func (o *nodeObserver) OnRefuse(now time.Duration, id object.ID, from, to topology.NodeID, method protocol.Method) {
	(*Node)(o).event(Event{At: int64(now), Kind: EventRefuse, Object: int64(id), From: int(from), To: int(to), Method: method.String()})
}

func (o *nodeObserver) OnDefer(now time.Duration, id object.ID, from, to topology.NodeID, method protocol.Method) {
	(*Node)(o).event(Event{At: int64(now), Kind: EventDefer, Object: int64(id), From: int(from), To: int(to), Method: method.String()})
}

// remoteLoads is the LoadSource behind a remote peer stub: Load answers
// the peer's accept-side load fetched over the wire (the stub's estimator
// is permanently inactive, so the fetched value passes through
// LoadForAccept unchanged). An unreachable peer reads as infinitely loaded
// — the offload walk stops, exactly as if the recipient had crossed its
// watermark.
type remoteLoads struct {
	nd   *Node
	peer topology.NodeID
}

func (r *remoteLoads) Load() float64 {
	rep, err := r.nd.fetchLoad(r.peer, -1, 0)
	if err != nil {
		return math.Inf(1)
	}
	return rep.AcceptLoad
}

func (r *remoteLoads) ObjectLoad(object.ID) float64 { return 0 }

// localRedirector adapts the co-located redirector to RedirectorControl
// under redMu. Methods are called with mu held (mu -> redMu is the
// permitted order).
type localRedirector Node

func (l *localRedirector) NotifyReplicaChange(id object.ID, host topology.NodeID, aff int) {
	l.redMu.Lock()
	defer l.redMu.Unlock()
	l.redirector.NotifyReplicaChange(id, host, aff)
}

func (l *localRedirector) RequestDrop(id object.ID, host topology.NodeID) bool {
	l.redMu.Lock()
	defer l.redMu.Unlock()
	return l.redirector.RequestDrop(id, host)
}

func (l *localRedirector) ReplicaCount(id object.ID) int {
	l.redMu.Lock()
	defer l.redMu.Unlock()
	return l.redirector.ReplicaCount(id)
}

func (l *localRedirector) ReplicaHosts(id object.ID, buf []topology.NodeID) []topology.NodeID {
	l.redMu.Lock()
	defer l.redMu.Unlock()
	return l.redirector.ReplicaHosts(id, buf)
}

// remoteRedirector carries RedirectorControl calls to the owning node.
// Notifications are retried by the client and abandoned on loss (the
// simulated plane's lost-notification analog: reconciliation, not the
// sender, heals the record). A lost drop arbitration conservatively keeps
// the replica.
type remoteRedirector struct {
	nd  *Node
	loc topology.NodeID
}

func (r *remoteRedirector) NotifyReplicaChange(id object.ID, host topology.NodeID, aff int) {
	msg := NotifyMsg{MsgID: r.nd.nextMsgID(), Object: int64(id), Host: int(host), Aff: aff}
	_ = r.nd.client.call(r.nd.peerURL(r.loc), PathNotify, &msg, nil)
}

func (r *remoteRedirector) RequestDrop(id object.ID, host topology.NodeID) bool {
	msg := DropMsg{MsgID: r.nd.nextMsgID(), Object: int64(id), Host: int(host)}
	var rep DropReply
	if err := r.nd.client.call(r.nd.peerURL(r.loc), PathRequestDrop, &msg, &rep); err != nil {
		return false
	}
	return rep.Approved
}

func (r *remoteRedirector) ReplicaCount(id object.ID) int {
	rep, err := r.fetchReplicas(id, false)
	if err != nil {
		return 0
	}
	return rep.Count
}

func (r *remoteRedirector) ReplicaHosts(id object.ID, buf []topology.NodeID) []topology.NodeID {
	buf = buf[:0]
	rep, err := r.fetchReplicas(id, true)
	if err != nil {
		return buf
	}
	for _, h := range rep.Hosts {
		buf = append(buf, topology.NodeID(h))
	}
	return buf
}

func (r *remoteRedirector) fetchReplicas(id object.ID, hosts bool) (ReplicasReply, error) {
	q := url.Values{}
	q.Set("obj", strconv.FormatInt(int64(id), 10))
	if hosts {
		q.Set("hosts", "1")
	}
	var rep ReplicasReply
	if err := r.nd.client.get(r.nd.peerURL(r.loc), PathReplicas, q, &rep); err != nil {
		return ReplicasReply{}, err
	}
	return rep, nil
}

// ---- HTTP handlers --------------------------------------------------------

func (nd *Node) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc(PathHealth, func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok"))
	})
	mux.HandleFunc(PathReady, func(w http.ResponseWriter, _ *http.Request) {
		if !nd.ready.Load() {
			http.Error(w, "live: node not ready", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ready"))
	})
	mux.HandleFunc(PathPeers, nd.handlePeers)
	mux.HandleFunc(PathCreateObj, nd.handleCreateObj)
	mux.HandleFunc(PathNotify, nd.handleNotify)
	mux.HandleFunc(PathRequestDrop, nd.handleRequestDrop)
	mux.HandleFunc(PathLoad, nd.handleLoad)
	mux.HandleFunc(PathReplicas, nd.handleReplicas)
	mux.HandleFunc(PathObj, nd.handleObj)
	mux.HandleFunc(PathServe, nd.handleServe)
	mux.HandleFunc(PathFetch, nd.handleFetch)
	mux.HandleFunc(PathPlace, nd.handlePlace)
	mux.HandleFunc(PathMeasure, nd.handleMeasure)
	mux.HandleFunc(PathComplete, nd.handleComplete)
	mux.HandleFunc(PathCensus, nd.handleCensus)
	mux.HandleFunc(PathMark, nd.handleMark)
	mux.HandleFunc(PathEvents, nd.handleEvents)
	mux.HandleFunc(PathStats, nd.handleStats)
	nd.mux = mux
}

// readBody decodes and validates a JSON request body, answering 400 with
// the typed reason on failure.
func readBody(w http.ResponseWriter, r *http.Request, msg validator) bool {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err == nil {
		err = Decode(data, msg)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, msg any) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(Encode(msg))
}

func (nd *Node) handleCreateObj(w http.ResponseWriter, r *http.Request) {
	var msg CreateObjMsg
	if !readBody(w, r, &msg) {
		return
	}
	if msg.To != int(nd.id) || msg.From >= nd.n {
		http.Error(w, fmt.Sprintf("live: createobj addressed to node %d, this is node %d of %d", msg.To, nd.id, nd.n), http.StatusBadRequest)
		return
	}
	method, _ := ParseMethod(msg.Method) // validated by Decode
	reply, ok := nd.creates.do(msg.MsgID, func() ([]byte, bool) {
		if !nd.lockMu() {
			return nil, false
		}
		id := object.ID(msg.Object)
		hadBefore := nd.host.Has(id)
		accepted := nd.host.CreateObj(nd.resolveNow(msg.Now), method, id, msg.UnitLoad, msg.SrcAff, topology.NodeID(msg.From))
		nd.mu.Unlock()
		return Encode(CreateObjReply{MsgID: msg.MsgID, Accepted: accepted, Copied: accepted && !hadBefore}), true
	})
	if !ok {
		// The node lock stayed busy past the deadline (an overlapping
		// placement pass): nothing executed, nothing is cached — the
		// caller's retry re-runs the handshake under the same message ID.
		http.Error(w, "live: node busy", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(reply)
}

func (nd *Node) handleNotify(w http.ResponseWriter, r *http.Request) {
	var msg NotifyMsg
	if !readBody(w, r, &msg) {
		return
	}
	if nd.redirector == nil {
		http.Error(w, "live: node hosts no redirector", http.StatusBadRequest)
		return
	}
	// Replica-change notifications set the recorded affinity, so retries
	// and duplicates are naturally idempotent — no verdict cache needed.
	nd.redMu.Lock()
	nd.redirector.NotifyReplicaChange(object.ID(msg.Object), topology.NodeID(msg.Host), msg.Aff)
	nd.redMu.Unlock()
	writeJSON(w, struct{}{})
}

func (nd *Node) handleRequestDrop(w http.ResponseWriter, r *http.Request) {
	var msg DropMsg
	if !readBody(w, r, &msg) {
		return
	}
	if nd.redirector == nil {
		http.Error(w, "live: node hosts no redirector", http.StatusBadRequest)
		return
	}
	// Drop arbitration is not naturally idempotent (an approved drop
	// removes the record, so a replayed request would read "no replica"),
	// hence the verdict cache.
	reply, _ := nd.drops.do(msg.MsgID, func() ([]byte, bool) {
		nd.redMu.Lock()
		ok := nd.redirector.RequestDrop(object.ID(msg.Object), topology.NodeID(msg.Host))
		nd.redMu.Unlock()
		return Encode(DropReply{MsgID: msg.MsgID, Approved: ok}), true
	})
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(reply)
}

func (nd *Node) handleLoad(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if !nd.lockMu() {
		http.Error(w, "live: node busy", http.StatusServiceUnavailable)
		return
	}
	p := nd.host.Params()
	rep := LoadReply{
		AcceptLoad: nd.host.Estimator().LoadForAccept(nd.srv.Load()),
		Low:        p.LowWatermark,
		High:       p.HighWatermark,
	}
	if objStr := q.Get("obj"); objStr != "" {
		obj, err1 := strconv.ParseInt(objStr, 10, 64)
		now, err2 := strconv.ParseInt(q.Get("now"), 10, 64)
		if err1 != nil || err2 != nil || obj < 0 || now < 0 {
			nd.mu.Unlock()
			http.Error(w, "live: bad obj/now query", http.StatusBadRequest)
			return
		}
		rep.Has = nd.host.Has(object.ID(obj))
		rep.Halted = nd.host.AcquisitionHalted(nd.resolveNow(now))
	}
	nd.mu.Unlock()
	writeJSON(w, rep)
}

func (nd *Node) handleReplicas(w http.ResponseWriter, r *http.Request) {
	if nd.redirector == nil {
		http.Error(w, "live: node hosts no redirector", http.StatusBadRequest)
		return
	}
	obj, err := strconv.ParseInt(r.URL.Query().Get("obj"), 10, 64)
	if err != nil || obj < 0 {
		http.Error(w, "live: bad obj query", http.StatusBadRequest)
		return
	}
	wantHosts := r.URL.Query().Get("hosts") != ""
	nd.redMu.Lock()
	rep := ReplicasReply{Count: nd.redirector.ReplicaCount(object.ID(obj))}
	if wantHosts {
		for _, h := range nd.redirector.ReplicaHosts(object.ID(obj), nil) {
			rep.Hosts = append(rep.Hosts, int(h))
		}
	}
	nd.redMu.Unlock()
	writeJSON(w, rep)
}

// objQuery parses the {id}, g and now parameters of an object-request
// endpoint.
func objQuery(r *http.Request, prefix string, n int) (object.ID, topology.NodeID, time.Duration, error) {
	idStr := r.URL.Path[len(prefix):]
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil || id < 0 {
		return 0, 0, 0, fmt.Errorf("live: bad object id %q", idStr)
	}
	g, err := strconv.Atoi(r.URL.Query().Get("g"))
	if err != nil || g < 0 || g >= n {
		return 0, 0, 0, fmt.Errorf("live: bad gateway %q", r.URL.Query().Get("g"))
	}
	now, err := strconv.ParseInt(r.URL.Query().Get("now"), 10, 64)
	if err != nil || now < 0 {
		return 0, 0, 0, fmt.Errorf("live: bad now %q", r.URL.Query().Get("now"))
	}
	return object.ID(id), topology.NodeID(g), time.Duration(now), nil
}

// handleObj is the redirecting front-end: choose a replica for the object
// and answer 302 to its serve URL, with the virtual arrival time (the
// redirector->host control hop) in the response headers. now is the
// request's virtual arrival time at the redirector.
func (nd *Node) handleObj(w http.ResponseWriter, r *http.Request) {
	id, g, wireNow, err := objQuery(r, PathObj, nd.n)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	now := nd.resolveNow(int64(wireNow))
	if nd.redirector == nil || nd.redirectorLoc(id) != nd.id {
		http.Error(w, "live: wrong redirector for object", http.StatusBadRequest)
		return
	}
	nd.redMu.Lock()
	h, err := nd.redirector.ChooseReplica(g, id)
	nd.redMu.Unlock()
	if err != nil {
		// No choosable replica (every copy on killed hosts): the request
		// fails at the redirector.
		w.Header().Set(HeaderFailedAt, strconv.FormatInt(int64(now), 10))
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	// Redirector -> host is one more control hop of pure latency.
	arrive := now + time.Duration(nd.routes.Distance(nd.id, h))*nd.cfg.Sim.Net.HopDelay
	w.Header().Set(HeaderHost, strconv.Itoa(int(h)))
	w.Header().Set(HeaderArrive, strconv.FormatInt(int64(arrive), 10))
	// The 302 always targets the manifest URL: chaos partitions poison the
	// control-plane peer table, not the client-facing data plane.
	u := fmt.Sprintf("%s%s%d?g=%d&now=%d", nd.manifest[h], PathServe, int64(id), int(g), int64(arrive))
	http.Redirect(w, r, u, http.StatusFound)
}

// handleServe admits an object request into the FCFS queue. now is the
// request's virtual arrival time at this host. The response carries the
// virtual service completion time; the driver reports that completion back
// via /ctl/complete when virtual time reaches it, which is when load
// measurement and access counts record the serviced request — exactly the
// simulator's two-phase arrival/completion split.
func (nd *Node) handleServe(w http.ResponseWriter, r *http.Request) {
	id, g, wireNow, err := objQuery(r, PathServe, nd.n)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	now := nd.resolveNow(int64(wireNow))
	nd.mu.Lock()
	if t := nd.cfg.Sim.ClientTimeout; t > 0 && nd.srv.QueueDelay(now) > t {
		nd.mu.Unlock()
		w.Header().Set(HeaderTimeout, "1")
		http.Error(w, "live: client timeout", http.StatusServiceUnavailable)
		return
	}
	done := nd.srv.Enqueue(now, 0)
	nd.mu.Unlock()
	if nd.freeRun {
		// No driver reports completions in free-running mode: the node
		// schedules its own, firing when its clock reaches the FCFS
		// service completion time.
		nd.scheduleCompletion(id, g, done)
	}
	w.Header().Set(HeaderDone, strconv.FormatInt(int64(done), 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(nd.payload)
}

// scheduleCompletion arms a timer that records the serviced request
// (access counts, load measurement) when virtual time reaches done —
// the self-scheduled analog of the driver's /ctl/complete report.
func (nd *Node) scheduleCompletion(id object.ID, g topology.NodeID, done time.Duration) {
	delay := done - nd.vnow()
	if delay < 0 {
		delay = 0
	}
	nd.timerMu.Lock()
	if nd.stopped.Load() {
		nd.timerMu.Unlock()
		return
	}
	var t *time.Timer
	t = time.AfterFunc(delay, func() {
		nd.timerMu.Lock()
		delete(nd.timers, t)
		nd.timerMu.Unlock()
		if nd.stopped.Load() {
			return
		}
		nd.mu.Lock()
		nd.srv.OnServed(id)
		nd.host.OnRequest(id, g)
		nd.mu.Unlock()
	})
	nd.timers[t] = struct{}{}
	nd.timerMu.Unlock()
}

func (nd *Node) handleFetch(w http.ResponseWriter, r *http.Request) {
	if _, err := strconv.ParseInt(r.URL.Path[len(PathFetch):], 10, 64); err != nil {
		http.Error(w, "live: bad object id", http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(nd.payload)
}

func (nd *Node) handlePlace(w http.ResponseWriter, r *http.Request) {
	var msg TickMsg
	if !readBody(w, r, &msg) {
		return
	}
	nd.mu.Lock()
	sum := nd.host.DecidePlacement(time.Duration(msg.Now))
	ev := nd.drainEvents()
	nd.mu.Unlock()
	writeJSON(w, PlaceReply{Summary: sum, Events: ev})
}

func (nd *Node) handleMeasure(w http.ResponseWriter, r *http.Request) {
	var msg TickMsg
	if !readBody(w, r, &msg) {
		return
	}
	nd.mu.Lock()
	start := nd.srv.CloseInterval(time.Duration(msg.Now))
	nd.host.OnMeasurementIntervalClose(start)
	load := nd.srv.Load()
	lower, upper := nd.host.Estimator().Bounds(load)
	nd.mu.Unlock()
	writeJSON(w, MeasureReply{Start: int64(start), Load: load, Lower: lower, Upper: upper})
}

func (nd *Node) handleComplete(w http.ResponseWriter, r *http.Request) {
	var msg CompleteMsg
	if !readBody(w, r, &msg) {
		return
	}
	nd.mu.Lock()
	nd.srv.OnServed(object.ID(msg.Object))
	nd.host.OnRequest(object.ID(msg.Object), topology.NodeID(msg.Gateway))
	nd.mu.Unlock()
	writeJSON(w, struct{}{})
}

func (nd *Node) handleCensus(w http.ResponseWriter, r *http.Request) {
	if nd.redirector == nil {
		http.Error(w, "live: node hosts no redirector", http.StatusBadRequest)
		return
	}
	writeJSON(w, nd.census())
}

// census computes the co-located redirector's replica census: totals,
// floor deficits, and the per-object extremes the invariant checker
// asserts bounds on.
func (nd *Node) census() CensusReply {
	var rep CensusReply
	floor := nd.cfg.Sim.Protocol.ReplicaFloor
	nd.redMu.Lock()
	for i := 0; i < nd.cfg.Sim.Universe.Count; i++ {
		id := object.ID(i)
		if nd.redirectorLoc(id) != nd.id {
			continue
		}
		c := nd.redirector.ReplicaCount(id)
		if rep.Objects == 0 || c < rep.MinReplicas {
			rep.MinReplicas = c
		}
		if c > rep.MaxReplicas {
			rep.MaxReplicas = c
		}
		rep.Objects++
		rep.TotalReplicas += c
		if floor > 1 && c < floor {
			rep.BelowFloor++
		}
		if c == 0 {
			rep.Zero++
		}
	}
	nd.redMu.Unlock()
	return rep
}

func (nd *Node) handleMark(w http.ResponseWriter, r *http.Request) {
	var msg MarkMsg
	if !readBody(w, r, &msg) {
		return
	}
	if msg.Host >= nd.n {
		http.Error(w, fmt.Sprintf("live: host %d outside fleet of %d", msg.Host, nd.n), http.StatusBadRequest)
		return
	}
	nd.redMu.Lock()
	nd.downPeers[msg.Host] = msg.Down
	if msg.Down && !nd.filtering && nd.redirector != nil {
		// Arm the redirector's reachability filter on the first mark-down.
		// Installing it lazily keeps fully-healthy fleets on the unfiltered
		// ChooseReplica path — the one the simulator takes in fault-free
		// runs, which the equivalence test pins.
		nd.filtering = true
		down := nd.downPeers
		nd.redirector.SetReachable(func(h topology.NodeID) bool { return !down[h] })
	}
	if msg.Down && nd.freeRun && nd.redirector != nil {
		// Free-running mode applies the simulator's crash semantics in
		// full: the dead host's records are purged, so replica counts drop
		// below the floor and the placement passes' repair machinery — not
		// just the reachability filter — restores them. The recovering node
		// re-registers its holdings on Start (reRegister). Driver-paced
		// mode keeps filter-only marks: the equivalence and failover suites
		// pin that behavior.
		nd.redirector.PurgeHost(topology.NodeID(msg.Host))
	}
	nd.redMu.Unlock()
	writeJSON(w, struct{}{})
}

// handlePeers rewrites one peer URL table entry (chaos partitions).
func (nd *Node) handlePeers(w http.ResponseWriter, r *http.Request) {
	var msg PeersMsg
	if !readBody(w, r, &msg) {
		return
	}
	if msg.Peer >= nd.n {
		http.Error(w, fmt.Sprintf("live: peer %d outside fleet of %d", msg.Peer, nd.n), http.StatusBadRequest)
		return
	}
	nd.peerMu.Lock()
	nd.peers[msg.Peer] = msg.URL
	nd.peerMu.Unlock()
	writeJSON(w, struct{}{})
}

func (nd *Node) handleEvents(w http.ResponseWriter, r *http.Request) {
	nd.mu.Lock()
	ev := nd.drainEvents()
	nd.mu.Unlock()
	writeJSON(w, EventsReply{Events: ev})
}

func (nd *Node) handleStats(w http.ResponseWriter, r *http.Request) {
	attempts, retries, lost := nd.client.Stats()
	nd.mu.Lock()
	rep := StatsReply{
		Host:                  nd.host.Stats,
		TotalServed:           nd.srv.TotalServed(),
		MaxQueueLen:           nd.srv.MaxQueueLen(),
		CreateExecutions:      nd.creates.Executed(),
		CreatePeakConcurrency: nd.creates.Peak(),
		BootID:                nd.bootID,
		RPCAttempts:           attempts,
		RPCRetries:            retries,
		RPCLost:               lost,
		RPCBudgetDenials:      nd.client.BudgetDenials(),
		MeasureTicks:          nd.measureTicks.Load(),
		PlaceTicks:            nd.placeTicks.Load(),
		CensusTicks:           nd.censusTicks.Load(),
	}
	nd.mu.Unlock()
	writeJSON(w, rep)
}
