package live

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"radar/internal/routing"
	"radar/internal/sim"
	"radar/internal/topology"
	"radar/internal/workload"
)

// FreeDriver is the free-running mode's load generator: it only generates
// load. One goroutine per gateway paces requests in real time (the
// scenario's per-gateway rate, Poisson if configured), each request walks
// redirector -> 302 -> replica host over real HTTP, and the nodes do
// everything else on their own clocks. There is no event engine, no
// virtual time on the wire that anyone trusts, and no sequence to compare
// — correctness is asserted by the invariant checker (package live/check)
// scraping the fleet, not by equality with the simulator.
//
// The driver records every failed request with its wall-clock time so the
// checker can assert failures are confined to crash windows, and exposes
// SetLatency as the chaos controller's client-hop delay injection point.
type FreeDriver struct {
	cfg     Config
	urls    []string
	n       int
	redLocs []topology.NodeID
	client  *http.Client

	latency atomic.Int64
	epoch   time.Time

	genMu sync.Mutex
	gen   workload.Generator

	served   atomic.Int64
	failed   atomic.Int64
	timedOut atomic.Int64

	failMu   sync.Mutex
	failures []time.Time

	ran bool
}

// freeDriverHTTPTimeout bounds each request end to end; a killed node
// refuses instantly, so the limit only matters for a wedged one.
const freeDriverHTTPTimeout = 5 * time.Second

// NewFreeDriver builds a free-running load generator for a fleet reachable
// at urls. The configuration must have FreeRunning set — pacing a
// free-running fleet with the driver-paced Driver (or vice versa) would
// silently mix time regimes.
func NewFreeDriver(cfg Config, urls []string) (*FreeDriver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalize()
	if !cfg.FreeRunning {
		return nil, fmt.Errorf("live: FreeDriver needs Config.FreeRunning (use Driver for driver-paced replay)")
	}
	routes := routing.New(cfg.Sim.Topo)
	n := routes.NumNodes()
	if len(urls) != n {
		return nil, fmt.Errorf("live: %d node URLs for %d nodes", len(urls), n)
	}
	return &FreeDriver{
		cfg:     cfg,
		urls:    append([]string(nil), urls...),
		n:       n,
		redLocs: RedirectorLocations(routes, cfg.Sim.NumRedirectors),
		client:  &http.Client{Timeout: freeDriverHTTPTimeout},
		gen:     cfg.Sim.Workload,
	}, nil
}

// SetLatency injects a fixed delay before every generated request — the
// chaos controller's client-hop latency.
func (d *FreeDriver) SetLatency(lat time.Duration) { d.latency.Store(int64(lat)) }

// Run generates load for the given wall-clock duration (or until ctx is
// cancelled) and returns the totals. Run must be called at most once.
func (d *FreeDriver) Run(ctx context.Context, wall time.Duration) error {
	if d.ran {
		return fmt.Errorf("live: free driver already ran")
	}
	d.ran = true
	if ctx == nil {
		ctx = context.Background()
	}
	runCtx, cancel := context.WithTimeout(ctx, wall)
	defer cancel()
	d.epoch = time.Now()
	var wg sync.WaitGroup
	for i := 0; i < d.n; i++ {
		g := topology.NodeID(i)
		rate := d.cfg.Sim.NodeRequestRPS
		if d.cfg.Sim.NodeRates != nil {
			rate = d.cfg.Sim.NodeRates[i]
		}
		if rate <= 0 {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.generate(runCtx, g, rate)
		}()
	}
	wg.Wait()
	d.client.CloseIdleConnections()
	return ctx.Err()
}

// generate paces one gateway's request stream in real time.
func (d *FreeDriver) generate(ctx context.Context, g topology.NodeID, rate float64) {
	rng := workload.Stream(d.cfg.Sim.Seed, uint64(g))
	spacing := time.Duration(float64(time.Second) / rate)
	// The same phase offset the simulator's generators use, mapped to
	// wall time, so the fleet's gateways do not fire in lockstep.
	timer := time.NewTimer(spacing * time.Duration(g) / time.Duration(d.n))
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
		d.genMu.Lock()
		id := d.gen.Next(g, rng)
		d.genMu.Unlock()
		d.request(ctx, g, int64(id))
		next := spacing
		if d.cfg.Sim.PoissonArrivals {
			next = time.Duration(rng.ExpFloat64() * float64(spacing))
			if next <= 0 {
				next = time.Nanosecond
			}
		}
		timer.Reset(next)
	}
}

// request walks one object request end to end: redirector, 302, replica
// host (the HTTP client follows the redirect). 200 served, the
// client-timeout refusal is recorded as timed out, anything else — a
// refused connection, a 404 from a replica-less redirector, a malformed
// answer — is a failed request stamped with wall-clock time for the
// checker's crash-window confinement rule.
func (d *FreeDriver) request(ctx context.Context, g topology.NodeID, id int64) {
	if lat := time.Duration(d.latency.Load()); lat > 0 {
		t := time.NewTimer(lat)
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
	}
	loc := d.redLocs[int(id)%len(d.redLocs)]
	now := time.Since(d.epoch)
	u := fmt.Sprintf("%s%s%d?g=%d&now=%d", d.urls[loc], PathObj, id, int(g), int64(now))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		d.noteFailure()
		return
	}
	res, err := d.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return // shutdown, not a protocol failure
		}
		d.noteFailure()
		return
	}
	_, _ = io.Copy(io.Discard, res.Body)
	res.Body.Close()
	switch {
	case res.StatusCode == http.StatusOK:
		d.served.Add(1)
	case res.StatusCode == http.StatusServiceUnavailable && res.Header.Get(HeaderTimeout) != "":
		d.timedOut.Add(1)
	default:
		d.noteFailure()
	}
}

func (d *FreeDriver) noteFailure() {
	d.failed.Add(1)
	d.failMu.Lock()
	d.failures = append(d.failures, time.Now())
	d.failMu.Unlock()
}

// Served, Failed, and TimedOut return the request totals so far.
func (d *FreeDriver) Served() int64   { return d.served.Load() }
func (d *FreeDriver) Failed() int64   { return d.failed.Load() }
func (d *FreeDriver) TimedOut() int64 { return d.timedOut.Load() }

// Failures returns the wall-clock times of every failed request.
func (d *FreeDriver) Failures() []time.Time {
	d.failMu.Lock()
	defer d.failMu.Unlock()
	return append([]time.Time(nil), d.failures...)
}

// Results assembles the free run's totals in the simulator's results
// schema. Free-running mode has no virtual-time metrics pipeline — the
// series and network accounting stay empty; the counters and the census
// are real.
func (d *FreeDriver) Results(fleetCensus float64) *sim.Results {
	return &sim.Results{
		WorkloadName:     d.cfg.Sim.Workload.Name(),
		Policy:           d.cfg.Sim.Policy,
		Dynamic:          d.cfg.Sim.DynamicPlacement,
		Duration:         d.cfg.Sim.Duration,
		Seed:             d.cfg.Sim.Seed,
		TotalServed:      d.served.Load(),
		FailedRequests:   d.failed.Load(),
		TimedOutRequests: d.timedOut.Load(),
		AvgReplicas:      fleetCensus,
		HighWatermark:    d.cfg.Sim.Protocol.HighWatermark,
		StoreSpec:        d.cfg.Sim.Store.String(),
	}
}

// Census scrapes the fleet's redirectors once and returns the mean replica
// count per object (the driver-paced finalCensus analog) — used to fill
// Results and by callers wanting a quick fleet health read.
func (d *FreeDriver) Census() float64 {
	total := 0
	client := &http.Client{Timeout: freeDriverHTTPTimeout}
	defer client.CloseIdleConnections()
	for _, loc := range d.redLocs {
		res, err := client.Get(d.urls[loc] + PathCensus)
		if err != nil {
			continue
		}
		data, err := io.ReadAll(res.Body)
		res.Body.Close()
		if err != nil || res.StatusCode != http.StatusOK {
			continue
		}
		var rep CensusReply
		if Decode(data, &rep) == nil {
			total += rep.TotalReplicas
		}
	}
	return float64(total) / float64(d.cfg.Sim.Universe.Count)
}
