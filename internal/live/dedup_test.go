package live

import (
	"bytes"
	"sync"
	"testing"
)

// TestCallDedupReplaysVerdict: a retry of an executed message is answered
// from the verdict cache without re-running fn.
func TestCallDedupReplaysVerdict(t *testing.T) {
	d := newCallDedup(4)
	runs := 0
	fn := func() ([]byte, bool) {
		runs++
		return []byte("verdict"), true
	}
	first, ok1 := d.do(42, fn)
	second, ok2 := d.do(42, fn)
	if !ok1 || !ok2 {
		t.Fatalf("do returned ok = (%v, %v), want (true, true)", ok1, ok2)
	}
	if runs != 1 {
		t.Fatalf("fn ran %d times, want 1", runs)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("replayed verdict %q differs from original %q", second, first)
	}
	if got := d.Executed(); got != 1 {
		t.Fatalf("Executed() = %d, want 1", got)
	}
	if d.do(43, fn); runs != 2 {
		t.Fatalf("distinct message did not execute (runs = %d)", runs)
	}
}

// TestCallDedupBusyNotCached: an execution that reports busy (ok=false)
// leaves no verdict behind — the message is not counted as executed and a
// retry runs fn again, this time to completion.
func TestCallDedupBusyNotCached(t *testing.T) {
	d := newCallDedup(4)
	runs := 0
	busyOnce := func() ([]byte, bool) {
		runs++
		if runs == 1 {
			return nil, false
		}
		return []byte("done"), true
	}
	if _, ok := d.do(9, busyOnce); ok {
		t.Fatal("first (busy) execution reported ok")
	}
	if got := d.Executed(); got != 0 {
		t.Fatalf("Executed() = %d after busy attempt, want 0", got)
	}
	out, ok := d.do(9, busyOnce)
	if !ok || !bytes.Equal(out, []byte("done")) {
		t.Fatalf("retry after busy = (%q, %v), want (done, true)", out, ok)
	}
	if runs != 2 {
		t.Fatalf("fn ran %d times, want 2 (busy attempt must not be cached)", runs)
	}
	if got := d.Executed(); got != 1 {
		t.Fatalf("Executed() = %d, want 1", got)
	}
}

// TestCallDedupInflightDuplicates: duplicates arriving while the first
// copy executes wait for its verdict instead of executing again.
func TestCallDedupInflightDuplicates(t *testing.T) {
	d := newCallDedup(4)
	started := make(chan struct{})
	release := make(chan struct{})
	var mu sync.Mutex
	runs := 0
	fn := func() ([]byte, bool) {
		mu.Lock()
		runs++
		mu.Unlock()
		close(started)
		<-release
		return []byte("once"), true
	}

	var wg sync.WaitGroup
	results := make([][]byte, 8)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], _ = d.do(7, fn)
	}()
	<-started
	for i := 1; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _ = d.do(7, func() ([]byte, bool) {
				t.Error("duplicate executed fn")
				return nil, true
			})
		}(i)
	}
	close(release)
	wg.Wait()

	if runs != 1 {
		t.Fatalf("fn ran %d times, want 1", runs)
	}
	for i, r := range results {
		if !bytes.Equal(r, []byte("once")) {
			t.Fatalf("duplicate %d got %q, want %q", i, r, "once")
		}
	}
	if got := d.Executed(); got != 1 {
		t.Fatalf("Executed() = %d, want 1", got)
	}
}

// TestCallDedupConcurrencyLimit: distinct messages never execute more
// than limit at a time, and all of them complete.
func TestCallDedupConcurrencyLimit(t *testing.T) {
	const limit, msgs = 2, 16
	d := newCallDedup(limit)
	var mu sync.Mutex
	cur, peak := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < msgs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d.do(uint64(i+1), func() ([]byte, bool) {
				mu.Lock()
				cur++
				if cur > peak {
					peak = cur
				}
				mu.Unlock()
				mu.Lock()
				cur--
				mu.Unlock()
				return nil, true
			})
		}(i)
	}
	wg.Wait()
	if peak > limit {
		t.Fatalf("observed %d concurrent executions, limit %d", peak, limit)
	}
	if got := d.Executed(); got != msgs {
		t.Fatalf("Executed() = %d, want %d", got, msgs)
	}
	if d.Peak() > limit {
		t.Fatalf("Peak() = %d, limit %d", d.Peak(), limit)
	}
}
