package live

import (
	"errors"
	"testing"

	"radar/internal/protocol"
)

func TestDecodeValidCreateObj(t *testing.T) {
	msg := CreateObjMsg{
		MsgID: 5, From: 0, To: 2, Method: protocol.Replicate.String(),
		Object: 17, UnitLoad: 0.25, SrcAff: 3, Now: 1000,
	}
	var got CreateObjMsg
	if err := Decode(Encode(&msg), &got); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got != msg {
		t.Fatalf("round trip: got %+v, want %+v", got, msg)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := []struct {
		name  string
		body  string
		field string // expected WireError.Field; "" for whole-body errors
	}{
		{"truncated json", `{"msg_id":`, ""},
		{"wrong type", `{"msg_id":"yes"}`, ""},
		{"zero msg id", `{"msg_id":0,"method":"REPLICATE","src_aff":1}`, "msg_id"},
		{"negative node", `{"msg_id":1,"from":-3,"method":"REPLICATE","src_aff":1}`, "from"},
		{"bad method", `{"msg_id":1,"method":"STEAL","src_aff":1}`, "method"},
		{"negative object", `{"msg_id":1,"method":"MIGRATE","object":-1,"src_aff":1}`, "object"},
		{"nan unit load", `{"msg_id":1,"method":"MIGRATE","unit_load":"nan","src_aff":1}`, ""},
		{"zero affinity", `{"msg_id":1,"method":"MIGRATE","src_aff":0}`, "src_aff"},
		{"negative time", `{"msg_id":1,"method":"MIGRATE","src_aff":1,"now":-5}`, "now"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var msg CreateObjMsg
			err := Decode([]byte(tc.body), &msg)
			if err == nil {
				t.Fatal("Decode accepted malformed body")
			}
			var we *WireError
			if !errors.As(err, &we) {
				t.Fatalf("error %T is not *WireError: %v", err, err)
			}
			if we.Field != tc.field {
				t.Fatalf("WireError.Field = %q, want %q", we.Field, tc.field)
			}
		})
	}
}

func TestDecodeEventValidation(t *testing.T) {
	ev := Event{At: 10, Kind: EventReplicate, Object: 3, From: 1, To: 2, Move: "repair"}
	var got Event
	if err := Decode(Encode(&ev), &got); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got != ev {
		t.Fatalf("round trip: got %+v, want %+v", got, ev)
	}
	bad := Event{At: 10, Kind: "teleport"}
	var dst Event
	err := Decode(Encode(&bad), &dst)
	var we *WireError
	if !errors.As(err, &we) || we.Field != "kind" {
		t.Fatalf("unknown kind: err = %v, want WireError on field kind", err)
	}
}

func TestParseMethodRoundTrip(t *testing.T) {
	for _, m := range []protocol.Method{protocol.Migrate, protocol.Replicate, protocol.Repair} {
		got, err := ParseMethod(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMethod(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMethod("EXFILTRATE"); err == nil {
		t.Fatal("ParseMethod accepted unknown name")
	}
}

func TestParseMoveKindRoundTrip(t *testing.T) {
	for _, k := range []protocol.MoveKind{protocol.GeoMove, protocol.LoadMove, protocol.RepairMove} {
		got, err := ParseMoveKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseMoveKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseMoveKind("sideways"); err == nil {
		t.Fatal("ParseMoveKind accepted unknown name")
	}
}

func TestLoadReplyWatermarkValidation(t *testing.T) {
	good := LoadReply{AcceptLoad: 1.5, Low: 80, High: 90}
	var got LoadReply
	if err := Decode(Encode(&good), &got); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	for _, bad := range []LoadReply{
		{AcceptLoad: 1, Low: 0, High: 90},
		{AcceptLoad: 1, Low: 90, High: 80},
		{AcceptLoad: -1, Low: 80, High: 90},
	} {
		var dst LoadReply
		if err := Decode(Encode(&bad), &dst); err == nil {
			t.Fatalf("Decode accepted %+v", bad)
		}
	}
}
