package live_test

import (
	"context"
	"io"
	"net/http"
	"strconv"
	"testing"
	"time"

	"radar/internal/live"
	"radar/internal/live/livetest"
	"radar/internal/topology"
)

// TestRedirectorFailover kills a leaf node mid-replay and asserts the
// fleet routes around it: with a replica floor of two, every object the
// dead node held has a surviving replica, the redirector's 302s fail over
// to it, and no requests fail after the crash bucket.
func TestRedirectorFailover(t *testing.T) {
	const (
		killAt   = 2 * time.Minute
		duration = 4 * time.Minute
		victim   = topology.NodeID(3)
	)
	// Star(4): node 0 is the hub (and the single redirector location, having
	// the smallest average distance), nodes 1-3 are leaves.
	cfg := liveConfig(t, topology.Star(4), 16, 10, duration)
	cfg.Sim.Protocol.ReplicaFloor = 2

	h := livetest.Start(t, cfg)
	h.Driver.At(killAt, func() {
		if err := h.Kill(victim); err != nil {
			t.Errorf("killing node %d: %v", victim, err)
		}
	})
	res, err := h.Run(context.Background())
	if err != nil {
		t.Fatalf("running fleet: %v", err)
	}

	if !h.Fleet.Killed(victim) {
		t.Fatal("victim still alive")
	}
	if res.Failures != 1 {
		t.Errorf("Failures = %d, want 1", res.Failures)
	}
	if !res.FaultsEnabled {
		t.Error("FaultsEnabled = false after a mid-replay crash")
	}
	if res.TotalServed == 0 {
		t.Fatal("no requests served")
	}

	// In-flight requests may fail in the crash's own metrics bucket; every
	// later bucket must be clean — the redirector stopped choosing the dead
	// node's replicas.
	crashBucketEnd := killAt + cfg.Sim.MetricsBucket
	for _, p := range res.FailedSeries {
		if p.T >= crashBucketEnd && p.V != 0 {
			t.Errorf("failed requests %v in bucket at %v, after the crash bucket", p.V, p.T)
		}
	}

	// The floor repaired every object to two replicas before the crash, so
	// an object homed on the victim survives it. Ask the redirector for its
	// replica set and for a fresh redirect: both must name a live host.
	client := &http.Client{
		Timeout: 5 * time.Second,
		CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	// Round-robin homes: object 3 started on the victim in a 4-node fleet.
	obj := int64(victim)
	resp, err := client.Get(h.Fleet.URL(0) + live.PathReplicas + "?obj=" + strconv.FormatInt(obj, 10) + "&hosts=1")
	if err != nil {
		t.Fatalf("replica query: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var rep live.ReplicasReply
	if err := live.Decode(body, &rep); err != nil {
		t.Fatalf("decoding replica reply: %v", err)
	}
	survivors := 0
	for _, host := range rep.Hosts {
		if topology.NodeID(host) != victim {
			survivors++
		}
	}
	if survivors == 0 {
		t.Fatalf("object %d has no surviving replica: hosts %v", obj, rep.Hosts)
	}

	redirect, err := client.Get(h.Fleet.URL(0) + live.PathObj + strconv.FormatInt(obj, 10) + "?g=1&now=" + strconv.FormatInt(int64(duration), 10))
	if err != nil {
		t.Fatalf("object request: %v", err)
	}
	io.Copy(io.Discard, redirect.Body)
	redirect.Body.Close()
	if redirect.StatusCode != http.StatusFound {
		t.Fatalf("object request answered %d, want 302", redirect.StatusCode)
	}
	chosen := redirect.Header.Get(live.HeaderHost)
	if chosen == strconv.Itoa(int(victim)) {
		t.Fatalf("302 chose the dead node %s", chosen)
	}
	if chosen == "" {
		t.Fatal("302 carried no chosen-host header")
	}
}
