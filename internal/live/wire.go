// Package live runs the replica placement and request distribution
// protocol over real sockets: each node process owns one protocol.Host
// (and, when it is a redirector location, one protocol.Redirector) behind
// an HTTP/JSON control plane, a redirecting front-end answers object
// requests with 302s to the chosen replica host, and a driver replays the
// simulator's exact event schedule against the fleet, so the deterministic
// simulation remains the executable spec for what a live fleet must do.
//
// The wire format is deliberately small: JSON bodies with explicit message
// IDs on every mutating RPC, so servers can deduplicate retries and
// duplicates exactly like the simulated control plane's message-ID-keyed
// idempotence. Virtual timestamps travel as int64 nanoseconds; the nodes
// are clock-less and advance only when a request tells them what time it
// is (see DESIGN.md §4.8 for why this is what keeps live mode pinned to
// the simulator).
package live

import (
	"encoding/json"
	"fmt"
	"math"

	"radar/internal/protocol"
)

// HTTP paths of the live control plane. Object-request paths take the
// object ID as a suffix (/obj/17), RPC and control paths take JSON bodies
// or query parameters.
const (
	// PathObj is the redirecting front-end: GET /obj/{id}?g=G&now=N on the
	// node owning the object's redirector answers 302 with the chosen
	// replica's serve URL.
	PathObj = "/obj/"
	// PathServe serves object bytes from a replica host:
	// GET /serve/{id}?g=G&now=N.
	PathServe = "/serve/"
	// PathFetch transfers raw replica bytes host-to-host for CreateObj
	// copies: GET /fetch/{id}.
	PathFetch = "/fetch/"

	PathCreateObj   = "/rpc/createobj"
	PathNotify      = "/rpc/notify"
	PathRequestDrop = "/rpc/requestdrop"
	PathLoad        = "/rpc/load"
	PathReplicas    = "/rpc/replicas"

	PathPlace    = "/ctl/place"
	PathMeasure  = "/ctl/measure"
	PathComplete = "/ctl/complete"
	PathCensus   = "/ctl/census"
	PathMark     = "/ctl/mark"
	PathPeers    = "/ctl/peers"
	PathEvents   = "/ctl/events"
	PathStats    = "/ctl/stats"
	// PathHealth is pure liveness: the process is up and serving HTTP.
	PathHealth = "/healthz"
	// PathReady is readiness: the node has started (seed placement
	// installed, redirector registered, and — in free-running mode — its
	// tickers running). The chaos controller and failover tests gate on
	// readiness, not liveness, so they cannot race node startup.
	PathReady = "/readyz"
)

// Response headers carrying virtual-time results of object requests.
const (
	// HeaderArrive is the virtual arrival time (ns) of a redirected
	// request at the chosen replica host.
	HeaderArrive = "X-Radar-Arrive"
	// HeaderHost is the chosen replica host's node ID on a 302.
	HeaderHost = "X-Radar-Host"
	// HeaderFailedAt is the virtual time (ns) a request failed at the
	// redirector (no reachable replica).
	HeaderFailedAt = "X-Radar-Failed-At"
	// HeaderDone is the virtual FCFS service completion time (ns) of an
	// admitted request.
	HeaderDone = "X-Radar-Done"
	// HeaderTimeout marks a request refused by the client-timeout model
	// (queue delay exceeded the configured timeout).
	HeaderTimeout = "X-Radar-Timeout"
)

// WireError is the typed decode/validation error of the live wire format:
// any malformed or out-of-range control-plane body yields one (never a
// panic), so handlers can answer 400 with a structured reason.
type WireError struct {
	// Field names the offending field; empty for whole-body errors
	// (malformed JSON).
	Field string
	// Reason says what was wrong.
	Reason string
}

// Error implements error.
func (e *WireError) Error() string {
	if e.Field == "" {
		return fmt.Sprintf("live: bad message: %s", e.Reason)
	}
	return fmt.Sprintf("live: bad message field %s: %s", e.Field, e.Reason)
}

// validator is any wire message with self-validation; Decode runs it after
// unmarshaling.
type validator interface{ Validate() error }

// Decode unmarshals data into msg and validates it. All errors are
// *WireError.
func Decode(data []byte, msg validator) error {
	if err := json.Unmarshal(data, msg); err != nil {
		return &WireError{Reason: err.Error()}
	}
	return msg.Validate()
}

// jsonUnmarshal decodes into a reply type without self-validation,
// wrapping failures as *WireError.
func jsonUnmarshal(data []byte, v any) error {
	if err := json.Unmarshal(data, v); err != nil {
		return &WireError{Reason: err.Error()}
	}
	return nil
}

// Encode marshals a wire message. Marshaling a validated message cannot
// fail; Encode panics on the programming error that it does.
func Encode(msg any) []byte {
	data, err := json.Marshal(msg)
	if err != nil {
		panic(fmt.Sprintf("live: encoding %T: %v", msg, err))
	}
	return data
}

// ParseMethod maps a wire method name back to the protocol method.
func ParseMethod(s string) (protocol.Method, error) {
	switch s {
	case protocol.Migrate.String():
		return protocol.Migrate, nil
	case protocol.Replicate.String():
		return protocol.Replicate, nil
	case protocol.Repair.String():
		return protocol.Repair, nil
	default:
		return 0, &WireError{Field: "method", Reason: fmt.Sprintf("unknown method %q", s)}
	}
}

// ParseMoveKind maps a report move name back to the protocol move kind.
func ParseMoveKind(s string) (protocol.MoveKind, error) {
	switch s {
	case protocol.GeoMove.String():
		return protocol.GeoMove, nil
	case protocol.LoadMove.String():
		return protocol.LoadMove, nil
	case protocol.RepairMove.String():
		return protocol.RepairMove, nil
	default:
		return 0, &WireError{Field: "move", Reason: fmt.Sprintf("unknown move kind %q", s)}
	}
}

// checkNode validates a node ID field (non-negative; the upper bound is
// the receiver's fleet size, checked at dispatch, not here — the wire
// format does not know the topology).
func checkNode(field string, v int) error {
	if v < 0 {
		return &WireError{Field: field, Reason: fmt.Sprintf("negative node id %d", v)}
	}
	return nil
}

// checkTime validates a virtual timestamp in nanoseconds.
func checkTime(field string, v int64) error {
	if v < 0 {
		return &WireError{Field: field, Reason: fmt.Sprintf("negative virtual time %d", v)}
	}
	return nil
}

// CreateObjMsg is the CreateObj handshake request (Fig. 4) on the wire:
// protocol.CreateObjRequest plus the message identity and virtual send
// time. Retries and duplicates carry the same MsgID and are answered from
// the receiver's verdict cache without re-executing.
type CreateObjMsg struct {
	MsgID    uint64  `json:"msg_id"`
	From     int     `json:"from"`
	To       int     `json:"to"`
	Method   string  `json:"method"`
	Object   int64   `json:"object"`
	UnitLoad float64 `json:"unit_load"`
	SrcAff   int     `json:"src_aff"`
	Now      int64   `json:"now"`
}

// Validate implements validator.
func (m *CreateObjMsg) Validate() error {
	if m.MsgID == 0 {
		return &WireError{Field: "msg_id", Reason: "zero message id"}
	}
	if err := checkNode("from", m.From); err != nil {
		return err
	}
	if err := checkNode("to", m.To); err != nil {
		return err
	}
	if _, err := ParseMethod(m.Method); err != nil {
		return err
	}
	if m.Object < 0 {
		return &WireError{Field: "object", Reason: fmt.Sprintf("negative object id %d", m.Object)}
	}
	if math.IsNaN(m.UnitLoad) || math.IsInf(m.UnitLoad, 0) || m.UnitLoad < 0 {
		return &WireError{Field: "unit_load", Reason: fmt.Sprintf("unit load %v not a non-negative finite number", m.UnitLoad)}
	}
	if m.SrcAff < 1 {
		return &WireError{Field: "src_aff", Reason: fmt.Sprintf("source affinity %d below 1", m.SrcAff)}
	}
	return checkTime("now", m.Now)
}

// CreateObjReply is the handshake verdict.
type CreateObjReply struct {
	MsgID    uint64 `json:"msg_id"`
	Accepted bool   `json:"accepted"`
	// Copied reports that acceptance created a new replica (the object
	// bytes were fetched from the source), as opposed to incrementing an
	// existing replica's affinity; the caller charges the transfer.
	Copied bool `json:"copied,omitempty"`
}

// Validate implements validator.
func (m *CreateObjReply) Validate() error {
	if m.MsgID == 0 {
		return &WireError{Field: "msg_id", Reason: "zero message id"}
	}
	return nil
}

// NotifyMsg is a replica-change notification to the object's redirector.
type NotifyMsg struct {
	MsgID  uint64 `json:"msg_id"`
	Object int64  `json:"object"`
	Host   int    `json:"host"`
	Aff    int    `json:"aff"`
}

// Validate implements validator.
func (m *NotifyMsg) Validate() error {
	if m.MsgID == 0 {
		return &WireError{Field: "msg_id", Reason: "zero message id"}
	}
	if m.Object < 0 {
		return &WireError{Field: "object", Reason: fmt.Sprintf("negative object id %d", m.Object)}
	}
	if err := checkNode("host", m.Host); err != nil {
		return err
	}
	if m.Aff < 0 {
		return &WireError{Field: "aff", Reason: fmt.Sprintf("negative affinity %d", m.Aff)}
	}
	return nil
}

// DropMsg asks the object's redirector for permission to drop the last
// affinity unit of a replica (Fig. 3's ReduceAffinity arbitration).
type DropMsg struct {
	MsgID  uint64 `json:"msg_id"`
	Object int64  `json:"object"`
	Host   int    `json:"host"`
}

// Validate implements validator.
func (m *DropMsg) Validate() error {
	if m.MsgID == 0 {
		return &WireError{Field: "msg_id", Reason: "zero message id"}
	}
	if m.Object < 0 {
		return &WireError{Field: "object", Reason: fmt.Sprintf("negative object id %d", m.Object)}
	}
	return checkNode("host", m.Host)
}

// DropReply is the arbitration verdict.
type DropReply struct {
	MsgID    uint64 `json:"msg_id"`
	Approved bool   `json:"approved"`
}

// Validate implements validator.
func (m *DropReply) Validate() error {
	if m.MsgID == 0 {
		return &WireError{Field: "msg_id", Reason: "zero message id"}
	}
	return nil
}

// LoadReply answers a load query (GET /rpc/load): the host's accept-side
// load — the periodic load-report exchange of §4.2.2 turned into an
// on-demand RPC — plus its watermarks and, when the query names an object
// and a time, replica presence and the acquisition-halt guard, which
// repair-target selection consults.
type LoadReply struct {
	AcceptLoad float64 `json:"accept_load"`
	Low        float64 `json:"lw"`
	High       float64 `json:"hw"`
	Has        bool    `json:"has,omitempty"`
	Halted     bool    `json:"halted,omitempty"`
}

// Validate implements validator.
func (m *LoadReply) Validate() error {
	if math.IsNaN(m.AcceptLoad) || math.IsInf(m.AcceptLoad, 0) || m.AcceptLoad < 0 {
		return &WireError{Field: "accept_load", Reason: fmt.Sprintf("load %v not a non-negative finite number", m.AcceptLoad)}
	}
	if m.Low <= 0 || m.High <= m.Low {
		return &WireError{Field: "lw", Reason: fmt.Sprintf("watermarks lw=%v hw=%v must satisfy 0 < lw < hw", m.Low, m.High)}
	}
	return nil
}

// ReplicasReply answers a replica-set query against the redirector's
// records.
type ReplicasReply struct {
	Count int   `json:"count"`
	Hosts []int `json:"hosts,omitempty"`
}

// Validate implements validator.
func (m *ReplicasReply) Validate() error {
	if m.Count < 0 {
		return &WireError{Field: "count", Reason: fmt.Sprintf("negative count %d", m.Count)}
	}
	for _, h := range m.Hosts {
		if err := checkNode("hosts", h); err != nil {
			return err
		}
	}
	return nil
}

// TickMsg drives one virtual-time control action on a node: a placement
// pass (POST /ctl/place) or a measurement-interval close (POST
// /ctl/measure).
type TickMsg struct {
	Now int64 `json:"now"`
}

// Validate implements validator.
func (m *TickMsg) Validate() error { return checkTime("now", m.Now) }

// PlaceReply reports one placement pass: the run summary and the node's
// drained event log (placement decisions, refusals, deferrals, and object
// copies recorded since the previous drain).
type PlaceReply struct {
	Summary protocol.PlacementSummary `json:"summary"`
	Events  []Event                   `json:"events,omitempty"`
}

// Validate implements validator.
func (m *PlaceReply) Validate() error {
	for i := range m.Events {
		if err := m.Events[i].Validate(); err != nil {
			return err
		}
	}
	return nil
}

// MeasureReply reports one measurement-interval close: the closed
// interval's start, the measured load, and the estimator's bounds.
type MeasureReply struct {
	Start int64   `json:"start"`
	Load  float64 `json:"load"`
	Lower float64 `json:"lower"`
	Upper float64 `json:"upper"`
}

// Validate implements validator.
func (m *MeasureReply) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{{"load", m.Load}, {"lower", m.Lower}, {"upper", m.Upper}} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
			return &WireError{Field: f.name, Reason: fmt.Sprintf("%v not a non-negative finite number", f.v)}
		}
	}
	return nil
}

// CompleteMsg reports the FCFS service completion of a previously admitted
// request: the node records the serviced request (access counts, load
// measurement) at the given virtual time.
type CompleteMsg struct {
	Object  int64 `json:"object"`
	Gateway int   `json:"g"`
	Now     int64 `json:"now"`
}

// Validate implements validator.
func (m *CompleteMsg) Validate() error {
	if m.Object < 0 {
		return &WireError{Field: "object", Reason: fmt.Sprintf("negative object id %d", m.Object)}
	}
	if err := checkNode("g", m.Gateway); err != nil {
		return err
	}
	return checkTime("now", m.Now)
}

// CensusReply sums the recorded replica counts of every object whose
// redirector this node owns. The per-object extremes feed the invariant
// checker's watermark-bound assertions.
type CensusReply struct {
	Objects       int `json:"objects"`
	TotalReplicas int `json:"total_replicas"`
	// BelowFloor counts this redirector's objects currently below the
	// configured replica floor (zero unless a floor above 1 is armed).
	BelowFloor int `json:"below_floor,omitempty"`
	// MinReplicas/MaxReplicas are the smallest and largest recorded
	// replica count across this redirector's objects (zero when it owns
	// none).
	MinReplicas int `json:"min_replicas,omitempty"`
	MaxReplicas int `json:"max_replicas,omitempty"`
	// Zero counts objects with no recorded replica at all — each one is a
	// lost object unless it is healed within the convergence budget.
	Zero int `json:"zero,omitempty"`
}

// Validate implements validator.
func (m *CensusReply) Validate() error {
	if m.Objects < 0 || m.TotalReplicas < 0 || m.BelowFloor < 0 {
		return &WireError{Field: "objects", Reason: "negative census"}
	}
	if m.MinReplicas < 0 || m.MaxReplicas < 0 || m.Zero < 0 {
		return &WireError{Field: "min_replicas", Reason: "negative census"}
	}
	if m.MaxReplicas < m.MinReplicas {
		return &WireError{Field: "max_replicas", Reason: fmt.Sprintf("max %d below min %d", m.MaxReplicas, m.MinReplicas)}
	}
	return nil
}

// MarkMsg marks a fleet member down (or back up) on this node's
// reachability view: its redirector stops choosing replicas on that host
// and load queries skip it — the live analog of the simulator's
// crash-detection control path.
type MarkMsg struct {
	Host int  `json:"host"`
	Down bool `json:"down"`
}

// Validate implements validator.
func (m *MarkMsg) Validate() error { return checkNode("host", m.Host) }

// PeersMsg rewrites one entry of the receiving node's peer URL table — the
// chaos controller's partition primitive. A non-http URL (the poison
// sentinel) makes every control RPC toward that peer fail without leaving
// the node; restoring the original URL heals the partition. The serve-URL
// manifest used for client 302s is immutable: partitions cut the control
// plane, not the data plane.
type PeersMsg struct {
	Peer int    `json:"peer"`
	URL  string `json:"url"`
}

// Validate implements validator.
func (m *PeersMsg) Validate() error {
	if err := checkNode("peer", m.Peer); err != nil {
		return err
	}
	if m.URL == "" {
		return &WireError{Field: "url", Reason: "empty peer URL"}
	}
	return nil
}

// Event kinds appearing in node event logs.
const (
	EventMigrate   = "migrate"
	EventReplicate = "replicate"
	EventDrop      = "drop"
	EventRefuse    = "refuse"
	EventDefer     = "defer"
	// EventCopy records an accepted CreateObj that materialized a new
	// replica: the object's bytes traveled From -> To. The driver charges
	// it to its network accounting as protocol overhead, mirroring the
	// simulator's Env.CopyObject.
	EventCopy = "copy"
)

// Event is one entry of a node's placement event log, mirroring
// protocol.Observer callbacks (plus EventCopy) with virtual timestamps, so
// the driver can replay the simulator's metrics accounting and the
// equivalence test can compare decision sequences byte for byte.
type Event struct {
	At     int64  `json:"at"`
	Kind   string `json:"kind"`
	Object int64  `json:"object"`
	From   int    `json:"from"`
	To     int    `json:"to,omitempty"`
	// Move is the MoveKind report name (geo/load/repair) on
	// migrate/replicate events.
	Move string `json:"move,omitempty"`
	// Method is the CreateObj method name on refuse/defer events.
	Method string `json:"method,omitempty"`
}

// Validate implements validator.
func (e *Event) Validate() error {
	switch e.Kind {
	case EventMigrate, EventReplicate, EventDrop, EventRefuse, EventDefer, EventCopy:
	default:
		return &WireError{Field: "kind", Reason: fmt.Sprintf("unknown event kind %q", e.Kind)}
	}
	if err := checkTime("at", e.At); err != nil {
		return err
	}
	if e.Object < 0 {
		return &WireError{Field: "object", Reason: fmt.Sprintf("negative object id %d", e.Object)}
	}
	if err := checkNode("from", e.From); err != nil {
		return err
	}
	return checkNode("to", e.To)
}

// EventsReply is a drained node event log (GET /ctl/events).
type EventsReply struct {
	Events []Event `json:"events,omitempty"`
}

// Validate implements validator.
func (m *EventsReply) Validate() error {
	for i := range m.Events {
		if err := m.Events[i].Validate(); err != nil {
			return err
		}
	}
	return nil
}

// StatsReply is a node's activity snapshot (GET /ctl/stats): the host's
// protocol counters, the server's volume counters, and the CreateObj
// dedup/concurrency gauges the integration tests assert on.
type StatsReply struct {
	Host protocol.HostStats `json:"host"`

	TotalServed int64 `json:"total_served"`
	MaxQueueLen int   `json:"max_queue_len"`

	// CreateExecutions counts CreateObj handlers actually executed (after
	// dedup); CreatePeakConcurrency is the high-water mark of concurrent
	// executions, bounded by the configured limit.
	CreateExecutions      int64 `json:"create_executions"`
	CreatePeakConcurrency int   `json:"create_peak_concurrency"`

	// BootID distinguishes node incarnations: a restarted node starts a
	// fresh one, which is how the invariant checker tells a legitimate
	// counter reset (new boot) from a corrupt one (same boot).
	BootID int64 `json:"boot_id,omitempty"`

	// RPC client counters: attempts issued, retries among them, calls
	// abandoned after the schedule, and calls cut short by the per-peer
	// retry budget.
	RPCAttempts      int64 `json:"rpc_attempts,omitempty"`
	RPCRetries       int64 `json:"rpc_retries,omitempty"`
	RPCLost          int64 `json:"rpc_lost,omitempty"`
	RPCBudgetDenials int64 `json:"rpc_budget_denials,omitempty"`

	// Free-running ticker counters: how many self-scheduled measurement,
	// placement, and census ticks this incarnation has run.
	MeasureTicks int64 `json:"measure_ticks,omitempty"`
	PlaceTicks   int64 `json:"place_ticks,omitempty"`
	CensusTicks  int64 `json:"census_ticks,omitempty"`
}

// Validate implements validator.
func (m *StatsReply) Validate() error {
	if m.TotalServed < 0 || m.MaxQueueLen < 0 || m.CreateExecutions < 0 || m.CreatePeakConcurrency < 0 {
		return &WireError{Field: "total_served", Reason: "negative counter"}
	}
	if m.BootID < 0 || m.RPCAttempts < 0 || m.RPCRetries < 0 || m.RPCLost < 0 || m.RPCBudgetDenials < 0 {
		return &WireError{Field: "boot_id", Reason: "negative counter"}
	}
	if m.MeasureTicks < 0 || m.PlaceTicks < 0 || m.CensusTicks < 0 {
		return &WireError{Field: "measure_ticks", Reason: "negative counter"}
	}
	return nil
}
